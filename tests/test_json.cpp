// Tests for the shared minimal JSON writer (support/json.h): escaping,
// object/array sequencing, pretty/compact forms, and the strict
// validator the other JSON tests lean on.
#include "support/json.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json::escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json::escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
}

TEST(JsonEscape, LeavesUtf8BytesAlone) {
  EXPECT_EQ(json::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, CompactObject) {
  std::string out;
  json::Writer w(&out);
  w.begin_object()
      .key("name").value("shard")
      .key("n").value(static_cast<i64>(-3))
      .key("u").value(u64{18446744073709551615ull})
      .key("ok").value(true)
      .key("x").value(0.5)
      .end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(out,
            "{\"name\":\"shard\",\"n\":-3,\"u\":18446744073709551615,"
            "\"ok\":true,\"x\":0.5}");
  EXPECT_TRUE(json::validate(out));
}

TEST(JsonWriter, PrettyNestedStructure) {
  std::string out;
  json::Writer w(&out, 2);
  w.begin_object()
      .key("rows").begin_array()
      .begin_object().key("a").value(1.0).end_object()
      .begin_object().key("b").null().end_object()
      .end_array()
      .key("empty").begin_array().end_array()
      .end_object();
  EXPECT_TRUE(w.done());
  EXPECT_TRUE(json::validate(out));
  EXPECT_NE(out.find("\"rows\": [\n"), std::string::npos);
  EXPECT_NE(out.find("\"empty\": []"), std::string::npos);
}

TEST(JsonWriter, ExplicitDoubleFormat) {
  std::string out;
  json::Writer w(&out);
  w.begin_array().value(0.123456789123, "%.3f").end_array();
  EXPECT_EQ(out, "[0.123]");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::string out;
  json::Writer w(&out);
  w.begin_array()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(out, "[null,null]");
  EXPECT_TRUE(json::validate(out));
}

TEST(JsonWriter, EscapesKeysAndStringValues) {
  std::string out;
  json::Writer w(&out);
  w.begin_object().key("we\"ird").value("line\nbreak").end_object();
  EXPECT_EQ(out, "{\"we\\\"ird\":\"line\\nbreak\"}");
  EXPECT_TRUE(json::validate(out));
}

TEST(JsonValidate, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(json::validate("{}"));
  EXPECT_TRUE(json::validate("[]"));
  EXPECT_TRUE(json::validate("  [1, -2.5, 1e9, \"x\", true, null]  "));
  EXPECT_TRUE(json::validate("{\"a\": {\"b\": [{}, [\"\\u00e9\"]]}}"));
  EXPECT_TRUE(json::validate("3.25"));
  EXPECT_TRUE(json::validate("\"lone string\""));
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::validate(""));
  EXPECT_FALSE(json::validate("{"));
  EXPECT_FALSE(json::validate("{\"a\":}"));
  EXPECT_FALSE(json::validate("[1,]"));
  EXPECT_FALSE(json::validate("{\"a\":1,}"));
  EXPECT_FALSE(json::validate("{} trailing"));
  EXPECT_FALSE(json::validate("\"unterminated"));
  EXPECT_FALSE(json::validate("{'a':1}"));
  EXPECT_FALSE(json::validate("[01]"));      // leading zero
  EXPECT_FALSE(json::validate("[1.]"));      // empty fraction
  EXPECT_FALSE(json::validate("[NaN]"));
  EXPECT_FALSE(json::validate("[\"\\x\"]"));  // bad escape
  EXPECT_FALSE(json::validate("{1: 2}"));     // non-string key
}

}  // namespace
}  // namespace fsopt
