// Transform-plan IR: JSON round-trip identity, plan_diff goldens,
// StaticPlanner equivalence with the retained reference path across the
// full workload matrix, and repair-loop convergence on a synthetic
// workload whose residual false sharing the static heuristics miss.
#include "transform/plan_ir.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "lang/sema.h"
#include "transform/planner.h"

namespace fsopt {
namespace {

struct Ctx {
  std::unique_ptr<Program> prog;
  ProgramSummary summary;
  SharingReport report;
  TransformSet transforms;
};

Ctx analyze(std::string_view src, i64 nprocs = 8, DecisionOptions opt = {}) {
  Ctx c;
  DiagnosticEngine diags;
  c.prog = parse_and_check(src, diags, {{"NPROCS", nprocs}});
  c.summary = analyze_program(*c.prog);
  c.report = classify_sharing(c.summary);
  c.transforms = decide_transforms(c.report, c.summary, 128, opt);
  return c;
}

DatumKey key_of(const Ctx& c, const char* global, const char* field = nullptr) {
  const GlobalSym* g = c.prog->find_global(global);
  EXPECT_NE(g, nullptr) << global;
  int fi = field != nullptr ? g->elem.strct->field_index(field) : -1;
  return {g->id, fi};
}

// A source that exercises every decision kind the static planner makes:
// lock-pad, symbol-level group&transpose, field-level indirection and
// pad&align.
constexpr const char* kAllKindsSource =
    "param NPROCS = 8;"
    "lock_t l;"
    "real a[64];"
    "struct S { int v[NPROCS]; int w; };"
    "struct S g[32];"
    "real s[32]; int q;"
    "void main(int pid) { int i; int r;"
    "  lock(l); q = q + 1; unlock(l);"
    "  for (r = 0; r < 10; r = r + 1) {"
    "    for (i = pid; i < 64; i = i + nprocs) { a[i] = a[i] + 1.0; }"
    "    for (i = 0; i < 200; i = i + 1) {"
    "      g[(q + i) % 32].v[pid] = g[(q + i) % 32].v[pid] + 1; }"
    "    for (i = 0; i < 100; i = i + 1) {"
    "      s[(q + i * 7 + pid) % 32] = s[(q + i * 13) % 32] + 1.0; }"
    "  } }";

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

TEST(PlanJson, RoundTripIsByteEqual) {
  Ctx c = analyze(kAllKindsSource);
  ASSERT_GE(c.transforms.decisions.size(), 4u);  // all four kinds present
  std::string first = plan_to_json(c.transforms, *c.prog);
  TransformPlan parsed = plan_from_json(first, *c.prog);
  std::string second = plan_to_json(parsed, *c.prog);
  EXPECT_EQ(first, second);
  EXPECT_EQ(parsed, c.transforms);  // ids, reasons, planner, block size
}

TEST(PlanJson, RoundTripPreservesProfileReasons) {
  // Profile reasons carry a u64 count and a double share; both must
  // survive the text round trip exactly.
  Ctx c = analyze(kAllKindsSource);
  TransformPlan plan;
  plan.planner = "profile";
  plan.block_size = 64;
  TransformDecision d;
  d.datum = key_of(c, "s");
  d.kind = TransformKind::kPadAlign;
  d.reason.code = ReasonCode::kProfileFalseSharing;
  d.reason.fs_misses = 123456789;
  d.reason.fs_share = 0.335481234567891;  // needs %.17g to round-trip
  plan.decisions.push_back(d);
  std::string first = plan_to_json(plan, *c.prog);
  TransformPlan parsed = plan_from_json(first, *c.prog);
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(plan_to_json(parsed, *c.prog), first);
}

TEST(PlanJson, RoundTripPreservesIntraDatumKinds) {
  // The conflict-graph kinds carry a fields array (permutation / hot set)
  // and may target the interpreter's barrier pseudo-datum; all of it must
  // survive the text round trip byte-exactly.
  Ctx c = analyze(kAllKindsSource);
  TransformPlan plan;
  plan.planner = "graph";
  plan.block_size = 128;

  TransformDecision reorder;
  reorder.datum = key_of(c, "g");
  reorder.kind = TransformKind::kFieldReorder;
  reorder.fields = {1, 0};  // full permutation of S's two fields
  reorder.reason = {ReasonCode::kConflictGraph, Pattern::kNone, -1, 77,
                    0.25};
  TransformDecision split;
  split.datum = key_of(c, "g");
  split.kind = TransformKind::kHotColdSplit;
  split.fields = {1};
  split.reason = {ReasonCode::kConflictGraph, Pattern::kNone, -1, 42, 0.5};
  TransformDecision pad;
  pad.datum = key_of(c, "a");
  pad.kind = TransformKind::kIntraPad;
  pad.chunk = 256;
  pad.reason = {ReasonCode::kConflictGraph, Pattern::kNone, -1, 9000,
                0.123456789012345};
  TransformDecision barrier;
  barrier.datum = {kBarrierSym, -1};
  barrier.kind = TransformKind::kIntraPad;
  barrier.chunk = 256;
  barrier.reason = {ReasonCode::kConflictGraph, Pattern::kNone, -1, 735,
                    0.043};
  plan.decisions = {reorder, split, pad, barrier};

  std::string first = plan_to_json(plan, *c.prog);
  TransformPlan parsed = plan_from_json(first, *c.prog);
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(plan_to_json(parsed, *c.prog), first);
  // The barrier datum round-trips through its reserved spelling.
  EXPECT_NE(first.find("\"<barrier>\""), std::string::npos);
  EXPECT_NE(first.find("field-reorder"), std::string::npos);
  EXPECT_NE(first.find("hot-cold-split"), std::string::npos);
  EXPECT_NE(first.find("intra-pad"), std::string::npos);
}

TEST(PlanJson, EmptyPlanRoundTrips) {
  Ctx c = analyze(kAllKindsSource);
  TransformPlan plan;  // default: no decisions, planner ""
  std::string first = plan_to_json(plan, *c.prog);
  TransformPlan parsed = plan_from_json(first, *c.prog);
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(plan_to_json(parsed, *c.prog), first);
}

TEST(PlanJson, RejectsMalformedDocuments) {
  Ctx c = analyze(kAllKindsSource);
  // Not JSON at all.
  EXPECT_THROW(plan_from_json("not json", *c.prog), InternalError);
  // Wrong version.
  EXPECT_THROW(plan_from_json(R"({"plan_version": 2, "planner": "x",
      "block_size": 128, "decisions": []})",
                              *c.prog),
               InternalError);
  // Unknown global.
  EXPECT_THROW(plan_from_json(R"({"plan_version": 1, "planner": "x",
      "block_size": 128, "decisions": [{"datum": "nosuch",
      "kind": "pad&align", "reason": {"code": "none"}}]})",
                              *c.prog),
               InternalError);
  // Unknown field.
  EXPECT_THROW(plan_from_json(R"({"plan_version": 1, "planner": "x",
      "block_size": 128, "decisions": [{"datum": "g.nosuch",
      "kind": "pad&align", "reason": {"code": "none"}}]})",
                              *c.prog),
               InternalError);
  // Unknown transform kind.
  EXPECT_THROW(plan_from_json(R"({"plan_version": 1, "planner": "x",
      "block_size": 128, "decisions": [{"datum": "a",
      "kind": "scramble", "reason": {"code": "none"}}]})",
                              *c.prog),
               InternalError);
  // group&transpose without its partition members.
  EXPECT_THROW(plan_from_json(R"({"plan_version": 1, "planner": "x",
      "block_size": 128, "decisions": [{"datum": "a",
      "kind": "group&transpose", "reason": {"code": "none"}}]})",
                              *c.prog),
               InternalError);
  // Non-positive block size.
  EXPECT_THROW(plan_from_json(R"({"plan_version": 1, "planner": "x",
      "block_size": 0, "decisions": []})",
                              *c.prog),
               InternalError);
}

// ---------------------------------------------------------------------------
// plan_diff goldens
// ---------------------------------------------------------------------------

TEST(PlanDiffTest, EmptyDiffRenders) {
  Ctx c = analyze(kAllKindsSource);
  PlanDiff d = plan_diff(c.transforms, c.transforms);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.render(c.summary), "(no plan changes)\n");
}

TEST(PlanDiffTest, GoldenAddedRemovedChanged) {
  Ctx c = analyze(kAllKindsSource);
  TransformPlan before;
  TransformDecision lock{key_of(c, "l"), TransformKind::kLockPad, -1,
                         PartitionShape::kBlocked, 1,
                         {ReasonCode::kLockAlwaysPadded}};
  TransformDecision gt{key_of(c, "a"), TransformKind::kGroupTranspose, 0,
                       PartitionShape::kInterleaved, 1,
                       {ReasonCode::kPerProcessWrites, Pattern::kNone}};
  before.decisions = {lock, gt};

  TransformPlan after;
  TransformDecision gt2 = gt;
  gt2.shape = PartitionShape::kBlocked;
  gt2.chunk = 8;
  TransformDecision pad{key_of(c, "s"), TransformKind::kPadAlign, -1,
                        PartitionShape::kBlocked, 1,
                        {ReasonCode::kProfileFalseSharing, Pattern::kNone,
                         -1, 120, 0.4}};
  after.decisions = {gt2, pad};  // lock removed, gt changed, pad added

  PlanDiff d = plan_diff(before, after);
  EXPECT_EQ(d.removed(), 1u);
  EXPECT_EQ(d.changed(), 1u);
  EXPECT_EQ(d.added(), 1u);
  EXPECT_EQ(d.render(c.summary),
            "- l: lock-pad  -- locks are always padded\n"
            "~ a: group&transpose (pid-dim 0, interleaved)"
            "  -- per-process writes, reads none\n"
            "  -> a: group&transpose (pid-dim 0, blocked C=8)"
            "  -- per-process writes, reads none\n"
            "+ s: pad&align  -- profile: 120 false-sharing misses "
            "(40.0% of attributed)\n");
}

TEST(PlanDiffTest, ReasonOnlyChangeCounts) {
  // Two decisions with the same layout effect but different structured
  // reasons are a change (same_effect distinguishes the two notions).
  Ctx c = analyze(kAllKindsSource);
  TransformDecision a{key_of(c, "s"), TransformKind::kPadAlign, -1,
                      PartitionShape::kBlocked, 1,
                      {ReasonCode::kSharedNonLocal}};
  TransformDecision b = a;
  b.reason = {ReasonCode::kProfileFalseSharing, Pattern::kNone, -1, 10, 0.1};
  EXPECT_TRUE(a.same_effect(b));
  EXPECT_FALSE(a == b);
  TransformPlan pa, pb;
  pa.decisions = {a};
  pb.decisions = {b};
  PlanDiff d = plan_diff(pa, pb);
  EXPECT_EQ(d.changed(), 1u);
  EXPECT_EQ(d.added() + d.removed(), 0u);
}

// ---------------------------------------------------------------------------
// StaticPlanner is the pre-refactor decision procedure
// ---------------------------------------------------------------------------

TEST(StaticPlannerTest, MatchesReferenceAcrossWorkloadMatrix) {
  // Every cell of the experiment matrix: the pipeline (whose plan pass
  // runs StaticPlanner) must be bit-identical to the retained
  // pre-refactor reference path, and a JSON round trip of each cell's
  // plan must reproduce it exactly.
  std::vector<CompileJob> jobs = workload_matrix_jobs();
  ASSERT_GE(jobs.size(), 20u);
  std::vector<CompiledVariant> matrix = compile_matrix(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Compiled& c = matrix[i].compiled;
    Compiled ref = compile_source_reference(jobs[i].source, jobs[i].options);
    EXPECT_EQ(compile_fingerprint(ref), compile_fingerprint(c))
        << jobs[i].label;
    EXPECT_EQ(ref.transforms, c.transforms) << jobs[i].label;
    if (c.options.optimize) {
      EXPECT_EQ(c.transforms.planner, "static") << jobs[i].label;
      EXPECT_EQ(c.transforms.block_size, c.options.block_size)
          << jobs[i].label;
    }
    TransformPlan parsed =
        plan_from_json(plan_to_json(c.transforms, *c.prog), *c.prog);
    EXPECT_EQ(parsed, c.transforms) << jobs[i].label;
  }
}

TEST(StaticPlannerTest, InjectedPlanReproducesCompile) {
  // The --plan-out / --plan-in contract: exporting a plan and compiling
  // with it injected reproduces the exact layout and code image.
  Ctx a = analyze(kAllKindsSource);
  CompileOptions opt;
  opt.overrides = {{"NPROCS", 8}};
  opt.optimize = true;
  Compiled direct = compile_source(kAllKindsSource, opt);

  CompileOptions inj = opt;
  inj.optimize = false;  // the injected plan wins regardless
  inj.plan = std::make_shared<TransformPlan>(plan_from_json(
      plan_to_json(direct.transforms, *direct.prog), *direct.prog));
  Compiled replayed = compile_source(kAllKindsSource, inj);
  EXPECT_EQ(compile_fingerprint(direct), compile_fingerprint(replayed));
}

// ---------------------------------------------------------------------------
// The repair loop converges and fixes what static planning missed
// ---------------------------------------------------------------------------

// A hot per-process array the static heuristics transform, plus a small
// per-process counter array whose static weight is kept below the
// min_weight_fraction threshold — the classic residual-false-sharing
// shape (§5's Maxflow counters).  At 128-byte blocks the eight adjacent
// counters share one line and ping-pong on every round.
constexpr const char* kResidualSource =
    "param NPROCS = 8;"
    "real hot[64]; int cnt[NPROCS];"
    "void main(int pid) { int i; int r;"
    "  for (r = 0; r < 200; r = r + 1) {"
    "    for (i = pid; i < 64; i = i + nprocs) { hot[i] = hot[i] + 1.0; }"
    "    cnt[pid] = cnt[pid] + 1;"
    "  } }";

CompileOptions residual_base() {
  CompileOptions base;
  base.overrides = {{"NPROCS", 8}};
  // Raise the weight threshold so the static planner provably ignores
  // cnt (mirroring how unknown loop bounds under-weight real workloads).
  base.decision.min_weight_fraction = 0.2;
  return base;
}

TEST(RepairLoop, FixesResidualFalseSharingAndConverges) {
  RepairResult rr = repair_loop(kResidualSource, residual_base());

  // The static plan handled hot but missed cnt.
  DiagnosticEngine diags;
  auto prog = parse_and_check(kResidualSource, diags, {{"NPROCS", 8}});
  DatumKey cnt = {prog->find_global("cnt")->id, -1};
  DatumKey hot = {prog->find_global("hot")->id, -1};
  EXPECT_NE(rr.static_plan.find(hot), nullptr);
  EXPECT_EQ(rr.static_plan.find(cnt), nullptr);
  EXPECT_GT(rr.baseline.false_sharing, 0u);

  // The loop repaired it and reached a fixed point.
  ASSERT_FALSE(rr.iterations.empty());
  EXPECT_TRUE(rr.converged);
  EXPECT_TRUE(rr.improved());
  const TransformDecision* d = rr.final_plan().find(cnt);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->reason.code, ReasonCode::kProfileFalseSharing);
  EXPECT_EQ(rr.final_plan().planner, "profile");

  // The first round only ever *adds* decisions (ProfilePlanner never
  // rewrites static ones), and later rounds added nothing.
  EXPECT_GT(rr.iterations[0].diff.added(), 0u);
  EXPECT_EQ(rr.iterations[0].diff.removed(), 0u);
  EXPECT_EQ(rr.iterations[0].diff.changed(), 0u);
  EXPECT_TRUE(rr.iterations.back().diff.empty() ||
              rr.iterations.size() == 1u);

  // Repaired false sharing is (essentially) gone.
  EXPECT_LT(rr.final_stats().false_sharing, rr.baseline.false_sharing / 4);
}

TEST(RepairLoop, FixedPointIsStable) {
  // Running the planner once more over the repaired program's own profile
  // must change nothing (this is what convergence means).
  RepairResult rr = repair_loop(kResidualSource, residual_base());
  ASSERT_TRUE(rr.converged);
  const Compiled& fixed = rr.final_compiled;
  AddressMap am = build_address_map(fixed);
  TraceStudyResult study = run_trace_study(fixed, {128}, 32 * 1024, &am);
  FalseSharingProfile prof = build_fs_profile(study, 128);
  ProfilePlanner planner;
  TransformPlan again = planner.plan({fixed.report, fixed.summary,
                                      residual_base().decision, 128, &prof,
                                      &rr.final_plan()});
  EXPECT_TRUE(plan_diff(rr.final_plan(), again).empty());
}

TEST(RepairLoop, ProfileEntriesSortedByDamage) {
  CompileOptions copt = residual_base();
  copt.optimize = true;
  Compiled c = compile_source(kResidualSource, copt);
  AddressMap am = build_address_map(c);
  TraceStudyResult study = run_trace_study(c, {128}, 32 * 1024, &am);
  FalseSharingProfile prof = build_fs_profile(study, 128);
  EXPECT_EQ(prof.block_size, 128);
  u64 sum = 0;
  double share = 0.0;
  for (size_t i = 0; i < prof.entries.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(prof.entries[i].fs_misses, prof.entries[i - 1].fs_misses);
    }
    sum += prof.entries[i].fs_misses;
    share += prof.entries[i].fs_share;
  }
  EXPECT_EQ(sum, prof.total_fs);
  if (prof.total_fs > 0) {
    EXPECT_NEAR(share, 1.0, 1e-9);
  }
  const FalseSharingProfile::Entry* e = prof.find("cnt");
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->fs_misses, 0u);
}

}  // namespace
}  // namespace fsopt
