// SearchPlanner: the plan-space search scored by simulated misses.
//
// The centerpiece is a brute-force oracle: for synthetic workloads whose
// constraint-pruned move space is small, the whole cross product of
// per-datum moves is enumerated and evaluated independently, and the
// search (given a budget covering the space) must land on exactly the
// oracle-optimal plan — same (fs_total, spatial_loss) and same
// layout-relevant decisions.  Around it: the seed-dominance invariant
// (never worse than the seed at any swept size, in both the exhaustive
// and the beam regime), graceful degradation at budget 0, bit-identical
// results across thread counts and repeated runs, the FSOPT_SEARCH_BUDGET
// override, a property-fuzz pass over random budgets (FSOPT_FUZZ_ITERS
// scales it), and the kFieldReorder path: planner emission, JSON
// round-trip and plan re-injection producing identical miss tables.
#include "transform/search.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>

#include "driver/experiment.h"
#include "lang/sema.h"
#include "support/json.h"

namespace fsopt {
namespace {

// Two single-word-per-process arrays ping-ponging adjacent words: two
// program datums plus the interpreter barrier, each with a handful of
// feasible moves — a plan space of a few dozen assignments, small enough
// to enumerate exhaustively yet rich enough that moves interact (both
// arrays must be treated to zero the false sharing).
constexpr const char* kTwoArrays =
    "param NPROCS = 4;"
    "int x[NPROCS]; int y[NPROCS];"
    "void main(int pid) { int r;"
    "  for (r = 0; r < 50; r = r + 1) {"
    "    x[pid] = x[pid] + 1;"
    "    y[pid] = y[pid] + r;"
    "  } }";

// Four 32-byte array fields, interleaved across two processor classes:
// proc 0 owns a and c, proc 4 owns b and d.  In source order every
// 64-byte block mixes the classes; the permutation [a, c, b, d] packs
// each class into its own block — the case where a free field reorder
// beats a footprint-costing hot/cold split.
constexpr const char* kReorder =
    "param NPROCS = 8;"
    "struct S { int a[8]; int b[8]; int c[8]; int d[8]; };"
    "struct S g[1];"
    "void main(int pid) { int i; int r;"
    "  for (r = 0; r < 50; r = r + 1) {"
    "    if (pid == 0) { for (i = 0; i < 8; i = i + 1) {"
    "      g[0].a[i] = g[0].a[i] + 1; g[0].c[i] = g[0].c[i] + 1; } }"
    "    if (pid == 4) { for (i = 0; i < 8; i = i + 1) {"
    "      g[0].b[i] = g[0].b[i] + 1; g[0].d[i] = g[0].d[i] + 1; } }"
    "  } }";

// Layout-relevant canonical key (decision order and reasons excluded),
// mirroring the dedup rule the search applies, so the oracle can compare
// plans the way the search does.
std::string key_of(const TransformPlan& p) {
  std::vector<std::string> lines;
  for (const TransformDecision& d : p.decisions) {
    std::string s = std::to_string(d.datum.sym) + "." +
                    std::to_string(d.datum.field) + ":" +
                    std::to_string(static_cast<int>(d.kind)) + ":" +
                    std::to_string(d.pid_dim) + ":" +
                    std::to_string(static_cast<int>(d.shape)) + ":" +
                    std::to_string(d.chunk);
    for (int f : d.fields) s += "," + std::to_string(f);
    lines.push_back(std::move(s));
  }
  std::sort(lines.begin(), lines.end());
  std::string key;
  for (const std::string& l : lines) {
    key += l;
    key += ";";
  }
  return key;
}

// Real-replay harness: baseline compile, profiles distilled from an
// attributed + conflict-collecting study, and a memoizing evaluator
// (compile with the candidate plan injected, study the swept sizes).
// The memo makes the oracle's exhaustive re-walk of the space nearly
// free after the search has evaluated most of it.
struct SearchHarness {
  std::string source;
  CompileOptions options;
  Compiled compiled;
  AddressMap am;
  FalseSharingProfile profile;
  ConflictProfile conflicts;
  TransformPlan empty_base;
  std::vector<i64> blocks{32, 64, 128, 256};
  i64 target = 128;
  int threads = 1;
  std::shared_ptr<std::map<std::string, PlanScore>> memo =
      std::make_shared<std::map<std::string, PlanScore>>();

  static SearchHarness make(const char* src, i64 nprocs) {
    SearchHarness h;
    h.source = src;
    h.options.overrides = {{"NPROCS", nprocs}};
    h.compiled = compile_source(h.source, h.options);
    h.am = build_address_map(h.compiled);
    TraceStudyResult st = run_trace_study(h.compiled, h.blocks, 32 * 1024,
                                          &h.am, 1, 0, true);
    h.profile = build_fs_profile(st, h.target);
    h.conflicts = build_conflict_profile(st, h.target, h.am);
    return h;
  }

  PlannerInputs inputs() const {
    PlannerInputs in{compiled.report, compiled.summary, {}, target,
                     &profile, &empty_base, &conflicts};
    return in;
  }

  PlanEvaluator evaluator() {
    return [this](const TransformPlan& p) {
      auto it = memo->find(key_of(p));
      if (it != memo->end()) return it->second;
      CompileOptions o = options;
      o.plan = std::make_shared<TransformPlan>(p);
      Compiled c = compile_source(source, o);
      TraceStudyResult st =
          run_trace_study(c, blocks, 32 * 1024, nullptr, threads, 0, false);
      PlanScore s;
      for (i64 b : blocks) {
        s.fs[b] = st.at(b).false_sharing;
        s.cold_capacity[b] = st.at(b).cold + st.at(b).replacement;
      }
      s.footprint = c.layout.total_bytes();
      (*memo)[key_of(p)] = s;
      return s;
    };
  }
};

u64 spatial_loss_of(const PlanScore& s, const PlanScore& seed, i64 block) {
  u64 loss = 0;
  for (const auto& [b, v] : s.cold_capacity) {
    auto it = seed.cold_capacity.find(b);
    u64 base = it != seed.cold_capacity.end() ? it->second : 0;
    if (v > base) loss += v - base;
  }
  if (s.footprint > seed.footprint)
    loss += static_cast<u64>((s.footprint - seed.footprint + block - 1) /
                             block);
  return loss;
}

void expect_frontier_sound(const SearchResult& r) {
  ASSERT_FALSE(r.frontier.empty());
  // Ascending fs_total, strictly descending spatial_loss: the very shape
  // of a non-dominated set over two minimized axes.
  for (size_t i = 1; i < r.frontier.size(); ++i) {
    const SearchCandidate& prev = r.evaluated[r.frontier[i - 1]];
    const SearchCandidate& cur = r.evaluated[r.frontier[i]];
    EXPECT_LE(prev.fs_total, cur.fs_total);
    EXPECT_GT(prev.spatial_loss, cur.spatial_loss);
  }
  // No evaluated candidate strictly dominates a frontier member.
  for (size_t fi : r.frontier)
    for (const SearchCandidate& c : r.evaluated) {
      bool dominates = (c.fs_total < r.evaluated[fi].fs_total &&
                        c.spatial_loss <= r.evaluated[fi].spatial_loss) ||
                       (c.fs_total <= r.evaluated[fi].fs_total &&
                        c.spatial_loss < r.evaluated[fi].spatial_loss);
      EXPECT_FALSE(dominates)
          << "candidate " << c.order << " dominates frontier member " << fi;
    }
}

void expect_never_worse_than_seed(const SearchResult& r) {
  const PlanScore& seed = r.evaluated[0].score;
  for (i64 b : r.blocks) {
    EXPECT_LE(r.best().score.fs.at(b), seed.fs.at(b)) << "block " << b;
    EXPECT_LE(r.evaluated[r.best_by_block.at(b)].score.fs.at(b),
              seed.fs.at(b))
        << "block " << b;
  }
}

// ---------------------------------------------------------------------------
// Brute-force oracle: the exhaustive regime must find the space optimum.
// ---------------------------------------------------------------------------

TEST(SearchOracle, ExhaustiveRegimeMatchesBruteForce) {
  SearchHarness h = SearchHarness::make(kTwoArrays, 4);
  SearchBudget budget;
  budget.max_replays = 500;
  SearchPlanner planner(budget, h.blocks, h.evaluator());
  PlannerInputs in = h.inputs();

  SearchResult r = planner.search(in);
  ASSERT_GT(r.evaluated[0].fs_total, 0u) << "seed must leave work to do";
  ASSERT_TRUE(r.exhaustive) << "space must fit the budget for the oracle";

  // Enumerate the full cross product of per-datum moves ourselves, from
  // the same seed, over the same pruned domains, in the search's own
  // digit order — the independent referee.
  std::vector<SearchDomain> domains = planner.domains(in);
  ASSERT_GE(domains.size(), 2u);
  u64 space = 1;
  for (const SearchDomain& d : domains) space *= d.moves.size() + 1;
  ASSERT_LE(space - 1, static_cast<u64>(budget.max_replays));

  PlanEvaluator eval = h.evaluator();
  PlanScore seed_score = eval(h.empty_base);
  bool have_best = false;
  u64 best_fs = 0, best_loss = 0;
  TransformPlan best_plan;
  for (u64 idx = 0; idx < space; ++idx) {
    u64 rem = idx;
    TransformPlan p = h.empty_base;
    for (const SearchDomain& d : domains) {
      u64 digit = rem % (d.moves.size() + 1);
      rem /= d.moves.size() + 1;
      if (digit > 0) p = apply_search_move(p, d.moves[digit - 1]);
    }
    PlanScore s = eval(p);
    // The oracle optimum honors the same contract as the search: weakly
    // dominate the seed at every swept size.
    bool dominates = true;
    for (const auto& [b, v] : seed_score.fs)
      if (s.fs.at(b) > v) dominates = false;
    if (!dominates) continue;
    u64 fs = s.fs_total();
    u64 loss = spatial_loss_of(s, seed_score, h.target);
    if (!have_best || fs < best_fs ||
        (fs == best_fs && loss < best_loss)) {
      have_best = true;
      best_fs = fs;
      best_loss = loss;
      best_plan = p;
    }
  }
  ASSERT_TRUE(have_best);

  EXPECT_EQ(r.best().fs_total, best_fs);
  EXPECT_EQ(r.best().spatial_loss, best_loss);
  EXPECT_EQ(key_of(r.best().plan), key_of(best_plan));
  // The search actually solves this space: both arrays get treated.
  EXPECT_EQ(best_fs, 0u);
  EXPECT_LT(r.best().fs_total, r.evaluated[0].fs_total);

  expect_never_worse_than_seed(r);
  expect_frontier_sound(r);
}

// The search seeded by the graph planner can only refine it: at every
// swept size the winner's false sharing is at most the graph plan's.
TEST(SearchOracle, NeverWorseThanGraphPlannerSeed) {
  SearchHarness h = SearchHarness::make(kTwoArrays, 4);
  SearchBudget budget;
  budget.max_replays = 60;
  SearchPlanner planner(budget, h.blocks, h.evaluator());
  PlannerInputs in = h.inputs();
  in.base = nullptr;  // seed from GraphPlanner over the same inputs

  SearchResult r = planner.search(in);
  PlannerInputs gin = h.inputs();
  gin.base = nullptr;
  PlanScore graph_score = h.evaluator()(GraphPlanner().plan(gin));
  for (i64 b : h.blocks)
    EXPECT_LE(r.best().score.fs.at(b), graph_score.fs.at(b))
        << "block " << b;
  expect_frontier_sound(r);
}

// ---------------------------------------------------------------------------
// Budget handling
// ---------------------------------------------------------------------------

TEST(SearchBudgetTest, TightBudgetStaysWithinReplayBound) {
  SearchHarness h = SearchHarness::make(kTwoArrays, 4);
  SearchBudget budget;
  budget.max_replays = 5;  // far below the space: beam regime
  budget.beam_width = 2;
  SearchPlanner planner(budget, h.blocks, h.evaluator());
  SearchResult r = planner.search(h.inputs());

  EXPECT_FALSE(r.exhaustive);
  EXPECT_LE(r.replays, static_cast<u64>(budget.max_replays) + 1);
  EXPECT_GT(r.evaluated.size(), 1u);
  expect_never_worse_than_seed(r);
  expect_frontier_sound(r);
}

TEST(SearchBudgetTest, ZeroBudgetDegradesToSeed) {
  SearchHarness h = SearchHarness::make(kTwoArrays, 4);
  SearchBudget budget;
  budget.max_replays = 0;
  SearchPlanner planner(budget, h.blocks, h.evaluator());
  SearchResult r = planner.search(h.inputs());

  EXPECT_EQ(r.replays, 1u);
  ASSERT_EQ(r.evaluated.size(), 1u);
  EXPECT_EQ(r.best_overall, 0u);
  EXPECT_EQ(r.frontier, std::vector<size_t>{0});
  // The winner *is* the seed, decision for decision.
  EXPECT_EQ(key_of(r.best().plan), key_of(h.empty_base));
}

TEST(SearchBudgetTest, EnvOverrideParsesAndIgnoresGarbage) {
  ASSERT_EQ(setenv("FSOPT_SEARCH_BUDGET", "7", 1), 0);
  EXPECT_EQ(search_budget_from_env().max_replays, 7);
  ASSERT_EQ(setenv("FSOPT_SEARCH_BUDGET", "-3", 1), 0);
  EXPECT_EQ(search_budget_from_env().max_replays, SearchBudget{}.max_replays);
  ASSERT_EQ(setenv("FSOPT_SEARCH_BUDGET", "nope", 1), 0);
  EXPECT_EQ(search_budget_from_env().max_replays, SearchBudget{}.max_replays);
  unsetenv("FSOPT_SEARCH_BUDGET");
}

// ---------------------------------------------------------------------------
// Determinism: identical plans, winners and frontier — byte for byte —
// for any evaluator thread count and across repeated runs.
// ---------------------------------------------------------------------------

TEST(SearchDeterminism, BitIdenticalAcrossThreadsAndRuns) {
  SearchBudget budget;
  budget.max_replays = 40;

  std::vector<std::string> docs;
  for (int threads : {1, 4, 1}) {
    SearchHarness h = SearchHarness::make(kTwoArrays, 4);
    h.threads = threads;
    h.memo->clear();  // no cross-run reuse: every run replays for real
    SearchPlanner planner(budget, h.blocks, h.evaluator());
    SearchResult r = planner.search(h.inputs());
    docs.push_back(search_result_to_json(r, *h.compiled.prog));
  }
  EXPECT_EQ(docs[0], docs[1]) << "threads=1 vs threads=4";
  EXPECT_EQ(docs[0], docs[2]) << "repeated run";
}

// ---------------------------------------------------------------------------
// apply_search_move semantics
// ---------------------------------------------------------------------------

TEST(ApplySearchMove, DisplacesCollidingDecisionsAndHonorsRemoval) {
  TransformPlan plan;
  plan.decisions.push_back({{7, -1}, TransformKind::kPadAlign, -1,
                            PartitionShape::kBlocked, 1, {}});
  plan.decisions.push_back({{9, 2}, TransformKind::kIntraPad, -1,
                            PartitionShape::kBlocked, 64, {}});

  // Symbol-level move on sym 9 displaces the field-level decision.
  TransformDecision mv{{9, -1}, TransformKind::kHotColdSplit, -1,
                       PartitionShape::kBlocked, 1, {}};
  mv.fields = {0, 1};
  TransformPlan next = apply_search_move(plan, mv);
  ASSERT_EQ(next.decisions.size(), 2u);
  EXPECT_EQ(next.decisions[0].datum.sym, 7);
  EXPECT_EQ(next.decisions[1].kind, TransformKind::kHotColdSplit);

  // kNone is pure removal.
  TransformDecision none{{7, -1}, TransformKind::kNone, -1,
                         PartitionShape::kBlocked, 1, {}};
  TransformPlan removed = apply_search_move(next, none);
  ASSERT_EQ(removed.decisions.size(), 1u);
  EXPECT_EQ(removed.decisions[0].datum.sym, 9);

  // Unrelated datums stack.
  TransformDecision other{{11, -1}, TransformKind::kPadAlign, -1,
                          PartitionShape::kBlocked, 1, {}};
  EXPECT_EQ(apply_search_move(removed, other).decisions.size(), 2u);
}

// ---------------------------------------------------------------------------
// Property fuzz: random budgets, fixed workload.  Every run must honor
// the replay bound, seed dominance, frontier soundness and determinism.
// FSOPT_FUZZ_ITERS scales the number of rounds.
// ---------------------------------------------------------------------------

TEST(SearchFuzz, InvariantsHoldAcrossRandomBudgets) {
  int iters = 4;
  if (const char* env = std::getenv("FSOPT_FUZZ_ITERS")) {
    int v = std::atoi(env);
    if (v > 0) iters = v;
  }
  SearchHarness h = SearchHarness::make(kTwoArrays, 4);
  std::mt19937 rng(20260808);
  for (int it = 0; it < iters; ++it) {
    SearchBudget budget;
    budget.max_replays = static_cast<int>(rng() % 48);
    budget.beam_width = 1 + static_cast<int>(rng() % 4);
    budget.max_rounds = 1 + static_cast<int>(rng() % 3);
    SearchPlanner planner(budget, h.blocks, h.evaluator());

    SearchResult r1 = planner.search(h.inputs());
    SearchResult r2 = planner.search(h.inputs());
    SCOPED_TRACE("iter " + std::to_string(it) + " max_replays=" +
                 std::to_string(budget.max_replays) + " beam=" +
                 std::to_string(budget.beam_width));
    EXPECT_LE(r1.replays, static_cast<u64>(budget.max_replays) + 1);
    expect_never_worse_than_seed(r1);
    expect_frontier_sound(r1);
    EXPECT_EQ(search_result_to_json(r1, *h.compiled.prog),
              search_result_to_json(r2, *h.compiled.prog))
        << "same budget, same inputs, different result";
  }
}

// ---------------------------------------------------------------------------
// kFieldReorder: emission, JSON round-trip, re-injection identity.
// ---------------------------------------------------------------------------

struct Ctx {
  std::unique_ptr<Program> prog;
  ProgramSummary summary;
  SharingReport report;
};

Ctx analyze(std::string_view src, i64 nprocs) {
  Ctx c;
  DiagnosticEngine diags;
  c.prog = parse_and_check(src, diags, {{"NPROCS", nprocs}});
  c.summary = analyze_program(*c.prog);
  c.report = classify_sharing(c.summary);
  return c;
}

// A synthetic conflict profile with the known two-class structure of
// kReorder: proc 0 owns fields a (offset 0) and c (offset 64), proc 4
// owns b (offset 32) and d (offset 96).
ConflictProfile reorder_conflicts() {
  ConflictProfile prof;
  prof.block_size = 64;
  prof.total_weight = 160;
  prof.entries.push_back({"g",
                          160,
                          {{0, 32, 0, 4, 40},
                           {32, 0, 4, 0, 40},
                           {64, 96, 0, 4, 40},
                           {96, 64, 4, 0, 40}}});
  return prof;
}

TEST(FieldReorder, GraphPlannerEmitsSeparatingPermutation) {
  Ctx c = analyze(kReorder, 8);
  const GlobalSym* g = c.prog->find_global("g");
  ASSERT_NE(g, nullptr);
  TransformPlan empty;
  ConflictProfile prof = reorder_conflicts();
  GraphPlanner planner;
  PlannerInputs in{c.report, c.summary, {}, 64, nullptr, &empty, &prof};
  TransformPlan plan = planner.plan(in);

  const TransformDecision* d = plan.find({g->id, -1});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kFieldReorder);
  // a (class 0), c (class 0), b (class 4), d (class 4).
  EXPECT_EQ(d->fields, (std::vector<int>{0, 2, 1, 3}));
  EXPECT_EQ(d->reason.code, ReasonCode::kConflictGraph);

  // When the permutation provably cannot separate the classes at the
  // target size — a 256-byte unit swallows the whole 128-byte element —
  // the planner must fall back to the hot/cold split instead.
  PlannerInputs big = in;
  big.block_size = 256;
  TransformPlan big_plan = planner.plan(big);
  const TransformDecision* d2 = big_plan.find({g->id, -1});
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d2->kind, TransformKind::kHotColdSplit);

  // Disabling the knob suppresses emission outright.
  GraphPlannerOptions no_reorder;
  no_reorder.try_field_reorder = false;
  TransformPlan split_plan = GraphPlanner(no_reorder).plan(in);
  const TransformDecision* d3 = split_plan.find({g->id, -1});
  ASSERT_NE(d3, nullptr);
  EXPECT_EQ(d3->kind, TransformKind::kHotColdSplit);
}

TEST(FieldReorder, JsonRoundTripAndReinjectionIdentity) {
  Ctx c = analyze(kReorder, 8);
  TransformPlan empty;
  ConflictProfile prof = reorder_conflicts();
  GraphPlanner planner;
  PlannerInputs in{c.report, c.summary, {}, 64, nullptr, &empty, &prof};
  TransformPlan plan = planner.plan(in);
  ASSERT_NE(plan.find({c.prog->find_global("g")->id, -1}), nullptr);

  // Round-trip: serialize -> parse -> serialize is byte-equal and the
  // permutation survives.
  std::string doc = plan_to_json(plan, *c.prog);
  TransformPlan parsed = plan_from_json(doc, *c.prog);
  EXPECT_EQ(plan_to_json(parsed, *c.prog), doc);
  EXPECT_EQ(parsed, plan);

  // Re-injection: compiling with the plan and with its JSON round-trip
  // must produce identical miss tables at every swept size — and the
  // reorder must actually eliminate g's false sharing, which the natural
  // field order provably has at 64 (every block mixes the two classes).
  CompileOptions base;
  base.overrides = {{"NPROCS", 8}};
  std::vector<i64> blocks{32, 64};

  Compiled plain = compile_source(kReorder, base);
  AddressMap am0 = build_address_map(plain);
  TraceStudyResult st0 = run_trace_study(plain, blocks, 32 * 1024, &am0);
  EXPECT_GT(st0.by_datum.at(64).at("g").false_sharing, 0u);

  CompileOptions with_plan = base;
  with_plan.block_size = 64;
  with_plan.plan = std::make_shared<TransformPlan>(plan);
  Compiled direct = compile_source(kReorder, with_plan);
  AddressMap am1 = build_address_map(direct);
  TraceStudyResult st1 = run_trace_study(direct, blocks, 32 * 1024, &am1);

  CompileOptions with_parsed = base;
  with_parsed.block_size = 64;
  with_parsed.plan = std::make_shared<TransformPlan>(parsed);
  Compiled rt = compile_source(kReorder, with_parsed);
  AddressMap am2 = build_address_map(rt);
  TraceStudyResult st2 = run_trace_study(rt, blocks, 32 * 1024, &am2);

  for (i64 b : blocks) {
    EXPECT_EQ(st1.at(b), st2.at(b)) << "block " << b;
    EXPECT_EQ(st1.by_datum.at(b), st2.by_datum.at(b)) << "block " << b;
  }
  EXPECT_EQ(st1.by_datum.at(64).at("g").false_sharing, 0u)
      << "the permutation should put each class in its own block";
}

}  // namespace
}  // namespace fsopt
