// Golden-message coverage for the PPL diagnostics path and the metered
// pass pipeline: invalid programs must produce the exact messages (with
// source locations) that tools/fsoptc.cpp prints, and the pipeline must
// report the fixed pass structure with populated timings — identically
// for any thread count of a matrix compile.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "driver/pipeline.h"
#include "support/timing.h"

namespace fsopt {
namespace {

/// Compile expecting failure; returns the thrown CompileError.
CompileError compile_expect_error(std::string_view src,
                                  const ParamOverrides& overrides = {}) {
  try {
    CompileOptions o;
    o.overrides = overrides;
    compile_source(src, o);
  } catch (const CompileError& e) {
    return e;
  }
  ADD_FAILURE() << "expected CompileError for:\n" << src;
  return CompileError("unreachable");
}

/// The diagnostic whose message contains `needle`, or nullptr.
const Diagnostic* find_diag(const CompileError& e, const std::string& needle) {
  for (const Diagnostic& d : e.diagnostics)
    if (d.message.find(needle) != std::string::npos) return &d;
  return nullptr;
}

// ---------------------------------------------------------------------
// Golden messages: representative invalid PPL programs.
// ---------------------------------------------------------------------

TEST(Diagnostics, AssignmentTypeMismatchHasLocation) {
  CompileError e = compile_expect_error(
      "param NPROCS = 2;\n"
      "real r;\n"
      "void main(int pid) {\n"
      "  r = 1;\n"
      "}\n");
  ASSERT_EQ(e.diagnostics.size(), 1u);
  const Diagnostic& d = e.diagnostics[0];
  EXPECT_EQ(d.message, "assignment type mismatch: real = int");
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_TRUE(d.loc.valid());
  EXPECT_EQ(d.loc.line, 4);
  // what() carries the same rendered text the engine produced.
  EXPECT_NE(std::string(e.what()).find(d.message), std::string::npos);
}

TEST(Diagnostics, UnknownVariable) {
  CompileError e = compile_expect_error(
      "param NPROCS = 2;\n"
      "void main(int pid) {\n"
      "  y = 1;\n"
      "}\n");
  const Diagnostic* d = find_diag(e, "unknown variable 'y'");
  ASSERT_NE(d, nullptr) << e.what();
  EXPECT_EQ(d->loc.line, 3);
}

TEST(Diagnostics, SeveralErrorsReportedTogether) {
  // Sema records problems and throws once, so a driver can show all of
  // them in a single run instead of one per recompile.
  CompileError e = compile_expect_error(
      "param NPROCS = 2;\n"
      "real r;\n"
      "void main(int pid) {\n"
      "  r = 1;\n"
      "  y = 1;\n"
      "}\n");
  EXPECT_GE(e.diagnostics.size(), 2u) << e.what();
  EXPECT_NE(find_diag(e, "assignment type mismatch"), nullptr);
  EXPECT_NE(find_diag(e, "unknown variable 'y'"), nullptr);
}

TEST(Diagnostics, UnknownParamInConstantExpression) {
  CompileError e = compile_expect_error(
      "param NPROCS = 2;\n"
      "int x[NOSUCH];\n"
      "void main(int pid) { }\n");
  const Diagnostic* d =
      find_diag(e, "unknown param 'NOSUCH' in constant expression");
  ASSERT_NE(d, nullptr) << e.what();
  EXPECT_EQ(d->loc.line, 2);
}

TEST(Diagnostics, UnknownOverrideNamesAreIgnored) {
  // Override sets are shared across workload variants, so an override
  // naming a param this source does not declare is not an error.
  CompileOptions o;
  o.overrides = {{"NOSUCH", 8}};
  Compiled c = compile_source("param NPROCS = 2; void main(int pid) { }", o);
  EXPECT_EQ(c.nprocs(), 2);
}

TEST(Diagnostics, MalformedSpmdMain) {
  CompileError wrong_sig = compile_expect_error(
      "param NPROCS = 2;\nvoid main() { }\n");
  EXPECT_NE(find_diag(wrong_sig, "void main(int pid)"), nullptr)
      << wrong_sig.what();

  CompileError wrong_ret = compile_expect_error(
      "param NPROCS = 2;\nint main(int pid) { return 0; }\n");
  EXPECT_NE(find_diag(wrong_ret, "void main(int pid)"), nullptr)
      << wrong_ret.what();

  CompileError missing = compile_expect_error("int x;\n");
  EXPECT_NE(find_diag(missing, "no 'main'"), nullptr) << missing.what();
}

TEST(Diagnostics, ParserErrorsCarryDiagnosticsToo) {
  CompileError e = compile_expect_error(
      "param NPROCS = 2;\nvoid main(int pid) { x = ; }\n");
  ASSERT_FALSE(e.diagnostics.empty());
  EXPECT_TRUE(e.diagnostics.front().loc.valid());
  EXPECT_EQ(e.diagnostics.front().severity, DiagSeverity::kError);
}

// ---------------------------------------------------------------------
// Pipeline metrics: pass structure, timings, determinism.
// ---------------------------------------------------------------------

const char* kSmall =
    "param NPROCS = 4;\n"
    "param N = 64;\n"
    "struct cell { int count; int pad; };\n"
    "struct cell cells[64];\n"
    "void main(int pid) {\n"
    "  int i;\n"
    "  for (i = pid; i < N; i = i + NPROCS) {\n"
    "    cells[i].count = cells[i].count + 1;\n"
    "  }\n"
    "  barrier();\n"
    "}\n";

std::vector<std::string> expected_pass_names() {
  return {"parse",       "sema",   "callgraph", "pdv",
          "percf",       "phases", "sideeffects", "report",
          "plan",        "layout", "codegen"};
}

TEST(PipelineMetrics, PassNamesAndOrdering) {
  EXPECT_EQ(compile_pass_names(), expected_pass_names());
  // Front half is exactly the (source, overrides)-only prefix.
  EXPECT_EQ(front_pipeline().pass_names(),
            (std::vector<std::string>{"parse", "sema"}));
}

TEST(PipelineMetrics, MeteredCompilePopulatesEveryPass) {
  PipelineMetrics m;
  CompileOptions opt;
  opt.optimize = true;
  Compiled c = compile_source_metered(kSmall, opt, &m);
  EXPECT_EQ(m.pass_names(), expected_pass_names());
  for (const PassMetrics& p : m.passes) {
    EXPECT_GE(p.seconds, 0.0) << p.name;
  }
  EXPECT_GT(m.total_seconds(), 0.0);
  // Structure of the compiled program shows up in the domain counters.
  ASSERT_NE(m.find("parse"), nullptr);
  EXPECT_EQ(m.find("parse")->counter("functions"), 1);
  EXPECT_EQ(m.find("sema")->counter("nprocs"), 4);
  EXPECT_GE(m.find("pdv")->counter("pdvs"), 1);
  EXPECT_GE(m.find("codegen")->counter("instructions"), 1);
  EXPECT_EQ(c.nprocs(), 4);
}

TEST(PipelineMetrics, PassStructureIndependentOfOptions) {
  PipelineMetrics with, without;
  CompileOptions opt;
  opt.optimize = true;
  compile_source_metered(kSmall, opt, &with);
  opt.optimize = false;
  compile_source_metered(kSmall, opt, &without);
  EXPECT_EQ(with.pass_names(), without.pass_names());
}

TEST(PipelineMetrics, JsonAndTableRender) {
  PipelineMetrics m;
  compile_source_metered(kSmall, CompileOptions{}, &m);
  std::string json = m.to_json();
  EXPECT_NE(json.find("\"passes\""), std::string::npos);
  EXPECT_NE(json.find("\"sideeffects\""), std::string::npos);
  EXPECT_NE(m.render().find("codegen"), std::string::npos);
}

TEST(PipelineMetrics, StopwatchAndBestOfBehave) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
  int calls = 0;
  double t = best_of(3, [&] { ++calls; });
  EXPECT_EQ(calls, 3);
  EXPECT_GE(t, 0.0);
}

#ifndef FSOPT_NO_ALLOC_METRICS
TEST(PipelineMetrics, AllocationTrafficIsMetered) {
  AllocCounters before = thread_alloc_counters();
  auto* sink = new std::vector<int>(4096);
  AllocCounters after = thread_alloc_counters();
  delete sink;
  EXPECT_GT(after.count, before.count);
  EXPECT_GE(after.bytes - before.bytes, 4096 * sizeof(int));

  PipelineMetrics m;
  compile_source_metered(kSmall, CompileOptions{}, &m);
  EXPECT_GT(m.total_alloc_bytes(), 0u);
  EXPECT_GT(m.find("parse")->alloc_count, 0u);
}
#endif

// ---------------------------------------------------------------------
// Pipeline vs. retained reference path, and matrix determinism.
// ---------------------------------------------------------------------

TEST(Pipeline, MatchesReferencePath) {
  for (bool optimize : {false, true}) {
    CompileOptions opt;
    opt.optimize = optimize;
    Compiled pipe = compile_source(kSmall, opt);
    Compiled ref = compile_source_reference(kSmall, opt);
    EXPECT_EQ(compile_fingerprint(pipe), compile_fingerprint(ref))
        << "optimize=" << optimize;
  }
}

TEST(Pipeline, SharedFrontMatchesPrivateFront) {
  FrontHalf front = run_front(kSmall, {});
  CompileOptions n, c;
  n.optimize = false;
  c.optimize = true;
  Compiled from_shared_n = run_back(front, n);
  Compiled from_shared_c = run_back(front, c);
  EXPECT_EQ(compile_fingerprint(from_shared_n),
            compile_fingerprint(compile_source(kSmall, n)));
  EXPECT_EQ(compile_fingerprint(from_shared_c),
            compile_fingerprint(compile_source(kSmall, c)));
  // Both backs share one Program instance.
  EXPECT_EQ(from_shared_n.prog.get(), from_shared_c.prog.get());
}

TEST(Pipeline, MatrixIsDeterministicAcrossThreadCounts) {
  std::string src2 =
      "param NPROCS = 2; int x[16];\n"
      "void main(int pid) { x[pid] = pid; barrier(); }\n";
  CompileOptions n, c;
  n.optimize = false;
  c.optimize = true;
  std::vector<CompileJob> jobs = {
      {"small/N", kSmall, n},
      {"small/C", kSmall, c},
      {"tiny/N", src2, n},
      {"tiny/C", src2, c},
  };
  std::vector<CompiledVariant> base = compile_matrix(jobs, 1);
  ASSERT_EQ(base.size(), jobs.size());
  // N owns the group front; C rides on it.
  EXPECT_FALSE(base[0].front_shared);
  EXPECT_TRUE(base[1].front_shared);
  EXPECT_FALSE(base[2].front_shared);
  EXPECT_TRUE(base[3].front_shared);
  for (int threads : {2, 4, 8}) {
    std::vector<CompiledVariant> again = compile_matrix(jobs, threads);
    ASSERT_EQ(again.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(compile_fingerprint(again[i].compiled),
                compile_fingerprint(base[i].compiled))
          << jobs[i].label << " threads=" << threads;
      EXPECT_EQ(again[i].metrics.pass_names(), expected_pass_names())
          << jobs[i].label;
      EXPECT_EQ(again[i].front_shared, base[i].front_shared)
          << jobs[i].label;
    }
  }
}

TEST(Pipeline, MatrixSeparatesDifferentOverrides) {
  // Same text, different overrides: must NOT share a front.
  std::vector<CompileJob> jobs = {
      {"p4", kSmall, CompileOptions{}},
      {"p8", kSmall, CompileOptions{}},
  };
  jobs[1].options.overrides["NPROCS"] = 8;
  std::vector<CompiledVariant> r = compile_matrix(jobs, 2);
  EXPECT_FALSE(r[0].front_shared);
  EXPECT_FALSE(r[1].front_shared);
  EXPECT_EQ(r[0].compiled.nprocs(), 4);
  EXPECT_EQ(r[1].compiled.nprocs(), 8);
}

TEST(Pipeline, WorkloadMatrixJobsCoverEveryVersion) {
  std::vector<CompileJob> jobs = workload_matrix_jobs();
  // Ten workloads, each with N and C; some with a P version too.
  EXPECT_GE(jobs.size(), 20u);
  int n = 0, c = 0, p = 0;
  for (const CompileJob& j : jobs) {
    if (j.label.size() >= 2 && j.label.substr(j.label.size() - 2) == "/N") ++n;
    if (j.label.size() >= 2 && j.label.substr(j.label.size() - 2) == "/C") ++c;
    if (j.label.size() >= 2 && j.label.substr(j.label.size() - 2) == "/P") ++p;
  }
  EXPECT_EQ(n, 10);
  EXPECT_EQ(c, 10);
  EXPECT_GE(p, 1);
}

}  // namespace
}  // namespace fsopt
