#include "cfg/cfg.h"

#include <gtest/gtest.h>

#include "cfg/callgraph.h"
#include "lang/sema.h"

namespace fsopt {
namespace {

std::unique_ptr<Program> check(std::string_view src) {
  DiagnosticEngine diags;
  return parse_and_check(src, diags, {});
}

TEST(Cfg, StraightLine) {
  auto p = check(
      "param NPROCS = 1; int x;"
      "void main(int pid) { x = 1; x = 2; x = 3; }");
  Cfg cfg(*p->main);
  // entry, exit, 3 assigns
  EXPECT_EQ(cfg.nodes().size(), 5u);
  auto order = cfg.rpo();
  EXPECT_TRUE(order.front()->is_entry);
  EXPECT_TRUE(order.back()->is_exit);
}

TEST(Cfg, IfCreatesDiamond) {
  auto p = check(
      "param NPROCS = 2; int x;"
      "void main(int pid) { if (pid == 0) { x = 1; } else { x = 2; } "
      "x = 3; }");
  Cfg cfg(*p->main);
  const Stmt& ifstmt = *p->main->body->stmts[0];
  CfgNode* cond = cfg.node_for(ifstmt);
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->succs.size(), 2u);
  const Stmt& final_assign = *p->main->body->stmts[1];
  CfgNode* join = cfg.node_for(final_assign);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->preds.size(), 2u);
}

TEST(Cfg, IfWithoutElseFallsThrough) {
  auto p = check(
      "param NPROCS = 2; int x;"
      "void main(int pid) { if (pid == 0) { x = 1; } x = 2; }");
  Cfg cfg(*p->main);
  CfgNode* cond = cfg.node_for(*p->main->body->stmts[0]);
  EXPECT_EQ(cond->succs.size(), 2u);  // then-branch + fallthrough
}

TEST(Cfg, WhileHasBackEdge) {
  auto p = check(
      "param NPROCS = 1; int x;"
      "void main(int pid) { int i; i = 0;"
      "  while (i < 3) { i = i + 1; } x = 1; }");
  Cfg cfg(*p->main);
  const Stmt* wh = nullptr;
  for_each_stmt(*p->main->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::kWhile) wh = &s;
  });
  CfgNode* cond = cfg.node_for(*wh);
  ASSERT_NE(cond, nullptr);
  bool has_back_edge = false;
  for (CfgNode* s : cond->succs)
    for (CfgNode* ss : s->succs)
      if (ss == cond) has_back_edge = true;
  EXPECT_TRUE(has_back_edge);
}

TEST(Cfg, ForLoopDepthAnnotation) {
  auto p = check(
      "param NPROCS = 1; int a[4][4];"
      "void main(int pid) { int i; int j;"
      "  for (i = 0; i < 4; i = i + 1) {"
      "    for (j = 0; j < 4; j = j + 1) { a[i][j] = 0; } } }");
  Cfg cfg(*p->main);
  const Stmt* inner_assign = nullptr;
  for_each_stmt(*p->main->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::kAssign && s.target->kind == ExprKind::kIndex)
      inner_assign = &s;
  });
  ASSERT_NE(inner_assign, nullptr);
  EXPECT_EQ(cfg.node_for(*inner_assign)->loop_depth, 2);
}

TEST(Cfg, ReturnJumpsToExit) {
  auto p = check(
      "param NPROCS = 1;"
      "int f(int x) { if (x > 0) { return 1; } return 2; }"
      "void main(int pid) { int y; y = f(1); }");
  Cfg cfg(*p->find_func("f"));
  EXPECT_EQ(cfg.exit().preds.size(), 2u);  // both returns
}

TEST(Cfg, RpoVisitsAllReachableNodes) {
  auto p = check(
      "param NPROCS = 2; int x;"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 4; i = i + 1) { if (pid == 0) { x = i; } } }");
  Cfg cfg(*p->main);
  auto order = cfg.rpo();
  EXPECT_EQ(order.size(), cfg.nodes().size());
}

TEST(CallGraph, SitesAndCallees) {
  auto p = check(
      "param NPROCS = 1;"
      "int g(int x) { return x; }"
      "int f(int x) { return g(x) + g(x + 1); }"
      "void main(int pid) { int y; y = f(0); }");
  CallGraph cg(*p);
  EXPECT_EQ(cg.sites().size(), 3u);
  EXPECT_EQ(cg.callees(*p->find_func("f")).size(), 1u);  // deduplicated
}

TEST(CallGraph, BottomUpOrder) {
  auto p = check(
      "param NPROCS = 1;"
      "int g(int x) { return x; }"
      "int f(int x) { return g(x); }"
      "void main(int pid) { int y; y = f(0); }");
  CallGraph cg(*p);
  auto order = cg.bottom_up();
  auto pos = [&](const char* name) {
    for (size_t i = 0; i < order.size(); ++i)
      if (order[i]->name == name) return i;
    return order.size();
  };
  EXPECT_LT(pos("g"), pos("f"));
  EXPECT_LT(pos("f"), pos("main"));
}

TEST(CallGraph, Reachability) {
  auto p = check(
      "param NPROCS = 1;"
      "int used(int x) { return x; }"
      "int unused(int x) { return x; }"
      "void main(int pid) { int y; y = used(0); }");
  CallGraph cg(*p);
  EXPECT_TRUE(cg.reachable_from_main(*p->find_func("used")));
  EXPECT_FALSE(cg.reachable_from_main(*p->find_func("unused")));
}

TEST(CallGraph, ForEachExprVisitsIndexExpressions) {
  auto p = check(
      "param NPROCS = 1; int a[8];"
      "void main(int pid) { a[pid + 1] = a[2] + 3; }");
  int vars = 0;
  for_each_expr(*p->main->body, [&](const Expr& e) {
    if (e.kind == ExprKind::kVar) ++vars;
  });
  EXPECT_EQ(vars, 3);  // a, pid, a
}

}  // namespace
}  // namespace fsopt
