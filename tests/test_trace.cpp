// Direct tests for the trace layer: batched sink delivery, the
// TraceBuffer record->replay round-trip, and the interpreter's staged
// emission path.
#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "driver/experiment.h"
#include "trace/trace.h"

namespace fsopt {
namespace {

std::vector<MemRef> make_refs(size_t n) {
  std::vector<MemRef> refs;
  refs.reserve(n);
  for (size_t i = 0; i < n; ++i)
    refs.push_back({static_cast<i64>(4 * i), static_cast<u8>(i % 2 ? 8 : 4),
                    static_cast<u8>(i % 3),
                    i % 2 ? RefType::kWrite : RefType::kRead});
  return refs;
}

bool same_ref(const MemRef& a, const MemRef& b) {
  return a.addr == b.addr && a.size == b.size && a.proc == b.proc &&
         a.type == b.type;
}

TEST(TraceBatch, DefaultOnBatchFallsBackToOnRef) {
  // A sink that only implements on_ref still sees every reference.
  class PerRefOnly : public TraceSink {
   public:
    void on_ref(const MemRef& ref) override { refs.push_back(ref); }
    std::vector<MemRef> refs;
  };
  PerRefOnly sink;
  std::vector<MemRef> refs = make_refs(7);
  sink.on_batch(refs.data(), refs.size());
  ASSERT_EQ(sink.refs.size(), 7u);
  for (size_t i = 0; i < refs.size(); ++i)
    EXPECT_TRUE(same_ref(sink.refs[i], refs[i])) << i;
}

TEST(TraceBatch, CountingSinkBatchMatchesPerRef) {
  std::vector<MemRef> refs = make_refs(11);
  CountingSink batched;
  batched.on_batch(refs.data(), refs.size());
  CountingSink perref;
  for (const MemRef& r : refs) perref.on_ref(r);
  EXPECT_EQ(batched.total(), perref.total());
  EXPECT_EQ(batched.writes(), perref.writes());
  EXPECT_EQ(batched.reads(), perref.reads());
}

TEST(TraceBatch, VectorSinkBatchPreservesOrder) {
  std::vector<MemRef> refs = make_refs(9);
  VectorSink s;
  s.on_batch(refs.data(), 4);
  s.on_batch(refs.data() + 4, 5);
  ASSERT_EQ(s.refs().size(), 9u);
  for (size_t i = 0; i < refs.size(); ++i)
    EXPECT_TRUE(same_ref(s.refs()[i], refs[i])) << i;
}

TEST(TraceBatch, MultiSinkFansOutBatches) {
  std::vector<MemRef> refs = make_refs(5);
  CountingSink a;
  VectorSink b;
  MultiSink m;
  m.add(&a);
  m.add(&b);
  m.on_batch(refs.data(), refs.size());
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(b.refs().size(), 5u);
}

TEST(TraceBatch, CallbackSinkBatchInvokesPerRef) {
  std::vector<MemRef> refs = make_refs(6);
  size_t count = 0;
  CallbackSink s([&](const MemRef&) { ++count; });
  s.on_batch(refs.data(), refs.size());
  EXPECT_EQ(count, 6u);
}

TEST(TraceBuffer, RecordReplayRoundTrip) {
  std::vector<MemRef> refs = make_refs(10);
  TraceBuffer buf;
  for (const MemRef& r : refs) buf.on_ref(r);
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_FALSE(buf.empty());

  VectorSink out;
  buf.replay(out);
  ASSERT_EQ(out.refs().size(), refs.size());
  for (size_t i = 0; i < refs.size(); ++i)
    EXPECT_TRUE(same_ref(out.refs()[i], refs[i])) << i;
}

TEST(TraceBuffer, ChunkBoundariesPreserveOrder) {
  // A tiny chunk size forces batches to split across many chunks.
  std::vector<MemRef> refs = make_refs(23);
  TraceBuffer buf(/*chunk_refs=*/4);
  buf.on_batch(refs.data(), 10);   // crosses 2 chunk boundaries
  buf.on_batch(refs.data() + 10, 13);
  EXPECT_EQ(buf.size(), 23u);

  VectorSink out;
  buf.replay(out);
  ASSERT_EQ(out.refs().size(), refs.size());
  for (size_t i = 0; i < refs.size(); ++i)
    EXPECT_TRUE(same_ref(out.refs()[i], refs[i])) << i;
}

TEST(TraceBuffer, ReplayIsRepeatableAndConst) {
  std::vector<MemRef> refs = make_refs(8);
  TraceBuffer buf(3);
  buf.on_batch(refs.data(), refs.size());
  const TraceBuffer& cref = buf;
  CountingSink a;
  CountingSink b;
  cref.replay(a);
  cref.replay(b);
  EXPECT_EQ(a.total(), 8u);
  EXPECT_EQ(b.total(), 8u);
}

TEST(TraceBuffer, ClearEmptiesTheBuffer) {
  TraceBuffer buf(2);
  std::vector<MemRef> refs = make_refs(5);
  buf.on_batch(refs.data(), refs.size());
  buf.clear();
  EXPECT_TRUE(buf.empty());
  CountingSink s;
  buf.replay(s);
  EXPECT_EQ(s.total(), 0u);
}

TEST(MachineStaging, SinkSeesEveryRefOnceInOrder) {
  const char* src =
      "param NPROCS = 3; param N = 24;\n"
      "int a[N]; lock_t l; int done;\n"
      "void main(int pid) { int i;\n"
      "  for (i = pid; i < N; i = i + nprocs) { a[i] = a[i] + 1; }\n"
      "  barrier();\n"
      "  lock(l); done = done + 1; unlock(l);\n"
      "}\n";
  Compiled c = compile_source(src, {});

  // Two runs with different batch sizes must deliver identical streams.
  VectorSink small_batches;
  MachineOptions mo1;
  mo1.sink = &small_batches;
  mo1.sink_batch = 3;  // forces many flushes
  Machine m1(c.code, mo1);
  m1.run();

  VectorSink one_flush;
  MachineOptions mo2;
  mo2.sink = &one_flush;
  mo2.sink_batch = 1 << 20;  // never fills: single final flush
  Machine m2(c.code, mo2);
  m2.run();

  EXPECT_EQ(small_batches.refs().size(), m1.refs());
  ASSERT_EQ(small_batches.refs().size(), one_flush.refs().size());
  for (size_t i = 0; i < one_flush.refs().size(); ++i)
    EXPECT_TRUE(same_ref(small_batches.refs()[i], one_flush.refs()[i])) << i;
}

TEST(MachineStaging, RecordedTraceMatchesMachineRefCount) {
  const char* src =
      "param NPROCS = 2; param N = 16;\n"
      "real a[N];\n"
      "void main(int pid) { int i;\n"
      "  for (i = pid; i < N; i = i + nprocs) { a[i] = a[i] + 1.0; }\n"
      "  barrier();\n"
      "}\n";
  Compiled c = compile_source(src, {});
  TraceBuffer trace = record_trace(c);
  CountingSink count;
  auto m = run_program(c, &count);
  EXPECT_EQ(trace.size(), m->refs());
  EXPECT_EQ(count.total(), m->refs());
}

}  // namespace
}  // namespace fsopt
