// Bit-exactness of the SIMD dispatch layer (support/simd.h): every
// vector kernel must return exactly what its scalar twin returns, for
// every extent and edge case, and a replay built on the vector tables
// (including the opt-in gather batch loop) must produce stats and
// attribution identical to a forced-scalar replay.  On hosts without
// AVX2/NEON the dispatched table IS the scalar table, so the suite
// degenerates to self-consistency and still passes.
#include "support/simd.h"

#include <gtest/gtest.h>

#include <vector>

#include "driver/experiment.h"
#include "sim/multi.h"

namespace fsopt {
namespace {

/// Restores both in-process overrides (force-scalar and batch-vector)
/// to "defer to the environment" however the test exits.
struct SimdOverrideGuard {
  ~SimdOverrideGuard() {
    simd::set_force_scalar(-1);
    simd::set_batch_vector(-1);
  }
};

TEST(Simd, LevelPlumbing) {
  SimdOverrideGuard guard;
  simd::set_force_scalar(1);
  EXPECT_TRUE(simd::force_scalar());
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::active_kernels().level, simd::Level::kScalar);
  simd::set_force_scalar(0);
  // With the in-process force cleared, the environment (FSOPT_SIMD=0 in
  // the CI scalar leg) may still pin scalar — only assert the dispatch
  // when it does not.
  if (!simd::force_scalar()) {
    EXPECT_EQ(simd::active_level(), simd::detected_level());
  }
  EXPECT_NE(simd::level_name(simd::active_level()), nullptr);
  EXPECT_FALSE(simd::cpu_features().empty());
}

TEST(Simd, Avx512TierSelection) {
  // Requests degrade gracefully across the x86 tiers: an AVX-512 host
  // serves both its own table and the AVX2 one (the FSOPT_SIMD=avx2 cap
  // lands there); an AVX2-only host serves AVX2 for either request; hosts
  // without either serve scalar.
  const simd::Level host = simd::detected_level();
  const simd::Kernels& req512 = simd::kernels(simd::Level::kAVX512);
  const simd::Kernels& req2 = simd::kernels(simd::Level::kAVX2);
  if (host == simd::Level::kAVX512) {
    EXPECT_EQ(req512.level, simd::Level::kAVX512);
    EXPECT_EQ(req2.level, simd::Level::kAVX2);
    EXPECT_NE(req512.max_u32, req2.max_u32);
    EXPECT_NE(req512.any_version_newer, req2.any_version_newer);
  } else if (host == simd::Level::kAVX2) {
    EXPECT_EQ(req512.level, simd::Level::kAVX2);
    EXPECT_EQ(req2.level, simd::Level::kAVX2);
  } else {
    EXPECT_EQ(req512.level, simd::Level::kScalar);
    EXPECT_EQ(req2.level, simd::Level::kScalar);
  }
  EXPECT_STREQ(simd::level_name(simd::Level::kAVX512), "avx512");
}

TEST(Simd, MaxU32MatchesScalarOnEveryExtent) {
  const simd::Kernels& k = simd::kernels(simd::detected_level());
  // A deterministic mix of small, large, and boundary values, swept over
  // every length 0..64 and every alignment offset 0..7 so partial vector
  // tails and unaligned heads are all exercised.
  std::vector<u32> data(128);
  u32 x = 0x9e3779b9u;
  for (u32& v : data) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    v = (x % 5 == 0) ? 0xffffffffu - (x & 7) : x;
  }
  for (size_t off = 0; off < 8; ++off)
    for (size_t n = 0; n + off <= 64; ++n)
      EXPECT_EQ(k.max_u32(data.data() + off, n),
                simd::max_u32_scalar(data.data() + off, n))
          << "off=" << off << " n=" << n;
  EXPECT_EQ(k.max_u32(data.data(), 0), 0u);
}

TEST(Simd, AnyVersionNewerMatchesScalarIncludingBiasEdges) {
  const simd::Kernels& k = simd::kernels(simd::detected_level());
  constexpr u64 kWMask = 127;  // engine writer mask (kWBits = 7)
  std::vector<u64> vers(96);
  u64 x = 0x2545f4914f6cdd1dull;
  for (u64& v : vers) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Mostly small versions, some enormous ones near the signed-compare
    // bias boundary the AVX2 kernel flips around.
    v = (x % 7 == 0) ? (x | (1ull << 63)) : (x % 1024) << 7 | (x & kWMask);
  }
  const u64 bounds[] = {0, 1, 1ull << 7, 1ull << 62, (1ull << 63) + 5,
                        ~0ull};
  for (u64 bound : bounds)
    for (u64 self : {u64{0}, u64{3}, kWMask})
      for (size_t off = 0; off < 4; ++off)
        for (size_t n = 0; n + off <= 48; ++n)
          EXPECT_EQ(
              k.any_version_newer(vers.data() + off, n, bound, self, kWMask),
              simd::any_version_newer_scalar(vers.data() + off, n, bound,
                                             self, kWMask))
              << "bound=" << bound << " self=" << self << " off=" << off
              << " n=" << n;
}

// --- end-to-end: replay stats must not depend on the instruction set --

std::vector<MemRef> contended_stream() {
  std::vector<MemRef> refs;
  for (int i = 0; i < 6000; ++i) {
    u8 proc = static_cast<u8>(i % 8);
    refs.push_back({proc * 4, 4, proc,
                    i % 3 == 0 ? RefType::kWrite : RefType::kRead});
    refs.push_back({512 + (i * 28) % 6144, static_cast<u8>(i % 2 ? 8 : 4),
                    proc, i % 5 == 0 ? RefType::kWrite : RefType::kRead});
  }
  return refs;
}

TEST(Simd, ReplayBitIdenticalScalarVsDispatchedVsGatherLoop) {
  SimdOverrideGuard guard;
  TraceBuffer raw;
  std::vector<MemRef> refs = contended_stream();
  raw.on_batch(refs.data(), refs.size());
  AddressMap am;
  am.add(0, 64, "hot");
  am.add(64, 1 << 13, "cold");
  std::vector<CacheParams> params;
  for (i64 b : {4, 8, 16, 32, 64, 128, 256})
    params.push_back({8, 8192, b, 1 << 13});

  simd::set_force_scalar(1);
  MultiReplayResult scalar = replay_multi(raw, params, &am);

  simd::set_force_scalar(0);  // dispatched kernels, default batch loop
  MultiReplayResult dispatched = replay_multi(raw, params, &am);
  EXPECT_EQ(scalar.stats, dispatched.stats);
  EXPECT_EQ(scalar.by_datum, dispatched.by_datum);

  simd::set_batch_vector(1);  // opt-in gather batch loop (FSOPT_SIMD=2)
  MultiReplayResult gathered = replay_multi(raw, params, &am);
  EXPECT_EQ(scalar.stats, gathered.stats);
  EXPECT_EQ(scalar.by_datum, gathered.by_datum);
}

TEST(Simd, ComposedShardedReplayBitIdenticalAcrossLevels) {
  SimdOverrideGuard guard;
  TraceBuffer raw;
  std::vector<MemRef> refs = contended_stream();
  raw.on_batch(refs.data(), refs.size());
  std::vector<CacheParams> params;
  for (i64 b : {4, 32, 256}) params.push_back({8, 8192, b, 1 << 13});
  MultiShardPlan plan = multi_shard_plan(params, 4);
  ASSERT_GT(plan.shards, 1);
  MultiTracePartition part =
      partition_trace_multi(raw, plan.region_bytes, plan.shards);

  simd::set_force_scalar(1);
  MultiReplayResult scalar = replay_multi_partitioned(part, params);
  simd::set_force_scalar(0);
  simd::set_batch_vector(1);
  MultiReplayResult vector = replay_multi_partitioned(part, params);
  EXPECT_EQ(scalar.stats, vector.stats);
}

}  // namespace
}  // namespace fsopt
