// Tests for the access-pattern taxonomy (sim/patterns.h) and the
// diagnosis layer built on it (analysis/diagnose.h): synthetic reference
// streams with a known shape must get the expected label, an attached
// collector must never change a single simulated statistic, and the
// diagnosis report must survive a JSON round trip byte-exactly.
#include "sim/patterns.h"

#include <gtest/gtest.h>

#include "analysis/diagnose.h"
#include "driver/experiment.h"
#include "support/json.h"

namespace fsopt {
namespace {

MemRef read_ref(i64 addr, int proc) {
  return {addr, 4, static_cast<u8>(proc), RefType::kRead};
}
MemRef write_ref(i64 addr, int proc) {
  return {addr, 4, static_cast<u8>(proc), RefType::kWrite};
}

/// Replay a hand-built stream through a real CacheSim with a
/// PatternCollector attached; return the labeled summaries.
struct Harness {
  AddressMap map;
  CacheParams params;

  explicit Harness(i64 nprocs, i64 cache_bytes = 32 * 1024,
                   i64 block = 64, i64 total = 1 << 20)
      : params{nprocs, cache_bytes, block, total} {}

  std::vector<DatumPattern> run(const std::vector<MemRef>& refs,
                                const PatternThresholds& t = {}) {
    CacheSim sim(params, &map);
    PatternCollector pc(&map, params);
    sim.set_pattern_collector(&pc);
    sim.on_batch(refs.data(), refs.size());
    return pc.patterns(t);
  }
};

const DatumPattern* find(const std::vector<DatumPattern>& ps,
                         const std::string& name) {
  for (const DatumPattern& p : ps)
    if (p.name == name) return &p;
  return nullptr;
}

TEST(PatternNames, RoundTripEverySpelling) {
  for (AccessPattern p :
       {AccessPattern::kNone, AccessPattern::kStrided,
        AccessPattern::kPingPong, AccessPattern::kMigratory,
        AccessPattern::kProducerConsumer, AccessPattern::kReadShared,
        AccessPattern::kThrashingCapacity, AccessPattern::kConflict}) {
    EXPECT_EQ(pattern_from_name(pattern_name(p)), p);
  }
  EXPECT_STREQ(pattern_name(AccessPattern::kThrashingCapacity),
               "thrashing(capacity)");
  EXPECT_THROW(pattern_from_name("not-a-pattern"), InternalError);
}

TEST(Patterns, KnownStrideWalkIsStrided) {
  Harness h(1);
  h.map.add(0, 4096, "walk");
  std::vector<MemRef> refs;
  // One processor writes every 8th word — a single dominant stride, no
  // sharing of any kind.
  for (i64 a = 0; a + 4 <= 4096; a += 32) refs.push_back(write_ref(a, 0));
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "walk");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kStrided);
  EXPECT_EQ(p->dominant_stride, 32);
  EXPECT_GE(p->stride_share, 0.99);
  EXPECT_EQ(p->writers, 1);
}

TEST(Patterns, TwoProcAlternatingWritesOnOneLineArePingPong) {
  Harness h(2);
  h.map.add(0, 64, "line");
  std::vector<MemRef> refs;
  // Proc 0 owns word 0, proc 1 owns word 32 — same 64-byte block, strict
  // alternation: every miss after warmup is a sharing miss and every
  // ownership run has length 1.
  for (int i = 0; i < 200; ++i) {
    refs.push_back(write_ref(0, 0));
    refs.push_back(write_ref(32, 1));
  }
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "line");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kPingPong);
  EXPECT_EQ(p->writers, 2);
  EXPECT_GE(p->pingpong_share, 0.99);
  EXPECT_LT(p->mean_run, 2.0);
  EXPECT_GT(p->stats.false_sharing, 0u);
}

TEST(Patterns, SingleWriterMigrationIsMigratory) {
  Harness h(4);
  h.map.add(0, 64, "token");
  std::vector<MemRef> refs;
  // Ownership moves between processors in long runs: each works the word
  // 32 times before handing off — sharing misses, but nothing like the
  // ping-pong cadence.
  for (int round = 0; round < 8; ++round)
    for (int proc = 0; proc < 4; ++proc)
      for (int k = 0; k < 32; ++k) refs.push_back(write_ref(0, proc));
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "token");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kMigratory);
  EXPECT_EQ(p->writers, 4);
  EXPECT_GE(p->mean_run, 4.0);
}

TEST(Patterns, OneWriterManyReadersIsProducerConsumer) {
  Harness h(4);
  h.map.add(0, 64, "mailbox");
  std::vector<MemRef> refs;
  // Proc 0 publishes, procs 1-3 read it back: the read misses are
  // sharing misses, but only one processor ever writes.
  for (int i = 0; i < 100; ++i) {
    refs.push_back(write_ref(0, 0));
    for (int proc = 1; proc < 4; ++proc) refs.push_back(read_ref(0, proc));
  }
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "mailbox");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kProducerConsumer);
  EXPECT_EQ(p->writers, 1);
  EXPECT_GE(p->readers, 3);
}

TEST(Patterns, ReadOnlyFanOutIsReadSharedEvenWhenStrided) {
  Harness h(4);
  h.map.add(0, 4096, "table");
  std::vector<MemRef> refs;
  // Every processor walks the table in a regular stride, nobody writes.
  // Read-shared outranks strided in the ladder: read-only data cannot
  // falsely share, which is the more useful headline.
  for (int proc = 0; proc < 4; ++proc)
    for (i64 a = 0; a + 4 <= 4096; a += 64)
      refs.push_back(read_ref(a, proc));
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "table");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kReadShared);
  EXPECT_EQ(p->writes, 0u);
  EXPECT_EQ(p->readers, 4);
}

TEST(Patterns, CapacityOverflowIsThrashing) {
  // 256-byte cache, 4 KiB working set, walked repeatedly: after the cold
  // pass every miss is a replacement miss and the footprint exceeds the
  // per-processor cache.
  Harness h(1, /*cache_bytes=*/256, /*block=*/64);
  h.map.add(0, 4096, "big");
  std::vector<MemRef> refs;
  for (int pass = 0; pass < 4; ++pass)
    for (i64 a = 0; a + 4 <= 4096; a += 64) refs.push_back(read_ref(a, 0));
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "big");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kThrashingCapacity);
  EXPECT_GT(p->footprint, 256);
}

TEST(Patterns, EvictionPressureWithSmallFootprintIsConflict) {
  // Datum "small" fits the cache easily, but the interleaved walk over
  // "filler" keeps evicting it: replacement-dominated misses with a
  // resident-size footprint — a conflict, not a capacity problem.
  Harness h(1, /*cache_bytes=*/256, /*block=*/64);
  h.map.add(0, 64, "small");
  h.map.add(4096, 8192, "filler");
  std::vector<MemRef> refs;
  for (int round = 0; round < 64; ++round) {
    refs.push_back(read_ref(0, 0));
    for (i64 a = 4096; a + 4 <= 8192; a += 64)
      refs.push_back(read_ref(a, 0));
  }
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "small");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kConflict);
  EXPECT_LE(p->footprint, 256);
}

TEST(Patterns, TooFewReferencesStayUnlabeled) {
  Harness h(2);
  h.map.add(0, 64, "rare");
  std::vector<MemRef> refs = {write_ref(0, 0), write_ref(0, 1),
                              write_ref(0, 0)};
  auto ps = h.run(refs);
  const DatumPattern* p = find(ps, "rare");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->label, AccessPattern::kNone);  // under min_refs
}

// ---------------------------------------------------------------------------
// The null-by-default guarantee: attaching the collector must not change
// a single simulated statistic, and a detached replay must not change
// behavior relative to the seed.
// ---------------------------------------------------------------------------

const char* kProgram =
    "param NPROCS = 4;\n"
    "param N = 64;\n"
    "struct cell { int count; int pad; };\n"
    "struct cell cells[64];\n"
    "void main(int pid) {\n"
    "  int i;\n"
    "  for (i = pid; i < N; i = i + NPROCS) {\n"
    "    cells[i].count = cells[i].count + 1;\n"
    "  }\n"
    "  barrier();\n"
    "}\n";

TEST(Patterns, CollectorDoesNotPerturbMissStats) {
  Compiled c = compile_source(kProgram, CompileOptions{});
  AddressMap map = build_address_map(c);
  TraceBuffer trace = record_trace(c);
  CacheParams params{c.nprocs(), 32 * 1024, 64, c.code.total_bytes};

  CacheSim plain(params, &map);
  trace.replay(plain);

  CacheSim collected(params, &map);
  PatternCollector pc(&map, params);
  collected.set_pattern_collector(&pc);
  trace.replay(collected);

  EXPECT_EQ(plain.stats(), collected.stats());
  EXPECT_EQ(plain.by_datum(), collected.by_datum());
  EXPECT_EQ(pc.refs_seen(), trace.size());

  // Unattributed replays too: attaching the collector re-routes on_batch
  // through the per-reference path, which must be bit-identical to the
  // batched fast path.
  CacheSim fast(params);
  trace.replay(fast);
  CacheSim slow(params);
  PatternCollector pc2(nullptr, params);
  slow.set_pattern_collector(&pc2);
  trace.replay(slow);
  EXPECT_EQ(fast.stats(), slow.stats());
}

// ---------------------------------------------------------------------------
// Diagnosis report.
// ---------------------------------------------------------------------------

TEST(Diagnose, ReportCoversDatumsAndRoundTripsThroughJson) {
  Compiled c = compile_source(kProgram, CompileOptions{});
  DiagnoseOptions opt;
  opt.block_size = 64;
  DiagnosisReport rep = diagnose(c, "synthetic", opt);

  EXPECT_EQ(rep.workload, "synthetic");
  EXPECT_EQ(rep.block_size, 64);
  EXPECT_GT(rep.refs, 0u);
  ASSERT_FALSE(rep.datums.empty());
  for (const DatumDiagnosis& d : rep.datums) {
    EXPECT_FALSE(d.name.empty());
    ASSERT_FALSE(d.recommendations.empty());
    // Ranked: scores are non-increasing, actions unique.
    for (size_t i = 1; i < d.recommendations.size(); ++i) {
      EXPECT_LE(d.recommendations[i].score,
                d.recommendations[i - 1].score);
      EXPECT_NE(d.recommendations[i].action,
                d.recommendations[i - 1].action);
    }
  }
  // The interleaved writers of `cells` falsely share; the report must
  // say so and recommend something.
  const DatumDiagnosis* cells = rep.find("cells.count");
  if (cells == nullptr) cells = rep.find("cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_GT(cells->stats.false_sharing, 0u);
  EXPECT_NE(cells->top().action, "none");

  std::string doc = diagnosis_to_json(rep);
  EXPECT_TRUE(json::validate(doc)) << doc;
  DiagnosisReport back = diagnosis_from_json(doc);
  EXPECT_EQ(diagnosis_to_json(back), doc);
  EXPECT_EQ(back.datums.size(), rep.datums.size());
  EXPECT_EQ(back.totals, rep.totals);

  EXPECT_FALSE(render_diagnosis(rep).empty());
}

TEST(Diagnose, PlannerBackedRecommendationOutranksHeuristics) {
  // Compile *without* transformations so the planner has repairs to
  // propose; every planner-backed recommendation must sit at the top of
  // its datum's ranking.
  Compiled c = compile_source(kProgram, CompileOptions{});
  DiagnoseOptions opt;
  opt.block_size = 64;
  DiagnosisReport rep = diagnose(c, "synthetic", opt);
  bool any_planner = false;
  for (const DatumDiagnosis& d : rep.datums) {
    for (size_t i = 0; i < d.recommendations.size(); ++i) {
      if (d.recommendations[i].from_planner) {
        any_planner = true;
        EXPECT_EQ(i, 0u) << d.name;
      }
    }
  }
  EXPECT_TRUE(any_planner);
}

TEST(Diagnose, MalformedJsonThrows) {
  EXPECT_THROW(diagnosis_from_json("not json"), InternalError);
  EXPECT_THROW(diagnosis_from_json("{}"), InternalError);
  EXPECT_THROW(diagnosis_from_json(R"({"diagnosis_version": 2})"),
               InternalError);
}

TEST(Diagnose, TransformActionVocabulary) {
  EXPECT_STREQ(transform_action(TransformKind::kPadAlign), "pad");
  EXPECT_STREQ(transform_action(TransformKind::kLockPad), "pad");
  EXPECT_STREQ(transform_action(TransformKind::kFieldReorder), "reorder");
  EXPECT_STREQ(transform_action(TransformKind::kGroupTranspose), "reorder");
  EXPECT_STREQ(transform_action(TransformKind::kHotColdSplit), "split");
  EXPECT_STREQ(transform_action(TransformKind::kIndirection), "split");
  EXPECT_STREQ(transform_action(TransformKind::kIntraPad), "stride");
  EXPECT_STREQ(transform_action(TransformKind::kNone), "none");
}

}  // namespace
}  // namespace fsopt
