#include "layout/layout.h"

#include <gtest/gtest.h>

#include <set>

#include "driver/compiler.h"
#include "lang/sema.h"
#include "transform/plan.h"

namespace fsopt {
namespace {

std::unique_ptr<Program> check(std::string_view src, i64 nprocs = 4) {
  DiagnosticEngine diags;
  return parse_and_check(src, diags, {{"NPROCS", nprocs}});
}

TEST(Layout, IdentityAllocatesInDeclarationOrder) {
  auto p = check(
      "param NPROCS = 4; int a; real b; int c[4];"
      "void main(int pid) { }");
  LayoutPlan plan = identity_layout(*p);
  i64 a = plan.base_of(*p->find_global("a"));
  i64 b = plan.base_of(*p->find_global("b"));
  i64 c = plan.base_of(*p->find_global("c"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 8);  // aligned to 8
  EXPECT_EQ(c, 16);
  EXPECT_EQ(plan.total_bytes(), 32);
}

TEST(Layout, RowMajorStrides) {
  auto s = row_major_strides({4, 8}, 4);
  EXPECT_EQ(s, (std::vector<i64>{32, 4}));
}

TEST(Layout, DimMapLinearAndSplit) {
  DimMap linear{1, 0, 8};
  EXPECT_EQ(linear.apply(5), 40);
  // Blocked: (x % 4) in-chunk (stride 8), x / 4 region (stride 100).
  DimMap blocked{4, 8, 100};
  EXPECT_EQ(blocked.apply(0), 0);
  EXPECT_EQ(blocked.apply(3), 24);
  EXPECT_EQ(blocked.apply(4), 100);
  EXPECT_EQ(blocked.apply(7), 124);
}

TEST(Layout, ResolveFieldUsesNaturalOffsets) {
  auto p = check(
      "param NPROCS = 4; struct S { int a; real b; int v[3]; };"
      "struct S g[8]; void main(int pid) { g[0].a = 1; }");
  LayoutPlan plan = identity_layout(*p);
  const GlobalSym* g = p->find_global("g");
  ResolvedAccess a = plan.resolve(*g, g->elem.strct->field_index("b"));
  EXPECT_EQ(a.const_off, 8);
  ResolvedAccess v = plan.resolve(*g, g->elem.strct->field_index("v"));
  EXPECT_EQ(v.const_off, 16);
  ASSERT_EQ(v.dims.size(), 2u);  // array dim + field dim
  EXPECT_EQ(v.dims[1].stride_hi, 4);
}

// Helper: every addressable element of every datum, with its address.
std::map<i64, std::string> enumerate_addresses(const Compiled& c) {
  std::map<i64, std::string> out;
  for (const auto& g : c.prog->globals) {
    std::vector<std::pair<int, i64>> fields;  // (field index, extra dim)
    if (g->elem.is_struct) {
      const StructType& st = *g->elem.strct;
      for (size_t fi = 0; fi < st.fields.size(); ++fi)
        fields.push_back({static_cast<int>(fi), st.fields[fi].array_len});
    } else {
      fields.push_back({-1, 0});
    }
    for (auto [fi, flen] : fields) {
      ResolvedAccess ra = c.layout.resolve(*g, fi);
      std::vector<i64> extents(g->dims.begin(), g->dims.end());
      if (flen > 0) extents.push_back(flen);
      i64 size = fi < 0 ? g->elem.byte_size()
                        : scalar_size(g->elem.strct
                                          ->fields[static_cast<size_t>(fi)]
                                          .kind);
      // Walk the whole index space of this datum.
      std::vector<i64> idx(extents.size(), 0);
      bool done = false;
      while (!done) {
        i64 addr = ra.base + ra.const_off;
        for (size_t d = 0; d < idx.size(); ++d)
          addr += ra.dims[d].apply(idx[d]);
        std::string name = g->name + (fi >= 0 ? "." : "");
        for (size_t d = 0; d < idx.size(); ++d)
          name += "[" + std::to_string(idx[d]) + "]";
        // Record every byte of the element.
        for (i64 b = 0; b < size; ++b) {
          auto [it, fresh] = out.insert({addr + b, name});
          EXPECT_TRUE(fresh) << "address collision at " << addr + b << ": "
                             << it->second << " vs " << name;
        }
        // Increment the index vector (odometer).
        if (extents.empty()) break;
        size_t d = idx.size();
        for (;;) {
          if (d == 0) {
            done = true;
            break;
          }
          --d;
          if (++idx[d] < extents[d]) break;
          idx[d] = 0;
        }
      }
    }
  }
  return out;
}

const char* kTransformHeavy =
    "param NPROCS = 4;\n"
    "struct S { int v[NPROCS]; int w; };\n"
    "struct S g[8];\n"
    "real a[32];\n"
    "real b[8][NPROCS];\n"
    "int busy1; int busy2;\n"
    "lock_t l[4]; int q;\n"
    "void main(int pid) { int i; int r;\n"
    "  for (r = 0; r < 20; r = r + 1) {\n"
    "    for (i = pid; i < 32; i = i + nprocs) { a[i] = a[i] + 1.0; }\n"
    "    for (i = 0; i < 8; i = i + 1) {\n"
    "      b[i][pid] = b[i][pid] + 1.0;\n"
    "      g[(q + i) % 8].v[pid] = g[(q + i) % 8].v[pid] + 1;\n"
    "    }\n"
    "    lock(l[pid % 4]);\n"
    "    busy1 = busy1 + 1; busy2 = busy2 - 1;\n"
    "    unlock(l[pid % 4]);\n"
    "  }\n"
    "}\n";

TEST(Layout, TransformedLayoutHasNoAddressCollisions) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  opt.optimize = true;
  Compiled c = compile_source(kTransformHeavy, opt);
  // Sanity: transformations actually applied.
  EXPECT_FALSE(c.transforms.decisions.empty());
  auto addrs = enumerate_addresses(c);
  EXPECT_FALSE(addrs.empty());
  // All addresses within bounds.
  for (const auto& [addr, name] : addrs) {
    EXPECT_GE(addr, 0) << name;
    EXPECT_LT(addr, c.layout.total_bytes()) << name;
  }
}

TEST(Layout, UnoptimizedLayoutHasNoAddressCollisions) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  Compiled c = compile_source(kTransformHeavy, opt);
  auto addrs = enumerate_addresses(c);
  EXPECT_FALSE(addrs.empty());
}

TEST(Layout, PaddedScalarsLandInDistinctBlocks) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  opt.optimize = true;
  opt.block_size = 128;
  Compiled c = compile_source(kTransformHeavy, opt);
  // busy1/busy2 are padded busy scalars; each in its own 128B block.
  i64 a1 = c.address_of("busy1", "", {});
  i64 a2 = c.address_of("busy2", "", {});
  EXPECT_NE(a1 / 128, a2 / 128);
  EXPECT_EQ(a1 % 128, 0);
}

TEST(Layout, PaddedLockElementsInDistinctBlocks) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  opt.optimize = true;
  Compiled c = compile_source(kTransformHeavy, opt);
  std::set<i64> blocks;
  for (i64 i = 0; i < 4; ++i)
    blocks.insert(c.address_of("l", "", {i}) / 128);
  EXPECT_EQ(blocks.size(), 4u);
}

TEST(Layout, GroupTransposeSeparatesProcessors) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  opt.optimize = true;
  Compiled c = compile_source(kTransformHeavy, opt);
  // a[i] is interleaved-owned: i % 4 = owner.  After G&T, elements of
  // different owners never share a 128-byte block...
  std::set<std::pair<i64, i64>> block_owner;
  for (i64 i = 0; i < 32; ++i) {
    i64 block = c.address_of("a", "", {i}) / 128;
    block_owner.insert({block, i % 4});
  }
  std::set<i64> seen;
  for (auto& [block, owner] : block_owner)
    EXPECT_TRUE(seen.insert(block).second)
        << "block " << block << " holds data of several owners";
  // ...and in the unoptimized layout they do share blocks.
  CompileOptions un = opt;
  un.optimize = false;
  Compiled u = compile_source(kTransformHeavy, un);
  std::set<i64> ublocks;
  bool mixed = false;
  for (i64 i = 0; i < 32; ++i) {
    i64 block = u.address_of("a", "", {i}) / 128;
    if (!ublocks.insert(block).second) mixed = true;
  }
  EXPECT_TRUE(mixed);
}

TEST(Layout, TransposedColumnsBecomeContiguous) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  opt.optimize = true;
  Compiled c = compile_source(kTransformHeavy, opt);
  // b[i][pid]: after transpose, b[i][p] and b[i+1][p] are 8 bytes apart.
  i64 d = c.address_of("b", "", {1, 2}) - c.address_of("b", "", {0, 2});
  EXPECT_EQ(d, 8);
  // Different processors' columns live in different blocks.
  EXPECT_NE(c.address_of("b", "", {0, 0}) / 128,
            c.address_of("b", "", {0, 1}) / 128);
}

TEST(Layout, IndirectionMovesFieldToHeapRegions) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  opt.optimize = true;
  Compiled c = compile_source(kTransformHeavy, opt);
  // g.v must be transformed by indirection.
  const GlobalSym* g = c.prog->find_global("g");
  int vi = g->elem.strct->field_index("v");
  const TransformDecision* d = c.transforms.applying_to(g->id, vi);
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->kind, TransformKind::kIndirection);
  // Same element, different process slots: different 128B regions.
  i64 a0 = c.address_of("g", "v", {3, 0});
  i64 a1 = c.address_of("g", "v", {3, 1});
  EXPECT_NE(a0 / 128, a1 / 128);
  // Same process, different elements: same region, 4 bytes apart.
  i64 b0 = c.address_of("g", "v", {3, 2});
  i64 b1 = c.address_of("g", "v", {4, 2});
  EXPECT_EQ(b1 - b0, 4);
  // The resolved plan carries the pointer-slot info.
  ResolvedAccess ra = c.layout.resolve(*g, vi);
  EXPECT_TRUE(ra.indirection.has_value());
}

TEST(Layout, BlockSizeParameterRespected) {
  for (i64 bs : {32, 64, 256}) {
    CompileOptions opt;
    opt.overrides["NPROCS"] = 4;
    opt.optimize = true;
    opt.block_size = bs;
    Compiled c = compile_source(kTransformHeavy, opt);
    i64 a1 = c.address_of("busy1", "", {});
    EXPECT_EQ(a1 % bs, 0) << "block " << bs;
  }
}

}  // namespace
}  // namespace fsopt
