#include "lang/sema.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

std::unique_ptr<Program> check_ok(std::string_view src,
                                  const ParamOverrides& ov = {}) {
  DiagnosticEngine diags;
  auto p = parse_and_check(src, diags, ov);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return p;
}

void expect_sema_error(std::string_view src, const std::string& needle) {
  DiagnosticEngine diags;
  try {
    parse_and_check(src, diags, {});
    FAIL() << "expected a compile error containing: " << needle;
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual: " << e.what();
  }
}

const char* kMainOnly = "param NPROCS = 4; void main(int pid) { }";

TEST(Sema, AcceptsMinimalProgram) {
  auto p = check_ok(kMainOnly);
  ASSERT_NE(p->main, nullptr);
  EXPECT_EQ(p->nprocs, 4);
}

TEST(Sema, RequiresMain) { expect_sema_error("int x;", "no 'main'"); }

TEST(Sema, MainSignatureChecked) {
  expect_sema_error("void main() { }", "void main(int pid)");
  expect_sema_error("int main(int pid) { return 0; }",
                    "void main(int pid)");
}

TEST(Sema, StructLayoutNaturalAlignment) {
  auto p = check_ok(
      "struct S { int a; real b; int c; };\n"
      "struct S s; param NPROCS = 1; void main(int pid) { }");
  const StructType* st = p->find_struct("S");
  EXPECT_EQ(st->fields[0].offset, 0);
  EXPECT_EQ(st->fields[1].offset, 8);  // real aligned to 8
  EXPECT_EQ(st->fields[2].offset, 16);
  EXPECT_EQ(st->size, 24);  // padded to 8
  EXPECT_EQ(st->align, 8);
}

TEST(Sema, StructFieldArrayLayout) {
  auto p = check_ok(
      "struct S { int v[3]; real r; };\n"
      "struct S s; param NPROCS = 1; void main(int pid) { }");
  const StructType* st = p->find_struct("S");
  EXPECT_EQ(st->fields[0].offset, 0);
  EXPECT_EQ(st->fields[1].offset, 16);  // 12 rounded to 8-align
  EXPECT_EQ(st->size, 24);
}

TEST(Sema, DuplicateFieldReported) {
  expect_sema_error(
      "struct S { int a; int a; }; param NPROCS = 1; "
      "void main(int pid) { }",
      "duplicate field");
}

TEST(Sema, TypeMismatchIntReal) {
  expect_sema_error(
      "param NPROCS = 1; real x; void main(int pid) { x = 1; }",
      "type mismatch");
}

TEST(Sema, ItorBridgesIntToReal) {
  check_ok("param NPROCS = 1; real x; void main(int pid) { x = itor(1); }");
}

TEST(Sema, CannotAssignToParameter) {
  expect_sema_error("param NPROCS = 1; void main(int pid) { pid = 3; }",
                    "cannot assign to parameter");
}

TEST(Sema, UnknownVariableReported) {
  expect_sema_error("param NPROCS = 1; void main(int pid) { y = 1; }",
                    "unknown variable");
}

TEST(Sema, LocalShadowingGlobalRejected) {
  expect_sema_error(
      "param NPROCS = 1; int x; void main(int pid) { int x; }",
      "shadows");
}

TEST(Sema, BlockScopedLocals) {
  check_ok(
      "param NPROCS = 1; void main(int pid) {"
      "  if (pid == 0) { int t; t = 1; } if (pid == 1) { int t; t = 2; } }");
}

TEST(Sema, UseBeforeDeclarationRejected) {
  expect_sema_error(
      "param NPROCS = 1; void main(int pid) { t = 1; int t; }",
      "unknown variable");
}

TEST(Sema, TooManyIndicesRejected) {
  expect_sema_error(
      "param NPROCS = 1; int a[4]; void main(int pid) { a[0][1] = 2; }",
      "too many");
}

TEST(Sema, MissingIndicesRejected) {
  expect_sema_error(
      "param NPROCS = 1; int a[4]; int b; void main(int pid) { b = a[0]; "
      "b = 0; if (a < 1) { } }",
      "missing array indices");
}

TEST(Sema, FieldAccessOnNonStructRejected) {
  expect_sema_error(
      "param NPROCS = 1; int a[4]; void main(int pid) { a[0].x = 1; }",
      "not a struct");
}

TEST(Sema, UnknownFieldRejected) {
  expect_sema_error(
      "param NPROCS = 1; struct S { int a; }; struct S s[2];"
      "void main(int pid) { s[0].b = 1; }",
      "no field");
}

TEST(Sema, FieldArrayMustBeIndexed) {
  expect_sema_error(
      "param NPROCS = 1; struct S { int v[2]; }; struct S s[2];"
      "void main(int pid) { s[0].v = 1; }",
      "is an array");
}

TEST(Sema, LockOnlyViaLockUnlock) {
  expect_sema_error(
      "param NPROCS = 1; lock_t l; int x; void main(int pid) { x = l; }",
      "lock()/unlock()");
  expect_sema_error(
      "param NPROCS = 1; int x; void main(int pid) { lock(x); }",
      "lock_t");
}

TEST(Sema, BarrierOnlyInMain) {
  expect_sema_error(
      "param NPROCS = 1; void f() { barrier(); } void main(int pid) { f(); }",
      "only allowed in main");
}

TEST(Sema, RecursionRejected) {
  expect_sema_error(
      "param NPROCS = 1; int f(int x) { return f(x); }"
      "void main(int pid) { int y; y = f(1); }",
      "recursive");
}

TEST(Sema, MutualRecursionRejected) {
  expect_sema_error(
      "param NPROCS = 1;"
      "int f(int x) { return g(x); }"
      "int g(int x) { return f(x); }"
      "void main(int pid) { int y; y = f(1); }",
      "recursive");
}

TEST(Sema, CallArgumentCountChecked) {
  expect_sema_error(
      "param NPROCS = 1; int f(int a, int b) { return a; }"
      "void main(int pid) { int y; y = f(1); }",
      "wrong number of arguments");
}

TEST(Sema, CallArgumentTypesChecked) {
  expect_sema_error(
      "param NPROCS = 1; int f(real a) { return 0; }"
      "void main(int pid) { int y; y = f(1); }",
      "argument type mismatch");
}

TEST(Sema, ReturnTypeChecked) {
  expect_sema_error(
      "param NPROCS = 1; int f() { return; } void main(int pid) { f(); }",
      "return type mismatch");
}

TEST(Sema, IntrinsicTyping) {
  check_ok(
      "param NPROCS = 1; real r; int i;"
      "void main(int pid) {"
      "  i = lcg(7); i = abs(0 - 2); i = min(1, 2); i = max(3, 4);"
      "  r = itor(i); i = rtoi(r); r = sqrt(r); r = min(r, 2.0);"
      "}");
  expect_sema_error(
      "param NPROCS = 1; real r; void main(int pid) { r = sqrt(1); }",
      "sqrt takes a real");
}

TEST(Sema, RemainderRequiresInts) {
  expect_sema_error(
      "param NPROCS = 1; real r; void main(int pid) { r = 1.0 % 2.0; }",
      "int operands");
}

TEST(Sema, ConditionMustBeInt) {
  expect_sema_error(
      "param NPROCS = 1; void main(int pid) { if (1.5) { } }",
      "must be int");
}

TEST(Sema, MainCannotBeCalled) {
  expect_sema_error(
      "param NPROCS = 1; void f() { main(0); } void main(int pid) { f(); }",
      "main may not be called");
}

}  // namespace
}  // namespace fsopt
