// Differential suite for single-pass multi-configuration replay
// (sim/multi.h): replay_multi must be bit-identical — aggregate stats
// and per-datum attribution — to independent per-configuration replays
// through the sharded path (replay_partitioned), for every cell of the
// full workload matrix, across block sizes and shard counts, and for
// any thread count / plane grouping.
#include "sim/multi.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "trace/shard.h"

namespace fsopt {
namespace {

std::vector<CacheParams> sweep_params(i64 nprocs, i64 total,
                                      const std::vector<i64>& blocks,
                                      i64 l1 = 32 * 1024) {
  std::vector<CacheParams> out;
  for (i64 b : blocks) out.push_back({nprocs, l1, b, total});
  return out;
}

TraceBuffer make_trace(const std::vector<MemRef>& refs) {
  TraceBuffer t;
  t.on_batch(refs.data(), refs.size());
  return t;
}

TEST(MultiReplay, MatchesIndependentSimsOnSyntheticStream) {
  // A little false-sharing ping-pong plus private strides; every plane
  // must agree with a dedicated CacheSim fed the same stream.
  std::vector<MemRef> refs;
  for (int i = 0; i < 2000; ++i) {
    u8 proc = static_cast<u8>(i % 4);
    refs.push_back({proc * 4, 4, proc, i % 3 == 0 ? RefType::kWrite
                                                  : RefType::kRead});
    refs.push_back({1024 + proc * 256 + (i % 32) * 8, 8, proc,
                    RefType::kRead});
  }
  TraceBuffer raw = make_trace(refs);
  std::vector<CacheParams> params =
      sweep_params(4, 1 << 16, {4, 16, 64, 256}, /*l1=*/2048);

  MultiReplayResult multi = replay_multi(raw, params);
  ASSERT_EQ(multi.stats.size(), params.size());
  for (size_t p = 0; p < params.size(); ++p) {
    CacheSim solo(params[p]);
    raw.replay(solo);
    EXPECT_EQ(multi.stats[p], solo.stats())
        << "block=" << params[p].block_size;
  }
}

TEST(MultiReplay, EncodedAndRawTracesAgree) {
  std::vector<MemRef> refs;
  for (int i = 0; i < 3000; ++i)
    refs.push_back({(i * 52) % 4096, static_cast<u8>(i % 2 ? 8 : 4),
                    static_cast<u8>(i % 3),
                    i % 5 == 0 ? RefType::kWrite : RefType::kRead});
  TraceBuffer raw = make_trace(refs);
  EncodedTrace enc = encode_trace(raw, /*chunk_refs=*/128);
  std::vector<CacheParams> params = sweep_params(3, 1 << 13, {4, 32, 128});
  MultiReplayResult a = replay_multi(raw, params);
  MultiReplayResult b = replay_multi(enc, params);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(MultiReplay, ThreadCountNeverChangesResults) {
  // Planes are grouped across workers; grouping must be invisible.
  std::vector<MemRef> refs;
  for (int i = 0; i < 5000; ++i)
    refs.push_back({(i * 36) % 8192, 4, static_cast<u8>(i % 8),
                    i % 4 == 0 ? RefType::kWrite : RefType::kRead});
  EncodedTrace enc = encode_trace(make_trace(refs));
  std::vector<CacheParams> params =
      sweep_params(8, 1 << 13, {4, 8, 16, 32, 64, 128, 256});
  MultiReplayResult serial = replay_multi(enc, params, nullptr, 1);
  for (int threads : {2, 3, 7, 16}) {
    MultiReplayResult par = replay_multi(enc, params, nullptr, threads);
    EXPECT_EQ(par.stats, serial.stats) << "threads=" << threads;
  }
}

TEST(MultiReplay, SplitRefClassesDivergePerPlaneCorrectly) {
  // Regression for the combine_split_outcomes severity fix observed
  // through the multi-plane walk: one misaligned 8B re-read whose parts
  // miss as (false sharing, true sharing) on 8B blocks, while the same
  // reference is a plain single-block miss at 64B and a pure-true-word
  // split at 4B.  Each plane must classify independently and agree with
  // a dedicated simulator.
  std::vector<MemRef> refs = {
      {4, 8, 1, RefType::kRead},   // P1 loads words 4 and 8
      {0, 4, 0, RefType::kWrite},  // P0 writes word 0
      {8, 4, 0, RefType::kWrite},  // P0 writes word 8
      {4, 8, 1, RefType::kRead},   // mixed re-read
  };
  TraceBuffer raw = make_trace(refs);
  std::vector<CacheParams> params = sweep_params(2, 1 << 10, {4, 8, 64});
  MultiReplayResult multi = replay_multi(raw, params);

  for (size_t p = 0; p < params.size(); ++p) {
    CacheSim solo(params[p]);
    raw.replay(solo);
    EXPECT_EQ(multi.stats[p], solo.stats())
        << "block=" << params[p].block_size;
  }
  // At 8B blocks the (false, true) mix must merge to TRUE sharing (the
  // word at addr 8 was remotely written and re-read).
  EXPECT_EQ(multi.stats[1].true_sharing, 1u);
  EXPECT_EQ(multi.stats[1].false_sharing, 0u);
  // At 64B blocks everything sits in one block: the re-read is a single
  // true-sharing miss as well, but via the unsplit path.
  EXPECT_EQ(multi.stats[2].true_sharing, 1u);
}

TEST(MultiReplay, PerDatumAttributionMatchesSoloSim) {
  AddressMap am;
  am.add(0, 64, "hot");
  am.add(64, 4096, "cold");
  std::vector<MemRef> refs;
  for (int i = 0; i < 2000; ++i) {
    u8 proc = static_cast<u8>(i % 4);
    refs.push_back({proc * 8, 4, proc,
                    i % 2 ? RefType::kWrite : RefType::kRead});
    refs.push_back({64 + (i * 24) % 4000, 4, proc, RefType::kRead});
  }
  TraceBuffer raw = make_trace(refs);
  std::vector<CacheParams> params = sweep_params(4, 1 << 13, {16, 64});
  MultiReplayResult multi = replay_multi(raw, params, &am);
  ASSERT_EQ(multi.by_datum.size(), params.size());
  for (size_t p = 0; p < params.size(); ++p) {
    CacheSim solo(params[p], &am);
    raw.replay(solo);
    EXPECT_EQ(multi.by_datum[p], solo.by_datum())
        << "block=" << params[p].block_size;
  }
}

// --- the workload-matrix differential --------------------------------
//
// Every cell of the paper's experiment matrix (ten workloads x {N,C}
// plus the programmer-optimized versions): single-pass multi-plane
// replay of the cell's recorded trace must equal looped
// replay_partitioned — the sharded engine — at every block size and for
// shard counts 1 and 4, on aggregate stats AND per-datum attribution.

TEST(MultiReplayMatrix, BitIdenticalToPartitionedReplayAcrossAllCells) {
  std::vector<CompileJob> jobs = workload_matrix_jobs();
  ASSERT_EQ(jobs.size(), 29u);  // 10 N + 10 C + 9 P
  std::vector<CompiledVariant> cells = compile_matrix(jobs);
  ASSERT_EQ(cells.size(), jobs.size());

  const std::vector<i64> blocks = {4, 16, 64, 256};
  for (const CompiledVariant& cell : cells) {
    const Compiled& c = cell.compiled;
    AddressMap am = build_address_map(c);
    EncodedTrace trace = record_encoded_trace(c);
    ASSERT_GT(trace.size(), 0u) << cell.label;

    std::vector<CacheParams> params =
        sweep_params(c.nprocs(), c.code.total_bytes, blocks);
    MultiReplayResult multi = replay_multi(trace, params, &am);

    for (size_t p = 0; p < params.size(); ++p) {
      for (int k : {1, 4}) {
        int eff = effective_shard_count(k, params[p]);
        TracePartition part =
            partition_trace(trace, params[p].block_size, eff);
        ShardedReplayResult sharded = replay_partitioned(part, params[p],
                                                         &am);
        EXPECT_EQ(multi.stats[p], sharded.stats)
            << cell.label << " block=" << params[p].block_size
            << " shards=" << eff;
        EXPECT_EQ(multi.by_datum[p], sharded.by_datum)
            << cell.label << " block=" << params[p].block_size
            << " shards=" << eff;
      }
    }
  }
}

}  // namespace
}  // namespace fsopt
