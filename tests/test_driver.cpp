#include "driver/compiler.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace fsopt {
namespace {

const char* kProgram =
    "param NPROCS = 4; param N = 32;\n"
    "real a[N]; lock_t l; int done;\n"
    "void main(int pid) { int i; int r;\n"
    "  for (r = 0; r < 5; r = r + 1) {\n"
    "    for (i = pid; i < N; i = i + nprocs) { a[i] = a[i] + 1.0; }\n"
    "    barrier();\n"
    "  }\n"
    "  lock(l); done = done + 1; unlock(l);\n"
    "}\n";

TEST(Driver, CompileProducesAllArtifacts) {
  CompileOptions opt;
  opt.optimize = true;
  Compiled c = compile_source(kProgram, opt);
  EXPECT_EQ(c.nprocs(), 4);
  EXPECT_FALSE(c.summary.records.empty());
  EXPECT_FALSE(c.report.data.empty());
  EXPECT_FALSE(c.transforms.decisions.empty());
  EXPECT_GT(c.layout.total_bytes(), 0);
  EXPECT_FALSE(c.code.code.empty());
}

TEST(Driver, OverridesChangeSizes) {
  CompileOptions opt;
  opt.overrides = {{"N", 64}, {"NPROCS", 8}};
  Compiled c = compile_source(kProgram, opt);
  EXPECT_EQ(c.nprocs(), 8);
  EXPECT_EQ(c.prog->find_global("a")->dims[0], 64);
}

TEST(Driver, AddressOfRoundTrips) {
  Compiled c = compile_source(kProgram, {});
  i64 a0 = c.address_of("a", "", {0});
  i64 a1 = c.address_of("a", "", {1});
  EXPECT_EQ(a1 - a0, 8);
  EXPECT_EQ(c.scalar_kind_of("a", ""), ScalarKind::kReal);
  EXPECT_EQ(c.scalar_kind_of("l", ""), ScalarKind::kLock);
  EXPECT_THROW(c.address_of("missing", "", {}), InternalError);
}

TEST(Driver, InvalidProgramThrowsCompileError) {
  EXPECT_THROW(compile_source("void main(int pid) { undeclared = 1; }", {}),
               CompileError);
}

TEST(Driver, TraceStudyCountsConsistent) {
  Compiled c = compile_source(kProgram, {});
  auto st = run_trace_study(c, {16, 64, 128});
  EXPECT_EQ(st.by_block.size(), 3u);
  for (auto& [b, s] : st.by_block) {
    EXPECT_EQ(s.refs, st.refs) << b;
    EXPECT_EQ(s.hits + s.misses(), s.refs) << b;
  }
}

TEST(Driver, KsrRunProducesTiming) {
  Compiled c = compile_source(kProgram, {});
  TimingResult t = run_ksr(c);
  EXPECT_GT(t.cycles, 0);
  EXPECT_GT(t.refs, 0u);
  EXPECT_EQ(t.ksr.refs, t.refs);
}

TEST(Driver, SpeedupSweepBaselines) {
  CompileOptions base;
  i64 bl = baseline_cycles(kProgram, base);
  EXPECT_GT(bl, 0);
  SpeedupCurve curve = speedup_sweep(kProgram, {1, 2, 4}, base, bl);
  ASSERT_EQ(curve.speedup.size(), 3u);
  EXPECT_NEAR(curve.speedup[0], 1.0, 1e-9);
  auto [peak, at] = curve.peak();
  EXPECT_GE(peak, curve.speedup[0]);
  EXPECT_TRUE(at == 1 || at == 2 || at == 4);
}

TEST(Driver, AddressMapCoversGlobalsAndBarrier) {
  CompileOptions opt;
  opt.optimize = true;
  Compiled c = compile_source(kProgram, opt);
  AddressMap am = build_address_map(c);
  EXPECT_GE(am.ranges().size(), 4u);  // a, l, done, <barrier>
  EXPECT_EQ(am.name_of(am.index_of(c.address_of("a", "", {5}))), "a");
  EXPECT_EQ(am.name_of(am.index_of(c.code.barrier_base)), "<barrier>");
}

TEST(Driver, SameSourceCompilesDeterministically) {
  CompileOptions opt;
  opt.optimize = true;
  Compiled a = compile_source(kProgram, opt);
  Compiled b = compile_source(kProgram, opt);
  EXPECT_EQ(a.layout.total_bytes(), b.layout.total_bytes());
  EXPECT_EQ(a.code.code.size(), b.code.code.size());
  EXPECT_EQ(a.transforms.decisions.size(), b.transforms.decisions.size());
}

TEST(Driver, BlockSizeAffectsTransformedLayoutOnly) {
  CompileOptions small;
  small.block_size = 32;
  CompileOptions big;
  big.block_size = 256;
  Compiled a = compile_source(kProgram, small);
  Compiled b = compile_source(kProgram, big);
  // Unoptimized layouts are identical regardless of block size.
  EXPECT_EQ(a.layout.total_bytes(), b.layout.total_bytes());
  small.optimize = big.optimize = true;
  Compiled ta = compile_source(kProgram, small);
  Compiled tb = compile_source(kProgram, big);
  EXPECT_LT(ta.layout.total_bytes(), tb.layout.total_bytes());
}

}  // namespace
}  // namespace fsopt
