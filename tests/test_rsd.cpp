#include "rsd/rsd.h"

#include <gtest/gtest.h>

#include <set>

namespace fsopt {
namespace {

LocalSym* sym(const char* name) {
  static std::vector<std::unique_ptr<LocalSym>> pool;
  pool.push_back(std::make_unique<LocalSym>());
  pool.back()->name = name;
  return pool.back().get();
}

// ---------------------------------------------------------------------------
// ranges_intersect: stride-aware arithmetic-progression intersection.
// ---------------------------------------------------------------------------

TEST(Ranges, DisjointIntervals) {
  EXPECT_FALSE(ranges_intersect({0, 9, 1}, {10, 19, 1}));
  EXPECT_TRUE(ranges_intersect({0, 10, 1}, {10, 19, 1}));
}

TEST(Ranges, EvenOddInterleaveDisjoint) {
  // {0,2,4,...} vs {1,3,5,...}: same stride, different phase.
  EXPECT_FALSE(ranges_intersect({0, 100, 2}, {1, 101, 2}));
  EXPECT_TRUE(ranges_intersect({0, 100, 2}, {2, 102, 2}));
}

TEST(Ranges, ModPInterleaves) {
  // pid p owns {p, p+P, ...}: disjoint for p != q.
  const i64 P = 12;
  for (i64 p = 0; p < P; ++p) {
    for (i64 q = 0; q < P; ++q) {
      EXPECT_EQ(ranges_intersect({p, 479, P}, {q, 479, P}), p == q)
          << p << " vs " << q;
    }
  }
}

TEST(Ranges, DifferentStridesCrt) {
  // {0,3,6,...} and {1,5,9,...}: 3i = 4j+1 -> i=3, x=9? 9=4*2+1 yes.
  EXPECT_TRUE(ranges_intersect({0, 30, 3}, {1, 30, 4}));
  // {0,6,12,...} and {3,9,15,...}: 6i ≡ 3 (mod 6)? no.
  EXPECT_FALSE(ranges_intersect({0, 60, 6}, {3, 63, 6}));
}

TEST(Ranges, CrtSolutionOutsideWindow) {
  // Progressions would meet, but not within the bounds.
  // {0,7,14,...,21} and {5,16,27}: meet at 26? 26 not in b... compute:
  // a: 0,7,14,21; b: 5,16,27 -> no common element.
  EXPECT_FALSE(ranges_intersect({0, 21, 7}, {5, 27, 11}));
}

TEST(Ranges, EmptyRangeNeverIntersects) {
  EXPECT_FALSE(ranges_intersect({5, 4, 1}, {0, 100, 1}));
}

TEST(Ranges, SingletonRanges) {
  EXPECT_TRUE(ranges_intersect({7, 7, 1}, {7, 7, 3}));
  EXPECT_FALSE(ranges_intersect({7, 7, 1}, {8, 8, 1}));
}

// Exhaustive property check against a brute-force set intersection.
class RangeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RangeProperty, MatchesBruteForce) {
  int seed = GetParam();
  // Deterministic pseudo-random cases derived from the seed.
  u64 s = static_cast<u64>(seed) * 2654435761u + 12345;
  auto next = [&s]() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<i64>(s >> 33);
  };
  for (int iter = 0; iter < 50; ++iter) {
    ConcreteRange a{next() % 40, 0, 1 + next() % 7};
    a.hi = a.lo + (next() % 12) * a.stride;
    ConcreteRange b{next() % 40, 0, 1 + next() % 7};
    b.hi = b.lo + (next() % 12) * b.stride;

    std::set<i64> sa;
    for (i64 x = a.lo; x <= a.hi; x += a.stride) sa.insert(x);
    bool brute = false;
    for (i64 x = b.lo; x <= b.hi; x += b.stride)
      if (sa.count(x) != 0) brute = true;

    EXPECT_EQ(ranges_intersect(a, b), brute)
        << "a=[" << a.lo << ":" << a.hi << ":" << a.stride << "] b=["
        << b.lo << ":" << b.hi << ":" << b.stride << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeProperty, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// DimSec / Rsd
// ---------------------------------------------------------------------------

TEST(DimSec, InvariantOfInvalidAffineIsUnknown) {
  EXPECT_TRUE(DimSec::invariant(Affine::invalid()).is_unknown());
}

TEST(DimSec, DegenerateRangeBecomesInvariant) {
  DimSec d = DimSec::range(Affine::constant(3), Affine::constant(3), 1);
  EXPECT_EQ(d.kind(), DimSec::Kind::kInvariant);
}

TEST(DimSec, CloseLoopInvariantToRange) {
  LocalSym* i = sym("i");
  LocalSym* p = sym("p");
  // a[2*i + p], i in [0 .. 9] step 1 -> [p : 18+p : 2]
  DimSec d = DimSec::invariant(Affine::variable(i, 2) + Affine::variable(p));
  DimSec closed =
      d.close_loop(i, Affine::constant(0), Affine::constant(9), 1);
  ASSERT_EQ(closed.kind(), DimSec::Kind::kRange);
  EXPECT_EQ(closed.stride(), 2);
  EXPECT_EQ(closed.lo().coeff(p), 1);
  EXPECT_EQ(closed.hi().const_term(), 18);
}

TEST(DimSec, CloseLoopNegativeCoefficient) {
  LocalSym* i = sym("i");
  // a[10 - i], i in [0..9] -> [1 : 10 : 1]
  DimSec d = DimSec::invariant(Affine::variable(i, -1, 10));
  DimSec closed =
      d.close_loop(i, Affine::constant(0), Affine::constant(9), 1);
  ASSERT_EQ(closed.kind(), DimSec::Kind::kRange);
  EXPECT_EQ(closed.lo().const_term(), 1);
  EXPECT_EQ(closed.hi().const_term(), 10);
}

TEST(DimSec, CloseLoopUnknownBoundsKeepsStride) {
  LocalSym* i = sym("i");
  DimSec d = DimSec::invariant(Affine::variable(i));
  DimSec closed = d.close_loop(i, Affine::invalid(), Affine::invalid(), 1);
  EXPECT_EQ(closed.kind(), DimSec::Kind::kStridedUnknown);
  EXPECT_TRUE(closed.has_unit_stride_run(4));
}

TEST(DimSec, StridedUnknownNonUnitHasNoRun) {
  LocalSym* i = sym("i");
  DimSec d = DimSec::invariant(Affine::variable(i, 4));
  DimSec closed = d.close_loop(i, Affine::invalid(), Affine::invalid(), 1);
  EXPECT_EQ(closed.kind(), DimSec::Kind::kStridedUnknown);
  EXPECT_FALSE(closed.has_unit_stride_run(4));
}

TEST(DimSec, UnitStrideRunLength) {
  DimSec d = DimSec::range(Affine::constant(0), Affine::constant(2), 1);
  EXPECT_FALSE(d.has_unit_stride_run(4));  // only 3 elements
  DimSec e = DimSec::range(Affine::constant(0), Affine::constant(9), 1);
  EXPECT_TRUE(e.has_unit_stride_run(4));
}

TEST(Rsd, ConcretizePidSections) {
  LocalSym* pid = sym("pid");
  LocalSym* i = sym("i");
  // a[i][pid] with i closed over [0..7]
  Rsd r({DimSec::invariant(Affine::variable(i)),
         DimSec::invariant(Affine::variable(pid))});
  r = r.close_loop(i, Affine::constant(0), Affine::constant(7), 1);
  auto box = r.concretize(pid, 3, {8, 4});
  EXPECT_EQ(box[0].lo, 0);
  EXPECT_EQ(box[0].hi, 7);
  EXPECT_EQ(box[1].lo, 3);
  EXPECT_EQ(box[1].hi, 3);
}

TEST(Rsd, ConcretizeClampsToExtent) {
  LocalSym* pid = sym("pid");
  Rsd r({DimSec::invariant(Affine::variable(pid, 10))});
  auto box = r.concretize(pid, 5, {8});
  EXPECT_EQ(box[0].lo, 7);  // clamped
}

TEST(Rsd, BoxesDisjointViaAnyDim) {
  LocalSym* pid = sym("pid");
  Rsd r({DimSec::unknown(), DimSec::invariant(Affine::variable(pid))});
  auto a = r.concretize(pid, 0, {16, 8});
  auto b = r.concretize(pid, 1, {16, 8});
  EXPECT_TRUE(boxes_disjoint(a, b));
  auto c = r.concretize(pid, 0, {16, 8});
  EXPECT_FALSE(boxes_disjoint(a, c));
}

TEST(Rsd, ScalarBoxesNeverDisjoint) {
  std::vector<ConcreteRange> a;
  std::vector<ConcreteRange> b;
  EXPECT_FALSE(boxes_disjoint(a, b));
}

TEST(Rsd, HullOfShiftedRanges) {
  Rsd a({DimSec::range(Affine::constant(0), Affine::constant(7), 1)});
  Rsd b({DimSec::range(Affine::constant(4), Affine::constant(11), 1)});
  Rsd h = a.hull(b);
  ASSERT_EQ(h.dims()[0].kind(), DimSec::Kind::kRange);
  EXPECT_EQ(h.dims()[0].lo().const_term(), 0);
  EXPECT_EQ(h.dims()[0].hi().const_term(), 11);
}

TEST(Rsd, HullOfIncomparableIsUnknown) {
  LocalSym* p = sym("p");
  LocalSym* q = sym("q");
  Rsd a({DimSec::invariant(Affine::variable(p))});
  Rsd b({DimSec::invariant(Affine::variable(q))});
  EXPECT_TRUE(a.hull(b).dims()[0].is_unknown());
}

TEST(RsdSet, DeduplicatesAndCaps) {
  LocalSym* pid = sym("pid");
  RsdSet set;
  // Insert the same descriptor repeatedly: one entry.
  for (int k = 0; k < 5; ++k)
    set.insert(Rsd({DimSec::invariant(Affine::variable(pid))}));
  EXPECT_EQ(set.sections().size(), 1u);
  // Insert more than the cap of distinct descriptors: merged down.
  for (int k = 0; k < 20; ++k)
    set.insert(
        Rsd({DimSec::range(Affine::constant(k * 3), Affine::constant(k * 3 + 1),
                           1)}));
  EXPECT_LE(set.sections().size(), RsdSet::kMaxDescriptors);
}

}  // namespace
}  // namespace fsopt
