#include "lang/parser.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

std::unique_ptr<Program> parse_ok(std::string_view src,
                                  const ParamOverrides& ov = {}) {
  DiagnosticEngine diags;
  auto prog = Parser::parse(src, diags, ov);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return prog;
}

void expect_parse_error(std::string_view src,
                        const std::string& needle = "") {
  DiagnosticEngine diags;
  try {
    auto p = Parser::parse(src, diags, {});
    (void)p;
    FAIL() << "expected a parse error";
  } catch (const CompileError& e) {
    if (!needle.empty())
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual: " << e.what();
  }
}

TEST(Parser, EmptyProgram) {
  auto p = parse_ok("");
  EXPECT_TRUE(p->globals.empty());
  EXPECT_TRUE(p->funcs.empty());
}

TEST(Parser, ParamDeclaration) {
  auto p = parse_ok("param N = 64;");
  EXPECT_EQ(p->params.at("N"), 64);
}

TEST(Parser, ParamConstantExpressions) {
  auto p = parse_ok("param A = 4; param B = A * 3 + 2; param C = B / 2;");
  EXPECT_EQ(p->params.at("B"), 14);
  EXPECT_EQ(p->params.at("C"), 7);
}

TEST(Parser, ParamOverrideWins) {
  auto p = parse_ok("param N = 64;", {{"N", 128}});
  EXPECT_EQ(p->params.at("N"), 128);
}

TEST(Parser, DerivedParamsSeeOverrides) {
  auto p = parse_ok("param N = 4; param M = N * 2;", {{"N", 10}});
  EXPECT_EQ(p->params.at("M"), 20);
}

TEST(Parser, NprocsKeywordResolvesToNprocsParam) {
  auto p = parse_ok("param NPROCS = 8; param N = nprocs * 2;");
  EXPECT_EQ(p->params.at("N"), 16);
}

TEST(Parser, GlobalScalar) {
  auto p = parse_ok("int x;");
  const GlobalSym* g = p->find_global("x");
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->dims.empty());
  EXPECT_EQ(g->elem.scalar, ScalarKind::kInt);
}

TEST(Parser, GlobalArrays) {
  auto p = parse_ok("param N = 8; real a[N]; int b[N][2 * N];");
  EXPECT_EQ(p->find_global("a")->dims, (std::vector<i64>{8}));
  EXPECT_EQ(p->find_global("b")->dims, (std::vector<i64>{8, 16}));
}

TEST(Parser, ThreeDimensionalArraysRejected) {
  expect_parse_error("int a[2][2][2];");
}

TEST(Parser, StructDeclarationAndGlobal) {
  auto p = parse_ok(
      "param P = 4; struct S { int a; real b; int c[P]; }; struct S v[10];");
  const StructType* st = p->find_struct("S");
  ASSERT_NE(st, nullptr);
  ASSERT_EQ(st->fields.size(), 3u);
  EXPECT_EQ(st->fields[2].array_len, 4);
  const GlobalSym* g = p->find_global("v");
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->elem.is_struct);
  EXPECT_EQ(g->elem.strct, st);
}

TEST(Parser, LockGlobals) {
  auto p = parse_ok("lock_t l; lock_t ls[4];");
  EXPECT_TRUE(p->find_global("l")->is_lock());
  EXPECT_TRUE(p->find_global("ls")->is_lock());
}

TEST(Parser, FunctionWithParamsAndLocals) {
  auto p = parse_ok(
      "int add(int a, int b) { int c; c = a + b; return c; }");
  FuncDecl* f = p->find_func("add");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->ret, ValueType::kInt);
  EXPECT_EQ(f->params.size(), 2u);
}

TEST(Parser, ForLoopStructure) {
  auto p = parse_ok(
      "void main(int pid) { int i; for (i = 0; i < 10; i = i + 1) { } }");
  const Stmt& body = *p->find_func("main")->body;
  // decl, for
  ASSERT_EQ(body.stmts.size(), 2u);
  const Stmt& f = *body.stmts[1];
  EXPECT_EQ(f.kind, StmtKind::kFor);
  EXPECT_EQ(f.init_stmt->kind, StmtKind::kAssign);
  EXPECT_EQ(f.step_stmt->kind, StmtKind::kAssign);
}

TEST(Parser, IfElseChain) {
  auto p = parse_ok(
      "void main(int pid) { if (pid == 0) { } else { if (pid == 1) { } } }");
  const Stmt& s = *p->find_func("main")->body->stmts[0];
  EXPECT_EQ(s.kind, StmtKind::kIf);
  ASSERT_NE(s.else_block, nullptr);
}

TEST(Parser, OperatorPrecedence) {
  auto p = parse_ok("void main(int pid) { int x; x = 1 + 2 * 3; }");
  const Stmt& s = *p->find_func("main")->body->stmts[1];
  // x = (1 + (2*3)) -> top node is +
  EXPECT_EQ(s.value->bin_op, BinOp::kAdd);
  EXPECT_EQ(s.value->children[1]->bin_op, BinOp::kMul);
}

TEST(Parser, ComparisonBindsLooserThanArithmetic) {
  auto p = parse_ok("void main(int pid) { if (pid + 1 < 2 * 3) { } }");
  const Stmt& s = *p->find_func("main")->body->stmts[0];
  EXPECT_EQ(s.cond->bin_op, BinOp::kLt);
}

TEST(Parser, LogicalOperators) {
  auto p = parse_ok(
      "void main(int pid) { if (pid == 0 && pid < 3 || !(pid == 2)) { } }");
  const Stmt& s = *p->find_func("main")->body->stmts[0];
  EXPECT_EQ(s.cond->bin_op, BinOp::kOr);
}

TEST(Parser, LvaluePaths) {
  auto p = parse_ok(
      "param P = 2; struct S { int v[P]; int w; };\n"
      "struct S g[4]; int a[4][4];\n"
      "void main(int pid) { g[1].v[0] = a[2][3]; g[0].w = 5; }");
  const Stmt& s = *p->find_func("main")->body->stmts[0];
  EXPECT_EQ(s.kind, StmtKind::kAssign);
  EXPECT_EQ(s.target->kind, ExprKind::kIndex);  // .v[0]
}

TEST(Parser, BarrierLockUnlock) {
  auto p = parse_ok(
      "lock_t l; void main(int pid) { barrier(); lock(l); unlock(l); }");
  const auto& stmts = p->find_func("main")->body->stmts;
  EXPECT_EQ(stmts[0]->kind, StmtKind::kBarrier);
  EXPECT_EQ(stmts[1]->kind, StmtKind::kLock);
  EXPECT_EQ(stmts[2]->kind, StmtKind::kUnlock);
}

TEST(Parser, CallStatementAndExpression) {
  auto p = parse_ok(
      "int f(int x) { return x; }\n"
      "void g() { int y; y = f(1) + f(2); f(3); }");
  ASSERT_NE(p->find_func("g"), nullptr);
}

TEST(Parser, DuplicateGlobalReported) {
  expect_parse_error("int x; int x;", "duplicate global");
}

TEST(Parser, DuplicateParamReported) {
  expect_parse_error("param N = 1; param N = 2;", "duplicate param");
}

TEST(Parser, NegativeArrayExtentReported) {
  expect_parse_error("param N = 0 - 4; int a[N];", "must be positive");
}

TEST(Parser, MissingSemicolonIsFatal) {
  expect_parse_error("int x");
}

TEST(Parser, UnknownParamInConstantExpr) {
  expect_parse_error("int a[MISSING];", "unknown param");
}

TEST(Parser, DivisionByZeroInConstantExprIsFatal) {
  expect_parse_error("param N = 4 / 0;");
}

TEST(Parser, UnaryMinusInExpressions) {
  auto p = parse_ok("void main(int pid) { int x; x = -pid + -(3); }");
  ASSERT_NE(p->find_func("main"), nullptr);
}

}  // namespace
}  // namespace fsopt
