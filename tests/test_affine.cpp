#include "rsd/affine.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

LocalSym* sym(const char* name) {
  static std::vector<std::unique_ptr<LocalSym>> pool;
  pool.push_back(std::make_unique<LocalSym>());
  pool.back()->name = name;
  return pool.back().get();
}

TEST(Affine, ConstantBasics) {
  Affine a = Affine::constant(5);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a.is_constant());
  EXPECT_EQ(a.constant_value(), 5);
}

TEST(Affine, InvalidPropagates) {
  Affine bad = Affine::invalid();
  Affine a = Affine::constant(1);
  EXPECT_FALSE((bad + a).valid());
  EXPECT_FALSE((a - bad).valid());
  EXPECT_FALSE((bad * a).valid());
  EXPECT_FALSE(bad.negate().valid());
}

TEST(Affine, AdditionMergesTerms) {
  LocalSym* x = sym("x");
  Affine a = Affine::variable(x, 2, 1);   // 2x + 1
  Affine b = Affine::variable(x, 3, -1);  // 3x - 1
  Affine c = a + b;                       // 5x
  EXPECT_EQ(c.coeff(x), 5);
  EXPECT_EQ(c.const_term(), 0);
}

TEST(Affine, SubtractionCancelsToConstant) {
  LocalSym* x = sym("x");
  Affine a = Affine::variable(x, 2, 7);
  Affine b = Affine::variable(x, 2, 3);
  Affine c = a - b;
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.constant_value(), 4);
}

TEST(Affine, MultiplicationByConstant) {
  LocalSym* x = sym("x");
  Affine a = Affine::variable(x, 2, 3);
  Affine c = a * Affine::constant(4);
  EXPECT_EQ(c.coeff(x), 8);
  EXPECT_EQ(c.const_term(), 12);
}

TEST(Affine, ProductOfTwoVariablesIsInvalid) {
  LocalSym* x = sym("x");
  LocalSym* y = sym("y");
  Affine a = Affine::variable(x);
  Affine b = Affine::variable(y);
  EXPECT_FALSE((a * b).valid());
}

TEST(Affine, MultiplicationByZeroDropsTerms) {
  LocalSym* x = sym("x");
  Affine a = Affine::variable(x, 5, 2);
  Affine c = a * Affine::constant(0);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.constant_value(), 0);
}

TEST(Affine, Substitution) {
  LocalSym* x = sym("x");
  LocalSym* y = sym("y");
  // 3x + 2, x := 2y - 1  ->  6y - 1
  Affine a = Affine::variable(x, 3, 2);
  Affine r = a.subst(x, Affine::variable(y, 2, -1));
  EXPECT_EQ(r.coeff(y), 6);
  EXPECT_EQ(r.const_term(), -1);
  EXPECT_EQ(r.coeff(x), 0);
}

TEST(Affine, SubstitutionWithInvalidPoisons) {
  LocalSym* x = sym("x");
  Affine a = Affine::variable(x, 3, 2);
  EXPECT_FALSE(a.subst(x, Affine::invalid()).valid());
  // ... but only if the variable actually occurs.
  LocalSym* y = sym("y");
  EXPECT_TRUE(a.subst(y, Affine::invalid()).valid());
}

TEST(Affine, EvalWith) {
  LocalSym* x = sym("x");
  Affine a = Affine::variable(x, 3, 2);
  EXPECT_EQ(a.eval_with(x, 4), 14);
  LocalSym* y = sym("y");
  Affine b = a + Affine::variable(y);
  EXPECT_FALSE(b.eval_with(x, 4).has_value());  // y unresolved
}

TEST(Affine, SoleVar) {
  LocalSym* x = sym("x");
  EXPECT_EQ(Affine::variable(x, 2, 9).sole_var(), x);
  EXPECT_EQ(Affine::constant(1).sole_var(), nullptr);
}

TEST(AffineEnv, JoinAgreeingBindings) {
  LocalSym* x = sym("x");
  AffineEnv a;
  AffineEnv b;
  a.bind(x, Affine::constant(3));
  b.bind(x, Affine::constant(3));
  a.join(b);
  EXPECT_EQ(a.value_of(x).constant_value(), 3);
}

TEST(AffineEnv, JoinDisagreeingBindingsInvalidates) {
  LocalSym* x = sym("x");
  AffineEnv a;
  AffineEnv b;
  a.bind(x, Affine::constant(3));
  b.bind(x, Affine::constant(4));
  a.join(b);
  EXPECT_FALSE(a.value_of(x).valid());
}

TEST(AffineEnv, JoinOneSidedBindingInvalidates) {
  LocalSym* x = sym("x");
  AffineEnv a;
  AffineEnv b;
  a.bind(x, Affine::constant(3));
  a.join(b);
  EXPECT_FALSE(a.value_of(x).valid());

  AffineEnv c;
  AffineEnv d;
  d.bind(x, Affine::constant(3));
  c.join(d);
  EXPECT_FALSE(c.value_of(x).valid());
}

TEST(AffineEnv, UnboundIsInvalid) {
  AffineEnv env;
  EXPECT_FALSE(env.value_of(sym("z")).valid());
}

// Property-style sweep: (a + b) evaluated == eval(a) + eval(b) for a grid
// of coefficients.
class AffineArithProperty : public ::testing::TestWithParam<int> {};

TEST_P(AffineArithProperty, AdditionHomomorphism) {
  int k = GetParam();
  LocalSym* x = sym("x");
  Affine a = Affine::variable(x, k, k * 2 - 3);
  Affine b = Affine::variable(x, 7 - k, -k);
  for (i64 v : {-5, 0, 1, 13}) {
    auto lhs = (a + b).eval_with(x, v);
    ASSERT_TRUE(lhs.has_value());
    EXPECT_EQ(*lhs, *a.eval_with(x, v) + *b.eval_with(x, v));
    auto prod = (a * Affine::constant(k)).eval_with(x, v);
    EXPECT_EQ(*prod, *a.eval_with(x, v) * k);
  }
}

INSTANTIATE_TEST_SUITE_P(Coefficients, AffineArithProperty,
                         ::testing::Range(-3, 5));

}  // namespace
}  // namespace fsopt
