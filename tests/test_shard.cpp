// Tests for trace partitioning (trace/shard.h) and the shard-parallel
// replay path (driver replay_trace_sharded / replay_trace_study): unit
// tests for the partitioner's routing and split handling, plus the
// shard-determinism regression — sharded replay must be bit-identical to
// the serial simulator for every shard count and block size.
#include "trace/shard.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workloads/workloads.h"

namespace fsopt {
namespace {

TraceBuffer make_trace(const std::vector<MemRef>& refs) {
  TraceBuffer t;
  t.on_batch(refs.data(), refs.size());
  return t;
}

TEST(Partition, RoutesByBlockModuloShards) {
  // 64B blocks, 4 shards: addr 0 -> block 0 -> shard 0; addr 320 ->
  // block 5 -> shard 1; addr 448 -> block 7 -> shard 3.
  TraceBuffer t = make_trace({{0, 4, 0, RefType::kRead},
                              {320, 4, 1, RefType::kWrite},
                              {448, 4, 2, RefType::kRead}});
  TracePartition p = partition_trace(t, 64, 4);
  EXPECT_EQ(p.refs, 3u);
  ASSERT_EQ(p.shard.size(), 4u);
  ASSERT_EQ(p.shard[0].refs.size(), 1u);
  EXPECT_EQ(p.shard[0].refs[0].addr, 0);
  ASSERT_EQ(p.shard[1].refs.size(), 1u);
  EXPECT_EQ(p.shard[1].refs[0].addr, 320);
  EXPECT_TRUE(p.shard[2].refs.empty());
  ASSERT_EQ(p.shard[3].refs.size(), 1u);
  EXPECT_EQ(p.shard[3].refs[0].addr, 448);
}

TEST(Partition, PreservesPerShardOrder) {
  // All refs hit shard 0 (blocks 0 and 2 with 2 shards); their relative
  // order must survive.
  TraceBuffer t = make_trace({{0, 4, 0, RefType::kRead},
                              {128, 4, 1, RefType::kWrite},
                              {4, 4, 2, RefType::kRead},
                              {132, 8, 3, RefType::kRead}});
  TracePartition p = partition_trace(t, 64, 2);
  ASSERT_EQ(p.shard[0].refs.size(), 4u);
  EXPECT_EQ(p.shard[0].refs[0].addr, 0);
  EXPECT_EQ(p.shard[0].refs[1].addr, 128);
  EXPECT_EQ(p.shard[0].refs[2].addr, 4);
  EXPECT_EQ(p.shard[0].refs[3].addr, 132);
  EXPECT_TRUE(p.shard[1].refs.empty());
}

TEST(Partition, SplitsBlockSpanningRefs) {
  // 4B blocks, 2 shards: an 8-byte ref at 4 spans blocks 1 (shard 1) and
  // 2 (shard 0).  Each piece lands in its owning shard as a split entry
  // tagged with the same ordinal and increasing part, positioned between
  // the shard's surrounding plain refs.
  TraceBuffer t = make_trace({{0, 4, 0, RefType::kRead},    // block 0, shard 0
                              {4, 8, 1, RefType::kWrite},   // spans 1 and 2
                              {8, 4, 2, RefType::kRead}});  // block 2, shard 0
  TracePartition p = partition_trace(t, 4, 2);
  EXPECT_EQ(p.refs, 3u);
  ASSERT_EQ(p.split_origin.size(), 1u);
  EXPECT_EQ(p.split_origin[0].addr, 4);
  EXPECT_EQ(p.split_origin[0].size, 8);

  ASSERT_EQ(p.shard[1].splits.size(), 1u);  // block 1 piece
  EXPECT_EQ(p.shard[1].splits[0].ordinal, 0u);
  EXPECT_EQ(p.shard[1].splits[0].part, 0);
  EXPECT_EQ(p.shard[1].splits[0].sub.addr, 4);
  EXPECT_EQ(p.shard[1].splits[0].sub.size, 4);
  EXPECT_EQ(p.shard[1].splits[0].pos, 0u);  // shard 1 has no plain refs

  ASSERT_EQ(p.shard[0].splits.size(), 1u);  // block 2 piece
  EXPECT_EQ(p.shard[0].splits[0].ordinal, 0u);
  EXPECT_EQ(p.shard[0].splits[0].part, 1);
  EXPECT_EQ(p.shard[0].splits[0].sub.addr, 8);
  EXPECT_EQ(p.shard[0].splits[0].sub.size, 4);
  // Between the plain refs at addr 0 (pos 0) and addr 8 (pos 1).
  EXPECT_EQ(p.shard[0].splits[0].pos, 1u);
  ASSERT_EQ(p.shard[0].refs.size(), 2u);
}

TEST(Partition, SingleShardTakesEverything) {
  TraceBuffer t = make_trace({{0, 4, 0, RefType::kRead},
                              {4, 8, 1, RefType::kWrite},
                              {500, 4, 2, RefType::kRead}});
  TracePartition p = partition_trace(t, 4, 1);
  EXPECT_EQ(p.shard[0].refs.size(), 2u);
  EXPECT_EQ(p.shard[0].splits.size(), 2u);  // the 8B ref still splits
  EXPECT_EQ(p.split_origin.size(), 1u);
}

TEST(Shard, EffectiveShardCountDividesSets) {
  // 32KiB direct-mapped with 64B blocks = 512 sets: powers of two
  // divide, non-powers clamp down to the nearest divisor.
  CacheParams p{4, 32 * 1024, 64, 1 << 16};
  EXPECT_EQ(effective_shard_count(1, p), 1);
  EXPECT_EQ(effective_shard_count(4, p), 4);
  EXPECT_EQ(effective_shard_count(6, p), 4);
  EXPECT_EQ(effective_shard_count(7, p), 4);
  EXPECT_EQ(effective_shard_count(512, p), 512);
  EXPECT_EQ(effective_shard_count(1000, p), 512);
  EXPECT_EQ(effective_shard_count(0, p), 1);
}

TEST(Shard, MismatchedPartitionIsRejected) {
  TraceBuffer t = make_trace({{0, 4, 0, RefType::kRead}});
  CacheParams p{4, 32 * 1024, 64, 1 << 16};
  TracePartition part = partition_trace(t, 32, 2);
  EXPECT_THROW(replay_partitioned(part, p), InternalError);  // wrong block
  TracePartition part3 = partition_trace(t, 64, 3);
  EXPECT_THROW(replay_partitioned(part3, p), InternalError);  // 3 ∤ 512
}

// --- shard-determinism regression -----------------------------------
//
// Two real workloads, every paper block size from 4 to 256, shard counts
// 1/2/4/8: the merged stats and the per-datum attribution of the sharded
// replay must equal the serial replay exactly, field for field.  The 4B
// runs exercise split references (8-byte data on 4-byte blocks) crossing
// shard boundaries.

class ShardDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardDeterminism, BitIdenticalForEveryShardCount) {
  const auto& w = workloads::get(GetParam());
  CompileOptions opt;
  opt.overrides = w.sim_overrides;
  opt.overrides["NPROCS"] = 4;
  Compiled c = compile_source(w.unopt, opt);
  AddressMap am = build_address_map(c);
  TraceBuffer trace = record_trace(c);
  ASSERT_GT(trace.size(), 0u);

  for (i64 block : paper_block_sizes()) {
    CacheParams p{c.nprocs(), 32 * 1024, block, c.code.total_bytes};
    ShardedReplayResult serial =
        replay_trace_sharded(trace, p, 1, &am);
    ASSERT_EQ(serial.shards, 1);
    for (int k : {2, 4, 8}) {
      ShardedReplayResult sharded =
          replay_trace_sharded(trace, p, k, &am);
      EXPECT_EQ(sharded.shards, effective_shard_count(k, p));
      EXPECT_EQ(sharded.stats, serial.stats)
          << GetParam() << " block=" << block << " shards=" << k;
      EXPECT_EQ(sharded.by_datum, serial.by_datum)
          << GetParam() << " block=" << block << " shards=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ShardDeterminism,
                         ::testing::Values("maxflow", "pverify"));

TEST(Shard, StudyAutoShardingMatchesSerialStudy) {
  // The study-level knob (shards > 1) must not change any number either.
  const auto& w = workloads::get("maxflow");
  CompileOptions opt;
  opt.overrides = w.sim_overrides;
  opt.overrides["NPROCS"] = 4;
  Compiled c = compile_source(w.unopt, opt);
  AddressMap am = build_address_map(c);
  TraceBuffer trace = record_trace(c);
  TraceStudyResult serial = replay_trace_study(
      trace, c, paper_block_sizes(), 32 * 1024, &am, /*threads=*/1,
      /*shards=*/1);
  TraceStudyResult sharded = replay_trace_study(
      trace, c, paper_block_sizes(), 32 * 1024, &am, /*threads=*/4,
      /*shards=*/4);
  EXPECT_EQ(sharded.refs, serial.refs);
  EXPECT_EQ(sharded.by_block, serial.by_block);
  EXPECT_EQ(sharded.by_datum, serial.by_datum);
}

}  // namespace
}  // namespace fsopt
