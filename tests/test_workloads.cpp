// Integration tests over the reproduced benchmark suite: every workload
// version compiles, runs to completion, and the compiler picks the
// transformations the paper documents for it (Table 2 / §5).
#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace fsopt {
namespace {

using workloads::Workload;

CompileOptions small_options(const Workload& w, bool optimize) {
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 4;  // small and fast for tests
  o.optimize = optimize;
  return o;
}

bool has_kind(const Compiled& c, TransformKind k) {
  for (const auto& d : c.transforms.decisions)
    if (d.kind == k) return true;
  return false;
}

class WorkloadSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSuite, AllVersionsCompileAndRun) {
  const Workload& w = workloads::get(GetParam());
  std::vector<std::string> sources = {w.natural};
  if (w.has_unopt() && w.unopt != w.natural) sources.push_back(w.unopt);
  if (w.has_prog()) sources.push_back(w.prog);
  for (const std::string& src : sources) {
    Compiled c = compile_source(src, small_options(w, false));
    auto m = run_program(c);
    EXPECT_GT(m->refs(), 0u);
  }
}

TEST_P(WorkloadSuite, CompilerVersionRunsTransformed) {
  const Workload& w = workloads::get(GetParam());
  Compiled c = compile_source(w.natural, small_options(w, true));
  EXPECT_FALSE(c.transforms.decisions.empty())
      << "no transformations chosen for " << w.name;
  auto m = run_program(c);
  EXPECT_GT(m->refs(), 0u);
}

TEST_P(WorkloadSuite, TransformationReducesFalseSharingAt128B) {
  const Workload& w = workloads::get(GetParam());
  Compiled n = compile_source(w.natural, small_options(w, false));
  Compiled c = compile_source(w.natural, small_options(w, true));
  auto sn = run_trace_study(n, {128});
  auto sc = run_trace_study(c, {128});
  EXPECT_LT(sc.at(128).false_sharing, sn.at(128).false_sharing)
      << w.name;
}

TEST_P(WorkloadSuite, RunsAtManyProcessorCounts) {
  const Workload& w = workloads::get(GetParam());
  for (i64 p : {i64{1}, i64{2}, i64{8}}) {
    CompileOptions o = small_options(w, true);
    o.overrides["NPROCS"] = p;
    Compiled c = compile_source(w.natural, o);
    auto m = run_program(c);
    EXPECT_GT(m->refs(), 0u) << w.name << " @" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite,
    ::testing::Values("maxflow", "pverify", "topopt", "fmm", "radiosity",
                      "raytrace", "locusroute", "mp3d", "pthor", "water"));

// Per-program transformation mix, as documented in Table 2 / Sec. 5.
TEST(WorkloadTransforms, MaxflowUsesPaddingAndLocksOnly) {
  const Workload& w = workloads::get("maxflow");
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 12;
  o.optimize = true;
  Compiled c = compile_source(w.natural, o);
  EXPECT_TRUE(has_kind(c, TransformKind::kPadAlign));
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
  EXPECT_FALSE(has_kind(c, TransformKind::kGroupTranspose));
  EXPECT_FALSE(has_kind(c, TransformKind::kIndirection));
}

TEST(WorkloadTransforms, PverifyDominatedByIndirection) {
  const Workload& w = workloads::get("pverify");
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 12;
  o.optimize = true;
  Compiled c = compile_source(w.natural, o);
  EXPECT_TRUE(has_kind(c, TransformKind::kIndirection));
  EXPECT_TRUE(has_kind(c, TransformKind::kGroupTranspose));
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
}

TEST(WorkloadTransforms, TopoptUsesGroupTransposeAndIndirection) {
  const Workload& w = workloads::get("topopt");
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 9;
  o.optimize = true;
  Compiled c = compile_source(w.natural, o);
  EXPECT_TRUE(has_kind(c, TransformKind::kGroupTranspose));
  EXPECT_TRUE(has_kind(c, TransformKind::kIndirection));
}

TEST(WorkloadTransforms, FmmDominatedByGroupTranspose) {
  const Workload& w = workloads::get("fmm");
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 12;
  o.optimize = true;
  Compiled c = compile_source(w.natural, o);
  EXPECT_TRUE(has_kind(c, TransformKind::kGroupTranspose));
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
  EXPECT_FALSE(has_kind(c, TransformKind::kIndirection));
}

TEST(WorkloadTransforms, TopoptRevolvingArrayLeftAlone) {
  const Workload& w = workloads::get("topopt");
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 9;
  o.optimize = true;
  Compiled c = compile_source(w.natural, o);
  const GlobalSym* moved = c.prog->find_global("moved");
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(c.transforms.applying_to(moved->id, -1), nullptr)
      << "the revolving partition must be invisible to the analysis";
}

TEST(WorkloadTransforms, MaxflowCountersEscapeProfiling) {
  const Workload& w = workloads::get("maxflow");
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 12;
  o.optimize = true;
  Compiled c = compile_source(w.natural, o);
  for (const char* name : {"work_done", "total_pushes"}) {
    const GlobalSym* g = c.prog->find_global(name);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(c.transforms.applying_to(g->id, -1), nullptr) << name;
  }
}

TEST(WorkloadInvariants, MaxflowConservesFlowSign) {
  const Workload& w = workloads::get("maxflow");
  Compiled c = compile_source(w.natural, small_options(w, true));
  auto m = run_program(c);
  // All flows are non-negative and bounded by capacity + slack.
  i64 nn = c.prog->params.at("N");
  i64 ee = c.prog->params.at("E");
  for (i64 u = 0; u < nn; u += 17) {
    for (i64 e = 0; e < ee; ++e) {
      double f = m->load_real(c.address_of("flow", "", {u, e}));
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 64.0);
    }
  }
}

TEST(WorkloadInvariants, PverifyChecksEveryGateReachable) {
  const Workload& w = workloads::get("pverify");
  Compiled n = compile_source(w.natural, small_options(w, false));
  auto m = run_program(n);
  i64 total = 0;
  for (i64 p = 0; p < 4; ++p)
    total += m->load_int(n.address_of("checked", "", {p}));
  EXPECT_GT(total, 0);
}

TEST(WorkloadInvariants, FmmCountsParticlesExactly) {
  const Workload& w = workloads::get("fmm");
  for (bool opt : {false, true}) {
    Compiled c = compile_source(w.natural, small_options(w, opt));
    auto m = run_program(c);
    i64 np = c.prog->params.at("NP");
    i64 steps = c.prog->params.at("STEPS");
    i64 total = 0;
    for (i64 p = 0; p < 4; ++p)
      total += m->load_int(c.address_of("wcount", "", {p}));
    EXPECT_EQ(total, np * steps);
  }
}

TEST(WorkloadInvariants, RaytraceDispensesEveryRay) {
  const Workload& w = workloads::get("raytrace");
  Compiled c = compile_source(w.natural, small_options(w, true));
  auto m = run_program(c);
  i64 scan = c.prog->params.at("SCAN");
  i64 width = c.prog->params.at("WIDTH");
  i64 frames = c.prog->params.at("FRAMES");
  EXPECT_EQ(m->load_int(c.address_of("ray_id", "", {})),
            scan * width * frames);
}

TEST(WorkloadInvariants, LocusrouteRoutesEveryWire) {
  const Workload& w = workloads::get("locusroute");
  Compiled c = compile_source(w.natural, small_options(w, true));
  auto m = run_program(c);
  i64 wires = c.prog->params.at("WIRES");
  i64 total = 0;
  for (i64 p = 0; p < 4; ++p)
    total += m->load_int(c.address_of("routed", "", {p}));
  EXPECT_EQ(total, wires);
}

TEST(WorkloadInvariants, Mp3dCollisionsMatchMoves) {
  const Workload& w = workloads::get("mp3d");
  Compiled c = compile_source(w.natural, small_options(w, true));
  auto m = run_program(c);
  i64 nmol = c.prog->params.at("NMOL");
  i64 steps = c.prog->params.at("STEPS");
  i64 total = 0;
  for (i64 p = 0; p < 4; ++p)
    total += m->load_int(c.address_of("collisions", "", {p}));
  EXPECT_EQ(total, nmol * steps);
}

TEST(WorkloadInvariants, WaterAccumulatesKineticEnergy) {
  const Workload& w = workloads::get("water");
  Compiled c = compile_source(w.natural, small_options(w, true));
  auto m = run_program(c);
  double kin = m->load_real(c.address_of("kin_total", "", {}));
  EXPECT_GT(kin, 0.0);
}

}  // namespace
}  // namespace fsopt
