#include "analysis/perprocess.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/sema.h"

namespace fsopt {
namespace {

struct Ctx {
  std::unique_ptr<Program> prog;
  std::unique_ptr<CallGraph> cg;
  PdvResult pdvs;
};

Ctx make(std::string_view src, i64 nprocs) {
  Ctx c;
  DiagnosticEngine diags;
  c.prog = parse_and_check(src, diags, {{"NPROCS", nprocs}});
  c.cg = std::make_unique<CallGraph>(*c.prog);
  c.pdvs = analyze_pdvs(*c.prog, *c.cg);
  return c;
}

// Build a one-condition program and return the set of pids satisfying it.
std::optional<PidSet> pids_of(const std::string& cond, i64 nprocs) {
  Ctx c = make("param NPROCS = 8; int g; void main(int pid) { if (" + cond +
                   ") { g = 1; } }",
               nprocs);
  const Stmt& ifstmt = *c.prog->main->body->stmts[0];
  return pids_satisfying(*ifstmt.cond, c.pdvs, nprocs);
}

TEST(PerProcess, EqualityCondition) {
  auto s = pids_of("pid == 3", 8);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, PidSet::single(3));
}

TEST(PerProcess, RangeCondition) {
  auto s = pids_of("pid < 3", 8);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count(), 3);
  EXPECT_TRUE(s->test(0) && s->test(1) && s->test(2));
}

TEST(PerProcess, ModuloCondition) {
  auto s = pids_of("pid % 2 == 0", 8);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count(), 4);
  EXPECT_TRUE(s->test(0) && s->test(6));
  EXPECT_FALSE(s->test(1));
}

TEST(PerProcess, CompoundCondition) {
  auto s = pids_of("pid > 1 && pid <= 4 || pid == 7", 8);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count(), 4);  // 2,3,4,7
  EXPECT_TRUE(s->test(7));
}

TEST(PerProcess, GlobalLoadIsUndecidable) {
  auto s = pids_of("g == 0", 8);
  EXPECT_FALSE(s.has_value());
}

TEST(PerProcess, ShortCircuitDecidesWithoutRightSide) {
  // `pid == 0 && g == 0` is decidable for every pid != 0.
  auto s = pids_of("pid != 0 || g == 0", 8);
  EXPECT_FALSE(s.has_value());  // pid==0 case needs g
  auto t = pids_of("pid >= 0 || g == 0", 8);
  ASSERT_TRUE(t.has_value());  // left side always true
  EXPECT_EQ(t->count(), 8);
}

TEST(PerProcess, DerivedPdvInCondition) {
  Ctx c = make(
      "param NPROCS = 8; int g; void main(int pid) {"
      "  int me; me = pid * 2;"
      "  if (me == 4) { g = 1; } }",
      8);
  const Stmt* ifstmt = nullptr;
  for_each_stmt(*c.prog->main->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::kIf) ifstmt = &s;
  });
  // With an environment binding me := 2*pid, the condition is decidable.
  AffineEnv env;
  env.bind(c.prog->main->find_local("me"),
           Affine::variable(c.pdvs.pid, 2));
  auto s = pids_satisfying(*ifstmt->cond, c.pdvs, 8, &env);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, PidSet::single(2));
}

TEST(PerProcess, StatementAnnotation) {
  Ctx c = make(
      "param NPROCS = 4; int g; int h;"
      "void main(int pid) {"
      "  if (pid == 0) { g = 1; } else { h = 2; }"
      "}",
      4);
  PerProcessCf cf = analyze_per_process_cf(*c.prog, c.pdvs);
  ASSERT_EQ(cf.divergences.size(), 1u);
  EXPECT_EQ(cf.divergences[0].then_pids, PidSet::single(0));
  EXPECT_EQ(cf.divergences[0].else_pids.count(), 3);

  const Stmt* gassign = nullptr;
  const Stmt* hassign = nullptr;
  for_each_stmt(*c.prog->main->body, [&](const Stmt& s) {
    if (s.kind != StmtKind::kAssign) return;
    if (s.target->name == "g") gassign = &s;
    if (s.target->name == "h") hassign = &s;
  });
  EXPECT_EQ(cf.pids_for(*gassign, 4), PidSet::single(0));
  EXPECT_EQ(cf.pids_for(*hassign, 4).count(), 3);
}

TEST(PerProcess, NestedDivergence) {
  Ctx c = make(
      "param NPROCS = 8; int g;"
      "void main(int pid) {"
      "  if (pid < 4) { if (pid % 2 == 0) { g = 1; } }"
      "}",
      8);
  PerProcessCf cf = analyze_per_process_cf(*c.prog, c.pdvs);
  const Stmt* gassign = nullptr;
  for_each_stmt(*c.prog->main->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::kAssign) gassign = &s;
  });
  PidSet s = cf.pids_for(*gassign, 8);
  EXPECT_EQ(s.count(), 2);  // pids 0 and 2
  EXPECT_TRUE(s.test(0) && s.test(2));
}

TEST(PerProcess, AnnotateCfg) {
  Ctx c = make(
      "param NPROCS = 4; int g;"
      "void main(int pid) { if (pid == 1) { g = 1; } }",
      4);
  PerProcessCf cf = analyze_per_process_cf(*c.prog, c.pdvs);
  Cfg cfg(*c.prog->main);
  auto sets = annotate_cfg(cfg, cf, 4);
  const Stmt* gassign = nullptr;
  for_each_stmt(*c.prog->main->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::kAssign) gassign = &s;
  });
  CfgNode* n = cfg.node_for(*gassign);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(sets[static_cast<size_t>(n->id)], PidSet::single(1));
}

// Parameterized over processor counts: complement invariants.
class PidSetProperty : public ::testing::TestWithParam<i64> {};

TEST_P(PidSetProperty, ComplementPartitions) {
  i64 n = GetParam();
  auto s = pids_of("pid % 3 == 1", n);
  ASSERT_TRUE(s.has_value());
  PidSet t = s->complement(n);
  EXPECT_EQ((*s & t).count(), 0);
  EXPECT_EQ((*s | t), PidSet::all(n));
}

INSTANTIATE_TEST_SUITE_P(Procs, PidSetProperty,
                         ::testing::Values(1, 2, 3, 8, 13, 48, 64));

}  // namespace
}  // namespace fsopt
