#include "lang/printer.h"

#include <gtest/gtest.h>

#include "lang/sema.h"

namespace fsopt {
namespace {

std::unique_ptr<Program> check(std::string_view src) {
  DiagnosticEngine diags;
  return parse_and_check(src, diags, {});
}

TEST(Printer, RoundTripsSimpleProgram) {
  const char* src =
      "param NPROCS = 2;\n"
      "int a[4];\n"
      "void main(int pid) {\n"
      "  int i;\n"
      "  for (i = 0; i < 4; i = i + 1) {\n"
      "    a[i] = i * 2 + pid;\n"
      "  }\n"
      "}\n";
  auto p1 = check(src);
  std::string printed = print_program(*p1);
  // The printed program must itself be valid PPL with the same meaning.
  auto p2 = check(printed);
  EXPECT_EQ(print_program(*p2), print_program(*p1));
}

TEST(Printer, PreservesPrecedenceWithParens) {
  auto p = check(
      "param NPROCS = 1; int x;"
      "void main(int pid) { x = (1 + 2) * 3; }");
  std::string printed = print_program(*p);
  EXPECT_NE(printed.find("(1 + 2) * 3"), std::string::npos) << printed;
}

TEST(Printer, DoesNotOverParenthesize) {
  auto p = check(
      "param NPROCS = 1; int x;"
      "void main(int pid) { x = 1 + 2 * 3; }");
  std::string printed = print_program(*p);
  EXPECT_NE(printed.find("1 + 2 * 3"), std::string::npos) << printed;
}

TEST(Printer, RealLiteralsKeepDecimalPoint) {
  auto p = check(
      "param NPROCS = 1; real r;"
      "void main(int pid) { r = 2.0; }");
  std::string printed = print_program(*p);
  EXPECT_NE(printed.find("2.0"), std::string::npos) << printed;
}

TEST(Printer, StructsAndLocksRendered) {
  auto p = check(
      "param NPROCS = 2; struct S { int a; real b[3]; };"
      "struct S s[4]; lock_t l;"
      "void main(int pid) { lock(l); s[0].a = 1; unlock(l); barrier(); }");
  std::string printed = print_program(*p);
  EXPECT_NE(printed.find("struct S {"), std::string::npos);
  EXPECT_NE(printed.find("real b[3];"), std::string::npos);
  EXPECT_NE(printed.find("lock(l);"), std::string::npos);
  EXPECT_NE(printed.find("barrier();"), std::string::npos);
  auto p2 = check(printed);
  EXPECT_EQ(print_program(*p2), printed);
}

TEST(Printer, WhileAndIfElse) {
  auto p = check(
      "param NPROCS = 1; int x;"
      "void main(int pid) {"
      "  int i; i = 0;"
      "  while (i < 3) { if (i == 1) { x = 1; } else { x = 2; } i = i + 1; }"
      "}");
  std::string printed = print_program(*p);
  EXPECT_NE(printed.find("while (i < 3)"), std::string::npos);
  EXPECT_NE(printed.find("else"), std::string::npos);
  auto p2 = check(printed);
  EXPECT_EQ(print_program(*p2), printed);
}

TEST(Printer, IntrinsicsAndCallsRoundTrip) {
  const char* src =
      "param NPROCS = 2; param N = 8;\n"
      "real acc[N]; lock_t lk;\n"
      "real f(real v) { return v * 0.5 + 1.0; }\n"
      "void main(int pid) {\n"
      "  int i;\n"
      "  for (i = pid; i < N; i = i + nprocs) { acc[i] = f(itor(i)); }\n"
      "  barrier();\n"
      "  lock(lk); acc[0] = acc[0] + 1.0; unlock(lk);\n"
      "}\n";
  auto p = check(src);
  auto p2 = check(print_program(*p));
  EXPECT_EQ(print_program(*p2), print_program(*p));
}

}  // namespace
}  // namespace fsopt
