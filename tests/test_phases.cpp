#include "analysis/phases.h"

#include <gtest/gtest.h>

#include "cfg/callgraph.h"
#include "lang/sema.h"

namespace fsopt {
namespace {

std::unique_ptr<Program> check(std::string_view src) {
  DiagnosticEngine diags;
  return parse_and_check(src, diags, {});
}

TEST(Phases, NoBarriersOnePhase) {
  auto p = check("param NPROCS = 2; int x; void main(int pid) { x = 1; }");
  PhaseInfo ph = analyze_phases(*p);
  EXPECT_EQ(ph.phase_count, 1);
  EXPECT_EQ(ph.phase_of(*p->main->body->stmts[0]), 0);
}

TEST(Phases, SequentialBarriers) {
  auto p = check(
      "param NPROCS = 2; int a; int b; int c;"
      "void main(int pid) { a = 1; barrier(); b = 2; barrier(); c = 3; }");
  PhaseInfo ph = analyze_phases(*p);
  EXPECT_EQ(ph.phase_count, 3);
  const auto& stmts = p->main->body->stmts;
  EXPECT_EQ(ph.phase_of(*stmts[0]), 0);  // a = 1
  EXPECT_EQ(ph.phase_of(*stmts[2]), 1);  // b = 2
  EXPECT_EQ(ph.phase_of(*stmts[4]), 2);  // c = 3
  // Sequential edges 0->1->2.
  EXPECT_EQ(ph.edges.size(), 2u);
}

TEST(Phases, BarrierInLoopCreatesBackEdge) {
  auto p = check(
      "param NPROCS = 2; int a; int b;"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 4; i = i + 1) { a = i; barrier(); b = i; } }");
  PhaseInfo ph = analyze_phases(*p);
  EXPECT_EQ(ph.phase_count, 2);
  // One forward edge (0 -> 1) and one loop back edge (1 -> 0).
  bool fwd = false;
  bool back = false;
  for (auto& [from, to] : ph.edges) {
    if (from == 0 && to == 1) fwd = true;
    if (from == 1 && to == 0) back = true;
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(back);
}

TEST(Phases, StatementsBeforeAndAfterLoopBarrier) {
  auto p = check(
      "param NPROCS = 2; int a; int b;"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 4; i = i + 1) { a = i; barrier(); b = i; } }");
  PhaseInfo ph = analyze_phases(*p);
  const Stmt* aw = nullptr;
  const Stmt* bw = nullptr;
  for_each_stmt(*p->main->body, [&](const Stmt& s) {
    if (s.kind != StmtKind::kAssign || s.target->local != nullptr) return;
    if (s.target->name == "a") aw = &s;
    if (s.target->name == "b") bw = &s;
  });
  EXPECT_EQ(ph.phase_of(*aw), 0);
  EXPECT_EQ(ph.phase_of(*bw), 1);
}

TEST(Phases, BarrierInsideIfIsFlaggedSuspicious) {
  auto p = check(
      "param NPROCS = 2;"
      "void main(int pid) { if (pid == 0) { barrier(); } }");
  PhaseInfo ph = analyze_phases(*p);
  EXPECT_EQ(ph.suspicious_barriers.size(), 1u);
}

TEST(Phases, IfBranchesShareEntryPhase) {
  auto p = check(
      "param NPROCS = 2; int a; int b;"
      "void main(int pid) {"
      "  barrier();"
      "  if (pid == 0) { a = 1; } else { b = 2; }"
      "}");
  PhaseInfo ph = analyze_phases(*p);
  const Stmt* aw = nullptr;
  const Stmt* bw = nullptr;
  for_each_stmt(*p->main->body, [&](const Stmt& s) {
    if (s.kind != StmtKind::kAssign) return;
    if (s.target->name == "a") aw = &s;
    if (s.target->name == "b") bw = &s;
  });
  EXPECT_EQ(ph.phase_of(*aw), 1);
  EXPECT_EQ(ph.phase_of(*bw), 1);
}

TEST(Phases, TypicalSpmdShape) {
  // init; barrier; loop { work; barrier; sequential-fixup; barrier }
  auto p = check(
      "param NPROCS = 4; int a[16]; int t;"
      "void main(int pid) { int i; int r;"
      "  a[pid] = 0;"
      "  barrier();"
      "  for (r = 0; r < 3; r = r + 1) {"
      "    for (i = pid; i < 16; i = i + nprocs) { a[i] = a[i] + 1; }"
      "    barrier();"
      "    if (pid == 0) { t = t + 1; }"
      "    barrier();"
      "  }"
      "}");
  PhaseInfo ph = analyze_phases(*p);
  EXPECT_EQ(ph.phase_count, 4);  // init | work | fixup | next-round(work)
}

}  // namespace
}  // namespace fsopt
