// Per-program §5 "stories": the transformation mix the compiler chooses
// for each remaining workload, and cross-version behavioural checks.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workloads/workloads.h"

namespace fsopt {
namespace {

using workloads::Workload;

Compiled compile_opt(const std::string& name, i64 procs) {
  const Workload& w = workloads::get(name);
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = procs;
  o.optimize = true;
  return compile_source(w.natural, o);
}

bool has_kind(const Compiled& c, TransformKind k) {
  for (const auto& d : c.transforms.decisions)
    if (d.kind == k) return true;
  return false;
}

int count_kind(const Compiled& c, TransformKind k) {
  int n = 0;
  for (const auto& d : c.transforms.decisions)
    if (d.kind == k) ++n;
  return n;
}

TEST(WorkloadStories, RadiosityGroupsTaskMachineryAndPadsLocks) {
  Compiled c = compile_opt("radiosity", 12);
  // Table 2: G&T dominates (85.6%), locks contribute (6.8%).
  EXPECT_GE(count_kind(c, TransformKind::kGroupTranspose), 3);
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
  // The patch radiosity itself is true-shared and too large to pad.
  const GlobalSym* rad = c.prog->find_global("rad");
  ASSERT_NE(rad, nullptr);
  EXPECT_EQ(c.transforms.applying_to(rad->id, -1), nullptr);
}

TEST(WorkloadStories, RaytraceGroupsRowsPadsStatsKeepsResidual) {
  Compiled c = compile_opt("raytrace", 12);
  EXPECT_TRUE(has_kind(c, TransformKind::kGroupTranspose));
  EXPECT_TRUE(has_kind(c, TransformKind::kPadAlign));
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
  // The under-profiled statistics counter stays untransformed (§5's
  // residual busy scalars).
  const GlobalSym* g = c.prog->find_global("rays_traced");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(c.transforms.applying_to(g->id, -1), nullptr);
  // The read-only scene geometry is not churned (dominant phase has no
  // writes to it).
  const GlobalSym* obj = c.prog->find_global("obj_x");
  EXPECT_EQ(c.transforms.applying_to(obj->id, -1), nullptr);
}

TEST(WorkloadStories, LocusrouteGroupsRouteBuffers) {
  Compiled c = compile_opt("locusroute", 12);
  EXPECT_TRUE(has_kind(c, TransformKind::kGroupTranspose));
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
  // The cost grid is written with unit-stride runs from dynamic bases:
  // spatially local, left alone.
  const GlobalSym* cost = c.prog->find_global("cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(c.transforms.applying_to(cost->id, -1), nullptr);
}

TEST(WorkloadStories, Mp3dGroupsParticlesPadsCellsAndCounters) {
  Compiled c = compile_opt("mp3d", 12);
  EXPECT_GE(count_kind(c, TransformKind::kGroupTranspose), 2);
  EXPECT_TRUE(has_kind(c, TransformKind::kPadAlign));
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
}

TEST(WorkloadStories, PthorExtractsStampsAndGroupsLists) {
  Compiled c = compile_opt("pthor", 12);
  EXPECT_TRUE(has_kind(c, TransformKind::kIndirection));
  EXPECT_TRUE(has_kind(c, TransformKind::kGroupTranspose));
}

TEST(WorkloadStories, WaterGroupsMoleculeStateAndPadsReductionLock) {
  Compiled c = compile_opt("water", 12);
  EXPECT_GE(count_kind(c, TransformKind::kGroupTranspose), 3);
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
}

TEST(WorkloadStories, FmmPositionsNotChurnedByDominantPhase) {
  // Positions are read in the dominant interaction phase and written only
  // in the update phase: the dominant-pattern rule leaves them alone.
  Compiled c = compile_opt("fmm", 12);
  const GlobalSym* px = c.prog->find_global("pos_x");
  ASSERT_NE(px, nullptr);
  EXPECT_EQ(c.transforms.applying_to(px->id, -1), nullptr);
  // The hot force arrays are grouped.
  const GlobalSym* fx = c.prog->find_global("force_x");
  const TransformDecision* d = c.transforms.applying_to(fx->id, -1);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kGroupTranspose);
  EXPECT_EQ(d->shape, PartitionShape::kInterleaved);
}

// The compiler's decisions are stable across processor counts for the
// statically partitioned programs (the partitioning pattern is the same,
// only concretized at a different P).
class StableDecisions : public ::testing::TestWithParam<i64> {};

TEST_P(StableDecisions, FmmMixIndependentOfProcs) {
  Compiled c = compile_opt("fmm", GetParam());
  EXPECT_TRUE(has_kind(c, TransformKind::kGroupTranspose));
  EXPECT_TRUE(has_kind(c, TransformKind::kLockPad));
  EXPECT_FALSE(has_kind(c, TransformKind::kIndirection));
}

INSTANTIATE_TEST_SUITE_P(Procs, StableDecisions,
                         ::testing::Values(2, 4, 8, 16, 32, 48));

// Version-to-version result agreement where the kernels are deterministic:
// fmm's particle counter and raytrace's dispenser do not depend on
// interleaving, so N and C must agree exactly.
TEST(WorkloadCrossVersion, FmmCountsAgreeAcrossLayouts) {
  const Workload& w = workloads::get("fmm");
  for (i64 p : {i64{2}, i64{6}}) {
    CompileOptions base;
    base.overrides = w.sim_overrides;
    base.overrides["NPROCS"] = p;
    CompileOptions opt = base;
    opt.optimize = true;
    Compiled n = compile_source(w.unopt, base);
    Compiled c = compile_source(w.natural, opt);
    auto mn = run_program(n);
    auto mc = run_program(c);
    i64 tn = 0;
    i64 tc = 0;
    for (i64 q = 0; q < p; ++q) {
      tn += mn->load_int(n.address_of("wcount", "", {q}));
      tc += mc->load_int(c.address_of("wcount", "", {q}));
    }
    EXPECT_EQ(tn, tc) << "at " << p << " procs";
  }
}

TEST(WorkloadCrossVersion, RaytraceImageAgreesAcrossAllThreeVersions) {
  const Workload& w = workloads::get("raytrace");
  CompileOptions base;
  base.overrides = w.sim_overrides;
  base.overrides["NPROCS"] = 4;
  CompileOptions opt = base;
  opt.optimize = true;
  Compiled n = compile_source(w.unopt, base);
  Compiled c = compile_source(w.natural, opt);
  Compiled p = compile_source(w.prog, base);
  auto mn = run_program(n);
  auto mc = run_program(c);
  auto mp = run_program(p);
  // Ray ids differ by dispatch order, but the traced geometry term of
  // each pixel is deterministic; compare through row checksums of the
  // final frame for a sample of rows.
  i64 spp = 192 / 4;
  for (i64 y : {i64{0}, i64{5}, i64{17}, i64{40}}) {
    double a = mn->load_real(n.address_of("row_sum", "", {y * 4}));
    double b = mc->load_real(c.address_of("row_sum", "", {y * 4}));
    double d = mp->load_real(p.address_of("row_sum", "", {0, y}));
    (void)spp;
    EXPECT_NEAR(a, b, 1.0) << y;
    EXPECT_NEAR(a, d, 1.0) << y;
  }
}

}  // namespace
}  // namespace fsopt
