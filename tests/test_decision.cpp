#include "transform/decision.h"

#include <gtest/gtest.h>

#include "lang/sema.h"

namespace fsopt {
namespace {

struct Ctx {
  std::unique_ptr<Program> prog;
  ProgramSummary summary;
  SharingReport report;
  TransformSet transforms;
};

Ctx decide(std::string_view src, i64 nprocs = 8, DecisionOptions opt = {}) {
  Ctx c;
  DiagnosticEngine diags;
  c.prog = parse_and_check(src, diags, {{"NPROCS", nprocs}});
  c.summary = analyze_program(*c.prog);
  c.report = classify_sharing(c.summary);
  c.transforms = decide_transforms(c.report, c.summary, 128, opt);
  return c;
}

TransformKind kind_of(const Ctx& c, const char* global,
                      const char* field = nullptr) {
  const GlobalSym* g = c.prog->find_global(global);
  if (g == nullptr) return TransformKind::kNone;
  int fi = field != nullptr ? g->elem.strct->field_index(field) : -1;
  const TransformDecision* d = c.transforms.applying_to(g->id, fi);
  return d != nullptr ? d->kind : TransformKind::kNone;
}

TEST(Decision, LocksAlwaysPadded) {
  Ctx c = decide(
      "param NPROCS = 8; lock_t l; int x;"
      "void main(int pid) { lock(l); x = x + 1; unlock(l); }");
  EXPECT_EQ(kind_of(c, "l"), TransformKind::kLockPad);
}

TEST(Decision, InterleavedArrayGetsGroupTranspose) {
  Ctx c = decide(
      "param NPROCS = 8; real a[64];"
      "void main(int pid) { int i; int r;"
      "  for (r = 0; r < 10; r = r + 1) {"
      "    for (i = pid; i < 64; i = i + nprocs) { a[i] = a[i] + 1.0; } } }");
  EXPECT_EQ(kind_of(c, "a"), TransformKind::kGroupTranspose);
  const TransformDecision* d =
      c.transforms.find({c.prog->find_global("a")->id, -1});
  EXPECT_EQ(d->shape, PartitionShape::kInterleaved);
}

TEST(Decision, BlockedArrayGetsBlockedShape) {
  Ctx c = decide(
      "param NPROCS = 8; param C = 8; real a[64];"
      "void main(int pid) { int i; int r;"
      "  for (r = 0; r < 10; r = r + 1) {"
      "    for (i = pid * C; i < pid * C + C; i = i + 1) {"
      "      a[i] = a[i] + 1.0; } } }");
  const TransformDecision* d =
      c.transforms.find({c.prog->find_global("a")->id, -1});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kGroupTranspose);
  EXPECT_EQ(d->shape, PartitionShape::kBlocked);
  EXPECT_EQ(d->chunk, 8);
}

TEST(Decision, EmbeddedFieldGetsIndirection) {
  Ctx c = decide(
      "param NPROCS = 8; struct S { int v[NPROCS]; int w; };"
      "struct S g[32]; int q;"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 200; i = i + 1) {"
      "    g[(q + i) % 32].v[pid] = g[(q + i) % 32].v[pid] + 1; } }");
  EXPECT_EQ(kind_of(c, "g", "v"), TransformKind::kIndirection);
}

TEST(Decision, SharedNonLocalGetsPadAlign) {
  Ctx c = decide(
      "param NPROCS = 8; real a[32]; int q;"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 100; i = i + 1) {"
      "    a[(q + i * 7 + pid) % 32] = a[(q + i * 13) % 32] + 1.0; } }");
  EXPECT_EQ(kind_of(c, "a"), TransformKind::kPadAlign);
}

TEST(Decision, PadSkippedWhenFootprintTooLarge) {
  DecisionOptions opt;
  opt.pad_footprint_limit = 1024;  // tiny budget
  Ctx c = decide(
      "param NPROCS = 8; real a[32]; int q;"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 100; i = i + 1) {"
      "    a[(q + i * 7 + pid) % 32] = a[(q + i * 13) % 32] + 1.0; } }",
      8, opt);
  EXPECT_EQ(kind_of(c, "a"), TransformKind::kNone);
}

TEST(Decision, SpatiallyLocalSharedWritesNotPadded) {
  // The revolving-partition case: unit-stride writes from unknown bases.
  Ctx c = decide(
      "param NPROCS = 8; real a[64]; int q;"
      "void main(int pid) { int i; int s0; s0 = q;"
      "  for (i = s0; i < s0 + 8; i = i + 1) { a[i] = 1.0; a[i] = a[i] * "
      "2.0; } }");
  EXPECT_EQ(kind_of(c, "a"), TransformKind::kNone);
}

TEST(Decision, ReadSharedWithLocalityBlocksGroupTranspose) {
  // Per-process writes, but dominant shared reads with spatial locality
  // and writes that don't dominate 10x: left alone (§3.3).
  Ctx c = decide(
      "param NPROCS = 8; real a[64]; real s[NPROCS];"
      "void main(int pid) { int i; int r;"
      "  for (r = 0; r < 10; r = r + 1) {"
      "    for (i = pid; i < 64; i = i + nprocs) { a[i] = 1.0; }"
      "    for (i = 0; i < 64; i = i + 1) { s[pid] = s[pid] + a[i]; }"
      "  } }");
  EXPECT_EQ(kind_of(c, "a"), TransformKind::kNone);
}

TEST(Decision, WriteDominanceOverridesLocalReads) {
  DecisionOptions opt;
  opt.write_dominance = 0.05;  // writes need only a sliver of read weight
  Ctx c = decide(
      "param NPROCS = 8; real a[64]; real s[NPROCS];"
      "void main(int pid) { int i; int r;"
      "  for (r = 0; r < 10; r = r + 1) {"
      "    for (i = pid; i < 64; i = i + nprocs) { a[i] = 1.0; }"
      "    for (i = 0; i < 64; i = i + 1) { s[pid] = s[pid] + a[i]; }"
      "  } }",
      8, opt);
  EXPECT_EQ(kind_of(c, "a"), TransformKind::kGroupTranspose);
}

TEST(Decision, BelowWeightThresholdIgnored) {
  DecisionOptions opt;
  opt.min_weight_fraction = 0.5;  // only the dominant datum qualifies
  Ctx c = decide(
      "param NPROCS = 8; real hot[64]; real cold[64]; lock_t l;"
      "void main(int pid) { int i; int r;"
      "  lock(l); unlock(l);"
      "  cold[pid] = 1.0;"
      "  for (r = 0; r < 50; r = r + 1) {"
      "    for (i = pid; i < 64; i = i + nprocs) {"
      "      hot[i] = hot[i] + 1.0; } } }",
      8, opt);
  EXPECT_EQ(kind_of(c, "hot"), TransformKind::kGroupTranspose);
  EXPECT_EQ(kind_of(c, "cold"), TransformKind::kNone);
  // Locks are exempt from the threshold.
  EXPECT_EQ(kind_of(c, "l"), TransformKind::kLockPad);
}

TEST(Decision, SelectiveDisables) {
  DecisionOptions opt;
  opt.enable_group_transpose = false;
  opt.enable_lock_pad = false;
  Ctx c = decide(
      "param NPROCS = 8; real a[64]; lock_t l;"
      "void main(int pid) { int i; int r;"
      "  lock(l); unlock(l);"
      "  for (r = 0; r < 10; r = r + 1) {"
      "    for (i = pid; i < 64; i = i + nprocs) { a[i] = a[i] + 1.0; } } }",
      8, opt);
  EXPECT_EQ(kind_of(c, "a"), TransformKind::kNone);
  EXPECT_EQ(kind_of(c, "l"), TransformKind::kNone);
}

TEST(Decision, StructConsensusMovesWholeElement) {
  // Every field of the struct is written per-process along dim 0: the
  // whole element array is grouped & transposed at symbol level.
  Ctx c = decide(
      "param NPROCS = 8; struct S { real x; real y; };"
      "struct S m[64];"
      "void main(int pid) { int i; int r;"
      "  for (r = 0; r < 10; r = r + 1) {"
      "    for (i = pid; i < 64; i = i + nprocs) {"
      "      m[i].x = m[i].x + 1.0; m[i].y = m[i].y - 1.0; } } }");
  const GlobalSym* g = c.prog->find_global("m");
  const TransformDecision* d = c.transforms.find({g->id, -1});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kGroupTranspose);
}

TEST(Decision, StructConsensusFailsWhenFieldShared) {
  Ctx c = decide(
      "param NPROCS = 8; struct S { real x; int owner; };"
      "struct S m[64]; int q;"
      "void main(int pid) { int i; int r;"
      "  for (r = 0; r < 10; r = r + 1) {"
      "    for (i = pid; i < 64; i = i + nprocs) { m[i].x = m[i].x + 1.0; }"
      "    m[q % 64].owner = pid;"
      "  } }");
  const GlobalSym* g = c.prog->find_global("m");
  EXPECT_EQ(c.transforms.find({g->id, -1}), nullptr);
}

TEST(Decision, RenderListsDecisions) {
  Ctx c = decide(
      "param NPROCS = 8; lock_t l; int x;"
      "void main(int pid) { lock(l); x = x + 1; unlock(l); }");
  std::string s = c.transforms.render(c.summary);
  EXPECT_NE(s.find("lock-pad"), std::string::npos);
}

}  // namespace
}  // namespace fsopt
