#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

std::vector<Token> lex(std::string_view src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  auto toks = lexer.lex_all();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return toks;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEof);
}

TEST(Lexer, IntegerLiteral) {
  auto toks = lex("42");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kIntLit);
  EXPECT_EQ(toks[0].int_value, 42);
}

TEST(Lexer, RealLiteral) {
  auto toks = lex("3.25");
  EXPECT_EQ(toks[0].kind, Tok::kRealLit);
  EXPECT_DOUBLE_EQ(toks[0].real_value, 3.25);
}

TEST(Lexer, RealLiteralWithExponent) {
  auto toks = lex("1.5e2");
  EXPECT_EQ(toks[0].kind, Tok::kRealLit);
  EXPECT_DOUBLE_EQ(toks[0].real_value, 150.0);
}

TEST(Lexer, IntegerFollowedByDotMethodLikeIsNotReal) {
  // `a.b` style: `1 .x` would be int then dot; but "1." without digit is
  // int + dot.
  auto toks = lex("1.x");
  EXPECT_EQ(toks[0].kind, Tok::kIntLit);
  EXPECT_EQ(toks[1].kind, Tok::kDot);
  EXPECT_EQ(toks[2].kind, Tok::kIdent);
}

TEST(Lexer, Identifier) {
  auto toks = lex("foo_bar2");
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "foo_bar2");
}

TEST(Lexer, Keywords) {
  auto toks = lex("struct param int real lock_t void if else while for "
                  "return barrier lock unlock nprocs");
  std::vector<Tok> expected = {
      Tok::kKwStruct, Tok::kKwParam,  Tok::kKwInt,    Tok::kKwReal,
      Tok::kKwLockT,  Tok::kKwVoid,   Tok::kKwIf,     Tok::kKwElse,
      Tok::kKwWhile,  Tok::kKwFor,    Tok::kKwReturn, Tok::kKwBarrier,
      Tok::kKwLock,   Tok::kKwUnlock, Tok::kKwNprocs, Tok::kEof};
  ASSERT_EQ(toks.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
}

TEST(Lexer, TwoCharOperators) {
  auto toks = lex("== != <= >= && ||");
  std::vector<Tok> expected = {Tok::kEq, Tok::kNe,     Tok::kLe,
                               Tok::kGe, Tok::kAndAnd, Tok::kOrOr,
                               Tok::kEof};
  ASSERT_EQ(toks.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(toks[i].kind, expected[i]);
}

TEST(Lexer, SingleCharOperators) {
  auto toks = lex("+ - * / % = < > ! ( ) [ ] { } , ; .");
  EXPECT_EQ(toks[0].kind, Tok::kPlus);
  EXPECT_EQ(toks[1].kind, Tok::kMinus);
  EXPECT_EQ(toks[2].kind, Tok::kStar);
  EXPECT_EQ(toks[3].kind, Tok::kSlash);
  EXPECT_EQ(toks[4].kind, Tok::kPercent);
  EXPECT_EQ(toks[5].kind, Tok::kAssign);
  EXPECT_EQ(toks[6].kind, Tok::kLt);
  EXPECT_EQ(toks[7].kind, Tok::kGt);
  EXPECT_EQ(toks[8].kind, Tok::kNot);
}

TEST(Lexer, LineCommentsAreSkipped) {
  auto toks = lex("a // comment with stuff ;;;\nb");
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].kind, Tok::kEof);
}

TEST(Lexer, BlockCommentsAreSkipped) {
  auto toks = lex("a /* multi\nline\ncomment */ b");
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, UnterminatedBlockCommentIsAnError) {
  DiagnosticEngine diags;
  Lexer lexer("a /* never closed", diags);
  lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnexpectedCharacterIsReportedAndSkipped) {
  DiagnosticEngine diags;
  Lexer lexer("a @ b", diags);
  auto toks = lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
  // Both identifiers still lexed.
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.col, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Lexer, AmpersandAloneIsError) {
  DiagnosticEngine diags;
  Lexer lexer("a & b", diags);
  lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace fsopt
