#include "interp/machine.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "driver/experiment.h"

namespace fsopt {
namespace {

Compiled build(std::string_view src, i64 nprocs = 1, bool optimize = false) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = nprocs;
  opt.optimize = optimize;
  return compile_source(src, opt);
}

i64 run_int(const Compiled& c, const std::string& global,
            std::vector<i64> idx = {}) {
  auto m = run_program(c);
  return m->load_int(c.address_of(global, "", idx));
}

double run_real(const Compiled& c, const std::string& global,
                std::vector<i64> idx = {}) {
  auto m = run_program(c);
  return m->load_real(c.address_of(global, "", idx));
}

TEST(Machine, IntegerArithmetic) {
  Compiled c = build(
      "param NPROCS = 1; int x;"
      "void main(int pid) { x = (7 + 3) * 2 - 15 / 2 - 9 % 4; }");
  EXPECT_EQ(run_int(c, "x"), 20 - 7 - 1);
}

TEST(Machine, RealArithmetic) {
  Compiled c = build(
      "param NPROCS = 1; real r;"
      "void main(int pid) { r = (1.5 + 2.5) * 0.25 - 1.0 / 8.0; }");
  EXPECT_DOUBLE_EQ(run_real(c, "r"), 0.875);
}

TEST(Machine, NegativeNumbersAndComparisons) {
  Compiled c = build(
      "param NPROCS = 1; int x;"
      "void main(int pid) {"
      "  if (-3 < -2 && 2 >= 2 && 1 != 2 && !(4 <= 3)) { x = 1; } }");
  EXPECT_EQ(run_int(c, "x"), 1);
}

TEST(Machine, ShortCircuitEvaluation) {
  // `i != 0 && 10 / i > 1` must not divide by zero when i == 0.
  Compiled c = build(
      "param NPROCS = 1; int x;"
      "void main(int pid) { int i; i = 0;"
      "  if (i != 0 && 10 / i > 1) { x = 1; } else { x = 2; } }");
  EXPECT_EQ(run_int(c, "x"), 2);
}

TEST(Machine, ForLoopAccumulation) {
  Compiled c = build(
      "param NPROCS = 1; int s;"
      "void main(int pid) { int i; s = 0;"
      "  for (i = 1; i <= 10; i = i + 1) { s = s + i; } }");
  EXPECT_EQ(run_int(c, "s"), 55);
}

TEST(Machine, WhileLoop) {
  Compiled c = build(
      "param NPROCS = 1; int x;"
      "void main(int pid) { int i; i = 1; x = 0;"
      "  while (i < 100) { i = i * 2; x = x + 1; } }");
  EXPECT_EQ(run_int(c, "x"), 7);
}

TEST(Machine, FunctionCallsAndRecursionFreeComposition) {
  Compiled c = build(
      "param NPROCS = 1; int x;"
      "int sq(int v) { return v * v; }"
      "int poly(int v) { return sq(v) + 2 * v + 1; }"
      "void main(int pid) { x = poly(5); }");
  EXPECT_EQ(run_int(c, "x"), 36);
}

TEST(Machine, Intrinsics) {
  Compiled c = build(
      "param NPROCS = 1; int a; int b; real r;"
      "void main(int pid) {"
      "  a = min(3, max(1, 2)) + abs(0 - 9);"
      "  r = sqrt(2.25) + abs(0.0 - 0.5);"
      "  b = rtoi(r * 2.0); }");
  auto m = run_program(c);
  EXPECT_EQ(m->load_int(c.address_of("a", "", {})), 11);
  EXPECT_DOUBLE_EQ(m->load_real(c.address_of("r", "", {})), 2.0);
  EXPECT_EQ(m->load_int(c.address_of("b", "", {})), 4);
}

TEST(Machine, LcgIsDeterministic) {
  Compiled c = build(
      "param NPROCS = 1; int a; int b;"
      "void main(int pid) { a = lcg(7); b = lcg(7); }");
  auto m = run_program(c);
  EXPECT_EQ(m->load_int(c.address_of("a", "", {})),
            m->load_int(c.address_of("b", "", {})));
}

TEST(Machine, ArraysAndStructFields) {
  Compiled c = build(
      "param NPROCS = 1; struct S { int a; real b[2]; };"
      "struct S g[3]; int x;"
      "void main(int pid) {"
      "  g[1].a = 42; g[1].b[0] = 1.5; g[1].b[1] = g[1].b[0] * 2.0;"
      "  x = g[1].a; }");
  auto m = run_program(c);
  EXPECT_EQ(m->load_int(c.address_of("x", "", {})), 42);
  EXPECT_DOUBLE_EQ(m->load_real(c.address_of("g", "b", {1, 1})), 3.0);
}

TEST(Machine, EachProcessSeesItsPid) {
  Compiled c = build(
      "param NPROCS = 8; int who[8];"
      "void main(int pid) { who[pid] = pid * 10; }",
      8);
  auto m = run_program(c);
  for (i64 p = 0; p < 8; ++p)
    EXPECT_EQ(m->load_int(c.address_of("who", "", {p})), p * 10);
}

TEST(Machine, BarrierOrdersPhases) {
  // All processes write their slot, then process 0 sums after a barrier:
  // the sum must see every slot.
  Compiled c = build(
      "param NPROCS = 8; int slot[8]; int sum;"
      "void main(int pid) { int i;"
      "  slot[pid] = pid + 1;"
      "  barrier();"
      "  if (pid == 0) { sum = 0;"
      "    for (i = 0; i < 8; i = i + 1) { sum = sum + slot[i]; } } }",
      8);
  EXPECT_EQ(run_int(c, "sum"), 36);
}

TEST(Machine, RepeatedBarriers) {
  Compiled c = build(
      "param NPROCS = 4; int turn[12];"
      "void main(int pid) { int r;"
      "  for (r = 0; r < 3; r = r + 1) {"
      "    if (pid == r % 4) { turn[r * 4 + pid] = r + 1; }"
      "    barrier();"
      "  } }",
      4);
  auto m = run_program(c);
  EXPECT_EQ(m->load_int(c.address_of("turn", "", {0})), 1);
  EXPECT_EQ(m->load_int(c.address_of("turn", "", {5})), 2);
  EXPECT_EQ(m->load_int(c.address_of("turn", "", {10})), 3);
}

TEST(Machine, LocksProvideMutualExclusion) {
  // Without the lock this increment would lose updates under the
  // interleaved scheduler; with it the count must be exact.
  Compiled c = build(
      "param NPROCS = 8; lock_t l; int count;"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 25; i = i + 1) {"
      "    lock(l); count = count + 1; unlock(l); } }",
      8);
  EXPECT_EQ(run_int(c, "count"), 200);
}

TEST(Machine, LockArrayElementsAreIndependent) {
  Compiled c = build(
      "param NPROCS = 4; lock_t ls[4]; int n[4];"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 10; i = i + 1) {"
      "    lock(ls[pid]); n[pid] = n[pid] + 1; unlock(ls[pid]); } }",
      4);
  auto m = run_program(c);
  for (i64 p = 0; p < 4; ++p)
    EXPECT_EQ(m->load_int(c.address_of("n", "", {p})), 10);
}

TEST(Machine, DeterministicAcrossRuns) {
  const char* src =
      "param NPROCS = 6; lock_t l; int order[64]; int next;"
      "void main(int pid) { int i; int t;"
      "  for (i = 0; i < 8; i = i + 1) {"
      "    lock(l); t = next; next = t + 1; unlock(l);"
      "    order[t % 64] = pid; } }";
  Compiled c = build(src, 6);
  auto m1 = run_program(c);
  auto m2 = run_program(c);
  for (i64 i = 0; i < 48; ++i)
    EXPECT_EQ(m1->load_int(c.address_of("order", "", {i})),
              m2->load_int(c.address_of("order", "", {i})));
  EXPECT_EQ(m1->finish_cycles(), m2->finish_cycles());
}

TEST(Machine, TraceSinkSeesEveryReference) {
  Compiled c = build(
      "param NPROCS = 2; int a[4];"
      "void main(int pid) { a[pid] = a[pid] + 1; }",
      2);
  VectorSink sink;
  MachineOptions mo;
  mo.sink = &sink;
  Machine m(c.code, mo);
  m.run();
  // Per process: read + write = 2 refs; 2 processes.
  EXPECT_EQ(sink.refs().size(), 4u);
  EXPECT_EQ(m.refs(), 4u);
}

TEST(Machine, OutOfBoundsIndexThrows) {
  Compiled c = build(
      "param NPROCS = 1; int a[4]; int q;"
      "void main(int pid) { a[q + 7] = 1; }");
  MachineOptions mo;
  Machine m(c.code, mo);
  EXPECT_THROW(m.run(), InternalError);
}

TEST(Machine, DivisionByZeroThrows) {
  Compiled c = build(
      "param NPROCS = 1; int x; int q;"
      "void main(int pid) { x = 5 / q; }");
  MachineOptions mo;
  Machine m(c.code, mo);
  EXPECT_THROW(m.run(), InternalError);
}

TEST(Machine, InstructionBudgetGuards) {
  Compiled c = build(
      "param NPROCS = 1; int x;"
      "void main(int pid) { while (1) { x = x + 1; } }");
  MachineOptions mo;
  mo.max_instructions = 10000;
  Machine m(c.code, mo);
  EXPECT_THROW(m.run(), InternalError);
}

TEST(Machine, FinishCyclesIsMaxOverProcs) {
  Compiled c = build(
      "param NPROCS = 4; int a[4];"
      "void main(int pid) { int i;"
      "  for (i = 0; i < pid * 10; i = i + 1) { a[pid] = a[pid] + 1; } }",
      4);
  MachineOptions mo;
  Machine m(c.code, mo);
  m.run();
  i64 mx = 0;
  for (int p = 0; p < 4; ++p) mx = std::max(mx, m.proc_cycles(p));
  EXPECT_EQ(m.finish_cycles(), mx);
  EXPECT_GT(m.proc_cycles(3), m.proc_cycles(0));
}

// Transformed and untransformed executions must compute identical results
// for race-free programs — the transformation-safety property.
class TransformSafety : public ::testing::TestWithParam<i64> {};

TEST_P(TransformSafety, SameResultsUnderAllLayouts) {
  i64 nprocs = GetParam();
  const char* src =
      "param NPROCS = 8; param N = 64;\n"
      "struct S { int v[NPROCS]; int w; };\n"
      "struct S g[N];\n"
      "real a[N];\n"
      "int b[16][NPROCS];\n"
      "int done[NPROCS];\n"
      "lock_t l; int total;\n"
      "void main(int pid) { int i; int r;\n"
      "  for (r = 0; r < 4; r = r + 1) {\n"
      "    for (i = pid; i < N; i = i + nprocs) {\n"
      "      a[i] = a[i] + itor(i) * 0.5;\n"
      "      g[i].v[pid] = g[i].v[pid] + i;\n"
      "    }\n"
      "    for (i = 0; i < 16; i = i + 1) {\n"
      "      b[i][pid] = b[i][pid] + pid;\n"
      "    }\n"
      "  }\n"
      "  done[pid] = 1;\n"
      "  lock(l); total = total + pid; unlock(l);\n"
      "}\n";
  Compiled n = build(src, nprocs, false);
  Compiled c = build(src, nprocs, true);
  EXPECT_FALSE(c.transforms.decisions.empty());
  auto mn = run_program(n);
  auto mc = run_program(c);
  for (i64 i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(mn->load_real(n.address_of("a", "", {i})),
                     mc->load_real(c.address_of("a", "", {i})));
    for (i64 p = 0; p < nprocs; ++p)
      EXPECT_EQ(mn->load_int(n.address_of("g", "v", {i, p})),
                mc->load_int(c.address_of("g", "v", {i, p})));
  }
  for (i64 k = 0; k < 16; ++k)
    for (i64 p = 0; p < nprocs; ++p)
      EXPECT_EQ(mn->load_int(n.address_of("b", "", {k, p})),
                mc->load_int(c.address_of("b", "", {k, p})));
  EXPECT_EQ(mn->load_int(n.address_of("total", "", {})),
            mc->load_int(c.address_of("total", "", {})));
}

INSTANTIATE_TEST_SUITE_P(Procs, TransformSafety,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace fsopt
