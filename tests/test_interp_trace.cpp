// Unit tests for the bytecode layer, the trace sinks and the small
// statistics helpers.
#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/bytecode.h"
#include "support/stats.h"
#include "trace/trace.h"

namespace fsopt {
namespace {

Compiled build(std::string_view src) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 2;
  return compile_source(src, opt);
}

TEST(Bytecode, AccessPlanAddress) {
  AccessPlan p;
  p.base = 100;
  p.const_off = 8;
  p.dims = {{1, 0, 40}, {1, 0, 4}};
  p.extents = {8, 10};
  p.size = 4;
  p.name = "a";
  i64 idx[2] = {2, 3};
  EXPECT_EQ(p.address(idx), 100 + 8 + 80 + 12);
}

TEST(Bytecode, AccessPlanBoundsChecked) {
  AccessPlan p;
  p.base = 0;
  p.dims = {{1, 0, 4}};
  p.extents = {4};
  p.size = 4;
  p.name = "a";
  i64 bad[1] = {4};
  EXPECT_THROW(p.address(bad), InternalError);
  i64 neg[1] = {-1};
  EXPECT_THROW(p.address(neg), InternalError);
}

TEST(Bytecode, SplitDimMapAddress) {
  // Blocked group&transpose addressing: (x%4)*8 + (x/4)*1000.
  AccessPlan p;
  p.base = 0;
  p.dims = {{4, 8, 1000}};
  p.extents = {16};
  p.size = 8;
  p.name = "g";
  i64 i5[1] = {5};
  EXPECT_EQ(p.address(i5), 1 * 8 + 1 * 1000);
}

TEST(Bytecode, DisassemblyMentionsPlansAndFunctions) {
  Compiled c = build(
      "param NPROCS = 2; int a[4]; lock_t l;"
      "int get(int i) { return a[i]; }"
      "void main(int pid) { int x; lock(l); x = get(pid); unlock(l); "
      "barrier(); }");
  std::string d = c.code.disassemble();
  EXPECT_NE(d.find("main:"), std::string::npos);
  EXPECT_NE(d.find("get:"), std::string::npos);
  EXPECT_NE(d.find("load.g a"), std::string::npos);
  EXPECT_NE(d.find("lock l"), std::string::npos);
  EXPECT_NE(d.find("barrier"), std::string::npos);
  EXPECT_NE(d.find("call get"), std::string::npos);
}

TEST(Bytecode, PlansAreDeduplicatedPerDatum) {
  Compiled c = build(
      "param NPROCS = 2; int a[8];"
      "void main(int pid) { a[0] = 1; a[1] = 2; a[2] = a[0] + a[1]; }");
  // One plan for `a`, not one per access site.
  EXPECT_EQ(c.code.plans.size(), 1u);
}

TEST(Bytecode, RuntimeRegionFollowsGlobals) {
  Compiled c = build("param NPROCS = 2; int a[100]; void main(int pid) { }");
  EXPECT_GE(c.code.barrier_base, c.code.globals_bytes);
  EXPECT_EQ(c.code.barrier_base % 256, 0);
  EXPECT_GT(c.code.total_bytes, c.code.barrier_base);
}

TEST(Trace, CountingSink) {
  CountingSink s;
  s.on_ref({0, 4, 0, RefType::kRead});
  s.on_ref({4, 4, 0, RefType::kWrite});
  s.on_ref({8, 8, 1, RefType::kWrite});
  EXPECT_EQ(s.total(), 3u);
  EXPECT_EQ(s.writes(), 2u);
  EXPECT_EQ(s.reads(), 1u);
}

TEST(Trace, VectorSinkPreservesOrderAndFields) {
  VectorSink s;
  s.on_ref({16, 8, 3, RefType::kWrite});
  s.on_ref({0, 4, 1, RefType::kRead});
  ASSERT_EQ(s.refs().size(), 2u);
  EXPECT_EQ(s.refs()[0].addr, 16);
  EXPECT_EQ(s.refs()[0].size, 8);
  EXPECT_EQ(s.refs()[0].proc, 3);
  EXPECT_EQ(s.refs()[0].type, RefType::kWrite);
  EXPECT_EQ(s.refs()[1].type, RefType::kRead);
}

TEST(Trace, MultiSinkFansOut) {
  CountingSink a;
  CountingSink b;
  MultiSink m;
  m.add(&a);
  m.add(&b);
  m.on_ref({0, 4, 0, RefType::kRead});
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(b.total(), 1u);
}

TEST(Trace, CallbackSink) {
  int count = 0;
  CallbackSink s([&](const MemRef&) { ++count; });
  s.on_ref({0, 4, 0, RefType::kRead});
  s.on_ref({0, 4, 0, RefType::kRead});
  EXPECT_EQ(count, 2);
}

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
}

TEST(Stats, Formatting) {
  EXPECT_EQ(pct(0.1234), "12.3%");
  EXPECT_EQ(pct(0.5, 0), "50%");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Stats, TextTableAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Stats, TextTableRejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InternalError);
}

TEST(Support, RoundUpAndPow2) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(128));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Diagnostics, RenderAndThrow) {
  DiagnosticEngine d;
  d.warning({1, 2}, "just a warning");
  EXPECT_FALSE(d.has_errors());
  d.throw_if_errors();  // no-op
  d.error({3, 4}, "boom");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1);
  std::string r = d.render();
  EXPECT_NE(r.find("warning at 1:2"), std::string::npos);
  EXPECT_NE(r.find("error at 3:4: boom"), std::string::npos);
  EXPECT_THROW(d.throw_if_errors(), CompileError);
}

}  // namespace
}  // namespace fsopt
