#include "analysis/sideeffect.h"

#include <gtest/gtest.h>

#include "lang/sema.h"

namespace fsopt {
namespace {

ProgramSummary analyze(std::string_view src, i64 nprocs = 4) {
  DiagnosticEngine diags;
  static std::vector<std::unique_ptr<Program>> keep_alive;
  keep_alive.push_back(parse_and_check(src, diags, {{"NPROCS", nprocs}}));
  return analyze_program(*keep_alive.back());
}

const AccessRecord* find_record(const ProgramSummary& s, const char* name,
                                bool is_write,
                                const char* field = nullptr) {
  for (const AccessRecord& r : s.records) {
    if (r.is_write != is_write || r.is_lock_op) continue;
    const GlobalSym* g = s.datum_sym(r.datum);
    if (g->name != name) continue;
    if (field != nullptr) {
      if (r.datum.field < 0) continue;
      if (g->elem.strct->fields[static_cast<size_t>(r.datum.field)].name !=
          field)
        continue;
    }
    return &r;
  }
  return nullptr;
}

TEST(SideEffect, ScalarWriteRecorded) {
  auto s = analyze("param NPROCS = 4; int x; void main(int pid) { x = 1; }");
  const AccessRecord* r = find_record(s, "x", true);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rsd.rank(), 0u);
  EXPECT_DOUBLE_EQ(r->weight, 1.0);
  EXPECT_EQ(r->pids, PidSet::all(4));
}

TEST(SideEffect, PidIndexedWrite) {
  auto s = analyze(
      "param NPROCS = 4; int a[4]; void main(int pid) { a[pid] = 1; }");
  const AccessRecord* r = find_record(s, "a", true);
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->rsd.rank(), 1u);
  const DimSec& d = r->rsd.dims()[0];
  ASSERT_EQ(d.kind(), DimSec::Kind::kInvariant);
  EXPECT_EQ(d.invariant_expr().coeff(s.pdvs.pid), 1);
}

TEST(SideEffect, LoopClosesToRange) {
  auto s = analyze(
      "param NPROCS = 4; int a[64]; void main(int pid) {"
      "  int i; for (i = 0; i < 64; i = i + 1) { a[i] = i; } }");
  const AccessRecord* r = find_record(s, "a", true);
  ASSERT_NE(r, nullptr);
  const DimSec& d = r->rsd.dims()[0];
  ASSERT_EQ(d.kind(), DimSec::Kind::kRange);
  EXPECT_EQ(d.lo().const_term(), 0);
  EXPECT_EQ(d.hi().const_term(), 63);
  EXPECT_EQ(d.stride(), 1);
  EXPECT_DOUBLE_EQ(r->weight, 64.0);  // static trip count
}

TEST(SideEffect, InterleavedLoopKeepsStrideAndPid) {
  auto s = analyze(
      "param NPROCS = 4; int a[64]; void main(int pid) {"
      "  int i; for (i = pid; i < 64; i = i + nprocs) { a[i] = i; } }");
  const AccessRecord* r = find_record(s, "a", true);
  ASSERT_NE(r, nullptr);
  const DimSec& d = r->rsd.dims()[0];
  ASSERT_EQ(d.kind(), DimSec::Kind::kRange);
  EXPECT_EQ(d.stride(), 4);
  EXPECT_EQ(d.lo().coeff(s.pdvs.pid), 1);
  // Sections are disjoint across pids.
  auto b0 = r->rsd.concretize(s.pdvs.pid, 0, {64});
  auto b1 = r->rsd.concretize(s.pdvs.pid, 1, {64});
  EXPECT_TRUE(boxes_disjoint(b0, b1));
}

TEST(SideEffect, BlockedLoop) {
  auto s = analyze(
      "param NPROCS = 4; param C = 16; int a[64]; void main(int pid) {"
      "  int i; for (i = pid * C; i < pid * C + C; i = i + 1) {"
      "    a[i] = i; } }");
  const AccessRecord* r = find_record(s, "a", true);
  const DimSec& d = r->rsd.dims()[0];
  ASSERT_EQ(d.kind(), DimSec::Kind::kRange);
  EXPECT_EQ(d.lo().coeff(s.pdvs.pid), 16);
  EXPECT_DOUBLE_EQ(r->weight, 16.0);
}

TEST(SideEffect, UnknownBaseKeepsStride) {
  auto s = analyze(
      "param NPROCS = 4; int a[64]; int base; void main(int pid) {"
      "  int i; int s0; s0 = base;"
      "  for (i = s0; i < s0 + 8; i = i + 1) { a[i] = i; } }");
  const AccessRecord* r = find_record(s, "a", true);
  EXPECT_EQ(r->rsd.dims()[0].kind(), DimSec::Kind::kStridedUnknown);
  EXPECT_TRUE(r->rsd.dims()[0].has_unit_stride_run(4));
}

TEST(SideEffect, IndexExpressionReadsAreRecorded) {
  auto s = analyze(
      "param NPROCS = 4; int a[8]; int idx;"
      "void main(int pid) { a[idx] = 1; }");
  EXPECT_NE(find_record(s, "idx", false), nullptr);
  const AccessRecord* w = find_record(s, "a", true);
  EXPECT_TRUE(w->rsd.dims()[0].is_unknown());
}

TEST(SideEffect, CallTranslationSubstitutesFormals) {
  auto s = analyze(
      "param NPROCS = 4; int a[16];"
      "void put(int at) { a[at] = 1; }"
      "void main(int pid) { put(pid * 4); }");
  const AccessRecord* r = find_record(s, "a", true);
  ASSERT_NE(r, nullptr);
  const DimSec& d = r->rsd.dims()[0];
  ASSERT_EQ(d.kind(), DimSec::Kind::kInvariant);
  EXPECT_EQ(d.invariant_expr().coeff(s.pdvs.pid), 4);
}

TEST(SideEffect, CallInsideLoopClosesOverCallerInduction) {
  auto s = analyze(
      "param NPROCS = 4; int a[16];"
      "void put(int at) { a[at] = 1; }"
      "void main(int pid) {"
      "  int i; for (i = 0; i < 4; i = i + 1) { put(i * 4 + pid); } }");
  const AccessRecord* r = find_record(s, "a", true);
  const DimSec& d = r->rsd.dims()[0];
  ASSERT_EQ(d.kind(), DimSec::Kind::kRange);
  EXPECT_EQ(d.stride(), 4);
  EXPECT_EQ(d.lo().coeff(s.pdvs.pid), 1);
}

TEST(SideEffect, CallWeightMultiplied) {
  auto s = analyze(
      "param NPROCS = 4; int x;"
      "void bump() { x = x + 1; }"
      "void main(int pid) {"
      "  int i; for (i = 0; i < 10; i = i + 1) { bump(); } }");
  const AccessRecord* r = find_record(s, "x", true);
  EXPECT_DOUBLE_EQ(r->weight, 10.0);
}

TEST(SideEffect, GuardNarrowsPids) {
  auto s = analyze(
      "param NPROCS = 4; int x;"
      "void main(int pid) { if (pid == 2) { x = 1; } }");
  const AccessRecord* r = find_record(s, "x", true);
  EXPECT_EQ(r->pids, PidSet::single(2));
  EXPECT_DOUBLE_EQ(r->weight, 1.0);  // decidable branch: no 0.5 factor
}

TEST(SideEffect, UndecidableBranchHalvesWeight) {
  auto s = analyze(
      "param NPROCS = 4; int x; int q;"
      "void main(int pid) { if (q == 0) { x = 1; } }");
  const AccessRecord* r = find_record(s, "x", true);
  EXPECT_DOUBLE_EQ(r->weight, kUnknownBranchProb);
  EXPECT_EQ(r->pids, PidSet::all(4));
}

TEST(SideEffect, WhileUsesDefaultTrips) {
  auto s = analyze(
      "param NPROCS = 4; int x;"
      "void main(int pid) { int i; i = 0;"
      "  while (i < 100) { x = x + 1; i = i + 1; } }");
  const AccessRecord* r = find_record(s, "x", true);
  EXPECT_DOUBLE_EQ(r->weight, kUnknownWhileTrips);
}

TEST(SideEffect, FieldArrayAccessHasFieldDim) {
  auto s = analyze(
      "param NPROCS = 4; struct S { int v[4]; int w; };"
      "struct S g[8];"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 8; i = i + 1) { g[i].v[pid] = 1; } }");
  const AccessRecord* r = find_record(s, "g", true, "v");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->rsd.rank(), 2u);
  EXPECT_EQ(r->rsd.dims()[0].kind(), DimSec::Kind::kRange);
  EXPECT_EQ(r->rsd.dims()[1].invariant_expr().coeff(s.pdvs.pid), 1);
}

TEST(SideEffect, LockOpsAreMarked) {
  auto s = analyze(
      "param NPROCS = 4; lock_t l; int x;"
      "void main(int pid) { lock(l); x = 1; unlock(l); }");
  int lock_ops = 0;
  for (const AccessRecord& r : s.records)
    if (r.is_lock_op) ++lock_ops;
  EXPECT_EQ(lock_ops, 4);  // read+write for lock, write(+read) for unlock
}

TEST(SideEffect, PhaseTagging) {
  auto s = analyze(
      "param NPROCS = 4; int a; int b;"
      "void main(int pid) { a = 1; barrier(); b = 2; }");
  EXPECT_EQ(find_record(s, "a", true)->phase, 0);
  EXPECT_EQ(find_record(s, "b", true)->phase, 1);
}

TEST(SideEffect, LocalAssignmentInvalidatedByLoop) {
  // `k` is rebound inside the loop body; uses after widening are unknown.
  auto s = analyze(
      "param NPROCS = 4; int a[64]; int q;"
      "void main(int pid) { int i; int k; k = 0;"
      "  for (i = 0; i < 8; i = i + 1) { a[k] = 1; k = k + q; } }");
  const AccessRecord* r = find_record(s, "a", true);
  EXPECT_TRUE(r->rsd.dims()[0].is_unknown());
}

TEST(SideEffect, PidDependentTripEstimatedAtPidZero) {
  auto s = analyze(
      "param NPROCS = 4; int a[64];"
      "void main(int pid) { int i;"
      "  for (i = pid; i < 64; i = i + nprocs) { a[i] = 1; } }");
  const AccessRecord* r = find_record(s, "a", true);
  // (64-1-0)/4 + 1 = 16 trips estimated at pid 0.
  EXPECT_DOUBLE_EQ(r->weight, 16.0);
}

}  // namespace
}  // namespace fsopt
