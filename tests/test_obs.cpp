// Tests for the runtime tracing subsystem (src/obs/): span recording,
// nesting and thread attribution, Chrome-trace JSON well-formedness,
// ThreadPool instrumentation (queue-depth counters, busy spans), summary
// aggregation, and the must-not-perturb-results guarantee — replay stats
// bit-identical with tracing on vs. off, alongside the shard-determinism
// suite in test_shard.cpp.  The second half covers the metrics registry
// (obs/metrics.h): histogram bucket boundaries, concurrent-increment
// exactness, the kind-mismatch check, both expositions and the
// partial-data marker.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "driver/experiment.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"
#include "support/json.h"
#include "support/thread_pool.h"

namespace fsopt {
namespace {

/// Every obs test starts from a clean, enabled recorder and leaves
/// tracing disabled so the rest of the suite runs uninstrumented.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

const obs::ThreadLog* log_with_span(const obs::TraceData& data,
                                    std::string_view name) {
  for (const obs::ThreadLog& t : data.threads)
    for (const obs::SpanEvent& s : t.spans)
      if (s.name == name) return &t;
  return nullptr;
}

const obs::SpanEvent* find_span(const obs::TraceData& data,
                                std::string_view name) {
  for (const obs::ThreadLog& t : data.threads)
    for (const obs::SpanEvent& s : t.spans)
      if (s.name == name) return &s;
  return nullptr;
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  {
    obs::Span span("test", "invisible");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);  // must be a no-op, not a crash
  }
  obs::counter("test.counter", 42.0);
  obs::TraceData data = obs::collect();
  EXPECT_EQ(data.span_count(), 0u);
  EXPECT_EQ(data.counter_count(), 0u);
}

TEST_F(ObsTest, SpanNestingAndThreadAttribution) {
  obs::set_thread_name("obs-test-main");
  {
    obs::Span outer("test", "outer");
    ASSERT_TRUE(outer.active());
    {
      obs::Span inner("test", "inner");
      ASSERT_TRUE(inner.active());
    }
  }
  std::thread worker([] {
    obs::set_thread_name("obs-test-worker");
    obs::Span span("test", "elsewhere");
  });
  worker.join();

  obs::TraceData data = obs::collect();
  const obs::SpanEvent* outer = find_span(data, "outer");
  const obs::SpanEvent* inner = find_span(data, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner interval nests inside the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);

  // Same thread for outer/inner; a different, named thread for the third.
  const obs::ThreadLog* main_log = log_with_span(data, "outer");
  const obs::ThreadLog* worker_log = log_with_span(data, "elsewhere");
  ASSERT_NE(main_log, nullptr);
  ASSERT_NE(worker_log, nullptr);
  EXPECT_EQ(main_log, log_with_span(data, "inner"));
  EXPECT_NE(main_log->tid, worker_log->tid);
  EXPECT_EQ(main_log->name, "obs-test-main");
  EXPECT_EQ(worker_log->name, "obs-test-worker");
}

TEST_F(ObsTest, ChromeTraceJsonRoundTripsThroughValidator) {
  {
    obs::Span span("cat/with\"quote", "na\\me\nwith\tescapes");
    span.arg("refs", 12345.0);
    span.arg("label", "fmm/C \"quoted\"");
  }
  obs::counter("queue depth \\ odd", 7.0);
  obs::TraceData data = obs::collect();
  ASSERT_EQ(data.span_count(), 1u);
  ASSERT_EQ(data.counter_count(), 1u);

  std::string doc = obs::chrome_trace_json(data);
  EXPECT_TRUE(json::validate(doc)) << doc;
  // The document carries the span (escaped), its args, the counter, and
  // the trace-event framing.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("na\\\\me\\nwith\\tescapes"), std::string::npos);
  EXPECT_NE(doc.find("\"refs\": 12345"), std::string::npos);
  EXPECT_NE(doc.find("fmm/C \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"M\""), std::string::npos);
}

TEST_F(ObsTest, ThreadPoolRecordsQueueDepthAndBusySpans) {
  constexpr int kJobs = 6;
  {
    ThreadPool pool(1);
    // Block the single worker so later submissions pile up in the queue.
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    pool.submit([gate] { gate.wait(); });
    for (int i = 0; i < kJobs - 1; ++i) pool.submit([] {});
    release.set_value();
    pool.wait();
  }

  obs::TraceData data = obs::collect();
  // Busy accounting: one "pool"/"job" span per executed job, with
  // nonzero total busy time (the gated job waited on the future).
  size_t pool_spans = 0;
  for (const obs::ThreadLog& t : data.threads)
    for (const obs::SpanEvent& s : t.spans)
      if (std::string_view(s.category) == "pool" && s.name == "job")
        ++pool_spans;
  EXPECT_EQ(pool_spans, static_cast<size_t>(kJobs));

  // Queue depth was sampled on every submit and pop, and the backlog
  // behind the gated job was observed.
  double max_depth = 0;
  size_t depth_samples = 0;
  for (const obs::ThreadLog& t : data.threads)
    for (const obs::CounterEvent& c : t.counters)
      if (std::string_view(c.name) == "pool.queue_depth") {
        ++depth_samples;
        max_depth = std::max(max_depth, c.value);
      }
  EXPECT_EQ(depth_samples, static_cast<size_t>(2 * kJobs));
  EXPECT_GE(max_depth, static_cast<double>(kJobs - 1));

  obs::TraceSummary summary = obs::summarize(data);
  EXPECT_EQ(summary.pool_workers, 1);
  EXPECT_GT(summary.pool_busy_seconds, 0.0);
  EXPECT_GT(summary.pool_utilization(), 0.0);
  EXPECT_LE(summary.pool_utilization(), 1.0 + 1e-9);
}

const char* kProgram =
    "param NPROCS = 4;\n"
    "param N = 64;\n"
    "struct cell { int count; int pad; };\n"
    "struct cell cells[64];\n"
    "void main(int pid) {\n"
    "  int i;\n"
    "  for (i = pid; i < N; i = i + NPROCS) {\n"
    "    cells[i].count = cells[i].count + 1;\n"
    "  }\n"
    "  barrier();\n"
    "}\n";

TEST_F(ObsTest, EndToEndRunEmitsPassRecordAndReplaySpans) {
  Compiled c = compile_source(kProgram, CompileOptions{});
  TraceBuffer trace = record_trace(c);
  // Force sharding so per-shard spans exist even for this small trace.
  replay_trace_study(trace, c, {16, 64}, 32 * 1024, nullptr,
                     /*threads=*/2, /*shards=*/2);

  obs::TraceData data = obs::collect();
  EXPECT_NE(find_span(data, "parse"), nullptr);
  EXPECT_NE(find_span(data, "codegen"), nullptr);
  EXPECT_NE(find_span(data, "record_trace"), nullptr);
  EXPECT_NE(find_span(data, "partition"), nullptr);
  // Sharded sweeps run the composed sharded × multi-plane engine: one
  // span per shard with throughput, one span per plane with the
  // miss-class counters.
  const obs::SpanEvent* shard = find_span(data, "multi_shard");
  ASSERT_NE(shard, nullptr);
  bool has_refs = false;
  for (const obs::Arg& a : shard->args) has_refs |= a.key == "refs";
  EXPECT_TRUE(has_refs);
  const obs::SpanEvent* plane = find_span(data, "plane");
  ASSERT_NE(plane, nullptr);
  bool has_fs = false;
  for (const obs::Arg& a : plane->args) has_fs |= a.key == "false_sharing";
  EXPECT_TRUE(has_fs);

  obs::TraceSummary summary = obs::summarize(data);
  EXPECT_FALSE(summary.slowest_pass.empty());
  EXPECT_GT(summary.wall_seconds, 0.0);
  std::string rendered = obs::render_summary(data);
  EXPECT_NE(rendered.find("pass"), std::string::npos);
  EXPECT_NE(rendered.find("slowest pass"), std::string::npos);
}

TEST_F(ObsTest, StatsBitIdenticalWithTracingOnAndOff) {
  // The observability guarantee: instrumentation reads clocks and writes
  // its own buffers, never simulator state — so every stat of a traced
  // run equals the untraced run exactly.
  obs::set_enabled(false);
  Compiled off_c = compile_source(kProgram, CompileOptions{});
  TraceStudyResult off =
      run_trace_study(off_c, paper_block_sizes(), 32 * 1024, nullptr,
                      /*threads=*/2, /*shards=*/2);

  obs::set_enabled(true);
  Compiled on_c = compile_source(kProgram, CompileOptions{});
  TraceStudyResult on =
      run_trace_study(on_c, paper_block_sizes(), 32 * 1024, nullptr,
                      /*threads=*/2, /*shards=*/2);

  EXPECT_EQ(compile_fingerprint(off_c), compile_fingerprint(on_c));
  EXPECT_EQ(off.refs, on.refs);
  ASSERT_EQ(off.by_block.size(), on.by_block.size());
  for (const auto& [block, stats] : off.by_block) {
    ASSERT_TRUE(on.by_block.count(block)) << "block " << block;
    EXPECT_EQ(stats, on.by_block.at(block)) << "block " << block;
  }
  // And the traced run actually recorded something.
  EXPECT_GT(obs::collect().span_count(), 0u);
}

TEST_F(ObsTest, ResetDropsEventsButKeepsThreadNames) {
  obs::set_thread_name("keeper");
  { obs::Span span("test", "gone-after-reset"); }
  ASSERT_GE(obs::collect().span_count(), 1u);
  obs::reset();
  obs::TraceData data = obs::collect();
  EXPECT_EQ(data.span_count(), 0u);
  bool found = false;
  for (const obs::ThreadLog& t : data.threads) found |= t.name == "keeper";
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Metrics registry (obs/metrics.h).
// ---------------------------------------------------------------------------

/// Instruments are process-global (registrations persist), so every test
/// zeroes them and uses its own metric names.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::metrics_reset();
    obs::reset();  // clears any partial marker a prior test left behind
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::metrics_reset();
    obs::reset();
  }

  const obs::MetricSample* sample(const obs::MetricsSnapshot& snap,
                                  std::string_view name) {
    for (const obs::MetricSample& s : snap.samples)
      if (s.name == name) return &s;
    return nullptr;
  }
};

TEST_F(MetricsTest, HistogramBucketBoundariesAreExact) {
  using H = obs::Histogram;
  // Bucket 0: everything <= 1 (and non-finite garbage).
  EXPECT_EQ(H::bucket_index(0.0), 0u);
  EXPECT_EQ(H::bucket_index(-3.0), 0u);
  EXPECT_EQ(H::bucket_index(1.0), 0u);
  // 2^i lands in bucket i; one ulp past it spills into bucket i + 1.
  for (size_t i = 1; i <= 40; ++i) {
    double p = static_cast<double>(u64{1} << i);
    EXPECT_EQ(H::bucket_index(p), i) << "2^" << i;
    EXPECT_EQ(H::bucket_index(p + 1.0), i + 1) << "2^" << i << " + 1";
  }
  EXPECT_EQ(H::bucket_index(1.5), 1u);
  EXPECT_EQ(H::bucket_index(3.0), 2u);
  // The overflow bucket absorbs everything past the covered range.
  EXPECT_EQ(H::bucket_index(1e30), obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket_upper(3), 8.0);
}

TEST_F(MetricsTest, HistogramObservationsLandInTheirBuckets) {
  obs::Histogram& h = obs::metric_histogram("test.hist_land");
  h.observe(1.0);    // bucket 0
  h.observe(2.0);    // bucket 1
  h.observe(100.0);  // (64, 128] -> bucket 7
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless) {
  obs::Counter& c = obs::metric_counter("test.concurrent_counter");
  obs::Histogram& h = obs::metric_histogram("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(4.0);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket(2), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0 * kThreads * kPerThread);
}

TEST_F(MetricsTest, DisabledUpdatesAccumulateNothing) {
  obs::Counter& c = obs::metric_counter("test.disabled_counter");
  obs::Gauge& g = obs::metric_gauge("test.disabled_gauge");
  obs::Histogram& h = obs::metric_histogram("test.disabled_hist");
  obs::set_metrics_enabled(false);
  c.inc(5);
  g.set(3.0);
  g.add(2.0);
  h.observe(7.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(MetricsTest, KindMismatchThrows) {
  obs::metric_counter("test.kind_clash");
  EXPECT_THROW(obs::metric_gauge("test.kind_clash"), InternalError);
  // Same name under different labels is a distinct instrument — no clash.
  obs::metric_gauge("test.kind_clash", {{"labeled", "yes"}});
}

TEST_F(MetricsTest, SnapshotExportsJsonAndPrometheus) {
  obs::metric_counter("test.export_counter").inc(3);
  obs::metric_gauge("test.export_gauge", {{"workload", "fmm"}}).set(1.5);
  obs::Histogram& h = obs::metric_histogram("test.export_hist");
  h.observe(2.0);
  h.observe(5.0);

  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_FALSE(snap.partial());
  const obs::MetricSample* c = sample(snap, "test.export_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 3.0);

  std::string doc = obs::metrics_to_json(snap);
  EXPECT_TRUE(json::validate(doc)) << doc;
  EXPECT_NE(doc.find("\"metrics_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export_hist\""), std::string::npos);

  std::string prom = obs::metrics_to_prometheus(snap);
  EXPECT_NE(prom.find("fsopt_test_export_counter_total 3"),
            std::string::npos);
  EXPECT_NE(prom.find("fsopt_test_export_gauge{workload=\"fmm\"} 1.5"),
            std::string::npos);
  // Cumulative buckets: both observations are <= 8, one is <= 2.
  EXPECT_NE(prom.find("fsopt_test_export_hist_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("fsopt_test_export_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("fsopt_test_export_hist_count 2"), std::string::npos);
  EXPECT_NE(prom.find("fsopt_partial 0"), std::string::npos);
}

TEST_F(MetricsTest, PartialMarkerFlowsIntoBothExpositions) {
  obs::mark_partial("unit-test abort");
  obs::mark_partial("second reason loses");  // first reason sticks
  EXPECT_EQ(obs::partial_reason(), "unit-test abort");

  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_TRUE(snap.partial());
  EXPECT_EQ(snap.partial_reason, "unit-test abort");
  EXPECT_NE(obs::metrics_to_json(snap).find("\"partial\": true"),
            std::string::npos);
  EXPECT_NE(obs::metrics_to_prometheus(snap).find("fsopt_partial 1"),
            std::string::npos);

  obs::reset();  // reset clears the marker with the rest of the obs state
  EXPECT_EQ(obs::partial_reason(), "");
  EXPECT_FALSE(obs::metrics_snapshot().partial());
}

TEST_F(MetricsTest, ThreadPoolRegistersQueueDepthAndJobMetrics) {
  {
    ThreadPool pool(2);
    for (int i = 0; i < 5; ++i) pool.submit([] {});
    pool.wait();
  }
  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::MetricSample* jobs = sample(snap, "pool.jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_DOUBLE_EQ(jobs->value, 5.0);
  const obs::MetricSample* depth = sample(snap, "pool.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 0.0);  // drained at pool shutdown
}

TEST_F(MetricsTest, StatsBitIdenticalWithMetricsOnAndOff) {
  // Same guarantee as the tracing variant above: metric accumulation
  // reads outcomes, never writes simulator state.
  obs::set_enabled(false);
  obs::set_metrics_enabled(false);
  Compiled off_c = compile_source(kProgram, CompileOptions{});
  TraceStudyResult off = run_trace_study(off_c, {16, 128}, 32 * 1024,
                                         nullptr, /*threads=*/2,
                                         /*shards=*/2);

  obs::set_metrics_enabled(true);
  Compiled on_c = compile_source(kProgram, CompileOptions{});
  TraceStudyResult on = run_trace_study(on_c, {16, 128}, 32 * 1024, nullptr,
                                        /*threads=*/2, /*shards=*/2);

  EXPECT_EQ(compile_fingerprint(off_c), compile_fingerprint(on_c));
  EXPECT_EQ(off.refs, on.refs);
  for (const auto& [block, stats] : off.by_block)
    EXPECT_EQ(stats, on.by_block.at(block)) << "block " << block;
}

}  // namespace
}  // namespace fsopt
