#include "sim/classify.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

TEST(Classifier, FirstTouchIsCold) {
  MissClassifier c(2, 64, 4096);
  EXPECT_EQ(c.classify_miss(0, 0, 4), MissKind::kCold);
}

TEST(Classifier, RemissWithoutRemoteWriteIsReplacement) {
  MissClassifier c(2, 64, 4096);
  c.note_access(0, 0, 4, false);
  EXPECT_EQ(c.classify_miss(0, 0, 4), MissKind::kReplacement);
}

TEST(Classifier, SelfWriteDoesNotMakeSharing) {
  MissClassifier c(2, 64, 4096);
  c.note_access(0, 0, 4, true);
  EXPECT_EQ(c.classify_miss(0, 0, 4), MissKind::kReplacement);
}

TEST(Classifier, RemoteWriteToReferencedWordIsTrue) {
  MissClassifier c(2, 64, 4096);
  c.note_access(0, 0, 4, false);
  c.note_access(1, 0, 4, true);
  EXPECT_EQ(c.classify_miss(0, 0, 4), MissKind::kTrueSharing);
}

TEST(Classifier, RemoteWriteToOtherWordIsFalse) {
  MissClassifier c(2, 64, 4096);
  c.note_access(0, 0, 4, false);
  c.note_access(1, 16, 4, true);
  EXPECT_EQ(c.classify_miss(0, 0, 4), MissKind::kFalseSharing);
}

TEST(Classifier, SnapshotAdvancesWithEveryAccess) {
  MissClassifier c(2, 64, 4096);
  c.note_access(0, 0, 4, false);
  c.note_access(1, 16, 4, true);  // remote write
  c.note_access(0, 0, 4, false);  // P0 touches block again (refreshes)
  // No remote writes since the refresh: replacement, not false sharing.
  EXPECT_EQ(c.classify_miss(0, 0, 4), MissKind::kReplacement);
}

TEST(Classifier, EightByteReferenceChecksBothWords) {
  MissClassifier c(2, 64, 4096);
  c.note_access(0, 0, 8, false);
  c.note_access(1, 4, 4, true);  // writes the second word of the pair
  EXPECT_EQ(c.classify_miss(0, 0, 8), MissKind::kTrueSharing);
}

TEST(Classifier, BlockBoundariesRespected) {
  MissClassifier c(2, 64, 4096);
  c.note_access(0, 0, 4, false);
  c.note_access(1, 64, 4, true);  // next block
  // P0's block saw no remote write: replacement.
  EXPECT_EQ(c.classify_miss(0, 0, 4), MissKind::kReplacement);
}

TEST(Classifier, ManyProcessesInterleaved) {
  MissClassifier c(8, 64, 4096);
  for (int p = 0; p < 8; ++p) c.note_access(p, 0, 4, false);
  c.note_access(3, 32, 4, true);
  for (int p = 0; p < 8; ++p) {
    if (p == 3) continue;
    EXPECT_EQ(c.classify_miss(p, 0, 4), MissKind::kFalseSharing) << p;
    EXPECT_EQ(c.classify_miss(p, 32, 4), MissKind::kTrueSharing) << p;
  }
  EXPECT_EQ(c.classify_miss(3, 0, 4), MissKind::kReplacement);
}

TEST(Classifier, OutOfRangeAccessThrows) {
  MissClassifier c(2, 64, 4096);
  EXPECT_THROW(c.note_access(0, 4096, 4, false), InternalError);
  EXPECT_THROW(c.classify_miss(0, -4, 4), InternalError);
}

TEST(Classifier, CrossBlockRangeThrows) {
  // Callers must split block-spanning references before classifying;
  // a range that straddles two blocks in one call is a bug.
  MissClassifier c(2, 64, 4096);
  EXPECT_THROW(c.note_access(0, 60, 8, false), InternalError);
  EXPECT_THROW(c.classify_miss(0, 60, 8), InternalError);
}

TEST(Classifier, ShardOnlyOwnsItsBlocks) {
  // Shard 1 of 2 owns the odd blocks; touching an even block is a
  // routing bug and must throw rather than corrupt another shard's
  // counters.
  MissClassifier c(2, 64, 4096, ShardSpec{1, 2});
  c.note_access(0, 64, 4, false);  // block 1: owned
  EXPECT_EQ(c.classify_miss(0, 64, 4), MissKind::kReplacement);
  EXPECT_THROW(c.note_access(0, 0, 4, false), InternalError);
  EXPECT_THROW(c.classify_miss(0, 128, 4), InternalError);
}

}  // namespace
}  // namespace fsopt
