#include "sim/ksr.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

KsrParams params(i64 nprocs = 4) {
  KsrParams p;
  p.nprocs = nprocs;
  p.total_bytes = 1 << 16;
  return p;
}

TEST(Calendar, NoContentionNoDelay) {
  BandwidthCalendar cal(256);
  EXPECT_EQ(cal.acquire(1000, 24), 0);
  EXPECT_EQ(cal.acquire(5000, 24), 0);
}

TEST(Calendar, SaturatedWindowPushesToNext) {
  BandwidthCalendar cal(100);
  // Fill window [0,100) with 4 x 25-cycle transactions.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(cal.acquire(0, 25), 0);
  // Fifth lands at the start of the next window.
  EXPECT_EQ(cal.acquire(0, 25), 100);
  EXPECT_EQ(cal.booked_cycles(), 125);
}

TEST(Calendar, PastRequestsUsePastWindows) {
  BandwidthCalendar cal(100);
  // A request far in the future books window 100.
  EXPECT_EQ(cal.acquire(10000, 50), 0);
  // An earlier request is NOT delayed by the future booking.
  EXPECT_EQ(cal.acquire(0, 50), 0);
}

TEST(Calendar, OversizedOccupancySpills) {
  BandwidthCalendar cal(100);
  cal.acquire(0, 90);
  i64 d = cal.acquire(0, 90);  // does not fit in window 0
  EXPECT_EQ(d, 100);
}

TEST(Ksr, HitCostsHitCycles) {
  KsrMemorySystem m(params());
  m.access(0, 0, 4, false, 0);  // cold miss
  EXPECT_EQ(m.access(0, 0, 4, false, 1000), m.params().hit_cycles);
  EXPECT_EQ(m.stats().hits, 1u);
}

TEST(Ksr, ColdMissCostsLocalLatency) {
  KsrMemorySystem m(params());
  i64 lat = m.access(0, 0, 4, false, 0);
  EXPECT_GE(lat, m.params().local_miss_cycles);
  EXPECT_EQ(m.stats().misses, 1u);
}

TEST(Ksr, CrossRingMissCostsRemoteLatency) {
  // 40 processors = two rings; force a transfer from ring 1 to ring 0.
  KsrParams p = params(40);
  KsrMemorySystem m(p);
  // Block 35's ALLCACHE home is processor 35 (ring 1): its own cold miss
  // is ring-local, the later fetch by processor 0 crosses rings.
  i64 addr = 35 * p.block_size;
  m.access(35, addr, 4, true, 0);
  EXPECT_EQ(m.stats().remote_misses, 0u);
  i64 lat = m.access(0, addr, 4, false, 10000);
  EXPECT_GE(lat, p.remote_miss_cycles);
  EXPECT_EQ(m.stats().remote_misses, 1u);
}

TEST(Ksr, SameRingTransferIsLocal) {
  KsrParams p = params(40);
  KsrMemorySystem m(p);
  m.access(3, 0, 4, true, 0);
  i64 lat = m.access(5, 0, 4, false, 10000);
  EXPECT_GE(lat, p.local_miss_cycles);
  EXPECT_LT(lat, p.remote_miss_cycles);
}

TEST(Ksr, UpgradePaysInvalidationCost) {
  KsrMemorySystem m(params());
  m.access(0, 0, 4, false, 0);
  m.access(1, 0, 4, false, 100);
  i64 lat = m.access(0, 0, 4, true, 2000);  // write to Shared line
  EXPECT_GE(lat, m.params().upgrade_cycles);
  EXPECT_EQ(m.stats().upgrades, 1u);
}

TEST(Ksr, ContentionGrowsWithMissRate) {
  // Many processors missing at the same instant queue on the ring.
  KsrParams p = params(16);
  KsrMemorySystem m(p);
  i64 total = 0;
  for (int proc = 0; proc < 16; ++proc)
    total += m.access(proc, proc * 4096, 4, false, 0);
  EXPECT_GT(m.stats().queue_cycles, 0);
  EXPECT_GT(total, 16 * p.local_miss_cycles);
}

TEST(Ksr, StallAccountingConsistent) {
  KsrMemorySystem m(params());
  m.access(0, 0, 4, false, 0);
  m.access(0, 0, 4, false, 500);
  const KsrStats& s = m.stats();
  EXPECT_EQ(s.refs, 2u);
  EXPECT_EQ(s.hits + s.misses, 2u);
  EXPECT_GE(s.stall_cycles, s.queue_cycles);
}

TEST(Ksr, ClassifiedStatsMatchMissKinds) {
  KsrMemorySystem m(params());
  m.access(0, 0, 4, false, 0);
  m.access(1, 32, 4, true, 10);
  m.access(0, 0, 4, false, 400);  // false sharing
  EXPECT_EQ(m.stats().classified.false_sharing, 1u);
  EXPECT_EQ(m.stats().classified.cold, 2u);
}

}  // namespace
}  // namespace fsopt
