// The source-to-source restructurer must emit *runnable* PPL whose
// ordinary declaration-order layout realizes the transformations: same
// program results, (almost) no false sharing left.
#include "transform/source_rewrite.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "workloads/workloads.h"

namespace fsopt {
namespace {

const char* kSource =
    "param NPROCS = 4;\n"
    "struct S { int v[NPROCS]; int w; };\n"
    "struct S g[16];\n"
    "real a[32];\n"
    "real b[8][NPROCS];\n"
    "int busy1; int busy2;\n"
    "lock_t l[4]; int q;\n"
    "void main(int pid) { int i; int r;\n"
    "  for (i = 0; i < 16; i = i + 1) { g[i].v[pid] = 0; }\n"
    "  if (pid == 0) { for (i = 0; i < 16; i = i + 1) { g[i].w = i; } }\n"
    "  barrier();\n"
    "  for (r = 0; r < 20; r = r + 1) {\n"
    "    for (i = pid; i < 32; i = i + nprocs) { a[i] = a[i] + 1.0; }\n"
    "    for (i = 0; i < 8; i = i + 1) {\n"
    "      b[i][pid] = b[i][pid] + 1.0;\n"
    "      g[(q + i) % 16].v[pid] = g[(q + i) % 16].v[pid] + 1;\n"
    "    }\n"
    "    lock(l[pid % 4]);\n"
    "    busy1 = busy1 + 1;\n"
    "    busy2 = busy2 - 1;\n"
    "    unlock(l[pid % 4]);\n"
    "  }\n"
    "}\n";

struct Rewritten {
  Compiled original;     // unoptimized
  Compiled plan;         // LayoutPlan-transformed
  Compiled source;       // source-to-source output, compiled plainly
  SourceRewriteResult rw;
};

Rewritten build() {
  Rewritten out;
  CompileOptions plain;
  plain.overrides["NPROCS"] = 4;
  CompileOptions opt = plain;
  opt.optimize = true;
  out.original = compile_source(kSource, plain);
  out.plan = compile_source(kSource, opt);
  out.rw = rewrite_to_source(*out.plan.prog, out.plan.transforms, 128);
  out.source = compile_source(out.rw.source, plain);
  return out;
}

TEST(SourceRewrite, OutputCompilesAndRuns) {
  Rewritten r = build();
  EXPECT_TRUE(r.rw.skipped.empty())
      << "unexpected skips: " << r.rw.skipped.front();
  auto m = run_program(r.source);
  EXPECT_GT(m->refs(), 0u);
}

TEST(SourceRewrite, ComputesSameResults) {
  Rewritten r = build();
  auto m0 = run_program(r.original);
  auto m1 = run_program(r.source);
  // a -> a__gt (interleaved), b -> b__gt (transposed), g.v -> g__v.
  for (i64 i = 0; i < 32; ++i)
    EXPECT_DOUBLE_EQ(m0->load_real(r.original.address_of("a", "", {i})),
                     m1->load_real(r.source.address_of("a__gt",
                                                       "", {i % 4, i / 4})));
  for (i64 k = 0; k < 8; ++k)
    for (i64 p = 0; p < 4; ++p)
      EXPECT_DOUBLE_EQ(m0->load_real(r.original.address_of("b", "", {k, p})),
                       m1->load_real(r.source.address_of("b__gt", "",
                                                         {p, k})));
  for (i64 i = 0; i < 16; ++i) {
    for (i64 p = 0; p < 4; ++p)
      EXPECT_EQ(m0->load_int(r.original.address_of("g", "v", {i, p})),
                m1->load_int(r.source.address_of("g__v", "", {p, i})));
    EXPECT_EQ(m0->load_int(r.original.address_of("g", "w", {i})),
              m1->load_int(r.source.address_of("g", "w", {i})));
  }
  EXPECT_EQ(m0->load_int(r.original.address_of("busy1", "", {})),
            m1->load_int(r.source.address_of("busy1__pad", "", {0})));
}

TEST(SourceRewrite, EliminatesFalseSharingLikeTheLayoutPlan) {
  Rewritten r = build();
  auto s0 = run_trace_study(r.original, {128});
  auto s1 = run_trace_study(r.plan, {128});
  auto s2 = run_trace_study(r.source, {128});
  // Both transformed forms remove the bulk of the original false sharing.
  EXPECT_LT(s1.at(128).false_sharing, s0.at(128).false_sharing / 4);
  EXPECT_LT(s2.at(128).false_sharing, s0.at(128).false_sharing / 4);
}

TEST(SourceRewrite, PaddedObjectsAreBlockAligned) {
  Rewritten r = build();
  EXPECT_EQ(r.source.address_of("busy1__pad", "", {0}) % 128, 0);
  EXPECT_EQ(r.source.address_of("l__pad", "", {0, 0}) % 128, 0);
  EXPECT_NE(r.source.address_of("l__pad", "", {1, 0}) / 128,
            r.source.address_of("l__pad", "", {2, 0}) / 128);
}

TEST(SourceRewrite, ExtractedFieldLeavesStruct) {
  Rewritten r = build();
  const StructType* st = r.source.prog->find_struct("S");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->field_index("v"), -1);
  EXPECT_GE(st->field_index("w"), 0);
}

TEST(SourceRewrite, WorksOnTheWorkloads) {
  // The flagship G&T workload round-trips through source rewriting.
  for (const char* name : {"fmm", "water"}) {
    const auto& w = fsopt::workloads::get(name);
    CompileOptions opt;
    opt.overrides = w.sim_overrides;
    opt.overrides["NPROCS"] = 4;
    opt.optimize = true;
    Compiled c = compile_source(w.natural, opt);
    SourceRewriteResult rw = rewrite_to_source(*c.prog, c.transforms, 128);
    CompileOptions plain;
    plain.overrides["NPROCS"] = 4;
    Compiled s = compile_source(rw.source, plain);
    auto m = run_program(s);
    EXPECT_GT(m->refs(), 0u) << name;
  }
}

}  // namespace
}  // namespace fsopt
