#include "analysis/pdv.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/sema.h"

namespace fsopt {
namespace {

struct Analyzed {
  std::unique_ptr<Program> prog;
  std::unique_ptr<CallGraph> cg;
  PdvResult pdvs;
};

Analyzed analyze(std::string_view src) {
  Analyzed out;
  DiagnosticEngine diags;
  out.prog = parse_and_check(src, diags, {});
  out.cg = std::make_unique<CallGraph>(*out.prog);
  out.pdvs = analyze_pdvs(*out.prog, *out.cg);
  return out;
}

const LocalSym* local(const Program& p, const char* fn, const char* name) {
  return p.find_func(fn)->find_local(name);
}

TEST(Pdv, PidItselfIsPdv) {
  auto a = analyze("param NPROCS = 4; void main(int pid) { }");
  ASSERT_NE(a.pdvs.pid, nullptr);
  EXPECT_TRUE(a.pdvs.is_pdv(a.pdvs.pid));
}

TEST(Pdv, LocalDerivedFromPidIsPdv) {
  auto a = analyze(
      "param NPROCS = 4; void main(int pid) { int me; me = pid * 2 + 1; }");
  EXPECT_TRUE(a.pdvs.is_pdv(local(*a.prog, "main", "me")));
}

TEST(Pdv, ReassignedLocalIsNotPdv) {
  auto a = analyze(
      "param NPROCS = 4; void main(int pid) {"
      "  int me; me = pid; me = me + 1; }");
  EXPECT_FALSE(a.pdvs.is_pdv(local(*a.prog, "main", "me")));
}

TEST(Pdv, ConstantLocalIsNotPdv) {
  // Same value in every process: not process differentiating.
  auto a = analyze(
      "param NPROCS = 4; void main(int pid) { int k; k = 7; }");
  EXPECT_FALSE(a.pdvs.is_pdv(local(*a.prog, "main", "k")));
}

TEST(Pdv, TransitivePdvChain) {
  auto a = analyze(
      "param NPROCS = 4; void main(int pid) {"
      "  int a; int b; a = pid + 1; b = a * 3; }");
  EXPECT_TRUE(a.pdvs.is_pdv(local(*a.prog, "main", "b")));
}

TEST(Pdv, FormalReceivingPidIsPdv) {
  auto a = analyze(
      "param NPROCS = 4; int x[8];"
      "void work(int me) { x[me] = 1; }"
      "void main(int pid) { work(pid); work(pid + 4); }");
  EXPECT_TRUE(a.pdvs.is_pdv(local(*a.prog, "work", "me")));
}

TEST(Pdv, FormalWithMixedCallSitesIsNotPdv) {
  auto a = analyze(
      "param NPROCS = 4; int x[8];"
      "void work(int me) { x[me] = 1; }"
      "void main(int pid) { work(pid); work(0); }");
  EXPECT_FALSE(a.pdvs.is_pdv(local(*a.prog, "work", "me")));
}

TEST(Pdv, FormalFromGlobalLoadIsNotPdv) {
  auto a = analyze(
      "param NPROCS = 4; int x[8]; int q;"
      "void work(int me) { x[me] = 1; }"
      "void main(int pid) { work(q); }");
  EXPECT_FALSE(a.pdvs.is_pdv(local(*a.prog, "work", "me")));
}

TEST(Pdv, PdvThroughTwoCallLevels) {
  auto a = analyze(
      "param NPROCS = 4; int x[16];"
      "void inner(int who) { x[who] = 1; }"
      "void outer(int me) { inner(me * 2); }"
      "void main(int pid) { outer(pid); }");
  EXPECT_TRUE(a.pdvs.is_pdv(local(*a.prog, "inner", "who")));
}

TEST(Pdv, NoMainMeansNoPdvs) {
  // Directly exercise the analysis on a program without main (bypassing
  // sema, which would reject it).
  DiagnosticEngine diags;
  auto prog = Parser::parse("int f(int x) { return x; }", diags, {});
  CallGraph cg(*prog);
  PdvResult r = analyze_pdvs(*prog, cg);
  EXPECT_EQ(r.pid, nullptr);
  EXPECT_TRUE(r.pdvs.empty());
}

}  // namespace
}  // namespace fsopt
