#include "transform/rewrite.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"

namespace fsopt {
namespace {

Compiled build(std::string_view src) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  opt.optimize = true;
  return compile_source(src, opt);
}

const char* kSource =
    "param NPROCS = 4;\n"
    "struct S { int v[NPROCS]; int w; };\n"
    "struct S g[16];\n"
    "real a[32];\n"
    "lock_t l; int q;\n"
    "void main(int pid) { int i; int r;\n"
    "  for (r = 0; r < 20; r = r + 1) {\n"
    "    for (i = pid; i < 32; i = i + nprocs) { a[i] = a[i] + 1.0; }\n"
    "    for (i = 0; i < 16; i = i + 1) {\n"
    "      g[(q + i) % 16].v[pid] = g[(q + i) % 16].v[pid] + 1;\n"
    "    }\n"
    "    lock(l); q = q + 1; unlock(l);\n"
    "  }\n"
    "}\n";

TEST(Rewrite, EmitsGroupRecordForTransposedArrays) {
  Compiled c = build(kSource);
  std::string out = rewrite_program(*c.prog, c.transforms, 128);
  EXPECT_NE(out.find("_fsopt_group"), std::string::npos) << out;
  EXPECT_NE(out.find("one padded region per process"), std::string::npos);
}

TEST(Rewrite, EmitsPointerFieldForIndirection) {
  Compiled c = build(kSource);
  std::string out = rewrite_program(*c.prog, c.transforms, 128);
  EXPECT_NE(out.find("*v"), std::string::npos) << out;
  EXPECT_NE(out.find("per-process heap"), std::string::npos);
}

TEST(Rewrite, AnnotatesPaddedLocks) {
  Compiled c = build(kSource);
  std::string out = rewrite_program(*c.prog, c.transforms, 128);
  EXPECT_NE(out.find("lock: padded to one block"), std::string::npos) << out;
}

TEST(Rewrite, KeepsFunctionBodies) {
  Compiled c = build(kSource);
  std::string out = rewrite_program(*c.prog, c.transforms, 128);
  EXPECT_NE(out.find("void main(int pid)"), std::string::npos);
  EXPECT_NE(out.find("lock(l);"), std::string::npos);
}

TEST(Rewrite, UntransformedProgramPrintsPlainDeclarations) {
  CompileOptions opt;
  opt.overrides["NPROCS"] = 4;
  Compiled c = compile_source(kSource, opt);  // no optimize
  std::string out = rewrite_program(*c.prog, c.transforms, 128);
  EXPECT_EQ(out.find("_fsopt_group"), std::string::npos);
  EXPECT_NE(out.find("real a[32];"), std::string::npos);
}

}  // namespace
}  // namespace fsopt
