// Property tests for the compressed columnar trace codec
// (trace/encode.h): decode(encode(t)) == t over seeded pseudo-random and
// adversarial streams, chunk-boundary-independent decoding (any chunk,
// any order), streaming-vs-bulk encoder equivalence, and encoded-input
// partitioning (partition_trace over EncodedTrace == over TraceBuffer).
//
// The fuzz loops run a fixed seed matrix so CI is reproducible; set
// FSOPT_FUZZ_ITERS to scale the number of random cases per pattern.
#include "trace/encode.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>

#include "trace/shard.h"

namespace fsopt {
namespace {

// --- deterministic pseudo-random stream generators -------------------

/// xorshift64* — tiny, seedable, no global state.
class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  u64 next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }
  /// Uniform in [0, n).
  u64 below(u64 n) { return next() % n; }

 private:
  u64 state_;
};

MemRef make_ref(i64 addr, u8 size, u8 proc, bool write) {
  return MemRef{addr, size, proc,
                write ? RefType::kWrite : RefType::kRead};
}

/// Fully random refs: addresses anywhere in a 1 MiB space, any of the
/// supported processors/sizes/types.  Worst case for the RLE meta column
/// and a generic case for the delta column.
std::vector<MemRef> gen_uniform(Rng& rng, size_t n) {
  std::vector<MemRef> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i)
    out.push_back(make_ref(static_cast<i64>(rng.below(1 << 20)),
                           rng.below(2) ? 8 : 4,
                           static_cast<u8>(rng.below(TraceEncoder::kMaxProcs)),
                           rng.below(2) != 0));
  return out;
}

/// Each processor walks its own monotone stride — the friendly case the
/// per-processor delta encoding is built for.
std::vector<MemRef> gen_monotone(Rng& rng, size_t n) {
  i64 cursor[8] = {};
  std::vector<MemRef> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    u8 proc = static_cast<u8>(rng.below(8));
    cursor[proc] += static_cast<i64>(rng.below(64)) * 4;
    out.push_back(make_ref(cursor[proc], 4, proc, rng.below(4) == 0));
  }
  return out;
}

/// Strictly alternating processor ids with disjoint address bases:
/// every meta byte differs from its neighbour (RLE runs of length 1) and
/// the interleave stresses the per-processor delta state.
std::vector<MemRef> gen_alternating(Rng& rng, size_t n) {
  std::vector<MemRef> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    u8 proc = static_cast<u8>(i % 2);
    i64 base = proc == 0 ? 0 : (1ll << 40);
    out.push_back(make_ref(base + static_cast<i64>(rng.below(4096)) * 8, 8,
                           proc, proc == 0));
  }
  return out;
}

/// Addresses ping-ponging between 0 and near-INT64_MAX: maximal zigzag
/// deltas, 10-byte varints, sign handling.
std::vector<MemRef> gen_max_delta(Rng& rng, size_t n) {
  constexpr i64 kFar = std::numeric_limits<i64>::max() - 8;
  std::vector<MemRef> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i)
    out.push_back(make_ref(i % 2 ? kFar - static_cast<i64>(rng.below(16))
                                 : static_cast<i64>(rng.below(16)),
                           4, static_cast<u8>(rng.below(4)),
                           rng.below(2) != 0));
  return out;
}

/// Long same-meta runs (one processor hammering one word) — the best
/// case for RLE; also exercises varint-encoded run lengths > 127.
std::vector<MemRef> gen_runs(Rng& rng, size_t n) {
  std::vector<MemRef> out;
  out.reserve(n);
  while (out.size() < n) {
    u8 proc = static_cast<u8>(rng.below(4));
    bool write = rng.below(2) != 0;
    i64 addr = static_cast<i64>(rng.below(1 << 16)) * 4;
    size_t run = std::min<size_t>(n - out.size(), 1 + rng.below(500));
    for (size_t i = 0; i < run; ++i)
      out.push_back(make_ref(addr, 4, proc, write));
  }
  return out;
}

using Gen = std::vector<MemRef> (*)(Rng&, size_t);

struct Pattern {
  const char* name;
  Gen gen;
};

constexpr Pattern kPatterns[] = {
    {"uniform", gen_uniform},       {"monotone", gen_monotone},
    {"alternating", gen_alternating}, {"max_delta", gen_max_delta},
    {"runs", gen_runs},
};

int fuzz_iters() {
  if (const char* env = std::getenv("FSOPT_FUZZ_ITERS"))
    return std::max(1, std::atoi(env));
  return 8;  // per (pattern, chunk size) cell; CI raises this
}

// --- helpers ---------------------------------------------------------

TraceBuffer to_buffer(const std::vector<MemRef>& refs) {
  TraceBuffer t;
  t.on_batch(refs.data(), refs.size());
  return t;
}

std::vector<MemRef> decode_all(const EncodedTrace& t) {
  VectorSink sink;
  t.replay(sink);
  return sink.refs();
}

/// TracePartition has no operator==; compare the replay-relevant state.
void expect_partitions_equal(const TracePartition& a,
                             const TracePartition& b) {
  ASSERT_EQ(a.refs, b.refs);
  ASSERT_EQ(a.block_size, b.block_size);
  ASSERT_EQ(a.shards, b.shards);
  ASSERT_EQ(a.split_origin, b.split_origin);
  ASSERT_EQ(a.shard.size(), b.shard.size());
  for (size_t k = 0; k < a.shard.size(); ++k) {
    EXPECT_EQ(a.shard[k].refs, b.shard[k].refs) << "shard " << k;
    ASSERT_EQ(a.shard[k].splits.size(), b.shard[k].splits.size())
        << "shard " << k;
    for (size_t i = 0; i < a.shard[k].splits.size(); ++i) {
      const auto& sa = a.shard[k].splits[i];
      const auto& sb = b.shard[k].splits[i];
      EXPECT_EQ(sa.pos, sb.pos);
      EXPECT_EQ(sa.ordinal, sb.ordinal);
      EXPECT_EQ(sa.part, sb.part);
      EXPECT_EQ(sa.sub, sb.sub);
    }
  }
}

// --- directed cases --------------------------------------------------

TEST(TraceCodec, EmptyTrace) {
  EncodedTrace t = encode_trace(TraceBuffer{});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.chunk_count(), 0u);
  EXPECT_EQ(t.bytes_per_ref(), 0.0);
  EXPECT_TRUE(decode_all(t).empty());
}

TEST(TraceCodec, SingleRef) {
  std::vector<MemRef> one = {make_ref(12345, 8, 63, true)};
  EncodedTrace t = encode_trace(to_buffer(one));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.chunk_count(), 1u);
  EXPECT_EQ(decode_all(t), one);
}

TEST(TraceCodec, ChunkCapacityOne) {
  // Every reference its own chunk: the per-chunk address reset means each
  // address is stored as a delta from 0.
  Rng rng(7);
  std::vector<MemRef> refs = gen_uniform(rng, 37);
  EncodedTrace t = encode_trace(to_buffer(refs), /*chunk_refs=*/1);
  EXPECT_EQ(t.chunk_count(), refs.size());
  EXPECT_EQ(decode_all(t), refs);
}

TEST(TraceCodec, RejectsUnsupportedRefs) {
  TraceEncoder enc;
  MemRef bad_proc = make_ref(0, 4, 64, false);  // kMaxProcs == 64
  EXPECT_THROW(enc.on_ref(bad_proc), InternalError);
  TraceEncoder enc2;
  MemRef bad_size = make_ref(0, 2, 0, false);
  EXPECT_THROW(enc2.on_ref(bad_size), InternalError);
}

TEST(TraceCodec, StreamingMatchesBulk) {
  // Feeding the encoder one ref at a time, in odd-sized batches, or via
  // encode_trace must all produce the same stream.
  Rng rng(11);
  std::vector<MemRef> refs = gen_monotone(rng, 5000);

  TraceEncoder one_by_one(/*chunk_refs=*/256);
  for (const MemRef& r : refs) one_by_one.on_ref(r);

  TraceEncoder batched(/*chunk_refs=*/256);
  for (size_t i = 0; i < refs.size();) {
    size_t n = std::min<size_t>(refs.size() - i, 1 + i % 97);
    batched.on_batch(refs.data() + i, n);
    i += n;
  }

  EncodedTrace a = one_by_one.take();
  EncodedTrace b = batched.take();
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  EXPECT_EQ(decode_all(a), refs);
  EXPECT_EQ(decode_all(b), refs);
}

TEST(TraceCodec, EncoderReusableAfterTake) {
  TraceEncoder enc(/*chunk_refs=*/4);
  std::vector<MemRef> first = {make_ref(8, 4, 1, false),
                               make_ref(16, 4, 1, true)};
  enc.on_batch(first.data(), first.size());
  EXPECT_EQ(decode_all(enc.take()), first);
  EXPECT_EQ(enc.size(), 0u);

  std::vector<MemRef> second = {make_ref(99, 8, 2, true)};
  enc.on_batch(second.data(), second.size());
  EXPECT_EQ(decode_all(enc.take()), second);
}

TEST(TraceCodec, CompressesFriendlyStreams) {
  // Strided per-processor walks should encode well below the raw
  // 16 bytes/ref; this pins the "compressed" in compressed traces.
  Rng rng(13);
  std::vector<MemRef> refs = gen_monotone(rng, 1 << 16);
  EncodedTrace t = encode_trace(to_buffer(refs));
  EXPECT_LT(t.bytes_per_ref(), 16.0 / 3.0);  // >= 3x smaller than raw
}

// --- property fuzz ---------------------------------------------------

class TraceCodecFuzz : public ::testing::TestWithParam<Pattern> {};

TEST_P(TraceCodecFuzz, RoundTripsAtEveryChunkSize) {
  const Pattern& pat = GetParam();
  const size_t chunk_sizes[] = {1, 3, 64, 1000, TraceBuffer::kDefaultChunkRefs};
  int iters = fuzz_iters();
  for (int iter = 0; iter < iters; ++iter) {
    // Seed derived from (pattern, iteration) — fixed matrix, no time().
    Rng seed_rng(0xf5ee * (iter + 1) + (&pat - kPatterns) * 7919);
    size_t n = iter == 0 ? 0 : (iter == 1 ? 1 : seed_rng.below(20000));
    Rng rng(seed_rng.next());
    std::vector<MemRef> refs = pat.gen(rng, n);

    for (size_t chunk : chunk_sizes) {
      EncodedTrace t = encode_trace(to_buffer(refs), chunk);
      ASSERT_EQ(t.size(), refs.size())
          << pat.name << " iter=" << iter << " chunk=" << chunk;
      ASSERT_EQ(decode_all(t), refs)
          << pat.name << " iter=" << iter << " chunk=" << chunk;
    }
  }
}

TEST_P(TraceCodecFuzz, ChunksDecodeIndependently) {
  const Pattern& pat = GetParam();
  int iters = fuzz_iters();
  for (int iter = 0; iter < iters; ++iter) {
    Rng rng(0xc0dec * (iter + 1) + (&pat - kPatterns));
    std::vector<MemRef> refs = pat.gen(rng, 1 + rng.below(10000));
    EncodedTrace t = encode_trace(to_buffer(refs), /*chunk_refs=*/512);

    // Decode chunks in reverse order into isolated buffers; stitching
    // them back together must reproduce the stream, proving no decode
    // state leaks across chunk boundaries.
    std::vector<std::vector<MemRef>> pieces(t.chunk_count());
    std::vector<MemRef> scratch;
    for (size_t k = t.chunk_count(); k-- > 0;) {
      t.decode_chunk(k, scratch);
      ASSERT_EQ(scratch.size(), t.chunk_size(k));
      pieces[k] = scratch;
    }
    std::vector<MemRef> stitched;
    for (const auto& p : pieces)
      stitched.insert(stitched.end(), p.begin(), p.end());
    ASSERT_EQ(stitched, refs) << pat.name << " iter=" << iter;

    // Decoding one chunk twice is idempotent (decode is const).
    if (t.chunk_count() > 1) {
      t.decode_chunk(0, scratch);
      std::vector<MemRef> again;
      t.decode_chunk(0, again);
      EXPECT_EQ(scratch, again);
    }
  }
}

TEST_P(TraceCodecFuzz, PartitioningEncodedMatchesRaw) {
  const Pattern& pat = GetParam();
  int iters = std::max(1, fuzz_iters() / 2);
  for (int iter = 0; iter < iters; ++iter) {
    Rng rng(0x5ad * (iter + 1) + (&pat - kPatterns) * 31);
    std::vector<MemRef> refs = pat.gen(rng, 1 + rng.below(4000));
    TraceBuffer raw = to_buffer(refs);
    EncodedTrace enc = encode_trace(raw, /*chunk_refs=*/256);
    for (i64 block : {4, 64}) {
      for (int shards : {1, 4}) {
        expect_partitions_equal(partition_trace(enc, block, shards),
                                partition_trace(raw, block, shards));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, TraceCodecFuzz,
                         ::testing::ValuesIn(kPatterns),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace fsopt
