#include "analysis/report.h"

#include <gtest/gtest.h>

#include "lang/sema.h"

namespace fsopt {
namespace {

struct Ctx {
  std::unique_ptr<Program> prog;
  ProgramSummary summary;
  SharingReport report;
};

Ctx classify(std::string_view src, i64 nprocs = 8) {
  Ctx c;
  DiagnosticEngine diags;
  c.prog = parse_and_check(src, diags, {{"NPROCS", nprocs}});
  c.summary = analyze_program(*c.prog);
  c.report = classify_sharing(c.summary);
  return c;
}

const DatumClass& datum(const Ctx& c, const char* name) {
  for (const auto& d : c.report.data)
    if (d.name == name) return d;
  ADD_FAILURE() << "no datum " << name;
  static DatumClass dummy;
  return dummy;
}

TEST(Report, InterleavedWritesArePerProcess) {
  Ctx c = classify(
      "param NPROCS = 8; real a[64];"
      "void main(int pid) { int i;"
      "  for (i = pid; i < 64; i = i + nprocs) { a[i] = 0.0; } }");
  const DatumClass& d = datum(c, "a");
  EXPECT_EQ(d.writes, Pattern::kPerProcess);
  EXPECT_EQ(d.pid_dim, 0);
  EXPECT_EQ(d.writer_count, 8);
}

TEST(Report, TransposedColumnIsPerProcessOnDim1) {
  Ctx c = classify(
      "param NPROCS = 8; real a[32][NPROCS];"
      "void main(int pid) { int i;"
      "  for (i = 0; i < 32; i = i + 1) { a[i][pid] = 0.0; } }");
  const DatumClass& d = datum(c, "a");
  EXPECT_EQ(d.writes, Pattern::kPerProcess);
  EXPECT_EQ(d.pid_dim, 1);
}

TEST(Report, DynamicIndexWritesAreShared) {
  Ctx c = classify(
      "param NPROCS = 8; real a[64]; int q;"
      "void main(int pid) { a[q] = 0.0; a[q + pid] = 1.0; }");
  const DatumClass& d = datum(c, "a");
  EXPECT_EQ(d.writes, Pattern::kSharedNonLocal);
}

TEST(Report, UnitStrideSweepIsSharedLocal) {
  Ctx c = classify(
      "param NPROCS = 8; real a[64]; int q;"
      "void main(int pid) { int i; int s0; s0 = q;"
      "  for (i = s0; i < s0 + 16; i = i + 1) { a[i] = 0.0; } }");
  const DatumClass& d = datum(c, "a");
  EXPECT_EQ(d.writes, Pattern::kSharedLocal);
}

TEST(Report, SingleWriterIsPerProcess) {
  Ctx c = classify(
      "param NPROCS = 8; int x;"
      "void main(int pid) { if (pid == 0) { x = 1; } }");
  const DatumClass& d = datum(c, "x");
  EXPECT_EQ(d.writes, Pattern::kPerProcess);
  EXPECT_EQ(d.writer_count, 1);
}

TEST(Report, ScalarWrittenByAllIsShared) {
  Ctx c = classify(
      "param NPROCS = 8; int x;"
      "void main(int pid) { x = pid; }");
  const DatumClass& d = datum(c, "x");
  EXPECT_EQ(d.writes, Pattern::kSharedNonLocal);
  EXPECT_EQ(d.writer_count, 8);
}

TEST(Report, EmbeddedPerProcessFieldDim) {
  Ctx c = classify(
      "param NPROCS = 8; struct S { int v[NPROCS]; int w; };"
      "struct S g[16]; int q;"
      "void main(int pid) { g[q].v[pid] = 1; }");
  const DatumClass& d = datum(c, "g.v");
  EXPECT_EQ(d.writes, Pattern::kPerProcess);
  EXPECT_EQ(d.pid_dim, 1);
  EXPECT_TRUE(d.pid_dim_is_field_dim);
}

TEST(Report, LocksReportedWithWeight) {
  Ctx c = classify(
      "param NPROCS = 8; lock_t l; int x;"
      "void main(int pid) { lock(l); x = x + 1; unlock(l); }");
  const DatumClass& d = datum(c, "l");
  EXPECT_TRUE(d.is_lock);
  EXPECT_GT(d.lock_weight, 0.0);
}

TEST(Report, DominantPhaseHidesInitWrites) {
  // Writes only at init; the hot phase only reads: dominant-phase
  // classification must report writes = none.
  Ctx c = classify(
      "param NPROCS = 8; real a[64]; real acc[NPROCS];"
      "void main(int pid) { int i; int r;"
      "  for (i = pid; i < 64; i = i + nprocs) { a[i] = itor(i); }"
      "  barrier();"
      "  for (r = 0; r < 50; r = r + 1) {"
      "    for (i = 0; i < 64; i = i + 1) {"
      "      acc[pid] = acc[pid] + a[i];"
      "    }"
      "  }"
      "}");
  const DatumClass& d = datum(c, "a");
  EXPECT_EQ(d.dominant_phase, 1);
  EXPECT_EQ(d.writes, Pattern::kNone);
  EXPECT_EQ(d.reads, Pattern::kSharedLocal);
}

TEST(Report, ReaderWriterCounts) {
  Ctx c = classify(
      "param NPROCS = 8; int a[8]; int b;"
      "void main(int pid) {"
      "  if (pid < 2) { a[pid] = 1; }"
      "  if (pid >= 4) { b = a[0]; } }");
  const DatumClass& d = datum(c, "a");
  EXPECT_EQ(d.writer_count, 2);
  EXPECT_EQ(d.reader_count, 4);
}

TEST(Report, RenderMentionsEveryDatum) {
  Ctx c = classify(
      "param NPROCS = 8; int a[8]; lock_t l;"
      "void main(int pid) { lock(l); a[pid] = 1; unlock(l); }");
  std::string s = c.report.render();
  EXPECT_NE(s.find("a:"), std::string::npos);
  EXPECT_NE(s.find("l:"), std::string::npos);
}

}  // namespace
}  // namespace fsopt
