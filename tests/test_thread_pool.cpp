// Tests for the experiment harness's fixed-size thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>

#include "support/thread_pool.h"

namespace fsopt {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitRethrowsFirstJobError) {
  ThreadPool pool(2);
  pool.submit([] { throw InternalError("job failed"); });
  EXPECT_THROW(pool.wait(), InternalError);
  // The pool stays usable after a failed job.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 5}) {
    std::vector<std::atomic<int>> hits(57);
    parallel_for_each(threads, hits.size(),
                      [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(ParallelForEach, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for_each(16, hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForEach, ZeroItemsIsANoop) {
  parallel_for_each(4, 0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelForEach, SerialPathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_each(1, 3,
                        [](size_t i) {
                          if (i == 1) throw InternalError("boom");
                        }),
      InternalError);
}

TEST(ParallelForEach, PooledPathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_each(4, 8,
                        [](size_t i) {
                          if (i == 3) throw InternalError("boom");
                        }),
      InternalError);
}

TEST(ParallelForEach, PoolOverloadDrainsSharedCounter) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  parallel_for_each(pool, 41, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 41);
}

TEST(DefaultThreadCount, HonoursEnvOverride) {
  ASSERT_EQ(setenv("FSOPT_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3);
  ASSERT_EQ(setenv("FSOPT_THREADS", "bogus", 1), 0);
  EXPECT_GE(default_thread_count(), 1);  // falls back to hardware
  ASSERT_EQ(unsetenv("FSOPT_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1);
}

}  // namespace
}  // namespace fsopt
