#include "sim/cache.h"

#include <gtest/gtest.h>

namespace fsopt {
namespace {

CacheParams params(i64 nprocs = 4, i64 block = 64, i64 cache = 4096,
                   i64 total = 1 << 16) {
  return {nprocs, cache, block, total};
}

TEST(Cache, FirstAccessIsColdMiss) {
  CoherentCache c(params());
  AccessOutcome o = c.access(0, 0, 4, false);
  EXPECT_EQ(o.kind, MissKind::kCold);
}

TEST(Cache, SecondAccessHits) {
  CoherentCache c(params());
  c.access(0, 0, 4, false);
  EXPECT_EQ(c.access(0, 4, 4, false).kind, MissKind::kHit);
  EXPECT_EQ(c.access(0, 60, 4, false).kind, MissKind::kHit);  // same block
}

TEST(Cache, ColdPerProcessor) {
  CoherentCache c(params());
  c.access(0, 0, 4, false);
  EXPECT_EQ(c.access(1, 0, 4, false).kind, MissKind::kCold);
}

TEST(Cache, WriteInvalidatesSharers) {
  CoherentCache c(params());
  c.access(0, 0, 4, false);
  c.access(1, 0, 4, false);
  AccessOutcome w = c.access(2, 0, 4, true);
  EXPECT_EQ(w.invalidated, 2);
}

TEST(Cache, WriteHitOnSharedLineIsUpgrade) {
  CoherentCache c(params());
  c.access(0, 0, 4, false);
  c.access(1, 0, 4, false);
  AccessOutcome w = c.access(0, 0, 4, true);
  EXPECT_EQ(w.kind, MissKind::kHit);
  EXPECT_TRUE(w.upgrade);
  EXPECT_EQ(w.invalidated, 1);
}

TEST(Cache, WriteHitOnModifiedLineIsSilent) {
  CoherentCache c(params());
  c.access(0, 0, 4, true);
  AccessOutcome w = c.access(0, 0, 4, true);
  EXPECT_EQ(w.kind, MissKind::kHit);
  EXPECT_FALSE(w.upgrade);
  EXPECT_EQ(w.invalidated, 0);
}

TEST(Cache, TrueSharingMiss) {
  CoherentCache c(params());
  c.access(0, 0, 4, false);   // P0 reads word 0
  c.access(1, 0, 4, true);    // P1 writes word 0 -> invalidates P0
  AccessOutcome o = c.access(0, 0, 4, false);  // P0 rereads word 0
  EXPECT_EQ(o.kind, MissKind::kTrueSharing);
  EXPECT_EQ(o.source_proc, 1);
}

TEST(Cache, FalseSharingMiss) {
  CoherentCache c(params());
  c.access(0, 0, 4, false);   // P0 reads word 0
  c.access(1, 32, 4, true);   // P1 writes word 8 (same 64B block)
  AccessOutcome o = c.access(0, 0, 4, false);  // P0 rereads word 0
  EXPECT_EQ(o.kind, MissKind::kFalseSharing);
}

TEST(Cache, FalseThenTrueDependsOnWord) {
  CoherentCache c(params());
  c.access(0, 0, 4, false);
  c.access(0, 32, 4, false);
  c.access(1, 32, 4, true);
  // Re-read of the written word: true sharing.
  EXPECT_EQ(c.access(0, 32, 4, false).kind, MissKind::kTrueSharing);
  // Invalidate again, re-read a different word: false sharing.
  c.access(1, 32, 4, true);
  EXPECT_EQ(c.access(0, 0, 4, false).kind, MissKind::kFalseSharing);
}

TEST(Cache, ReplacementMiss) {
  // Direct-mapped 4096B cache with 64B blocks = 64 sets; block 0 and
  // block 64 conflict.
  CoherentCache c(params(1));
  c.access(0, 0, 4, false);
  c.access(0, 64 * 64, 4, false);  // evicts block 0
  AccessOutcome o = c.access(0, 0, 4, false);
  EXPECT_EQ(o.kind, MissKind::kReplacement);
}

TEST(Cache, ReadMissAfterRemoteWriteServedByOwner) {
  CoherentCache c(params());
  c.access(1, 0, 4, true);
  AccessOutcome o = c.access(0, 0, 4, false);
  EXPECT_EQ(o.source_proc, 1);
  // The owner is downgraded: its next read hits, next write upgrades.
  EXPECT_EQ(c.access(1, 0, 4, false).kind, MissKind::kHit);
  AccessOutcome w = c.access(1, 0, 4, true);
  EXPECT_TRUE(w.upgrade);
}

TEST(Cache, EightByteAccessOnTinyBlocksSplits) {
  CacheParams p = params(2, /*block=*/4);
  CoherentCache c(p);
  AccessOutcome o = c.access(0, 0, 8, false);  // spans blocks 0 and 1
  EXPECT_EQ(o.kind, MissKind::kCold);
  EXPECT_EQ(c.access(0, 4, 4, false).kind, MissKind::kHit);
}

TEST(Cache, SplitWriteSumsInvalidationsAcrossBlocks) {
  // 4B blocks: an 8B write touches two blocks, each cached by two remote
  // processors — the merged outcome reports all four invalidations.
  CoherentCache c(params(3, /*block=*/4));
  c.access(1, 0, 8, false);
  c.access(2, 0, 8, false);
  AccessOutcome o = c.access(0, 0, 8, true);
  EXPECT_EQ(o.invalidated, 4);
  EXPECT_EQ(o.kind, MissKind::kCold);
}

TEST(Cache, SplitRefMergesWorstKind) {
  // One half hits, the other is a true-sharing miss: the merged kind is
  // the worse of the two.
  CoherentCache c(params(2, /*block=*/4));
  c.access(0, 0, 8, false);
  c.access(1, 4, 4, true);  // invalidates only the second block
  AccessOutcome o = c.access(0, 0, 8, false);
  EXPECT_EQ(o.kind, MissKind::kTrueSharing);
  EXPECT_EQ(o.source_proc, 1);
}

TEST(Cache, SplitWriteMergesUpgrade) {
  CoherentCache c(params(2, /*block=*/4));
  c.access(0, 0, 8, false);
  c.access(1, 0, 4, false);  // first block now shared by both
  AccessOutcome o = c.access(0, 0, 8, true);
  EXPECT_EQ(o.kind, MissKind::kHit);  // both halves upgrade in place
  EXPECT_TRUE(o.upgrade);
  EXPECT_EQ(o.invalidated, 1);
}

TEST(Cache, CombineSplitSeverityFollowsWordUnion) {
  // Severity must follow the classifier's word-union semantics — any
  // remotely-written referenced word makes the whole reference a
  // true-sharing miss — not the raw enum order (which lists false
  // sharing last and used to win the merge).
  AccessOutcome t{MissKind::kTrueSharing, false, 1, 0};
  AccessOutcome f{MissKind::kFalseSharing, false, 2, 0};
  AccessOutcome parts_tf[2] = {t, f};
  AccessOutcome parts_ft[2] = {f, t};
  EXPECT_EQ(combine_split_outcomes(parts_tf, 2).kind,
            MissKind::kTrueSharing);
  EXPECT_EQ(combine_split_outcomes(parts_ft, 2).kind,
            MissKind::kTrueSharing);
  // Everything else still loses to false sharing.
  for (MissKind k : {MissKind::kHit, MissKind::kCold,
                     MissKind::kReplacement}) {
    AccessOutcome other{k, false, -1, 0};
    AccessOutcome parts[2] = {other, f};
    EXPECT_EQ(combine_split_outcomes(parts, 2).kind,
              MissKind::kFalseSharing);
  }
  // And the rank is a strict refinement of hit < cold < replacement.
  EXPECT_LT(split_kind_severity(MissKind::kHit),
            split_kind_severity(MissKind::kCold));
  EXPECT_LT(split_kind_severity(MissKind::kCold),
            split_kind_severity(MissKind::kReplacement));
  EXPECT_LT(split_kind_severity(MissKind::kReplacement),
            split_kind_severity(MissKind::kFalseSharing));
  EXPECT_LT(split_kind_severity(MissKind::kFalseSharing),
            split_kind_severity(MissKind::kTrueSharing));
}

TEST(Cache, SplitRefMixedTrueAndFalsePartsIsTrueSharing) {
  // Regression: a misaligned 8B read on 8B blocks whose two halves miss
  // as (false sharing, true sharing).  Real communication happened — the
  // word at addr 8 was remotely written and is being re-read — so the
  // merged reference must count as TRUE sharing.  The old enum-max merge
  // reported false sharing for exactly this mix.
  CoherentCache c(params(2, /*block=*/8));
  c.access(1, 4, 8, false);  // P1 loads blocks 0 and 1
  c.access(0, 0, 4, true);   // P0 writes word 0: block 0 invalidated,
                             // but P1's referenced word 4 is untouched
  c.access(0, 8, 4, true);   // P0 writes word 8: block 1 invalidated,
                             // and word 8 IS referenced below
  AccessOutcome o = c.access(1, 4, 8, false);
  EXPECT_EQ(o.kind, MissKind::kTrueSharing);
  EXPECT_EQ(o.source_proc, 0);
}

TEST(Cache, SplitRefSpanningThreeBlocks) {
  // A misaligned 8B reference on 4B blocks touches bytes [2, 10): three
  // blocks, three split parts.  The access must not trip the part-count
  // check and the merged outcome must cover all three blocks.
  CoherentCache c(params(2, /*block=*/4));
  AccessOutcome o = c.access(0, 2, 8, false);
  EXPECT_EQ(o.kind, MissKind::kCold);
  // All three blocks are now resident.
  EXPECT_EQ(c.access(0, 0, 4, false).kind, MissKind::kHit);
  EXPECT_EQ(c.access(0, 4, 4, false).kind, MissKind::kHit);
  EXPECT_EQ(c.access(0, 8, 4, false).kind, MissKind::kHit);
  // A remote write to the middle block only: the re-read of [2, 10)
  // mixes (hit, true-sharing, hit) into a true-sharing miss.
  c.access(1, 4, 4, true);
  EXPECT_EQ(c.access(0, 2, 8, false).kind, MissKind::kTrueSharing);
}

TEST(Cache, OutOfRangeAccessThrows) {
  // total_bytes bounds the simulated address space; silently dropping
  // out-of-range words would skew every counter, so it must throw.
  CoherentCache c(params());  // total = 1 << 16
  EXPECT_THROW(c.access(0, i64{1} << 16, 4, false), InternalError);
  EXPECT_THROW(c.access(0, (i64{1} << 16) - 4, 8, false), InternalError);
  EXPECT_THROW(c.access(0, -4, 4, false), InternalError);
}

TEST(CacheSim, SplitRefCountsOnce) {
  // An 8B ref on 4B blocks is two block transactions but ONE reference
  // in the stats — same contract as the sharded replay path.
  CacheSim sim(params(2, /*block=*/4));
  sim.on_ref({0, 8, 0, RefType::kRead});
  EXPECT_EQ(sim.stats().refs, 1u);
  EXPECT_EQ(sim.stats().cold, 1u);
  sim.on_ref({0, 8, 0, RefType::kRead});
  EXPECT_EQ(sim.stats().refs, 2u);
  EXPECT_EQ(sim.stats().hits, 1u);
  EXPECT_EQ(sim.stats().misses() + sim.stats().hits, 2u);
}

TEST(CacheSim, StatsAccumulate) {
  CacheSim sim(params(2));
  sim.on_ref({0, 4, 0, RefType::kRead});
  sim.on_ref({0, 4, 0, RefType::kRead});
  sim.on_ref({0, 4, 1, RefType::kWrite});
  sim.on_ref({0, 4, 0, RefType::kRead});
  const MissStats& s = sim.stats();
  EXPECT_EQ(s.refs, 4u);
  EXPECT_EQ(s.cold, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.true_sharing, 1u);
  EXPECT_EQ(s.misses(), s.cold + s.true_sharing);
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.75);
}

TEST(CacheSim, PerDatumAttribution) {
  AddressMap am;
  am.add(0, 64, "a");
  am.add(64, 128, "b");
  CacheSim sim(params(2), &am);
  sim.on_ref({0, 4, 0, RefType::kRead});
  sim.on_ref({80, 4, 0, RefType::kRead});
  sim.on_ref({80, 4, 1, RefType::kWrite});
  ASSERT_EQ(sim.by_datum().count("a"), 1u);
  ASSERT_EQ(sim.by_datum().count("b"), 1u);
  EXPECT_EQ(sim.by_datum().at("a").refs, 1u);
  EXPECT_EQ(sim.by_datum().at("b").refs, 2u);
}

TEST(AddressMapTest, SmallestContainingRangeWins) {
  AddressMap am;
  am.add(0, 1000, "region");
  am.add(100, 200, "member");
  EXPECT_EQ(am.name_of(am.index_of(150)), "member");
  EXPECT_EQ(am.name_of(am.index_of(50)), "region");
  EXPECT_EQ(am.index_of(5000), -1);
}

TEST(Cache, AssociativityAvoidsConflicts) {
  // 4096B, 64B blocks: direct-mapped has 64 sets; blocks 0 and 64
  // conflict.  2-way keeps both.
  CacheParams p = params(1);
  p.associativity = 2;
  CoherentCache c(p);
  c.access(0, 0, 4, false);
  c.access(0, 64 * 64, 4, false);
  EXPECT_EQ(c.access(0, 0, 4, false).kind, MissKind::kHit);
  EXPECT_EQ(c.access(0, 64 * 64, 4, false).kind, MissKind::kHit);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  CacheParams p = params(1);
  p.associativity = 2;
  CoherentCache c(p);
  // Three conflicting blocks in a 2-way set.
  c.access(0, 0, 4, false);          // block A
  c.access(0, 64 * 64, 4, false);    // block B
  c.access(0, 0, 4, false);          // touch A (B becomes LRU)
  c.access(0, 2 * 64 * 64, 4, false);  // block C evicts B
  EXPECT_EQ(c.access(0, 0, 4, false).kind, MissKind::kHit);          // A
  EXPECT_EQ(c.access(0, 64 * 64, 4, false).kind, MissKind::kReplacement);
}

TEST(Cache, WordInvalidateEliminatesFalseSharing) {
  CacheParams p = params(2);
  p.word_invalidate = true;
  CoherentCache c(p);
  c.access(0, 0, 4, false);
  c.access(1, 32, 4, true);  // remote write to a different word
  // Block-invalidate hardware would make this a false-sharing miss;
  // word-invalidate keeps the unwritten words valid.
  EXPECT_EQ(c.access(0, 0, 4, false).kind, MissKind::kHit);
  // The written word itself is invalid: true-sharing refetch.
  EXPECT_EQ(c.access(0, 32, 4, false).kind, MissKind::kTrueSharing);
}

TEST(Cache, WordInvalidateStillCountsColdAndReplacement) {
  CacheParams p = params(2);
  p.word_invalidate = true;
  CoherentCache c(p);
  EXPECT_EQ(c.access(0, 0, 4, false).kind, MissKind::kCold);
  EXPECT_EQ(c.access(0, 0, 4, false).kind, MissKind::kHit);
}

// Invariant sweep across block sizes: classified misses partition total
// misses; hits + misses == refs.
class CacheInvariants : public ::testing::TestWithParam<i64> {};

TEST_P(CacheInvariants, CountsArePartition) {
  i64 block = GetParam();
  CacheSim sim(params(4, block, 2048, 1 << 14));
  u64 s = 12345;
  auto next = [&s]() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  };
  for (int i = 0; i < 20000; ++i) {
    MemRef r;
    r.proc = static_cast<u8>(next() % 4);
    r.addr = static_cast<i64>(next() % ((1 << 14) - 8));
    r.addr &= ~i64{3};
    r.size = next() % 2 == 0 ? 4 : 8;
    if (r.size == 8) r.addr &= ~i64{7};
    r.type = next() % 3 == 0 ? RefType::kWrite : RefType::kRead;
    sim.on_ref(r);
  }
  const MissStats& st = sim.stats();
  EXPECT_EQ(st.refs, 20000u);
  EXPECT_EQ(st.hits + st.misses(), st.refs);
  EXPECT_EQ(st.misses(),
            st.cold + st.replacement + st.true_sharing + st.false_sharing);
}

INSTANTIATE_TEST_SUITE_P(Blocks, CacheInvariants,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace fsopt
