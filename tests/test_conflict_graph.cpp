// Word-granularity conflict graph: collection during replay, distillation
// into the datum-relative ConflictProfile, the GraphPlanner's intra-datum
// decisions, and end-to-end repair on synthetic workloads with known
// word-conflict structure.  Also pins the disabled path: a study run
// without collection must produce bit-identical stats to one with it.
#include "sim/attribution.h"

#include <gtest/gtest.h>

#include "analysis/sideeffect.h"
#include "driver/experiment.h"
#include "lang/sema.h"
#include "support/json.h"
#include "transform/planner.h"

namespace fsopt {
namespace {

// Eight processes ping-ponging adjacent 4-byte words of one line: the
// classic intra-datum false-sharing shape.  Each cnt[pid] is a distinct
// word, so every false-sharing miss has a known (writer word, victim
// word) = (4*wp, 4*vp) structure.  The hot array dominates the static
// weights, keeping cnt below the §3.3 significance threshold in the
// repair tests (mirroring how unknown loop bounds under-weight real
// residual false sharing).
constexpr const char* kPingPong =
    "param NPROCS = 8;"
    "real hot[64]; int cnt[NPROCS];"
    "void main(int pid) { int i; int r;"
    "  for (r = 0; r < 200; r = r + 1) {"
    "    for (i = pid; i < 64; i = i + nprocs) { hot[i] = hot[i] + 1.0; }"
    "    cnt[pid] = cnt[pid] + 1;"
    "  } }";

// Two four-process groups hammering the two halves of one small struct:
// procs 0-3 write g[0].x, procs 4-7 write g[0].y.  Padding the (single)
// element apart cannot help; only splitting the fields can.
constexpr const char* kHotCold =
    "param NPROCS = 8;"
    "real hot[64];"
    "struct S { int x; int y; };"
    "struct S g[1];"
    "void main(int pid) { int i; int r;"
    "  for (r = 0; r < 200; r = r + 1) {"
    "    for (i = pid; i < 64; i = i + nprocs) { hot[i] = hot[i] + 1.0; }"
    "    if (pid < 4) { g[0].x = g[0].x + 1; }"
    "    if (pid >= 4) { g[0].y = g[0].y + 1; }"
    "  } }";

CompileOptions base_options(bool optimize) {
  CompileOptions o;
  o.overrides = {{"NPROCS", 8}};
  o.optimize = optimize;
  return o;
}

struct Ctx {
  std::unique_ptr<Program> prog;
  ProgramSummary summary;
  SharingReport report;
};

Ctx analyze(std::string_view src) {
  Ctx c;
  DiagnosticEngine diags;
  c.prog = parse_and_check(src, diags, {{"NPROCS", 8}});
  c.summary = analyze_program(*c.prog);
  c.report = classify_sharing(c.summary);
  return c;
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

TEST(ConflictGraph, CollectsAdjacentWordPingPong) {
  Compiled c = compile_source(kPingPong, base_options(false));
  AddressMap am = build_address_map(c);
  TraceStudyResult st =
      run_trace_study(c, {64, 128}, 32 * 1024, &am, 0, 0, true);
  ASSERT_EQ(st.conflicts.size(), 2u);
  for (i64 b : {i64{64}, i64{128}}) {
    const ConflictGraph& g = st.conflicts.at(b);
    EXPECT_EQ(g.block_size, b);
    ASSERT_FALSE(g.empty());
    EXPECT_GT(g.total_weight(), 0u);
    for (const LineConflicts& lc : g.lines) {
      EXPECT_GT(lc.weight(), 0u);
      for (const ConflictEdge& e : lc.edges) {
        // False sharing by definition: different words of the same block,
        // touched by different processors, both 4-byte aligned.
        EXPECT_NE(e.writer_proc, e.victim_proc);
        EXPECT_NE(e.writer_word, e.victim_word);
        EXPECT_EQ(e.writer_word % 4, 0);
        EXPECT_EQ(e.victim_word % 4, 0);
        EXPECT_EQ(e.writer_word / b, e.victim_word / b);
        EXPECT_EQ(lc.line, e.victim_word / b);
        EXPECT_GT(e.weight, 0u);
      }
    }
  }
}

TEST(ConflictGraph, ProfileCarriesKnownWordStructure) {
  Compiled c = compile_source(kPingPong, base_options(false));
  AddressMap am = build_address_map(c);
  TraceStudyResult st = run_trace_study(c, {128}, 32 * 1024, &am, 0, 0, true);
  ConflictProfile prof = build_conflict_profile(st, 128, am);
  EXPECT_EQ(prof.block_size, 128);
  const ConflictProfile::Entry* e = prof.find("cnt");
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->weight, 0u);
  for (const ConflictProfile::Pair& p : e->pairs) {
    // Process p only ever touches cnt[p], so every conflict pair's byte
    // offsets are exactly 4x its processor ids.
    EXPECT_EQ(p.writer_off, 4 * p.writer_proc);
    EXPECT_EQ(p.victim_off, 4 * p.victim_proc);
    EXPECT_NE(p.writer_proc, p.victim_proc);
  }
}

TEST(ConflictGraph, DisabledPathStatsBitIdentical) {
  Compiled c = compile_source(kPingPong, base_options(false));
  AddressMap am = build_address_map(c);
  TraceStudyResult off = run_trace_study(c, {64, 128}, 32 * 1024, &am);
  TraceStudyResult on =
      run_trace_study(c, {64, 128}, 32 * 1024, &am, 0, 0, true);
  EXPECT_TRUE(off.conflicts.empty());
  ASSERT_EQ(on.conflicts.size(), 2u);
  for (i64 b : {i64{64}, i64{128}}) {
    EXPECT_EQ(off.at(b), on.at(b)) << "block " << b;
    EXPECT_EQ(off.by_datum.at(b), on.by_datum.at(b)) << "block " << b;
  }
}

TEST(ConflictGraph, JsonDumpIsParseable) {
  Compiled c = compile_source(kPingPong, base_options(false));
  AddressMap am = build_address_map(c);
  TraceStudyResult st = run_trace_study(c, {128}, 32 * 1024, &am, 0, 0, true);
  std::string doc = conflict_graph_to_json(st.conflicts.at(128), &am);
  std::optional<json::Value> parsed = json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NE(doc.find("\"block_size\""), std::string::npos);
  EXPECT_NE(doc.find("\"cnt\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// GraphPlanner decisions on synthetic profiles
// ---------------------------------------------------------------------------

TEST(GraphPlannerTest, StridesBarrierWords) {
  Ctx c = analyze(kPingPong);
  TransformPlan empty;
  ConflictProfile prof;
  prof.block_size = 128;
  prof.total_weight = 100;
  prof.entries.push_back(
      {std::string(kBarrierName), 100, {{0, 4, 0, 1, 50}, {4, 0, 1, 0, 50}}});
  GraphPlanner planner;
  PlannerInputs in{c.report, c.summary, {}, 128, nullptr, &empty, &prof};
  TransformPlan plan = planner.plan(in);
  EXPECT_EQ(plan.planner, "graph");
  const TransformDecision* d = plan.find({kBarrierSym, -1});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kIntraPad);
  EXPECT_EQ(d->chunk, 256);
  EXPECT_EQ(d->reason.code, ReasonCode::kConflictGraph);
  EXPECT_EQ(d->reason.fs_misses, 100u);

  // Planning again over the produced plan adds nothing (convergence).
  PlannerInputs again = in;
  again.base = &plan;
  EXPECT_TRUE(plan_diff(plan, planner.plan(again)).empty());
}

TEST(GraphPlannerTest, SplitsConflictingStructFields) {
  Ctx c = analyze(kHotCold);
  const GlobalSym* g = c.prog->find_global("g");
  ASSERT_NE(g, nullptr);
  TransformPlan empty;
  ConflictProfile prof;
  prof.block_size = 128;
  prof.total_weight = 80;
  prof.entries.push_back(
      {"g", 80, {{0, 4, 0, 5, 40}, {4, 0, 5, 0, 40}}});
  GraphPlanner planner;
  PlannerInputs in{c.report, c.summary, {}, 128, nullptr, &empty, &prof};
  TransformPlan plan = planner.plan(in);
  const TransformDecision* d = plan.find({g->id, -1});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kHotColdSplit);
  EXPECT_EQ(d->fields, (std::vector<int>{0, 1}));
  EXPECT_EQ(d->reason.code, ReasonCode::kConflictGraph);
}

TEST(GraphPlannerTest, IntraPadsConflictingArrayWords) {
  Ctx c = analyze(kPingPong);
  const GlobalSym* cnt = c.prog->find_global("cnt");
  ASSERT_NE(cnt, nullptr);
  TransformPlan empty;
  ConflictProfile prof;
  prof.block_size = 128;
  prof.total_weight = 80;
  prof.entries.push_back(
      {"cnt", 80, {{0, 4, 0, 1, 40}, {4, 0, 1, 0, 40}}});
  GraphPlanner planner;
  PlannerInputs in{c.report, c.summary, {}, 128, nullptr, &empty, &prof};
  TransformPlan plan = planner.plan(in);
  const TransformDecision* d = plan.find({cnt->id, -1});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kIntraPad);
  EXPECT_EQ(d->chunk, 256);
}

TEST(GraphPlannerTest, ThresholdsFilterNoise) {
  Ctx c = analyze(kPingPong);
  const GlobalSym* cnt = c.prog->find_global("cnt");
  TransformPlan empty;
  // Below min_weight (16): no decision even though the share is 100%.
  ConflictProfile prof;
  prof.block_size = 128;
  prof.total_weight = 8;
  prof.entries.push_back({"cnt", 8, {{0, 4, 0, 1, 8}}});
  GraphPlanner planner;
  PlannerInputs in{c.report, c.summary, {}, 128, nullptr, &empty, &prof};
  EXPECT_EQ(planner.plan(in).find({cnt->id, -1}), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end repair
// ---------------------------------------------------------------------------

RepairLoopOptions graph_only_options() {
  RepairLoopOptions opt;
  opt.planner_name = "graph";
  // Silence the composed profile pass so the repairs under test are the
  // conflict-graph decisions themselves, not datum-level padding.
  opt.planner.min_fs_fraction = 1.5;
  return opt;
}

TEST(GraphRepair, EliminatesAdjacentWordPingPong) {
  CompileOptions base = base_options(true);
  // Keep the static heuristics away from cnt (mirrors how unknown loop
  // bounds under-weight real workloads).
  base.decision.min_weight_fraction = 0.2;
  RepairLoopOptions opt = graph_only_options();
  // Sweep the sizes the repair targets.  At 256 the static plan's
  // group&transpose region for `hot` already falsely shares within
  // itself; padding cnt shifts that region's base and perturbs its
  // 256-byte alignment, which the multi-size acceptance gate (rightly)
  // refuses to trade against.
  opt.sweep_blocks = {32, 64, 128};
  RepairResult rr = repair_loop(kPingPong, base, opt);

  EXPECT_GT(rr.baseline.false_sharing, 0u);
  ASSERT_FALSE(rr.iterations.empty());
  EXPECT_TRUE(rr.converged);

  DiagnosticEngine diags;
  auto prog = parse_and_check(kPingPong, diags, {{"NPROCS", 8}});
  DatumKey cnt = {prog->find_global("cnt")->id, -1};
  const TransformDecision* d = rr.final_plan().find(cnt);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kIntraPad);
  EXPECT_EQ(d->reason.code, ReasonCode::kConflictGraph);

  // The 256-byte stride separates the words at every swept size.
  for (const auto& [b, stats] : rr.iterations.back().sweep)
    EXPECT_EQ(stats.false_sharing, 0u) << "block " << b;
}

TEST(GraphRepair, SplitsHotColdStructHalves) {
  CompileOptions base = base_options(true);
  base.decision.min_weight_fraction = 0.2;
  RepairResult rr = repair_loop(kHotCold, base, graph_only_options());

  EXPECT_GT(rr.baseline.false_sharing, 0u);
  ASSERT_FALSE(rr.iterations.empty());
  EXPECT_TRUE(rr.converged);

  DiagnosticEngine diags;
  auto prog = parse_and_check(kHotCold, diags, {{"NPROCS", 8}});
  DatumKey g = {prog->find_global("g")->id, -1};
  const TransformDecision* d = rr.final_plan().find(g);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, TransformKind::kHotColdSplit);
  EXPECT_EQ(d->fields, (std::vector<int>{0, 1}));

  // Each field lives in its own block-aligned region now.
  EXPECT_EQ(rr.final_stats().false_sharing, 0u);
}

}  // namespace
}  // namespace fsopt
