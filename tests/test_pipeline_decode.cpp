// The pipelined decode (EncodedTrace::replay_pipelined) hands the sink
// the SAME stream as the serial replay(): same references, same order,
// same sub-batch boundaries — only the wall-clock schedule of the
// decode changes.  These tests force the threaded path with
// FSOPT_PIPELINE=1 (the 1-core CI host would otherwise fall back to
// serial) and diff the delivered stream and the end-to-end replay stats
// against FSOPT_PIPELINE=0.  Run under TSan in CI to check the
// double-buffer hand-off for races.
#include "trace/encode.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "sim/multi.h"

namespace fsopt {
namespace {

/// Pins FSOPT_PIPELINE for one scope and restores the prior value.
class PipelineEnvGuard {
 public:
  explicit PipelineEnvGuard(const char* value) {
    const char* old = std::getenv("FSOPT_PIPELINE");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv("FSOPT_PIPELINE", value, 1);
  }
  ~PipelineEnvGuard() {
    if (had_)
      setenv("FSOPT_PIPELINE", saved_.c_str(), 1);
    else
      unsetenv("FSOPT_PIPELINE");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

/// Records every delivered reference and every sub-batch boundary.
struct RecordingSink : TraceSink {
  std::vector<MemRef> refs;
  std::vector<size_t> batch_sizes;
  void on_ref(const MemRef& ref) override { on_batch(&ref, 1); }
  void on_batch(const MemRef* batch, size_t n) override {
    refs.insert(refs.end(), batch, batch + n);
    batch_sizes.push_back(n);
  }
};

bool operator_eq(const MemRef& a, const MemRef& b) {
  return a.addr == b.addr && a.size == b.size && a.proc == b.proc &&
         a.type == b.type;
}

EncodedTrace seeded_trace(int nrefs, size_t chunk_refs) {
  // Deterministic xorshift stream with spanning refs and proc mixing, in
  // small chunks so the pipeline actually rotates buffers many times.
  TraceBuffer raw;
  u64 x = 0x853c49e6748fea9bull;
  std::vector<MemRef> refs;
  for (int i = 0; i < nrefs; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    refs.push_back({static_cast<i64>(x % 16384) & ~i64{3},
                    static_cast<u8>(x & 1 ? 8 : 4),
                    static_cast<u8>((x >> 8) % 8),
                    (x >> 16) % 3 == 0 ? RefType::kWrite : RefType::kRead});
  }
  raw.on_batch(refs.data(), refs.size());
  return encode_trace(raw, chunk_refs);
}

TEST(PipelineDecode, ForcedThreadedDeliversIdenticalStream) {
  EncodedTrace trace = seeded_trace(50000, /*chunk_refs=*/512);
  ASSERT_GE(trace.chunk_count(), 2u);

  RecordingSink serial;
  {
    PipelineEnvGuard env("0");
    trace.replay_pipelined(serial);
  }
  RecordingSink threaded;
  {
    PipelineEnvGuard env("1");
    trace.replay_pipelined(threaded);
  }
  ASSERT_EQ(serial.refs.size(), threaded.refs.size());
  ASSERT_EQ(serial.refs.size(), trace.size());
  for (size_t i = 0; i < serial.refs.size(); ++i)
    ASSERT_TRUE(operator_eq(serial.refs[i], threaded.refs[i])) << "i=" << i;
  // Identical sub-batch boundaries, not just identical concatenation.
  EXPECT_EQ(serial.batch_sizes, threaded.batch_sizes);
}

TEST(PipelineDecode, SingleChunkFallsBackToSerial) {
  EncodedTrace trace = seeded_trace(300, /*chunk_refs=*/4096);
  ASSERT_EQ(trace.chunk_count(), 1u);
  RecordingSink sink;
  PipelineEnvGuard env("1");
  trace.replay_pipelined(sink);  // must not deadlock or drop refs
  EXPECT_EQ(sink.refs.size(), trace.size());
}

TEST(PipelineDecode, ReplayStatsIdenticalPipelinedVsSerial) {
  EncodedTrace trace = seeded_trace(40000, /*chunk_refs=*/1024);
  std::vector<CacheParams> params;
  for (i64 b : {4, 32, 256}) params.push_back({8, 8192, b, 1 << 15});

  MultiReplayResult off, on;
  {
    PipelineEnvGuard env("0");
    off = replay_multi(trace, params);
  }
  {
    PipelineEnvGuard env("1");
    on = replay_multi(trace, params);
  }
  EXPECT_EQ(off.stats, on.stats);
}

}  // namespace
}  // namespace fsopt
