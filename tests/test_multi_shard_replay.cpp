// Differential suite for the composed sharded × multi-configuration
// replay (replay_multi_partitioned): one region-granular partition,
// each shard simulating every plane, must be bit-identical — aggregate
// stats AND per-datum attribution — to the serial single-pass
// replay_multi and to the per-configuration sharded path
// (replay_partitioned), for every shard count and across the full
// 29-cell workload matrix.
#include "sim/multi.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "trace/shard.h"
#include "workloads/workloads.h"

namespace fsopt {
namespace {

std::vector<CacheParams> sweep_params(i64 nprocs, i64 total,
                                      const std::vector<i64>& blocks,
                                      i64 l1 = 32 * 1024) {
  std::vector<CacheParams> out;
  for (i64 b : blocks) out.push_back({nprocs, l1, b, total});
  return out;
}

TraceBuffer make_trace(const std::vector<MemRef>& refs) {
  TraceBuffer t;
  t.on_batch(refs.data(), refs.size());
  return t;
}

TEST(MultiShardPlan, RegionIsLargestBlockAndShardsDivideEveryPlane) {
  // Blocks {4..256}, 2 KB caches: region 256, region count 2048/256 = 8
  // — so 8 shards compose exactly, and a request of 5 falls to 4.
  std::vector<CacheParams> params = sweep_params(4, 1 << 16, {4, 32, 256},
                                                 /*l1=*/2048);
  MultiShardPlan plan = multi_shard_plan(params, 8);
  EXPECT_EQ(plan.region_bytes, 256);
  EXPECT_EQ(plan.shards, 8);
  EXPECT_EQ(multi_shard_plan(params, 5).shards, 4);
  EXPECT_EQ(multi_shard_plan(params, 1).shards, 1);
  // A 2-way plane halves its region count (2048/256/2 = 4), so the
  // exact shard bound for the whole set drops from 8 to 4.
  params.push_back({4, 2048, 4, 1 << 16});
  params.back().associativity = 2;
  EXPECT_EQ(multi_shard_plan(params, 8).shards, 4);
}

TEST(MultiShardReplay, SyntheticStreamMatchesSerialForEveryShardCount) {
  // Ping-pong false sharing plus private strides plus 8-byte accesses
  // that straddle region boundaries (addr 252..260 spans two 256-byte
  // regions), exercising the cross-shard split reassembly.
  std::vector<MemRef> refs;
  for (int i = 0; i < 4000; ++i) {
    u8 proc = static_cast<u8>(i % 4);
    refs.push_back({proc * 4, 4, proc,
                    i % 3 == 0 ? RefType::kWrite : RefType::kRead});
    refs.push_back({1024 + proc * 256 + (i % 32) * 8, 8, proc,
                    RefType::kRead});
    if (i % 7 == 0)
      refs.push_back({252 + (i % 5) * 256, 8, proc, RefType::kWrite});
  }
  TraceBuffer raw = make_trace(refs);
  AddressMap am;
  am.add(0, 64, "hot");
  am.add(64, 1 << 14, "cold");
  std::vector<CacheParams> params =
      sweep_params(4, 1 << 16, {4, 8, 16, 32, 64, 128, 256}, /*l1=*/2048);

  MultiReplayResult serial = replay_multi(raw, params, &am);
  for (int k : {1, 2, 4, 8}) {
    MultiShardPlan plan = multi_shard_plan(params, k);
    EXPECT_EQ(plan.shards, k);
    MultiTracePartition part =
        partition_trace_multi(raw, plan.region_bytes, plan.shards);
    MultiReplayResult composed =
        replay_multi_partitioned(part, params, &am);
    EXPECT_EQ(serial.stats, composed.stats) << "shards=" << k;
    EXPECT_EQ(serial.by_datum, composed.by_datum) << "shards=" << k;
  }
}

TEST(MultiShardReplay, EncodedAndRawPartitionsAgree) {
  std::vector<MemRef> refs;
  for (int i = 0; i < 3000; ++i)
    refs.push_back({(i * 52) % 4096, static_cast<u8>(i % 2 ? 8 : 4),
                    static_cast<u8>(i % 3),
                    i % 5 == 0 ? RefType::kWrite : RefType::kRead});
  TraceBuffer raw = make_trace(refs);
  EncodedTrace enc = encode_trace(raw, /*chunk_refs=*/128);
  std::vector<CacheParams> params = sweep_params(3, 1 << 13, {4, 32, 128});
  MultiShardPlan plan = multi_shard_plan(params, 4);
  MultiReplayResult a = replay_multi_partitioned(
      partition_trace_multi(raw, plan.region_bytes, plan.shards), params);
  MultiReplayResult b = replay_multi_partitioned(
      partition_trace_multi(enc, plan.region_bytes, plan.shards), params);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(MultiShardReplay, ThreadCountNeverChangesResults) {
  std::vector<MemRef> refs;
  for (int i = 0; i < 5000; ++i)
    refs.push_back({(i * 36) % 8192, 4, static_cast<u8>(i % 8),
                    i % 4 == 0 ? RefType::kWrite : RefType::kRead});
  TraceBuffer raw = make_trace(refs);
  std::vector<CacheParams> params =
      sweep_params(8, 1 << 13, {4, 8, 16, 32, 64, 128, 256});
  MultiShardPlan plan = multi_shard_plan(params, 8);
  MultiTracePartition part =
      partition_trace_multi(raw, plan.region_bytes, plan.shards);
  MultiReplayResult one = replay_multi_partitioned(part, params, nullptr, 1);
  for (int threads : {2, 3, 8}) {
    MultiReplayResult many =
        replay_multi_partitioned(part, params, nullptr, threads);
    EXPECT_EQ(one.stats, many.stats) << "threads=" << threads;
  }
}

TEST(MultiShardReplay, StudyRoutesShardedSweepsThroughComposedEngine) {
  // replay_trace_study with an explicit shard request must produce the
  // single-pass result exactly (it now partitions once and composes).
  const workloads::Workload& w = workloads::get("fmm");
  CompileOptions o;
  o.overrides = w.sim_overrides;
  o.overrides["NPROCS"] = 4;
  Compiled c = compile_source(w.natural, o);
  EncodedTrace trace = record_encoded_trace(c);
  AddressMap am = build_address_map(c);
  const std::vector<i64> blocks = {4, 16, 64, 256};
  TraceStudyResult serial =
      replay_trace_study(trace, c, blocks, 32 * 1024, &am, 1, 1);
  for (int k : {2, 4}) {
    TraceStudyResult sharded =
        replay_trace_study(trace, c, blocks, 32 * 1024, &am, 2, k);
    for (i64 b : blocks) {
      EXPECT_EQ(serial.by_block.at(b), sharded.by_block.at(b))
          << "block=" << b << " shards=" << k;
      EXPECT_EQ(serial.by_datum.at(b), sharded.by_datum.at(b))
          << "block=" << b << " shards=" << k;
    }
  }
}

// --- the workload-matrix differential --------------------------------
//
// Every cell of the paper's experiment matrix (ten workloads x {N,C}
// plus the programmer-optimized versions): the composed sharded ×
// multi-plane replay must equal the serial single-pass replay AND the
// per-configuration sharded path, at every block size and shard count,
// on aggregate stats and per-datum attribution.

TEST(MultiShardReplayMatrix, BitIdenticalAcrossAllCellsAndShardCounts) {
  std::vector<CompileJob> jobs = workload_matrix_jobs();
  ASSERT_EQ(jobs.size(), 29u);  // 10 N + 10 C + 9 P
  std::vector<CompiledVariant> cells = compile_matrix(jobs);
  ASSERT_EQ(cells.size(), jobs.size());

  const std::vector<i64> blocks = {4, 16, 64, 256};
  for (const CompiledVariant& cell : cells) {
    const Compiled& c = cell.compiled;
    AddressMap am = build_address_map(c);
    EncodedTrace trace = record_encoded_trace(c);
    ASSERT_GT(trace.size(), 0u) << cell.label;

    std::vector<CacheParams> params =
        sweep_params(c.nprocs(), c.code.total_bytes, blocks);
    MultiReplayResult serial = replay_multi(trace, params, &am);

    for (int k : {2, 8}) {
      MultiShardPlan plan = multi_shard_plan(params, k);
      MultiTracePartition part =
          partition_trace_multi(trace, plan.region_bytes, plan.shards);
      MultiReplayResult composed =
          replay_multi_partitioned(part, params, &am);
      for (size_t p = 0; p < params.size(); ++p) {
        EXPECT_EQ(serial.stats[p], composed.stats[p])
            << cell.label << " block=" << params[p].block_size
            << " shards=" << plan.shards;
        EXPECT_EQ(serial.by_datum[p], composed.by_datum[p])
            << cell.label << " block=" << params[p].block_size
            << " shards=" << plan.shards;
      }
    }
    // Cross-check one cell leg against the per-configuration sharded
    // engine, closing the triangle serial = composed = per-config.
    for (size_t p = 0; p < params.size(); ++p) {
      int eff = effective_shard_count(4, params[p]);
      ShardedReplayResult per_config = replay_partitioned(
          partition_trace(trace, params[p].block_size, eff), params[p], &am);
      EXPECT_EQ(serial.stats[p], per_config.stats)
          << cell.label << " block=" << params[p].block_size;
    }
  }
}

}  // namespace
}  // namespace fsopt
