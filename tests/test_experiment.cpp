// Tests for the record-once/replay-many experiment harness: thread-count
// determinism, trace reuse, result merging, and the at() diagnostics.
#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace fsopt {
namespace {

const char* kProgram =
    "param NPROCS = 4; param N = 48;\n"
    "real a[N]; int counters[NPROCS]; lock_t l; int done;\n"
    "void main(int pid) { int i; int r;\n"
    "  for (r = 0; r < 4; r = r + 1) {\n"
    "    for (i = pid; i < N; i = i + nprocs) { a[i] = a[i] + 1.0; }\n"
    "    counters[pid] = counters[pid] + 1;\n"
    "    barrier();\n"
    "  }\n"
    "  lock(l); done = done + 1; unlock(l);\n"
    "}\n";

Compiled compile_opt() {
  CompileOptions opt;
  opt.optimize = true;
  return compile_source(kProgram, opt);
}

TEST(Experiment, TraceStudyDeterministicAcrossThreadCounts) {
  Compiled c = compile_opt();
  AddressMap am = build_address_map(c);
  TraceStudyResult serial =
      run_trace_study(c, paper_block_sizes(), 32 * 1024, &am, /*threads=*/1);
  for (int threads : {2, 4, 8}) {
    TraceStudyResult parallel =
        run_trace_study(c, paper_block_sizes(), 32 * 1024, &am, threads);
    EXPECT_EQ(parallel.refs, serial.refs) << threads;
    // Every MissStats field of every block size must be bit-identical.
    EXPECT_EQ(parallel.by_block, serial.by_block) << threads;
    // ... and the per-datum attribution too.
    EXPECT_EQ(parallel.by_datum, serial.by_datum) << threads;
  }
}

TEST(Experiment, RecordedTraceReplaysLikeTheOneShotStudy) {
  Compiled c = compile_opt();
  TraceStudyResult oneshot = run_trace_study(c, {16, 128});
  TraceBuffer trace = record_trace(c);
  EXPECT_EQ(trace.size(), oneshot.refs);
  TraceStudyResult replayed = replay_trace_study(trace, c, {16, 128});
  EXPECT_EQ(replayed.by_block, oneshot.by_block);
  // A second replay of the same buffer gives the same answer again.
  TraceStudyResult again = replay_trace_study(trace, c, {16, 128});
  EXPECT_EQ(again.by_block, oneshot.by_block);
}

TEST(Experiment, AtDiagnosesUnsimulatedBlockSize) {
  Compiled c = compile_source(kProgram, {});
  TraceStudyResult st = run_trace_study(c, {16, 128});
  EXPECT_NO_THROW(st.at(16));
  try {
    st.at(64);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("64"), std::string::npos) << msg;
    EXPECT_NE(msg.find("16, 128"), std::string::npos) << msg;
  }
}

TEST(Experiment, AtOnEmptyStudyNamesNoSizes) {
  TraceStudyResult st;
  try {
    st.at(32);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("none"), std::string::npos);
  }
}

TEST(Experiment, MergeCombinesDisjointBlockStudies) {
  Compiled c = compile_opt();
  TraceBuffer trace = record_trace(c);
  TraceStudyResult all = replay_trace_study(trace, c, {16, 64, 128});
  TraceStudyResult lo = replay_trace_study(trace, c, {16});
  TraceStudyResult hi = replay_trace_study(trace, c, {64, 128});
  lo.merge(hi);
  EXPECT_EQ(lo.by_block, all.by_block);
  EXPECT_EQ(lo.refs, all.refs);
  // Overlapping block sizes are rejected.
  TraceStudyResult dup = replay_trace_study(trace, c, {64});
  EXPECT_THROW(lo.merge(dup), InternalError);
}

TEST(Experiment, MissStatsMergeAddsEveryField) {
  MissStats a;
  a.refs = 10; a.hits = 5; a.cold = 1; a.replacement = 1;
  a.true_sharing = 1; a.false_sharing = 2; a.upgrades = 3;
  a.invalidations = 4;
  MissStats b = a;
  b.merge(a);
  EXPECT_EQ(b.refs, 20u);
  EXPECT_EQ(b.hits, 10u);
  EXPECT_EQ(b.cold, 2u);
  EXPECT_EQ(b.replacement, 2u);
  EXPECT_EQ(b.true_sharing, 2u);
  EXPECT_EQ(b.false_sharing, 4u);
  EXPECT_EQ(b.upgrades, 6u);
  EXPECT_EQ(b.invalidations, 8u);
}

TEST(Experiment, SpeedupSweepDeterministicAcrossThreadCounts) {
  CompileOptions base;
  i64 bl = baseline_cycles(kProgram, base);
  SpeedupCurve serial =
      speedup_sweep(kProgram, {1, 2, 4}, base, bl, /*threads=*/1);
  SpeedupCurve parallel =
      speedup_sweep(kProgram, {1, 2, 4}, base, bl, /*threads=*/4);
  EXPECT_EQ(serial.procs, parallel.procs);
  ASSERT_EQ(serial.speedup.size(), parallel.speedup.size());
  for (size_t i = 0; i < serial.speedup.size(); ++i)
    EXPECT_EQ(serial.speedup[i], parallel.speedup[i]) << i;
}

TEST(Experiment, ThreadsKnobRoundTrips) {
  set_experiment_threads(3);
  EXPECT_EQ(experiment_threads(), 3);
  set_experiment_threads(0);
  EXPECT_GE(experiment_threads(), 1);  // auto
}

}  // namespace
}  // namespace fsopt
