#include "analysis/perprocess.h"

namespace fsopt {

std::optional<i64> eval_for_pid(const Expr& e, const PdvResult& pdvs,
                                i64 pid_value, const AffineEnv* env) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return e.int_value;
    case ExprKind::kVar: {
      if (e.local == nullptr) return std::nullopt;  // global
      if (e.local == pdvs.pid) return pid_value;
      if (env != nullptr) {
        Affine a = env->value_of(e.local);
        if (a.valid()) return a.eval_with(pdvs.pid, pid_value);
      }
      return std::nullopt;
    }
    case ExprKind::kUnary: {
      auto v = eval_for_pid(*e.children[0], pdvs, pid_value, env);
      if (!v) return std::nullopt;
      return e.un_op == UnOp::kNeg ? -*v : static_cast<i64>(*v == 0);
    }
    case ExprKind::kBinary: {
      auto l = eval_for_pid(*e.children[0], pdvs, pid_value, env);
      if (!l) return std::nullopt;
      // Short-circuit forms still need both sides decidable to be safe
      // unless the left side already decides the result.
      if (e.bin_op == BinOp::kAnd && *l == 0) return 0;
      if (e.bin_op == BinOp::kOr && *l != 0) return 1;
      auto r = eval_for_pid(*e.children[1], pdvs, pid_value, env);
      if (!r) return std::nullopt;
      switch (e.bin_op) {
        case BinOp::kAdd: return *l + *r;
        case BinOp::kSub: return *l - *r;
        case BinOp::kMul: return *l * *r;
        case BinOp::kDiv:
          if (*r == 0) return std::nullopt;
          return *l / *r;
        case BinOp::kRem:
          if (*r == 0) return std::nullopt;
          return *l % *r;
        case BinOp::kEq: return static_cast<i64>(*l == *r);
        case BinOp::kNe: return static_cast<i64>(*l != *r);
        case BinOp::kLt: return static_cast<i64>(*l < *r);
        case BinOp::kLe: return static_cast<i64>(*l <= *r);
        case BinOp::kGt: return static_cast<i64>(*l > *r);
        case BinOp::kGe: return static_cast<i64>(*l >= *r);
        case BinOp::kAnd: return static_cast<i64>(*l != 0 && *r != 0);
        case BinOp::kOr: return static_cast<i64>(*l != 0 || *r != 0);
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

std::optional<PidSet> pids_satisfying(const Expr& cond, const PdvResult& pdvs,
                                      i64 nprocs, const AffineEnv* env) {
  PidSet out;
  for (i64 p = 0; p < nprocs; ++p) {
    auto v = eval_for_pid(cond, pdvs, p, env);
    if (!v.has_value()) return std::nullopt;
    if (*v != 0) out.set(p);
  }
  return out;
}

namespace {

class Walker {
 public:
  Walker(const Program& prog, const PdvResult& pdvs, PerProcessCf& out)
      : prog_(prog), pdvs_(pdvs), out_(out) {}

  void walk(const Stmt& s, PidSet live) {
    out_.executed_by[&s] = live;
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& c : s.stmts) walk(*c, live);
        return;
      case StmtKind::kIf: {
        auto then_pids = pids_satisfying(*s.cond, pdvs_, prog_.nprocs);
        if (then_pids.has_value()) {
          PidSet t = *then_pids & live;
          PidSet e = then_pids->complement(prog_.nprocs) & live;
          out_.divergences.push_back({&s, t, e});
          walk(*s.then_block, t);
          if (s.else_block) walk(*s.else_block, e);
        } else {
          walk(*s.then_block, live);
          if (s.else_block) walk(*s.else_block, live);
        }
        return;
      }
      case StmtKind::kWhile:
        walk(*s.body, live);
        return;
      case StmtKind::kFor: {
        walk(*s.init_stmt, live);
        // A pid-dependent trip count can exclude processes from the body
        // entirely (e.g. `for (i = pid; i < k; ...)` executes nothing when
        // pid >= k for the first test); we keep the conservative full set.
        walk(*s.step_stmt, live);
        walk(*s.body, live);
        return;
      }
      default:
        return;
    }
  }

 private:
  const Program& prog_;
  const PdvResult& pdvs_;
  PerProcessCf& out_;
};

}  // namespace

PerProcessCf analyze_per_process_cf(const Program& prog,
                                    const PdvResult& pdvs) {
  PerProcessCf out;
  if (prog.main == nullptr || prog.main->body == nullptr) return out;
  Walker w(prog, pdvs, out);
  w.walk(*prog.main->body, PidSet::all(prog.nprocs));
  return out;
}

std::vector<PidSet> annotate_cfg(const Cfg& cfg, const PerProcessCf& cf,
                                 i64 nprocs) {
  std::vector<PidSet> out(cfg.nodes().size(), PidSet::all(nprocs));
  for (const auto& node : cfg.nodes()) {
    if (node->stmt == nullptr) continue;
    auto it = cf.executed_by.find(node->stmt);
    if (it != cf.executed_by.end())
      out[static_cast<size_t>(node->id)] = it->second;
  }
  return out;
}

}  // namespace fsopt
