// Classification of each shared datum's cross-process access pattern,
// computed from the stage-3 summary.  This is the information §3.3's
// transformation heuristics consume: the type (read/write,
// shared/per-process), stride and frequency of accesses to each data
// structure.
#pragma once

#include "analysis/sideeffect.h"

namespace fsopt {

/// Cross-process access pattern of one side (reads or writes) of a datum.
enum class Pattern : u8 {
  kNone,            // no accesses of this kind
  kPerProcess,      // sections provably disjoint across processes
  kSharedLocal,     // shared, with spatial locality (unit-stride runs)
  kSharedNonLocal,  // shared, without spatial or processor locality
};

const char* pattern_name(Pattern p);

/// Everything the transformation heuristics need to know about one datum.
struct DatumClass {
  DatumKey datum;
  std::string name;
  const GlobalSym* sym = nullptr;
  bool is_lock = false;
  std::vector<i64> extents;

  double read_weight = 0.0;
  double write_weight = 0.0;
  double lock_weight = 0.0;

  Pattern writes = Pattern::kNone;
  Pattern reads = Pattern::kNone;

  /// For per-process writes: the dimension whose index partitions the data
  /// across processes (-1 if the disjointness is not attributable to a
  /// single dimension).
  int pid_dim = -1;
  /// True when pid_dim is the field-array dimension of a struct field —
  /// the "embedded per-process data" situation that calls for indirection.
  bool pid_dim_is_field_dim = false;
  /// Number of processes that ever write the datum.
  int writer_count = 0;
  /// Number of processes that ever read the datum.
  int reader_count = 0;
  /// The barrier phase carrying most of this datum's traffic.  The
  /// patterns above describe that phase — the non-concurrency analysis
  /// "determines the dominant sharing pattern in the program and
  /// restructures shared data for that pattern" (§3.1), which is what
  /// keeps initialization-phase writes from mis-shaping the decision.
  int dominant_phase = 0;
};

struct SharingReport {
  std::vector<DatumClass> data;

  const DatumClass* find(const DatumKey& k) const;
  std::string render() const;
};

/// Classify every accessed datum.
SharingReport classify_sharing(const ProgramSummary& summary);

/// The spatial-locality threshold: a section is considered to have spatial
/// locality if it sweeps at least this many consecutive elements.
inline constexpr i64 kLocalityRunLength = 4;

}  // namespace fsopt
