// Stage 1a: detection of process differentiating variables (PDVs).
//
// A PDV is a private variable whose value differs across processes and is
// invariant throughout each process's lifetime (§2).  `pid`, the parameter
// of main, is the canonical PDV; locals assigned once from a PDV-affine
// expression inherit PDV-ness; function formals are PDVs when every call
// site passes a PDV-affine actual whose pid coefficient is nonzero.
#pragma once

#include <set>

#include "cfg/callgraph.h"
#include "rsd/affine.h"

namespace fsopt {

struct PdvResult {
  /// main's pid parameter (null if the program has no valid main).
  const LocalSym* pid = nullptr;
  /// All locals (across all functions) that are PDVs, including `pid`.
  std::set<const LocalSym*> pdvs;

  bool is_pdv(const LocalSym* v) const { return pdvs.count(v) != 0; }
};

PdvResult analyze_pdvs(const Program& prog, const CallGraph& cg);

}  // namespace fsopt
