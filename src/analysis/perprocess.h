// Stage 1b: per-process control-flow analysis.
//
// Determines, for each statement of main, the set of processes that can
// execute it, by deciding branch conditions that are functions of the PDV
// (e.g. `if (pid == 0)`, `if (pid % 2 == 1)`).  Conditions that depend on
// shared data or unknown locals are undecidable: both branches are assumed
// executable by all incoming processes.
#pragma once

#include <map>

#include "analysis/pdv.h"
#include "analysis/pidset.h"
#include "cfg/cfg.h"

namespace fsopt {

/// Evaluate an int expression for a concrete pid value.  Locals are
/// resolved through `env` when provided (their affine form in terms of the
/// pid parameter), else only the pid parameter itself is known.  Returns
/// nullopt when the expression depends on globals, calls, or unknown
/// locals.
std::optional<i64> eval_for_pid(const Expr& e, const PdvResult& pdvs,
                                i64 pid_value,
                                const AffineEnv* env = nullptr);

/// The set of pids (out of `nprocs`) for which `cond` evaluates nonzero,
/// or nullopt when the condition is not pid-decidable.
std::optional<PidSet> pids_satisfying(const Expr& cond, const PdvResult& pdvs,
                                      i64 nprocs,
                                      const AffineEnv* env = nullptr);

/// Result of the per-process control-flow analysis over main.
struct PerProcessCf {
  /// For every statement (recursively) in main: which processes can reach
  /// and execute it.  Statements of other functions are not included (they
  /// execute on behalf of whichever processes reach their call sites).
  std::map<const Stmt*, PidSet> executed_by;
  /// Branches of main whose condition was pid-decidable.
  struct Divergence {
    const Stmt* stmt = nullptr;
    PidSet then_pids;
    PidSet else_pids;
  };
  std::vector<Divergence> divergences;

  PidSet pids_for(const Stmt& s, i64 nprocs) const {
    auto it = executed_by.find(&s);
    return it != executed_by.end() ? it->second : PidSet::all(nprocs);
  }
};

PerProcessCf analyze_per_process_cf(const Program& prog,
                                    const PdvResult& pdvs);

/// Annotate a CFG of main with the per-process execution sets: returns a
/// vector indexed by CFG node id.  Entry/exit and undecidable nodes carry
/// the full set.
std::vector<PidSet> annotate_cfg(const Cfg& cfg, const PerProcessCf& cf,
                                 i64 nprocs);

}  // namespace fsopt
