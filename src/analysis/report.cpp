#include "analysis/report.h"

#include <map>
#include <sstream>

namespace fsopt {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kNone: return "none";
    case Pattern::kPerProcess: return "per-process";
    case Pattern::kSharedLocal: return "shared+local";
    case Pattern::kSharedNonLocal: return "shared";
  }
  return "?";
}

const DatumClass* SharingReport::find(const DatumKey& k) const {
  for (const auto& d : data)
    if (d.datum == k) return &d;
  return nullptr;
}

namespace {

/// Pids to test pairwise for disjointness.  Exhaustive when small;
/// otherwise a deterministic sample that includes the edges and a few
/// interior values (catches mod-k partitionings up to k=8).
std::vector<i64> sample_pids(i64 nprocs) {
  std::vector<i64> out;
  if (nprocs <= 16) {
    for (i64 p = 0; p < nprocs; ++p) out.push_back(p);
    return out;
  }
  for (i64 p : {i64{0}, i64{1}, i64{2}, i64{3}, i64{5}, i64{8},
                nprocs / 2, nprocs - 2, nprocs - 1})
    if (p >= 0 && p < nprocs) out.push_back(p);
  return out;
}

struct DatumRecords {
  std::vector<const AccessRecord*> reads;
  std::vector<const AccessRecord*> writes;
  double read_weight = 0.0;
  double write_weight = 0.0;
  double lock_weight = 0.0;
  std::map<int, double> phase_weight;

  int dominant_phase() const {
    int best = 0;
    double bw = -1.0;
    for (const auto& [ph, w] : phase_weight) {
      if (w > bw) {
        bw = w;
        best = ph;
      }
    }
    return best;
  }
};

/// Records of the dominant phase only (all records if none match, which
/// cannot happen for a datum with any access).
std::vector<const AccessRecord*> in_phase(
    const std::vector<const AccessRecord*>& recs, int phase) {
  std::vector<const AccessRecord*> out;
  for (const AccessRecord* r : recs)
    if (r->phase == phase) out.push_back(r);
  return out;
}

/// Disjointness of a set of records across process pairs.
/// Returns true when for all p != q in the sample, the union of sections
/// accessed by p is disjoint from the union accessed by q.
bool per_process_disjoint(const std::vector<const AccessRecord*>& recs,
                          const ProgramSummary& sum, const DatumKey& key,
                          const std::vector<i64>& pids) {
  std::vector<i64> extents = sum.datum_extents(key);
  const LocalSym* pdv = sum.pdvs.pid;
  // Precompute boxes per (record, pid).
  std::map<std::pair<const AccessRecord*, i64>,
           std::vector<ConcreteRange>>
      boxes;
  for (const AccessRecord* r : recs)
    for (i64 p : pids)
      if (r->pids.test(p)) boxes[{r, p}] = r->rsd.concretize(pdv, p, extents);

  for (i64 p : pids) {
    for (i64 q : pids) {
      if (p >= q) continue;
      for (const AccessRecord* a : recs) {
        if (!a->pids.test(p)) continue;
        for (const AccessRecord* b : recs) {
          if (!b->pids.test(q)) continue;
          const auto& ba = boxes[{a, p}];
          const auto& bb = boxes[{b, q}];
          if (ba.empty()) return false;  // scalar: same location
          if (!boxes_disjoint(ba, bb)) return false;
        }
      }
    }
  }
  return true;
}

/// Try to attribute per-process disjointness to a single dimension: one
/// whose projections are pairwise disjoint across the sampled pids.
int find_pid_dim(const std::vector<const AccessRecord*>& recs,
                 const ProgramSummary& sum, const DatumKey& key,
                 const std::vector<i64>& pids) {
  std::vector<i64> extents = sum.datum_extents(key);
  if (extents.empty()) return -1;
  const LocalSym* pdv = sum.pdvs.pid;
  for (size_t d = 0; d < extents.size(); ++d) {
    bool ok = true;
    for (i64 p : pids) {
      for (i64 q : pids) {
        if (p >= q || !ok) continue;
        for (const AccessRecord* a : recs) {
          if (!a->pids.test(p) || !ok) continue;
          for (const AccessRecord* b : recs) {
            if (!b->pids.test(q)) continue;
            auto ba = a->rsd.concretize(pdv, p, extents);
            auto bb = b->rsd.concretize(pdv, q, extents);
            if (ranges_intersect(ba[d], bb[d])) {
              ok = false;
              break;
            }
          }
        }
      }
    }
    if (ok) return static_cast<int>(d);
  }
  return -1;
}

int count_participants(const std::vector<const AccessRecord*>& recs,
                       i64 nprocs) {
  PidSet u;
  for (const AccessRecord* r : recs) u = u | r->pids;
  return (u & PidSet::all(nprocs)).count();
}

/// Aggregate weight of a record: its per-process static-profile estimate
/// times the number of processes that execute it (per-process profiling,
/// §3.1).
double agg_weight(const AccessRecord& r, i64 nprocs) {
  int n = (r.pids & PidSet::all(nprocs)).count();
  return r.weight * static_cast<double>(std::max(n, 1));
}

/// Fraction of weight whose innermost dimension sweeps a unit-stride run.
double locality_fraction(const std::vector<const AccessRecord*>& recs,
                         i64 nprocs) {
  double total = 0.0;
  double local = 0.0;
  for (const AccessRecord* r : recs) {
    double w = agg_weight(*r, nprocs);
    total += w;
    if (r->rsd.rank() == 0) continue;  // scalar: no spatial reuse of its own
    if (r->rsd.dims().back().has_unit_stride_run(kLocalityRunLength))
      local += w;
  }
  return total > 0 ? local / total : 0.0;
}

}  // namespace

SharingReport classify_sharing(const ProgramSummary& sum) {
  std::map<DatumKey, DatumRecords> by_datum;
  for (const AccessRecord& r : sum.records) {
    DatumRecords& d = by_datum[r.datum];
    double w = agg_weight(r, sum.nprocs);
    if (r.is_lock_op) {
      d.lock_weight += w;
      continue;  // lock traffic is accounted separately; locks are always
                 // padded regardless of pattern (§3.2)
    }
    if (r.is_write) {
      d.writes.push_back(&r);
      d.write_weight += w;
    } else {
      d.reads.push_back(&r);
      d.read_weight += w;
    }
    d.phase_weight[r.phase] += w;
  }

  std::vector<i64> pids = sample_pids(sum.nprocs);

  SharingReport out;
  for (const auto& [key, recs] : by_datum) {
    DatumClass dc;
    dc.datum = key;
    dc.sym = sum.datum_sym(key);
    dc.name = sum.datum_name(key);
    dc.extents = sum.datum_extents(key);
    dc.is_lock = key.field < 0
                     ? dc.sym->is_lock()
                     : dc.sym->elem.is_struct &&
                           dc.sym->elem.strct->fields[static_cast<size_t>(
                                                          key.field)]
                                   .kind == ScalarKind::kLock;
    dc.read_weight = recs.read_weight;
    dc.write_weight = recs.write_weight;
    dc.lock_weight = recs.lock_weight;
    dc.dominant_phase = recs.dominant_phase();
    std::vector<const AccessRecord*> dwrites =
        in_phase(recs.writes, dc.dominant_phase);
    std::vector<const AccessRecord*> dreads =
        in_phase(recs.reads, dc.dominant_phase);
    dc.writer_count = count_participants(dwrites, sum.nprocs);
    dc.reader_count = count_participants(dreads, sum.nprocs);

    if (dwrites.empty()) {
      dc.writes = Pattern::kNone;
    } else if (dc.writer_count <= 1 ||
               per_process_disjoint(dwrites, sum, key, pids)) {
      dc.writes = Pattern::kPerProcess;
      dc.pid_dim = find_pid_dim(dwrites, sum, key, pids);
      if (dc.pid_dim >= 0 && key.field >= 0) {
        // Is the pid dim the field-array dim?  Field dim is the last one
        // when the field has an array length.
        const StructField& f =
            dc.sym->elem.strct->fields[static_cast<size_t>(key.field)];
        dc.pid_dim_is_field_dim =
            f.array_len > 0 &&
            dc.pid_dim == static_cast<int>(dc.extents.size()) - 1;
      }
    } else {
      dc.writes = locality_fraction(dwrites, sum.nprocs) >= 0.5
                      ? Pattern::kSharedLocal
                      : Pattern::kSharedNonLocal;
    }

    if (dreads.empty()) {
      dc.reads = Pattern::kNone;
    } else if (dc.reader_count <= 1 ||
               per_process_disjoint(dreads, sum, key, pids)) {
      dc.reads = Pattern::kPerProcess;
    } else {
      dc.reads = locality_fraction(dreads, sum.nprocs) >= 0.5
                     ? Pattern::kSharedLocal
                     : Pattern::kSharedNonLocal;
    }

    out.data.push_back(std::move(dc));
  }
  return out;
}

std::string SharingReport::render() const {
  std::ostringstream os;
  for (const auto& d : data) {
    os << d.name << ": writes=" << pattern_name(d.writes) << "("
       << d.write_weight << ", " << d.writer_count << " procs)"
       << " reads=" << pattern_name(d.reads) << "(" << d.read_weight << ", "
       << d.reader_count << " procs)";
    if (d.is_lock) os << " [lock, weight " << d.lock_weight << "]";
    if (d.pid_dim >= 0)
      os << " pid-dim=" << d.pid_dim
         << (d.pid_dim_is_field_dim ? " (field dim)" : "");
    os << "\n";
  }
  return os.str();
}

}  // namespace fsopt
