#include "analysis/diagnose.h"

#include <algorithm>
#include <cstdio>

#include "driver/experiment.h"
#include "support/json.h"

namespace fsopt {

namespace {

TransformKind transform_kind_from_name(const std::string& name) {
  for (TransformKind k :
       {TransformKind::kNone, TransformKind::kGroupTranspose,
        TransformKind::kIndirection, TransformKind::kPadAlign,
        TransformKind::kLockPad, TransformKind::kFieldReorder,
        TransformKind::kHotColdSplit, TransformKind::kIntraPad}) {
    if (name == transform_name(k)) return k;
  }
  throw InternalError("diagnosis: unknown transform kind '" + name + "'");
}

/// "g.f" -> "g" (symbol-level planner decisions cover every field).
std::string base_symbol(const std::string& name) {
  size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::string format_count(u64 n) { return std::to_string(n); }

}  // namespace

const char* transform_action(TransformKind k) {
  switch (k) {
    case TransformKind::kNone: return "none";
    case TransformKind::kPadAlign:
    case TransformKind::kLockPad: return "pad";
    case TransformKind::kFieldReorder:
    case TransformKind::kGroupTranspose: return "reorder";
    case TransformKind::kHotColdSplit:
    case TransformKind::kIndirection: return "split";
    case TransformKind::kIntraPad: return "stride";
  }
  return "none";
}

const DatumDiagnosis* DiagnosisReport::find(const std::string& name) const {
  for (const DatumDiagnosis& d : datums)
    if (d.name == name) return &d;
  return nullptr;
}

DiagnosisReport diagnose(const Compiled& c, std::string workload,
                         const DiagnoseOptions& opt) {
  DiagnosisReport rep;
  rep.workload = std::move(workload);
  rep.nprocs = c.nprocs();
  rep.block_size = opt.block_size;
  rep.l1_bytes = opt.l1_bytes;
  rep.planner = opt.planner;

  // One recording, one replay — with every collector attached: per-datum
  // attribution, the word-granularity conflict graph, and the pattern
  // summarizer all observe the same reference stream.
  AddressMap map = build_address_map(c);
  EncodedTrace trace = record_encoded_trace(c);
  rep.refs = trace.size();

  CacheParams params{c.nprocs(), opt.l1_bytes, opt.block_size,
                     c.code.total_bytes};
  CacheSim sim(params, &map);
  ConflictCollector conflicts;
  sim.set_conflict_collector(&conflicts);
  PatternCollector patterns(&map, params);
  sim.set_pattern_collector(&patterns);
  trace.replay_pipelined(sim);
  rep.totals = sim.stats();

  // Package the measurement as a one-configuration study so the repair
  // loop's profile distillers apply unchanged.
  TraceStudyResult study;
  study.refs = trace.size();
  study.by_block[opt.block_size] = sim.stats();
  study.by_datum[opt.block_size] = sim.by_datum();
  study.conflicts[opt.block_size] = conflicts.graph(opt.block_size);

  FalseSharingProfile fs_profile = build_fs_profile(study, opt.block_size);
  ConflictProfile conflict_profile =
      build_conflict_profile(study, opt.block_size, map);

  // What would the planner do?  Base the plan on the compile's own
  // transforms so already-applied repairs are visible (and not
  // re-recommended as heuristics against data they already fixed).
  std::unique_ptr<Planner> planner = make_planner(opt.planner);
  PlannerInputs inputs{c.report,        c.summary,
                       c.options.decision, opt.block_size,
                       &fs_profile,     &c.transforms,
                       &conflict_profile};
  TransformPlan plan = planner->plan(inputs);

  // Decision lookup by address-map spelling: field-specific names first
  // ("g.f"), symbol-level decisions under the bare symbol ("g").
  std::map<std::string, const TransformDecision*> by_name;
  for (const TransformDecision& d : plan.decisions) {
    std::string name = d.datum.sym == kBarrierSym
                           ? std::string(kBarrierName)
                           : c.summary.datum_name(d.datum);
    by_name.emplace(name, &d);
  }
  auto decision_for = [&](const std::string& name) -> const TransformDecision* {
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    it = by_name.find(base_symbol(name));
    return it != by_name.end() ? it->second : nullptr;
  };

  for (DatumPattern& p : patterns.patterns(opt.thresholds)) {
    DatumDiagnosis d;
    d.name = p.name;
    d.pattern = p.label;
    d.stats = p.stats;
    if (const ConflictProfile::Entry* e = conflict_profile.find(p.name))
      d.conflict_weight = e->weight;

    const u64 fs_misses = d.stats.false_sharing;
    const u64 misses = d.stats.misses();
    const double fs_frac =
        misses > 0 ? static_cast<double>(fs_misses) /
                         static_cast<double>(misses)
                   : 0.0;

    std::vector<Recommendation> recs;

    // Planner-backed recommendation first: the score offset guarantees a
    // real decision outranks every heuristic, so the report's headline
    // agrees with what the planner actually does.
    if (const TransformDecision* dec = decision_for(d.name);
        dec != nullptr && dec->kind != TransformKind::kNone) {
      Recommendation r;
      r.action = transform_action(dec->kind);
      r.kind = dec->kind;
      r.from_planner = true;
      r.score = 10.0 + fs_frac;
      r.why = std::string("planner '") + plan.planner + "' chose " +
              transform_name(dec->kind);
      if (dec->reason.code != ReasonCode::kNone)
        r.why += ": " + dec->reason.render();
      recs.push_back(std::move(r));
    }

    // Heuristic entries from the taxonomy label + attributed misses.
    switch (d.pattern) {
      case AccessPattern::kPingPong:
      case AccessPattern::kMigratory:
      case AccessPattern::kProducerConsumer:
        if (fs_misses > 0) {
          recs.push_back({"pad", TransformKind::kPadAlign, 1.0 + fs_frac,
                          false,
                          format_count(fs_misses) +
                              " false-sharing misses under a " +
                              pattern_name(d.pattern) +
                              " pattern: separate the contended data into "
                              "its own coherence unit"});
        }
        break;
      case AccessPattern::kStrided:
        if (fs_misses > 0) {
          recs.push_back({"stride", TransformKind::kIntraPad, 1.0 + fs_frac,
                          false,
                          "strided walk (dominant stride " +
                              std::to_string(p.dominant_stride) +
                              ") still takes " + format_count(fs_misses) +
                              " false-sharing misses: pad the element "
                              "stride up to the block size"});
        }
        break;
      default: break;
    }

    // Conflict-graph evidence: intra-datum edges name the exact words,
    // so the repair is within the datum — split fields apart, or pad the
    // stride for flat arrays.
    if (d.conflict_weight > 0) {
      bool is_field = d.name.find('.') != std::string::npos;
      double share =
          conflict_profile.total_weight > 0
              ? static_cast<double>(d.conflict_weight) /
                    static_cast<double>(conflict_profile.total_weight)
              : 0.0;
      recs.push_back({is_field ? "split" : "stride",
                      is_field ? TransformKind::kHotColdSplit
                               : TransformKind::kIntraPad,
                      0.5 + share, false,
                      "intra-datum conflict edges of weight " +
                          format_count(d.conflict_weight) +
                          " pinpoint words falsely shared within this "
                          "datum"});
    }

    if (recs.empty()) {
      recs.push_back({"none", TransformKind::kNone, 0.0, false,
                      fs_misses == 0
                          ? std::string("no false-sharing misses attributed")
                          : "no actionable pattern identified"});
    }

    // Rank, then keep the strongest entry per action (stable sort keeps
    // insertion order — planner first — on score ties).
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Recommendation& a, const Recommendation& b) {
                       return a.score > b.score;
                     });
    std::vector<Recommendation> deduped;
    for (Recommendation& r : recs) {
      bool dup = false;
      for (const Recommendation& kept : deduped)
        if (kept.action == r.action) dup = true;
      if (!dup) deduped.push_back(std::move(r));
    }
    d.recommendations = std::move(deduped);
    d.evidence = std::move(p);
    rep.datums.push_back(std::move(d));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

namespace {

void write_stats(json::Writer& w, const MissStats& s) {
  w.begin_object();
  w.key("refs").value(s.refs);
  w.key("hits").value(s.hits);
  w.key("cold").value(s.cold);
  w.key("replacement").value(s.replacement);
  w.key("true_sharing").value(s.true_sharing);
  w.key("false_sharing").value(s.false_sharing);
  w.key("upgrades").value(s.upgrades);
  w.key("invalidations").value(s.invalidations);
  w.end_object();
}

const json::Value& require(const json::Value& obj, const char* key) {
  FSOPT_CHECK(obj.is_object(), "diagnosis JSON: expected an object");
  const json::Value* v = obj.get(key);
  FSOPT_CHECK(v != nullptr,
              std::string("diagnosis JSON: missing key '") + key + "'");
  return *v;
}

u64 get_u64(const json::Value& obj, const char* key) {
  const json::Value& v = require(obj, key);
  FSOPT_CHECK(v.is_number(), std::string("diagnosis JSON: '") + key +
                                 "' must be a number");
  return static_cast<u64>(v.as_number());
}

double get_double(const json::Value& obj, const char* key) {
  const json::Value& v = require(obj, key);
  FSOPT_CHECK(v.is_number(), std::string("diagnosis JSON: '") + key +
                                 "' must be a number");
  return v.as_number();
}

std::string get_string(const json::Value& obj, const char* key) {
  const json::Value& v = require(obj, key);
  FSOPT_CHECK(v.is_string(), std::string("diagnosis JSON: '") + key +
                                 "' must be a string");
  return v.as_string();
}

MissStats read_stats(const json::Value& obj) {
  MissStats s;
  s.refs = get_u64(obj, "refs");
  s.hits = get_u64(obj, "hits");
  s.cold = get_u64(obj, "cold");
  s.replacement = get_u64(obj, "replacement");
  s.true_sharing = get_u64(obj, "true_sharing");
  s.false_sharing = get_u64(obj, "false_sharing");
  s.upgrades = get_u64(obj, "upgrades");
  s.invalidations = get_u64(obj, "invalidations");
  return s;
}

}  // namespace

std::string diagnosis_to_json(const DiagnosisReport& report, int indent) {
  std::string out;
  json::Writer w(&out, indent);
  w.begin_object();
  w.key("diagnosis_version").value(1);
  w.key("workload").value(report.workload);
  w.key("nprocs").value(report.nprocs);
  w.key("block_size").value(report.block_size);
  w.key("l1_bytes").value(report.l1_bytes);
  w.key("refs").value(report.refs);
  w.key("planner").value(report.planner);
  w.key("totals");
  write_stats(w, report.totals);
  w.key("datums").begin_array();
  for (const DatumDiagnosis& d : report.datums) {
    w.begin_object();
    w.key("name").value(d.name);
    w.key("pattern").value(pattern_name(d.pattern));
    w.key("conflict_weight").value(d.conflict_weight);
    w.key("stats");
    write_stats(w, d.stats);
    const DatumPattern& e = d.evidence;
    w.key("evidence").begin_object();
    w.key("reads").value(e.reads);
    w.key("writes").value(e.writes);
    w.key("readers").value(e.readers);
    w.key("writers").value(e.writers);
    w.key("dominant_stride").value(e.dominant_stride);
    w.key("stride_share").value(e.stride_share);
    w.key("handoffs").value(e.handoffs);
    w.key("mean_run").value(e.mean_run);
    w.key("pingpong_share").value(e.pingpong_share);
    w.key("footprint").value(e.footprint);
    // Reuse sketch trimmed to the last occupied bucket (trimming is
    // idempotent, so the JSON round trip stays byte-exact).
    size_t last = 0;
    for (size_t i = 0; i < e.reuse.size(); ++i)
      if (e.reuse[i] != 0) last = i + 1;
    w.key("reuse").begin_array();
    for (size_t i = 0; i < last; ++i) w.value(e.reuse[i]);
    w.end_array();
    w.end_object();
    w.key("recommendations").begin_array();
    for (const Recommendation& r : d.recommendations) {
      w.begin_object();
      w.key("action").value(r.action);
      w.key("transform").value(transform_name(r.kind));
      w.key("score").value(r.score);
      w.key("from_planner").value(r.from_planner);
      w.key("why").value(r.why);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

DiagnosisReport diagnosis_from_json(std::string_view json) {
  std::optional<json::Value> doc = json::parse(json);
  FSOPT_CHECK(doc.has_value(), "diagnosis JSON: malformed document");
  const json::Value& root = *doc;
  FSOPT_CHECK(get_u64(root, "diagnosis_version") == 1,
              "diagnosis JSON: unsupported diagnosis_version");

  DiagnosisReport rep;
  rep.workload = get_string(root, "workload");
  rep.nprocs = static_cast<i64>(get_u64(root, "nprocs"));
  rep.block_size = static_cast<i64>(get_u64(root, "block_size"));
  rep.l1_bytes = static_cast<i64>(get_u64(root, "l1_bytes"));
  rep.refs = get_u64(root, "refs");
  rep.planner = get_string(root, "planner");
  rep.totals = read_stats(require(root, "totals"));

  const json::Value& datums = require(root, "datums");
  FSOPT_CHECK(datums.is_array(), "diagnosis JSON: 'datums' must be an array");
  for (const json::Value& dv : datums.items()) {
    DatumDiagnosis d;
    d.name = get_string(dv, "name");
    d.pattern = pattern_from_name(get_string(dv, "pattern"));
    d.conflict_weight = get_u64(dv, "conflict_weight");
    d.stats = read_stats(require(dv, "stats"));

    const json::Value& ev = require(dv, "evidence");
    d.evidence.name = d.name;
    d.evidence.label = d.pattern;
    d.evidence.reads = get_u64(ev, "reads");
    d.evidence.writes = get_u64(ev, "writes");
    d.evidence.readers = static_cast<int>(get_u64(ev, "readers"));
    d.evidence.writers = static_cast<int>(get_u64(ev, "writers"));
    d.evidence.dominant_stride =
        static_cast<i64>(get_double(ev, "dominant_stride"));
    d.evidence.stride_share = get_double(ev, "stride_share");
    d.evidence.handoffs = get_u64(ev, "handoffs");
    d.evidence.mean_run = get_double(ev, "mean_run");
    d.evidence.pingpong_share = get_double(ev, "pingpong_share");
    d.evidence.footprint = static_cast<i64>(get_double(ev, "footprint"));
    const json::Value& reuse = require(ev, "reuse");
    FSOPT_CHECK(reuse.is_array(),
                "diagnosis JSON: 'reuse' must be an array");
    for (const json::Value& b : reuse.items())
      d.evidence.reuse.push_back(static_cast<u64>(b.as_number()));
    d.evidence.stats = d.stats;

    const json::Value& recs = require(dv, "recommendations");
    FSOPT_CHECK(recs.is_array(),
                "diagnosis JSON: 'recommendations' must be an array");
    for (const json::Value& rv : recs.items()) {
      Recommendation r;
      r.action = get_string(rv, "action");
      r.kind = transform_kind_from_name(get_string(rv, "transform"));
      r.score = get_double(rv, "score");
      const json::Value& fp = require(rv, "from_planner");
      FSOPT_CHECK(fp.is_bool(),
                  "diagnosis JSON: 'from_planner' must be a bool");
      r.from_planner = fp.as_bool();
      r.why = get_string(rv, "why");
      d.recommendations.push_back(std::move(r));
    }
    FSOPT_CHECK(!d.recommendations.empty(),
                "diagnosis JSON: datum '" + d.name +
                    "' has no recommendations");
    rep.datums.push_back(std::move(d));
  }
  return rep;
}

std::string render_diagnosis(const DiagnosisReport& report) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Diagnosis: %s  (%lld procs, block %lld, L1 %lld bytes, "
                "planner %s)\n",
                report.workload.c_str(),
                static_cast<long long>(report.nprocs),
                static_cast<long long>(report.block_size),
                static_cast<long long>(report.l1_bytes),
                report.planner.c_str());
  out += buf;
  const MissStats& t = report.totals;
  std::snprintf(buf, sizeof(buf),
                "  %llu refs, %llu misses (fs %llu, ts %llu, cold %llu, "
                "repl %llu)\n",
                static_cast<unsigned long long>(t.refs),
                static_cast<unsigned long long>(t.misses()),
                static_cast<unsigned long long>(t.false_sharing),
                static_cast<unsigned long long>(t.true_sharing),
                static_cast<unsigned long long>(t.cold),
                static_cast<unsigned long long>(t.replacement));
  out += buf;
  for (const DatumDiagnosis& d : report.datums) {
    std::snprintf(buf, sizeof(buf),
                  "\n  %-20s [%s]  fs=%llu/%llu misses  conflict-weight=%llu\n",
                  d.name.c_str(), pattern_name(d.pattern),
                  static_cast<unsigned long long>(d.stats.false_sharing),
                  static_cast<unsigned long long>(d.stats.misses()),
                  static_cast<unsigned long long>(d.conflict_weight));
    out += buf;
    for (const Recommendation& r : d.recommendations) {
      std::snprintf(buf, sizeof(buf), "    -> %-7s %s%s\n      %s\n",
                    r.action.c_str(), transform_name(r.kind),
                    r.from_planner ? "  (planner-backed)" : "",
                    r.why.c_str());
      out += buf;
    }
  }
  return out;
}

}  // namespace fsopt
