#include "analysis/pdv.h"

#include <map>

namespace fsopt {

namespace {

/// True if `e` is affine over the current PDV set with a nonzero pid-varying
/// component (i.e., the value differs across processes), or is a constant.
/// Returns: 0 = not PDV-affine, 1 = constant, 2 = pid-varying PDV-affine.
int classify_expr(const Expr& e, const std::set<const LocalSym*>& pdvs) {
  AffineEnv env;
  for (const LocalSym* v : pdvs) env.make_opaque(v);
  Affine a = affine_of(e, env);
  if (!a.valid()) return 0;
  if (a.is_constant()) return 1;
  return 2;
}

}  // namespace

PdvResult analyze_pdvs(const Program& prog, const CallGraph& cg) {
  PdvResult out;
  if (prog.main == nullptr || prog.main->params.empty()) return out;
  out.pid = prog.main->params[0];
  out.pdvs.insert(out.pid);

  // Iterate to a fixpoint: PDV-ness can flow main -> callees (formals) and
  // through locals assigned from PDVs.
  bool changed = true;
  while (changed) {
    changed = false;

    // Locals: exactly one static assignment (or a decl initializer) whose
    // rhs is PDV-affine and pid-varying.
    for (const auto& fn : prog.funcs) {
      if (!fn->body) continue;
      std::map<const LocalSym*, int> assign_count;
      std::map<const LocalSym*, const Expr*> sole_rhs;
      for_each_stmt(*fn->body, [&](const Stmt& s) {
        const LocalSym* target = nullptr;
        const Expr* rhs = nullptr;
        if (s.kind == StmtKind::kLocalDecl && s.init != nullptr) {
          target = s.local;
          rhs = s.init.get();
        } else if (s.kind == StmtKind::kAssign &&
                   s.target->kind == ExprKind::kVar &&
                   s.target->local != nullptr) {
          target = s.target->local;
          rhs = s.value.get();
        }
        if (target == nullptr) return;
        int n = ++assign_count[target];
        sole_rhs[target] = n == 1 ? rhs : nullptr;
      });
      for (const auto& [local, n] : assign_count) {
        if (n != 1 || sole_rhs[local] == nullptr) continue;
        if (out.pdvs.count(local) != 0) continue;
        if (classify_expr(*sole_rhs[local], out.pdvs) == 2) {
          out.pdvs.insert(local);
          changed = true;
        }
      }
    }

    // Formals: every call site passes a pid-varying PDV-affine actual.
    for (const auto& fn : prog.funcs) {
      for (size_t pi = 0; pi < fn->params.size(); ++pi) {
        const LocalSym* formal = fn->params[pi];
        if (fn.get() == prog.main) continue;
        if (out.pdvs.count(formal) != 0) continue;
        bool all_pdv = true;
        bool any_site = false;
        for (const CallSite& site : cg.sites()) {
          if (site.callee != fn.get()) continue;
          any_site = true;
          if (pi >= site.call->children.size() ||
              classify_expr(*site.call->children[pi], out.pdvs) != 2) {
            all_pdv = false;
            break;
          }
        }
        if (any_site && all_pdv) {
          out.pdvs.insert(formal);
          changed = true;
        }
      }
    }
  }
  return out;
}

}  // namespace fsopt
