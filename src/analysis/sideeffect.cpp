#include "analysis/sideeffect.h"

#include <set>

#include "cfg/callgraph.h"

namespace fsopt {

std::vector<i64> ProgramSummary::datum_extents(const DatumKey& k) const {
  const GlobalSym* g = datum_sym(k);
  std::vector<i64> ext(g->dims.begin(), g->dims.end());
  if (k.field >= 0) {
    const StructField& f =
        g->elem.strct->fields[static_cast<size_t>(k.field)];
    if (f.array_len > 0) ext.push_back(f.array_len);
  }
  return ext;
}

const GlobalSym* ProgramSummary::datum_sym(const DatumKey& k) const {
  FSOPT_CHECK(k.sym >= 0 &&
                  static_cast<size_t>(k.sym) < prog->globals.size(),
              "bad datum key");
  return prog->globals[static_cast<size_t>(k.sym)].get();
}

std::string ProgramSummary::datum_name(const DatumKey& k) const {
  if (k.sym == kBarrierSym) return kBarrierName;
  const GlobalSym* g = datum_sym(k);
  if (k.field < 0) return g->name;
  return g->name + "." +
         g->elem.strct->fields[static_cast<size_t>(k.field)].name;
}

namespace {

/// Collect all locals assigned anywhere within a statement subtree.
std::set<const LocalSym*> assigned_locals(const Stmt& s) {
  std::set<const LocalSym*> out;
  for_each_stmt(s, [&](const Stmt& st) {
    if (st.kind == StmtKind::kAssign && st.target->kind == ExprKind::kVar &&
        st.target->local != nullptr)
      out.insert(st.target->local);
    if (st.kind == StmtKind::kLocalDecl && st.local != nullptr)
      out.insert(st.local);
  });
  return out;
}

class SummaryWalker {
 public:
  SummaryWalker(const Program& prog, const PdvResult& pdvs,
                const PhaseInfo* phases,
                const std::vector<FuncSummary>& summaries, const FuncDecl& fn)
      : prog_(prog),
        pdvs_(pdvs),
        phases_(phases),
        summaries_(summaries),
        fn_(fn) {
    pids_ = PidSet::all(prog.nprocs);
    for (const LocalSym* p : fn.params) env_.make_opaque(p);
  }

  FuncSummary run() {
    if (fn_.body != nullptr) walk_stmt(*fn_.body);
    return std::move(out_);
  }

 private:
  bool in_main() const { return &fn_ == prog_.main; }

  Rsd rsd_of(const GlobalAccess& acc) {
    std::vector<DimSec> dims;
    dims.reserve(acc.dims.size());
    for (const auto& d : acc.dims)
      dims.push_back(DimSec::invariant(affine_of(*d.index, env_)));
    return Rsd(std::move(dims));
  }

  void record(const GlobalAccess& acc, bool is_write, bool is_lock_op,
              SourceLoc loc) {
    AccessRecord r;
    r.datum = {acc.sym->id, acc.field};
    r.is_write = is_write;
    r.is_lock_op = is_lock_op;
    r.rsd = rsd_of(acc);
    r.weight = weight_;
    r.pids = pids_;
    r.phase = phase_;
    r.loc = loc;
    out_.records.push_back(std::move(r));
  }

  /// Record the reads performed while evaluating `e` (including index
  /// expressions and lvalue loads), and translate any calls.
  void walk_reads(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kRealLit:
        return;
      case ExprKind::kVar:
      case ExprKind::kIndex:
      case ExprKind::kField: {
        auto acc = resolve_global_access(e);
        if (acc.has_value()) {
          // Index expressions are evaluated too.
          for (const auto& d : acc->dims) walk_reads(*d.index);
          record(*acc, /*is_write=*/false, /*is_lock_op=*/false, e.loc);
        }
        return;
      }
      case ExprKind::kUnary:
        walk_reads(*e.children[0]);
        return;
      case ExprKind::kBinary:
        walk_reads(*e.children[0]);
        walk_reads(*e.children[1]);
        return;
      case ExprKind::kCall:
        for (const auto& a : e.children) walk_reads(*a);
        if (e.callee != nullptr) translate_call(e);
        return;
    }
  }

  void translate_call(const Expr& call) {
    const FuncDecl& callee = *call.callee;
    const FuncSummary& cs = summaries_[static_cast<size_t>(callee.id)];
    // Affine forms of the actuals, in caller terms.
    std::vector<Affine> actuals;
    actuals.reserve(callee.params.size());
    for (size_t i = 0; i < callee.params.size(); ++i)
      actuals.push_back(affine_of(*call.children[i], env_));
    for (const AccessRecord& r : cs.records) {
      AccessRecord t = r;
      for (size_t i = 0; i < callee.params.size(); ++i)
        t.rsd = t.rsd.subst(callee.params[i], actuals[i]);
      t.weight *= weight_;
      t.pids = pids_;
      t.phase = phase_;
      out_.records.push_back(std::move(t));
    }
  }

  void walk_assign(const Stmt& s) {
    walk_reads(*s.value);
    auto acc = resolve_global_access(*s.target);
    if (acc.has_value()) {
      for (const auto& d : acc->dims) walk_reads(*d.index);
      record(*acc, /*is_write=*/true, /*is_lock_op=*/false, s.loc);
      return;
    }
    // Local assignment: update the affine environment.
    const LocalSym* local = s.target->local;
    FSOPT_CHECK(local != nullptr, "assign target neither global nor local");
    env_.bind(local, affine_of(*s.value, env_));
  }

  void invalidate(const std::set<const LocalSym*>& vars) {
    for (const LocalSym* v : vars) env_.bind(v, Affine::invalid());
  }

  /// Close all records created since `start` over loop variable `iv`.
  void close_records(size_t start, const LocalSym* iv, const Affine& lo,
                     const Affine& hi, i64 step) {
    for (size_t i = start; i < out_.records.size(); ++i)
      out_.records[i].rsd =
          out_.records[i].rsd.close_loop(iv, lo, hi, step);
  }

  void walk_for(const Stmt& s) {
    // init
    walk_stmt(*s.init_stmt);
    const LocalSym* iv = nullptr;
    if (s.init_stmt->target->kind == ExprKind::kVar)
      iv = s.init_stmt->target->local;

    Affine lo = iv != nullptr ? env_.value_of(iv) : Affine::invalid();

    // Step: expect `iv = iv + c` / `iv = iv - c`.
    i64 step = 0;
    if (iv != nullptr && s.step_stmt->target->kind == ExprKind::kVar &&
        s.step_stmt->target->local == iv) {
      AffineEnv tmp;
      tmp.make_opaque(iv);
      Affine st = affine_of(*s.step_stmt->value, tmp);
      if (st.valid() && st.coeff(iv) == 1 && st.num_vars() == 1)
        step = st.const_term();
    }

    // Bound: expect `iv < hi`, `iv <= hi`, `iv > hi`, `iv >= hi` (or the
    // mirrored forms) with an affine bound.
    Affine hi_eff = Affine::invalid();
    if (iv != nullptr && s.cond->kind == ExprKind::kBinary) {
      const Expr& c = *s.cond;
      const Expr* lhs = c.children[0].get();
      const Expr* rhs = c.children[1].get();
      bool iv_left = lhs->kind == ExprKind::kVar && lhs->local == iv;
      bool iv_right = rhs->kind == ExprKind::kVar && rhs->local == iv;
      if (iv_left || iv_right) {
        Affine bound = affine_of(iv_left ? *rhs : *lhs, env_);
        BinOp op = c.bin_op;
        if (iv_right) {  // mirror: k > iv  ==  iv < k
          switch (op) {
            case BinOp::kLt: op = BinOp::kGt; break;
            case BinOp::kLe: op = BinOp::kGe; break;
            case BinOp::kGt: op = BinOp::kLt; break;
            case BinOp::kGe: op = BinOp::kLe; break;
            default: break;
          }
        }
        if (bound.valid()) {
          if (step > 0 && op == BinOp::kLt)
            hi_eff = bound - Affine::constant(1);
          else if (step > 0 && op == BinOp::kLe)
            hi_eff = bound;
          else if (step < 0 && op == BinOp::kGt)
            hi_eff = bound + Affine::constant(1);
          else if (step < 0 && op == BinOp::kGe)
            hi_eff = bound;
        }
      }
    }

    bool affine_loop =
        iv != nullptr && lo.valid() && hi_eff.valid() && step != 0;
    // Known step but unknown bounds (e.g. `for (i = start; ...)` with a
    // start loaded from shared memory): the section swept is a
    // strided-unknown range — stride information survives (Topopt's
    // revolving partitions, §5).
    bool strided_loop = iv != nullptr && step != 0 && !affine_loop;

    // Trip-count estimate for static profiling.  A span that depends only
    // on the PDV (e.g. `for (i = pid; i < N; i += nprocs)`) is estimated
    // at pid = 0 — the per-process share of the iteration space.
    double trips = kUnknownForTrips;
    if (affine_loop) {
      Affine span = step > 0 ? hi_eff - lo : lo - hi_eff;
      std::optional<i64> n;
      if (span.is_constant()) {
        n = span.constant_value();
      } else if (pdvs_.pid != nullptr) {
        n = span.eval_with(pdvs_.pid, 0);
      }
      if (n.has_value())
        trips = static_cast<double>(
            std::max<i64>(*n / std::abs(step) + 1, 0));
    }

    // Reads performed by the condition and step, once per iteration.
    double saved_weight = weight_;
    weight_ *= std::max(trips, 1.0);
    walk_reads(*s.cond);

    // Widen locals assigned in the body before walking it.
    auto killed = assigned_locals(*s.body);
    killed.erase(iv);
    invalidate(killed);

    size_t start = out_.records.size();
    if (affine_loop || strided_loop) {
      env_.make_opaque(iv);
    } else if (iv != nullptr) {
      env_.bind(iv, Affine::invalid());
    }
    walk_stmt(*s.body);
    walk_reads(*s.step_stmt->value);
    weight_ = saved_weight;

    if (affine_loop) {
      Affine close_lo = step > 0 ? lo : hi_eff;
      Affine close_hi = step > 0 ? hi_eff : lo;
      close_records(start, iv, close_lo, close_hi, std::abs(step));
    } else if (strided_loop) {
      close_records(start, iv, Affine::invalid(), Affine::invalid(),
                    std::abs(step));
    }
    // After the loop the induction variable's value is iteration-dependent.
    if (iv != nullptr) env_.bind(iv, Affine::invalid());
    invalidate(killed);
  }

  void walk_stmt(const Stmt& s) {
    if (in_main() && phases_ != nullptr) {
      auto it = phases_->stmt_phase.find(&s);
      if (it != phases_->stmt_phase.end()) phase_ = it->second;
    }
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& c : s.stmts) walk_stmt(*c);
        return;
      case StmtKind::kLocalDecl:
        if (s.init != nullptr) {
          walk_reads(*s.init);
          env_.bind(s.local, affine_of(*s.init, env_));
        } else {
          env_.bind(s.local, Affine::invalid());
        }
        return;
      case StmtKind::kAssign:
        walk_assign(s);
        return;
      case StmtKind::kIf: {
        walk_reads(*s.cond);
        std::optional<PidSet> sat;
        if (in_main())
          sat = pids_satisfying(*s.cond, pdvs_, prog_.nprocs, &env_);
        AffineEnv env_then = env_;
        AffineEnv env_else = env_;
        PidSet saved_pids = pids_;
        double saved_weight = weight_;
        if (sat.has_value()) {
          // Decidable divergence: each process deterministically takes one
          // side; weights are unchanged, pid guards narrow.
          pids_ = saved_pids & *sat;
          if (!pids_.empty()) {
            std::swap(env_, env_then);
            walk_stmt(*s.then_block);
            std::swap(env_, env_then);
          }
          if (s.else_block != nullptr) {
            pids_ = saved_pids & sat->complement(prog_.nprocs);
            if (!pids_.empty()) {
              std::swap(env_, env_else);
              walk_stmt(*s.else_block);
              std::swap(env_, env_else);
            }
          }
        } else {
          weight_ = saved_weight * kUnknownBranchProb;
          std::swap(env_, env_then);
          walk_stmt(*s.then_block);
          std::swap(env_, env_then);
          if (s.else_block != nullptr) {
            std::swap(env_, env_else);
            walk_stmt(*s.else_block);
            std::swap(env_, env_else);
          }
        }
        pids_ = saved_pids;
        weight_ = saved_weight;
        env_ = env_then;
        env_.join(env_else);
        return;
      }
      case StmtKind::kWhile: {
        auto killed = assigned_locals(*s.body);
        invalidate(killed);
        double saved_weight = weight_;
        weight_ *= kUnknownWhileTrips;
        walk_reads(*s.cond);
        walk_stmt(*s.body);
        weight_ = saved_weight;
        invalidate(killed);
        return;
      }
      case StmtKind::kFor:
        walk_for(s);
        return;
      case StmtKind::kExpr:
        walk_reads(*s.value);
        return;
      case StmtKind::kReturn:
        if (s.value != nullptr) walk_reads(*s.value);
        return;
      case StmtKind::kBarrier:
        if (in_main() && phases_ != nullptr) {
          auto it = phases_->phase_after_barrier.find(&s);
          if (it != phases_->phase_after_barrier.end()) phase_ = it->second;
        }
        return;
      case StmtKind::kLock:
      case StmtKind::kUnlock: {
        auto acc = resolve_global_access(*s.target);
        FSOPT_CHECK(acc.has_value(), "lock operand must be a shared lock");
        for (const auto& d : acc->dims) walk_reads(*d.index);
        // A lock operation both reads and writes the lock word.
        record(*acc, /*is_write=*/false, /*is_lock_op=*/true, s.loc);
        record(*acc, /*is_write=*/true, /*is_lock_op=*/true, s.loc);
        return;
      }
    }
  }

  const Program& prog_;
  const PdvResult& pdvs_;
  const PhaseInfo* phases_;
  const std::vector<FuncSummary>& summaries_;
  const FuncDecl& fn_;
  FuncSummary out_;
  AffineEnv env_;
  double weight_ = 1.0;
  PidSet pids_;
  int phase_ = 0;
};

}  // namespace

void summarize_side_effects(const CallGraph& cg, ProgramSummary& out) {
  FSOPT_CHECK(out.prog != nullptr, "summarize_side_effects before stages 1-2");
  const Program& prog = *out.prog;
  out.func_summaries.assign(prog.funcs.size(), FuncSummary{});
  for (const FuncDecl* fn : cg.bottom_up()) {
    if (fn == prog.main) continue;
    SummaryWalker w(prog, out.pdvs, nullptr, out.func_summaries, *fn);
    out.func_summaries[static_cast<size_t>(fn->id)] = w.run();
  }
  if (prog.main != nullptr) {
    SummaryWalker w(prog, out.pdvs, &out.phases, out.func_summaries,
                    *prog.main);
    FuncSummary ms = w.run();
    out.func_summaries[static_cast<size_t>(prog.main->id)] = ms;
    out.records = std::move(ms.records);
  }
}

ProgramSummary analyze_program(const Program& prog) {
  ProgramSummary out;
  out.prog = &prog;
  out.nprocs = prog.nprocs;
  CallGraph cg(prog);
  out.pdvs = analyze_pdvs(prog, cg);
  out.phases = analyze_phases(prog);
  out.percf = analyze_per_process_cf(prog, out.pdvs);
  summarize_side_effects(cg, out);
  return out;
}

}  // namespace fsopt
