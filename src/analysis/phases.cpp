#include "analysis/phases.h"

#include <algorithm>

namespace fsopt {

namespace {

class PhaseWalker {
 public:
  explicit PhaseWalker(PhaseInfo& out) : out_(out) {}

  // Returns the phase current after executing `s` starting in phase `cur`.
  int walk(const Stmt& s, int cur, int if_depth) {
    out_.stmt_phase[&s] = cur;
    switch (s.kind) {
      case StmtKind::kBlock: {
        for (const auto& c : s.stmts) cur = walk(*c, cur, if_depth);
        return cur;
      }
      case StmtKind::kBarrier: {
        int next = out_.phase_count++;
        out_.phase_after_barrier[&s] = next;
        out_.edges.push_back({cur, next});
        if (if_depth > 0) out_.suspicious_barriers.push_back(&s);
        return next;
      }
      case StmtKind::kIf: {
        int t = walk(*s.then_block, cur, if_depth + 1);
        int e = s.else_block ? walk(*s.else_block, cur, if_depth + 1) : cur;
        // If a branch advanced the phase, the merged continuation runs in
        // the latest phase reached (conservative).
        return std::max(t, e);
      }
      case StmtKind::kWhile: {
        int end = walk(*s.body, cur, if_depth);
        if (end != cur) out_.edges.push_back({end, cur});  // loop back edge
        return end;
      }
      case StmtKind::kFor: {
        out_.stmt_phase[s.init_stmt.get()] = cur;
        int end = walk(*s.body, cur, if_depth);
        out_.stmt_phase[s.step_stmt.get()] = end;
        if (end != cur) out_.edges.push_back({end, cur});
        return end;
      }
      default:
        return cur;
    }
  }

 private:
  PhaseInfo& out_;
};

}  // namespace

PhaseInfo analyze_phases(const Program& prog) {
  PhaseInfo out;
  if (prog.main == nullptr || prog.main->body == nullptr) return out;
  PhaseWalker w(out);
  w.walk(*prog.main->body, 0, 0);
  return out;
}

}  // namespace fsopt
