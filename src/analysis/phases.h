// Stage 2: non-concurrency analysis.
//
// Barriers partition main into phases that cannot execute concurrently
// (Masticola/Ryder-style non-concurrency, specialized to the global-barrier
// discipline of §2).  Each statement of main is assigned the phase it
// executes in on the first pass through the code; a loop whose body
// contains barriers contributes a back edge in the phase graph (its header
// statements execute in the last intra-loop phase on later iterations —
// the standard first-iteration approximation).
#pragma once

#include <map>
#include <vector>

#include "lang/ast.h"

namespace fsopt {

struct PhaseInfo {
  /// Number of phases (number of barrier sites in main + 1).
  int phase_count = 1;
  /// Phase entered *after* each barrier statement.
  std::map<const Stmt*, int> phase_after_barrier;
  /// Phase each statement of main executes in (first-iteration assignment).
  std::map<const Stmt*, int> stmt_phase;
  /// Phase-graph edges, including loop back edges (from, to).
  std::vector<std::pair<int, int>> edges;
  /// Barriers found in divergent positions (inside if/else); the
  /// non-concurrency result is conservative around them.
  std::vector<const Stmt*> suspicious_barriers;

  int phase_of(const Stmt& s) const {
    auto it = stmt_phase.find(&s);
    return it != stmt_phase.end() ? it->second : 0;
  }
};

PhaseInfo analyze_phases(const Program& prog);

}  // namespace fsopt
