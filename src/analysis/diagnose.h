// Per-datum diagnosis: one machine-readable report that merges everything
// the tree knows about a datum's sharing behavior —
//
//   * the simulator's miss-class breakdown (sim/cache.h MissStats),
//   * the access-pattern taxonomy label and its evidence (sim/patterns.h),
//   * the intra-datum conflict-graph weight (sim/attribution.h),
//   * and what a planner would *do* about it (transform/planner.h),
//
// distilled into a ranked recommendation per datum (pad / reorder /
// split / stride / none), each with the evidence it rests on.  The report
// round-trips through JSON (diagnosis_to_json / diagnosis_from_json) so
// `fsoptc --diagnose=json` output can be archived, diffed
// (tools/fsopt_diff) and consumed by CI.
//
// This is a *diagnosis*, not a plan: recommendations name transformation
// categories, and when one is backed by an actual planner decision it
// says so (`from_planner`) and outranks the heuristic entries — so on
// workloads the planner repairs (maxflow, raytrace), the top
// recommendation and the planner's chosen transform agree by
// construction.
#pragma once

#include "driver/compiler.h"
#include "sim/patterns.h"

namespace fsopt {

/// One ranked suggestion for a datum.  `action` is the category the
/// report's consumers key on; `kind` pins the exact transform when the
/// suggestion is backed by a planner decision.
struct Recommendation {
  std::string action;  // "pad" | "reorder" | "split" | "stride" | "none"
  TransformKind kind = TransformKind::kNone;
  double score = 0.0;  // ranking key, larger is stronger
  bool from_planner = false;
  std::string why;  // human-readable evidence

  bool operator==(const Recommendation&) const = default;
};

/// The transformation category a transform kind falls into (the `action`
/// vocabulary above; kNone maps to "none").
const char* transform_action(TransformKind k);

struct DatumDiagnosis {
  std::string name;  // address-map spelling ("g", "g.f", "<barrier>")
  AccessPattern pattern = AccessPattern::kNone;
  MissStats stats;          // attributed outcomes
  u64 conflict_weight = 0;  // intra-datum conflict-graph edge weight
  /// The classifier evidence behind `pattern` (stats inside mirrors the
  /// attributed stats above).
  DatumPattern evidence;
  /// Ranked, strongest first; never empty (weakest case is one "none").
  std::vector<Recommendation> recommendations;

  const Recommendation& top() const { return recommendations.front(); }
};

struct DiagnoseOptions {
  /// Coherence-unit size of the diagnostic replay (and of the consulted
  /// planner's plan).
  i64 block_size = 128;
  i64 l1_bytes = 32 * 1024;
  /// Which planner's judgement backs the planner-sourced recommendations
  /// ("static", "profile" or "graph").
  std::string planner = "graph";
  PatternThresholds thresholds;
};

struct DiagnosisReport {
  std::string workload;
  i64 nprocs = 0;
  i64 block_size = 0;
  i64 l1_bytes = 0;
  u64 refs = 0;
  std::string planner;
  MissStats totals;
  /// Sorted by descending attributed false-sharing misses (ties by name).
  std::vector<DatumDiagnosis> datums;

  /// Diagnosis for `name`, or nullptr.
  const DatumDiagnosis* find(const std::string& name) const;
};

/// Diagnose one compiled workload: record its trace once, replay it at
/// `opt.block_size` with attribution + conflict collection + the pattern
/// collector attached, run `opt.planner` over the measured profiles (with
/// the compile's own plan as base), and merge everything per datum.
DiagnosisReport diagnose(const Compiled& c, std::string workload,
                         const DiagnoseOptions& opt = {});

/// Serialize (schema "diagnosis_version": 1).  Deterministic; the
/// document validates under json::validate and `to_json(from_json(d))`
/// is byte-identical to `d` for documents this writer produced.
std::string diagnosis_to_json(const DiagnosisReport& report, int indent = 2);

/// Parse a document written by diagnosis_to_json.  Throws InternalError
/// naming the offending field on malformed documents.
DiagnosisReport diagnosis_from_json(std::string_view json);

/// Human-readable rendering (`fsoptc --diagnose`).
std::string render_diagnosis(const DiagnosisReport& report);

}  // namespace fsopt
