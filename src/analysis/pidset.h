// A set of process ids, used to express which processes can execute a
// statement (per-process control-flow analysis) and which processes an
// access record applies to.  Capped at 64 processes — the paper's KSR2 had
// 56; every experiment fits.
#pragma once

#include <string>

#include "support/common.h"

namespace fsopt {

class PidSet {
 public:
  static constexpr i64 kMaxProcs = 64;

  PidSet() = default;

  static PidSet none() { return PidSet(); }
  static PidSet all(i64 n) {
    FSOPT_CHECK(n >= 0 && n <= kMaxProcs, "process count out of range");
    PidSet s;
    s.bits_ = n == 64 ? ~0ULL : ((1ULL << n) - 1);
    return s;
  }
  static PidSet single(i64 p) {
    FSOPT_CHECK(p >= 0 && p < kMaxProcs, "pid out of range");
    PidSet s;
    s.bits_ = 1ULL << p;
    return s;
  }

  bool test(i64 p) const {
    return p >= 0 && p < kMaxProcs && (bits_ >> p & 1) != 0;
  }
  void set(i64 p) {
    FSOPT_CHECK(p >= 0 && p < kMaxProcs, "pid out of range");
    bits_ |= 1ULL << p;
  }
  int count() const { return __builtin_popcountll(bits_); }
  bool empty() const { return bits_ == 0; }
  u64 raw() const { return bits_; }

  PidSet operator&(PidSet o) const { return PidSet(bits_ & o.bits_); }
  PidSet operator|(PidSet o) const { return PidSet(bits_ | o.bits_); }
  /// Complement within a universe of `n` processes.
  PidSet complement(i64 n) const {
    return PidSet(all(n).bits_ & ~bits_);
  }
  bool operator==(PidSet o) const { return bits_ == o.bits_; }
  bool operator!=(PidSet o) const { return bits_ != o.bits_; }

  std::string str() const {
    std::string s = "{";
    bool first = true;
    for (i64 p = 0; p < kMaxProcs; ++p) {
      if (!test(p)) continue;
      if (!first) s += ",";
      s += std::to_string(p);
      first = false;
    }
    return s + "}";
  }

 private:
  explicit PidSet(u64 bits) : bits_(bits) {}
  u64 bits_ = 0;
};

}  // namespace fsopt
