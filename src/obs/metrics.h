// Metrics registry: typed counters, gauges and log2-bucketed histograms.
//
// The spans/counters of obs.h answer "what happened when" — they are
// events on a timeline, exported as a Chrome trace.  This module answers
// "how much, in aggregate": named instruments that accumulate across the
// whole process and are snapshotted on demand or at exit, the surface a
// long-running service (the planned fsoptd) scrapes.  The ad-hoc numbers
// that used to ride on span args — pool queue depth, per-shard replay
// refs/sec, codec bytes/ref, repair-loop iterations — register here so
// one exporter sees all of them.
//
// The same design constraints as obs.h, in the same priority order:
//   1. Must not perturb results.  Instruments only accumulate numbers;
//      no simulated state is touched, so all stats stay bit-identical
//      with metrics on or off (tests/test_obs.cpp, test_patterns.cpp).
//   2. Cheap when disabled.  Always compiled in; the disabled path of
//      every update is one relaxed atomic load.  Call sites hold a
//      static reference (registration runs once), so there is no name
//      lookup on any hot path.
//   3. Cheap enough when enabled.  Updates are relaxed atomic ops on
//      per-instrument cells; instruments sit at job/shard/loop
//      granularity, never per memory reference.
//
// Export: metrics_to_json (support/json.h writer) and a Prometheus-style
// text exposition (metrics_to_prometheus).  Activation: FSOPT_METRICS=PATH
// in the environment or --metrics-out PATH on fsoptc and the bench
// binaries; a path ending in ".json" selects the JSON form, anything else
// the Prometheus text form.  The dump runs via a process-exit hook, and
// carries the obs partial-data marker (obs::mark_partial) so a dump from
// an error exit is distinguishable from a complete run's.
#pragma once

#include <atomic>
#include <bit>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/common.h"

namespace fsopt::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Are metric updates currently accumulating?  The one check on every
/// update path.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Flip accumulation on/off (registrations persist either way).
void set_metrics_enabled(bool on);

/// Write the metrics dump to `path` at process exit (registers the exit
/// hook once) and start accumulating now.  ".json" suffix selects JSON,
/// anything else the Prometheus text exposition.  Empty cancels.
void set_metrics_path(std::string path);
std::string metrics_path();

/// Label set attached to an instrument ({"workload","fmm"}, ...).  Order
/// is preserved as registered; (name, labels) identifies an instrument.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : u8 { kCounter, kGauge, kHistogram };
const char* metric_kind_name(MetricKind k);

/// Monotonically increasing count.
class Counter {
 public:
  void inc(u64 delta = 1) {
    if (!metrics_enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset_value() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Last-written value (queue depth, bytes/ref, ...).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!metrics_enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset_value() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram buckets: bucket 0 holds observations <= 1, bucket i (i >= 1)
/// holds (2^(i-1), 2^i], the last bucket is the +Inf overflow.  48 buckets
/// cover up to 2^46 — enough for refs/sec on any machine fsopt meets.
inline constexpr size_t kHistogramBuckets = 48;

/// Upper bound of bucket `i` (2^i); the last bucket's bound is +Inf and
/// is reported as such by the expositions, not by this function.
inline double histogram_bucket_upper(size_t i) {
  return static_cast<double>(u64{1} << i);
}

/// log2-bucketed distribution with exact count and sum.
class Histogram {
 public:
  void observe(double v) {
    if (!metrics_enabled()) return;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Bucket an observation: ceil to an integer, then the smallest i with
  /// value <= 2^i.  Exact at the power-of-two boundaries (2^i lands in
  /// bucket i, 2^i + epsilon in bucket i+1) — test_obs pins this down.
  static size_t bucket_index(double v) {
    if (!(v > 1.0)) return 0;  // <= 1 and NaN
    double c = v > static_cast<double>(~u64{0} >> 1)
                   ? static_cast<double>(~u64{0} >> 1)
                   : v;
    u64 n = static_cast<u64>(c);
    if (static_cast<double>(n) < c) ++n;  // ceil
    size_t i = static_cast<size_t>(std::bit_width(n - 1));
    return i < kHistogramBuckets ? i : kHistogramBuckets - 1;
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  u64 bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset_value() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> buckets_[kHistogramBuckets] = {};
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Register (or look up) an instrument.  The returned reference is valid
/// for the life of the process — call sites keep it in a static local so
/// the registry lock is taken once per site, not per update.  Re-
/// registering the same (name, labels) returns the same instrument;
/// registering it as a different kind throws InternalError.
Counter& metric_counter(std::string_view name, MetricLabels labels = {});
Gauge& metric_gauge(std::string_view name, MetricLabels labels = {});
Histogram& metric_histogram(std::string_view name, MetricLabels labels = {});

/// One instrument's state at snapshot time.
struct MetricSample {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;         // counter (exact integral) / gauge
  u64 count = 0;              // histogram
  double sum = 0.0;           // histogram
  std::vector<u64> buckets;   // histogram, per-bucket (not cumulative)
};

/// Every registered instrument, sorted by (name, labels); safe to take
/// while other threads keep updating (values are racy-consistent relaxed
/// reads, which is what a scrape wants).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;
  /// Mirrors obs::partial_reason(): non-empty when the process marked its
  /// observability data incomplete (e.g. fsoptc exiting on CompileError).
  std::string partial_reason;
  bool partial() const { return !partial_reason.empty(); }
};

MetricsSnapshot metrics_snapshot();

/// Zero every instrument's accumulated value (registrations persist).
/// Tests use this to isolate what one operation recorded.
void metrics_reset();

/// {"metrics_version":1,"partial":...,"samples":[...]} via json::Writer.
std::string metrics_to_json(const MetricsSnapshot& snap, int indent = 2);

/// Prometheus text exposition: names are prefixed "fsopt_" and sanitized
/// ('.' -> '_'), counters get the "_total" suffix, histograms emit
/// cumulative "_bucket{le=...}" series plus "_sum"/"_count".  A partial
/// dump additionally carries the fsopt_partial gauge set to 1.
std::string metrics_to_prometheus(const MetricsSnapshot& snap);

}  // namespace fsopt::obs
