#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/obs.h"
#include "support/json.h"

namespace fsopt::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

namespace {

/// One registered instrument.  Exactly one of c/g/h is set, per `kind`.
struct Instrument {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  std::unique_ptr<Counter> c;
  std::unique_ptr<Gauge> g;
  std::unique_ptr<Histogram> h;
};

/// Owns every instrument (references handed out must outlive all callers,
/// so the registry is leaked like obs.cpp's) plus the export config.
struct MetricsRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<Instrument>> instruments;
  std::string path;
  bool exit_hook_registered = false;
};

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry;  // exit hook reads it
  return *r;
}

Instrument& find_or_register(std::string_view name, MetricLabels&& labels,
                             MetricKind kind) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& in : r.instruments) {
    if (in->name == name && in->labels == labels) {
      FSOPT_CHECK(in->kind == kind,
                  "metric '" + std::string(name) +
                      "' re-registered as a different kind (" +
                      metric_kind_name(in->kind) + " vs " +
                      metric_kind_name(kind) + ")");
      return *in;
    }
  }
  auto in = std::make_unique<Instrument>();
  in->name.assign(name.data(), name.size());
  in->labels = std::move(labels);
  in->kind = kind;
  switch (kind) {
    case MetricKind::kCounter: in->c = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: in->g = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      in->h = std::make_unique<Histogram>();
      break;
  }
  r.instruments.push_back(std::move(in));
  return *r.instruments.back();
}

void at_exit_dump() {
  std::string path;
  {
    MetricsRegistry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    path = r.path;
  }
  if (path.empty()) return;
  MetricsSnapshot snap = metrics_snapshot();
  bool is_json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  std::string doc =
      is_json ? metrics_to_json(snap) : metrics_to_prometheus(snap);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(doc.data(), 1, doc.size(), f) != doc.size()) {
    std::fprintf(stderr, "obs: cannot write metrics to %s\n", path.c_str());
    if (f != nullptr) std::fclose(f);
    return;
  }
  std::fclose(f);
  std::fprintf(stderr, "(obs: %s metrics written to %s — %zu instruments%s)\n",
               is_json ? "json" : "prometheus", path.c_str(),
               snap.samples.size(),
               snap.partial() ? ", PARTIAL DATA" : "");
}

void register_exit_hook() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.exit_hook_registered) return;
  r.exit_hook_registered = true;
  std::atexit(at_exit_dump);
}

/// FSOPT_METRICS=PATH at static-init time, mirroring obs.cpp's EnvInit,
/// so every binary honours the variable without per-main wiring.
struct EnvInit {
  EnvInit() {
    if (const char* p = std::getenv("FSOPT_METRICS"); p != nullptr && *p != 0)
      set_metrics_path(p);
  }
} g_env_init;

bool labels_less(const MetricLabels& a, const MetricLabels& b) {
  return a < b;
}

}  // namespace

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void set_metrics_path(std::string path) {
  {
    MetricsRegistry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.path = std::move(path);
    if (r.path.empty()) return;
  }
  register_exit_hook();
  set_metrics_enabled(true);
}

std::string metrics_path() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.path;
}

Counter& metric_counter(std::string_view name, MetricLabels labels) {
  Instrument& in =
      find_or_register(name, std::move(labels), MetricKind::kCounter);
  return *in.c;
}

Gauge& metric_gauge(std::string_view name, MetricLabels labels) {
  Instrument& in =
      find_or_register(name, std::move(labels), MetricKind::kGauge);
  return *in.g;
}

Histogram& metric_histogram(std::string_view name, MetricLabels labels) {
  Instrument& in =
      find_or_register(name, std::move(labels), MetricKind::kHistogram);
  return *in.h;
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snap;
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  snap.samples.reserve(r.instruments.size());
  for (const auto& in : r.instruments) {
    MetricSample s;
    s.name = in->name;
    s.labels = in->labels;
    s.kind = in->kind;
    switch (in->kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(in->c->value());
        break;
      case MetricKind::kGauge:
        s.value = in->g->value();
        break;
      case MetricKind::kHistogram:
        s.count = in->h->count();
        s.sum = in->h->sum();
        s.buckets.resize(kHistogramBuckets);
        for (size_t i = 0; i < kHistogramBuckets; ++i)
          s.buckets[i] = in->h->bucket(i);
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return labels_less(a.labels, b.labels);
            });
  snap.partial_reason = partial_reason();
  return snap;
}

void metrics_reset() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& in : r.instruments) {
    switch (in->kind) {
      case MetricKind::kCounter: in->c->reset_value(); break;
      case MetricKind::kGauge: in->g->reset_value(); break;
      case MetricKind::kHistogram: in->h->reset_value(); break;
    }
  }
}

std::string metrics_to_json(const MetricsSnapshot& snap, int indent) {
  std::string out;
  json::Writer w(&out, indent);
  w.begin_object();
  w.key("metrics_version").value(1);
  w.key("partial").value(snap.partial());
  if (snap.partial()) w.key("partial_reason").value(snap.partial_reason);
  w.key("samples").begin_array();
  for (const MetricSample& s : snap.samples) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("kind").value(metric_kind_name(s.kind));
    if (!s.labels.empty()) {
      w.key("labels").begin_object();
      for (const auto& [k, v] : s.labels) w.key(k).value(v);
      w.end_object();
    }
    if (s.kind == MetricKind::kHistogram) {
      w.key("count").value(s.count);
      w.key("sum").value(s.sum);
      // Only buckets up to the last non-empty one: keeps dumps compact
      // while the cumulative form is still reconstructible.
      size_t last = 0;
      for (size_t i = 0; i < s.buckets.size(); ++i)
        if (s.buckets[i] > 0) last = i + 1;
      w.key("buckets").begin_array();
      for (size_t i = 0; i < last; ++i) {
        w.begin_object();
        if (i + 1 == kHistogramBuckets)
          w.key("le").value("+Inf");
        else
          w.key("le").value(histogram_bucket_upper(i), "%.17g");
        w.key("count").value(s.buckets[i]);
        w.end_object();
      }
      w.end_array();
    } else {
      w.key("value").value(s.value, "%.17g");
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z0-9_:]; everything else ('.',
/// '-') becomes '_'.
std::string prom_name(const std::string& name) {
  std::string out = "fsopt_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + json::escape(v) + "\"";
  }
  out += "}";
  return out;
}

/// Label set with one extra pair appended (histogram "le").
std::string prom_labels_le(const MetricLabels& labels, const std::string& le) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + json::escape(v) + "\"";
  }
  if (!first) out += ",";
  out += "le=\"" + le + "\"}";
  return out;
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string metrics_to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_name;
  for (const MetricSample& s : snap.samples) {
    std::string base = prom_name(s.name);
    if (s.kind == MetricKind::kCounter) base += "_total";
    if (base != last_name) {
      out += "# TYPE " + base + " " + metric_kind_name(s.kind) + "\n";
      last_name = base;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += base + prom_labels(s.labels) + " ";
        append_number(out, s.value);
        out += "\n";
        break;
      case MetricKind::kHistogram: {
        u64 cum = 0;
        size_t last = 0;
        for (size_t i = 0; i < s.buckets.size(); ++i)
          if (s.buckets[i] > 0) last = i;
        for (size_t i = 0; i <= last && i + 1 < kHistogramBuckets; ++i) {
          cum += s.buckets[i];
          char le[32];
          std::snprintf(le, sizeof(le), "%.17g", histogram_bucket_upper(i));
          out += base + "_bucket" + prom_labels_le(s.labels, le) + " " +
                 std::to_string(cum) + "\n";
        }
        out += base + "_bucket" + prom_labels_le(s.labels, "+Inf") + " " +
               std::to_string(s.count) + "\n";
        out += base + "_sum" + prom_labels(s.labels) + " ";
        append_number(out, s.sum);
        out += "\n";
        out += base + "_count" + prom_labels(s.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  out += "# TYPE fsopt_partial gauge\n";
  out += std::string("fsopt_partial ") + (snap.partial() ? "1" : "0") + "\n";
  return out;
}

}  // namespace fsopt::obs
