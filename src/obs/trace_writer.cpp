#include "obs/trace_writer.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "support/json.h"
#include "support/stats.h"

namespace fsopt::obs {

namespace {

constexpr double kNsToUs = 1e-3;
constexpr double kNsToSec = 1e-9;

void write_args(json::Writer& w, const std::vector<Arg>& args) {
  w.key("args").begin_object();
  for (const Arg& a : args) {
    w.key(a.key);
    if (a.is_str)
      w.value(a.str);
    else
      w.value(a.num);
  }
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const TraceData& data) {
  std::string out;
  json::Writer w(&out, 1);
  w.begin_object().key("traceEvents").begin_array();
  for (const ThreadLog& t : data.threads) {
    // Thread-name metadata first, so viewers label the row.
    w.begin_object()
        .key("ph").value("M")
        .key("pid").value(1)
        .key("tid").value(t.tid)
        .key("name").value("thread_name")
        .key("args").begin_object().key("name").value(t.name).end_object()
        .end_object();
    for (const SpanEvent& s : t.spans) {
      w.begin_object()
          .key("ph").value("X")
          .key("pid").value(1)
          .key("tid").value(t.tid)
          .key("cat").value(s.category)
          .key("name").value(s.name)
          .key("ts").value(static_cast<double>(s.start_ns) * kNsToUs,
                           "%.3f")
          .key("dur").value(static_cast<double>(s.dur_ns) * kNsToUs,
                            "%.3f");
      write_args(w, s.args);
      w.end_object();
    }
    for (const CounterEvent& c : t.counters) {
      w.begin_object()
          .key("ph").value("C")
          .key("pid").value(1)
          .key("tid").value(t.tid)
          .key("name").value(c.name)
          .key("ts").value(static_cast<double>(c.ts_ns) * kNsToUs, "%.3f")
          .key("args").begin_object().key("value").value(c.value)
          .end_object()
          .end_object();
    }
  }
  w.end_array().key("displayTimeUnit").value("ms").end_object();
  return out;
}

double TraceSummary::pool_utilization() const {
  if (pool_workers <= 0 || pool_wall_seconds <= 0.0) return 0.0;
  return pool_busy_seconds / (pool_workers * pool_wall_seconds);
}

TraceSummary summarize(const TraceData& data) {
  TraceSummary out;
  u64 min_start = ~u64{0};
  u64 max_end = 0;
  // category -> name -> line index; ordered maps keep the rendering
  // deterministic for a given trace.
  std::map<std::string, std::map<std::string, size_t>> index;
  std::map<u32, bool> pool_threads;
  u64 pool_min = ~u64{0}, pool_max = 0;

  for (const ThreadLog& t : data.threads) {
    if (!t.spans.empty() || !t.counters.empty()) ++out.thread_count;
    for (const CounterEvent& c : t.counters) {
      min_start = std::min(min_start, c.ts_ns);
      max_end = std::max(max_end, c.ts_ns);
    }
    for (const SpanEvent& s : t.spans) {
      min_start = std::min(min_start, s.start_ns);
      max_end = std::max(max_end, s.start_ns + s.dur_ns);
      double sec = static_cast<double>(s.dur_ns) * kNsToSec;

      auto [it, inserted] =
          index[s.category].try_emplace(s.name, out.lines.size());
      if (inserted) out.lines.push_back({s.category, s.name, 0, 0.0, 0.0});
      CategoryLine& line = out.lines[it->second];
      ++line.count;
      line.total_seconds += sec;
      line.max_seconds = std::max(line.max_seconds, sec);

      if (std::string_view(s.category) == "pool") {
        out.pool_busy_seconds += sec;
        pool_threads[t.tid] = true;
        pool_min = std::min(pool_min, s.start_ns);
        pool_max = std::max(pool_max, s.start_ns + s.dur_ns);
      }
      if (std::string_view(s.category) == "pass" &&
          sec > out.slowest_pass_seconds) {
        out.slowest_pass_seconds = sec;
        out.slowest_pass = s.name;
      }
      if (std::string_view(s.category) == "replay" && s.name == "shard" &&
          sec > out.slowest_shard_seconds) {
        out.slowest_shard_seconds = sec;
        out.slowest_shard = -1;
        for (const Arg& a : s.args)
          if (!a.is_str && a.key == "shard")
            out.slowest_shard = static_cast<int>(a.num);
      }
    }
  }
  if (max_end >= min_start && max_end != 0)
    out.wall_seconds = static_cast<double>(max_end - min_start) * kNsToSec;
  out.pool_workers = static_cast<int>(pool_threads.size());
  if (pool_max >= pool_min && pool_max != 0)
    out.pool_wall_seconds =
        static_cast<double>(pool_max - pool_min) * kNsToSec;
  // Category-major ordering, stable within a category.
  std::stable_sort(out.lines.begin(), out.lines.end(),
                   [](const CategoryLine& a, const CategoryLine& b) {
                     return a.category < b.category;
                   });
  return out;
}

std::string render_summary(const TraceData& data) {
  TraceSummary s = summarize(data);
  std::string out = "=== obs trace summary ===\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "wall %.3fs, %zu thread%s, %zu spans, %zu counters\n",
                s.wall_seconds, s.thread_count,
                s.thread_count == 1 ? "" : "s", data.span_count(),
                data.counter_count());
  out += buf;

  TextTable table({"category", "name", "count", "total", "max"});
  for (const CategoryLine& line : s.lines) {
    table.add_row({line.category, line.name, std::to_string(line.count),
                   fixed(line.total_seconds * 1e3, 3) + "ms",
                   fixed(line.max_seconds * 1e3, 3) + "ms"});
  }
  if (!s.lines.empty()) out += table.render();

  if (s.pool_workers > 0) {
    std::snprintf(buf, sizeof(buf),
                  "pool utilization: %.3fs busy / (%d workers x %.3fs wall)"
                  " = %.1f%%\n",
                  s.pool_busy_seconds, s.pool_workers, s.pool_wall_seconds,
                  100.0 * s.pool_utilization());
    out += buf;
  }
  if (!s.slowest_pass.empty()) {
    std::snprintf(buf, sizeof(buf), "slowest pass: %s (%.3fms)\n",
                  s.slowest_pass.c_str(), s.slowest_pass_seconds * 1e3);
    out += buf;
  }
  if (s.slowest_shard_seconds > 0.0) {
    std::snprintf(buf, sizeof(buf), "slowest replay shard: #%d (%.3fms)\n",
                  s.slowest_shard, s.slowest_shard_seconds * 1e3);
    out += buf;
  }
  return out;
}

bool write_trace_file(const std::string& path, const TraceData& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string doc = chrome_trace_json(data);
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  return std::fclose(f) == 0 && written == doc.size();
}

}  // namespace fsopt::obs
