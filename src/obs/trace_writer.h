// Exporters for the runtime trace (obs/obs.h): Chrome trace-event JSON
// and a human-readable summary.
//
// The JSON form is the Trace Event Format's "X" (complete span), "C"
// (counter) and "M" (thread-name metadata) events, one process, one
// event per recorded span/counter — load the file in Perfetto or
// chrome://tracing.  The summary aggregates the same data for a
// terminal: per-(category, name) count/total/max, pool utilization
// (busy ÷ workers × wall), the slowest pass and the slowest replay
// shard.  Serialization rides on support/json.h.
#pragma once

#include <string>

#include "obs/obs.h"

namespace fsopt::obs {

/// The whole trace as one Chrome trace-event JSON document.
std::string chrome_trace_json(const TraceData& data);

/// Aggregated per-(category, name) statistics of one span category.
struct CategoryLine {
  std::string category;
  std::string name;
  u64 count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Digest of a trace, the data behind render_summary().
struct TraceSummary {
  double wall_seconds = 0.0;      // max end - min start over all events
  size_t thread_count = 0;        // threads that recorded anything
  std::vector<CategoryLine> lines;  // category-major, insertion order

  // Pool utilization: busy = total "pool" span time, workers = distinct
  // threads with "pool" spans, wall = span of the "pool" category.
  double pool_busy_seconds = 0.0;
  int pool_workers = 0;
  double pool_wall_seconds = 0.0;
  /// busy / (workers * wall); 0 when no pool activity was recorded.
  double pool_utilization() const;

  /// Largest "pass" span and largest "replay"/"shard" span (empty name
  /// when none was recorded).
  std::string slowest_pass;
  double slowest_pass_seconds = 0.0;
  double slowest_shard_seconds = 0.0;
  int slowest_shard = -1;  // the span's "shard" arg, -1 if absent
};

TraceSummary summarize(const TraceData& data);

/// The summary as an aligned text block (for --trace-summary).
std::string render_summary(const TraceData& data);

/// Write chrome_trace_json(data) to `path`.  Returns false (and writes
/// nothing useful) when the file cannot be created.
bool write_trace_file(const std::string& path, const TraceData& data);

}  // namespace fsopt::obs
