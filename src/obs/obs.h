// Runtime tracing: spans, counters, thread attribution.
//
// The compile pipeline got per-pass metering in driver/pipeline.h; this
// module gives the *runtime* side — thread-pool job execution, trace
// recording, shard-parallel replay, matrix compiles — the same
// visibility.  Every instrumented site creates an RAII Span (or emits a
// named counter); events land in per-thread buffers and are exported as
// Chrome trace-event JSON (obs/trace_writer.h) loadable in Perfetto /
// chrome://tracing, or aggregated into a human-readable summary.
//
// Design constraints, in priority order:
//   1. Must not perturb results.  Instrumentation only ever reads clocks
//      and appends to observation buffers; no simulated state is touched,
//      so all stats are bit-identical with tracing on or off (enforced by
//      tests/test_obs.cpp and bench_replay_throughput).
//   2. Cheap when disabled.  Tracing is always compiled in; the disabled
//      path of a Span is one relaxed atomic load and trivially-
//      constructed members — no clock read, no allocation, no lock.
//      bench_replay_throughput hard-fails if the disabled instrumentation
//      cost on a replay exceeds 2% of the replay itself.
//   3. Cheap enough when enabled.  Instrumentation sits at job/shard/pass
//      granularity, never per memory reference.  Each thread appends to
//      its own buffer under its own (uncontended) mutex, so enabling
//      tracing adds no cross-thread cache traffic inside timed regions.
//
// Activation: FSOPT_TRACE=out.json in the environment, or --trace-out
// PATH on fsoptc and every bench binary; --trace-summary (or
// FSOPT_TRACE_SUMMARY=1) prints the aggregation at exit.  Both write via
// a process-exit hook so every exit path of an instrumented binary dumps
// what it saw.
#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "support/common.h"

namespace fsopt::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Is tracing currently recording?  The one check on every hot path.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flip recording on/off.  Spans already open keep recording their close.
void set_enabled(bool on);

/// Write a Chrome trace to `path` at process exit (registers the exit
/// hook once) and start recording now.  An empty path cancels the write.
void set_trace_path(std::string path);
std::string trace_path();

/// Print the human-readable summary (render_summary) to stderr at process
/// exit, and start recording now.
void set_summary(bool on);
bool summary_requested();

/// Mark this process's observability data as incomplete: the run is
/// exiting early (e.g. fsoptc on a CompileError) and the exit dumps —
/// trace, summary, metrics — describe a partial run.  The first reason
/// sticks; both the trace summary and the metrics exposition carry it,
/// so a scraped report from a failed run is never mistaken for a
/// complete one.
void mark_partial(std::string_view reason);
/// The partial marker, or empty when the run is (so far) complete.
std::string partial_reason();

/// Name the calling thread in the exported trace ("main", "pool-worker-3",
/// ...).  Threads that never call this show up as "thread-N".
void set_thread_name(std::string_view name);

/// Nanoseconds since the process's trace epoch (first obs use).
u64 now_ns();

/// One span argument: numeric or string, exported into the Chrome event's
/// "args" object.
struct Arg {
  std::string key;
  double num = 0.0;
  std::string str;
  bool is_str = false;
};

/// A closed span: [start_ns, start_ns + dur_ns) on one thread.
struct SpanEvent {
  u64 start_ns = 0;
  u64 dur_ns = 0;
  const char* category = "";  // static string at every call site
  std::string name;
  std::vector<Arg> args;
};

/// A named sample at a point in time (Chrome "C" event).
struct CounterEvent {
  u64 ts_ns = 0;
  const char* name = "";  // static string at every call site
  double value = 0.0;
};

/// Everything one thread recorded.
struct ThreadLog {
  u32 tid = 0;
  std::string name;
  std::vector<SpanEvent> spans;
  std::vector<CounterEvent> counters;
};

/// Snapshot of every thread's log (copies; safe to inspect while other
/// threads keep recording).
struct TraceData {
  std::vector<ThreadLog> threads;

  size_t span_count() const;
  size_t counter_count() const;
};

TraceData collect();

/// Drop every recorded event (thread registrations and names persist)
/// and clear the partial-data marker.  Tests use this to isolate what
/// one operation recorded.
void reset();

/// Emit a counter sample for the calling thread.  `name` must point to
/// storage that outlives the trace (string literals at every call site).
void counter(const char* name, double value);

/// RAII span.  Construction stamps the start, destruction records the
/// event into the calling thread's buffer.  When tracing is disabled the
/// whole object is inert: no clock read, no allocation.
///
///   obs::Span span("replay", "shard");
///   ... work ...
///   if (span.active()) span.arg("refs", n);
class Span {
 public:
  /// `category` must be a static string; `name` is copied (only when
  /// enabled — pass a cheap static name and put dynamic detail in args).
  Span(const char* category, std::string_view name) {
    if (!enabled()) return;
    init(category, name);
  }
  ~Span() {
    if (active_) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording (tracing was enabled at
  /// construction).  Gate arg() computation on this.
  bool active() const { return active_; }

  /// Seconds since construction (0 when inactive).
  double elapsed_seconds() const {
    return active_ ? static_cast<double>(now_ns() - start_ns_) * 1e-9 : 0.0;
  }

  void arg(std::string_view key, double value) {
    if (!active_) return;
    args_.push_back({std::string(key), value, {}, false});
  }
  void arg(std::string_view key, std::string_view value) {
    if (!active_) return;
    args_.push_back({std::string(key), 0.0, std::string(value), true});
  }

 private:
  void init(const char* category, std::string_view name);  // obs.cpp
  void finish();  // records the SpanEvent (obs.cpp)

  bool active_ = false;
  u64 start_ns_ = 0;
  const char* category_ = "";
  std::string name_;
  std::vector<Arg> args_;
};

}  // namespace fsopt::obs
