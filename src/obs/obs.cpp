#include "obs/obs.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/trace_writer.h"

namespace fsopt::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// One thread's buffer plus the lock that makes collect() safe while the
/// owner keeps appending.  The owner thread is the only appender, so the
/// lock is uncontended on the recording path.
struct Log {
  std::mutex mu;
  ThreadLog data;
};

/// Owns every thread's Log (threads may exit before the trace is
/// written, so logs must outlive their threads) and the output config.
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Log>> logs;
  u32 next_tid = 0;
  std::string path;
  bool summary = false;
  bool exit_hook_registered = false;
  std::string partial_reason;  // non-empty: exit dumps describe a partial run
};

Registry& registry() {
  static Registry* r = new Registry;  // never destroyed: exit hook reads it
  return *r;
}

Log& local_log() {
  thread_local std::shared_ptr<Log> log = [] {
    auto l = std::make_shared<Log>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    l->data.tid = r.next_tid++;
    l->data.name = "thread-" + std::to_string(l->data.tid);
    r.logs.push_back(l);
    return l;
  }();
  return *log;
}

void at_exit_dump() {
  std::string path;
  bool summary;
  std::string partial;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    path = r.path;
    summary = r.summary;
    partial = r.partial_reason;
  }
  if (path.empty() && !summary) return;
  TraceData data = collect();
  if (!path.empty()) {
    if (write_trace_file(path, data))
      std::fprintf(stderr, "(obs: chrome trace written to %s — %zu spans, "
                           "%zu counters%s)\n",
                   path.c_str(), data.span_count(), data.counter_count(),
                   partial.empty() ? "" : ", PARTIAL DATA");
    else
      std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
  }
  if (summary) {
    if (!partial.empty())
      std::fprintf(stderr, "(obs: PARTIAL DATA — %s; the run exited early "
                           "and this summary covers what ran)\n",
                   partial.c_str());
    std::fputs(render_summary(data).c_str(), stderr);
  }
}

void register_exit_hook() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.exit_hook_registered) return;
  r.exit_hook_registered = true;
  std::atexit(at_exit_dump);
}

/// Environment activation: FSOPT_TRACE=PATH (chrome trace at exit) and
/// FSOPT_TRACE_SUMMARY=1 (summary at exit).  Runs at static-init time so
/// every binary honours the variables without per-main wiring.
struct EnvInit {
  EnvInit() {
    if (const char* p = std::getenv("FSOPT_TRACE"); p != nullptr && *p != 0)
      set_trace_path(p);
    if (const char* s = std::getenv("FSOPT_TRACE_SUMMARY");
        s != nullptr && *s != 0 && *s != '0')
      set_summary(true);
  }
} g_env_init;

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_path(std::string path) {
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.path = std::move(path);
    if (r.path.empty()) return;
  }
  register_exit_hook();
  set_enabled(true);
}

std::string trace_path() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.path;
}

void set_summary(bool on) {
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.summary = on;
    if (!on) return;
  }
  register_exit_hook();
  set_enabled(true);
}

bool summary_requested() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.summary;
}

void mark_partial(std::string_view reason) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.partial_reason.empty())
    r.partial_reason.assign(reason.data(), reason.size());
}

std::string partial_reason() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.partial_reason;
}

void set_thread_name(std::string_view name) {
  Log& log = local_log();
  std::lock_guard<std::mutex> lk(log.mu);
  log.data.name.assign(name.data(), name.size());
}

u64 now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

size_t TraceData::span_count() const {
  size_t n = 0;
  for (const ThreadLog& t : threads) n += t.spans.size();
  return n;
}

size_t TraceData::counter_count() const {
  size_t n = 0;
  for (const ThreadLog& t : threads) n += t.counters.size();
  return n;
}

TraceData collect() {
  // Snapshot the log list, then each log under its own lock; appenders
  // are never blocked for longer than one copy.
  std::vector<std::shared_ptr<Log>> logs;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    logs = r.logs;
  }
  TraceData out;
  out.threads.reserve(logs.size());
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lk(log->mu);
    out.threads.push_back(log->data);
  }
  return out;
}

void reset() {
  std::vector<std::shared_ptr<Log>> logs;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    logs = r.logs;
    r.partial_reason.clear();
  }
  for (const auto& log : logs) {
    std::lock_guard<std::mutex> lk(log->mu);
    log->data.spans.clear();
    log->data.counters.clear();
  }
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  CounterEvent ev;
  ev.ts_ns = now_ns();
  ev.name = name;
  ev.value = value;
  Log& log = local_log();
  std::lock_guard<std::mutex> lk(log.mu);
  log.data.counters.push_back(ev);
}

void Span::init(const char* category, std::string_view name) {
  active_ = true;
  category_ = category;
  name_.assign(name.data(), name.size());
  start_ns_ = now_ns();
}

void Span::finish() {
  SpanEvent ev;
  ev.start_ns = start_ns_;
  ev.dur_ns = now_ns() - start_ns_;
  ev.category = category_;
  ev.name = std::move(name_);
  ev.args = std::move(args_);
  Log& log = local_log();
  std::lock_guard<std::mutex> lk(log.mu);
  log.data.spans.push_back(std::move(ev));
}

}  // namespace fsopt::obs
