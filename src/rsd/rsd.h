// Bounded regular section descriptors (Havlak & Kennedy style), the
// representation the paper uses for per-process array sections (§3.1).
//
// A descriptor has one entry per array dimension.  Each entry is either an
// invariant affine expression (single subscript), a bounded range
// {lo : hi : stride} with affine bounds, or unknown.  After summaries are
// translated to main, the only symbolic variable left is the PDV, so a
// descriptor can be *concretized* for a given process id and tested for
// disjointness against another process's sections — the implicit-array-
// partitioning test of §3.1.
#pragma once

#include <vector>

#include "rsd/affine.h"

namespace fsopt {

/// One dimension of a regular section.
class DimSec {
 public:
  enum class Kind : u8 { kInvariant, kRange, kUnknown, kStridedUnknown };

  DimSec() : kind_(Kind::kUnknown) {}
  static DimSec invariant(Affine a);
  static DimSec range(Affine lo, Affine hi, i64 stride);
  static DimSec unknown() { return DimSec(); }
  /// A section whose bounds are unknown but whose stride is known — e.g.
  /// a unit-stride sweep from a base loaded from shared memory.  Keeps
  /// the spatial-locality information the §3.3 heuristics need even when
  /// the partitioning itself is invisible (the paper's Topopt case).
  static DimSec strided_unknown(i64 stride);

  Kind kind() const { return kind_; }
  bool is_unknown() const { return kind_ == Kind::kUnknown; }
  const Affine& invariant_expr() const { return lo_; }
  const Affine& lo() const { return lo_; }
  const Affine& hi() const { return hi_; }
  i64 stride() const { return stride_; }

  bool operator==(const DimSec& o) const;

  /// Substitute `v := repl` in all affine components.
  DimSec subst(const LocalSym* v, const Affine& repl) const;

  /// Eliminate loop induction variable `iv` which ranges over
  /// {lo .. hi} step `step` (all iterations): an invariant expression
  /// `c0 + c·iv` becomes the range it sweeps; a range whose bounds mention
  /// `iv` is widened to the hull.  Returns unknown when no sound closed
  /// form exists.
  DimSec close_loop(const LocalSym* iv, const Affine& lo, const Affine& hi,
                    i64 step) const;

  bool depends_on(const LocalSym* v) const;

  /// True when this section touches elements with unit stride over a range
  /// of at least `min_run` elements (used by the spatial-locality
  /// heuristic, §3.3).
  bool has_unit_stride_run(i64 min_run) const;

  std::string str() const;

 private:
  Kind kind_;
  Affine lo_;      // invariant expr, or range lower bound
  Affine hi_;      // range upper bound (inclusive)
  i64 stride_ = 1; // range stride (> 0)
};

/// Concrete (fully evaluated) arithmetic progression within one dimension:
/// {lo, lo+stride, ..., hi}, clamped to [0, extent).
struct ConcreteRange {
  i64 lo = 0;
  i64 hi = -1;  // inclusive; hi < lo means empty
  i64 stride = 1;

  bool empty() const { return hi < lo; }
  i64 count() const { return empty() ? 0 : (hi - lo) / stride + 1; }
};

/// Stride-aware intersection test for two arithmetic progressions.  This is
/// what detects that `a[2*i]` and `a[2*i+1]` — or a[i*P + p] for different
/// p — never touch the same element.
bool ranges_intersect(const ConcreteRange& a, const ConcreteRange& b);

/// A bounded regular section descriptor: one DimSec per array dimension.
class Rsd {
 public:
  Rsd() = default;
  explicit Rsd(std::vector<DimSec> dims) : dims_(std::move(dims)) {}

  const std::vector<DimSec>& dims() const { return dims_; }
  std::vector<DimSec>& dims() { return dims_; }
  size_t rank() const { return dims_.size(); }

  bool operator==(const Rsd& o) const { return dims_ == o.dims_; }

  Rsd subst(const LocalSym* v, const Affine& repl) const;
  Rsd close_loop(const LocalSym* iv, const Affine& lo, const Affine& hi,
                 i64 step) const;
  bool depends_on(const LocalSym* v) const;

  /// Evaluate for a concrete PDV value.  Any dimension that cannot be
  /// evaluated becomes the full [0, extent) range (conservative).
  std::vector<ConcreteRange> concretize(const LocalSym* pdv, i64 pid,
                                        const std::vector<i64>& extents) const;

  /// Merge with another descriptor of the same rank into a section that
  /// contains both (per-dimension hull; disagreement widens to unknown).
  Rsd hull(const Rsd& o) const;

  /// A rough size metric: how many concrete elements the section may touch
  /// for pid 0 (used to prefer precise descriptors when merging).
  i64 footprint(const LocalSym* pdv, const std::vector<i64>& extents) const;

  std::string str() const;

 private:
  std::vector<DimSec> dims_;
};

/// Disjointness of two concretized sections: true if the outer products of
/// the per-dimension progressions cannot share any element.
bool boxes_disjoint(const std::vector<ConcreteRange>& a,
                    const std::vector<ConcreteRange>& b);

/// A set of descriptors for one datum, capped at `kMaxDescriptors`
/// (the paper found ≤ 10 sufficed for all benchmark arrays); inserting
/// beyond the cap merges the two closest descriptors.
class RsdSet {
 public:
  static constexpr size_t kMaxDescriptors = 10;

  void insert(const Rsd& r);
  const std::vector<Rsd>& sections() const { return secs_; }
  bool empty() const { return secs_.empty(); }

  RsdSet subst(const LocalSym* v, const Affine& repl) const;

  std::string str() const;

 private:
  std::vector<Rsd> secs_;
};

}  // namespace fsopt
