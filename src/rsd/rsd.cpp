#include "rsd/rsd.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace fsopt {

DimSec DimSec::invariant(Affine a) {
  if (!a.valid()) return unknown();
  DimSec d;
  d.kind_ = Kind::kInvariant;
  d.lo_ = std::move(a);
  return d;
}

DimSec DimSec::strided_unknown(i64 stride) {
  DimSec d;
  d.kind_ = Kind::kStridedUnknown;
  d.stride_ = std::max<i64>(stride, 1);
  return d;
}

DimSec DimSec::range(Affine lo, Affine hi, i64 stride) {
  if (!lo.valid() || !hi.valid() || stride <= 0) return unknown();
  // Degenerate range is just an invariant subscript.
  if (lo == hi) return invariant(lo);
  DimSec d;
  d.kind_ = Kind::kRange;
  d.lo_ = std::move(lo);
  d.hi_ = std::move(hi);
  d.stride_ = stride;
  return d;
}

bool DimSec::operator==(const DimSec& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kUnknown: return true;
    case Kind::kStridedUnknown: return stride_ == o.stride_;
    case Kind::kInvariant: return lo_ == o.lo_;
    case Kind::kRange:
      return lo_ == o.lo_ && hi_ == o.hi_ && stride_ == o.stride_;
  }
  return false;
}

DimSec DimSec::subst(const LocalSym* v, const Affine& repl) const {
  switch (kind_) {
    case Kind::kUnknown:
    case Kind::kStridedUnknown:
      return *this;
    case Kind::kInvariant:
      return invariant(lo_.subst(v, repl));
    case Kind::kRange: {
      Affine nlo = lo_.subst(v, repl);
      Affine nhi = hi_.subst(v, repl);
      if (!nlo.valid() || !nhi.valid()) return unknown();
      return range(std::move(nlo), std::move(nhi), stride_);
    }
  }
  return unknown();
}

DimSec DimSec::close_loop(const LocalSym* iv, const Affine& lo,
                          const Affine& hi, i64 step) const {
  if (!depends_on(iv)) return *this;
  if (step <= 0) return unknown();
  switch (kind_) {
    case Kind::kUnknown:
    case Kind::kStridedUnknown:
      return *this;
    case Kind::kInvariant: {
      i64 c = lo_.coeff(iv);
      if (!lo.valid() || !hi.valid()) {
        // Bounds are unknown, but the sweep stride is not.
        return strided_unknown(std::abs(c) * step);
      }
      Affine at_lo = lo_.subst(iv, lo);
      Affine at_hi = lo_.subst(iv, hi);
      if (!at_lo.valid() || !at_hi.valid())
        return strided_unknown(std::abs(c) * step);
      i64 stride = std::abs(c) * step;
      if (c >= 0) return range(at_lo, at_hi, stride);
      return range(at_hi, at_lo, stride);
    }
    case Kind::kRange: {
      // Widen to the hull over all iterations; the resulting section loses
      // stride information (conservatively set to 1).
      if (!lo.valid() || !hi.valid()) return strided_unknown(1);
      i64 clo = lo_.coeff(iv);
      i64 chi = hi_.coeff(iv);
      Affine nlo = lo_.subst(iv, clo >= 0 ? lo : hi);
      Affine nhi = hi_.subst(iv, chi >= 0 ? hi : lo);
      if (!nlo.valid() || !nhi.valid()) return strided_unknown(1);
      return range(nlo, nhi, 1);
    }
  }
  return unknown();
}

bool DimSec::depends_on(const LocalSym* v) const {
  switch (kind_) {
    case Kind::kUnknown:
    case Kind::kStridedUnknown:
      return false;
    case Kind::kInvariant: return lo_.depends_on(v);
    case Kind::kRange: return lo_.depends_on(v) || hi_.depends_on(v);
  }
  return false;
}

bool DimSec::has_unit_stride_run(i64 min_run) const {
  if (kind_ == Kind::kStridedUnknown)
    return stride_ == 1;  // unit-stride sweep of unknown length: assume run
  if (kind_ != Kind::kRange || stride_ != 1) return false;
  // Run length is hi - lo + 1 when both are evaluable relative to each
  // other (difference must be constant).
  Affine diff = hi_ - lo_;
  if (!diff.is_constant()) return true;  // symbolic but unit stride: assume
  return diff.constant_value() + 1 >= min_run;
}

std::string DimSec::str() const {
  switch (kind_) {
    case Kind::kUnknown: return "[?]";
    case Kind::kStridedUnknown:
      return "[? : ? : " + std::to_string(stride_) + "]";
    case Kind::kInvariant: return "[" + lo_.str() + "]";
    case Kind::kRange: {
      std::ostringstream os;
      os << "[" << lo_.str() << " : " << hi_.str();
      if (stride_ != 1) os << " : " << stride_;
      os << "]";
      return os.str();
    }
  }
  return "[?]";
}

// ---------------------------------------------------------------------------

bool ranges_intersect(const ConcreteRange& a, const ConcreteRange& b) {
  if (a.empty() || b.empty()) return false;
  i64 lo = std::max(a.lo, b.lo);
  i64 hi = std::min(a.hi, b.hi);
  if (lo > hi) return false;
  i64 s = a.stride;
  i64 t = b.stride;
  FSOPT_CHECK(s > 0 && t > 0, "range strides must be positive");
  i64 g = std::gcd(s, t);
  if ((b.lo - a.lo) % g != 0) return false;
  // CRT: find x ≡ a.lo (mod s), x ≡ b.lo (mod t); smallest such x >= lo.
  // Solve a.lo + i*s = b.lo + j*t.  Using extended gcd on (s, t).
  i64 x0 = 0, y0 = 0;
  // Extended Euclid: g = s*x0 + t*y0.
  {
    i64 old_r = s, r = t, old_s = 1, ss = 0, old_t = 0, tt = 1;
    while (r != 0) {
      i64 q = old_r / r;
      i64 tmp = old_r - q * r;
      old_r = r;
      r = tmp;
      tmp = old_s - q * ss;
      old_s = ss;
      ss = tmp;
      tmp = old_t - q * tt;
      old_t = tt;
      tt = tmp;
    }
    x0 = old_s;
    y0 = old_t;
    (void)y0;
  }
  i64 l = s / g * t;  // lcm
  // One solution: x = a.lo + s * ((b.lo - a.lo)/g * x0 mod (t/g))
  __int128 k = static_cast<__int128>((b.lo - a.lo) / g) * x0;
  i64 m = t / g;
  i64 km = static_cast<i64>(k % m);
  if (km < 0) km += m;
  i64 x = a.lo + km * s;  // smallest solution >= ??? (x >= a.lo, mod lcm)
  // Move x into [lo, lo + l):
  if (x < lo) {
    x += (lo - x + l - 1) / l * l;
  } else {
    x -= (x - lo) / l * l;
  }
  return x >= lo && x <= hi;
}

bool boxes_disjoint(const std::vector<ConcreteRange>& a,
                    const std::vector<ConcreteRange>& b) {
  FSOPT_CHECK(a.size() == b.size(), "box rank mismatch");
  if (a.empty()) return false;  // scalar: same location
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ranges_intersect(a[i], b[i])) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------

Rsd Rsd::subst(const LocalSym* v, const Affine& repl) const {
  std::vector<DimSec> out;
  out.reserve(dims_.size());
  for (const auto& d : dims_) out.push_back(d.subst(v, repl));
  return Rsd(std::move(out));
}

Rsd Rsd::close_loop(const LocalSym* iv, const Affine& lo, const Affine& hi,
                    i64 step) const {
  std::vector<DimSec> out;
  out.reserve(dims_.size());
  for (const auto& d : dims_) out.push_back(d.close_loop(iv, lo, hi, step));
  return Rsd(std::move(out));
}

bool Rsd::depends_on(const LocalSym* v) const {
  for (const auto& d : dims_)
    if (d.depends_on(v)) return true;
  return false;
}

std::vector<ConcreteRange> Rsd::concretize(
    const LocalSym* pdv, i64 pid, const std::vector<i64>& extents) const {
  FSOPT_CHECK(extents.size() == dims_.size(), "extent rank mismatch");
  std::vector<ConcreteRange> out(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    const DimSec& d = dims_[i];
    ConcreteRange full{0, extents[i] - 1, 1};
    switch (d.kind()) {
      case DimSec::Kind::kUnknown:
      case DimSec::Kind::kStridedUnknown:
        // The stride phase is unknown, so the section may touch anything.
        out[i] = full;
        break;
      case DimSec::Kind::kInvariant: {
        auto v = d.invariant_expr().eval_with(pdv, pid);
        if (!v.has_value()) {
          out[i] = full;
        } else {
          i64 x = std::clamp<i64>(*v, 0, extents[i] - 1);
          out[i] = {x, x, 1};
        }
        break;
      }
      case DimSec::Kind::kRange: {
        auto lo = d.lo().eval_with(pdv, pid);
        auto hi = d.hi().eval_with(pdv, pid);
        if (!lo.has_value() || !hi.has_value()) {
          out[i] = full;
        } else {
          i64 l = std::clamp<i64>(*lo, 0, extents[i] - 1);
          i64 h = std::clamp<i64>(*hi, 0, extents[i] - 1);
          if (h < l) std::swap(l, h);
          // Normalize hi onto the progression.
          h = l + (h - l) / d.stride() * d.stride();
          out[i] = {l, h, d.stride()};
        }
        break;
      }
    }
  }
  return out;
}

namespace {

DimSec dim_hull(const DimSec& a, const DimSec& b) {
  if (a == b) return a;
  if (a.is_unknown() || b.is_unknown()) return DimSec::unknown();
  // Promote invariants to degenerate ranges and take component hulls when
  // the symbolic parts agree (differ only in constants).
  auto lo_a = a.kind() == DimSec::Kind::kRange ? a.lo() : a.invariant_expr();
  auto hi_a = a.kind() == DimSec::Kind::kRange ? a.hi() : a.invariant_expr();
  auto lo_b = b.kind() == DimSec::Kind::kRange ? b.lo() : b.invariant_expr();
  auto hi_b = b.kind() == DimSec::Kind::kRange ? b.hi() : b.invariant_expr();
  Affine dlo = lo_a - lo_b;
  Affine dhi = hi_a - hi_b;
  if (!dlo.is_constant() || !dhi.is_constant()) return DimSec::unknown();
  Affine lo = dlo.constant_value() <= 0 ? lo_a : lo_b;
  Affine hi = dhi.constant_value() >= 0 ? hi_a : hi_b;
  i64 sa = a.kind() == DimSec::Kind::kRange ? a.stride() : 1;
  i64 sb = b.kind() == DimSec::Kind::kRange ? b.stride() : 1;
  i64 stride = std::gcd(sa, sb);
  // Strides only remain meaningful if the two sections are in phase.
  if (a.kind() == DimSec::Kind::kRange && b.kind() == DimSec::Kind::kRange &&
      dlo.constant_value() % stride != 0)
    stride = std::gcd(stride, std::abs(dlo.constant_value()));
  if (stride == 0) stride = 1;
  return DimSec::range(lo, hi, stride);
}

}  // namespace

Rsd Rsd::hull(const Rsd& o) const {
  FSOPT_CHECK(rank() == o.rank(), "hull rank mismatch");
  std::vector<DimSec> out;
  out.reserve(rank());
  for (size_t i = 0; i < rank(); ++i)
    out.push_back(dim_hull(dims_[i], o.dims_[i]));
  return Rsd(std::move(out));
}

i64 Rsd::footprint(const LocalSym* pdv, const std::vector<i64>& extents) const {
  auto box = concretize(pdv, 0, extents);
  i64 n = 1;
  for (const auto& r : box) n *= std::max<i64>(r.count(), 1);
  return n;
}

std::string Rsd::str() const {
  std::string s;
  for (const auto& d : dims_) s += d.str();
  if (dims_.empty()) s = "[scalar]";
  return s;
}

// ---------------------------------------------------------------------------

void RsdSet::insert(const Rsd& r) {
  for (const auto& existing : secs_)
    if (existing == r) return;
  secs_.push_back(r);
  if (secs_.size() <= kMaxDescriptors) return;
  // Over the cap: merge the pair whose hull loses the least precision.
  // We approximate "closeness" by choosing the pair whose hull equals one
  // of the inputs when possible, else merge the last two.
  size_t bi = secs_.size() - 2;
  size_t bj = secs_.size() - 1;
  for (size_t i = 0; i < secs_.size(); ++i) {
    for (size_t j = i + 1; j < secs_.size(); ++j) {
      Rsd h = secs_[i].hull(secs_[j]);
      if (h == secs_[i] || h == secs_[j]) {
        bi = i;
        bj = j;
        goto merge;
      }
    }
  }
merge:
  Rsd merged = secs_[bi].hull(secs_[bj]);
  secs_.erase(secs_.begin() + static_cast<std::ptrdiff_t>(bj));
  secs_[bi] = std::move(merged);
}

RsdSet RsdSet::subst(const LocalSym* v, const Affine& repl) const {
  RsdSet out;
  for (const auto& r : secs_) out.insert(r.subst(v, repl));
  return out;
}

std::string RsdSet::str() const {
  std::string s;
  for (const auto& r : secs_) {
    if (!s.empty()) s += ", ";
    s += r.str();
  }
  return s.empty() ? "{}" : "{" + s + "}";
}

}  // namespace fsopt
