#include "rsd/affine.h"

#include <sstream>

namespace fsopt {

Affine Affine::constant(i64 c) {
  Affine a;
  a.valid_ = true;
  a.c0_ = c;
  return a;
}

Affine Affine::variable(const LocalSym* v, i64 coeff, i64 c) {
  Affine a;
  a.valid_ = true;
  a.c0_ = c;
  if (coeff != 0) a.terms_[v] = coeff;
  return a;
}

i64 Affine::constant_value() const {
  FSOPT_CHECK(is_constant(), "affine is not constant");
  return c0_;
}

i64 Affine::coeff(const LocalSym* v) const {
  auto it = terms_.find(v);
  return it != terms_.end() ? it->second : 0;
}

const LocalSym* Affine::sole_var() const {
  if (!valid_ || terms_.size() != 1) return nullptr;
  return terms_.begin()->first;
}

Affine Affine::operator+(const Affine& o) const {
  if (!valid_ || !o.valid_) return invalid();
  Affine r = *this;
  r.c0_ += o.c0_;
  for (const auto& [v, c] : o.terms_) {
    i64 nc = r.coeff(v) + c;
    if (nc == 0) {
      r.terms_.erase(v);
    } else {
      r.terms_[v] = nc;
    }
  }
  return r;
}

Affine Affine::negate() const {
  if (!valid_) return invalid();
  Affine r = *this;
  r.c0_ = -r.c0_;
  for (auto& [v, c] : r.terms_) c = -c;
  return r;
}

Affine Affine::operator-(const Affine& o) const { return *this + o.negate(); }

Affine Affine::operator*(const Affine& o) const {
  if (!valid_ || !o.valid_) return invalid();
  const Affine* k = nullptr;
  const Affine* x = nullptr;
  if (is_constant()) {
    k = this;
    x = &o;
  } else if (o.is_constant()) {
    k = &o;
    x = this;
  } else {
    return invalid();  // product of two symbolic affines is not affine
  }
  i64 f = k->c0_;
  Affine r;
  r.valid_ = true;
  r.c0_ = x->c0_ * f;
  if (f != 0)
    for (const auto& [v, c] : x->terms_) r.terms_[v] = c * f;
  return r;
}

bool Affine::operator==(const Affine& o) const {
  if (valid_ != o.valid_) return false;
  if (!valid_) return true;
  return c0_ == o.c0_ && terms_ == o.terms_;
}

Affine Affine::subst(const LocalSym* v, const Affine& repl) const {
  if (!valid_) return invalid();
  i64 c = coeff(v);
  if (c == 0) return *this;
  Affine without = *this;
  without.terms_.erase(v);
  return without + repl * Affine::constant(c);
}

std::optional<i64> Affine::eval_with(const LocalSym* v, i64 value) const {
  if (!valid_) return std::nullopt;
  i64 r = c0_;
  for (const auto& [var, c] : terms_) {
    if (var == v) {
      r += c * value;
    } else {
      return std::nullopt;
    }
  }
  return r;
}

std::optional<i64> Affine::eval() const {
  if (!valid_ || !terms_.empty()) return std::nullopt;
  return c0_;
}

std::string Affine::str() const {
  if (!valid_) return "<?>";
  std::ostringstream os;
  bool first = true;
  for (const auto& [v, c] : terms_) {
    if (!first) os << (c >= 0 ? " + " : " - ");
    i64 ac = first ? c : std::abs(c);
    if (ac == 1) {
      os << v->name;
    } else if (ac == -1 && first) {
      os << "-" << v->name;
    } else {
      os << ac << "*" << v->name;
    }
    first = false;
  }
  if (c0_ != 0 || first) {
    if (!first) os << (c0_ >= 0 ? " + " : " - ");
    os << (first ? c0_ : std::abs(c0_));
  }
  return os.str();
}

Affine AffineEnv::value_of(const LocalSym* v) const {
  auto it = env_.find(v);
  return it != env_.end() ? it->second : Affine::invalid();
}

void AffineEnv::join(const AffineEnv& other) {
  for (auto& [v, a] : env_) {
    auto it = other.env_.find(v);
    if (it == other.env_.end() || !(it->second == a)) a = Affine::invalid();
  }
  for (const auto& [v, a] : other.env_) {
    (void)a;
    if (env_.find(v) == env_.end()) env_[v] = Affine::invalid();
  }
}

Affine affine_of(const Expr& e, const AffineEnv& env) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Affine::constant(e.int_value);
    case ExprKind::kVar:
      if (e.local != nullptr) return env.value_of(e.local);
      return Affine::invalid();  // global load
    case ExprKind::kUnary:
      if (e.un_op == UnOp::kNeg)
        return affine_of(*e.children[0], env).negate();
      return Affine::invalid();
    case ExprKind::kBinary: {
      Affine l = affine_of(*e.children[0], env);
      Affine r = affine_of(*e.children[1], env);
      switch (e.bin_op) {
        case BinOp::kAdd: return l + r;
        case BinOp::kSub: return l - r;
        case BinOp::kMul: return l * r;
        case BinOp::kDiv:
          // Exact constant division only.
          if (l.valid() && r.is_constant() && r.constant_value() != 0 &&
              l.is_constant() &&
              l.constant_value() % r.constant_value() == 0)
            return Affine::constant(l.constant_value() / r.constant_value());
          return Affine::invalid();
        default:
          return Affine::invalid();
      }
    }
    default:
      return Affine::invalid();
  }
}

}  // namespace fsopt
