// Affine symbolic expressions: c0 + Σ ci·vi over program variables.
//
// These are the index expressions the side-effect analysis manipulates.
// Variables are function locals (formals, induction variables, PDVs); by
// the time summaries reach main, the only variable left standing is the
// process differentiating variable `pid` (plus "unknown" poison).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "lang/ast.h"

namespace fsopt {

class Affine {
 public:
  /// The invalid ("not affine") value.
  Affine() : valid_(false) {}

  static Affine constant(i64 c);
  static Affine variable(const LocalSym* v, i64 coeff = 1, i64 c = 0);
  static Affine invalid() { return Affine(); }

  bool valid() const { return valid_; }
  bool is_constant() const { return valid_ && terms_.empty(); }
  i64 constant_value() const;  // requires is_constant()
  i64 const_term() const { return c0_; }

  /// Coefficient of `v` (0 if absent).
  i64 coeff(const LocalSym* v) const;
  bool depends_on(const LocalSym* v) const { return coeff(v) != 0; }
  /// Number of distinct variables with nonzero coefficient.
  int num_vars() const { return static_cast<int>(terms_.size()); }
  /// The single variable, if exactly one (else nullptr).
  const LocalSym* sole_var() const;
  const std::map<const LocalSym*, i64>& terms() const { return terms_; }

  Affine operator+(const Affine& o) const;
  Affine operator-(const Affine& o) const;
  Affine operator*(const Affine& o) const;  // valid only if one side const
  Affine negate() const;

  bool operator==(const Affine& o) const;

  /// Replace `v` with `repl` (distributes the coefficient).
  Affine subst(const LocalSym* v, const Affine& repl) const;

  /// Evaluate with `v` bound to `value`; nullopt if other variables remain.
  std::optional<i64> eval_with(const LocalSym* v, i64 value) const;
  /// Evaluate a constant-only affine; nullopt if variables remain.
  std::optional<i64> eval() const;

  std::string str() const;

 private:
  bool valid_ = true;
  i64 c0_ = 0;
  std::map<const LocalSym*, i64> terms_;  // coeff != 0 invariant
};

/// Build the affine form of an expression, looking local variables up in
/// `env` (a map from local to its current affine value; absent = the local
/// itself is the symbol, which callers use for formals/induction vars).
/// Returns invalid() for anything non-affine (global loads, calls, ...).
class AffineEnv {
 public:
  /// Binding for a local: either a known affine value or "opaque" (the
  /// local stands for itself, e.g. formals and induction variables).
  void bind(const LocalSym* v, const Affine& value) { env_[v] = value; }
  void make_opaque(const LocalSym* v) { env_[v] = Affine::variable(v); }
  void clear(const LocalSym* v) { env_.erase(v); }
  /// Value of `v`: bound value, or invalid() if never bound (uninitialized
  /// locals are treated as unknown).
  Affine value_of(const LocalSym* v) const;
  bool has(const LocalSym* v) const { return env_.count(v) != 0; }

  /// Join with another environment (control-flow merge): bindings that
  /// disagree become invalid.
  void join(const AffineEnv& other);

  const std::map<const LocalSym*, Affine>& bindings() const { return env_; }

 private:
  std::map<const LocalSym*, Affine> env_;
};

/// Affine form of expression `e` under `env`.
Affine affine_of(const Expr& e, const AffineEnv& env);

}  // namespace fsopt
