// Call graph construction and bottom-up (reverse topological) ordering.
//
// The paper's interprocedural stages (per-process control flow, summary
// side effects) process functions bottom-up over an acyclic call graph,
// translating callee summaries into caller context at each call site.
#pragma once

#include <functional>
#include <vector>

#include "lang/ast.h"

namespace fsopt {

/// One call site: the call expression and the statement containing it.
struct CallSite {
  const FuncDecl* caller = nullptr;
  const FuncDecl* callee = nullptr;
  const Expr* call = nullptr;
};

class CallGraph {
 public:
  /// Build from a sema-checked program.
  explicit CallGraph(const Program& prog);

  /// All call sites in the program.
  const std::vector<CallSite>& sites() const { return sites_; }

  /// Direct callees of `fn` (deduplicated).
  const std::vector<const FuncDecl*>& callees(const FuncDecl& fn) const;

  /// Functions in bottom-up order: every function appears after all of its
  /// callees.  Requires the (sema-enforced) absence of recursion.
  const std::vector<const FuncDecl*>& bottom_up() const { return order_; }

  /// True if `fn` is reachable from main.
  bool reachable_from_main(const FuncDecl& fn) const;

 private:
  const Program& prog_;
  std::vector<CallSite> sites_;
  std::vector<std::vector<const FuncDecl*>> callees_;  // by function id
  std::vector<const FuncDecl*> order_;
  std::vector<bool> reachable_;
};

/// Visit every expression in a statement tree (pre-order).
void for_each_expr(const Stmt& s, const std::function<void(const Expr&)>& fn);

/// Visit every statement in a tree (pre-order), including `s` itself.
void for_each_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn);

}  // namespace fsopt
