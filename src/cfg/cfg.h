// Statement-level control-flow graphs for PPL functions.
//
// The per-process control-flow analysis (stage 1 of the paper's pipeline)
// annotates CFG nodes with the set of processes that can execute them; the
// static profiler annotates them with estimated execution frequencies.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "lang/ast.h"

namespace fsopt {

struct CfgNode {
  int id = -1;
  const Stmt* stmt = nullptr;  // null for synthetic entry/exit
  bool is_entry = false;
  bool is_exit = false;
  std::vector<CfgNode*> succs;
  std::vector<CfgNode*> preds;
  int loop_depth = 0;  // number of enclosing loops
};

/// CFG for one function.  Nodes are created per executable statement (block
/// statements are transparent).  `if` and loop statements get a node for
/// the condition evaluation; their bodies are linked as successors.
class Cfg {
 public:
  explicit Cfg(const FuncDecl& fn);

  const FuncDecl& function() const { return *fn_; }
  CfgNode& entry() { return *entry_; }
  CfgNode& exit() { return *exit_; }
  const std::vector<std::unique_ptr<CfgNode>>& nodes() const { return nodes_; }

  /// The CFG node created for `stmt` (condition node for composites),
  /// or nullptr.
  CfgNode* node_for(const Stmt& stmt) const;

  /// Nodes in reverse post order from entry.
  std::vector<CfgNode*> rpo() const;

 private:
  CfgNode* new_node(const Stmt* stmt, int loop_depth);
  // Builds CFG for `s`; returns {entry node, exit nodes to be wired to the
  // following statement}.
  struct Frag {
    CfgNode* entry = nullptr;
    std::vector<CfgNode*> exits;
  };
  Frag build_stmt(const Stmt& s, int loop_depth);
  Frag build_block(const Stmt& s, int loop_depth);
  static void link(CfgNode* from, CfgNode* to);

  const FuncDecl* fn_;
  std::vector<std::unique_ptr<CfgNode>> nodes_;
  CfgNode* entry_ = nullptr;
  CfgNode* exit_ = nullptr;
  std::unordered_map<const Stmt*, CfgNode*> by_stmt_;
};

}  // namespace fsopt
