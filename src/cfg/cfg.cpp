#include "cfg/cfg.h"

#include <algorithm>

namespace fsopt {

CfgNode* Cfg::new_node(const Stmt* stmt, int loop_depth) {
  auto n = std::make_unique<CfgNode>();
  n->id = static_cast<int>(nodes_.size());
  n->stmt = stmt;
  n->loop_depth = loop_depth;
  CfgNode* raw = n.get();
  nodes_.push_back(std::move(n));
  if (stmt != nullptr) by_stmt_[stmt] = raw;
  return raw;
}

void Cfg::link(CfgNode* from, CfgNode* to) {
  from->succs.push_back(to);
  to->preds.push_back(from);
}

Cfg::Cfg(const FuncDecl& fn) : fn_(&fn) {
  entry_ = new_node(nullptr, 0);
  entry_->is_entry = true;
  exit_ = new_node(nullptr, 0);
  exit_->is_exit = true;

  if (fn.body != nullptr) {
    Frag f = build_stmt(*fn.body, 0);
    if (f.entry != nullptr) {
      link(entry_, f.entry);
      for (CfgNode* e : f.exits) link(e, exit_);
    } else {
      link(entry_, exit_);
    }
  } else {
    link(entry_, exit_);
  }
}

Cfg::Frag Cfg::build_block(const Stmt& s, int loop_depth) {
  Frag out;
  std::vector<CfgNode*> pending;  // exits waiting to be wired
  for (const auto& c : s.stmts) {
    Frag f = build_stmt(*c, loop_depth);
    if (f.entry == nullptr) continue;  // empty nested block
    if (out.entry == nullptr) {
      out.entry = f.entry;
    } else {
      for (CfgNode* e : pending) link(e, f.entry);
    }
    pending = std::move(f.exits);
  }
  out.exits = std::move(pending);
  return out;
}

Cfg::Frag Cfg::build_stmt(const Stmt& s, int loop_depth) {
  switch (s.kind) {
    case StmtKind::kBlock:
      return build_block(s, loop_depth);
    case StmtKind::kIf: {
      CfgNode* cond = new_node(&s, loop_depth);
      Frag out;
      out.entry = cond;
      Frag then_f = build_stmt(*s.then_block, loop_depth);
      if (then_f.entry != nullptr) {
        link(cond, then_f.entry);
        out.exits.insert(out.exits.end(), then_f.exits.begin(),
                         then_f.exits.end());
      } else {
        out.exits.push_back(cond);
      }
      if (s.else_block != nullptr) {
        Frag else_f = build_stmt(*s.else_block, loop_depth);
        if (else_f.entry != nullptr) {
          link(cond, else_f.entry);
          out.exits.insert(out.exits.end(), else_f.exits.begin(),
                           else_f.exits.end());
        } else {
          out.exits.push_back(cond);
        }
      } else {
        out.exits.push_back(cond);
      }
      return out;
    }
    case StmtKind::kWhile: {
      CfgNode* cond = new_node(&s, loop_depth);
      Frag body = build_stmt(*s.body, loop_depth + 1);
      if (body.entry != nullptr) {
        link(cond, body.entry);
        for (CfgNode* e : body.exits) link(e, cond);
      } else {
        link(cond, cond);
      }
      Frag out;
      out.entry = cond;
      out.exits.push_back(cond);
      return out;
    }
    case StmtKind::kFor: {
      CfgNode* init = new_node(s.init_stmt.get(), loop_depth);
      CfgNode* cond = new_node(&s, loop_depth);
      link(init, cond);
      CfgNode* step = new_node(s.step_stmt.get(), loop_depth + 1);
      Frag body = build_stmt(*s.body, loop_depth + 1);
      if (body.entry != nullptr) {
        link(cond, body.entry);
        for (CfgNode* e : body.exits) link(e, step);
      } else {
        link(cond, step);
      }
      link(step, cond);
      Frag out;
      out.entry = init;
      out.exits.push_back(cond);
      return out;
    }
    case StmtKind::kReturn: {
      CfgNode* n = new_node(&s, loop_depth);
      link(n, exit_);
      return {n, {}};  // no fallthrough
    }
    default: {
      CfgNode* n = new_node(&s, loop_depth);
      return {n, {n}};
    }
  }
}

CfgNode* Cfg::node_for(const Stmt& stmt) const {
  auto it = by_stmt_.find(&stmt);
  return it != by_stmt_.end() ? it->second : nullptr;
}

std::vector<CfgNode*> Cfg::rpo() const {
  std::vector<CfgNode*> post;
  std::vector<bool> seen(nodes_.size(), false);
  // Iterative post-order DFS.
  std::vector<std::pair<CfgNode*, size_t>> stack;
  stack.push_back({entry_, 0});
  seen[static_cast<size_t>(entry_->id)] = true;
  while (!stack.empty()) {
    auto& [n, i] = stack.back();
    if (i < n->succs.size()) {
      CfgNode* s = n->succs[i++];
      if (!seen[static_cast<size_t>(s->id)]) {
        seen[static_cast<size_t>(s->id)] = true;
        stack.push_back({s, 0});
      }
    } else {
      post.push_back(n);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

}  // namespace fsopt
