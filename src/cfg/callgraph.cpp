#include "cfg/callgraph.h"

#include <algorithm>

namespace fsopt {

namespace {

void walk_expr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& c : e.children) walk_expr(*c, fn);
}

}  // namespace

void for_each_expr(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  for_each_stmt(s, [&](const Stmt& st) {
    for (const Expr* e : {st.init.get(), st.target.get(), st.value.get(),
                          st.cond.get()})
      if (e != nullptr) walk_expr(*e, fn);
  });
}

void for_each_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn) {
  fn(s);
  for (const auto& c : s.stmts) for_each_stmt(*c, fn);
  for (const Stmt* c :
       {s.then_block.get(), s.else_block.get(), s.body.get(),
        s.init_stmt.get(), s.step_stmt.get()})
    if (c != nullptr) for_each_stmt(*c, fn);
}

CallGraph::CallGraph(const Program& prog) : prog_(prog) {
  callees_.resize(prog.funcs.size());
  for (const auto& fn : prog.funcs) {
    if (!fn->body) continue;
    for_each_expr(*fn->body, [&](const Expr& e) {
      if (e.kind != ExprKind::kCall || e.callee == nullptr) return;
      sites_.push_back({fn.get(), e.callee, &e});
      auto& outs = callees_[static_cast<size_t>(fn->id)];
      if (std::find(outs.begin(), outs.end(), e.callee) == outs.end())
        outs.push_back(e.callee);
    });
  }

  // Bottom-up order via post-order DFS from every function.
  std::vector<bool> done(prog.funcs.size(), false);
  std::function<void(const FuncDecl*)> visit = [&](const FuncDecl* f) {
    if (done[static_cast<size_t>(f->id)]) return;
    done[static_cast<size_t>(f->id)] = true;
    for (const FuncDecl* c : callees_[static_cast<size_t>(f->id)]) visit(c);
    order_.push_back(f);
  };
  for (const auto& fn : prog.funcs) visit(fn.get());

  // Reachability from main.
  reachable_.assign(prog.funcs.size(), false);
  if (prog.main != nullptr) {
    std::vector<const FuncDecl*> stack{prog.main};
    reachable_[static_cast<size_t>(prog.main->id)] = true;
    while (!stack.empty()) {
      const FuncDecl* f = stack.back();
      stack.pop_back();
      for (const FuncDecl* c : callees_[static_cast<size_t>(f->id)]) {
        if (!reachable_[static_cast<size_t>(c->id)]) {
          reachable_[static_cast<size_t>(c->id)] = true;
          stack.push_back(c);
        }
      }
    }
  }
}

const std::vector<const FuncDecl*>& CallGraph::callees(
    const FuncDecl& fn) const {
  return callees_[static_cast<size_t>(fn.id)];
}

bool CallGraph::reachable_from_main(const FuncDecl& fn) const {
  return reachable_[static_cast<size_t>(fn.id)];
}

}  // namespace fsopt
