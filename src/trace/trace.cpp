#include "trace/trace.h"

// Header-only types; this translation unit anchors the vtable.

namespace fsopt {}
