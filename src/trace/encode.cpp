#include "trace/encode.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/obs.h"

namespace fsopt {

namespace {

// LEB128 varints with zigzag for signed deltas.  The codec is a hot
// record-time path, so the common one-byte case stays branch-light.

inline void put_varint(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

inline u64 get_varint(const u8*& p, const u8* end) {
  u64 v = 0;
  int shift = 0;
  while (true) {
    FSOPT_CHECK(p != end, "truncated varint in encoded trace chunk");
    u8 b = *p++;
    v |= static_cast<u64>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    FSOPT_CHECK(shift < 64, "overlong varint in encoded trace chunk");
  }
}

inline u64 zigzag(i64 v) {
  return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}

inline i64 unzigzag(u64 v) {
  return static_cast<i64>((v >> 1) ^ (~(v & 1) + 1));
}

// Packed meta byte: proc in the high 6 bits, then the write bit, then
// the 8-byte-size bit.  decode is pack's exact inverse.
inline u8 pack_meta(const MemRef& r) {
  return static_cast<u8>((static_cast<u8>(r.proc) << 2) |
                         (r.type == RefType::kWrite ? 2 : 0) |
                         (r.size == 8 ? 1 : 0));
}

}  // namespace

u64 EncodedTrace::memory_bytes() const {
  u64 total = 0;
  for (const EncodedChunk& c : chunks_)
    total += sizeof(EncodedChunk) + c.meta.size() + c.addr.size();
  return total;
}

namespace {

/// Resumable decoder over one chunk: yields the stream in caller-sized
/// batches without materializing the whole chunk.
struct ChunkCursor {
  const EncodedChunk& c;
  const u8 *mp, *mend, *ap, *aend;
  i64 last_addr[TraceEncoder::kMaxProcs] = {};
  u32 decoded = 0;
  MemRef run_ref{};   // meta of the open run
  u64 run_left = 0;

  explicit ChunkCursor(const EncodedChunk& ch)
      : c(ch),
        mp(ch.meta.data()),
        mend(ch.meta.data() + ch.meta.size()),
        ap(ch.addr.data()),
        aend(ch.addr.data() + ch.addr.size()) {}

  bool done() const { return decoded == c.refs; }

  /// Decode up to `cap` references into `out`; returns the count.
  size_t next(MemRef* out, size_t cap) {
    size_t n = 0;
    while (n < cap && decoded < c.refs) {
      if (run_left == 0) {
        FSOPT_CHECK(mp != mend,
                    "truncated meta column in encoded trace chunk");
        u8 meta = *mp++;
        run_left = get_varint(mp, mend);
        FSOPT_CHECK(run_left > 0 && decoded + run_left <= c.refs,
                    "corrupt run length in encoded trace chunk");
        run_ref.proc = static_cast<u8>(meta >> 2);
        run_ref.type = (meta & 2) != 0 ? RefType::kWrite : RefType::kRead;
        run_ref.size = (meta & 1) != 0 ? 8 : 4;
      }
      i64& last = last_addr[run_ref.proc];
      const u64 take = std::min<u64>(run_left, cap - n);
      u64 done = 0;
      // SWAR fast path: most address deltas are one byte (|delta| < 64
      // after zigzag), so one 8-byte load whose continuation bits are
      // all clear yields eight complete varints — decoded with shifts
      // instead of eight bounds-checked byte loops.  A window with any
      // continuation bit falls back to one scalar varint, then retries
      // the fast path on the next window.
      while (done + 8 <= take && aend - ap >= 8) {
        u64 x;
        std::memcpy(&x, ap, 8);
        if ((x & 0x8080808080808080ull) == 0) {
          ap += 8;
          for (int j = 0; j < 8; ++j) {
            last += unzigzag((x >> (8 * j)) & 0xFF);
            run_ref.addr = last;
            out[n++] = run_ref;
          }
          done += 8;
        } else {
          last += unzigzag(get_varint(ap, aend));
          run_ref.addr = last;
          out[n++] = run_ref;
          ++done;
        }
      }
      for (; done < take; ++done) {
        last += unzigzag(get_varint(ap, aend));
        run_ref.addr = last;
        out[n++] = run_ref;
      }
      run_left -= take;
      decoded += static_cast<u32>(take);
    }
    if (done())
      FSOPT_CHECK(mp == mend && ap == aend && run_left == 0,
                  "trailing bytes in encoded trace chunk");
    return n;
  }
};

}  // namespace

/// Replay hands the sink one sub-batch at a time: a whole decoded chunk
/// (1 MB of MemRefs at the default chunk size) would fall out of cache
/// between the decode and the sink's walk, while a sub-batch stays
/// resident across the handoff.
size_t replay_batch_refs() {
  static const size_t cached = [] {
    constexpr size_t kDefault = 4096;
    const char* env = std::getenv("FSOPT_REPLAY_BATCH");
    if (env == nullptr || env[0] == '\0') return kDefault;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0) return kDefault;
    return std::clamp<size_t>(static_cast<size_t>(v), 64, size_t{1} << 20);
  }();
  return cached;
}

void EncodedTrace::decode_chunk(size_t k, std::vector<MemRef>& out) const {
  const EncodedChunk& c = chunks_[k];
  out.resize(c.refs);
  ChunkCursor cur(c);
  const size_t n = cur.next(out.data(), c.refs);
  FSOPT_CHECK(n == c.refs && cur.done(),
              "corrupt run length in encoded trace chunk");
}

void EncodedTrace::replay(TraceSink& sink) const {
  std::vector<MemRef> scratch(replay_batch_refs());
  for (const EncodedChunk& c : chunks_) {
    ChunkCursor cur(c);
    while (!cur.done()) {
      const size_t n = cur.next(scratch.data(), scratch.size());
      if (n != 0) sink.on_batch(scratch.data(), n);
    }
  }
}

void EncodedTrace::replay_pipelined(TraceSink& sink) const {
  const char* env = std::getenv("FSOPT_PIPELINE");
  const bool forced_off = env != nullptr && env[0] == '0' && env[1] == '\0';
  const bool forced_on = env != nullptr && env[0] == '1' && env[1] == '\0';
  const bool threaded =
      !forced_off && chunks_.size() >= 2 &&
      (forced_on || std::thread::hardware_concurrency() >= 2);
  if (!threaded) {
    // Nothing to overlap (or no spare hardware thread to decode on):
    // the serial path is the same stream without the hand-off cost.
    replay(sink);
    return;
  }

  const size_t batch = replay_batch_refs();

  // Two rotating chunk buffers: the decoder fills one while the
  // consumer slices the other into replay()-identical sub-batches.
  // The buffers persist across chunks, so after the first two fills
  // the pipeline allocates nothing.
  struct Slot {
    std::vector<MemRef> refs;
    size_t n = 0;
    bool full = false;
  };
  Slot slots[2];
  std::mutex mu;
  std::condition_variable cv_full, cv_free;
  bool decoder_done = false;
  bool aborted = false;
  std::exception_ptr decoder_err;

  std::thread decoder([&] {
    try {
      size_t which = 0;
      for (const EncodedChunk& c : chunks_) {
        Slot& s = slots[which];
        {
          std::unique_lock<std::mutex> lk(mu);
          cv_free.wait(lk, [&] { return !s.full || aborted; });
          if (aborted) break;
        }
        obs::Span span("replay", "decode_chunk");
        s.refs.resize(c.refs);
        ChunkCursor cur(c);
        const size_t n = cur.next(s.refs.data(), c.refs);
        FSOPT_CHECK(n == c.refs && cur.done(),
                    "corrupt run length in encoded trace chunk");
        s.n = n;
        if (span.active()) span.arg("refs", static_cast<double>(n));
        {
          std::lock_guard<std::mutex> lk(mu);
          s.full = true;
        }
        cv_full.notify_one();
        which ^= 1;
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu);
      decoder_err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      decoder_done = true;
    }
    cv_full.notify_one();
  });

  size_t which = 0;
  size_t chunks_left = chunks_.size();
  try {
    while (chunks_left > 0) {
      Slot& s = slots[which];
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_full.wait(lk, [&] { return s.full || decoder_done; });
        if (!s.full) break;  // decoder died; its error is rethrown below
      }
      obs::Span span("replay", "sim_chunk");
      for (size_t off = 0; off < s.n; off += batch)
        sink.on_batch(s.refs.data() + off, std::min(batch, s.n - off));
      if (span.active()) span.arg("refs", static_cast<double>(s.n));
      {
        std::lock_guard<std::mutex> lk(mu);
        s.full = false;
      }
      cv_free.notify_one();
      which ^= 1;
      --chunks_left;
    }
  } catch (...) {
    // The sink threw mid-stream; release the decoder (it may be
    // blocked on a free slot) and propagate the sink's error.
    {
      std::lock_guard<std::mutex> lk(mu);
      aborted = true;
    }
    cv_free.notify_all();
    decoder.join();
    throw;
  }
  decoder.join();
  if (decoder_err) std::rethrow_exception(decoder_err);
}

TraceEncoder::TraceEncoder(size_t chunk_refs)
    : chunk_refs_(chunk_refs) {
  FSOPT_CHECK(chunk_refs_ > 0, "TraceEncoder chunk size must be > 0");
  std::memset(last_addr_, 0, sizeof(last_addr_));
}

void TraceEncoder::flush_run() {
  if (run_len_ == 0) return;
  cur_.meta.push_back(run_meta_);
  put_varint(cur_.meta, run_len_);
  run_len_ = 0;
}

void TraceEncoder::append(const MemRef* refs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const MemRef& r = refs[i];
    FSOPT_CHECK(static_cast<size_t>(r.proc) < kMaxProcs,
                "trace encoder supports at most 64 processors");
    FSOPT_CHECK(r.size == 4 || r.size == 8,
                "trace encoder supports 4- and 8-byte references");
    u8 meta = pack_meta(r);
    if (run_len_ > 0 && meta != run_meta_) flush_run();
    run_meta_ = meta;
    ++run_len_;
    i64& last = last_addr_[r.proc];
    put_varint(cur_.addr, zigzag(r.addr - last));
    last = r.addr;
    if (++cur_.refs == chunk_refs_) {
      flush_run();
      cur_.meta.shrink_to_fit();
      cur_.addr.shrink_to_fit();
      out_.chunks_.push_back(std::move(cur_));
      cur_ = EncodedChunk{};
      std::memset(last_addr_, 0, sizeof(last_addr_));
    }
    ++out_.size_;
  }
}

EncodedTrace TraceEncoder::take() {
  flush_run();
  if (cur_.refs > 0) {
    cur_.meta.shrink_to_fit();
    cur_.addr.shrink_to_fit();
    out_.chunks_.push_back(std::move(cur_));
    cur_ = EncodedChunk{};
  }
  std::memset(last_addr_, 0, sizeof(last_addr_));
  EncodedTrace done = std::move(out_);
  done.chunk_refs_ = chunk_refs_;
  out_ = EncodedTrace{};
  return done;
}

EncodedTrace encode_trace(const TraceBuffer& trace, size_t chunk_refs) {
  TraceEncoder enc(chunk_refs);
  trace.replay(enc);
  return enc.take();
}

}  // namespace fsopt
