#include "trace/shard.h"

#include <limits>

namespace fsopt {

namespace {

/// Routes a replayed stream into the per-shard slices.
class PartitionSink : public TraceSink {
 public:
  explicit PartitionSink(TracePartition& out) : out_(out) {}

  void on_ref(const MemRef& ref) override { route(ref); }
  void on_batch(const MemRef* refs, size_t n) override {
    for (size_t i = 0; i < n; ++i) route(refs[i]);
  }

 private:
  void route(const MemRef& ref) {
    ++out_.refs;
    i64 bs = out_.block_size;
    i64 first = ref.addr / bs;
    i64 last = (ref.addr + ref.size - 1) / bs;
    i64 k = static_cast<i64>(out_.shards);
    if (first == last) {
      out_.shard[static_cast<size_t>(first % k)].refs.push_back(ref);
      return;
    }
    FSOPT_CHECK(out_.split_origin.size() <
                    std::numeric_limits<u32>::max(),
                "too many split references in one trace");
    u32 ordinal = static_cast<u32>(out_.split_origin.size());
    out_.split_origin.push_back(ref);
    u8 part = 0;
    for (i64 b = first; b <= last; ++b) {
      i64 lo = std::max(ref.addr, b * bs);
      i64 hi = std::min(ref.addr + ref.size, (b + 1) * bs);
      TraceShard& s = out_.shard[static_cast<size_t>(b % k)];
      s.splits.push_back({static_cast<u64>(s.refs.size()), ordinal, part++,
                          MemRef{lo, static_cast<u8>(hi - lo), ref.proc,
                                 ref.type}});
    }
  }

  TracePartition& out_;
};

}  // namespace

namespace {

PartitionSink make_partition(TracePartition& out, i64 block_size,
                             int shards) {
  FSOPT_CHECK(block_size >= 4, "block size must be >= 4");
  FSOPT_CHECK(shards >= 1, "shard count must be >= 1");
  out.block_size = block_size;
  out.shards = shards;
  out.shard.resize(static_cast<size_t>(shards));
  return PartitionSink(out);
}

}  // namespace

TracePartition partition_trace(const TraceBuffer& trace, i64 block_size,
                               int shards) {
  TracePartition out;
  PartitionSink sink = make_partition(out, block_size, shards);
  trace.replay(sink);
  return out;
}

TracePartition partition_trace(const EncodedTrace& trace, i64 block_size,
                               int shards) {
  TracePartition out;
  PartitionSink sink = make_partition(out, block_size, shards);
  trace.replay(sink);
  return out;
}

// The region partition IS a block partition taken at the region size:
// shard k owns the references whose region index addr / region_bytes
// is congruent to k, and region-spanning references split into
// per-region pieces with the same (ordinal, part) tags.

MultiTracePartition partition_trace_multi(const TraceBuffer& trace,
                                          i64 region_bytes, int shards) {
  return {partition_trace(trace, region_bytes, shards), region_bytes};
}

MultiTracePartition partition_trace_multi(const EncodedTrace& trace,
                                          i64 region_bytes, int shards) {
  return {partition_trace(trace, region_bytes, shards), region_bytes};
}

}  // namespace fsopt
