// Memory-reference traces.
//
// The interpreter stands in for the paper's software tracing tool
// [EKKL90]: every shared-data reference a simulated process makes (data,
// lock words, barrier state) is emitted as a MemRef to a TraceSink.
//
// Delivery is batched: the interpreter stages references and hands the
// sink whole runs of them through on_batch(), so a sink pays one virtual
// dispatch per batch instead of one per reference.  Sinks that only
// implement on_ref() still work — the default on_batch() falls back to a
// per-reference loop.
//
// For the record-once/replay-many pipeline, a TraceBuffer captures one
// execution's reference stream in order and replays it into any number of
// sinks (driver/experiment.h replays the seven paper block sizes — in
// parallel — from a single interpreter run).
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "support/common.h"

namespace fsopt {

enum class RefType : u8 { kRead, kWrite };

struct MemRef {
  i64 addr = 0;
  u8 size = 0;   // bytes: 4 or 8
  u8 proc = 0;
  RefType type = RefType::kRead;
  bool operator==(const MemRef&) const = default;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_ref(const MemRef& ref) = 0;
  /// Deliver `n` consecutive references in trace order.  Override when the
  /// sink can amortise work across the batch; the default forwards each
  /// reference to on_ref.
  virtual void on_batch(const MemRef* refs, size_t n) {
    for (size_t i = 0; i < n; ++i) on_ref(refs[i]);
  }
};

/// Counts references (total and per type).
class CountingSink : public TraceSink {
 public:
  void on_ref(const MemRef& ref) override {
    ++total_;
    if (ref.type == RefType::kWrite) ++writes_;
  }
  void on_batch(const MemRef* refs, size_t n) override {
    total_ += n;
    for (size_t i = 0; i < n; ++i)
      if (refs[i].type == RefType::kWrite) ++writes_;
  }
  u64 total() const { return total_; }
  u64 writes() const { return writes_; }
  u64 reads() const { return total_ - writes_; }

 private:
  u64 total_ = 0;
  u64 writes_ = 0;
};

/// Stores references (tests / small traces only).
class VectorSink : public TraceSink {
 public:
  void on_ref(const MemRef& ref) override { refs_.push_back(ref); }
  void on_batch(const MemRef* refs, size_t n) override {
    refs_.insert(refs_.end(), refs, refs + n);
  }
  const std::vector<MemRef>& refs() const { return refs_; }

 private:
  std::vector<MemRef> refs_;
};

/// Fans out to several sinks (non-owning).
class MultiSink : public TraceSink {
 public:
  void add(TraceSink* s) { sinks_.push_back(s); }
  void on_ref(const MemRef& ref) override {
    for (TraceSink* s : sinks_) s->on_ref(ref);
  }
  void on_batch(const MemRef* refs, size_t n) override {
    for (TraceSink* s : sinks_) s->on_batch(refs, n);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Invokes a callback per reference.
class CallbackSink : public TraceSink {
 public:
  explicit CallbackSink(std::function<void(const MemRef&)> fn)
      : fn_(std::move(fn)) {}
  void on_ref(const MemRef& ref) override { fn_(ref); }
  void on_batch(const MemRef* refs, size_t n) override {
    for (size_t i = 0; i < n; ++i) fn_(refs[i]);
  }

 private:
  std::function<void(const MemRef&)> fn_;
};

/// A recorded reference stream: record once (as a sink), replay any number
/// of times.  Storage is chunked so recording never reallocates or copies
/// previously recorded references, and replay delivers whole chunks
/// through on_batch.  Replay is const — concurrent replays into
/// independent sinks are safe.
class TraceBuffer : public TraceSink {
 public:
  /// References per chunk.  The default keeps chunks around 1 MiB; tests
  /// shrink it to exercise chunk-boundary handling.
  static constexpr size_t kDefaultChunkRefs = 1 << 16;

  explicit TraceBuffer(size_t chunk_refs = kDefaultChunkRefs)
      : chunk_refs_(chunk_refs) {
    FSOPT_CHECK(chunk_refs_ > 0, "TraceBuffer chunk size must be > 0");
  }

  void on_ref(const MemRef& ref) override { append(&ref, 1); }
  void on_batch(const MemRef* refs, size_t n) override { append(refs, n); }

  /// Deliver the whole recorded stream, in order, to `sink`.
  void replay(TraceSink& sink) const {
    for (const std::vector<MemRef>& c : chunks_)
      if (!c.empty()) sink.on_batch(c.data(), c.size());
  }

  u64 size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Heap bytes held by the recorded chunks.
  u64 memory_bytes() const {
    return static_cast<u64>(chunks_.size()) * chunk_refs_ * sizeof(MemRef);
  }
  void clear() {
    chunks_.clear();
    size_ = 0;
  }

 private:
  void append(const MemRef* refs, size_t n) {
    while (n > 0) {
      if (chunks_.empty() || chunks_.back().size() == chunk_refs_) {
        chunks_.emplace_back();
        chunks_.back().reserve(chunk_refs_);
      }
      std::vector<MemRef>& back = chunks_.back();
      size_t room = chunk_refs_ - back.size();
      size_t take = std::min(room, n);
      back.insert(back.end(), refs, refs + take);
      refs += take;
      n -= take;
      size_ += take;
    }
  }

  size_t chunk_refs_;
  std::vector<std::vector<MemRef>> chunks_;
  u64 size_ = 0;
};

}  // namespace fsopt
