// Memory-reference traces.
//
// The interpreter stands in for the paper's software tracing tool
// [EKKL90]: every shared-data reference a simulated process makes (data,
// lock words, barrier state) is emitted as a MemRef to a TraceSink.  The
// cache study attaches one simulator per block size to a fan-out sink and
// measures all block sizes in a single execution.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "support/common.h"

namespace fsopt {

enum class RefType : u8 { kRead, kWrite };

struct MemRef {
  i64 addr = 0;
  u8 size = 0;   // bytes: 4 or 8
  u8 proc = 0;
  RefType type = RefType::kRead;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_ref(const MemRef& ref) = 0;
};

/// Counts references (total and per type).
class CountingSink : public TraceSink {
 public:
  void on_ref(const MemRef& ref) override {
    ++total_;
    if (ref.type == RefType::kWrite) ++writes_;
  }
  u64 total() const { return total_; }
  u64 writes() const { return writes_; }
  u64 reads() const { return total_ - writes_; }

 private:
  u64 total_ = 0;
  u64 writes_ = 0;
};

/// Stores references (tests / small traces only).
class VectorSink : public TraceSink {
 public:
  void on_ref(const MemRef& ref) override { refs_.push_back(ref); }
  const std::vector<MemRef>& refs() const { return refs_; }

 private:
  std::vector<MemRef> refs_;
};

/// Fans out to several sinks (non-owning).
class MultiSink : public TraceSink {
 public:
  void add(TraceSink* s) { sinks_.push_back(s); }
  void on_ref(const MemRef& ref) override {
    for (TraceSink* s : sinks_) s->on_ref(ref);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Invokes a callback per reference.
class CallbackSink : public TraceSink {
 public:
  explicit CallbackSink(std::function<void(const MemRef&)> fn)
      : fn_(std::move(fn)) {}
  void on_ref(const MemRef& ref) override { fn_(ref); }

 private:
  std::function<void(const MemRef&)> fn_;
};

}  // namespace fsopt
