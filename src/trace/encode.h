// Compressed columnar trace storage.
//
// A raw MemRef costs 16 bytes; recorded traces of a few million
// references dominate the memory footprint of a block-size sweep, and
// re-streaming them once per cache configuration dominates its memory
// traffic.  EncodedTrace stores the same stream in independently
// decodable structure-of-arrays chunks at ~2-4 bytes per reference:
//
//   * meta column — (proc, type, size) packed into one byte and
//     run-length encoded: consecutive references by the same processor
//     with the same type and size collapse to (byte, varint count).
//   * addr column — per-processor delta encoding: each reference stores
//     the zigzag-varint difference from the *same processor's* previous
//     address.  Per-processor deltas are small (each simulated process
//     walks its own strided working set) even when the global stream
//     interleaves processors.
//
// Every chunk encodes up to chunk_refs references and resets the
// per-processor address state, so chunks decode independently and in any
// order — a replay can stream chunk by chunk through a small scratch
// buffer, and partition_trace can consume the stream without ever
// materializing the full raw trace.
//
// TraceEncoder is a TraceSink, so the interpreter can record straight
// into the compressed form (driver record_encoded_trace) — the raw
// 16-byte stream never exists in memory.
#pragma once

#include <vector>

#include "trace/trace.h"

namespace fsopt {

/// One independently decodable run of up to chunk_refs references.
struct EncodedChunk {
  u32 refs = 0;
  std::vector<u8> meta;  // RLE (packed meta byte, varint run length)
  std::vector<u8> addr;  // per-proc delta, zigzag varint
};

/// A compressed recorded trace: decode-only once built (use TraceEncoder
/// or encode_trace to build one).  Replay is const — concurrent replays
/// and per-chunk decodes into independent sinks are safe.
class EncodedTrace {
 public:
  u64 size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t chunk_count() const { return chunks_.size(); }
  /// References in chunk `k`.
  size_t chunk_size(size_t k) const { return chunks_[k].refs; }

  /// Heap bytes held by the encoded columns.
  u64 memory_bytes() const;
  /// Average encoded bytes per reference (0 for an empty trace).
  double bytes_per_ref() const {
    return size_ == 0 ? 0.0
                      : static_cast<double>(memory_bytes()) /
                            static_cast<double>(size_);
  }

  /// Decode chunk `k` into `out` (replacing its contents).  Chunks are
  /// self-contained: any subset may be decoded, in any order, from any
  /// thread.
  void decode_chunk(size_t k, std::vector<MemRef>& out) const;

  /// Deliver the whole stream, in order, to `sink`.  Each chunk is
  /// decoded incrementally through a resumable cursor and delivered in
  /// sub-batches of replay_batch_refs() references, so peak extra
  /// memory is a fixed small scratch buffer regardless of trace or
  /// chunk size.
  void replay(TraceSink& sink) const;

  /// replay(), with the chunk decode pipelined ahead of the sink: a
  /// decoder thread fills one of two rotating chunk buffers while the
  /// consumer walks the other, so the varint decode of chunk N+1
  /// overlaps the simulation of chunk N.  The sink sees the same
  /// stream in the same sub-batch boundaries as replay() — only the
  /// wall-clock schedule changes — and is driven from the calling
  /// thread only.  Falls back to the serial replay() when there is
  /// nothing to overlap (a single chunk), when the host has only one
  /// hardware thread, or when FSOPT_PIPELINE=0; FSOPT_PIPELINE=1
  /// forces the threaded path regardless of core count.
  void replay_pipelined(TraceSink& sink) const;

 private:
  friend class TraceEncoder;
  std::vector<EncodedChunk> chunks_;
  u64 size_ = 0;
  size_t chunk_refs_ = 0;
};

/// Streaming encoder: feed it references (it is a TraceSink), then
/// take() the finished EncodedTrace.  Chunk capacity matches
/// TraceBuffer's default so encoded and raw replays batch identically.
class TraceEncoder : public TraceSink {
 public:
  explicit TraceEncoder(size_t chunk_refs = TraceBuffer::kDefaultChunkRefs);

  void on_ref(const MemRef& ref) override { append(&ref, 1); }
  void on_batch(const MemRef* refs, size_t n) override { append(refs, n); }

  u64 size() const { return out_.size_; }

  /// Finalize and return the encoded trace; the encoder is left empty
  /// and may be reused.
  EncodedTrace take();

  /// Processors per trace (bounded by the directory's u64 sharer mask);
  /// the packed meta byte spends 6 bits on the processor id.
  static constexpr size_t kMaxProcs = 64;

 private:
  void append(const MemRef* refs, size_t n);
  void flush_run();

  EncodedTrace out_;
  EncodedChunk cur_;
  size_t chunk_refs_;
  i64 last_addr_[kMaxProcs];
  // Open RLE run (not yet flushed into cur_.meta).
  u8 run_meta_ = 0;
  u64 run_len_ = 0;
};

/// Encode an already-recorded raw trace.
EncodedTrace encode_trace(const TraceBuffer& trace,
                          size_t chunk_refs = TraceBuffer::kDefaultChunkRefs);

/// References per replay sub-batch handed to the sink: FSOPT_REPLAY_BATCH
/// (clamped to [64, 1M]), default 4096 — small enough that a decoded
/// sub-batch is still cache-resident when the simulator walks it, large
/// enough to amortize the per-batch virtual dispatch (see the bench's
/// codec section for the measurement behind the default).  Parsed once.
size_t replay_batch_refs();

}  // namespace fsopt
