// Block-partitioning of recorded traces for shard-parallel replay.
//
// The MSI model's coherence state is strictly per-block (directory entry,
// classifier snapshots, word versions) and LRU state is per-set, so a
// recorded reference stream can be split by block number into K shards
// that replay concurrently: shard k receives exactly the references whose
// block b = addr / block_size satisfies b % K == k, in their original
// relative order.  Replaying each shard against a CoherentCache built
// with ShardSpec{k, K} and summing the per-shard counters reproduces the
// unsharded replay bit for bit (DESIGN.md "Shard-parallel replay").
//
// References that span two blocks (8-byte data on 4-byte blocks) touch
// two shards.  The partitioner splits them into per-block pieces, routes
// each piece to its owning shard at the correct position in that shard's
// stream, and records an (ordinal, part) tag so the replay can reassemble
// the per-reference outcome — exactly what CoherentCache::access computes
// inline — after the shards finish.
#pragma once

#include <vector>

#include "trace/encode.h"
#include "trace/trace.h"

namespace fsopt {

/// One shard's slice of a partitioned trace.
struct TraceShard {
  /// Single-block references owned by this shard, in trace order.
  std::vector<MemRef> refs;

  /// One block-sized piece of a spanning reference: replay it after `pos`
  /// entries of `refs` have been delivered.  `ordinal` identifies the
  /// original reference across shards; `part` is the piece's index in
  /// block order.
  struct SplitPart {
    u64 pos = 0;
    u32 ordinal = 0;
    u8 part = 0;
    MemRef sub;
  };
  std::vector<SplitPart> splits;  // ordered by (pos, trace order)
};

/// A recorded trace partitioned by block for one block size.
struct TracePartition {
  i64 block_size = 0;
  int shards = 1;
  std::vector<TraceShard> shard;  // size == shards
  /// The original spanning references, indexed by ordinal (their combined
  /// outcome is attributed to split_origin[ordinal].addr).
  std::vector<MemRef> split_origin;
  u64 refs = 0;  // references in the source trace
};

/// Partition `trace` for replay under `block_size` across `shards`
/// concurrent shards (>= 1).  Callers derive `shards` with
/// effective_shard_count so no LRU set straddles two shards.
TracePartition partition_trace(const TraceBuffer& trace, i64 block_size,
                               int shards);

/// Same, streaming straight from a compressed trace: chunks are decoded
/// one at a time through a chunk-sized scratch buffer, so the raw
/// 16-byte-per-ref stream never materializes in full.
TracePartition partition_trace(const EncodedTrace& trace, i64 block_size,
                               int shards);

/// A trace partitioned once, at *region* granularity, for the composed
/// sharded × multi-configuration replay (replay_multi_partitioned).
///
/// The region is a common multiple of every plane's block size (in
/// practice the largest block of the sweep), so a region — and with it
/// every plane's blocks inside that region — belongs to exactly one
/// shard, and one partition serves all planes at once.  Because each
/// plane's set index is the block number modulo a power-of-two set
/// count, a shard count that divides every plane's
/// cache_bytes / region_bytes also keeps every plane's LRU sets
/// shard-pure, which is what makes the composition exact
/// (multi_shard_plan in sim/multi.h computes the largest such count).
/// Region-spanning references split into per-region pieces exactly like
/// block-spanning ones; region boundaries are block boundaries for
/// every plane, so a piece never splits a plane's block across shards.
struct MultiTracePartition {
  TracePartition part;   // block_size == region_bytes
  i64 region_bytes = 0;
};

/// Partition `trace` at `region_bytes` granularity across `shards`
/// shards for a composed multi-plane replay.  Callers derive both
/// values with multi_shard_plan (sim/multi.h) so the composition is
/// exact for every plane.
MultiTracePartition partition_trace_multi(const TraceBuffer& trace,
                                          i64 region_bytes, int shards);

/// Same, streaming straight from a compressed trace.
MultiTracePartition partition_trace_multi(const EncodedTrace& trace,
                                          i64 region_bytes, int shards);

}  // namespace fsopt
