// Block-partitioning of recorded traces for shard-parallel replay.
//
// The MSI model's coherence state is strictly per-block (directory entry,
// classifier snapshots, word versions) and LRU state is per-set, so a
// recorded reference stream can be split by block number into K shards
// that replay concurrently: shard k receives exactly the references whose
// block b = addr / block_size satisfies b % K == k, in their original
// relative order.  Replaying each shard against a CoherentCache built
// with ShardSpec{k, K} and summing the per-shard counters reproduces the
// unsharded replay bit for bit (DESIGN.md "Shard-parallel replay").
//
// References that span two blocks (8-byte data on 4-byte blocks) touch
// two shards.  The partitioner splits them into per-block pieces, routes
// each piece to its owning shard at the correct position in that shard's
// stream, and records an (ordinal, part) tag so the replay can reassemble
// the per-reference outcome — exactly what CoherentCache::access computes
// inline — after the shards finish.
#pragma once

#include <vector>

#include "trace/encode.h"
#include "trace/trace.h"

namespace fsopt {

/// One shard's slice of a partitioned trace.
struct TraceShard {
  /// Single-block references owned by this shard, in trace order.
  std::vector<MemRef> refs;

  /// One block-sized piece of a spanning reference: replay it after `pos`
  /// entries of `refs` have been delivered.  `ordinal` identifies the
  /// original reference across shards; `part` is the piece's index in
  /// block order.
  struct SplitPart {
    u64 pos = 0;
    u32 ordinal = 0;
    u8 part = 0;
    MemRef sub;
  };
  std::vector<SplitPart> splits;  // ordered by (pos, trace order)
};

/// A recorded trace partitioned by block for one block size.
struct TracePartition {
  i64 block_size = 0;
  int shards = 1;
  std::vector<TraceShard> shard;  // size == shards
  /// The original spanning references, indexed by ordinal (their combined
  /// outcome is attributed to split_origin[ordinal].addr).
  std::vector<MemRef> split_origin;
  u64 refs = 0;  // references in the source trace
};

/// Partition `trace` for replay under `block_size` across `shards`
/// concurrent shards (>= 1).  Callers derive `shards` with
/// effective_shard_count so no LRU set straddles two shards.
TracePartition partition_trace(const TraceBuffer& trace, i64 block_size,
                               int shards);

/// Same, streaming straight from a compressed trace: chunks are decoded
/// one at a time through a chunk-sized scratch buffer, so the raw
/// 16-byte-per-ref stream never materializes in full.
TracePartition partition_trace(const EncodedTrace& trace, i64 block_size,
                               int shards);

}  // namespace fsopt
