#include "interp/compile.h"

#include <bit>
#include <map>

namespace fsopt {

namespace {

class CodeGen {
 public:
  CodeGen(const Program& prog, const LayoutPlan& layout)
      : prog_(prog), layout_(layout) {}

  CodeImage run() {
    img_.nprocs = prog_.nprocs;
    img_.funcs.resize(prog_.funcs.size());
    for (const auto& fn : prog_.funcs) {
      FuncInfo& fi = img_.funcs[static_cast<size_t>(fn->id)];
      fi.entry_pc = static_cast<int>(img_.code.size());
      fi.nlocals = static_cast<int>(fn->locals.size());
      fi.nparams = static_cast<int>(fn->params.size());
      fi.returns_value = fn->ret != ValueType::kVoid;
      fi.name = fn->name;
      gen_func(*fn);
    }
    img_.main_func = prog_.main != nullptr ? prog_.main->id : -1;
    img_.globals_bytes = layout_.total_bytes();
    // Runtime region for the central barrier: three words (lock, count,
    // sense) at stride `barrier_stride` — 4 packs them into one area the
    // historical way; an intra-pad plan decision widens the stride so
    // each word gets its own coherence unit.  The span stays a multiple
    // of 256 so the region covers the words at every swept block size.
    img_.barrier_base = round_up(img_.globals_bytes, 256);
    img_.barrier_stride = layout_.barrier_stride();
    i64 bar_span = round_up(2 * img_.barrier_stride + 4, 256);
    img_.total_bytes = img_.barrier_base + bar_span;
    return std::move(img_);
  }

 private:
  void emit(Op op, i64 a = 0) { img_.code.push_back({op, a}); }
  int here() const { return static_cast<int>(img_.code.size()); }
  void patch(int pc, i64 a) { img_.code[static_cast<size_t>(pc)].a = a; }

  int plan_for(const GlobalAccess& acc) {
    auto key = std::make_pair(acc.sym->id, acc.field);
    auto it = plan_ids_.find(key);
    if (it != plan_ids_.end()) return it->second;
    ResolvedAccess ra = layout_.resolve(*acc.sym, acc.field);
    AccessPlan p;
    p.base = ra.base;
    p.const_off = ra.const_off;
    p.dims = ra.dims;
    p.indirection = ra.indirection;
    for (const auto& d : acc.dims) p.extents.push_back(d.extent);
    FSOPT_CHECK(p.dims.size() == p.extents.size(),
                "layout dims do not match access dims for " + acc.sym->name);
    p.size = static_cast<u8>(scalar_size(acc.scalar));
    p.is_real = acc.scalar == ScalarKind::kReal;
    p.name = acc.sym->name;
    if (acc.field >= 0)
      p.name += "." + acc.sym->elem.strct->fields[static_cast<size_t>(
                                                      acc.field)]
                          .name;
    int id = static_cast<int>(img_.plans.size());
    img_.plans.push_back(std::move(p));
    plan_ids_[key] = id;
    return id;
  }

  /// Push the index expressions of a global access (in dim order).
  void gen_indices(const GlobalAccess& acc) {
    for (const auto& d : acc.dims) gen_expr(*d.index);
  }

  void gen_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        emit(Op::kPushI, e.int_value);
        return;
      case ExprKind::kRealLit:
        emit(Op::kPushR, std::bit_cast<i64>(e.real_value));
        return;
      case ExprKind::kVar:
        if (e.local != nullptr) {
          emit(Op::kLoadL, e.local->slot);
          return;
        }
        [[fallthrough]];
      case ExprKind::kIndex:
      case ExprKind::kField: {
        auto acc = resolve_global_access(e);
        FSOPT_CHECK(acc.has_value(), "unresolved global access");
        gen_indices(*acc);
        emit(Op::kLoadG, plan_for(*acc));
        return;
      }
      case ExprKind::kUnary:
        gen_expr(*e.children[0]);
        if (e.un_op == UnOp::kNeg) {
          emit(e.type == ValueType::kReal ? Op::kNegR : Op::kNegI);
        } else {
          emit(Op::kNotI);
        }
        return;
      case ExprKind::kBinary:
        gen_binary(e);
        return;
      case ExprKind::kCall:
        gen_call(e);
        return;
    }
  }

  void gen_binary(const Expr& e) {
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      // Short-circuit: a && b  /  a || b  producing 0/1.
      bool is_and = e.bin_op == BinOp::kAnd;
      gen_expr(*e.children[0]);
      if (!is_and) emit(Op::kNotI);
      int j1 = here();
      emit(Op::kJz, 0);  // patched to short-circuit target
      gen_expr(*e.children[1]);
      if (!is_and) emit(Op::kNotI);
      int j2 = here();
      emit(Op::kJz, 0);
      emit(Op::kPushI, is_and ? 1 : 0);
      int j3 = here();
      emit(Op::kJmp, 0);
      int short_target = here();
      emit(Op::kPushI, is_and ? 0 : 1);
      int end = here();
      patch(j1, short_target);
      patch(j2, short_target);
      patch(j3, end);
      return;
    }
    gen_expr(*e.children[0]);
    gen_expr(*e.children[1]);
    bool real = e.children[0]->type == ValueType::kReal;
    switch (e.bin_op) {
      case BinOp::kAdd: emit(real ? Op::kAddR : Op::kAddI); return;
      case BinOp::kSub: emit(real ? Op::kSubR : Op::kSubI); return;
      case BinOp::kMul: emit(real ? Op::kMulR : Op::kMulI); return;
      case BinOp::kDiv: emit(real ? Op::kDivR : Op::kDivI); return;
      case BinOp::kRem: emit(Op::kRemI); return;
      case BinOp::kEq: emit(real ? Op::kEqR : Op::kEqI); return;
      case BinOp::kNe: emit(real ? Op::kNeR : Op::kNeI); return;
      case BinOp::kLt: emit(real ? Op::kLtR : Op::kLtI); return;
      case BinOp::kLe: emit(real ? Op::kLeR : Op::kLeI); return;
      case BinOp::kGt: emit(real ? Op::kGtR : Op::kGtI); return;
      case BinOp::kGe: emit(real ? Op::kGeR : Op::kGeI); return;
      default:
        FSOPT_CHECK(false, "unexpected binary op");
    }
  }

  void gen_call(const Expr& e) {
    for (const auto& a : e.children) gen_expr(*a);
    if (e.callee != nullptr) {
      emit(Op::kCall, e.callee->id);
      return;
    }
    switch (e.intrinsic) {
      case Intrinsic::kLcg: emit(Op::kLcg); return;
      case Intrinsic::kAbs:
        emit(e.type == ValueType::kReal ? Op::kAbsR : Op::kAbsI);
        return;
      case Intrinsic::kMin:
        emit(e.type == ValueType::kReal ? Op::kMinR : Op::kMinI);
        return;
      case Intrinsic::kMax:
        emit(e.type == ValueType::kReal ? Op::kMaxR : Op::kMaxI);
        return;
      case Intrinsic::kItor: emit(Op::kItor); return;
      case Intrinsic::kRtoi: emit(Op::kRtoi); return;
      case Intrinsic::kSqrt: emit(Op::kSqrt); return;
      case Intrinsic::kNone:
        FSOPT_CHECK(false, "call without callee or intrinsic");
    }
  }

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& c : s.stmts) gen_stmt(*c);
        return;
      case StmtKind::kLocalDecl:
        if (s.init != nullptr) {
          gen_expr(*s.init);
          emit(Op::kStoreL, s.local->slot);
        }
        return;
      case StmtKind::kAssign: {
        auto acc = resolve_global_access(*s.target);
        if (acc.has_value()) {
          gen_indices(*acc);
          gen_expr(*s.value);
          emit(Op::kStoreG, plan_for(*acc));
        } else {
          gen_expr(*s.value);
          emit(Op::kStoreL, s.target->local->slot);
        }
        return;
      }
      case StmtKind::kIf: {
        gen_expr(*s.cond);
        int jz = here();
        emit(Op::kJz, 0);
        gen_stmt(*s.then_block);
        if (s.else_block != nullptr) {
          int jend = here();
          emit(Op::kJmp, 0);
          patch(jz, here());
          gen_stmt(*s.else_block);
          patch(jend, here());
        } else {
          patch(jz, here());
        }
        return;
      }
      case StmtKind::kWhile: {
        int top = here();
        gen_expr(*s.cond);
        int jz = here();
        emit(Op::kJz, 0);
        gen_stmt(*s.body);
        emit(Op::kJmp, top);
        patch(jz, here());
        return;
      }
      case StmtKind::kFor: {
        gen_stmt(*s.init_stmt);
        int top = here();
        gen_expr(*s.cond);
        int jz = here();
        emit(Op::kJz, 0);
        gen_stmt(*s.body);
        gen_stmt(*s.step_stmt);
        emit(Op::kJmp, top);
        patch(jz, here());
        return;
      }
      case StmtKind::kExpr:
        gen_expr(*s.value);
        if (s.value->type != ValueType::kVoid) emit(Op::kPop);
        return;
      case StmtKind::kReturn:
        if (s.value != nullptr) gen_expr(*s.value);
        emit(Op::kRet);
        return;
      case StmtKind::kBarrier:
        emit(Op::kBarrier);
        return;
      case StmtKind::kLock:
      case StmtKind::kUnlock: {
        auto acc = resolve_global_access(*s.target);
        FSOPT_CHECK(acc.has_value(), "lock operand must be shared");
        gen_indices(*acc);
        emit(s.kind == StmtKind::kLock ? Op::kLock : Op::kUnlock,
             plan_for(*acc));
        return;
      }
    }
  }

  void gen_func(const FuncDecl& fn) {
    if (fn.body != nullptr) gen_stmt(*fn.body);
    // Implicit return (push a default value for typed functions that fall
    // off the end).
    if (fn.ret != ValueType::kVoid) emit(Op::kPushI, 0);
    emit(Op::kRet);
  }

  const Program& prog_;
  const LayoutPlan& layout_;
  CodeImage img_;
  std::map<std::pair<int, int>, int> plan_ids_;
};

}  // namespace

CodeImage compile_code(const Program& prog, const LayoutPlan& layout) {
  CodeGen gen(prog, layout);
  return gen.run();
}

}  // namespace fsopt
