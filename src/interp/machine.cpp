#include "interp/machine.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace fsopt {

namespace {

// Barrier word indices within the runtime region; each word sits at
// barrier_base + index * barrier_stride (stride 4 = the packed layout).
constexpr i64 kBarLock = 0;
constexpr i64 kBarCount = 1;
constexpr i64 kBarSense = 2;

double as_real(i64 bits) { return std::bit_cast<double>(bits); }
i64 as_bits(double v) { return std::bit_cast<i64>(v); }

}  // namespace

Machine::Machine(const CodeImage& img, const MachineOptions& opt)
    : img_(img),
      opt_(opt),
      memsys_(opt.memsys != nullptr ? opt.memsys : &uniform_),
      mem_(static_cast<size_t>(img.total_bytes), 0) {
  FSOPT_CHECK(img.main_func >= 0, "code image has no main");
  if (opt_.sink != nullptr) {
    FSOPT_CHECK(opt_.sink_batch > 0, "sink_batch must be > 0");
    stage_.reserve(opt_.sink_batch);
  }
  procs_.resize(static_cast<size_t>(img.nprocs));
  const FuncInfo& mf = img.funcs[static_cast<size_t>(img.main_func)];
  for (size_t p = 0; p < procs_.size(); ++p) {
    Proc& pr = procs_[p];
    pr.id = static_cast<int>(p);
    pr.pc = mf.entry_pc;
    Frame f;
    f.func = img.main_func;
    f.ret_pc = -1;
    f.locals.assign(static_cast<size_t>(mf.nlocals), 0);
    if (mf.nparams >= 1) f.locals[0] = static_cast<i64>(p);  // pid
    pr.frames.push_back(std::move(f));
  }
}

i64 Machine::load_scalar(i64 addr, i64 size) const {
  FSOPT_CHECK(addr >= 0 && addr + size <= static_cast<i64>(mem_.size()),
              "simulated address out of range");
  if (size == 4) {
    i32 v;
    std::memcpy(&v, mem_.data() + addr, 4);
    return v;
  }
  i64 v;
  std::memcpy(&v, mem_.data() + addr, 8);
  return v;
}

void Machine::store_scalar(i64 addr, i64 size, i64 bits) {
  FSOPT_CHECK(addr >= 0 && addr + size <= static_cast<i64>(mem_.size()),
              "simulated address out of range");
  if (size == 4) {
    i32 v = static_cast<i32>(bits);
    std::memcpy(mem_.data() + addr, &v, 4);
  } else {
    std::memcpy(mem_.data() + addr, &bits, 8);
  }
}

i64 Machine::load_int(i64 addr) const { return load_scalar(addr, 4); }
double Machine::load_real(i64 addr) const {
  return as_real(load_scalar(addr, 8));
}

i64 Machine::ref(Proc& p, i64 addr, i64 size, bool is_write) {
  ++refs_;
  if (opt_.sink != nullptr) {
    // Stage rather than dispatch: one virtual on_batch call per
    // opt_.sink_batch references instead of one on_ref per reference.
    // The global scheduler order *is* the trace order, so a single
    // staging buffer preserves the exact per-reference stream.
    stage_.push_back({addr, static_cast<u8>(size), static_cast<u8>(p.id),
                      is_write ? RefType::kWrite : RefType::kRead});
    if (stage_.size() >= opt_.sink_batch) flush_stage();
  }
  return memsys_->access(p.id, addr, size, is_write, p.time);
}

void Machine::flush_stage() {
  if (stage_.empty() || opt_.sink == nullptr) return;
  opt_.sink->on_batch(stage_.data(), stage_.size());
  stage_.clear();
}

void Machine::exec_sync(Proc& p, const Instr& in) {
  // Exponential poll backoff shared by lock and barrier spins.
  auto spin_wait = [this, &p]() {
    if (p.backoff == 0) p.backoff = opt_.spin_interval;
    p.time += p.backoff;
    p.backoff = std::min(p.backoff * 2,
                         opt_.spin_interval * opt_.spin_backoff_max);
  };
  if (in.op == Op::kBarrier) {
    switch (p.bar_stage) {
      case 0: {  // arrive: flip local sense, try to take the barrier lock
        if (p.wait == Wait::kNone) {
          p.bar_sense ^= 1;
          p.wait = Wait::kBarrier;
        }
        i64 lock_addr = img_.barrier_base + kBarLock * img_.barrier_stride;
        p.time += ref(p, lock_addr, 4, false);
        if (load_scalar(lock_addr, 4) == 0) {
          store_scalar(lock_addr, 4, 1);
          p.time += ref(p, lock_addr, 4, true);
          p.bar_stage = 1;
          p.backoff = 0;
        } else {
          spin_wait();
        }
        return;
      }
      case 1: {  // lock held: bump the count, maybe release everyone
        i64 count_addr = img_.barrier_base + kBarCount * img_.barrier_stride;
        i64 lock_addr = img_.barrier_base + kBarLock * img_.barrier_stride;
        p.time += ref(p, count_addr, 4, false);
        i64 c = load_scalar(count_addr, 4) + 1;
        bool last = c == img_.nprocs;
        store_scalar(count_addr, 4, last ? 0 : c);
        p.time += ref(p, count_addr, 4, true);
        if (last) {
          i64 sense_addr = img_.barrier_base + kBarSense * img_.barrier_stride;
          store_scalar(sense_addr, 4, p.bar_sense);
          p.time += ref(p, sense_addr, 4, true);
        }
        store_scalar(lock_addr, 4, 0);
        p.time += ref(p, lock_addr, 4, true);
        if (last) {
          p.bar_stage = 0;
          p.wait = Wait::kNone;
          ++p.pc;
        } else {
          p.bar_stage = 2;
        }
        return;
      }
      case 2: {  // spin on the sense word
        i64 sense_addr = img_.barrier_base + kBarSense * img_.barrier_stride;
        p.time += ref(p, sense_addr, 4, false);
        if (load_scalar(sense_addr, 4) == p.bar_sense) {
          p.bar_stage = 0;
          p.wait = Wait::kNone;
          p.backoff = 0;
          ++p.pc;
        } else {
          spin_wait();
        }
        return;
      }
      default:
        FSOPT_CHECK(false, "bad barrier stage");
    }
  }

  // Lock / unlock.
  const AccessPlan& plan = img_.plans[static_cast<size_t>(in.a)];
  if (in.op == Op::kLock) {
    if (p.wait == Wait::kNone) {
      // First visit: pop the index values and remember the address.
      size_t n = plan.dims.size();
      FSOPT_CHECK(p.stack.size() >= n, "stack underflow at lock");
      p.lock_addr = plan.address(p.stack.data() + (p.stack.size() - n));
      p.stack.resize(p.stack.size() - n);
      p.wait = Wait::kLockSpin;
    }
    p.time += ref(p, p.lock_addr, 4, false);
    if (load_scalar(p.lock_addr, 4) == 0) {
      store_scalar(p.lock_addr, 4, 1);
      p.time += ref(p, p.lock_addr, 4, true);
      p.wait = Wait::kNone;
      p.backoff = 0;
      ++p.pc;
    } else {
      spin_wait();
    }
    return;
  }
  FSOPT_CHECK(in.op == Op::kUnlock, "unexpected sync op");
  size_t n = plan.dims.size();
  FSOPT_CHECK(p.stack.size() >= n, "stack underflow at unlock");
  i64 addr = plan.address(p.stack.data() + (p.stack.size() - n));
  p.stack.resize(p.stack.size() - n);
  store_scalar(addr, 4, 0);
  p.time += ref(p, addr, 4, true);
  ++p.pc;
}

void Machine::step(Proc& p) {
  // Execute instructions until this processor spends simulated time on a
  // memory reference / sync, or halts.  Plain ALU work costs 1 cycle per
  // instruction.
  for (int batch = 0; batch < 256; ++batch) {
    FSOPT_CHECK(instructions_ < opt_.max_instructions,
                "instruction budget exceeded (runaway program?)");
    ++instructions_;
    const Instr& in = img_.code[static_cast<size_t>(p.pc)];
    auto& st = p.stack;
    auto pop = [&st]() {
      FSOPT_CHECK(!st.empty(), "operand stack underflow");
      i64 v = st.back();
      st.pop_back();
      return v;
    };
    auto push = [&st](i64 v) { st.push_back(v); };

    switch (in.op) {
      case Op::kPushI:
      case Op::kPushR:
        push(in.a);
        break;
      case Op::kLoadL:
        push(p.frames.back().locals[static_cast<size_t>(in.a)]);
        break;
      case Op::kStoreL:
        p.frames.back().locals[static_cast<size_t>(in.a)] = pop();
        break;
      case Op::kLoadG:
      case Op::kStoreG: {
        const AccessPlan& plan = img_.plans[static_cast<size_t>(in.a)];
        bool is_store = in.op == Op::kStoreG;
        i64 value = 0;
        if (is_store) value = pop();
        size_t n = plan.dims.size();
        FSOPT_CHECK(st.size() >= n, "operand stack underflow at access");
        const i64* idx = st.data() + (st.size() - n);
        i64 addr = plan.address(idx);
        if (plan.indirection.has_value()) {
          // Extra pointer-slot load: the run-time cost of indirection.
          i64 slot = plan.pointer_slot(idx);
          p.time += ref(p, slot, 8, false);
        }
        st.resize(st.size() - n);
        if (is_store) {
          store_scalar(addr, plan.size, value);
          p.time += ref(p, addr, plan.size, true);
        } else {
          i64 v = load_scalar(addr, plan.size);
          push(v);
          p.time += ref(p, addr, plan.size, false);
        }
        ++p.pc;
        return;  // spent simulated time; yield to the scheduler
      }
      case Op::kAddI: { i64 b = pop(); push(pop() + b); break; }
      case Op::kSubI: { i64 b = pop(); push(pop() - b); break; }
      case Op::kMulI: { i64 b = pop(); push(pop() * b); break; }
      case Op::kDivI: {
        i64 b = pop();
        FSOPT_CHECK(b != 0, "integer division by zero");
        push(pop() / b);
        break;
      }
      case Op::kRemI: {
        i64 b = pop();
        FSOPT_CHECK(b != 0, "integer modulo by zero");
        push(pop() % b);
        break;
      }
      case Op::kNegI: push(-pop()); break;
      case Op::kNotI: push(pop() == 0 ? 1 : 0); break;
      case Op::kEqI: { i64 b = pop(); push(pop() == b ? 1 : 0); break; }
      case Op::kNeI: { i64 b = pop(); push(pop() != b ? 1 : 0); break; }
      case Op::kLtI: { i64 b = pop(); push(pop() < b ? 1 : 0); break; }
      case Op::kLeI: { i64 b = pop(); push(pop() <= b ? 1 : 0); break; }
      case Op::kGtI: { i64 b = pop(); push(pop() > b ? 1 : 0); break; }
      case Op::kGeI: { i64 b = pop(); push(pop() >= b ? 1 : 0); break; }
      case Op::kAddR: {
        double b = as_real(pop());
        push(as_bits(as_real(pop()) + b));
        break;
      }
      case Op::kSubR: {
        double b = as_real(pop());
        push(as_bits(as_real(pop()) - b));
        break;
      }
      case Op::kMulR: {
        double b = as_real(pop());
        push(as_bits(as_real(pop()) * b));
        break;
      }
      case Op::kDivR: {
        double b = as_real(pop());
        push(as_bits(as_real(pop()) / b));
        break;
      }
      case Op::kNegR: push(as_bits(-as_real(pop()))); break;
      case Op::kEqR: {
        double b = as_real(pop());
        push(as_real(pop()) == b ? 1 : 0);
        break;
      }
      case Op::kNeR: {
        double b = as_real(pop());
        push(as_real(pop()) != b ? 1 : 0);
        break;
      }
      case Op::kLtR: {
        double b = as_real(pop());
        push(as_real(pop()) < b ? 1 : 0);
        break;
      }
      case Op::kLeR: {
        double b = as_real(pop());
        push(as_real(pop()) <= b ? 1 : 0);
        break;
      }
      case Op::kGtR: {
        double b = as_real(pop());
        push(as_real(pop()) > b ? 1 : 0);
        break;
      }
      case Op::kGeR: {
        double b = as_real(pop());
        push(as_real(pop()) >= b ? 1 : 0);
        break;
      }
      case Op::kJmp:
        p.pc = static_cast<int>(in.a);
        p.time += 1;
        continue;
      case Op::kJz:
        p.pc = pop() == 0 ? static_cast<int>(in.a) : p.pc + 1;
        p.time += 1;
        continue;
      case Op::kCall: {
        const FuncInfo& f = img_.funcs[static_cast<size_t>(in.a)];
        Frame fr;
        fr.func = static_cast<int>(in.a);
        fr.ret_pc = p.pc + 1;
        fr.locals.assign(static_cast<size_t>(f.nlocals), 0);
        for (int i = f.nparams - 1; i >= 0; --i)
          fr.locals[static_cast<size_t>(i)] = pop();
        p.frames.push_back(std::move(fr));
        p.pc = f.entry_pc;
        p.time += 1;
        continue;
      }
      case Op::kRet: {
        const FuncInfo& f =
            img_.funcs[static_cast<size_t>(p.frames.back().func)];
        int ret_pc = p.frames.back().ret_pc;
        // The return value (if any) is already on the shared operand
        // stack; frames only hold locals.
        (void)f;
        p.frames.pop_back();
        if (p.frames.empty()) {
          p.halted = true;
          return;
        }
        p.pc = ret_pc;
        p.time += 1;
        continue;
      }
      case Op::kPop:
        pop();
        break;
      case Op::kBarrier:
      case Op::kLock:
      case Op::kUnlock:
        exec_sync(p, in);
        return;  // sync ops always spend time
      case Op::kLcg: {
        i64 x = pop();
        push((x * 1103515245 + 12345) & 0x7fffffff);
        break;
      }
      case Op::kAbsI: push(std::abs(pop())); break;
      case Op::kAbsR: push(as_bits(std::fabs(as_real(pop())))); break;
      case Op::kMinI: { i64 b = pop(); push(std::min(pop(), b)); break; }
      case Op::kMaxI: { i64 b = pop(); push(std::max(pop(), b)); break; }
      case Op::kMinR: {
        double b = as_real(pop());
        push(as_bits(std::min(as_real(pop()), b)));
        break;
      }
      case Op::kMaxR: {
        double b = as_real(pop());
        push(as_bits(std::max(as_real(pop()), b)));
        break;
      }
      case Op::kItor: push(as_bits(static_cast<double>(pop()))); break;
      case Op::kRtoi: push(static_cast<i64>(as_real(pop()))); break;
      case Op::kSqrt: push(as_bits(std::sqrt(as_real(pop())))); break;
      case Op::kHalt:
        p.halted = true;
        return;
    }
    ++p.pc;
    p.time += 1;
  }
}

void Machine::run() {
  size_t live = procs_.size();
  while (live > 0) {
    // Advance the processor with the smallest local clock (ties: lowest
    // id) — deterministic event-driven interleaving.
    Proc* next = nullptr;
    for (Proc& p : procs_) {
      if (p.halted) continue;
      if (next == nullptr || p.time < next->time) next = &p;
    }
    FSOPT_CHECK(next != nullptr, "no runnable processor");
    step(*next);
    if (next->halted) --live;
  }
  flush_stage();
}

i64 Machine::finish_cycles() const {
  i64 t = 0;
  for (const Proc& p : procs_) t = std::max(t, p.time);
  return t;
}

i64 Machine::proc_cycles(int p) const {
  return procs_[static_cast<size_t>(p)].time;
}

}  // namespace fsopt
