#include "interp/bytecode.h"

#include <sstream>

namespace fsopt {

const char* op_name(Op op) {
  switch (op) {
    case Op::kPushI: return "push.i";
    case Op::kPushR: return "push.r";
    case Op::kLoadL: return "load.l";
    case Op::kStoreL: return "store.l";
    case Op::kLoadG: return "load.g";
    case Op::kStoreG: return "store.g";
    case Op::kAddI: return "add.i";
    case Op::kSubI: return "sub.i";
    case Op::kMulI: return "mul.i";
    case Op::kDivI: return "div.i";
    case Op::kRemI: return "rem.i";
    case Op::kNegI: return "neg.i";
    case Op::kNotI: return "not.i";
    case Op::kEqI: return "eq.i";
    case Op::kNeI: return "ne.i";
    case Op::kLtI: return "lt.i";
    case Op::kLeI: return "le.i";
    case Op::kGtI: return "gt.i";
    case Op::kGeI: return "ge.i";
    case Op::kAddR: return "add.r";
    case Op::kSubR: return "sub.r";
    case Op::kMulR: return "mul.r";
    case Op::kDivR: return "div.r";
    case Op::kNegR: return "neg.r";
    case Op::kEqR: return "eq.r";
    case Op::kNeR: return "ne.r";
    case Op::kLtR: return "lt.r";
    case Op::kLeR: return "le.r";
    case Op::kGtR: return "gt.r";
    case Op::kGeR: return "ge.r";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kPop: return "pop";
    case Op::kBarrier: return "barrier";
    case Op::kLock: return "lock";
    case Op::kUnlock: return "unlock";
    case Op::kLcg: return "lcg";
    case Op::kAbsI: return "abs.i";
    case Op::kAbsR: return "abs.r";
    case Op::kMinI: return "min.i";
    case Op::kMaxI: return "max.i";
    case Op::kMinR: return "min.r";
    case Op::kMaxR: return "max.r";
    case Op::kItor: return "itor";
    case Op::kRtoi: return "rtoi";
    case Op::kSqrt: return "sqrt";
    case Op::kHalt: return "halt";
  }
  return "?";
}

i64 AccessPlan::address(const i64* idx) const {
  i64 addr = base + const_off;
  for (size_t i = 0; i < dims.size(); ++i) {
    i64 x = idx[i];
    if (x < 0 || x >= extents[i])
      throw InternalError("index out of bounds for " + name + ": dim " +
                          std::to_string(i) + " index " + std::to_string(x) +
                          " extent " + std::to_string(extents[i]));
    addr += dims[i].apply(x);
  }
  return addr;
}

i64 AccessPlan::pointer_slot(const i64* idx) const {
  FSOPT_CHECK(indirection.has_value(), "not an indirect plan");
  const IndirectionInfo& in = *indirection;
  i64 addr = in.ptr_base + in.ptr_off;
  for (size_t i = 0; i < in.ptr_dims.size(); ++i)
    addr += in.ptr_dims[i].apply(idx[i]);
  return addr;
}

std::string CodeImage::disassemble() const {
  std::ostringstream os;
  for (const auto& f : funcs) {
    os << f.name << ":  (entry " << f.entry_pc << ", " << f.nlocals
       << " locals)\n";
  }
  for (size_t pc = 0; pc < code.size(); ++pc) {
    os << pc << "\t" << op_name(code[pc].op);
    switch (code[pc].op) {
      case Op::kLoadG:
      case Op::kStoreG:
      case Op::kLock:
      case Op::kUnlock:
        os << " " << plans[static_cast<size_t>(code[pc].a)].name;
        break;
      case Op::kCall:
        os << " " << funcs[static_cast<size_t>(code[pc].a)].name;
        break;
      case Op::kPushI:
      case Op::kLoadL:
      case Op::kStoreL:
      case Op::kJmp:
      case Op::kJz:
        os << " " << code[pc].a;
        break;
      default:
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fsopt
