// Bytecode for the PPL interpreter.
//
// The interpreter executes P logical processors over one compiled code
// image; every shared-data instruction carries an *access plan* — the
// layout-resolved addressing function — so the same program text runs
// under any memory layout (unoptimized, compiler-transformed,
// programmer-optimized) by swapping the plan table.
#pragma once

#include <string>
#include <vector>

#include "layout/layout.h"

namespace fsopt {

enum class Op : u8 {
  kPushI,   // a = integer value
  kPushR,   // a = bit pattern of a double
  kLoadL,   // a = local slot
  kStoreL,  // a = local slot
  kLoadG,   // a = access plan; pops ndims indices, pushes value
  kStoreG,  // a = access plan; pops value then ndims indices
  // Integer arithmetic/logic (operate on i64 slots).
  kAddI, kSubI, kMulI, kDivI, kRemI, kNegI, kNotI,
  kEqI, kNeI, kLtI, kLeI, kGtI, kGeI,
  // Real arithmetic (operate on double slots, compare results are ints).
  kAddR, kSubR, kMulR, kDivR, kNegR,
  kEqR, kNeR, kLtR, kLeR, kGtR, kGeR,
  // Control.
  kJmp,  // a = target pc
  kJz,   // a = target pc; pops int, jumps if zero
  kCall, // a = function id
  kRet,  // leaves return value (if any) on caller stack
  kPop,
  // Synchronization (multi-cycle state machines in the machine).
  kBarrier,
  kLock,    // a = access plan of the lock word
  kUnlock,  // a = access plan of the lock word
  // Intrinsics.
  kLcg, kAbsI, kAbsR, kMinI, kMaxI, kMinR, kMaxR, kItor, kRtoi, kSqrt,
  kHalt,
};

const char* op_name(Op op);

struct Instr {
  Op op;
  i64 a = 0;
};

/// Layout-resolved addressing for one (symbol, field) pair.
struct AccessPlan {
  i64 base = 0;
  i64 const_off = 0;
  std::vector<DimMap> dims;
  std::vector<i64> extents;  // per access dim, for bounds checking
  u8 size = 4;
  bool is_real = false;
  std::optional<IndirectionInfo> indirection;
  std::string name;  // datum name, for diagnostics

  /// Address for the given index values (bounds-checked).
  i64 address(const i64* idx) const;
  /// Pointer-slot address (indirection only); uses the leading array-dim
  /// indices.
  i64 pointer_slot(const i64* idx) const;
};

struct FuncInfo {
  int entry_pc = 0;
  int nlocals = 0;
  int nparams = 0;
  bool returns_value = false;
  std::string name;
};

struct CodeImage {
  std::vector<Instr> code;
  std::vector<AccessPlan> plans;
  std::vector<FuncInfo> funcs;
  int main_func = -1;
  i64 nprocs = 1;
  i64 globals_bytes = 0;   // bytes of laid-out shared data
  i64 barrier_base = 0;    // runtime barrier block (lock, count, sense)
  i64 barrier_stride = 4;  // byte stride between the three barrier words
  i64 total_bytes = 0;     // globals + runtime region

  std::string disassemble() const;
};

}  // namespace fsopt
