// AST -> bytecode compilation against a memory layout.
#pragma once

#include "interp/bytecode.h"
#include "lang/ast.h"

namespace fsopt {

/// Compile a sema-checked program against `layout`.  The same program can
/// be compiled against different layouts to produce the unoptimized and
/// transformed executables.
CodeImage compile_code(const Program& prog, const LayoutPlan& layout);

}  // namespace fsopt
