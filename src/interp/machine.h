// Event-driven multiprocessor interpreter.
//
// P logical processors execute the same bytecode (SPMD) over one simulated
// shared memory.  The scheduler always advances the processor with the
// smallest local clock, so lock handoffs, barrier arrivals and memory
// contention resolve in simulated-time order and runs are deterministic.
// Locks are test-and-test-and-set spins on shared words; the barrier is a
// central sense-reversing barrier — both generate real coherence traffic,
// which is what lock padding (§3.2) acts on.
#pragma once

#include "interp/bytecode.h"
#include "sim/memsys.h"
#include "trace/trace.h"

namespace fsopt {

struct MachineOptions {
  /// Timing model; null = uniform 2-cycle references (trace mode).
  MemorySystem* memsys = nullptr;
  /// Optional trace sink receiving every shared-memory reference.
  /// References are staged internally and delivered in batches (in exact
  /// global emission order); the final partial batch is flushed when run()
  /// returns, so the sink sees the complete stream only after run().
  TraceSink* sink = nullptr;
  /// References staged per sink batch.
  size_t sink_batch = 1024;
  /// Cycles between successive polls of a busy lock / unreleased barrier.
  i64 spin_interval = 50;
  /// Exponential poll backoff cap, as a multiple of spin_interval.
  /// Test-and-test-and-set without backoff melts down under contention —
  /// both on real machines and in this simulator (poll storms across the
  /// skew window between processor clocks).
  i64 spin_backoff_max = 64;
  /// Runaway guard.
  u64 max_instructions = 2'000'000'000;
};

class Machine {
 public:
  Machine(const CodeImage& img, const MachineOptions& opt);

  /// Execute until every processor has returned from main.
  void run();

  /// Simulated completion time: the largest processor clock.
  i64 finish_cycles() const;
  i64 proc_cycles(int p) const;
  u64 instructions() const { return instructions_; }
  u64 refs() const { return refs_; }

  /// Raw access to simulated memory (for result inspection by tests and
  /// the transformation-safety checks).
  i64 load_int(i64 addr) const;
  double load_real(i64 addr) const;
  const std::vector<u8>& memory() const { return mem_; }

 private:
  struct Frame {
    int func = -1;
    int ret_pc = 0;
    std::vector<i64> locals;
  };
  enum class Wait : u8 { kNone, kLockSpin, kBarrier };
  struct Proc {
    int id = 0;
    i64 time = 0;
    int pc = 0;
    bool halted = false;
    std::vector<i64> stack;
    std::vector<Frame> frames;
    Wait wait = Wait::kNone;
    i64 lock_addr = 0;
    int bar_stage = 0;
    i64 bar_sense = 0;
    i64 backoff = 0;  // current poll interval (exponential)
  };

  void step(Proc& p);
  void exec_sync(Proc& p, const Instr& in);
  /// Issue one shared-memory reference; returns its latency.
  i64 ref(Proc& p, i64 addr, i64 size, bool is_write);
  void flush_stage();
  void store_scalar(i64 addr, i64 size, i64 bits);
  i64 load_scalar(i64 addr, i64 size) const;

  const CodeImage& img_;
  MachineOptions opt_;
  UniformMemory uniform_{2};
  MemorySystem* memsys_;
  std::vector<u8> mem_;
  std::vector<Proc> procs_;
  std::vector<MemRef> stage_;  // staged refs awaiting sink delivery
  u64 instructions_ = 0;
  u64 refs_ = 0;
};

}  // namespace fsopt
