// TransformPlan IR: transformation plans as first-class value objects.
//
// A plan is the contract between the decision layer (which *chooses*
// transformations) and the layout/codegen layer (which *implements* them).
// Historically the plan was an opaque by-product of the §3.3 heuristics;
// promoting it to a standalone IR makes it
//   - serializable: plan_to_json / plan_from_json round-trip byte-exactly,
//     so plans can be exported (`fsoptc --plan-out`), audited, hand-edited
//     and re-injected (`--plan-in`, CompileOptions::plan);
//   - diffable: plan_diff reports per-datum added/removed/changed
//     decisions with *structured* reasons (machine-comparable, rendered to
//     text for reports) instead of free-form strings;
//   - plannable: any Planner (transform/planner.h) — the paper's static
//     heuristics or the profile-guided repair loop — produces the same IR,
//     so downstream layers cannot tell planners apart.
#pragma once

#include "analysis/report.h"

namespace fsopt {

enum class TransformKind : u8 {
  kNone,
  kGroupTranspose,
  kIndirection,
  kPadAlign,
  kLockPad,
  // Intra-datum transformations, driven by the word-granularity conflict
  // graph (sim/attribution.h): they change layout *within* one datum
  // instead of moving whole datums apart.
  kFieldReorder,   // permute a struct's field order (fields = permutation)
  kHotColdSplit,   // split hot fields into their own region (fields = hot)
  kIntraPad,       // pad between consecutive elements/words (chunk = stride)
};

const char* transform_name(TransformKind k);

/// How the per-process partitioning maps onto the pid dimension.
enum class PartitionShape : u8 {
  kBlocked,      // process p owns indices [p*C, (p+1)*C)
  kInterleaved,  // process p owns indices ≡ p (mod NPROCS)
};

/// Why a decision was made.  Structured so plan diffs and goldens compare
/// machine-to-machine; render() produces the human-readable report text.
enum class ReasonCode : u8 {
  kNone,
  kLockAlwaysPadded,      // §3.2: locks are always padded
  kPerProcessWrites,      // §3.3: per-process writes (param: read pattern)
  kSharedNonLocal,        // §3.3: shared writes without locality
  kStructConsensus,       // §3.3: all fields per-process (param: dim)
  kProfileFalseSharing,   // profile-guided: attributed FS misses (params:
                          //   miss count, share of all attributed FS)
  kConflictGraph,         // word-granularity conflict graph: intra-datum
                          //   conflict edges (params: fs_misses = edge
                          //   weight, fs_share = share of graph weight)
};

const char* reason_code_name(ReasonCode c);

struct DecisionReason {
  ReasonCode code = ReasonCode::kNone;
  /// kPerProcessWrites: the read-side pattern that admitted the transform.
  Pattern read_pattern = Pattern::kNone;
  /// kStructConsensus: the agreed pid dimension.
  int dim = -1;
  /// kProfileFalseSharing: attributed false-sharing misses and their share
  /// of all attributed false-sharing misses in the profiling replay.
  u64 fs_misses = 0;
  double fs_share = 0.0;

  std::string render() const;
  bool operator==(const DecisionReason&) const = default;
};

struct TransformDecision {
  DatumKey datum;  // field = -1 for symbol-level decisions
  TransformKind kind = TransformKind::kNone;
  int pid_dim = -1;
  PartitionShape shape = PartitionShape::kBlocked;
  i64 chunk = 1;  // C for blocked partitionings; byte stride for kIntraPad
  DecisionReason reason;
  /// Field indices for the intra-datum kinds: the full field permutation
  /// for kFieldReorder, the split-out hot fields for kHotColdSplit.
  /// Empty for every other kind.  (Declared after `reason` so the many
  /// pre-existing 6-element aggregate initializers stay valid.)
  std::vector<int> fields;

  bool operator==(const TransformDecision&) const = default;
  /// True when the decisions agree on everything the layout engine reads
  /// (i.e. everything except the reason).
  bool same_effect(const TransformDecision& o) const {
    return datum == o.datum && kind == o.kind && pid_dim == o.pid_dim &&
           shape == o.shape && chunk == o.chunk && fields == o.fields;
  }
};

struct TransformPlan {
  std::vector<TransformDecision> decisions;
  /// Which planner produced the plan ("static", "profile", "imported";
  /// empty for the default-constructed no-transformations plan).
  std::string planner;
  /// Coherence-unit size (bytes) the plan targets.
  i64 block_size = 128;

  const TransformDecision* find(const DatumKey& k) const;
  /// Decision applying to an access to (sym, field): field-specific first,
  /// then symbol-level.
  const TransformDecision* applying_to(int sym, int field) const;
  std::string render(const ProgramSummary& sum) const;
  bool operator==(const TransformPlan&) const = default;
};

/// The decision layer predates the IR; every consumer of "a set of
/// transformation decisions" (layout, rewriters, the driver) was written
/// against this name.
using TransformSet = TransformPlan;

// ---------------------------------------------------------------------------
// Serialization.  Datums are keyed by symbol/field *name* (stable across
// compiles of the same source; ids are resolved against `prog` on import),
// emission order and formatting are deterministic, so
// serialize → parse → serialize is byte-equal.
// ---------------------------------------------------------------------------

std::string plan_to_json(const TransformPlan& plan, const Program& prog);

namespace json {
class Writer;
}

/// Emit the plan as one JSON object into an in-progress document — the
/// same schema as plan_to_json (which delegates here), so plans can be
/// embedded in larger documents (the search planner's Pareto export)
/// and still parse with plan_from_json.
void plan_to_writer(json::Writer& w, const TransformPlan& plan,
                    const Program& prog);

/// Parse a plan written by plan_to_json (or hand-edited).  Throws
/// InternalError naming the offending field on malformed documents,
/// unknown symbols/fields or enum spellings.
TransformPlan plan_from_json(std::string_view json, const Program& prog);

// ---------------------------------------------------------------------------
// Diffing.
// ---------------------------------------------------------------------------

enum class PlanChange : u8 { kAdded, kRemoved, kChanged };

struct PlanDelta {
  PlanChange change = PlanChange::kAdded;
  DatumKey datum;
  TransformDecision before;  // valid for kRemoved / kChanged
  TransformDecision after;   // valid for kAdded / kChanged
};

struct PlanDiff {
  std::vector<PlanDelta> entries;
  bool empty() const { return entries.empty(); }
  size_t added() const;
  size_t removed() const;
  size_t changed() const;
  std::string render(const ProgramSummary& sum) const;
};

/// Per-datum structural diff of two plans.  Entries are ordered: changes
/// and removals in `before` decision order, then additions in `after`
/// decision order.  A decision counts as changed when the layout-relevant
/// fields OR the structured reason differ.
PlanDiff plan_diff(const TransformPlan& before, const TransformPlan& after);

}  // namespace fsopt
