#include "transform/planner.h"

#include <memory>

namespace fsopt {

const FalseSharingProfile::Entry* FalseSharingProfile::find(
    const std::string& name) const {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

TransformPlan StaticPlanner::plan(const PlannerInputs& in) const {
  return decide_transforms(in.report, in.summary, in.block_size, in.options);
}

namespace {

/// True when `plan` already has a decision that would collide with a new
/// decision for `key` in the layout engine: the exact datum, the whole
/// symbol when adding field-level, or any field when adding symbol-level
/// (a symbol-level pad/group decision overrides the rebuilt-struct path,
/// silently dropping field decisions — never stack them).
bool plan_covers(const TransformPlan& plan, const DatumKey& key) {
  for (const TransformDecision& d : plan.decisions) {
    if (d.datum.sym != key.sym) continue;
    if (d.datum.field < 0 || key.field < 0 || d.datum.field == key.field)
      return true;
  }
  return false;
}

}  // namespace

TransformPlan ProfilePlanner::plan(const PlannerInputs& in) const {
  TransformPlan out =
      in.base != nullptr ? *in.base : StaticPlanner().plan(in);
  out.planner = name();
  out.block_size = in.block_size;
  if (in.profile == nullptr || in.profile->total_fs == 0) return out;

  std::map<DatumKey, std::vector<const AccessRecord*>> writes_by_datum =
      dominant_phase_writes(in.report, in.summary);

  // Entries arrive sorted by descending miss count, so the plan grows in
  // order of measured damage — deterministically.
  for (const FalseSharingProfile::Entry& e : in.profile->entries) {
    if (e.fs_misses < opt_.min_fs_misses) continue;
    if (e.fs_share < opt_.min_fs_fraction) continue;
    // Profile names that are not program data ("<barrier>") have no
    // DatumClass and are skipped.
    const DatumClass* dc = nullptr;
    for (const DatumClass& d : in.report.data)
      if (d.name == e.name) dc = &d;
    if (dc == nullptr) continue;
    if (plan_covers(out, dc->datum)) continue;

    DecisionReason reason;
    reason.code = ReasonCode::kProfileFalseSharing;
    reason.fs_misses = e.fs_misses;
    reason.fs_share = e.fs_share;

    if (dc->is_lock) {
      out.decisions.push_back({dc->datum, TransformKind::kLockPad, -1,
                               PartitionShape::kBlocked, 1, reason});
      continue;
    }
    // Per-process writes with a detectable linear partition axis: the
    // locality-restoring transforms, same admissibility as §3.3 minus the
    // weight threshold the profile has already disproven.
    if (dc->writes == Pattern::kPerProcess && dc->writer_count >= 2 &&
        dc->pid_dim >= 0) {
      auto shape = detect_partition_shape(writes_by_datum[dc->datum],
                                          in.summary, dc->datum, dc->pid_dim);
      if (shape.has_value()) {
        if (dc->pid_dim_is_field_dim && dc->datum.field >= 0) {
          out.decisions.push_back({dc->datum, TransformKind::kIndirection,
                                   dc->pid_dim, shape->first, shape->second,
                                   reason});
          continue;
        }
        if (dc->datum.field < 0) {
          out.decisions.push_back(
              {dc->datum, TransformKind::kGroupTranspose, dc->pid_dim,
               shape->first, shape->second, reason});
          continue;
        }
        // Field-level group&transpose needs whole-struct consensus the
        // profile cannot grant; fall through to padding.
      }
    }
    // Everything else: isolate the datum's elements in their own blocks.
    i64 elem_count = 1;
    for (i64 ext : dc->extents) elem_count *= ext;
    if (elem_count * in.block_size > opt_.pad_footprint_limit) continue;
    out.decisions.push_back({dc->datum, TransformKind::kPadAlign, -1,
                             PartitionShape::kBlocked, 1, reason});
  }
  return out;
}

std::unique_ptr<Planner> make_planner(const std::string& name) {
  if (name == "static") return std::make_unique<StaticPlanner>();
  if (name == "profile") return std::make_unique<ProfilePlanner>();
  throw InternalError("unknown planner '" + name +
                      "' (expected static or profile)");
}

}  // namespace fsopt
