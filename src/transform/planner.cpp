#include "transform/planner.h"

#include <algorithm>
#include <memory>
#include <set>

namespace fsopt {

const FalseSharingProfile::Entry* FalseSharingProfile::find(
    const std::string& name) const {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

const ConflictProfile::Entry* ConflictProfile::find(
    const std::string& name) const {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

TransformPlan StaticPlanner::plan(const PlannerInputs& in) const {
  return decide_transforms(in.report, in.summary, in.block_size, in.options);
}

namespace {

/// True when `plan` already has a decision that would collide with a new
/// decision for `key` in the layout engine: the exact datum, the whole
/// symbol when adding field-level, or any field when adding symbol-level
/// (a symbol-level pad/group decision overrides the rebuilt-struct path,
/// silently dropping field decisions — never stack them).
bool plan_covers(const TransformPlan& plan, const DatumKey& key) {
  for (const TransformDecision& d : plan.decisions) {
    if (d.datum.sym != key.sym) continue;
    if (d.datum.field < 0 || key.field < 0 || d.datum.field == key.field)
      return true;
  }
  return false;
}

/// Greedy processor-affinity partition of a datum's conflicting words:
/// each word goes to the processor with the most incident edge weight
/// (ties to the lowest processor id, deterministically).  cross_weight is
/// the weight of pairs whose endpoints got different owners — the
/// conflict weight the partition removes once the owner groups live in
/// separate coherence units.
struct AffinityCut {
  std::map<i64, int> owner;  // word byte offset -> owning processor
  u64 cross_weight = 0;
};

AffinityCut affinity_cut(const ConflictProfile::Entry& e) {
  std::map<i64, std::map<int, u64>> weight;  // word -> proc -> weight
  for (const ConflictProfile::Pair& p : e.pairs) {
    weight[p.writer_off][p.writer_proc] += p.weight;
    weight[p.victim_off][p.victim_proc] += p.weight;
  }
  AffinityCut cut;
  for (const auto& [off, procs] : weight) {
    int best = -1;
    u64 best_w = 0;
    for (const auto& [proc, w] : procs)
      if (best < 0 || w > best_w) {
        best = proc;
        best_w = w;
      }
    cut.owner[off] = best;
  }
  for (const ConflictProfile::Pair& p : e.pairs)
    if (cut.owner[p.writer_off] != cut.owner[p.victim_off])
      cut.cross_weight += p.weight;
  return cut;
}

}  // namespace

TransformPlan ProfilePlanner::plan(const PlannerInputs& in) const {
  TransformPlan out =
      in.base != nullptr ? *in.base : StaticPlanner().plan(in);
  out.planner = name();
  out.block_size = in.block_size;
  if (in.profile == nullptr || in.profile->total_fs == 0) return out;

  std::map<DatumKey, std::vector<const AccessRecord*>> writes_by_datum =
      dominant_phase_writes(in.report, in.summary);

  // Entries arrive sorted by descending miss count, so the plan grows in
  // order of measured damage — deterministically.
  for (const FalseSharingProfile::Entry& e : in.profile->entries) {
    if (e.fs_misses < opt_.min_fs_misses) continue;
    if (e.fs_share < opt_.min_fs_fraction) continue;
    // Profile names that are not program data ("<barrier>") have no
    // DatumClass and are skipped.
    const DatumClass* dc = nullptr;
    for (const DatumClass& d : in.report.data)
      if (d.name == e.name) dc = &d;
    if (dc == nullptr) continue;
    if (plan_covers(out, dc->datum)) continue;

    DecisionReason reason;
    reason.code = ReasonCode::kProfileFalseSharing;
    reason.fs_misses = e.fs_misses;
    reason.fs_share = e.fs_share;

    if (dc->is_lock) {
      out.decisions.push_back({dc->datum, TransformKind::kLockPad, -1,
                               PartitionShape::kBlocked, 1, reason});
      continue;
    }
    // Per-process writes with a detectable linear partition axis: the
    // locality-restoring transforms, same admissibility as §3.3 minus the
    // weight threshold the profile has already disproven.
    if (dc->writes == Pattern::kPerProcess && dc->writer_count >= 2 &&
        dc->pid_dim >= 0) {
      auto shape = detect_partition_shape(writes_by_datum[dc->datum],
                                          in.summary, dc->datum, dc->pid_dim);
      if (shape.has_value()) {
        if (dc->pid_dim_is_field_dim && dc->datum.field >= 0) {
          out.decisions.push_back({dc->datum, TransformKind::kIndirection,
                                   dc->pid_dim, shape->first, shape->second,
                                   reason});
          continue;
        }
        if (dc->datum.field < 0) {
          out.decisions.push_back(
              {dc->datum, TransformKind::kGroupTranspose, dc->pid_dim,
               shape->first, shape->second, reason});
          continue;
        }
        // Field-level group&transpose needs whole-struct consensus the
        // profile cannot grant; fall through to padding.
      }
    }
    // Everything else: isolate the datum's elements in their own blocks.
    i64 elem_count = 1;
    for (i64 ext : dc->extents) elem_count *= ext;
    if (elem_count * in.block_size > opt_.pad_footprint_limit) continue;
    out.decisions.push_back({dc->datum, TransformKind::kPadAlign, -1,
                             PartitionShape::kBlocked, 1, reason});
  }
  return out;
}

TransformPlan GraphPlanner::plan(const PlannerInputs& in) const {
  TransformPlan out = ProfilePlanner(opt_.profile).plan(in);
  out.planner = name();
  if (in.conflicts == nullptr || in.conflicts->total_weight == 0) return out;

  // Entries arrive sorted by descending conflict weight, so the plan
  // grows in order of measured damage — deterministically.
  for (const ConflictProfile::Entry& e : in.conflicts->entries) {
    if (e.weight < opt_.min_weight) continue;
    double share = static_cast<double>(e.weight) /
                   static_cast<double>(in.conflicts->total_weight);
    if (share < opt_.min_weight_fraction) continue;

    DecisionReason reason;
    reason.code = ReasonCode::kConflictGraph;
    reason.fs_misses = e.weight;
    reason.fs_share = share;

    // The interpreter's central barrier: not a program datum, so it is
    // invisible to the §3.3 heuristics and the profile pass alike.  Its
    // three packed words ping-pong between every process each episode;
    // stride them into separate coherence units.
    if (e.name == kBarrierName) {
      DatumKey key{kBarrierSym, -1};
      if (!plan_covers(out, key))
        out.decisions.push_back({key, TransformKind::kIntraPad, -1,
                                 PartitionShape::kBlocked, opt_.pad_stride,
                                 reason});
      continue;
    }

    // Conflict entries are keyed by address-map range name.  Struct
    // symbols map as one symbol-level range while the sharing report
    // classifies their accesses per *field*, so a symbol-level entry may
    // have no DatumClass at all — resolve the global by name in that
    // case (datum {sym, -1}).
    const DatumClass* dc = nullptr;
    for (const DatumClass& d : in.report.data)
      if (d.name == e.name) dc = &d;
    const GlobalSym* gs;
    DatumKey key;
    if (dc != nullptr) {
      gs = in.summary.datum_sym(dc->datum);
      key = dc->datum;
    } else {
      gs = in.summary.prog->find_global(e.name);
      key = gs != nullptr ? DatumKey{gs->id, -1} : DatumKey{};
    }
    if (gs == nullptr) continue;
    if (plan_covers(out, key)) continue;

    AffinityCut cut = affinity_cut(e);
    if (static_cast<double>(cut.cross_weight) <
        opt_.min_cut_fraction * static_cast<double>(e.weight))
      continue;

    // Symbol-level struct datum: map the conflicting words to fields and
    // split every conflict-carrying field into its own block-aligned
    // region (the cold remainder keeps the compact base layout).
    if (gs->elem.is_struct && key.field < 0) {
      const StructType& st = *gs->elem.strct;
      std::set<int> hot;
      bool mapped = true;
      for (const auto& [off, proc] : cut.owner) {
        (void)proc;
        i64 rel = off % gs->elem.byte_size();
        int fi = -1;
        for (size_t f = 0; f < st.fields.size(); ++f)
          if (rel >= st.fields[f].offset &&
              rel < st.fields[f].offset + st.fields[f].byte_size())
            fi = static_cast<int>(f);
        if (fi < 0) {
          mapped = false;
          break;
        }
        hot.insert(fi);
      }
      if (!mapped || hot.empty()) continue;

      // A permutation is free: when re-packing the fields so each
      // affinity class occupies its own contiguous run provably puts
      // every cross-class field pair into distinct coherence units at
      // the target block size, prefer kFieldReorder over splitting — no
      // footprint growth, and the cold fields keep riding along.
      if (opt_.try_field_reorder && st.fields.size() >= 2) {
        // Field -> owning processor class, by max incident edge weight
        // (ties to the lowest processor, deterministically).
        std::map<int, std::map<int, u64>> field_weight;
        auto field_of = [&](i64 off) {
          i64 rel = off % gs->elem.byte_size();
          for (size_t f = 0; f < st.fields.size(); ++f)
            if (rel >= st.fields[f].offset &&
                rel < st.fields[f].offset + st.fields[f].byte_size())
              return static_cast<int>(f);
          return -1;
        };
        for (const ConflictProfile::Pair& p : e.pairs) {
          if (int fi = field_of(p.writer_off); fi >= 0)
            field_weight[fi][p.writer_proc] += p.weight;
          if (int fi = field_of(p.victim_off); fi >= 0)
            field_weight[fi][p.victim_proc] += p.weight;
        }
        auto owner_of = [&](int fi) {
          auto it = field_weight.find(fi);
          if (it == field_weight.end()) return -1;  // cold field
          int best = -1;
          u64 best_w = 0;
          for (const auto& [proc, w] : it->second)
            if (best < 0 || w > best_w) {
              best = proc;
              best_w = w;
            }
          return best;
        };
        std::set<int> classes;
        for (const auto& [fi, procs] : field_weight) {
          (void)procs;
          classes.insert(owner_of(fi));
        }
        if (classes.size() >= 2) {
          // Group conflicting fields by owner class (cold fields last),
          // stable within a class so the permutation is deterministic.
          std::vector<int> perm(st.fields.size());
          for (size_t f = 0; f < perm.size(); ++f)
            perm[f] = static_cast<int>(f);
          std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
            int oa = owner_of(a);
            int ob = owner_of(b);
            u64 ka = oa < 0 ? ~u64{0} : static_cast<u64>(oa);
            u64 kb = ob < 0 ? ~u64{0} : static_cast<u64>(ob);
            return ka < kb;
          });
          // Repack exactly as build_layout will (natural alignment in
          // permutation order, element base block-aligned) and require
          // every cross-class pair to occupy disjoint block ranges in
          // every element.
          std::vector<i64> offs(st.fields.size(), 0);
          i64 off = 0;
          i64 align = 1;
          for (int fi : perm) {
            const StructField& f = st.fields[static_cast<size_t>(fi)];
            i64 a = scalar_size(f.kind);
            off = round_up(off, a);
            offs[static_cast<size_t>(fi)] = off;
            off += f.byte_size();
            align = std::max(align, a);
          }
          i64 elem = round_up(std::max<i64>(off, 1), align);
          i64 B = in.block_size;
          bool separated = gs->elem_count() == 1 || elem % B == 0;
          for (size_t i = 0; i < st.fields.size() && separated; ++i)
            for (size_t j = i + 1; j < st.fields.size() && separated;
                 ++j) {
              int oi = owner_of(static_cast<int>(i));
              int oj = owner_of(static_cast<int>(j));
              if (oi < 0 || oj < 0 || oi == oj) continue;
              i64 hi_i = (offs[i] + st.fields[i].byte_size() - 1) / B;
              i64 hi_j = (offs[j] + st.fields[j].byte_size() - 1) / B;
              if (hi_i >= offs[j] / B && hi_j >= offs[i] / B)
                separated = false;
            }
          if (separated) {
            TransformDecision d{key, TransformKind::kFieldReorder, -1,
                                PartitionShape::kBlocked, 1, reason, {}};
            d.fields = std::move(perm);
            out.decisions.push_back(std::move(d));
            continue;
          }
        }
      }

      i64 footprint =
          static_cast<i64>(hot.size()) * gs->elem_count() * in.block_size;
      if (footprint > opt_.profile.pad_footprint_limit) continue;
      TransformDecision d{key, TransformKind::kHotColdSplit, -1,
                          PartitionShape::kBlocked, 1, reason};
      d.fields.assign(hot.begin(), hot.end());
      out.decisions.push_back(std::move(d));
      continue;
    }

    // Scalar arrays and field-level datums: the conflicting words are
    // distinct elements; stride them apart.  The stride (not the plan's
    // block size) sets the spacing, so the separation holds at every
    // swept block size up to the stride.
    i64 elems = 1;
    if (dc != nullptr) {
      for (i64 ext : dc->extents) elems *= ext;
    } else {
      elems = gs->elem_count();
    }
    if (elems * opt_.pad_stride > opt_.profile.pad_footprint_limit) continue;
    out.decisions.push_back({key, TransformKind::kIntraPad, -1,
                             PartitionShape::kBlocked, opt_.pad_stride,
                             reason});
  }
  return out;
}

std::unique_ptr<Planner> make_planner(const std::string& name) {
  if (name == "static") return std::make_unique<StaticPlanner>();
  if (name == "profile") return std::make_unique<ProfilePlanner>();
  if (name == "graph") return std::make_unique<GraphPlanner>();
  throw InternalError("unknown planner '" + name +
                      "' (expected static, profile or graph; the search "
                      "planner needs a replay evaluator — construct "
                      "SearchPlanner directly or use driver search_plan)");
}

}  // namespace fsopt
