// Builds the transformed memory layout from a set of transformation
// decisions: the concrete implementation of group & transpose,
// indirection, pad & align and lock padding (§3.2).
#pragma once

#include "layout/layout.h"
#include "transform/decision.h"

namespace fsopt {

struct PlanOptions {
  /// Coherence-unit size the transformations pad/align to.  The KSR2's is
  /// 128 bytes; the simulation study sweeps 4-256.
  i64 block_size = 128;
};

/// Produce the transformed layout for `prog` under `transforms`.
/// With an empty TransformSet this degenerates to identity_layout().
LayoutPlan build_layout(const Program& prog, const TransformSet& transforms,
                        const PlanOptions& opt = {});

}  // namespace fsopt
