// Builds the transformed memory layout from a set of transformation
// decisions: the concrete implementation of group & transpose,
// indirection, pad & align and lock padding (§3.2).
#pragma once

#include "layout/layout.h"
#include "transform/plan_ir.h"

namespace fsopt {

/// Produce the transformed layout for `prog` under `transforms`.
/// `block_size` is the coherence-unit size the transformations pad/align
/// to (the KSR2's is 128 bytes; the simulation study sweeps 4-256) — the
/// driver threads CompileOptions::block_size through, deliberately with
/// no default so a forgotten call site cannot desynchronize the knob.
/// With an empty TransformSet this degenerates to identity_layout().
LayoutPlan build_layout(const Program& prog, const TransformSet& transforms,
                        i64 block_size);

}  // namespace fsopt
