#include "transform/plan.h"

namespace fsopt {

namespace {

constexpr i64 kPtrSize = 8;

struct GroupMember {
  const GlobalSym* sym;
  const TransformDecision* decision;
  std::vector<i64> region_extents;  // extents with pid dim replaced by C
  i64 chunk_bytes = 0;
  i64 region_off = 0;  // offset of this member inside each region
};

struct PendingIndirection {
  const GlobalSym* sym;
  int field;
  const TransformDecision* decision;
  i64 ptr_off = 0;  // pointer-slot offset inside the rebuilt element
};

struct PendingSplit {
  const GlobalSym* sym;
  const TransformDecision* decision;
};

}  // namespace

LayoutPlan build_layout(const Program& prog, const TransformSet& transforms,
                        i64 block_size) {
  const i64 B = block_size;
  FSOPT_CHECK(B > 0, "build_layout requires a positive block size");
  LayoutPlan plan;
  i64 cursor = 0;

  std::vector<GroupMember> group;
  std::vector<PendingIndirection> indirections;
  std::vector<PendingSplit> splits;

  // The interpreter's central barrier is not a program global; its only
  // layout knob is the stride between its three words, carried on the
  // plan and consumed by interp/compile.cpp when placing the barrier
  // region.
  if (const TransformDecision* bd = transforms.find({kBarrierSym, -1}))
    if (bd->kind == TransformKind::kIntraPad && bd->chunk > 4)
      plan.set_barrier_stride(bd->chunk);

  for (const auto& g : prog.globals) {
    const TransformDecision* sd = transforms.find({g->id, -1});

    if (sd != nullptr && sd->kind == TransformKind::kGroupTranspose) {
      // Deferred: allocated in the per-process group region below.
      GroupMember m;
      m.sym = g.get();
      m.decision = sd;
      m.region_extents.assign(g->dims.begin(), g->dims.end());
      i64 P = prog.nprocs;
      i64 ext = m.region_extents[static_cast<size_t>(sd->pid_dim)];
      i64 slots = sd->shape == PartitionShape::kBlocked
                      ? sd->chunk
                      : (ext + P - 1) / P;
      m.region_extents[static_cast<size_t>(sd->pid_dim)] = slots;
      i64 n = 1;
      for (i64 e : m.region_extents) n *= e;
      m.chunk_bytes = n * g->elem.byte_size();
      group.push_back(m);
      continue;
    }

    if (sd != nullptr && sd->kind == TransformKind::kIntraPad) {
      // Stride consecutive elements apart by the decision's stride (not
      // this compile's B): the separation then holds at every block size
      // up to the stride, which is what the multi-size repair loop
      // scores against.
      i64 stride = std::max(sd->chunk, g->elem.byte_size());
      stride = round_up(stride, g->elem.alignment());
      cursor = round_up(cursor, std::max<i64>(sd->chunk, 1));
      DatumLayout l;
      l.base = cursor;
      std::vector<i64> strides = row_major_strides(g->dims, stride);
      for (i64 s : strides) l.dims.push_back({1, 0, s});
      l.elem_size_override = stride;
      plan.set(g->id, -1, std::move(l));
      cursor += stride * g->elem_count();
      continue;
    }

    if (sd != nullptr && sd->kind == TransformKind::kFieldReorder &&
        g->elem.is_struct) {
      // Re-pack the struct with fields in the decision's permutation
      // order, natural alignment within the new order.
      const StructType& st = *g->elem.strct;
      FSOPT_CHECK(sd->fields.size() == st.fields.size(),
                  "field-reorder permutation size mismatch for " + g->name);
      std::vector<i64> offs(st.fields.size(), 0);
      i64 off = 0;
      i64 align = 1;
      for (int fi : sd->fields) {
        FSOPT_CHECK(fi >= 0 && fi < static_cast<int>(st.fields.size()),
                    "field-reorder index out of range for " + g->name);
        const StructField& f = st.fields[static_cast<size_t>(fi)];
        i64 a = scalar_size(f.kind);
        off = round_up(off, a);
        offs[static_cast<size_t>(fi)] = off;
        off += f.byte_size();
        align = std::max(align, a);
      }
      i64 elem = round_up(std::max<i64>(off, 1), align);
      // Block-align the base: the planner's separation check reasons
      // about which block each repacked field lands in, which is only
      // sound when offset arithmetic starts at a block boundary.
      cursor = round_up(cursor, std::max(align, B));
      DatumLayout l;
      l.base = cursor;
      l.field_offsets = offs;
      l.elem_size_override = elem;
      std::vector<i64> strides = row_major_strides(g->dims, elem);
      for (i64 s : strides) l.dims.push_back({1, 0, s});
      plan.set(g->id, -1, std::move(l));
      cursor += elem * g->elem_count();
      continue;
    }

    if (sd != nullptr && sd->kind == TransformKind::kHotColdSplit &&
        g->elem.is_struct) {
      // Cold fields keep a compact base element here; the hot fields are
      // hoisted into their own block-aligned regions below (field-level
      // layouts take precedence in LayoutPlan::resolve, so the base
      // element's slots for hot fields are simply never addressed).
      const StructType& st = *g->elem.strct;
      std::vector<char> hot(st.fields.size(), 0);
      for (int fi : sd->fields) {
        FSOPT_CHECK(fi >= 0 && fi < static_cast<int>(st.fields.size()),
                    "hot-cold-split field index out of range for " + g->name);
        hot[static_cast<size_t>(fi)] = 1;
      }
      std::vector<i64> offs(st.fields.size(), 0);
      i64 off = 0;
      i64 align = 1;
      for (size_t fi = 0; fi < st.fields.size(); ++fi) {
        if (hot[fi]) continue;
        const StructField& f = st.fields[fi];
        i64 a = scalar_size(f.kind);
        off = round_up(off, a);
        offs[fi] = off;
        off += f.byte_size();
        align = std::max(align, a);
      }
      i64 elem = round_up(std::max<i64>(off, 1), align);
      cursor = round_up(cursor, align);
      DatumLayout l;
      l.base = cursor;
      l.field_offsets = offs;
      l.elem_size_override = elem;
      std::vector<i64> strides = row_major_strides(g->dims, elem);
      for (i64 s : strides) l.dims.push_back({1, 0, s});
      plan.set(g->id, -1, std::move(l));
      cursor += elem * g->elem_count();
      splits.push_back({g.get(), sd});
      continue;
    }

    if (sd != nullptr && (sd->kind == TransformKind::kPadAlign ||
                          sd->kind == TransformKind::kLockPad)) {
      // Each element (or the scalar) gets its own coherence block.
      cursor = round_up(cursor, B);
      i64 padded_elem = round_up(g->elem.byte_size(), B);
      DatumLayout l;
      l.base = cursor;
      std::vector<i64> strides = row_major_strides(g->dims, padded_elem);
      for (i64 s : strides) l.dims.push_back({1, 0, s});
      l.elem_size_override = padded_elem;
      plan.set(g->id, -1, std::move(l));
      cursor += padded_elem * g->elem_count();
      continue;
    }

    // Default allocation — possibly with a rebuilt struct layout when
    // field-level decisions (indirection, pad, lock-pad) apply.
    i64 elem = g->elem.byte_size();
    DatumLayout l;
    bool rebuilt = false;
    if (g->elem.is_struct) {
      const StructType& st = *g->elem.strct;
      std::vector<i64> offs(st.fields.size(), 0);
      std::vector<const TransformDecision*> fdec(st.fields.size(), nullptr);
      for (size_t fi = 0; fi < st.fields.size(); ++fi)
        fdec[fi] = transforms.find({g->id, static_cast<int>(fi)});
      bool any = false;
      for (const auto* d : fdec) any = any || d != nullptr;
      if (any) {
        rebuilt = true;
        i64 off = 0;
        i64 align = 1;
        for (size_t fi = 0; fi < st.fields.size(); ++fi) {
          const StructField& f = st.fields[fi];
          const TransformDecision* d = fdec[fi];
          if (d != nullptr && d->kind == TransformKind::kIndirection) {
            off = round_up(off, kPtrSize);
            offs[fi] = off;
            off += kPtrSize;
            align = std::max(align, kPtrSize);
          } else if (d != nullptr &&
                     (d->kind == TransformKind::kPadAlign ||
                      d->kind == TransformKind::kLockPad)) {
            off = round_up(off, B);
            offs[fi] = off;
            off += round_up(f.byte_size(), B);
            align = std::max(align, B);
          } else {
            i64 a = scalar_size(f.kind);
            off = round_up(off, a);
            offs[fi] = off;
            off += f.byte_size();
            align = std::max(align, a);
          }
        }
        elem = round_up(std::max<i64>(off, 1), align);
        l.field_offsets = offs;
        l.elem_size_override = elem;
        for (size_t fi = 0; fi < st.fields.size(); ++fi) {
          const TransformDecision* d = fdec[fi];
          if (d != nullptr && d->kind == TransformKind::kIndirection)
            indirections.push_back(
                {g.get(), static_cast<int>(fi), d, offs[fi]});
        }
      }
    }
    i64 align = rebuilt ? std::max<i64>(g->elem.alignment(), kPtrSize)
                        : g->elem.alignment();
    cursor = round_up(cursor, align);
    l.base = cursor;
    std::vector<i64> strides = row_major_strides(g->dims, elem);
    for (i64 s : strides) l.dims.push_back({1, 0, s});
    plan.set(g->id, -1, std::move(l));
    cursor += elem * g->elem_count();
  }

  // --- Group & transpose region -------------------------------------------
  if (!group.empty()) {
    i64 region_cursor = 0;
    for (GroupMember& m : group) {
      region_cursor = round_up(region_cursor, m.sym->elem.alignment());
      m.region_off = region_cursor;
      region_cursor += m.chunk_bytes;
    }
    i64 R = round_up(region_cursor, B);  // per-process region stride
    i64 group_base = round_up(cursor, B);
    i64 P = prog.nprocs;

    for (const GroupMember& m : group) {
      const TransformDecision& d = *m.decision;
      i64 elem = m.sym->elem.byte_size();
      std::vector<i64> rm = row_major_strides(m.region_extents, elem);
      DatumLayout l;
      l.base = group_base + m.region_off;
      for (size_t dim = 0; dim < m.region_extents.size(); ++dim) {
        if (static_cast<int>(dim) == d.pid_dim) {
          i64 rmd = rm[dim];
          if (d.shape == PartitionShape::kBlocked) {
            // (x % C) indexes within the chunk, (x / C) selects the region.
            l.dims.push_back({d.chunk, rmd, R});
          } else {
            // (x % P) selects the region, (x / P) indexes within the chunk.
            l.dims.push_back({P, R, rmd});
          }
        } else {
          l.dims.push_back({1, 0, rm[dim]});
        }
      }
      plan.set(m.sym->id, -1, std::move(l));
    }
    cursor = group_base + R * P;
  }

  // --- Hot-field regions (hot/cold split) -----------------------------------
  // One block-aligned, block-padded region per hot field: two hot fields
  // (or a hot field and any cold data) can never share a coherence unit.
  for (const PendingSplit& ps : splits) {
    const GlobalSym& g = *ps.sym;
    const StructType& st = *g.elem.strct;
    for (int fi : ps.decision->fields) {
      const StructField& f = st.fields[static_cast<size_t>(fi)];
      i64 hot_base = round_up(cursor, B);
      DatumLayout fl;
      fl.base = hot_base;
      std::vector<i64> rm = row_major_strides(g.dims, f.byte_size());
      for (i64 s : rm) fl.dims.push_back({1, 0, s});
      if (f.array_len > 0) fl.dims.push_back({1, 0, scalar_size(f.kind)});
      plan.set(g.id, fi, std::move(fl));
      cursor = hot_base + round_up(g.elem_count() * f.byte_size(), B);
    }
  }

  // --- Indirection heaps ----------------------------------------------------
  for (const PendingIndirection& pi : indirections) {
    const GlobalSym& g = *pi.sym;
    const StructField& f =
        g.elem.strct->fields[static_cast<size_t>(pi.field)];
    i64 scalar = scalar_size(f.kind);
    i64 n = g.elem_count();
    i64 region = round_up(n * scalar, B);
    i64 heap_base = round_up(cursor, B);
    i64 regions = f.array_len;  // one per possible field-dim index
    cursor = heap_base + region * regions;

    // Datum address: heap_base + idx[field_dim]*region + linear(array dims).
    DatumLayout fl;
    fl.base = heap_base;
    std::vector<i64> rm = row_major_strides(g.dims, scalar);
    for (i64 s : rm) fl.dims.push_back({1, 0, s});
    fl.dims.push_back({1, 0, region});  // field-array dim selects region

    // Pointer slot: in the rebuilt element, at pi.ptr_off.
    const DatumLayout* sl = plan.get(g.id, -1);
    FSOPT_CHECK(sl != nullptr, "indirection target symbol not laid out");
    IndirectionInfo info;
    info.ptr_base = sl->base;
    info.ptr_dims = sl->dims;
    info.ptr_off = pi.ptr_off;
    fl.indirection = info;
    plan.set(g.id, pi.field, std::move(fl));
  }

  plan.set_total_bytes(cursor);
  return plan;
}

}  // namespace fsopt
