#include "transform/rewrite.h"

#include <sstream>

#include "lang/printer.h"

namespace fsopt {

std::string rewrite_program(const Program& prog,
                            const TransformSet& transforms, i64 block_size) {
  std::ostringstream os;
  os << "// fsopt restructured program (coherence block = " << block_size
     << " bytes)\n";
  os << "param NPROCS = " << prog.nprocs << ";\n\n";

  for (const auto& st : prog.structs) {
    os << "struct " << st->name << " {\n";
    for (size_t fi = 0; fi < st->fields.size(); ++fi) {
      const StructField& f = st->fields[fi];
      // Find the symbol(s) of this struct type with a field decision.
      const TransformDecision* d = nullptr;
      for (const auto& g : prog.globals) {
        if (g->elem.is_struct && g->elem.strct == st.get())
          if (const TransformDecision* fd =
                  transforms.find({g->id, static_cast<int>(fi)}))
            d = fd;
      }
      // Symbol-level intra-datum decisions (hot/cold split, reorder)
      // cover individual fields through their `fields` list.
      const TransformDecision* sd = nullptr;
      for (const auto& g : prog.globals)
        if (g->elem.is_struct && g->elem.strct == st.get())
          if (const TransformDecision* s = transforms.find({g->id, -1}))
            if (s->kind == TransformKind::kHotColdSplit ||
                s->kind == TransformKind::kFieldReorder)
              sd = s;
      bool hot = false;
      if (sd != nullptr && sd->kind == TransformKind::kHotColdSplit)
        for (int hf : sd->fields) hot = hot || hf == static_cast<int>(fi);
      if (d != nullptr && d->kind == TransformKind::kIndirection) {
        os << "  " << scalar_name(f.kind) << " *" << f.name
           << ";  // indirection: data moved to per-process heap\n";
      } else if (hot) {
        os << "  " << scalar_name(f.kind) << " " << f.name;
        if (f.array_len > 0) os << "[" << f.array_len << "]";
        os << ";  // hot: split into its own block-aligned region\n";
      } else if (sd != nullptr && sd->kind == TransformKind::kFieldReorder) {
        os << "  " << scalar_name(f.kind) << " " << f.name;
        if (f.array_len > 0) os << "[" << f.array_len << "]";
        os << ";  // reordered to slot "
           << [&] {
                for (size_t s = 0; s < sd->fields.size(); ++s)
                  if (sd->fields[s] == static_cast<int>(fi)) return s;
                return fi;
              }()
           << "\n";
      } else if (d != nullptr && (d->kind == TransformKind::kPadAlign ||
                                  d->kind == TransformKind::kLockPad)) {
        os << "  " << scalar_name(f.kind) << " " << f.name;
        if (f.array_len > 0) os << "[" << f.array_len << "]";
        os << ";  // padded and aligned to " << block_size << " bytes\n";
      } else {
        os << "  " << scalar_name(f.kind) << " " << f.name;
        if (f.array_len > 0) os << "[" << f.array_len << "]";
        os << ";\n";
      }
    }
    os << "};\n\n";
  }

  // Grouped record for group&transpose members.
  std::vector<const GlobalSym*> grouped;
  for (const auto& g : prog.globals) {
    const TransformDecision* d = transforms.find({g->id, -1});
    if (d != nullptr && d->kind == TransformKind::kGroupTranspose)
      grouped.push_back(g.get());
  }
  if (!grouped.empty()) {
    os << "// group & transpose: per-process data gathered into one record\n";
    os << "struct _fsopt_group {\n";
    for (const GlobalSym* g : grouped) {
      const TransformDecision* d = transforms.find({g->id, -1});
      os << "  " << g->elem.str() << " " << g->name;
      i64 P = prog.nprocs;
      for (size_t dim = 0; dim < g->dims.size(); ++dim) {
        i64 ext = g->dims[dim];
        if (static_cast<int>(dim) == d->pid_dim) {
          i64 slots = d->shape == PartitionShape::kBlocked
                          ? d->chunk
                          : (ext + P - 1) / P;
          if (slots > 1) os << "[" << slots << "]";
        } else {
          os << "[" << ext << "]";
        }
      }
      os << ";  // was " << g->name;
      for (i64 ext : g->dims) os << "[" << ext << "]";
      os << ", pid dim " << d->pid_dim << "\n";
    }
    os << "};\n"
       << "struct _fsopt_group _group[nprocs];"
       << "  // one padded region per process\n\n";
  }

  for (const auto& g : prog.globals) {
    const TransformDecision* d = transforms.find({g->id, -1});
    if (d != nullptr && d->kind == TransformKind::kGroupTranspose)
      continue;  // emitted inside the group record
    os << g->elem.str() << " " << g->name;
    for (i64 ext : g->dims) os << "[" << ext << "]";
    os << ";";
    if (d != nullptr && d->kind == TransformKind::kPadAlign)
      os << "  // pad & align: each element in its own block";
    if (d != nullptr && d->kind == TransformKind::kLockPad)
      os << "  // lock: padded to one block";
    if (d != nullptr && d->kind == TransformKind::kIntraPad)
      os << "  // intra-pad: elements strided " << d->chunk << " bytes apart";
    if (d != nullptr && d->kind == TransformKind::kHotColdSplit)
      os << "  // hot/cold split: hot fields hoisted to separate regions";
    if (d != nullptr && d->kind == TransformKind::kFieldReorder)
      os << "  // field-reorder: struct fields permuted";
    os << "\n";
  }
  if (const TransformDecision* bd = transforms.find({kBarrierSym, -1}))
    if (bd->kind == TransformKind::kIntraPad)
      os << "// runtime barrier: lock/count/sense words strided " << bd->chunk
         << " bytes apart\n";
  os << "\n";

  for (const auto& fn : prog.funcs) {
    os << value_type_name(fn->ret) << " " << fn->name << "(";
    for (size_t i = 0; i < fn->params.size(); ++i) {
      if (i > 0) os << ", ";
      os << scalar_name(fn->params[i]->kind) << " " << fn->params[i]->name;
    }
    os << ")";
    if (fn->body) {
      os << " " << print_stmt(*fn->body, 0);
    } else {
      os << ";\n";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fsopt
