// SearchPlanner: budgeted search over the transform-plan IR, scored by
// simulated misses instead of heuristics.
//
// The §3.3 decision procedure and its profile/graph refinements are
// one-shot greedy rules: each datum gets the first transformation whose
// admissibility test passes.  With replay_multi making a full block-size
// sweep nearly as cheap as a single replay, the plan space can instead be
// *searched* against measured miss counts, in the spirit of Chen &
// Kandemir's constraint-network memory-layout formulation: candidate
// moves are the existing decision kinds applied per datum, pruned by
// constraint propagation (decisions that cannot coexist, a footprint
// budget, alignment feasibility), explored by beam search — or, when the
// pruned space fits the replay budget, enumerated exhaustively, which is
// what makes the brute-force oracle test sound.
//
// Layering: transform/ stays independent of sim/ and driver/.  The
// search never simulates anything itself — the driver passes in a
// PlanEvaluator callback (driver/experiment.h search_plan) that compiles
// a candidate plan against the shared front half, records its trace once
// and replays it across the swept block sizes in a single pass; this
// layer only sees the resulting plain-number PlanScore.
//
// Objective: two axes.  The primary axis is total false-sharing misses
// summed across the swept block sizes; the secondary axis is
// spatial-locality loss — the cold/capacity misses a candidate adds over
// the seed plan, plus its footprint growth in blocks.  Candidates are
// ordered lexicographically by (fs_total, spatial_loss, generation
// index); the generation index is deterministic, so the whole search is
// bit-identical across thread counts and repeated runs (the evaluator's
// replays are bit-identical by construction).  Besides the single best
// plan the search keeps the best plan *per swept block size* and the
// Pareto frontier over the two axes (`fsoptc --pareto-out`).
#pragma once

#include <functional>

#include "transform/planner.h"

namespace fsopt {

/// Measured score of one candidate plan: per-block-size false-sharing
/// misses, per-block-size cold+capacity misses (the spatial-locality
/// axis), and the layout footprint in bytes.  Plain numbers only — the
/// driver's evaluator distills them from a trace study.
struct PlanScore {
  std::map<i64, u64> fs;             // block size -> false-sharing misses
  std::map<i64, u64> cold_capacity;  // block size -> cold + replacement
  i64 footprint = 0;                 // shared-heap bytes of the layout

  u64 fs_total() const {
    u64 t = 0;
    for (const auto& [b, v] : fs) t += v;
    return t;
  }
};

/// Compile + trace + replay one candidate plan.  Must be deterministic:
/// the same plan must always produce the same score (the replay engine
/// guarantees bit-identical stats for any thread count).
using PlanEvaluator = std::function<PlanScore(const TransformPlan&)>;

/// Cost bound for the search.  `max_replays` caps candidate evaluations
/// *beyond* the seed plan (the seed is always evaluated — it is the
/// baseline both axes are measured against), so a budget of 0 degrades
/// gracefully to the seed plan.  Tie-breaking is deterministic
/// (generation order), so a fixed budget yields identical plans and
/// frontiers for any thread count and across repeated runs.
struct SearchBudget {
  int max_replays = 24;
  int beam_width = 3;
  int max_rounds = 3;
  /// Constraint-propagation bound: the summed footprint-growth estimate
  /// of a candidate's moves may not exceed this (same currency as
  /// ProfilePlannerOptions::pad_footprint_limit).
  i64 footprint_limit = 256 * 1024;
};

/// `base` overridden by FSOPT_SEARCH_BUDGET (max candidate replays) when
/// the variable is set to a non-negative integer.
SearchBudget search_budget_from_env(SearchBudget base = {});

/// The feasible moves for one datum, after node-level constraint pruning
/// (alignment feasibility, per-move footprint).  A move with kind kNone
/// clears the seed's decision for the datum (exploring *removal* is what
/// populates the low-footprint end of the Pareto frontier).  Exposed so
/// the oracle test can enumerate exactly the space the search prunes.
struct SearchDomain {
  DatumKey datum;
  std::string name;  // address-map spelling, for reports
  std::vector<TransformDecision> moves;
};

/// One evaluated candidate.  `order` is the deterministic generation
/// index (0 = the seed plan) used as the final tie-break.
struct SearchCandidate {
  TransformPlan plan;
  PlanScore score;
  u64 fs_total = 0;
  u64 spatial_loss = 0;
  int order = 0;
};

struct SearchResult {
  i64 block_size = 128;    // the plan-target size
  std::vector<i64> blocks; // swept sizes every candidate was scored at
  SearchBudget budget;
  /// Every evaluated candidate, in generation order ([0] is the seed).
  std::vector<SearchCandidate> evaluated;
  /// Index of the best candidate overall: lexicographic min of
  /// (fs_total, spatial_loss, order) over the candidates that weakly
  /// dominate the seed's false sharing at *every* swept block size (the
  /// seed qualifies trivially, so the winner is never worse than the
  /// seed plan at any size — the invariant the bench gates enforce).
  size_t best_overall = 0;
  /// Per swept block size, the candidate minimizing (fs at that size,
  /// spatial_loss, order).
  std::map<i64, size_t> best_by_block;
  /// Pareto frontier over (fs_total, spatial_loss): indices of the
  /// non-dominated candidates, sorted by ascending fs_total.  Dominated
  /// duplicates keep the lowest generation index.  Never empty — the
  /// seed always participates.
  std::vector<size_t> frontier;
  /// True when the pruned domain product fit the replay budget and the
  /// space was enumerated exhaustively (the oracle regime).
  bool exhaustive = false;
  u64 generated = 0;  // candidate plans considered (including pruned)
  u64 pruned = 0;     // rejected by constraint propagation / dedup
  u64 replays = 0;    // evaluator invocations (seed included)

  const SearchCandidate& best() const { return evaluated[best_overall]; }
};

/// Budgeted plan-space search.  `blocks` are the swept block sizes the
/// evaluator scores at (they become SearchResult::blocks); the seed plan
/// is `in.base` when set, else the GraphPlanner plan for the same inputs.
class SearchPlanner : public Planner {
 public:
  SearchPlanner(SearchBudget budget, std::vector<i64> blocks,
                PlanEvaluator evaluate)
      : budget_(budget), blocks_(std::move(blocks)),
        evaluate_(std::move(evaluate)) {}

  const char* name() const override { return "search"; }
  /// The best-overall plan of search().
  TransformPlan plan(const PlannerInputs& in) const override;
  SearchResult search(const PlannerInputs& in) const;

  /// The constraint-pruned per-datum move domains for `in`, in the
  /// deterministic order the search explores them.  Public so the
  /// brute-force oracle test enumerates exactly the same space.
  std::vector<SearchDomain> domains(const PlannerInputs& in) const;

 private:
  SearchBudget budget_;
  std::vector<i64> blocks_;
  PlanEvaluator evaluate_;
};

/// Apply one search move to a plan: decisions colliding with the move's
/// datum (exact datum, whole symbol for field-level moves, any field for
/// symbol-level moves) are removed, then the move is appended (kNone
/// appends nothing — pure removal).  Exposed for the oracle test.
TransformPlan apply_search_move(const TransformPlan& plan,
                                const TransformDecision& move);

/// Versioned JSON for `fsoptc --pareto-out`: budget, counters, the best
/// plan overall, the best plan per swept block size, and the full Pareto
/// frontier with scores and embedded plans (plan_version-1 objects, the
/// same schema --plan-in accepts).  Deterministic byte-for-byte for a
/// fixed search result.
std::string search_result_to_json(const SearchResult& r, const Program& prog);

}  // namespace fsopt
