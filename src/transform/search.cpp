#include "transform/search.h"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <optional>
#include <set>

#include "lang/ast.h"
#include "obs/metrics.h"
#include "support/json.h"

namespace fsopt {

SearchBudget search_budget_from_env(SearchBudget base) {
  if (const char* env = std::getenv("FSOPT_SEARCH_BUDGET")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0)
      base.max_replays = static_cast<int>(v);
  }
  return base;
}

TransformPlan apply_search_move(const TransformPlan& plan,
                                const TransformDecision& move) {
  TransformPlan out;
  out.planner = plan.planner;
  out.block_size = plan.block_size;
  for (const TransformDecision& d : plan.decisions) {
    bool collides = d.datum.sym == move.datum.sym &&
                    (d.datum.field < 0 || move.datum.field < 0 ||
                     d.datum.field == move.datum.field);
    if (!collides) out.decisions.push_back(d);
  }
  if (move.kind != TransformKind::kNone) out.decisions.push_back(move);
  return out;
}

namespace {

/// Same collision rule as apply_search_move's removal: does `plan` hold a
/// decision that would be displaced by a move on `key`?
bool covers(const TransformPlan& plan, const DatumKey& key) {
  for (const TransformDecision& d : plan.decisions) {
    if (d.datum.sym != key.sym) continue;
    if (d.datum.field < 0 || key.field < 0 || d.datum.field == key.field)
      return true;
  }
  return false;
}

/// Layout-relevant canonical key of a plan (reason and decision order
/// excluded), for deduplicating candidates that different move sequences
/// reach.
std::string plan_key(const TransformPlan& p) {
  std::vector<std::string> lines;
  lines.reserve(p.decisions.size());
  for (const TransformDecision& d : p.decisions) {
    std::string s = std::to_string(d.datum.sym) + "." +
                    std::to_string(d.datum.field) + ":" +
                    std::to_string(static_cast<int>(d.kind)) + ":" +
                    std::to_string(d.pid_dim) + ":" +
                    std::to_string(static_cast<int>(d.shape)) + ":" +
                    std::to_string(d.chunk);
    for (int f : d.fields) s += "," + std::to_string(f);
    lines.push_back(std::move(s));
  }
  std::sort(lines.begin(), lines.end());
  std::string key;
  for (const std::string& l : lines) {
    key += l;
    key += ";";
  }
  return key;
}

/// Greedy processor-affinity ownership of a conflict entry's words (the
/// same rule as GraphPlanner's cut): each word goes to the processor
/// with the most incident edge weight, ties to the lowest processor.
std::map<i64, int> word_owners(const ConflictProfile::Entry& e) {
  std::map<i64, std::map<int, u64>> weight;
  for (const ConflictProfile::Pair& p : e.pairs) {
    weight[p.writer_off][p.writer_proc] += p.weight;
    weight[p.victim_off][p.victim_proc] += p.weight;
  }
  std::map<i64, int> owner;
  for (const auto& [off, procs] : weight) {
    int best = -1;
    u64 best_w = 0;
    for (const auto& [proc, w] : procs)
      if (best < 0 || w > best_w) {
        best = proc;
        best_w = w;
      }
    owner[off] = best;
  }
  return owner;
}

/// Conservative estimate of the shared-heap growth a move costs, in
/// bytes, for the footprint constraint.  The evaluator later measures
/// the real footprint; this estimate only has to be deterministic and
/// roughly right to prune clearly-over-budget assignments early.
i64 move_growth(const TransformDecision& m, const GlobalSym* gs,
                i64 block_size) {
  if (gs == nullptr)  // the barrier: three words strided apart
    return m.kind == TransformKind::kIntraPad ? 3 * m.chunk : block_size;
  i64 elems = gs->elem_count();
  i64 bytes = gs->byte_size();
  switch (m.kind) {
    case TransformKind::kPadAlign:
      return std::max<i64>(
          elems * std::max(block_size, gs->elem.byte_size()) - bytes, 0);
    case TransformKind::kIntraPad:
      return std::max<i64>(
          elems * std::max(m.chunk, gs->elem.byte_size()) - bytes, 0);
    case TransformKind::kHotColdSplit:
      return static_cast<i64>(m.fields.size()) * elems * block_size;
    default:
      // Reorder, group&transpose, indirection, lock-pad: bounded by
      // alignment slack, not proportional to the datum.
      return block_size;
  }
}

struct DomainBuildResult {
  std::vector<SearchDomain> domains;
  u64 pruned = 0;  // node-infeasible moves dropped during construction
};

/// The candidate datums, ordered by measured damage: conflict-profile
/// entries first (descending weight), then profile entries the conflict
/// graph did not already surface.  Capped so the plan space stays
/// enumerable; every threshold the greedy planners apply is deliberately
/// absent — exploring below-threshold datums is the point of searching.
DomainBuildResult build_domains(const PlannerInputs& in,
                                const SearchBudget& budget) {
  constexpr size_t kMaxDomains = 6;
  constexpr i64 kStrides[] = {64, 256};

  DomainBuildResult out;
  std::set<DatumKey> seen;
  std::map<DatumKey, std::vector<const AccessRecord*>> writes_by_datum =
      dominant_phase_writes(in.report, in.summary);

  struct Source {
    std::string name;
    const ConflictProfile::Entry* conflict;
    u64 weight;
  };
  std::vector<Source> sources;
  if (in.conflicts != nullptr)
    for (const ConflictProfile::Entry& e : in.conflicts->entries)
      sources.push_back({e.name, &e, e.weight});
  if (in.profile != nullptr)
    for (const FalseSharingProfile::Entry& e : in.profile->entries) {
      bool dup = false;
      for (const Source& s : sources)
        if (s.name == e.name) dup = true;
      if (!dup && e.fs_misses > 0)
        sources.push_back({e.name, nullptr, e.fs_misses});
    }

  for (const Source& src : sources) {
    if (out.domains.size() >= kMaxDomains) break;

    DecisionReason reason;
    reason.code = src.conflict != nullptr ? ReasonCode::kConflictGraph
                                          : ReasonCode::kProfileFalseSharing;
    reason.fs_misses = src.weight;

    SearchDomain dom;
    dom.name = src.name;

    // Resolve the name to a datum the same way GraphPlanner does: the
    // DatumClass when the sharing report has one, the symbol-level
    // global otherwise, the pseudo-datum for the barrier.
    const GlobalSym* gs = nullptr;
    const DatumClass* dc = nullptr;
    if (src.name == kBarrierName) {
      dom.datum = {kBarrierSym, -1};
      for (i64 stride : kStrides)
        dom.moves.push_back({dom.datum, TransformKind::kIntraPad, -1,
                             PartitionShape::kBlocked, stride, reason, {}});
    } else {
      for (const DatumClass& d : in.report.data)
        if (d.name == src.name) dc = &d;
      if (dc != nullptr) {
        gs = in.summary.datum_sym(dc->datum);
        dom.datum = dc->datum;
      } else {
        gs = in.summary.prog->find_global(src.name);
        dom.datum = gs != nullptr ? DatumKey{gs->id, -1} : DatumKey{};
      }
      if (gs == nullptr) continue;
    }

    if (gs != nullptr && dc != nullptr && dc->is_lock) {
      dom.moves.push_back({dom.datum, TransformKind::kLockPad, -1,
                           PartitionShape::kBlocked, 1, reason, {}});
    } else if (gs != nullptr) {
      i64 elems = 1;
      if (dc != nullptr)
        for (i64 ext : dc->extents) elems *= ext;
      else
        elems = gs->elem_count();

      // Struct symbols at symbol level: the intra-datum repairs.
      if (gs->elem.is_struct && dom.datum.field < 0 &&
          src.conflict != nullptr) {
        const StructType& st = *gs->elem.strct;
        std::map<i64, int> owner = word_owners(*src.conflict);
        std::set<int> hot;
        std::set<int> owners;
        bool mapped = true;
        for (const auto& [off, proc] : owner) {
          i64 rel = off % gs->elem.byte_size();
          int fi = -1;
          for (size_t f = 0; f < st.fields.size(); ++f)
            if (rel >= st.fields[f].offset &&
                rel < st.fields[f].offset + st.fields[f].byte_size())
              fi = static_cast<int>(f);
          if (fi < 0) {
            mapped = false;
            break;
          }
          hot.insert(fi);
          owners.insert(proc);
        }
        if (mapped && !hot.empty()) {
          TransformDecision split{dom.datum, TransformKind::kHotColdSplit,
                                  -1, PartitionShape::kBlocked, 1, reason, {}};
          split.fields.assign(hot.begin(), hot.end());
          if (move_growth(split, gs, in.block_size) <=
              budget.footprint_limit)
            dom.moves.push_back(std::move(split));
          else
            ++out.pruned;
          // A pure permutation costs no footprint; propose it whenever
          // at least two affinity classes exist and let the replay judge
          // whether it separates them.
          if (owners.size() >= 2 && st.fields.size() >= 2) {
            std::map<int, std::map<int, u64>> field_weight;
            for (const ConflictProfile::Pair& p : src.conflict->pairs) {
              auto field_of = [&](i64 off) {
                i64 rel = off % gs->elem.byte_size();
                for (size_t f = 0; f < st.fields.size(); ++f)
                  if (rel >= st.fields[f].offset &&
                      rel < st.fields[f].offset + st.fields[f].byte_size())
                    return static_cast<int>(f);
                return -1;
              };
              if (int fi = field_of(p.writer_off); fi >= 0)
                field_weight[fi][p.writer_proc] += p.weight;
              if (int fi = field_of(p.victim_off); fi >= 0)
                field_weight[fi][p.victim_proc] += p.weight;
            }
            std::vector<int> perm(st.fields.size());
            for (size_t f = 0; f < perm.size(); ++f)
              perm[f] = static_cast<int>(f);
            auto owner_class = [&](int fi) {
              auto it = field_weight.find(fi);
              if (it == field_weight.end()) return INT_MAX;  // cold: last
              int best = -1;
              u64 best_w = 0;
              for (const auto& [proc, w] : it->second)
                if (best < 0 || w > best_w) {
                  best = proc;
                  best_w = w;
                }
              return best;
            };
            std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
              return owner_class(a) < owner_class(b);
            });
            TransformDecision reorder{dom.datum,
                                      TransformKind::kFieldReorder, -1,
                                      PartitionShape::kBlocked, 1, reason,
                                      {}};
            reorder.fields = std::move(perm);
            dom.moves.push_back(std::move(reorder));
          }
        }
      }

      // Per-process writes with a detectable linear partition axis: the
      // locality-restoring transforms, same admissibility as the
      // profile planner.
      if (dc != nullptr && dc->writes == Pattern::kPerProcess &&
          dc->writer_count >= 2 && dc->pid_dim >= 0) {
        auto shape =
            detect_partition_shape(writes_by_datum[dc->datum], in.summary,
                                   dc->datum, dc->pid_dim);
        if (shape.has_value()) {
          if (dc->pid_dim_is_field_dim && dc->datum.field >= 0)
            dom.moves.push_back({dom.datum, TransformKind::kIndirection,
                                 dc->pid_dim, shape->first, shape->second,
                                 reason, {}});
          else if (dc->datum.field < 0)
            dom.moves.push_back({dom.datum, TransformKind::kGroupTranspose,
                                 dc->pid_dim, shape->first, shape->second,
                                 reason, {}});
        }
      }

      // Intra-datum element strides.  A stride below the element size
      // would overlap elements — alignment-infeasible, pruned.
      if (!gs->elem.is_struct || dom.datum.field >= 0) {
        i64 unit = dom.datum.field >= 0
                       ? gs->elem.strct->fields[static_cast<size_t>(
                             dom.datum.field)].byte_size()
                       : gs->elem.byte_size();
        for (i64 stride : kStrides) {
          if (stride < unit) {
            ++out.pruned;
            continue;
          }
          TransformDecision pad{dom.datum, TransformKind::kIntraPad, -1,
                                PartitionShape::kBlocked, stride, reason, {}};
          if (move_growth(pad, gs, in.block_size) <= budget.footprint_limit)
            dom.moves.push_back(std::move(pad));
          else
            ++out.pruned;
        }
      }

      // Whole-datum isolation.
      TransformDecision pad{dom.datum, TransformKind::kPadAlign, -1,
                            PartitionShape::kBlocked, 1, reason, {}};
      if (move_growth(pad, gs, in.block_size) <= budget.footprint_limit)
        dom.moves.push_back(std::move(pad));
      else
        ++out.pruned;
      (void)elems;
    }

    // Exploring *removal* of the seed's decision trades false sharing
    // back for footprint/locality — the low-loss end of the frontier.
    if (in.base != nullptr && covers(*in.base, dom.datum))
      dom.moves.push_back({dom.datum, TransformKind::kNone, -1,
                           PartitionShape::kBlocked, 1, reason, {}});

    if (!dom.moves.empty()) out.domains.push_back(std::move(dom));
  }
  return out;
}

}  // namespace

std::vector<SearchDomain> SearchPlanner::domains(
    const PlannerInputs& in) const {
  return build_domains(in, budget_).domains;
}

TransformPlan SearchPlanner::plan(const PlannerInputs& in) const {
  SearchResult r = search(in);
  return r.best().plan;
}

SearchResult SearchPlanner::search(const PlannerInputs& in) const {
  FSOPT_CHECK(static_cast<bool>(evaluate_),
              "SearchPlanner requires a PlanEvaluator");
  SearchResult out;
  out.block_size = in.block_size;
  out.blocks = blocks_;
  out.budget = budget_;

  // The seed: the plan the search must never lose to.  Its evaluation is
  // the baseline the spatial-locality axis is measured against.
  TransformPlan seed =
      in.base != nullptr ? *in.base : GraphPlanner().plan(in);
  seed.planner = name();
  seed.block_size = in.block_size;

  std::set<std::string> seen;
  std::optional<PlanScore> baseline;  // the seed's score, set after [0]

  auto evaluate = [&](TransformPlan p) {
    SearchCandidate c;
    c.order = static_cast<int>(out.evaluated.size());
    c.score = evaluate_(p);
    ++out.replays;
    c.fs_total = c.score.fs_total();
    if (baseline.has_value()) {
      for (const auto& [b, v] : c.score.cold_capacity) {
        auto it = baseline->cold_capacity.find(b);
        u64 base = it != baseline->cold_capacity.end() ? it->second : 0;
        if (v > base) c.spatial_loss += v - base;
      }
      if (c.score.footprint > baseline->footprint)
        c.spatial_loss += static_cast<u64>(
            (c.score.footprint - baseline->footprint + in.block_size - 1) /
            in.block_size);
    }
    c.plan = std::move(p);
    out.evaluated.push_back(std::move(c));
  };

  ++out.generated;
  seen.insert(plan_key(seed));
  evaluate(seed);
  baseline = out.evaluated.front().score;

  // A seed with zero false sharing at every swept size is already
  // optimal on the primary axis and, by definition, has zero loss on the
  // secondary one — nothing can dominate it.
  if (out.evaluated.front().fs_total > 0) {
    DomainBuildResult db = build_domains(in, budget_);
    out.pruned += db.pruned;
    const std::vector<SearchDomain>& domains = db.domains;

    auto growth_of = [&](const TransformDecision& m) {
      const GlobalSym* gs =
          m.datum.sym == kBarrierSym ? nullptr : in.summary.datum_sym(
                                                     {m.datum.sym, -1});
      return move_growth(m, gs, in.block_size);
    };

    // Candidate admission: dedup against every plan already evaluated
    // and enforce the footprint constraint over the assignment's summed
    // move growth.  Returns true when the candidate was evaluated.
    auto try_candidate = [&](const TransformPlan& p, i64 growth) -> bool {
      ++out.generated;
      if (growth > budget_.footprint_limit) {
        ++out.pruned;
        return false;
      }
      std::string key = plan_key(p);
      if (!seen.insert(key).second) {
        ++out.pruned;
        return false;
      }
      evaluate(p);
      return true;
    };

    // Exhaustive regime: when the pruned domain product fits the replay
    // budget, enumerate every assignment (mixed-radix counter; digit 0
    // keeps the seed's treatment of that datum).  This is the regime the
    // brute-force oracle test exercises.
    u64 space = 1;
    for (const SearchDomain& d : domains) {
      space *= static_cast<u64>(d.moves.size()) + 1;
      if (space > 100000) break;  // avoid overflow; clearly not enumerable
    }
    bool budget_left = true;
    if (!domains.empty() &&
        space - 1 <= static_cast<u64>(budget_.max_replays)) {
      out.exhaustive = true;
      for (u64 idx = 1; idx < space && budget_left; ++idx) {
        u64 rem = idx;
        TransformPlan p = seed;
        i64 growth = 0;
        for (const SearchDomain& d : domains) {
          u64 digit = rem % (d.moves.size() + 1);
          rem /= d.moves.size() + 1;
          if (digit == 0) continue;
          const TransformDecision& m = d.moves[digit - 1];
          p = apply_search_move(p, m);
          growth += growth_of(m);
        }
        try_candidate(p, growth);
        budget_left =
            out.replays <= static_cast<u64>(budget_.max_replays);
      }
    } else if (!domains.empty()) {
      // Beam search: each round expands every beam plan by every single
      // feasible move, in deterministic (beam, domain, move) order, then
      // keeps the lexicographically best `beam_width` candidates.
      auto better = [&](size_t a, size_t b) {
        const SearchCandidate& ca = out.evaluated[a];
        const SearchCandidate& cb = out.evaluated[b];
        if (ca.fs_total != cb.fs_total) return ca.fs_total < cb.fs_total;
        if (ca.spatial_loss != cb.spatial_loss)
          return ca.spatial_loss < cb.spatial_loss;
        return ca.order < cb.order;
      };
      // Summed move growth per evaluated candidate, for the running
      // footprint constraint as assignments compose.
      std::vector<i64> growth_acc = {0};
      std::vector<size_t> beam = {0};
      for (int round = 0; round < budget_.max_rounds && budget_left;
           ++round) {
        std::vector<size_t> next;
        for (size_t bi : beam) {
          for (const SearchDomain& d : domains) {
            for (const TransformDecision& m : d.moves) {
              if (out.replays >
                  static_cast<u64>(budget_.max_replays)) {
                budget_left = false;
                break;
              }
              TransformPlan p = apply_search_move(out.evaluated[bi].plan, m);
              i64 growth = growth_acc[bi] + growth_of(m);
              size_t before = out.evaluated.size();
              if (try_candidate(p, growth)) {
                growth_acc.push_back(growth);
                next.push_back(before);
                if (out.evaluated.back().fs_total == 0 &&
                    out.evaluated.back().spatial_loss == 0)
                  budget_left = false;  // cannot be beaten
              }
              if (!budget_left) break;
            }
            if (!budget_left) break;
          }
          if (!budget_left) break;
        }
        if (next.empty()) break;
        std::vector<size_t> pool = beam;
        pool.insert(pool.end(), next.begin(), next.end());
        std::sort(pool.begin(), pool.end(), better);
        pool.resize(std::min<size_t>(pool.size(),
                                     static_cast<size_t>(std::max(
                                         budget_.beam_width, 1))));
        beam = std::move(pool);
      }
    }
  }

  // Winners.  Ties break by (secondary axis, generation index) so the
  // result is unique and deterministic.
  auto better_overall = [&](size_t a, size_t b) {
    const SearchCandidate& ca = out.evaluated[a];
    const SearchCandidate& cb = out.evaluated[b];
    if (ca.fs_total != cb.fs_total) return ca.fs_total < cb.fs_total;
    if (ca.spatial_loss != cb.spatial_loss)
      return ca.spatial_loss < cb.spatial_loss;
    return ca.order < cb.order;
  };
  // The overall winner must weakly dominate the seed at *every* swept
  // size: an fs_total argmin alone could trade one block size up while
  // the sum goes down, and the contract is "never worse than the seed
  // plan at any swept size" (the seed itself always qualifies).
  auto dominates_seed = [&](size_t i) {
    for (const auto& [b, v] : out.evaluated[0].score.fs) {
      auto it = out.evaluated[i].score.fs.find(b);
      if ((it != out.evaluated[i].score.fs.end() ? it->second : u64{0}) > v)
        return false;
    }
    return true;
  };
  out.best_overall = 0;
  for (size_t i = 1; i < out.evaluated.size(); ++i)
    if (dominates_seed(i) && better_overall(i, out.best_overall))
      out.best_overall = i;
  for (i64 b : blocks_) {
    size_t best = 0;
    auto fs_at = [&](size_t i) {
      auto it = out.evaluated[i].score.fs.find(b);
      return it != out.evaluated[i].score.fs.end() ? it->second : u64{0};
    };
    for (size_t i = 1; i < out.evaluated.size(); ++i) {
      if (fs_at(i) != fs_at(best)) {
        if (fs_at(i) < fs_at(best)) best = i;
      } else if (out.evaluated[i].spatial_loss <
                 out.evaluated[best].spatial_loss) {
        best = i;
      }
    }
    out.best_by_block[b] = best;
  }

  // Pareto frontier over (fs_total, spatial_loss): sweep candidates in
  // lexicographic order and keep each strict improvement on the
  // secondary axis.
  std::vector<size_t> order(out.evaluated.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), better_overall);
  u64 best_loss = 0;
  bool first = true;
  for (size_t i : order) {
    if (first || out.evaluated[i].spatial_loss < best_loss) {
      out.frontier.push_back(i);
      best_loss = out.evaluated[i].spatial_loss;
      first = false;
    }
  }
  std::sort(out.frontier.begin(), out.frontier.end(),
            [&](size_t a, size_t b) {
              return out.evaluated[a].fs_total < out.evaluated[b].fs_total;
            });

  static obs::Counter& candidates = obs::metric_counter("search.candidates");
  static obs::Counter& pruned = obs::metric_counter("search.pruned");
  static obs::Counter& replays = obs::metric_counter("search.replays");
  static obs::Gauge& frontier = obs::metric_gauge("search.frontier_size");
  candidates.inc(out.generated);
  pruned.inc(out.pruned);
  replays.inc(out.replays);
  frontier.set(static_cast<double>(out.frontier.size()));
  return out;
}

std::string search_result_to_json(const SearchResult& r,
                                  const Program& prog) {
  std::string out;
  json::Writer w(&out, 2);
  auto score_map = [&](const char* key, const std::map<i64, u64>& m) {
    w.key(key).begin_object();
    for (const auto& [b, v] : m) w.key(std::to_string(b)).value(v);
    w.end_object();
  };
  auto candidate = [&](size_t idx) {
    const SearchCandidate& c = r.evaluated[idx];
    w.begin_object();
    w.key("index").value(static_cast<i64>(idx));
    w.key("fs_total").value(c.fs_total);
    w.key("spatial_loss").value(c.spatial_loss);
    w.key("footprint").value(c.score.footprint);
    score_map("fs", c.score.fs);
    score_map("cold_capacity", c.score.cold_capacity);
    w.key("plan");
    plan_to_writer(w, c.plan, prog);
    w.end_object();
  };

  w.begin_object();
  w.key("search_version").value(1);
  w.key("block_size").value(r.block_size);
  w.key("blocks").begin_array();
  for (i64 b : r.blocks) w.value(b);
  w.end_array();
  w.key("budget").begin_object();
  w.key("max_replays").value(r.budget.max_replays);
  w.key("beam_width").value(r.budget.beam_width);
  w.key("max_rounds").value(r.budget.max_rounds);
  w.key("footprint_limit").value(r.budget.footprint_limit);
  w.end_object();
  w.key("exhaustive").value(r.exhaustive);
  w.key("stats").begin_object();
  w.key("generated").value(r.generated);
  w.key("pruned").value(r.pruned);
  w.key("replays").value(r.replays);
  w.key("evaluated").value(static_cast<i64>(r.evaluated.size()));
  w.end_object();
  w.key("best");
  candidate(r.best_overall);
  w.key("best_by_block").begin_array();
  for (const auto& [b, idx] : r.best_by_block) {
    w.begin_object();
    w.key("block").value(b);
    w.key("candidate");
    candidate(idx);
    w.end_object();
  }
  w.end_array();
  w.key("frontier").begin_array();
  for (size_t idx : r.frontier) candidate(idx);
  w.end_array();
  w.end_object();
  return out;
}

}  // namespace fsopt
