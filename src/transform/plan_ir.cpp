#include "transform/plan_ir.h"

#include <cstdio>
#include <sstream>

#include "lang/ast.h"
#include "support/json.h"

namespace fsopt {

const char* transform_name(TransformKind k) {
  switch (k) {
    case TransformKind::kNone: return "none";
    case TransformKind::kGroupTranspose: return "group&transpose";
    case TransformKind::kIndirection: return "indirection";
    case TransformKind::kPadAlign: return "pad&align";
    case TransformKind::kLockPad: return "lock-pad";
    case TransformKind::kFieldReorder: return "field-reorder";
    case TransformKind::kHotColdSplit: return "hot-cold-split";
    case TransformKind::kIntraPad: return "intra-pad";
  }
  return "?";
}

const char* reason_code_name(ReasonCode c) {
  switch (c) {
    case ReasonCode::kNone: return "none";
    case ReasonCode::kLockAlwaysPadded: return "lock-always-padded";
    case ReasonCode::kPerProcessWrites: return "per-process-writes";
    case ReasonCode::kSharedNonLocal: return "shared-non-local";
    case ReasonCode::kStructConsensus: return "struct-consensus";
    case ReasonCode::kProfileFalseSharing: return "profile-false-sharing";
    case ReasonCode::kConflictGraph: return "conflict-graph";
  }
  return "?";
}

std::string DecisionReason::render() const {
  switch (code) {
    case ReasonCode::kNone:
      return "";
    case ReasonCode::kLockAlwaysPadded:
      return "locks are always padded";
    case ReasonCode::kPerProcessWrites:
      return std::string("per-process writes, reads ") +
             pattern_name(read_pattern);
    case ReasonCode::kSharedNonLocal:
      return "shared reads and writes without processor or spatial "
             "locality";
    case ReasonCode::kStructConsensus:
      return "all fields per-process along dim " + std::to_string(dim);
    case ReasonCode::kProfileFalseSharing: {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "profile: %llu false-sharing misses (%.1f%% of "
                    "attributed)",
                    static_cast<unsigned long long>(fs_misses),
                    100.0 * fs_share);
      return buf;
    }
    case ReasonCode::kConflictGraph: {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "conflict graph: %llu intra-datum conflict misses "
                    "(%.1f%% of graph weight)",
                    static_cast<unsigned long long>(fs_misses),
                    100.0 * fs_share);
      return buf;
    }
  }
  return "";
}

const TransformDecision* TransformPlan::find(const DatumKey& k) const {
  for (const auto& d : decisions)
    if (d.datum == k) return &d;
  return nullptr;
}

const TransformDecision* TransformPlan::applying_to(int sym,
                                                    int field) const {
  if (field >= 0) {
    if (const TransformDecision* d = find({sym, field})) return d;
  }
  return find({sym, -1});
}

namespace {

/// One rendered decision line, shared by plan and diff rendering.  Must
/// stay byte-identical to the pre-IR free-form rendering: the compile
/// fingerprint (driver/pipeline.h) embeds these lines.
std::string decision_line(const TransformDecision& d,
                          const ProgramSummary& sum) {
  std::ostringstream os;
  os << sum.datum_name(d.datum) << ": " << transform_name(d.kind);
  if (d.kind == TransformKind::kGroupTranspose ||
      d.kind == TransformKind::kIndirection) {
    os << " (pid-dim " << d.pid_dim << ", "
       << (d.shape == PartitionShape::kBlocked ? "blocked" : "interleaved");
    if (d.shape == PartitionShape::kBlocked) os << " C=" << d.chunk;
    os << ")";
  } else if (d.kind == TransformKind::kIntraPad) {
    os << " (stride " << d.chunk << ")";
  } else if (d.kind == TransformKind::kFieldReorder ||
             d.kind == TransformKind::kHotColdSplit) {
    os << " (fields";
    for (int f : d.fields) os << " " << f;
    os << ")";
  }
  std::string reason = d.reason.render();
  if (!reason.empty()) os << "  -- " << reason;
  return os.str();
}

}  // namespace

std::string TransformPlan::render(const ProgramSummary& sum) const {
  std::ostringstream os;
  for (const auto& d : decisions) os << decision_line(d, sum) << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

/// "g" for symbol-level decisions, "g.f" for field-level ones — the same
/// names ProgramSummary::datum_name and the address map use.
std::string datum_spelling(const DatumKey& k, const Program& prog) {
  if (k.sym == kBarrierSym && k.field < 0) return kBarrierName;
  FSOPT_CHECK(k.sym >= 0 && static_cast<size_t>(k.sym) < prog.globals.size(),
              "plan decision names an unknown symbol id");
  const GlobalSym& g = *prog.globals[static_cast<size_t>(k.sym)];
  if (k.field < 0) return g.name;
  FSOPT_CHECK(g.elem.is_struct &&
                  static_cast<size_t>(k.field) < g.elem.strct->fields.size(),
              "plan decision names an unknown field of " + g.name);
  return g.name + "." +
         g.elem.strct->fields[static_cast<size_t>(k.field)].name;
}

DatumKey resolve_datum(const std::string& spelling, const Program& prog) {
  if (spelling == kBarrierName) return {kBarrierSym, -1};
  std::string sym_name = spelling;
  std::string field_name;
  if (size_t dot = spelling.find('.'); dot != std::string::npos) {
    sym_name = spelling.substr(0, dot);
    field_name = spelling.substr(dot + 1);
  }
  const GlobalSym* g = prog.find_global(sym_name);
  FSOPT_CHECK(g != nullptr, "plan names unknown global '" + sym_name + "'");
  if (field_name.empty()) return {g->id, -1};
  FSOPT_CHECK(g->elem.is_struct,
              "plan names field of non-struct global '" + sym_name + "'");
  int fi = g->elem.strct->field_index(field_name);
  FSOPT_CHECK(fi >= 0, "plan names unknown field '" + spelling + "'");
  return {g->id, fi};
}

template <typename T>
T parse_enum(const json::Value& v, const char* what,
             std::initializer_list<std::pair<const char*, T>> table) {
  FSOPT_CHECK(v.is_string(), std::string(what) + " must be a string");
  for (const auto& [name, value] : table)
    if (v.as_string() == name) return value;
  throw InternalError("unknown " + std::string(what) + " '" +
                      v.as_string() + "' in plan");
}

const json::Value& member(const json::Value& obj, const char* key,
                          const char* what) {
  const json::Value* v = obj.get(key);
  FSOPT_CHECK(v != nullptr,
              std::string(what) + " is missing member \"" + key + "\"");
  return *v;
}

i64 int_member(const json::Value& obj, const char* key, const char* what) {
  const json::Value& v = member(obj, key, what);
  FSOPT_CHECK(v.is_number(), std::string(what) + " member \"" + key +
                                 "\" must be a number");
  return v.as_i64();
}

}  // namespace

void plan_to_writer(json::Writer& w, const TransformPlan& plan,
                    const Program& prog) {
  w.begin_object();
  w.key("plan_version").value(1);
  w.key("planner").value(plan.planner);
  w.key("block_size").value(plan.block_size);
  w.key("decisions").begin_array();
  for (const TransformDecision& d : plan.decisions) {
    w.begin_object();
    w.key("datum").value(datum_spelling(d.datum, prog));
    w.key("kind").value(transform_name(d.kind));
    if (d.kind == TransformKind::kGroupTranspose ||
        d.kind == TransformKind::kIndirection) {
      w.key("pid_dim").value(d.pid_dim);
      w.key("shape").value(d.shape == PartitionShape::kBlocked
                               ? "blocked"
                               : "interleaved");
      w.key("chunk").value(d.chunk);
    } else if (d.kind == TransformKind::kIntraPad) {
      w.key("chunk").value(d.chunk);
    } else if (d.kind == TransformKind::kFieldReorder ||
               d.kind == TransformKind::kHotColdSplit) {
      w.key("fields").begin_array();
      for (int f : d.fields) w.value(f);
      w.end_array();
    }
    w.key("reason").begin_object();
    w.key("code").value(reason_code_name(d.reason.code));
    switch (d.reason.code) {
      case ReasonCode::kPerProcessWrites:
        w.key("read_pattern").value(pattern_name(d.reason.read_pattern));
        break;
      case ReasonCode::kStructConsensus:
        w.key("dim").value(d.reason.dim);
        break;
      case ReasonCode::kProfileFalseSharing:
      case ReasonCode::kConflictGraph:
        w.key("fs_misses").value(d.reason.fs_misses);
        w.key("fs_share").value(d.reason.fs_share);
        break;
      default:
        break;
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string plan_to_json(const TransformPlan& plan, const Program& prog) {
  std::string out;
  json::Writer w(&out, 2);
  plan_to_writer(w, plan, prog);
  return out;
}

TransformPlan plan_from_json(std::string_view json, const Program& prog) {
  std::optional<json::Value> doc = json::parse(json);
  FSOPT_CHECK(doc.has_value(), "plan file is not well-formed JSON");
  FSOPT_CHECK(doc->is_object(), "plan document must be a JSON object");
  FSOPT_CHECK(int_member(*doc, "plan_version", "plan") == 1,
              "unsupported plan_version (expected 1)");

  TransformPlan plan;
  const json::Value& planner = member(*doc, "planner", "plan");
  FSOPT_CHECK(planner.is_string(), "plan member \"planner\" must be a "
                                   "string");
  plan.planner = planner.as_string();
  plan.block_size = int_member(*doc, "block_size", "plan");
  FSOPT_CHECK(plan.block_size > 0, "plan block_size must be positive");

  const json::Value& decisions = member(*doc, "decisions", "plan");
  FSOPT_CHECK(decisions.is_array(),
              "plan member \"decisions\" must be an array");
  for (const json::Value& jd : decisions.items()) {
    FSOPT_CHECK(jd.is_object(), "each plan decision must be an object");
    TransformDecision d;
    const json::Value& datum = member(jd, "datum", "decision");
    FSOPT_CHECK(datum.is_string(),
                "decision member \"datum\" must be a string");
    d.datum = resolve_datum(datum.as_string(), prog);
    d.kind = parse_enum<TransformKind>(
        member(jd, "kind", "decision"), "transform kind",
        {{"none", TransformKind::kNone},
         {"group&transpose", TransformKind::kGroupTranspose},
         {"indirection", TransformKind::kIndirection},
         {"pad&align", TransformKind::kPadAlign},
         {"lock-pad", TransformKind::kLockPad},
         {"field-reorder", TransformKind::kFieldReorder},
         {"hot-cold-split", TransformKind::kHotColdSplit},
         {"intra-pad", TransformKind::kIntraPad}});
    if (d.kind == TransformKind::kGroupTranspose ||
        d.kind == TransformKind::kIndirection) {
      d.pid_dim = static_cast<int>(int_member(jd, "pid_dim", "decision"));
      d.shape = parse_enum<PartitionShape>(
          member(jd, "shape", "decision"), "partition shape",
          {{"blocked", PartitionShape::kBlocked},
           {"interleaved", PartitionShape::kInterleaved}});
      d.chunk = int_member(jd, "chunk", "decision");
    } else if (d.kind == TransformKind::kIntraPad) {
      d.chunk = int_member(jd, "chunk", "decision");
    } else if (d.kind == TransformKind::kFieldReorder ||
               d.kind == TransformKind::kHotColdSplit) {
      const json::Value& jf = member(jd, "fields", "decision");
      FSOPT_CHECK(jf.is_array(),
                  "decision member \"fields\" must be an array");
      for (const json::Value& f : jf.items()) {
        FSOPT_CHECK(f.is_number(), "decision field indices must be numbers");
        d.fields.push_back(static_cast<int>(f.as_i64()));
      }
    }
    const json::Value& jr = member(jd, "reason", "decision");
    FSOPT_CHECK(jr.is_object(),
                "decision member \"reason\" must be an object");
    d.reason.code = parse_enum<ReasonCode>(
        member(jr, "code", "reason"), "reason code",
        {{"none", ReasonCode::kNone},
         {"lock-always-padded", ReasonCode::kLockAlwaysPadded},
         {"per-process-writes", ReasonCode::kPerProcessWrites},
         {"shared-non-local", ReasonCode::kSharedNonLocal},
         {"struct-consensus", ReasonCode::kStructConsensus},
         {"profile-false-sharing", ReasonCode::kProfileFalseSharing},
         {"conflict-graph", ReasonCode::kConflictGraph}});
    switch (d.reason.code) {
      case ReasonCode::kPerProcessWrites:
        d.reason.read_pattern = parse_enum<Pattern>(
            member(jr, "read_pattern", "reason"), "read pattern",
            {{"none", Pattern::kNone},
             {"per-process", Pattern::kPerProcess},
             {"shared+local", Pattern::kSharedLocal},
             {"shared", Pattern::kSharedNonLocal}});
        break;
      case ReasonCode::kStructConsensus:
        d.reason.dim = static_cast<int>(int_member(jr, "dim", "reason"));
        break;
      case ReasonCode::kProfileFalseSharing:
      case ReasonCode::kConflictGraph:
        d.reason.fs_misses =
            static_cast<u64>(int_member(jr, "fs_misses", "reason"));
        d.reason.fs_share =
            member(jr, "fs_share", "reason").as_number();
        break;
      default:
        break;
    }
    plan.decisions.push_back(std::move(d));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

size_t PlanDiff::added() const {
  size_t n = 0;
  for (const auto& e : entries)
    if (e.change == PlanChange::kAdded) ++n;
  return n;
}

size_t PlanDiff::removed() const {
  size_t n = 0;
  for (const auto& e : entries)
    if (e.change == PlanChange::kRemoved) ++n;
  return n;
}

size_t PlanDiff::changed() const {
  size_t n = 0;
  for (const auto& e : entries)
    if (e.change == PlanChange::kChanged) ++n;
  return n;
}

std::string PlanDiff::render(const ProgramSummary& sum) const {
  if (entries.empty()) return "(no plan changes)\n";
  std::ostringstream os;
  for (const PlanDelta& e : entries) {
    switch (e.change) {
      case PlanChange::kAdded:
        os << "+ " << decision_line(e.after, sum) << "\n";
        break;
      case PlanChange::kRemoved:
        os << "- " << decision_line(e.before, sum) << "\n";
        break;
      case PlanChange::kChanged:
        os << "~ " << decision_line(e.before, sum) << "\n";
        os << "  -> " << decision_line(e.after, sum) << "\n";
        break;
    }
  }
  return os.str();
}

PlanDiff plan_diff(const TransformPlan& before, const TransformPlan& after) {
  PlanDiff diff;
  for (const TransformDecision& b : before.decisions) {
    const TransformDecision* a = after.find(b.datum);
    if (a == nullptr) {
      diff.entries.push_back({PlanChange::kRemoved, b.datum, b, {}});
    } else if (!(*a == b)) {
      diff.entries.push_back({PlanChange::kChanged, b.datum, b, *a});
    }
  }
  for (const TransformDecision& a : after.decisions) {
    if (before.find(a.datum) == nullptr)
      diff.entries.push_back({PlanChange::kAdded, a.datum, {}, a});
  }
  return diff;
}

}  // namespace fsopt
