// Source-level rendering of the restructured program: what the
// source-to-source restructurer emits for a transformed program.  Data
// declarations are rewritten (grouped/transposed record arrays, padded
// declarations, pointer fields for indirection); function bodies are
// unchanged because every transformation is an addressing change applied
// uniformly at all access sites.
#pragma once

#include <string>

#include "layout/layout.h"
#include "transform/decision.h"

namespace fsopt {

/// Render the transformed program as annotated PPL source.
std::string rewrite_program(const Program& prog,
                            const TransformSet& transforms,
                            i64 block_size);

}  // namespace fsopt
