// Pluggable planners: everything that can produce a TransformPlan.
//
// The paper's §3.3 heuristics were the repo's only decision-maker; the
// Planner interface makes them one implementation among several so the
// driver, tools and repair loop are written against "a planner" rather
// than "the static heuristics".  Two implementations ship:
//
//   StaticPlanner   — the §3.3 heuristics (transform/decision.h),
//                     behavior-preserving: its plan is bit-identical to
//                     decide_transforms.
//   ProfilePlanner  — starts from a base plan (normally the static one)
//                     and adds decisions for data a false-sharing
//                     *profile* shows the static weights missed.  The
//                     profile is per-datum attributed miss counts from a
//                     trace-driven simulation (driver/experiment.h
//                     build_fs_profile); this layer only sees the plain
//                     name-keyed numbers, keeping transform/ independent
//                     of sim/ and driver/.
//   GraphPlanner    — the profile pass plus intra-datum repair driven by
//                     the word-granularity conflict graph
//                     (ConflictProfile): partitions each datum's
//                     conflicting words by processor affinity and
//                     splits/pads the parts into separate coherence units.
//
// The repair loop (driver/experiment.h repair_loop) alternates
// ProfilePlanner with re-simulation until the plan reaches a fixed point.
#pragma once

#include "transform/decision.h"

namespace fsopt {

/// Per-datum false-sharing attribution from one simulated configuration.
/// Names are the address-map spellings ("g", "g.f", "<barrier>"), which
/// coincide with ProgramSummary::datum_name for program data.
struct FalseSharingProfile {
  struct Entry {
    std::string name;
    u64 fs_misses = 0;   // attributed false-sharing misses
    u64 misses = 0;      // attributed misses of any kind
    double fs_share = 0; // fs_misses / total attributed fs misses
  };
  /// Sorted by descending fs_misses (ties by name) — the order profile-
  /// guided decisions are appended in.
  std::vector<Entry> entries;
  i64 block_size = 0;  // configuration the attribution was simulated at
  u64 total_fs = 0;    // total attributed false-sharing misses

  const Entry* find(const std::string& name) const;
};

/// Word-granularity conflict attribution distilled per datum.  Offsets
/// are bytes relative to the datum's base; the driver distills this from
/// the simulator's per-line conflict graph plus the address map
/// (driver/experiment.h build_conflict_profile), so this layer only sees
/// plain name-keyed numbers and transform/ stays independent of sim/.
/// Cross-datum edges (the inter-datum transforms' territory) are not
/// included.
struct ConflictProfile {
  struct Pair {
    i64 writer_off = 0;  // byte offset of the invalidating written word
    i64 victim_off = 0;  // byte offset of the word whose read missed
    int writer_proc = 0;
    int victim_proc = 0;
    u64 weight = 0;  // false-sharing misses attributed to this pair
  };
  struct Entry {
    std::string name;  // address-map spelling ("g", "g.f", "<barrier>")
    u64 weight = 0;    // sum of pair weights
    std::vector<Pair> pairs;
  };
  /// Sorted by descending weight (ties by name).
  std::vector<Entry> entries;
  i64 block_size = 0;    // configuration the graph was collected at
  u64 total_weight = 0;  // sum over entries (intra-datum edges only)

  const Entry* find(const std::string& name) const;
};

/// Everything a planner may consult.  `profile` is null for planners that
/// do not use one; `base` (when non-null) is the plan to refine rather
/// than starting from scratch; `conflicts` feeds the graph planner.
struct PlannerInputs {
  const SharingReport& report;
  const ProgramSummary& summary;
  DecisionOptions options;
  i64 block_size = 128;
  const FalseSharingProfile* profile = nullptr;
  const TransformPlan* base = nullptr;
  const ConflictProfile* conflicts = nullptr;
};

class Planner {
 public:
  virtual ~Planner() = default;
  /// The name stamped into TransformPlan::planner.
  virtual const char* name() const = 0;
  virtual TransformPlan plan(const PlannerInputs& in) const = 0;
};

/// The §3.3 heuristics.  Ignores `profile` and `base`.
class StaticPlanner : public Planner {
 public:
  const char* name() const override { return "static"; }
  TransformPlan plan(const PlannerInputs& in) const override;
};

struct ProfilePlannerOptions {
  /// A datum must carry at least this share of all attributed
  /// false-sharing misses to be repaired.
  double min_fs_fraction = 0.02;
  /// ... and at least this many attributed false-sharing misses (guards
  /// against amplifying noise in short traces).
  u64 min_fs_misses = 16;
  /// Pad budget for profile-driven padding.  Looser than the static
  /// planner's: here the misses are *measured*, not estimated, so the
  /// trade against capacity misses is made on evidence.
  i64 pad_footprint_limit = 256 * 1024;
};

/// Profile-guided repair: extends `base` (or the static plan when no base
/// is given) with decisions for the data the profile shows still falsely
/// sharing.  Per datum: locks get lock-pad; per-process writes with a
/// detectable partition shape get group&transpose / indirection; anything
/// else gets pad & align within the (looser) footprint budget.  Existing
/// decisions are never modified or removed — the repair loop converges
/// because each iteration can only add.
class ProfilePlanner : public Planner {
 public:
  explicit ProfilePlanner(ProfilePlannerOptions opt = {}) : opt_(opt) {}
  const char* name() const override { return "profile"; }
  TransformPlan plan(const PlannerInputs& in) const override;

 private:
  ProfilePlannerOptions opt_;
};

struct GraphPlannerOptions {
  /// Options for the composed profile pass the graph planner runs first.
  ProfilePlannerOptions profile;
  /// A datum must carry at least this share of the whole graph's edge
  /// weight to receive an intra-datum decision...
  double min_weight_fraction = 0.02;
  /// ... and at least this much absolute edge weight.
  u64 min_weight = 16;
  /// An affinity partition must explain at least this share of the
  /// datum's conflict weight (cross-owner edges) to be worth acting on.
  double min_cut_fraction = 0.5;
  /// Byte stride for intra-datum padding.  Separated words must land in
  /// distinct coherence units at *every* swept block size, so this
  /// defaults to the largest block of the standard sweep, not the plan's
  /// own block size.
  i64 pad_stride = 256;
  /// Prefer a free field permutation over hot/cold splitting when
  /// re-packing the fields by affinity class provably separates every
  /// cross-class pair into distinct coherence units at the target block
  /// size (kFieldReorder costs no footprint and no indirection region).
  bool try_field_reorder = true;
};

/// Conflict-graph-guided repair: runs the profile pass, then partitions
/// each conflicting datum's words by processor affinity (greedy: every
/// word goes to the processor with the most edge weight on it) and, when
/// the partition explains enough of the conflict weight, separates the
/// parts — kHotColdSplit for struct fields, kIntraPad for array words and
/// for the interpreter's central barrier ("<barrier>", which has no
/// DatumClass and is invisible to the profile pass).  Existing decisions
/// are never modified or removed, so the repair loop still converges.
class GraphPlanner : public Planner {
 public:
  explicit GraphPlanner(GraphPlannerOptions opt = {}) : opt_(opt) {}
  const char* name() const override { return "graph"; }
  TransformPlan plan(const PlannerInputs& in) const override;

 private:
  GraphPlannerOptions opt_;
};

/// Planner registry for the CLI: "static", "profile" or "graph" (with
/// default options).  Throws InternalError on unknown names.
std::unique_ptr<Planner> make_planner(const std::string& name);

}  // namespace fsopt
