// Pluggable planners: everything that can produce a TransformPlan.
//
// The paper's §3.3 heuristics were the repo's only decision-maker; the
// Planner interface makes them one implementation among several so the
// driver, tools and repair loop are written against "a planner" rather
// than "the static heuristics".  Two implementations ship:
//
//   StaticPlanner   — the §3.3 heuristics (transform/decision.h),
//                     behavior-preserving: its plan is bit-identical to
//                     decide_transforms.
//   ProfilePlanner  — starts from a base plan (normally the static one)
//                     and adds decisions for data a false-sharing
//                     *profile* shows the static weights missed.  The
//                     profile is per-datum attributed miss counts from a
//                     trace-driven simulation (driver/experiment.h
//                     build_fs_profile); this layer only sees the plain
//                     name-keyed numbers, keeping transform/ independent
//                     of sim/ and driver/.
//
// The repair loop (driver/experiment.h repair_loop) alternates
// ProfilePlanner with re-simulation until the plan reaches a fixed point.
#pragma once

#include "transform/decision.h"

namespace fsopt {

/// Per-datum false-sharing attribution from one simulated configuration.
/// Names are the address-map spellings ("g", "g.f", "<barrier>"), which
/// coincide with ProgramSummary::datum_name for program data.
struct FalseSharingProfile {
  struct Entry {
    std::string name;
    u64 fs_misses = 0;   // attributed false-sharing misses
    u64 misses = 0;      // attributed misses of any kind
    double fs_share = 0; // fs_misses / total attributed fs misses
  };
  /// Sorted by descending fs_misses (ties by name) — the order profile-
  /// guided decisions are appended in.
  std::vector<Entry> entries;
  i64 block_size = 0;  // configuration the attribution was simulated at
  u64 total_fs = 0;    // total attributed false-sharing misses

  const Entry* find(const std::string& name) const;
};

/// Everything a planner may consult.  `profile` is null for planners that
/// do not use one; `base` (when non-null) is the plan to refine rather
/// than starting from scratch.
struct PlannerInputs {
  const SharingReport& report;
  const ProgramSummary& summary;
  DecisionOptions options;
  i64 block_size = 128;
  const FalseSharingProfile* profile = nullptr;
  const TransformPlan* base = nullptr;
};

class Planner {
 public:
  virtual ~Planner() = default;
  /// The name stamped into TransformPlan::planner.
  virtual const char* name() const = 0;
  virtual TransformPlan plan(const PlannerInputs& in) const = 0;
};

/// The §3.3 heuristics.  Ignores `profile` and `base`.
class StaticPlanner : public Planner {
 public:
  const char* name() const override { return "static"; }
  TransformPlan plan(const PlannerInputs& in) const override;
};

struct ProfilePlannerOptions {
  /// A datum must carry at least this share of all attributed
  /// false-sharing misses to be repaired.
  double min_fs_fraction = 0.02;
  /// ... and at least this many attributed false-sharing misses (guards
  /// against amplifying noise in short traces).
  u64 min_fs_misses = 16;
  /// Pad budget for profile-driven padding.  Looser than the static
  /// planner's: here the misses are *measured*, not estimated, so the
  /// trade against capacity misses is made on evidence.
  i64 pad_footprint_limit = 256 * 1024;
};

/// Profile-guided repair: extends `base` (or the static plan when no base
/// is given) with decisions for the data the profile shows still falsely
/// sharing.  Per datum: locks get lock-pad; per-process writes with a
/// detectable partition shape get group&transpose / indirection; anything
/// else gets pad & align within the (looser) footprint budget.  Existing
/// decisions are never modified or removed — the repair loop converges
/// because each iteration can only add.
class ProfilePlanner : public Planner {
 public:
  explicit ProfilePlanner(ProfilePlannerOptions opt = {}) : opt_(opt) {}
  const char* name() const override { return "profile"; }
  TransformPlan plan(const PlannerInputs& in) const override;

 private:
  ProfilePlannerOptions opt_;
};

/// Planner registry for the CLI: "static" or "profile" (with default
/// options).  Throws InternalError on unknown names.
std::unique_ptr<Planner> make_planner(const std::string& name);

}  // namespace fsopt
