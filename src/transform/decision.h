// §3.3 transformation heuristics: given the sharing classification of each
// datum, decide which of the four transformations (if any) to apply.
// The decisions are returned as a TransformPlan (transform/plan_ir.h);
// StaticPlanner (transform/planner.h) is the Planner-interface wrapper
// around this function.
#pragma once

#include <map>

#include "transform/plan_ir.h"

namespace fsopt {

struct DecisionOptions {
  /// Write weight must exceed read weight by this factor before
  /// transforming data whose reads are shared *with* locality (§3.3).
  double write_dominance = 10.0;
  /// Only data whose estimated access weight is at least this fraction of
  /// the program total are considered (static profiling "pinpoints the
  /// data structures most responsible", §3.1).  Busy data hidden deep in
  /// loops with unknown bounds can be under-weighted and escape
  /// transformation — the source of Maxflow's and Raytrace's residual
  /// false sharing (§5), and what the profile-guided planner
  /// (transform/planner.h) repairs.  Locks are exempt.
  double min_weight_fraction = 0.015;
  /// "Judicious use of padding" (§3.2): pad & align is skipped when the
  /// padded datum would exceed this many bytes, since the capacity and
  /// conflict misses of a blown-up data set would outweigh the
  /// false-sharing savings.  Locks are exempt (they are few).
  i64 pad_footprint_limit = 64 * 1024;
  /// Selective enables, used by the Table-2 attribution benchmark.
  bool enable_group_transpose = true;
  bool enable_indirection = true;
  bool enable_pad_align = true;
  bool enable_lock_pad = true;
};

/// Apply the heuristics.  `summary` supplies per-datum record details for
/// partition-shape detection; `block_size` is the coherence-unit size the
/// transformations target (the driver threads CompileOptions::block_size
/// through — there is exactly one block-size knob).  The returned plan has
/// planner = "static" and carries `block_size`.
TransformSet decide_transforms(const SharingReport& report,
                               const ProgramSummary& summary,
                               i64 block_size,
                               const DecisionOptions& options = {});

/// Dominant-phase write records per datum — the evidence
/// detect_partition_shape consumes.  Only the dominant phase's records
/// shape the layout (§3.1).
std::map<DatumKey, std::vector<const AccessRecord*>> dominant_phase_writes(
    const SharingReport& report, const ProgramSummary& summary);

/// Detect how per-process sections of dimension `dim` map onto pids.
/// Returns nullopt if neither a blocked nor an interleaved pattern fits
/// (the partitioning exists but has no linear layout axis).  Shared with
/// ProfilePlanner, which must answer the same question for data the
/// static weights missed.
std::optional<std::pair<PartitionShape, i64>> detect_partition_shape(
    const std::vector<const AccessRecord*>& writes,
    const ProgramSummary& summary, const DatumKey& key, int dim);

}  // namespace fsopt
