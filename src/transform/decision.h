// §3.3 transformation heuristics: given the sharing classification of each
// datum, decide which of the four transformations (if any) to apply.
#pragma once

#include "analysis/report.h"

namespace fsopt {

enum class TransformKind : u8 {
  kNone,
  kGroupTranspose,
  kIndirection,
  kPadAlign,
  kLockPad,
};

const char* transform_name(TransformKind k);

/// How the per-process partitioning maps onto the pid dimension.
enum class PartitionShape : u8 {
  kBlocked,      // process p owns indices [p*C, (p+1)*C)
  kInterleaved,  // process p owns indices ≡ p (mod NPROCS)
};

struct TransformDecision {
  DatumKey datum;  // field = -1 for symbol-level decisions
  TransformKind kind = TransformKind::kNone;
  int pid_dim = -1;
  PartitionShape shape = PartitionShape::kBlocked;
  i64 chunk = 1;  // C for blocked partitionings
  std::string reason;
};

struct DecisionOptions {
  /// Write weight must exceed read weight by this factor before
  /// transforming data whose reads are shared *with* locality (§3.3).
  double write_dominance = 10.0;
  /// Only data whose estimated access weight is at least this fraction of
  /// the program total are considered (static profiling "pinpoints the
  /// data structures most responsible", §3.1).  Busy data hidden deep in
  /// loops with unknown bounds can be under-weighted and escape
  /// transformation — the source of Maxflow's and Raytrace's residual
  /// false sharing (§5).  Locks are exempt.
  double min_weight_fraction = 0.015;
  /// Coherence-unit size (bytes) the transformations target; set by the
  /// driver from CompileOptions::block_size.
  i64 block_size = 128;
  /// "Judicious use of padding" (§3.2): pad & align is skipped when the
  /// padded datum would exceed this many bytes, since the capacity and
  /// conflict misses of a blown-up data set would outweigh the
  /// false-sharing savings.  Locks are exempt (they are few).
  i64 pad_footprint_limit = 64 * 1024;
  /// Selective enables, used by the Table-2 attribution benchmark.
  bool enable_group_transpose = true;
  bool enable_indirection = true;
  bool enable_pad_align = true;
  bool enable_lock_pad = true;
};

struct TransformSet {
  std::vector<TransformDecision> decisions;

  const TransformDecision* find(const DatumKey& k) const;
  /// Decision applying to an access to (sym, field): field-specific first,
  /// then symbol-level.
  const TransformDecision* applying_to(int sym, int field) const;
  std::string render(const ProgramSummary& sum) const;
};

/// Apply the heuristics.  `summary` supplies per-datum record details for
/// partition-shape detection.
TransformSet decide_transforms(const SharingReport& report,
                               const ProgramSummary& summary,
                               const DecisionOptions& options = {});

}  // namespace fsopt
