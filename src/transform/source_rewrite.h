// Executable source-to-source restructuring.
//
// The paper's system is a source-to-source restructurer built into
// Parafrase-2: it emits a transformed C program.  rewrite_to_source does
// the same for PPL — it produces a *runnable* PPL program whose ordinary
// declaration-order layout realizes the chosen transformations:
//
//   * group & transpose:  a[N] interleaved        -> a__gt[P][slots⊕pad]
//                         a[N] blocked by C       -> a__gt[N/C][C⊕pad]
//                         a[R][P] / a[P][R]       -> a__gt[P][R⊕pad]
//   * indirection:        g[N].v[P] extracted     -> g__v[P][N⊕pad]
//     (PPL has no pointers; for statically allocated arrays the
//      per-process heap areas of Figure 2b reduce to this extraction,
//      minus the pointer-load overhead)
//   * pad & align:        x -> x__pad[words];  a[N] -> a__pad[N][words]
//   * lock padding:       l -> l__pad[words];  ls[N] -> ls__pad[N][words]
//
// plus alignment filler so every padded object starts on a coherence-unit
// boundary.  Every access in every function body is rewritten
// accordingly.  Decisions whose shapes have no PPL expression (blocked
// 2-D chunks) are skipped and reported in `notes`.
#pragma once

#include <string>
#include <vector>

#include "transform/decision.h"

namespace fsopt {

struct SourceRewriteResult {
  std::string source;
  /// Decisions that could not be expressed in PPL (left untransformed).
  std::vector<std::string> skipped;
  /// Renamed datums: original name -> (new name, "2d"/"pad" mapping note).
  std::vector<std::pair<std::string, std::string>> renames;
};

SourceRewriteResult rewrite_to_source(const Program& prog,
                                      const TransformSet& transforms,
                                      i64 block_size);

}  // namespace fsopt
