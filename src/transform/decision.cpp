#include "transform/decision.h"

namespace fsopt {

namespace {

std::vector<i64> sample_pids(i64 nprocs) {
  std::vector<i64> out;
  if (nprocs <= 16) {
    for (i64 p = 0; p < nprocs; ++p) out.push_back(p);
    return out;
  }
  for (i64 p : {i64{0}, i64{1}, i64{2}, i64{3}, i64{5}, i64{8},
                nprocs / 2, nprocs - 2, nprocs - 1})
    if (p >= 0 && p < nprocs) out.push_back(p);
  return out;
}

}  // namespace

std::optional<std::pair<PartitionShape, i64>> detect_partition_shape(
    const std::vector<const AccessRecord*>& writes, const ProgramSummary& sum,
    const DatumKey& key, int dim) {
  std::vector<i64> extents = sum.datum_extents(key);
  i64 ext = extents[static_cast<size_t>(dim)];
  i64 P = sum.nprocs;
  i64 C = (ext + P - 1) / P;
  std::vector<i64> pids = sample_pids(P);

  bool blocked_ok = true;
  bool interleaved_ok = true;
  for (const AccessRecord* r : writes) {
    for (i64 p : pids) {
      if (!r->pids.test(p)) continue;
      auto box = r->rsd.concretize(sum.pdvs.pid, p, extents);
      const ConcreteRange& cr = box[static_cast<size_t>(dim)];
      if (cr.empty()) continue;
      if (!(cr.lo >= p * C && cr.hi < (p + 1) * C)) blocked_ok = false;
      if (!(cr.lo % P == p && (cr.stride % P == 0 || cr.lo == cr.hi)))
        interleaved_ok = false;
      if (!blocked_ok && !interleaved_ok) return std::nullopt;
    }
  }
  if (blocked_ok) return std::make_pair(PartitionShape::kBlocked, C);
  if (interleaved_ok) return std::make_pair(PartitionShape::kInterleaved, C);
  return std::nullopt;
}

std::map<DatumKey, std::vector<const AccessRecord*>> dominant_phase_writes(
    const SharingReport& report, const ProgramSummary& sum) {
  std::map<DatumKey, std::vector<const AccessRecord*>> writes_by_datum;
  for (const AccessRecord& r : sum.records) {
    if (!r.is_write || r.is_lock_op) continue;
    const DatumClass* dc = report.find(r.datum);
    if (dc != nullptr && r.phase != dc->dominant_phase) continue;
    writes_by_datum[r.datum].push_back(&r);
  }
  return writes_by_datum;
}

TransformSet decide_transforms(const SharingReport& report,
                               const ProgramSummary& sum, i64 block_size,
                               const DecisionOptions& opt) {
  // Gather write records per datum for partition-shape detection.
  std::map<DatumKey, std::vector<const AccessRecord*>> writes_by_datum =
      dominant_phase_writes(report, sum);

  TransformSet out;
  out.planner = "static";
  out.block_size = block_size;

  // Static-profile significance threshold: only the datums most
  // responsible for shared traffic are considered (locks exempt).
  double total_weight = 0.0;
  for (const auto& d : report.data)
    total_weight += d.read_weight + d.write_weight;
  double min_weight = opt.min_weight_fraction * total_weight;

  // §3.3 read-side admissibility for group&transpose / indirection.
  auto reads_admit = [&](const DatumClass& d) -> bool {
    switch (d.reads) {
      case Pattern::kNone:
      case Pattern::kPerProcess:
      case Pattern::kSharedNonLocal:
        return true;
      case Pattern::kSharedLocal:
        return d.write_weight >= opt.write_dominance * d.read_weight;
    }
    return false;
  };

  // Pass 1: per-datum candidate kinds.
  struct Candidate {
    const DatumClass* dc;
    TransformKind kind;
    PartitionShape shape;
    i64 chunk;
    DecisionReason reason;
  };
  std::vector<Candidate> cands;

  for (const auto& d : report.data) {
    if (d.is_lock) {
      if (opt.enable_lock_pad)
        out.decisions.push_back({d.datum, TransformKind::kLockPad, -1,
                                 PartitionShape::kBlocked, 1,
                                 {ReasonCode::kLockAlwaysPadded}});
      continue;
    }
    if (d.read_weight + d.write_weight < min_weight) continue;
    if (d.writes == Pattern::kPerProcess && d.writer_count >= 2 &&
        d.pid_dim >= 0 && reads_admit(d)) {
      auto shape = detect_partition_shape(writes_by_datum[d.datum], sum,
                                          d.datum, d.pid_dim);
      if (shape.has_value()) {
        TransformKind kind = d.pid_dim_is_field_dim
                                 ? TransformKind::kIndirection
                                 : TransformKind::kGroupTranspose;
        DecisionReason reason;
        reason.code = ReasonCode::kPerProcessWrites;
        reason.read_pattern = d.reads;
        cands.push_back({&d, kind, shape->first, shape->second, reason});
      }
      continue;
    }
    if (d.writes == Pattern::kSharedNonLocal && d.writer_count >= 2 &&
        (d.reads == Pattern::kSharedNonLocal ||
         d.reads == Pattern::kNone) &&
        opt.enable_pad_align) {
      i64 elem_count = 1;
      for (i64 e : d.extents) elem_count *= e;
      if (elem_count * block_size > opt.pad_footprint_limit)
        continue;  // judicious padding: blowing up the data set would cost
                   // more in capacity/conflict misses than it saves
      out.decisions.push_back(
          {d.datum, TransformKind::kPadAlign, -1, PartitionShape::kBlocked,
           1, {ReasonCode::kSharedNonLocal}});
      continue;
    }
  }

  // Pass 2: resolve struct-level consensus for group&transpose of struct
  // arrays (a field-level candidate whose pid dim is an *array* dim needs
  // every accessed field of the symbol to agree before the whole element
  // can be moved).
  std::map<int, std::vector<const Candidate*>> by_sym;
  for (const auto& c : cands) by_sym[c.dc->datum.sym].push_back(&c);

  for (const auto& c : cands) {
    if (c.kind == TransformKind::kIndirection) {
      if (!opt.enable_indirection) continue;
      out.decisions.push_back({c.dc->datum, TransformKind::kIndirection,
                               c.dc->pid_dim, c.shape, c.chunk, c.reason});
      continue;
    }
    if (!opt.enable_group_transpose) continue;
    if (c.dc->datum.field < 0) {
      // Scalar-element array: symbol-level decision directly.
      out.decisions.push_back({c.dc->datum, TransformKind::kGroupTranspose,
                               c.dc->pid_dim, c.shape, c.chunk, c.reason});
      continue;
    }
    // Field-level candidate with an array pid dim: consensus across all
    // accessed fields of the symbol.
    int sym = c.dc->datum.sym;
    if (out.find({sym, -1}) != nullptr) continue;  // already decided
    bool consensus = true;
    int accessed_fields = 0;
    for (const auto& d : report.data) {
      if (d.datum.sym != sym || d.is_lock) continue;
      ++accessed_fields;
      const Candidate* fc = nullptr;
      for (const Candidate* x : by_sym[sym])
        if (x->dc->datum == d.datum) fc = x;
      if (fc == nullptr || fc->kind != TransformKind::kGroupTranspose ||
          fc->dc->pid_dim != c.dc->pid_dim || fc->shape != c.shape) {
        // Read-only fields whose sections are per-process or unshared do
        // not block moving the element.
        bool benign = d.write_weight == 0 &&
                      (d.reads == Pattern::kPerProcess ||
                       d.reads == Pattern::kNone);
        if (!benign) {
          consensus = false;
          break;
        }
      }
    }
    if (consensus && accessed_fields > 0) {
      DecisionReason reason;
      reason.code = ReasonCode::kStructConsensus;
      reason.dim = c.dc->pid_dim;
      out.decisions.push_back({{sym, -1}, TransformKind::kGroupTranspose,
                               c.dc->pid_dim, c.shape, c.chunk, reason});
    }
  }
  return out;
}

}  // namespace fsopt
