#include "transform/source_rewrite.h"

#include <map>
#include <set>
#include <sstream>

namespace fsopt {

namespace {

struct Rule {
  enum class Kind {
    kGt1dInterleaved,  // a[N]    -> nn[P][slots]     [E%P][E/P]
    kGt1dBlocked,      // a[N]    -> nn[N/C][C]       [E/C][E%C]
    kGt2d,             // a[..P..]-> nn[P][R]         [Epid][Eother]
    kExtract,          // g[N].v[P] -> nn[P][N]       [E2][E1]
    kPadScalar,        // x       -> nn[words]        [0]
    kPadArray1d,       // a[N]    -> nn[N][words]     [E][0]
  };
  Kind kind;
  std::string new_name;
  i64 p = 1;        // process/region count (outer extent)
  i64 c = 1;        // chunk for blocked 1-D
  i64 inner = 1;    // padded inner extent (elements)
  int pid_dim = 0;  // for kGt2d: which source dim selects the region
};

i64 elem_bytes(const GlobalSym& g) { return g.elem.byte_size(); }

/// Inner extent padded so each region/row occupies whole coherence units.
i64 padded_extent(i64 elems, i64 elem_size, i64 block) {
  return round_up(std::max<i64>(elems, 1) * elem_size, block) / elem_size;
}

class SourceRewriter {
 public:
  SourceRewriter(const Program& prog, const TransformSet& transforms,
                 i64 block)
      : prog_(prog), transforms_(transforms), block_(block) {}

  SourceRewriteResult run() {
    build_rules();
    emit_params();
    emit_structs();
    emit_globals();
    emit_functions();
    result_.source = os_.str();
    return std::move(result_);
  }

 private:
  // -------------------------------------------------------------- rules --
  void skip(const TransformDecision& d, const std::string& why) {
    result_.skipped.push_back(
        prog_.globals[static_cast<size_t>(d.datum.sym)]->name + ": " + why);
  }

  void build_rules() {
    for (const TransformDecision& d : transforms_.decisions) {
      const GlobalSym& g =
          *prog_.globals[static_cast<size_t>(d.datum.sym)];
      i64 eb = elem_bytes(g);
      Rule r;
      r.new_name = g.name + (d.kind == TransformKind::kGroupTranspose
                                 ? "__gt"
                                 : d.kind == TransformKind::kIndirection
                                       ? "__x"
                                       : "__pad");
      switch (d.kind) {
        case TransformKind::kGroupTranspose: {
          if (d.datum.field >= 0) {
            skip(d, "field-level group&transpose not expressible");
            continue;
          }
          if (g.dims.size() == 1) {
            i64 n = g.dims[0];
            if (d.shape == PartitionShape::kInterleaved) {
              r.kind = Rule::Kind::kGt1dInterleaved;
              r.p = prog_.nprocs;
              r.inner = padded_extent((n + r.p - 1) / r.p, eb, block_);
            } else {
              r.kind = Rule::Kind::kGt1dBlocked;
              r.c = d.chunk;
              r.p = (n + d.chunk - 1) / d.chunk;
              r.inner = padded_extent(d.chunk, eb, block_);
            }
          } else if (g.dims.size() == 2 && d.chunk == 1 &&
                     d.shape == PartitionShape::kBlocked) {
            r.kind = Rule::Kind::kGt2d;
            r.pid_dim = d.pid_dim;
            r.p = g.dims[static_cast<size_t>(d.pid_dim)];
            r.inner = padded_extent(g.dims[static_cast<size_t>(1 - d.pid_dim)],
                                    eb, block_);
          } else {
            skip(d, "group&transpose shape not expressible in PPL");
            continue;
          }
          break;
        }
        case TransformKind::kIndirection: {
          if (d.datum.field < 0 || g.dims.size() != 1) {
            skip(d, "indirection shape not expressible in PPL");
            continue;
          }
          const StructField& f =
              g.elem.strct->fields[static_cast<size_t>(d.datum.field)];
          r.kind = Rule::Kind::kExtract;
          r.new_name = g.name + "__" + f.name;
          r.p = f.array_len;
          r.inner = padded_extent(g.dims[0], scalar_size(f.kind), block_);
          extracted_[g.elem.strct].insert(d.datum.field);
          break;
        }
        case TransformKind::kPadAlign:
        case TransformKind::kLockPad: {
          if (d.datum.field >= 0) {
            skip(d, "field-level padding not expressible");
            continue;
          }
          i64 words = padded_extent(1, eb, block_);
          r.inner = words;
          if (g.dims.empty()) {
            r.kind = Rule::Kind::kPadScalar;
          } else if (g.dims.size() == 1) {
            r.kind = Rule::Kind::kPadArray1d;
            r.p = g.dims[0];
          } else {
            skip(d, "2-D element padding not expressible");
            continue;
          }
          break;
        }
        case TransformKind::kNone:
          continue;
      }
      rules_[{d.datum.sym, d.datum.field}] = std::move(r);
      result_.renames.push_back(
          {prog_.globals[static_cast<size_t>(d.datum.sym)]->name,
           rules_[{d.datum.sym, d.datum.field}].new_name});
    }
  }

  const Rule* rule_for(int sym, int field) const {
    auto it = rules_.find({sym, field});
    if (it != rules_.end()) return &it->second;
    auto it2 = rules_.find({sym, -1});
    return it2 != rules_.end() ? &it2->second : nullptr;
  }

  // ------------------------------------------------------- declarations --
  void emit_params() {
    std::map<std::string, i64> sorted(prog_.params.begin(),
                                      prog_.params.end());
    os_ << "// fsopt source-to-source output (coherence unit " << block_
        << " bytes)\n";
    for (const auto& [name, value] : sorted)
      os_ << "param " << name << " = " << value << ";\n";
    os_ << "\n";
  }

  void emit_structs() {
    for (const auto& st : prog_.structs) {
      os_ << "struct " << st->name << " {\n";
      int emitted = 0;
      auto ex = extracted_.find(st.get());
      for (size_t fi = 0; fi < st->fields.size(); ++fi) {
        if (ex != extracted_.end() && ex->second.count(static_cast<int>(fi)))
          continue;  // moved to a per-process area
        const StructField& f = st->fields[fi];
        os_ << "  " << scalar_name(f.kind) << " " << f.name;
        if (f.array_len > 0) os_ << "[" << f.array_len << "]";
        os_ << ";\n";
        ++emitted;
      }
      if (emitted == 0) os_ << "  int __unused;\n";
      os_ << "};\n\n";
    }
  }

  /// Natural-alignment cursor tracking so padded objects can be aligned
  /// by filler arrays, exactly as a programmer would pad by hand.
  void align_cursor_to_block() {
    i64 over = cursor_ % block_;
    if (over == 0) return;
    i64 fill = (block_ - over) / 4;
    os_ << "int __fsopt_align" << align_id_++ << "[" << fill
        << "];  // alignment filler\n";
    cursor_ += fill * 4;
  }

  /// Struct size after field extraction (natural layout of what remains).
  i64 emitted_elem_size(const GlobalSym& g) const {
    if (!g.elem.is_struct) return g.elem.byte_size();
    const StructType& st = *g.elem.strct;
    auto ex = extracted_.find(&st);
    i64 off = 0;
    i64 align = 1;
    int emitted = 0;
    for (size_t fi = 0; fi < st.fields.size(); ++fi) {
      if (ex != extracted_.end() && ex->second.count(static_cast<int>(fi)))
        continue;
      const StructField& f = st.fields[fi];
      i64 a = scalar_size(f.kind);
      align = std::max(align, a);
      off = round_up(off, a) + f.byte_size();
      ++emitted;
    }
    if (emitted == 0) return 4;
    return round_up(off, align);
  }

  void emit_globals() {
    for (const auto& g : prog_.globals) {
      const Rule* r = rule_for(g->id, -1);
      i64 eb = emitted_elem_size(*g);
      if (r == nullptr) {
        // Unchanged declaration (fields may still have been extracted,
        // which only shrinks the element).
        cursor_ = round_up(cursor_, g->elem.alignment());
        os_ << g->elem.str() << " " << g->name;
        i64 n = 1;
        for (i64 d : g->dims) {
          os_ << "[" << d << "]";
          n *= d;
        }
        os_ << ";\n";
        cursor_ += n * eb;
        // Extraction areas are emitted right after their parent.
        emit_extraction_areas(*g);
        continue;
      }
      align_cursor_to_block();
      os_ << g->elem.str() << " " << r->new_name;
      switch (r->kind) {
        case Rule::Kind::kGt1dInterleaved:
        case Rule::Kind::kGt1dBlocked:
        case Rule::Kind::kGt2d:
          os_ << "[" << r->p << "][" << r->inner << "]";
          cursor_ += r->p * r->inner * eb;
          break;
        case Rule::Kind::kPadScalar:
          os_ << "[" << r->inner << "]";
          cursor_ += r->inner * eb;
          break;
        case Rule::Kind::kPadArray1d:
          os_ << "[" << r->p << "][" << r->inner << "]";
          cursor_ += r->p * r->inner * eb;
          break;
        case Rule::Kind::kExtract:
          FSOPT_CHECK(false, "extract is field-level");
      }
      os_ << ";  // was " << g->name << "\n";
      emit_extraction_areas(*g);
    }
    os_ << "\n";
  }

  void emit_extraction_areas(const GlobalSym& g) {
    if (!g.elem.is_struct) return;
    const StructType& st = *g.elem.strct;
    for (size_t fi = 0; fi < st.fields.size(); ++fi) {
      const Rule* r = rule_for(g.id, static_cast<int>(fi));
      if (r == nullptr || r->kind != Rule::Kind::kExtract) continue;
      align_cursor_to_block();
      const StructField& f = st.fields[fi];
      os_ << scalar_name(f.kind) << " " << r->new_name << "[" << r->p
          << "][" << r->inner << "];  // per-process area for " << g.name
          << "." << f.name << "\n";
      cursor_ += r->p * r->inner * scalar_size(f.kind);
    }
  }

  // ---------------------------------------------------------- functions --
  void emit_functions() {
    for (const auto& fn : prog_.funcs) {
      os_ << value_type_name(fn->ret) << " " << fn->name << "(";
      for (size_t i = 0; i < fn->params.size(); ++i) {
        if (i > 0) os_ << ", ";
        os_ << scalar_name(fn->params[i]->kind) << " "
            << fn->params[i]->name;
      }
      os_ << ") {\n";
      if (fn->body != nullptr)
        for (const auto& s : fn->body->stmts) stmt(*s, 1);
      os_ << "}\n\n";
    }
  }

  void indent(int n) {
    for (int i = 0; i < n; ++i) os_ << "  ";
  }

  void stmt(const Stmt& s, int depth) {
    switch (s.kind) {
      case StmtKind::kBlock:
        indent(depth);
        os_ << "{\n";
        for (const auto& c : s.stmts) stmt(*c, depth + 1);
        indent(depth);
        os_ << "}\n";
        return;
      case StmtKind::kLocalDecl:
        indent(depth);
        os_ << scalar_name(s.decl_kind) << " " << s.name;
        if (s.init) {
          os_ << " = ";
          expr(*s.init, 0);
        }
        os_ << ";\n";
        return;
      case StmtKind::kAssign:
        indent(depth);
        expr(*s.target, 0);
        os_ << " = ";
        expr(*s.value, 0);
        os_ << ";\n";
        return;
      case StmtKind::kIf:
        indent(depth);
        os_ << "if (";
        expr(*s.cond, 0);
        os_ << ")\n";
        stmt_as_block(*s.then_block, depth);
        if (s.else_block) {
          indent(depth);
          os_ << "else\n";
          stmt_as_block(*s.else_block, depth);
        }
        return;
      case StmtKind::kWhile:
        indent(depth);
        os_ << "while (";
        expr(*s.cond, 0);
        os_ << ")\n";
        stmt_as_block(*s.body, depth);
        return;
      case StmtKind::kFor:
        indent(depth);
        os_ << "for (";
        expr(*s.init_stmt->target, 0);
        os_ << " = ";
        expr(*s.init_stmt->value, 0);
        os_ << "; ";
        expr(*s.cond, 0);
        os_ << "; ";
        expr(*s.step_stmt->target, 0);
        os_ << " = ";
        expr(*s.step_stmt->value, 0);
        os_ << ")\n";
        stmt_as_block(*s.body, depth);
        return;
      case StmtKind::kExpr:
        indent(depth);
        expr(*s.value, 0);
        os_ << ";\n";
        return;
      case StmtKind::kReturn:
        indent(depth);
        os_ << "return";
        if (s.value) {
          os_ << " ";
          expr(*s.value, 0);
        }
        os_ << ";\n";
        return;
      case StmtKind::kBarrier:
        indent(depth);
        os_ << "barrier();\n";
        return;
      case StmtKind::kLock:
      case StmtKind::kUnlock:
        indent(depth);
        os_ << (s.kind == StmtKind::kLock ? "lock(" : "unlock(");
        expr(*s.target, 0);
        os_ << ");\n";
        return;
    }
  }

  void stmt_as_block(const Stmt& s, int depth) {
    if (s.kind == StmtKind::kBlock) {
      stmt(s, depth);
    } else {
      indent(depth);
      os_ << "{\n";
      stmt(s, depth + 1);
      indent(depth);
      os_ << "}\n";
    }
  }

  static int precedence(BinOp op) {
    switch (op) {
      case BinOp::kOr: return 1;
      case BinOp::kAnd: return 2;
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: return 3;
      case BinOp::kAdd:
      case BinOp::kSub: return 4;
      default: return 5;
    }
  }

  static const char* op_str(BinOp op) {
    switch (op) {
      case BinOp::kAdd: return "+";
      case BinOp::kSub: return "-";
      case BinOp::kMul: return "*";
      case BinOp::kDiv: return "/";
      case BinOp::kRem: return "%";
      case BinOp::kEq: return "==";
      case BinOp::kNe: return "!=";
      case BinOp::kLt: return "<";
      case BinOp::kLe: return "<=";
      case BinOp::kGt: return ">";
      case BinOp::kGe: return ">=";
      case BinOp::kAnd: return "&&";
      case BinOp::kOr: return "||";
    }
    return "?";
  }

  std::string expr_str(const Expr& e) {
    std::ostringstream saved;
    saved.swap(os_);
    expr(e, 0);
    std::string out = os_.str();
    saved.swap(os_);
    return out;
  }

  /// True if this node is a *complete* scalar access to a transformed
  /// datum; fills the rewrite pieces.
  bool try_rewrite(const Expr& e) {
    if (!e.is_lvalue_shape()) return false;
    // Root must be a global, and the chain must be complete (a scalar
    // location): count the indices and fields before resolving.
    size_t n_index = 0;
    bool has_field = false;
    const Expr* root = &e;
    while (root->kind == ExprKind::kIndex || root->kind == ExprKind::kField) {
      if (root->kind == ExprKind::kIndex) ++n_index;
      if (root->kind == ExprKind::kField) has_field = true;
      root = root->children[0].get();
    }
    if (root->kind != ExprKind::kVar || root->global == nullptr)
      return false;
    const GlobalSym& sym = *root->global;
    if (sym.elem.is_struct != has_field) return false;  // partial/invalid
    size_t min_expected = sym.dims.size();
    if (n_index < min_expected) return false;  // partial chain
    auto acc = resolve_global_access(e);
    if (!acc.has_value()) return false;
    size_t expected = acc->sym->dims.size();
    const StructField* fld = nullptr;
    if (acc->field >= 0) {
      fld = &acc->sym->elem.strct->fields[static_cast<size_t>(acc->field)];
      if (fld->array_len > 0) ++expected;
    }
    if (acc->dims.size() != expected) return false;  // partial chain
    const Rule* r = rule_for(acc->sym->id, acc->field);
    if (r == nullptr) return false;

    // Index expressions as rewritten text.
    std::vector<std::string> ix;
    for (const auto& d : acc->dims)
      ix.push_back(expr_str(*d.index));

    switch (r->kind) {
      case Rule::Kind::kGt1dInterleaved:
        os_ << r->new_name << "[(" << ix[0] << ") % " << r->p << "][("
            << ix[0] << ") / " << r->p << "]";
        break;
      case Rule::Kind::kGt1dBlocked:
        if (r->c == 1) {
          os_ << r->new_name << "[" << ix[0] << "][0]";
        } else {
          os_ << r->new_name << "[(" << ix[0] << ") / " << r->c << "][("
              << ix[0] << ") % " << r->c << "]";
        }
        break;
      case Rule::Kind::kGt2d: {
        size_t pd = static_cast<size_t>(r->pid_dim);
        os_ << r->new_name << "[" << ix[pd] << "][" << ix[1 - pd] << "]";
        break;
      }
      case Rule::Kind::kExtract:
        os_ << r->new_name << "[" << ix[1] << "][" << ix[0] << "]";
        return true;  // the field is gone; no suffix
      case Rule::Kind::kPadScalar:
        os_ << r->new_name << "[0]";
        return true;
      case Rule::Kind::kPadArray1d:
        os_ << r->new_name << "[" << ix[0] << "][0]";
        return true;
    }
    // Struct-element group&transpose keeps its field suffix.
    if (acc->field >= 0) {
      os_ << "." << fld->name;
      if (fld->array_len > 0)
        os_ << "[" << ix[acc->dims.size() - 1] << "]";
    }
    return true;
  }

  void expr(const Expr& e, int parent_prec) {
    if (try_rewrite(e)) return;
    switch (e.kind) {
      case ExprKind::kIntLit:
        os_ << e.int_value;
        return;
      case ExprKind::kRealLit: {
        std::ostringstream tmp;
        tmp << e.real_value;
        std::string s = tmp.str();
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos)
          s += ".0";
        os_ << s;
        return;
      }
      case ExprKind::kVar:
        os_ << e.name;
        return;
      case ExprKind::kIndex:
        expr(*e.children[0], 100);
        os_ << "[";
        expr(*e.children[1], 0);
        os_ << "]";
        return;
      case ExprKind::kField:
        expr(*e.children[0], 100);
        os_ << "." << e.name;
        return;
      case ExprKind::kUnary:
        os_ << (e.un_op == UnOp::kNeg ? "-(" : "!(");
        expr(*e.children[0], 0);
        os_ << ")";
        return;
      case ExprKind::kBinary: {
        int p = precedence(e.bin_op);
        if (p < parent_prec) os_ << "(";
        expr(*e.children[0], p);
        os_ << " " << op_str(e.bin_op) << " ";
        expr(*e.children[1], p + 1);
        if (p < parent_prec) os_ << ")";
        return;
      }
      case ExprKind::kCall: {
        os_ << e.name << "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i > 0) os_ << ", ";
          expr(*e.children[i], 0);
        }
        os_ << ")";
        return;
      }
    }
  }

  const Program& prog_;
  const TransformSet& transforms_;
  i64 block_;
  std::map<std::pair<int, int>, Rule> rules_;
  std::map<const StructType*, std::set<int>> extracted_;
  std::ostringstream os_;
  SourceRewriteResult result_;
  i64 cursor_ = 0;
  int align_id_ = 0;
};

}  // namespace

SourceRewriteResult rewrite_to_source(const Program& prog,
                                      const TransformSet& transforms,
                                      i64 block_size) {
  SourceRewriter rw(prog, transforms, block_size);
  return rw.run();
}

}  // namespace fsopt
