// Maxflow (Carrasco 88): maximum flow in a directed graph, parallelized
// with a central work queue of active nodes.
//
// Sharing structure per the paper (§5): busy write-shared scalars (queue
// head/tail, global counters) are allocated adjacently and falsely share
// blocks; the per-node excess/height arrays are write-shared through
// dynamically scheduled node indices, with no processor or spatial
// locality; striped node locks sit next to each other.  The compiler's
// fix is pad & align (dominant) plus lock padding — no group&transpose or
// indirection applies (Table 2).  The counters updated deep inside the
// unbounded work loop are under-weighted by static profiling and stay
// untransformed: the source of Maxflow's residual false sharing.
// No programmer-optimized version existed (Table 1).
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kUnopt = R"PPL(
param NPROCS = 8;
param N = 240;          // graph nodes
param E = 8;            // out-edges per node
param ROUNDS = 6;       // global relabel rounds
param NLOCK = 64;       // striped node locks
param BATCH = 8;        // nodes dequeued per lock acquisition

// Busy shared scalars: adjacently allocated (false sharing by layout).
int qhead;
int qtail;
int work_done;          // counters deep in the work loop: static profiling
int total_pushes;       // under-weights them -> left untransformed
lock_t qlock;
lock_t nlock[NLOCK];

int qbuf[2 * N];
int adj[N][E];          // neighbor ids (read-shared after init)
real cap[N][E];         // capacities (read-shared after init)
real flow[N][E];        // flow pushed along each edge
real excess[N];         // write-shared via queue indices: no locality
int height[N];          // write-shared via queue indices: no locality

void init_node(int u, int seed) {
  int e;
  int r;
  r = seed;
  height[u] = 0;
  excess[u] = itor(u % 5);
  for (e = 0; e < E; e = e + 1) {
    r = lcg(r);
    adj[u][e] = (u + 7 + r % (N - 13)) % N;  // arbitrary graph neighbors
    cap[u][e] = itor(1 + r % 7);
    flow[u][e] = 0.0;
  }
}

void process_node(int u, int pid) {
  int e;
  int k;
  int v;
  real room;
  real delta;
  real dist;
  dist = 1.0;
  for (e = 0; e < E; e = e + 1) {
    v = adj[u][e];
    room = cap[u][e] - flow[u][e];
    // Residual-distance recomputation: the per-edge bookkeeping a real
    // push-relabel solver performs on private state (gap heuristics,
    // current-arc bookkeeping) — pure local computation.
    for (k = 0; k < 10; k = k + 1) {
      dist = dist * 0.5 + sqrt(room * room + 1.0);
    }
    if (room > 0.5) {
      if (height[u] > height[v]) {
        delta = min(room, dist * 0.001 + 1.0);
        flow[u][e] = flow[u][e] + delta;
        lock(nlock[v % NLOCK]);
        excess[v] = excess[v] + delta;
        unlock(nlock[v % NLOCK]);
        lock(nlock[u % NLOCK]);
        excess[u] = excess[u] - delta;
        unlock(nlock[u % NLOCK]);
        if (delta > 2.0) {
          if (v % 2 == 0) {
            if (v % 3 == 0) {
              total_pushes = total_pushes + 1;
            }
          }
        }
      } else {
        height[u] = height[v] + 1;
      }
    }
  }
}

void main(int pid) {
  int i;
  int r;
  int t;
  int h2;
  int j;
  int u;
  int go;
  // Each process initializes an interleaved slice of the graph.
  for (i = pid; i < N; i = i + nprocs) {
    init_node(i, 17 * i + 3);
  }
  if (pid == 0) {
    qhead = 0;
    qtail = N;
    for (i = 0; i < N; i = i + 1) {
      qbuf[i] = (i * 17 + 5) % N;  // active nodes appear in scattered order
    }
    work_done = 0;
    total_pushes = 0;
  }
  barrier();
  for (r = 0; r < ROUNDS; r = r + 1) {
    go = 1;
    while (go) {
      // Dequeue a batch of active nodes under one lock acquisition.
      lock(qlock);
      t = qhead;
      h2 = t + BATCH;
      if (qtail < h2) {
        h2 = qtail;
      }
      qhead = h2;
      unlock(qlock);
      if (t < h2) {
        for (j = t; j < h2; j = j + 1) {
          u = qbuf[j % (2 * N)];
          process_node(u, pid);
          if (u % 3 == 0) {
            if (u % 2 == 0) {
              work_done = work_done + 1;
            }
          }
        }
      } else {
        go = 0;
      }
    }
    barrier();
    if (pid == 0) {
      // Rebuild the active queue for the next round.
      qhead = 0;
      qtail = 0;
      for (i = 0; i < N; i = i + 1) {
        if (excess[(i * 17 + 5) % N] > 0.5) {
          qbuf[qtail % (2 * N)] = (i * 17 + 5) % N;
          qtail = qtail + 1;
        }
      }
    }
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_maxflow() {
  Workload w;
  w.name = "maxflow";
  w.description = "Maximum flow in a directed graph (810 lines of C)";
  w.unopt = kUnopt;
  w.natural = kUnopt;
  w.prog = "";  // no programmer-optimized version existed (Table 1)
  w.sim_overrides = {{"N", 240}, {"ROUNDS", 6}};
  w.time_overrides = {{"N", 480}, {"ROUNDS", 6}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
