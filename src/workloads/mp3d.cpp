// Mp3d (SPLASH): rarefied hypersonic flow by direct particle simulation.
//
// Mp3d is the suite's notorious non-scaler: every particle move writes
// the space-cell occupancy of a dynamically determined cell — inherent
// fine-grain communication.  Compiler- and programmer-optimized versions
// only (Table 1).  The natural source interleaves the per-particle state
// arrays across processes and keeps global reservoir counters adjacent;
// the compiler groups the particle state per process and pads the
// counters and the collision locks.  The programmer version left the
// particle state interleaved and the locks co-allocated with the cell
// data ("Mp3d suffered from both", §5) — it peaks at 1.3 on 4 processors
// while the compiler version reaches 2.9 on 28 (Table 3).
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kNatural = R"PPL(
param NPROCS = 8;
param NMOL = 960;       // particles
param NCELL = 128;      // space cells
param STEPS = 5;        // time steps
param CWORK = 16;       // collision-evaluation samples

// Per-particle state, owner = index mod NPROCS (interleaved).
real px[NMOL];
real pv[NMOL];
int pcell[NMOL];
// Space cells: occupancy and momentum, written via particle positions.
int cell_occ[NCELL];
real cell_mom[NCELL];
lock_t clock_[NCELL / 8];  // striped collision locks
// Global reservoir counters, adjacently allocated.
int res_in;
int res_out;
int collisions[NPROCS];   // per-process tallies, interleaved

real collide(real v, int seed) {
  int k;
  real a;
  a = v;
  for (k = 0; k < CWORK; k = k + 1) {
    a = a * 0.75 + sqrt(a * a + itor((seed + k) % 7)) * 0.125;
  }
  return a;
}

void main(int pid) {
  int i;
  int s;
  int c;
  int r;
  for (i = pid; i < NMOL; i = i + nprocs) {
    r = lcg(i * 19 + 3);
    px[i] = itor(r % 1000) * 0.001;
    pv[i] = itor(r % 17) * 0.1 - 0.8;
    pcell[i] = r % NCELL;
  }
  collisions[pid] = 0;
  if (pid == 0) {
    for (c = 0; c < NCELL; c = c + 1) {
      cell_occ[c] = 0;
      cell_mom[c] = 0.0;
    }
    res_in = 0;
    res_out = 0;
  }
  barrier();
  for (s = 0; s < STEPS; s = s + 1) {
    for (i = pid; i < NMOL; i = i + nprocs) {
      // Move the particle; its cell is position-dependent.
      px[i] = px[i] + pv[i] * 0.01;
      if (px[i] > 1.0) {
        px[i] = px[i] - 1.0;
        res_out = res_out + 1;
      }
      if (px[i] < 0.0) {
        px[i] = px[i] + 1.0;
      }
      if (px[i] > 1.0) {
        px[i] = 1.0;
      }
      c = rtoi(px[i] * itor(NCELL - 1));
      pcell[i] = c;
      pv[i] = collide(pv[i], i + s);
      // Update the cell under its collision lock.
      lock(clock_[c % (NCELL / 8)]);
      cell_occ[c] = cell_occ[c] + 1;
      cell_mom[c] = cell_mom[c] + pv[i];
      unlock(clock_[c % (NCELL / 8)]);
      collisions[pid] = collisions[pid] + 1;
    }
    barrier();
    if (pid == 0) {
      // Reservoir exchange.
      res_in = res_in + res_out % 7;
      for (c = 0; c < NCELL; c = c + 1) {
        cell_occ[c] = 0;
      }
    }
    barrier();
  }
}
)PPL";

// Programmer version: identical layout choices to the natural source plus
// the collision locks moved *into* a cell record next to the data they
// guard — the co-allocation the paper calls out.
const char* kProg = R"PPL(
param NPROCS = 8;
param NMOL = 960;
param NCELL = 128;
param STEPS = 5;
param CWORK = 16;

struct Cell {
  int occ;
  real mom;
  lock_t lck;           // co-allocated with the cell data
};

real px[NMOL];
real pv[NMOL];
int pcell[NMOL];
struct Cell cells[NCELL];
int res_in;
int res_out;
int collisions[NPROCS];

real collide(real v, int seed) {
  int k;
  real a;
  a = v;
  for (k = 0; k < CWORK; k = k + 1) {
    a = a * 0.75 + sqrt(a * a + itor((seed + k) % 7)) * 0.125;
  }
  return a;
}

void main(int pid) {
  int i;
  int s;
  int c;
  int r;
  for (i = pid; i < NMOL; i = i + nprocs) {
    r = lcg(i * 19 + 3);
    px[i] = itor(r % 1000) * 0.001;
    pv[i] = itor(r % 17) * 0.1 - 0.8;
    pcell[i] = r % NCELL;
  }
  collisions[pid] = 0;
  if (pid == 0) {
    for (c = 0; c < NCELL; c = c + 1) {
      cells[c].occ = 0;
      cells[c].mom = 0.0;
    }
    res_in = 0;
    res_out = 0;
  }
  barrier();
  for (s = 0; s < STEPS; s = s + 1) {
    for (i = pid; i < NMOL; i = i + nprocs) {
      px[i] = px[i] + pv[i] * 0.01;
      if (px[i] > 1.0) {
        px[i] = px[i] - 1.0;
        res_out = res_out + 1;
      }
      if (px[i] < 0.0) {
        px[i] = px[i] + 1.0;
      }
      if (px[i] > 1.0) {
        px[i] = 1.0;
      }
      c = rtoi(px[i] * itor(NCELL - 1));
      pcell[i] = c;
      pv[i] = collide(pv[i], i + s);
      lock(cells[c].lck);
      cells[c].occ = cells[c].occ + 1;
      cells[c].mom = cells[c].mom + pv[i];
      unlock(cells[c].lck);
      collisions[pid] = collisions[pid] + 1;
    }
    barrier();
    if (pid == 0) {
      res_in = res_in + res_out % 7;
      for (c = 0; c < NCELL; c = c + 1) {
        cells[c].occ = 0;
      }
    }
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_mp3d() {
  Workload w;
  w.name = "mp3d";
  w.description = "Rarefied fluid flow simulation (1653 lines of C)";
  w.unopt = "";
  w.natural = kNatural;
  w.prog = kProg;
  w.sim_overrides = {{"NMOL", 960}, {"STEPS", 4}};
  w.time_overrides = {{"NMOL", 960}, {"STEPS", 5}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
