// Pthor (SPLASH): parallel distributed-time digital circuit simulator.
//
// Elements are evaluated from per-process activation lists; net value
// changes activate fanout elements owned by other processes — inherent
// communication that limits scaling for every version (Table 3: compiler
// 2.8@4, programmer 2.2@4).  The natural source interleaves the
// activation lists and per-process event counters, and embeds per-process
// "last evaluated at" stamps in the element records; the compiler groups
// the lists and moves the stamps behind indirection — the opportunities
// the paper says the programmer missed in Pthor (G&T and pad & align).
// The programmer version padded the element records instead.
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kNatural = R"PPL(
param NPROCS = 8;
param NELEM = 768;      // circuit elements
param FANOUT = 3;
param CYCLES = 8;       // simulated clock cycles
param EVAL = 18;        // evaluation-work samples per element

struct Elem {
  int kind;
  int out[FANOUT];      // fanout element ids
  int val;
  int stamp[NPROCS];    // per-process evaluation stamps (-> indirection)
};

struct Elem elems[NELEM];
// Per-process activation machinery, interleaved.
int act[96][NPROCS];    // activation lists: slot k of process p
int act_n[NPROCS];
int events[NPROCS];
int sim_time;           // busy shared scalars, adjacent
int deadlocks;
lock_t tlock;

real eval_elem(int e, int cyc) {
  int k;
  real a;
  a = itor((e * 13 + cyc) % 23) * 0.1;
  for (k = 0; k < EVAL; k = k + 1) {
    a = a * 0.8 + sqrt(a * a + itor(k % 5)) * 0.1;
  }
  return a;
}

void main(int pid) {
  int i;
  int k;
  int c;
  int e;
  int t;
  int r;
  int nv;
  for (i = pid; i < NELEM; i = i + nprocs) {
    r = lcg(i * 31 + 7);
    elems[i].kind = r % 4;
    for (k = 0; k < FANOUT; k = k + 1) {
      r = lcg(r);
      elems[i].out[k] = r % NELEM;
    }
    elems[i].val = r % 2;
  }
  for (i = 0; i < NELEM; i = i + 1) {
    elems[i].stamp[pid] = 0;
  }
  act_n[pid] = 0;
  events[pid] = 0;
  if (pid == 0) {
    sim_time = 0;
    deadlocks = 0;
  }
  barrier();

  for (c = 0; c < CYCLES; c = c + 1) {
    // Activate this process's share of the elements for this cycle.
    act_n[pid] = 0;
    for (i = pid; i < NELEM; i = i + nprocs) {
      if ((i + c) % 3 != 0) {
        if (act_n[pid] < 96) {
          act[act_n[pid]][pid] = i;
          act_n[pid] = act_n[pid] + 1;
        }
      }
    }
    barrier();
    // Evaluate the activation list.
    for (t = 0; t < act_n[pid]; t = t + 1) {
      e = act[t][pid];
      nv = rtoi(eval_elem(e, c)) % 2;
      elems[e].stamp[pid] = c + 1;
      if (nv != elems[e].val) {
        elems[e].val = nv;
        // Propagate to fanout (reads of remote elements).
        for (k = 0; k < FANOUT; k = k + 1) {
          if (elems[elems[e].out[k]].kind == 0) {
            events[pid] = events[pid] + 1;
          }
        }
      }
    }
    barrier();
    if (pid == 0) {
      sim_time = sim_time + 1;
      if (sim_time % 4 == 0) {
        deadlocks = deadlocks + 1;
      }
    }
    barrier();
  }
}
)PPL";

// Programmer version: element records padded by hand; activation lists
// and stamps left interleaved/embedded (the missed G&T and pad
// opportunities), busy scalars unpadded.
const char* kProg = R"PPL(
param NPROCS = 8;
param NELEM = 768;
param FANOUT = 3;
param CYCLES = 8;
param EVAL = 18;

struct Elem {
  int kind;
  int out[FANOUT];
  int val;
  int stamp[NPROCS];
  int pad[11];          // hand padding of the element records
};

struct Elem elems[NELEM];
int act[96][NPROCS];
int act_n[NPROCS];
int events[NPROCS];
int sim_time;
int deadlocks;
lock_t tlock;

real eval_elem(int e, int cyc) {
  int k;
  real a;
  a = itor((e * 13 + cyc) % 23) * 0.1;
  for (k = 0; k < EVAL; k = k + 1) {
    a = a * 0.8 + sqrt(a * a + itor(k % 5)) * 0.1;
  }
  return a;
}

void main(int pid) {
  int i;
  int k;
  int c;
  int e;
  int t;
  int r;
  int nv;
  for (i = pid; i < NELEM; i = i + nprocs) {
    r = lcg(i * 31 + 7);
    elems[i].kind = r % 4;
    for (k = 0; k < FANOUT; k = k + 1) {
      r = lcg(r);
      elems[i].out[k] = r % NELEM;
    }
    elems[i].val = r % 2;
  }
  for (i = 0; i < NELEM; i = i + 1) {
    elems[i].stamp[pid] = 0;
  }
  act_n[pid] = 0;
  events[pid] = 0;
  if (pid == 0) {
    sim_time = 0;
    deadlocks = 0;
  }
  barrier();

  for (c = 0; c < CYCLES; c = c + 1) {
    act_n[pid] = 0;
    for (i = pid; i < NELEM; i = i + nprocs) {
      if ((i + c) % 3 != 0) {
        if (act_n[pid] < 96) {
          act[act_n[pid]][pid] = i;
          act_n[pid] = act_n[pid] + 1;
        }
      }
    }
    barrier();
    for (t = 0; t < act_n[pid]; t = t + 1) {
      e = act[t][pid];
      nv = rtoi(eval_elem(e, c)) % 2;
      elems[e].stamp[pid] = c + 1;
      if (nv != elems[e].val) {
        elems[e].val = nv;
        for (k = 0; k < FANOUT; k = k + 1) {
          if (elems[elems[e].out[k]].kind == 0) {
            events[pid] = events[pid] + 1;
          }
        }
      }
    }
    barrier();
    if (pid == 0) {
      sim_time = sim_time + 1;
      if (sim_time % 4 == 0) {
        deadlocks = deadlocks + 1;
      }
    }
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_pthor() {
  Workload w;
  w.name = "pthor";
  w.description = "Distributed-time circuit simulator (9420 lines of C)";
  w.unopt = "";
  w.natural = kNatural;
  w.prog = kProg;
  w.sim_overrides = {{"NELEM", 768}, {"CYCLES", 6}};
  w.time_overrides = {{"NELEM", 768}, {"CYCLES", 8}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
