// LocusRoute (SPLASH): VLSI standard-cell router over a shared cost grid.
//
// Only compiler- and programmer-optimized versions are compared (Table 1:
// the original SPLASH code was already hand-tuned; the paper did not
// derive an unoptimized version).  The compiler starts from the "natural"
// source (per-process route buffers and counters interleaved, one global
// wire dispenser) and groups the per-process data; the programmer version
// grouped the route buffers too but left the dispenser lock co-allocated
// with the dispenser and the density counters unpadded — "LocusRoute ...
// suffered from both" (§5).  Both versions scale well and end up close
// (12.3@20 vs 12.0@20, Table 3).
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kNatural = R"PPL(
param NPROCS = 8;
param GRID = 768;       // flattened cost-grid cells
param WIRES = 288;      // wires to route
param SEG = 10;         // segments explored per wire
param BENDS = 24;       // candidate bends evaluated per segment

int cost[GRID];         // shared routing-cost grid (strided sweeps)
int density;            // busy shared scalar: peak channel density
int next_wire;          // global wire dispenser
lock_t dlock;
// Per-process routing state, interleaved.
int route_buf[32][NPROCS];  // candidate route under evaluation
real best_cost[NPROCS];
int routed[NPROCS];

real eval_segment(int w, int s) {
  int b;
  real c;
  real x;
  c = 0.0;
  x = itor((w * 17 + s * 29) % 51) * 0.07;
  // Candidate-bend evaluation: private arithmetic.
  for (b = 0; b < BENDS; b = b + 1) {
    c = c * 0.5 + sqrt(x * x + itor(b) * 0.5) * 0.25;
    x = x * 0.93 + 0.02;
  }
  return c;
}

void route_wire(int w, int pid) {
  int s;
  int g;
  int base;
  real c;
  best_cost[pid] = 100000.0;
  for (s = 0; s < SEG; s = s + 1) {
    c = eval_segment(w, s);
    route_buf[s % 32][pid] = w * SEG + s;
    if (c < best_cost[pid]) {
      best_cost[pid] = c;
    }
    // Lay the segment into the cost grid: unit-stride run at a
    // wire-dependent base (partitioning invisible, writes spatially local).
    base = (w * 37 + s * 11) % (GRID - 8);
    for (g = base; g < base + 8; g = g + 1) {
      cost[g] = cost[g] + 1;
    }
  }
  routed[pid] = routed[pid] + 1;
}

void main(int pid) {
  int i;
  int w;
  int go;
  for (i = pid; i < GRID; i = i + nprocs) {
    cost[i] = 0;
  }
  best_cost[pid] = 0.0;
  routed[pid] = 0;
  if (pid == 0) {
    density = 0;
    next_wire = 0;
  }
  barrier();
  go = 1;
  while (go) {
    lock(dlock);
    w = next_wire;
    if (w < WIRES) {
      next_wire = w + 1;
    }
    unlock(dlock);
    if (w < WIRES) {
      route_wire(w, pid);
      if (w % 8 == 0) {
        density = density + 1;
      }
    } else {
      go = 0;
    }
  }
  barrier();
}
)PPL";

// Programmer version: route buffers grouped per process (correct), but
// the dispenser lock sits right next to the dispenser and density
// counters it guards, and none of the busy scalars is padded.
const char* kProg = R"PPL(
param NPROCS = 8;
param GRID = 768;
param WIRES = 288;
param SEG = 10;
param BENDS = 24;

int cost[GRID];
int density;            // unpadded busy scalar...
lock_t dlock;           // ...with the lock co-allocated right beside it
int next_wire;
int route_buf[NPROCS][32];  // grouped by hand
real best_cost[NPROCS];
int routed[NPROCS];

real eval_segment(int w, int s) {
  int b;
  real c;
  real x;
  c = 0.0;
  x = itor((w * 17 + s * 29) % 51) * 0.07;
  for (b = 0; b < BENDS; b = b + 1) {
    c = c * 0.5 + sqrt(x * x + itor(b) * 0.5) * 0.25;
    x = x * 0.93 + 0.02;
  }
  return c;
}

void route_wire(int w, int pid) {
  int s;
  int g;
  int base;
  real c;
  best_cost[pid] = 100000.0;
  for (s = 0; s < SEG; s = s + 1) {
    c = eval_segment(w, s);
    route_buf[pid][s % 32] = w * SEG + s;
    if (c < best_cost[pid]) {
      best_cost[pid] = c;
    }
    base = (w * 37 + s * 11) % (GRID - 8);
    for (g = base; g < base + 8; g = g + 1) {
      cost[g] = cost[g] + 1;
    }
  }
  routed[pid] = routed[pid] + 1;
}

void main(int pid) {
  int i;
  int w;
  int go;
  for (i = pid; i < GRID; i = i + nprocs) {
    cost[i] = 0;
  }
  best_cost[pid] = 0.0;
  routed[pid] = 0;
  if (pid == 0) {
    density = 0;
    next_wire = 0;
  }
  barrier();
  go = 1;
  while (go) {
    lock(dlock);
    w = next_wire;
    if (w < WIRES) {
      next_wire = w + 1;
    }
    unlock(dlock);
    if (w < WIRES) {
      route_wire(w, pid);
      if (w % 8 == 0) {
        density = density + 1;
      }
    } else {
      go = 0;
    }
  }
  barrier();
}
)PPL";

}  // namespace

Workload make_locusroute() {
  Workload w;
  w.name = "locusroute";
  w.description = "VLSI standard cell router (6709 lines of C)";
  w.unopt = "";  // Table 1: no unoptimized version
  w.natural = kNatural;
  w.prog = kProg;
  w.sim_overrides = {{"WIRES", 288}};
  w.time_overrides = {{"WIRES", 288}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
