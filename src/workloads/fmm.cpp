// Fmm (Singh et al., SPLASH-2): adaptive fast multipole N-body solver,
// reduced to its sharing skeleton: per-particle force/position arrays
// owned round-robin by the processes (adjacent elements belong to
// different processes — the canonical group & transpose target), shared
// per-cell multipole moments updated under per-cell locks, and per-process
// reduction slots interleaved in small vectors.
//
// Per the paper: the compiler's group & transpose removes 84.8% of Fmm's
// false-sharing misses, lock padding another 6% (Table 2); the compiler
// version more than doubles the maximum speedup (16.4 -> 33.6, Table 3)
// while the programmer-optimized version gains almost nothing over the
// unoptimized one (Figure 4) — the programmer grouped the position data
// and co-allocated the cell locks with the moments, but left the hot
// force arrays interleaved.
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

// Shared body of all three versions: interaction lists and the time-step
// loop.  The versions differ only in how the data is declared/laid out.
const char* kUnopt = R"PPL(
param NPROCS = 8;
param NP = 1152;        // particles
param NC = 64;          // tree cells (flattened)
param TERMS = 4;        // multipole terms per cell
param NBR = 8;          // interaction-list length per particle
param STEPS = 4;        // time steps

// Per-particle state, owner = particle index mod NPROCS: adjacent
// elements belong to different processes.
real pos_x[NP];
real pos_y[NP];
real force_x[NP];
real force_y[NP];
// Per-process reduction slots, also interleaved.
real wpot[NPROCS];
int wcount[NPROCS];
// Shared multipole moments, guarded by per-cell locks.
real cell_mom[NC][TERMS];
lock_t cell_lock[NC];
real total_pot;

void accumulate_cell(int c, real qx, real qy) {
  int t;
  lock(cell_lock[c]);
  for (t = 0; t < TERMS; t = t + 1) {
    cell_mom[c][t] = cell_mom[c][t] + qx * itor(t + 1) + qy;
  }
  unlock(cell_lock[c]);
}

real interact(int i, int j) {
  real dx;
  real dy;
  real d2;
  real acc;
  int t;
  dx = pos_x[i] - pos_x[j];
  dy = pos_y[i] - pos_y[j];
  d2 = dx * dx + dy * dy + 0.25;
  // Multipole-expansion evaluation: per-pair private computation.
  acc = 0.0;
  for (t = 0; t < 12; t = t + 1) {
    acc = acc * 0.5 + sqrt(d2 + itor(t));
  }
  return 1.0 / d2 + acc * 0.001;
}

void main(int pid) {
  int i;
  int j;
  int k;
  int s;
  int t;
  int c;
  real f;
  real fx;
  real fy;
  // Initialize owned particles (interleaved ownership).
  for (i = pid; i < NP; i = i + nprocs) {
    pos_x[i] = itor(i % 97) * 0.13;
    pos_y[i] = itor(i % 31) * 0.29;
    force_x[i] = 0.0;
    force_y[i] = 0.0;
  }
  wpot[pid] = 0.0;
  wcount[pid] = 0;
  if (pid == 0) {
    for (c = 0; c < NC; c = c + 1) {
      for (t = 0; t < TERMS; t = t + 1) {
        cell_mom[c][t] = 0.0;
      }
    }
    total_pot = 0.0;
  }
  barrier();

  for (s = 0; s < STEPS; s = s + 1) {
    // Upward pass: project owned particles into their cells.
    for (i = pid; i < NP; i = i + nprocs) {
      c = (i * 7 + s) % NC;
      accumulate_cell(c, pos_x[i], pos_y[i]);
    }
    barrier();
    // Interaction pass: the hot loop.  Every owned particle reads its
    // interaction list (arbitrary particles and cells) and repeatedly
    // accumulates into its own force slots.
    for (i = pid; i < NP; i = i + nprocs) {
      fx = 0.0;
      fy = 0.0;
      for (k = 1; k <= NBR; k = k + 1) {
        j = (i + k * 131) % NP;
        f = interact(i, j);
        fx = fx + f * 0.5;
        fy = fy - f * 0.25;
        force_x[i] = force_x[i] + fx;
        force_y[i] = force_y[i] + fy;
      }
      c = (i * 7 + s) % NC;
      force_x[i] = force_x[i] + cell_mom[c][0] * 0.001;
      force_y[i] = force_y[i] + cell_mom[c][TERMS - 1] * 0.001;
    }
    barrier();
    // Update pass: integrate positions, accumulate local potential.
    for (i = pid; i < NP; i = i + nprocs) {
      pos_x[i] = pos_x[i] + force_x[i] * 0.0001;
      pos_y[i] = pos_y[i] + force_y[i] * 0.0001;
      wpot[pid] = wpot[pid] + force_x[i] * force_x[i];
      wcount[pid] = wcount[pid] + 1;
      force_x[i] = force_x[i] * 0.5;
      force_y[i] = force_y[i] * 0.5;
    }
    barrier();
    if (pid == 0) {
      for (j = 0; j < nprocs; j = j + 1) {
        total_pot = total_pot + wpot[j];
      }
    }
    barrier();
  }
}
)PPL";

// Programmer-optimized version: positions grouped by owning process (the
// "easily identifiable" transformation), but the hot force arrays left
// interleaved and the cell locks co-allocated with the moments they guard.
const char* kProg = R"PPL(
param NPROCS = 8;
param NP = 1152;
param NPP = NP / NPROCS;  // particles per process
param NC = 64;
param TERMS = 4;
param NBR = 8;
param STEPS = 4;

struct Cell {
  real mom[TERMS];
  lock_t lck;       // co-allocated with the data it guards
};

// Positions grouped per process (programmer's group & transpose)...
real pos_x[NPROCS][NPP];
real pos_y[NPROCS][NPP];
// ...but forces left interleaved: the dominant false-sharing source.
real force_x[NP];
real force_y[NP];
real wpot[NPROCS];
int wcount[NPROCS];
struct Cell cells[NC];
real total_pot;

void accumulate_cell(int c, real qx, real qy) {
  int t;
  lock(cells[c].lck);
  for (t = 0; t < TERMS; t = t + 1) {
    cells[c].mom[t] = cells[c].mom[t] + qx * itor(t + 1) + qy;
  }
  unlock(cells[c].lck);
}

real interact_g(int po, int ps, int j) {
  real dx;
  real dy;
  real d2;
  real acc;
  int t;
  dx = pos_x[po][ps] - pos_x[j % NPROCS][j / NPROCS];
  dy = pos_y[po][ps] - pos_y[j % NPROCS][j / NPROCS];
  d2 = dx * dx + dy * dy + 0.25;
  acc = 0.0;
  for (t = 0; t < 12; t = t + 1) {
    acc = acc * 0.5 + sqrt(d2 + itor(t));
  }
  return 1.0 / d2 + acc * 0.001;
}

void main(int pid) {
  int i;
  int j;
  int k;
  int s;
  int t;
  int c;
  int ps;
  real f;
  real fx;
  real fy;
  for (ps = 0; ps < NPP; ps = ps + 1) {
    i = ps * nprocs + pid;
    pos_x[pid][ps] = itor(i % 97) * 0.13;
    pos_y[pid][ps] = itor(i % 31) * 0.29;
    force_x[i] = 0.0;
    force_y[i] = 0.0;
  }
  wpot[pid] = 0.0;
  wcount[pid] = 0;
  if (pid == 0) {
    for (c = 0; c < NC; c = c + 1) {
      for (t = 0; t < TERMS; t = t + 1) {
        cells[c].mom[t] = 0.0;
      }
    }
    total_pot = 0.0;
  }
  barrier();

  for (s = 0; s < STEPS; s = s + 1) {
    for (ps = 0; ps < NPP; ps = ps + 1) {
      i = ps * nprocs + pid;
      c = (i * 7 + s) % NC;
      accumulate_cell(c, pos_x[pid][ps], pos_y[pid][ps]);
    }
    barrier();
    for (ps = 0; ps < NPP; ps = ps + 1) {
      i = ps * nprocs + pid;
      fx = 0.0;
      fy = 0.0;
      for (k = 1; k <= NBR; k = k + 1) {
        j = (i + k * 131) % NP;
        f = interact_g(pid, ps, j);
        fx = fx + f * 0.5;
        fy = fy - f * 0.25;
        force_x[i] = force_x[i] + fx;
        force_y[i] = force_y[i] + fy;
      }
      c = (i * 7 + s) % NC;
      force_x[i] = force_x[i] + cells[c].mom[0] * 0.001;
      force_y[i] = force_y[i] + cells[c].mom[TERMS - 1] * 0.001;
    }
    barrier();
    for (ps = 0; ps < NPP; ps = ps + 1) {
      i = ps * nprocs + pid;
      pos_x[pid][ps] = pos_x[pid][ps] + force_x[i] * 0.0001;
      pos_y[pid][ps] = pos_y[pid][ps] + force_y[i] * 0.0001;
      wpot[pid] = wpot[pid] + force_x[i] * force_x[i];
      wcount[pid] = wcount[pid] + 1;
      force_x[i] = force_x[i] * 0.5;
      force_y[i] = force_y[i] * 0.5;
    }
    barrier();
    if (pid == 0) {
      for (j = 0; j < nprocs; j = j + 1) {
        total_pot = total_pot + wpot[j];
      }
    }
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_fmm() {
  Workload w;
  w.name = "fmm";
  w.description = "Fast multipole method n-body (4395 lines of C)";
  w.unopt = kUnopt;
  w.natural = kUnopt;
  w.prog = kProg;
  w.sim_overrides = {{"NP", 1152}, {"STEPS", 3}};
  w.time_overrides = {{"NP", 1152}, {"STEPS", 4}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
