// The benchmark suite (Table 1), reproduced as PPL kernels.
//
// Each kernel preserves the *cross-processor sharing structure* the paper
// attributes to the original program (see DESIGN.md §5): which data are
// per-process vs. write-shared, how per-process data are interleaved in
// memory, where locks sit, and which patterns the static analysis can and
// cannot see.  Versions follow Table 1: (N)ot optimized source,
// (C)ompiler = fsopt applied to N, (P)rogrammer-optimized source.  For
// LocusRoute/Mp3d/Pthor/Water only C and P exist (the paper had no
// unoptimized versions); we keep an internal "natural" source there as the
// compiler's input, mirroring the paper's hand-undoing methodology.
#pragma once

#include <string>
#include <vector>

#include "lang/ast.h"

namespace fsopt::workloads {

struct Workload {
  std::string name;
  std::string description;
  /// N version source; empty when the paper had no unoptimized version
  /// (the compiler then starts from `natural`).
  std::string unopt;
  /// Source the compiler optimizes (equals unopt when present).
  std::string natural;
  /// P version source; empty when unavailable (Maxflow).
  std::string prog;
  /// Problem-size overrides for the trace-driven study (small).
  ParamOverrides sim_overrides;
  /// Problem-size overrides for the KSR timing study.
  ParamOverrides time_overrides;
  /// Processor count used in Figure 3 (12, except Topopt's 9).
  i64 fig3_procs = 12;
  /// True if this workload appears in Figure 3 / Table 2 (N + C exist).
  bool has_unopt() const { return !unopt.empty(); }
  bool has_prog() const { return !prog.empty(); }
};

const std::vector<Workload>& all();
const Workload& get(const std::string& name);

// Individual constructors (one translation unit per program).
Workload make_maxflow();
Workload make_pverify();
Workload make_topopt();
Workload make_fmm();
Workload make_radiosity();
Workload make_raytrace();
Workload make_locusroute();
Workload make_mp3d();
Workload make_pthor();
Workload make_water();

}  // namespace fsopt::workloads
