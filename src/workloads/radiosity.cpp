// Radiosity (Singh et al., SPLASH-2): equilibrium distribution of light by
// iterative energy shooting over patches, task-queue parallelized.
//
// Sharing skeleton: per-process task queues, queue cursors and gathering
// buffers are declared interleaved across processes (the G&T targets —
// 85.6% of the false-sharing reduction, Table 2); patch radiosity is
// write-shared under striped locks (lock padding, 6.8%); one busy global
// energy estimate is padded (1.0%).  Visibility estimation is private
// floating-point work.
//
// Per Table 3 / Figure 4: unoptimized peaks at 7.0 on 8 processors,
// compiler reaches 19.2 on 28; the programmer version (7.4 @ 8) gained
// almost nothing — the programmer padded the patch records and
// co-allocated the patch locks with the radiosity they guard, but left
// every per-process structure interleaved.
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kUnopt = R"PPL(
param NPROCS = 8;
param NPATCH = 576;     // patches
param QCAP = 64;        // per-process task-queue capacity
param ITERS = 6;        // shooting iterations
param VIS = 48;         // visibility-estimate samples per interaction
param NLOCK = 32;       // striped patch locks

real rad[NPATCH];       // patch radiosity (write-shared under locks)
real unshot[NPATCH];    // unshot energy per patch
real ff_scale;          // busy shared scalar: adaptive form-factor scale
int converged;          // busy shared scalar next to it
lock_t plock[NLOCK];
// Per-process task machinery, interleaved element-by-element.
int tq[QCAP][NPROCS];   // task queues: slot k of process p is tq[k][p]
int tq_tail[NPROCS];
int tq_head[NPROCS];
real gather[16][NPROCS];  // per-process gathering buffers
int tally[16][NPROCS];    // per-process interaction tallies
int shot_count[NPROCS];

real visibility(int a, int b) {
  int k;
  real v;
  real x;
  x = itor((a * 31 + b * 17) % 64) * 0.03 + 0.2;
  v = 0.0;
  // Ray sampling between patches: private computation.
  for (k = 0; k < VIS; k = k + 1) {
    v = v * 0.5 + sqrt(x * x + itor(k)) * 0.125;
    x = x * 0.9 + 0.01;
  }
  return v * 0.1;
}

void shoot(int src, int pid) {
  int k;
  int dst;
  real e;
  real dv;
  e = unshot[src] * ff_scale;
  for (k = 1; k <= 4; k = k + 1) {
    dst = (src * 13 + k * 53) % NPATCH;
    dv = visibility(src, dst) * e;
    lock(plock[dst % NLOCK]);
    rad[dst] = rad[dst] + dv;
    unshot[dst] = unshot[dst] + dv * 0.5;
    unlock(plock[dst % NLOCK]);
    gather[(src + k) % 16][pid] = gather[(src + k) % 16][pid] + dv;
    tally[(src + k) % 16][pid] = tally[(src + k) % 16][pid] + 1;
  }
  lock(plock[src % NLOCK]);
  unshot[src] = unshot[src] * 0.25;
  unlock(plock[src % NLOCK]);
  shot_count[pid] = shot_count[pid] + 1;
}

void main(int pid) {
  int i;
  int k;
  int it;
  int t;
  int src;
  // Initialize an interleaved slice of the patches.
  for (i = pid; i < NPATCH; i = i + nprocs) {
    rad[i] = 0.0;
    unshot[i] = itor(i % 9) * 0.5 + 0.5;
  }
  for (k = 0; k < 16; k = k + 1) {
    gather[k][pid] = 0.0;
    tally[k][pid] = 0;
  }
  shot_count[pid] = 0;
  tq_head[pid] = 0;
  tq_tail[pid] = 0;
  if (pid == 0) {
    ff_scale = 0.05;
    converged = 0;
  }
  barrier();

  for (it = 0; it < ITERS; it = it + 1) {
    // Fill this process's task queue with its share of bright patches.
    tq_head[pid] = 0;
    tq_tail[pid] = 0;
    for (i = pid; i < NPATCH; i = i + nprocs) {
      if (unshot[i] > 0.1) {
        if (tq_tail[pid] < QCAP) {
          tq[tq_tail[pid]][pid] = i;
          tq_tail[pid] = tq_tail[pid] + 1;
        }
      }
    }
    barrier();
    // Drain the queue.
    while (tq_head[pid] < tq_tail[pid]) {
      src = tq[tq_head[pid]][pid];
      tq_head[pid] = tq_head[pid] + 1;
      shoot(src, pid);
    }
    barrier();
    if (pid == 0) {
      // Adapt the shooting scale; count convergence.
      ff_scale = ff_scale * 0.95 + 0.002;
      converged = converged + 1;
    }
    barrier();
  }
}
)PPL";

// Programmer version: patch records padded and the striped locks
// co-allocated with the radiosity data; all per-process machinery left
// interleaved.
const char* kProg = R"PPL(
param NPROCS = 8;
param NPATCH = 576;
param QCAP = 64;
param ITERS = 6;
param VIS = 48;

struct Patch {
  real rad;
  real unshot;
  lock_t lck;           // co-allocated with the data it guards
  int pad[25];          // hand padding to a 128-byte boundary
};

struct Patch patches[NPATCH];
real ff_scale;
int converged;
int tq[QCAP][NPROCS];
int tq_tail[NPROCS];
int tq_head[NPROCS];
real gather[16][NPROCS];
int tally[16][NPROCS];
int shot_count[NPROCS];

real visibility(int a, int b) {
  int k;
  real v;
  real x;
  x = itor((a * 31 + b * 17) % 64) * 0.03 + 0.2;
  v = 0.0;
  for (k = 0; k < VIS; k = k + 1) {
    v = v * 0.5 + sqrt(x * x + itor(k)) * 0.125;
    x = x * 0.9 + 0.01;
  }
  return v * 0.1;
}

void shoot(int src, int pid) {
  int k;
  int dst;
  real e;
  real dv;
  e = patches[src].unshot * ff_scale;
  for (k = 1; k <= 4; k = k + 1) {
    dst = (src * 13 + k * 53) % NPATCH;
    dv = visibility(src, dst) * e;
    lock(patches[dst].lck);
    patches[dst].rad = patches[dst].rad + dv;
    patches[dst].unshot = patches[dst].unshot + dv * 0.5;
    unlock(patches[dst].lck);
    gather[(src + k) % 16][pid] = gather[(src + k) % 16][pid] + dv;
    tally[(src + k) % 16][pid] = tally[(src + k) % 16][pid] + 1;
  }
  lock(patches[src].lck);
  patches[src].unshot = patches[src].unshot * 0.25;
  unlock(patches[src].lck);
  shot_count[pid] = shot_count[pid] + 1;
}

void main(int pid) {
  int i;
  int k;
  int it;
  int t;
  int src;
  for (i = pid; i < NPATCH; i = i + nprocs) {
    patches[i].rad = 0.0;
    patches[i].unshot = itor(i % 9) * 0.5 + 0.5;
  }
  for (k = 0; k < 16; k = k + 1) {
    gather[k][pid] = 0.0;
    tally[k][pid] = 0;
  }
  shot_count[pid] = 0;
  tq_head[pid] = 0;
  tq_tail[pid] = 0;
  if (pid == 0) {
    ff_scale = 0.05;
    converged = 0;
  }
  barrier();

  for (it = 0; it < ITERS; it = it + 1) {
    tq_head[pid] = 0;
    tq_tail[pid] = 0;
    for (i = pid; i < NPATCH; i = i + nprocs) {
      if (patches[i].unshot > 0.1) {
        if (tq_tail[pid] < QCAP) {
          tq[tq_tail[pid]][pid] = i;
          tq_tail[pid] = tq_tail[pid] + 1;
        }
      }
    }
    barrier();
    while (tq_head[pid] < tq_tail[pid]) {
      src = tq[tq_head[pid]][pid];
      tq_head[pid] = tq_head[pid] + 1;
      shoot(src, pid);
    }
    barrier();
    if (pid == 0) {
      ff_scale = ff_scale * 0.95 + 0.002;
      converged = converged + 1;
    }
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_radiosity() {
  Workload w;
  w.name = "radiosity";
  w.description = "Equilibrium distribution of light (10908 lines of C)";
  w.unopt = kUnopt;
  w.natural = kUnopt;
  w.prog = kProg;
  w.sim_overrides = {{"NPATCH", 576}, {"ITERS", 5}};
  w.time_overrides = {{"NPATCH", 576}, {"ITERS", 6}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
