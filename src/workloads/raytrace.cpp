// Raytrace (Singh et al., SPLASH-2): ray casting of a 3-D scene.
//
// Sharing skeleton: scanlines are owned round-robin (image rows adjacent
// in memory belong to different processes — group & transpose, 70.4% of
// the FS reduction, Table 2); a global ray-id dispenser and an adaptive
// sampling level are busy shared scalars (pad & align, 3.3%); the
// dispenser lock is padded (4.6%).  A pair of statistics counters buried
// in the per-ray loop is under-weighted by the static profile and remains
// falsely shared — the residual the paper attributes to "a few busy,
// write-shared scalars" (§5).
//
// Per Table 3: unoptimized 7.0@8, compiler 9.6@12, programmer 9.2@12 —
// the compiler and programmer versions are comparable (Figure 4); the
// programmer additionally padded the image rows, which the analysis
// correctly declines to do (the rows are per-process and spatially
// local), costing a little capacity.
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kUnopt = R"PPL(
param NPROCS = 8;
param SCAN = 192;       // scanlines
param WIDTH = 12;       // pixels per scanline
param DEPTH = 14;       // intersection tests per ray
param NOBJ = 96;        // scene objects
param FRAMES = 3;

real img[SCAN][WIDTH];  // scanline y owned by process y mod NPROCS
int ray_id;             // global ray-id dispenser (busy shared scalar)
int sampling;           // adaptive sampling level, next to it
int rays_traced;        // statistics counters deep in the ray loop:
int shadow_hits;        //   under-profiled, left falsely shared
lock_t rlock;
real obj_x[NOBJ];       // scene geometry (read-shared after init)
real obj_y[NOBJ];
real obj_r[NOBJ];
real row_sum[SCAN];     // per-scanline checksums, same ownership as img

real trace_ray(int y, int x, int frame) {
  int d;
  int o;
  real ox;
  real oy;
  real t;
  real best;
  best = 1000.0;
  ox = itor(x * 7 + frame) * 0.05;
  oy = itor(y) * 0.11;
  for (d = 0; d < DEPTH; d = d + 1) {
    o = (y * 29 + x * 13 + d * 7) % NOBJ;
    t = (ox - obj_x[o]) * (ox - obj_x[o]) + (oy - obj_y[o]) * (oy - obj_y[o]);
    t = sqrt(t + obj_r[o] * obj_r[o]);
    if (t < best) {
      best = t;
      if (d % 2 == 0) {
        if (d % 3 == 0) {
          shadow_hits = shadow_hits + 1;
        }
      }
    }
    ox = ox * 0.97 + 0.01;
    oy = oy * 0.98 + 0.02;
  }
  return best;
}

void main(int pid) {
  int y;
  int x;
  int f;
  int o;
  int r;
  int id;
  // Scene built in interleaved slices.
  for (o = pid; o < NOBJ; o = o + nprocs) {
    r = lcg(o * 41 + 5);
    obj_x[o] = itor(r % 100) * 0.1;
    r = lcg(r);
    obj_y[o] = itor(r % 100) * 0.1;
    r = lcg(r);
    obj_r[o] = itor(1 + r % 5) * 0.2;
  }
  if (pid == 0) {
    ray_id = 0;
    sampling = 1;
    rays_traced = 0;
    shadow_hits = 0;
  }
  barrier();
  for (f = 0; f < FRAMES; f = f + 1) {
    // Each process renders its interleaved scanlines.
    for (y = pid; y < SCAN; y = y + nprocs) {
      row_sum[y] = 0.0;
      // Draw a block of ray ids from the shared dispenser.
      lock(rlock);
      id = ray_id;
      ray_id = id + WIDTH;
      unlock(rlock);
      for (x = 0; x < WIDTH; x = x + 1) {
        img[y][x] = trace_ray(y, x, f) + itor((id + x) % 3) * 0.001;
        row_sum[y] = row_sum[y] + img[y][x];
        if (x % 4 == 0) {
          if (y % 8 == 0) {
            rays_traced = rays_traced + 1;
          }
        }
      }
    }
    barrier();
    if (pid == 0) {
      // Adapt the sampling level from the frame statistics.
      sampling = 1 + rays_traced % 3;
    }
    barrier();
  }
}
)PPL";

// Programmer version: image rows and checksums blocked per process (the
// hand group & transpose), dispenser lock padded by hand — but the image
// rows were additionally padded to block boundaries, which wastes cache
// capacity (the paper: "the programmer padded and aligned an array ...
// that the static analysis had concluded was not predominantly accessed
// on a per-process basis" / did not need it).  The statistics counters
// remain shared.
const char* kProg = R"PPL(
param NPROCS = 8;
param SCAN = 192;
param SPP = SCAN / NPROCS;
param WIDTH = 12;
param PADW = 16;        // rows padded to a block multiple by hand
param DEPTH = 14;
param NOBJ = 96;
param FRAMES = 3;

real img[NPROCS][SPP * PADW];   // blocked by process, rows hand-padded
int ray_id;
int sampling;
int rays_traced;
int shadow_hits;
lock_t rlock;
real obj_x[NOBJ];
real obj_y[NOBJ];
real obj_r[NOBJ];
real row_sum[NPROCS][SPP];

real trace_ray(int y, int x, int frame) {
  int d;
  int o;
  real ox;
  real oy;
  real t;
  real best;
  best = 1000.0;
  ox = itor(x * 7 + frame) * 0.05;
  oy = itor(y) * 0.11;
  for (d = 0; d < DEPTH; d = d + 1) {
    o = (y * 29 + x * 13 + d * 7) % NOBJ;
    t = (ox - obj_x[o]) * (ox - obj_x[o]) + (oy - obj_y[o]) * (oy - obj_y[o]);
    t = sqrt(t + obj_r[o] * obj_r[o]);
    if (t < best) {
      best = t;
      if (d % 2 == 0) {
        if (d % 3 == 0) {
          shadow_hits = shadow_hits + 1;
        }
      }
    }
    ox = ox * 0.97 + 0.01;
    oy = oy * 0.98 + 0.02;
  }
  return best;
}

void main(int pid) {
  int y;
  int s;
  int x;
  int f;
  int o;
  int r;
  int id;
  for (o = pid; o < NOBJ; o = o + nprocs) {
    r = lcg(o * 41 + 5);
    obj_x[o] = itor(r % 100) * 0.1;
    r = lcg(r);
    obj_y[o] = itor(r % 100) * 0.1;
    r = lcg(r);
    obj_r[o] = itor(1 + r % 5) * 0.2;
  }
  if (pid == 0) {
    ray_id = 0;
    sampling = 1;
    rays_traced = 0;
    shadow_hits = 0;
  }
  barrier();
  for (f = 0; f < FRAMES; f = f + 1) {
    for (s = 0; s < SPP; s = s + 1) {
      y = s * nprocs + pid;
      row_sum[pid][s] = 0.0;
      lock(rlock);
      id = ray_id;
      ray_id = id + WIDTH;
      unlock(rlock);
      for (x = 0; x < WIDTH; x = x + 1) {
        img[pid][s * PADW + x] = trace_ray(y, x, f)
            + itor((id + x) % 3) * 0.001;
        row_sum[pid][s] = row_sum[pid][s] + img[pid][s * PADW + x];
        if (x % 4 == 0) {
          if (y % 8 == 0) {
            rays_traced = rays_traced + 1;
          }
        }
      }
    }
    barrier();
    if (pid == 0) {
      sampling = 1 + rays_traced % 3;
    }
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_raytrace() {
  Workload w;
  w.name = "raytrace";
  w.description = "Rendering of a 3-dimensional scene (12391 lines of C)";
  w.unopt = kUnopt;
  w.natural = kUnopt;
  w.prog = kProg;
  w.sim_overrides = {{"SCAN", 192}, {"FRAMES", 2}};
  w.time_overrides = {{"SCAN", 192}, {"FRAMES", 3}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
