#include "workloads/workloads.h"

#include "support/common.h"

namespace fsopt::workloads {

const std::vector<Workload>& all() {
  static const std::vector<Workload> kAll = {
      make_maxflow(),   make_pverify(), make_topopt(),     make_fmm(),
      make_radiosity(), make_raytrace(), make_locusroute(), make_mp3d(),
      make_pthor(),     make_water(),
  };
  return kAll;
}

const Workload& get(const std::string& name) {
  for (const Workload& w : all())
    if (w.name == name) return w;
  throw InternalError("no such workload: " + name);
}

}  // namespace fsopt::workloads
