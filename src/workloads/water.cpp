// Water (SPLASH): N-body molecular dynamics of liquid water.
//
// Molecules are owned round-robin; each time step computes intra- and
// inter-molecular forces (heavy private floating point), accumulates into
// the owner's interleaved state arrays, and folds per-process potential
// sums — also interleaved — into globals under a lock that sits right
// next to those globals.  Compiler- and programmer-optimized versions
// only (Table 1).  The compiler groups all per-process state and pads the
// reduction lock; the programmer version grouped only the molecule
// positions, leaving the hot force accumulators and partial sums
// interleaved and the lock co-allocated — the compiler more than doubles
// the programmer's peak (9.9@40 vs 4.6@12, Table 3).
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kNatural = R"PPL(
param NPROCS = 8;
param NMOL = 1056;      // molecules
param STEPS = 4;
param PAIRS = 6;        // interaction partners per molecule
param FWORK = 14;       // force-evaluation samples per pair

// Per-molecule state, owner = index mod NPROCS (interleaved).
real mx[NMOL];
real mv[NMOL];
real mf[NMOL];          // force accumulators: the hot per-process array
// Per-process partial sums, interleaved, next to the globals they feed.
real wkin[NPROCS];
real wpot[NPROCS];
real kin_total;
real pot_total;
lock_t sum_lock;

real pair_force(real xa, real xb) {
  int k;
  real d;
  real f;
  d = xa - xb;
  f = 0.0;
  // Lennard-Jones-style evaluation: private computation.
  for (k = 0; k < FWORK; k = k + 1) {
    f = f * 0.6 + sqrt(d * d + itor(k + 1) * 0.5) * 0.2;
  }
  return f * 0.01;
}

void main(int pid) {
  int i;
  int j;
  int p;
  int s;
  for (i = pid; i < NMOL; i = i + nprocs) {
    mx[i] = itor(i % 211) * 0.05;
    mv[i] = itor(i % 17) * 0.01 - 0.08;
    mf[i] = 0.0;
  }
  wkin[pid] = 0.0;
  wpot[pid] = 0.0;
  if (pid == 0) {
    kin_total = 0.0;
    pot_total = 0.0;
  }
  barrier();
  for (s = 0; s < STEPS; s = s + 1) {
    // Force pass: accumulate into the owner's force slots repeatedly.
    for (i = pid; i < NMOL; i = i + nprocs) {
      for (p = 1; p <= PAIRS; p = p + 1) {
        j = (i + p * 97) % NMOL;
        mf[i] = mf[i] + pair_force(mx[i], mx[j]);
      }
    }
    barrier();
    // Update pass: integrate and gather per-process sums.
    for (i = pid; i < NMOL; i = i + nprocs) {
      mv[i] = mv[i] + mf[i] * 0.001;
      mx[i] = mx[i] + mv[i] * 0.01;
      wkin[pid] = wkin[pid] + mv[i] * mv[i];
      wpot[pid] = wpot[pid] + mf[i];
      mf[i] = 0.0;
    }
    // Fold into the global totals.
    lock(sum_lock);
    kin_total = kin_total + wkin[pid];
    pot_total = pot_total + wpot[pid];
    unlock(sum_lock);
    barrier();
  }
}
)PPL";

// Programmer version: molecule positions blocked per process by hand, but
// the force accumulators and the partial sums stay interleaved and the
// reduction lock stays beside the totals.
const char* kProg = R"PPL(
param NPROCS = 8;
param NMOL = 1056;
param MPP = NMOL / NPROCS;
param STEPS = 4;
param PAIRS = 6;
param FWORK = 14;

real mx[NPROCS][MPP];   // grouped by hand
real mv[NMOL];          // still interleaved
real mf[NMOL];          // still interleaved (the hot one)
real wkin[NPROCS];
real wpot[NPROCS];
real kin_total;
real pot_total;
lock_t sum_lock;

real pair_force(real xa, real xb) {
  int k;
  real d;
  real f;
  d = xa - xb;
  f = 0.0;
  for (k = 0; k < FWORK; k = k + 1) {
    f = f * 0.6 + sqrt(d * d + itor(k + 1) * 0.5) * 0.2;
  }
  return f * 0.01;
}

void main(int pid) {
  int i;
  int j;
  int m;
  int p;
  int s;
  for (m = 0; m < MPP; m = m + 1) {
    i = m * nprocs + pid;
    mx[pid][m] = itor(i % 211) * 0.05;
    mv[i] = itor(i % 17) * 0.01 - 0.08;
    mf[i] = 0.0;
  }
  wkin[pid] = 0.0;
  wpot[pid] = 0.0;
  if (pid == 0) {
    kin_total = 0.0;
    pot_total = 0.0;
  }
  barrier();
  for (s = 0; s < STEPS; s = s + 1) {
    for (m = 0; m < MPP; m = m + 1) {
      i = m * nprocs + pid;
      for (p = 1; p <= PAIRS; p = p + 1) {
        j = (i + p * 97) % NMOL;
        mf[i] = mf[i] + pair_force(mx[pid][m], mx[j % NPROCS][j / NPROCS]);
      }
    }
    barrier();
    for (m = 0; m < MPP; m = m + 1) {
      i = m * nprocs + pid;
      mv[i] = mv[i] + mf[i] * 0.001;
      mx[pid][m] = mx[pid][m] + mv[i] * 0.01;
      wkin[pid] = wkin[pid] + mv[i] * mv[i];
      wpot[pid] = wpot[pid] + mf[i];
      mf[i] = 0.0;
    }
    lock(sum_lock);
    kin_total = kin_total + wkin[pid];
    pot_total = pot_total + wpot[pid];
    unlock(sum_lock);
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_water() {
  Workload w;
  w.name = "water";
  w.description = "N-body molecular dynamics (1451 lines of C)";
  w.unopt = "";
  w.natural = kNatural;
  w.prog = kProg;
  w.sim_overrides = {{"NMOL", 1056}, {"STEPS", 3}};
  w.time_overrides = {{"NMOL", 1056}, {"STEPS", 4}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
