// Pverify (Ma et al., DAC'87): parallel logic verification.  Processes
// traverse a shared gate graph, each verifying a different output cone,
// and mark per-process visit state *embedded in the gate records* — the
// situation where the data layout cannot simply be transposed (the
// per-process data lives inside shared graph nodes) and **indirection**
// is the right transformation (§3.2, Figure 2b).
//
// Per the paper: indirection removes 81.6% of Pverify's false-sharing
// misses, group & transpose (on the per-process work stacks) 6.4%, lock
// padding 3.1% (Table 2, total 91.2%).  Max speedup: unoptimized 2.5@16,
// compiler 5.9@16, programmer 3.5@8 (Table 3) — the programmer padded the
// gate records but missed the indirection and the stack grouping.
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kUnopt = R"PPL(
param NPROCS = 8;
param NG = 1024;        // gates
param FAN = 3;          // fanins per gate
param CONES = 48;       // output cones to verify (divided among processes)
param STACKCAP = 64;    // per-process DFS stack slots

struct Gate {
  int kind;             // 0 = AND, 1 = OR, 2 = XOR
  int fan[FAN];         // fanin gate ids
  int val;              // current evaluation (rarely rewritten)
  int visited[NPROCS];  // per-process visit marks: embedded per-process
                        // data -> indirection target
};

struct Gate gates[NG];
// Per-process DFS stacks: slot k of process p is stack[k][p], so stack
// rows interleave all processes' slots (the "natural" declaration the
// paper's unoptimized programs use).
int stack[STACKCAP][NPROCS];
int sp[NPROCS];         // per-process stack tops, interleaved
int checked[NPROCS];    // per-process verified-gate counters
int mism[NPROCS];       // per-process mismatch tallies, interleaved
int mismatches;         // global result, guarded by a lock
lock_t mlock;

int eval_gate(int g) {
  int k;
  int v;
  int a;
  v = gates[g].kind % 2;
  for (k = 0; k < FAN; k = k + 1) {
    a = gates[gates[g].fan[k]].val;
    if (gates[g].kind == 0) {
      v = v * a;
    } else {
      if (gates[g].kind == 1) {
        v = v + a - v * a;
      } else {
        v = (v + a) % 2;
      }
    }
  }
  return v;
}

void verify_cone(int root, int pid) {
  int g;
  int k;
  int t;
  int nv;
  int pushed;
  // Iterative DFS over the cone using this process's interleaved stack.
  sp[pid] = 0;
  stack[sp[pid]][pid] = root;
  sp[pid] = 1;
  while (sp[pid] > 0) {
    sp[pid] = sp[pid] - 1;
    g = stack[sp[pid]][pid];
    if (gates[g].visited[pid] == 0) {
      gates[g].visited[pid] = 1;
      nv = eval_gate(g);
      if (nv != gates[g].val) {
        gates[g].val = nv;
        mism[pid] = mism[pid] + 1;
      }
      checked[pid] = checked[pid] + 1;
      pushed = 0;
      for (k = 0; k < FAN; k = k + 1) {
        t = gates[g].fan[k];
        if (gates[t].visited[pid] == 0) {
          if (sp[pid] < STACKCAP) {
            stack[sp[pid]][pid] = t;
            sp[pid] = sp[pid] + 1;
            pushed = pushed + 1;
          }
        }
      }
    }
  }
}

void main(int pid) {
  int g;
  int k;
  int c;
  int r;
  // All processes build disjoint slices of the circuit.
  for (g = pid; g < NG; g = g + nprocs) {
    r = lcg(g * 23 + 7);
    gates[g].kind = r % 3;
    for (k = 0; k < FAN; k = k + 1) {
      r = lcg(r);
      // Fanins point strictly downward so cones are acyclic.
      if (g == 0) {
        gates[g].fan[k] = 0;
      } else {
        gates[g].fan[k] = r % g;
      }
    }
    gates[g].val = r % 2;
  }
  // Each process clears its own visit-mark column.
  for (g = 0; g < NG; g = g + 1) {
    gates[g].visited[pid] = 0;
  }
  checked[pid] = 0;
  mism[pid] = 0;
  if (pid == 0) {
    mismatches = 0;
  }
  barrier();
  // The output cones are divided among the processes.
  for (c = pid; c < CONES; c = c + nprocs) {
    verify_cone(NG - 1 - (c * 113) % (NG / 2), pid);
    // Clear this process's marks for the next cone.
    for (g = 0; g < NG; g = g + 1) {
      gates[g].visited[pid] = 0;
    }
  }
  // Fold the per-process tallies into the global result.
  lock(mlock);
  mismatches = mismatches + mism[pid];
  unlock(mlock);
  barrier();
}
)PPL";

// Programmer version: the visit marks were moved *out* of the gate
// records into a separate table — the obvious hand fix — but the table is
// still interleaved by process (visited[g][p]) and the DFS stacks remain
// interleaved: per-process data still shares blocks.  (The paper: the
// programmer missed indirection and group&transpose opportunities in
// Pverify.)
const char* kProg = R"PPL(
param NPROCS = 8;
param NG = 1024;
param FAN = 3;
param CONES = 48;
param STACKCAP = 64;

struct Gate {
  int kind;
  int fan[FAN];
  int val;
};

struct Gate gates[NG];
int visited[NPROCS][NG];  // transposed by hand: marks grouped per process
int stack[STACKCAP][NPROCS];
int sp[NPROCS];
int checked[NPROCS];
int mism[NPROCS];
int mismatches;
lock_t mlock;

int eval_gate(int g) {
  int k;
  int v;
  int a;
  v = gates[g].kind % 2;
  for (k = 0; k < FAN; k = k + 1) {
    a = gates[gates[g].fan[k]].val;
    if (gates[g].kind == 0) {
      v = v * a;
    } else {
      if (gates[g].kind == 1) {
        v = v + a - v * a;
      } else {
        v = (v + a) % 2;
      }
    }
  }
  return v;
}

void verify_cone(int root, int pid) {
  int g;
  int k;
  int t;
  int nv;
  int pushed;
  sp[pid] = 0;
  stack[sp[pid]][pid] = root;
  sp[pid] = 1;
  while (sp[pid] > 0) {
    sp[pid] = sp[pid] - 1;
    g = stack[sp[pid]][pid];
    if (visited[pid][g] == 0) {
      visited[pid][g] = 1;
      nv = eval_gate(g);
      if (nv != gates[g].val) {
        gates[g].val = nv;
        mism[pid] = mism[pid] + 1;
      }
      checked[pid] = checked[pid] + 1;
      pushed = 0;
      for (k = 0; k < FAN; k = k + 1) {
        t = gates[g].fan[k];
        if (visited[pid][t] == 0) {
          if (sp[pid] < STACKCAP) {
            stack[sp[pid]][pid] = t;
            sp[pid] = sp[pid] + 1;
            pushed = pushed + 1;
          }
        }
      }
    }
  }
}

void main(int pid) {
  int g;
  int k;
  int c;
  int r;
  for (g = pid; g < NG; g = g + nprocs) {
    r = lcg(g * 23 + 7);
    gates[g].kind = r % 3;
    for (k = 0; k < FAN; k = k + 1) {
      r = lcg(r);
      if (g == 0) {
        gates[g].fan[k] = 0;
      } else {
        gates[g].fan[k] = r % g;
      }
    }
    gates[g].val = r % 2;
  }
  // Each process clears its own visit-mark column.
  for (g = 0; g < NG; g = g + 1) {
    visited[pid][g] = 0;
  }
  checked[pid] = 0;
  mism[pid] = 0;
  if (pid == 0) {
    mismatches = 0;
  }
  barrier();
  for (c = pid; c < CONES; c = c + nprocs) {
    verify_cone(NG - 1 - (c * 113) % (NG / 2), pid);
    for (g = 0; g < NG; g = g + 1) {
      visited[pid][g] = 0;
    }
  }
  lock(mlock);
  mismatches = mismatches + mism[pid];
  unlock(mlock);
  barrier();
}
)PPL";

}  // namespace

Workload make_pverify() {
  Workload w;
  w.name = "pverify";
  w.description = "Parallel logic verification (2759 lines of C)";
  w.unopt = kUnopt;
  w.natural = kUnopt;
  w.prog = kProg;
  w.sim_overrides = {{"NG", 1024}, {"CONES", 36}};
  w.time_overrides = {{"NG", 1024}, {"CONES", 48}};
  w.fig3_procs = 12;
  return w;
}

}  // namespace fsopt::workloads
