// Topopt (Devadas & Newton '87): topological optimization of multi-level
// array logic by simulated annealing over column permutations.
//
// Per the paper: the programmers organized the data structures to match
// the "natural" semantics of the algorithm, not the memory system; the
// compiler removes 79.9% of the false-sharing misses — 61.3% by
// group & transpose (the per-process gain/trial vectors are interleaved
// element-by-element), 18.6% by indirection (per-process tags embedded in
// the column records).  The residual false sharing lives in a work array
// that is *dynamically partitioned in a revolving manner*: each phase,
// process p owns rows [start_p, start_p + len) where start_p comes from a
// shared table that rotates every phase — the static analysis cannot see
// the partitioning (the bounds are loads), and the writes look spatially
// local, so the array stays untransformed (§5).
// Speedups (Table 3): unopt 9.2@44, compiler 10.3@28, programmer 10.2@28 —
// all versions scale; the gap is modest.  Figure 3 runs Topopt on 9
// processors.
#include "workloads/workloads.h"

namespace fsopt::workloads {

namespace {

const char* kUnopt = R"PPL(
param NPROCS = 8;
param NCOL = 576;       // logic-array columns
param ROWS = 16;        // rows per column signature
param PHASES = 6;       // annealing phases
param TRIALS = 1152;    // total trial moves per phase (divided among processes)

struct Col {
  int perm;             // current column position
  int sig;              // folded row signature
  int tag[NPROCS];      // per-process trial marks (embedded -> indirection)
};

struct Col cols[NCOL];
// Per-process gain and trial vectors, interleaved element-by-element:
// slot of process p is gain[k][p] (the "natural" declaration).
real gain[64][NPROCS];
int trials[64][NPROCS];
int accepted[NPROCS];
// Revolving dynamically partitioned work array: each phase process p owns
// rows [rotor[p], rotor[p] + NCOL/NPROCS); the table rotates by half a
// partition every phase, so partition boundaries fall inside cache blocks.
// (Sized with slack so the revolving windows never wrap.)
int moved[2 * NCOL];
int rotor[NPROCS];
int best_cost;
lock_t blk;

real eval_move(int a, int b) {
  int k;
  real e;
  e = 0.0;
  // Cost of swapping columns a and b: private arithmetic over signatures.
  for (k = 0; k < ROWS; k = k + 1) {
    e = e + itor((cols[a].sig / (k + 1) + cols[b].sig / (k + 1)) % 7)
        * 0.25 - 0.1;
    e = e * 0.75 + sqrt(e * e + 1.0) * 0.125;
  }
  return e;
}

void main(int pid) {
  int i;
  int k;
  int ph;
  int t;
  int a;
  int b;
  int r;
  int s0;
  int span;
  real g;
  // Build the column table (disjoint interleaved slices).
  for (i = pid; i < NCOL; i = i + nprocs) {
    r = lcg(i * 29 + 11);
    cols[i].perm = i;
    cols[i].sig = r % 4096;
  }
  for (i = 0; i < NCOL; i = i + 1) {
    cols[i].tag[pid] = 0;
  }
  for (k = 0; k < 64; k = k + 1) {
    gain[k][pid] = 0.0;
    trials[k][pid] = 0;
  }
  accepted[pid] = 0;
  if (pid == 0) {
    best_cost = 1000000;
    for (i = 0; i < 2 * NCOL; i = i + 1) {
      moved[i] = 0;
    }
    for (k = 0; k < nprocs; k = k + 1) {
      rotor[k] = (k * NCOL) / nprocs;
    }
  }
  barrier();

  for (ph = 0; ph < PHASES; ph = ph + 1) {
    for (t = pid; t < TRIALS; t = t + nprocs) {
      r = lcg(t * 7 + ph * 131 + 1);
      a = r % NCOL;
      r = lcg(r);
      b = r % NCOL;
      g = eval_move(a, b);
      // Per-process trial bookkeeping: interleaved vectors + embedded tags.
      k = t % 64;
      gain[k][pid] = gain[k][pid] + g;
      trials[k][pid] = trials[k][pid] + 1;
      cols[a].tag[pid] = ph + 1;
      cols[b].tag[pid] = ph + 1;
      if (g < 0.0) {
        // Accept: swap the permutation slots (racy swaps are tolerated by
        // annealing).
        k = cols[a].perm;
        cols[a].perm = cols[b].perm;
        cols[b].perm = k;
        accepted[pid] = accepted[pid] + 1;
      }
    }
    barrier();
    // Revolving-partition sweep: bounds come from shared memory, so the
    // partitioning is invisible to the static analysis.
    s0 = rotor[pid];
    span = NCOL / nprocs;
    for (i = s0; i < s0 + span; i = i + 1) {
      moved[i] = moved[i] + cols[i % NCOL].perm % 2;
    }
    barrier();
    if (pid == 0) {
      // Rotate the partitions for the next phase.
      for (k = 0; k < nprocs; k = k + 1) {
        rotor[k] = (rotor[k] + NCOL / nprocs / 2) % NCOL;
      }

      best_cost = best_cost - 1;
    }
    barrier();
  }
}
)PPL";

// Programmer version: the gain/trial vectors were transposed by hand and
// the tags pulled out into a transposed table, but the revolving work
// array is identical (nobody can fix what rotates) and the bookkeeping
// lock stayed unpadded next to the busy scalar.
const char* kProg = R"PPL(
param NPROCS = 8;
param NCOL = 576;
param ROWS = 16;
param PHASES = 6;
param TRIALS = 1152;

struct Col {
  int perm;
  int sig;
};

struct Col cols[NCOL];
real gain[NPROCS][64];
int trials[NPROCS][64];
int tag[NPROCS][NCOL];
int accepted[NPROCS];
int moved[2 * NCOL];
int rotor[NPROCS];
int best_cost;
lock_t blk;

real eval_move(int a, int b) {
  int k;
  real e;
  e = 0.0;
  for (k = 0; k < ROWS; k = k + 1) {
    e = e + itor((cols[a].sig / (k + 1) + cols[b].sig / (k + 1)) % 7)
        * 0.25 - 0.1;
    e = e * 0.75 + sqrt(e * e + 1.0) * 0.125;
  }
  return e;
}

void main(int pid) {
  int i;
  int k;
  int ph;
  int t;
  int a;
  int b;
  int r;
  int s0;
  int span;
  real g;
  for (i = pid; i < NCOL; i = i + nprocs) {
    r = lcg(i * 29 + 11);
    cols[i].perm = i;
    cols[i].sig = r % 4096;
  }
  for (i = 0; i < NCOL; i = i + 1) {
    tag[pid][i] = 0;
  }
  for (k = 0; k < 64; k = k + 1) {
    gain[pid][k] = 0.0;
    trials[pid][k] = 0;
  }
  accepted[pid] = 0;
  if (pid == 0) {
    best_cost = 1000000;
    for (i = 0; i < 2 * NCOL; i = i + 1) {
      moved[i] = 0;
    }
    for (k = 0; k < nprocs; k = k + 1) {
      rotor[k] = (k * NCOL) / nprocs;
    }
  }
  barrier();

  for (ph = 0; ph < PHASES; ph = ph + 1) {
    for (t = pid; t < TRIALS; t = t + nprocs) {
      r = lcg(t * 7 + ph * 131 + 1);
      a = r % NCOL;
      r = lcg(r);
      b = r % NCOL;
      g = eval_move(a, b);
      k = t % 64;
      gain[pid][k] = gain[pid][k] + g;
      trials[pid][k] = trials[pid][k] + 1;
      tag[pid][a] = ph + 1;
      tag[pid][b] = ph + 1;
      if (g < 0.0) {
        k = cols[a].perm;
        cols[a].perm = cols[b].perm;
        cols[b].perm = k;
        accepted[pid] = accepted[pid] + 1;
      }
    }
    barrier();
    s0 = rotor[pid];
    span = NCOL / nprocs;
    for (i = s0; i < s0 + span; i = i + 1) {
      moved[i] = moved[i] + cols[i % NCOL].perm % 2;
    }
    barrier();
    if (pid == 0) {
      for (k = 0; k < nprocs; k = k + 1) {
        rotor[k] = (rotor[k] + NCOL / nprocs / 2) % NCOL;
      }

      best_cost = best_cost - 1;
    }
    barrier();
  }
}
)PPL";

}  // namespace

Workload make_topopt() {
  Workload w;
  w.name = "topopt";
  w.description = "Topological optimization of array logic (2206 lines of C)";
  w.unopt = kUnopt;
  w.natural = kUnopt;
  w.prog = kProg;
  w.sim_overrides = {{"NCOL", 576}, {"PHASES", 5}};
  w.time_overrides = {{"NCOL", 576}, {"PHASES", 6}};
  w.fig3_procs = 9;
  return w;
}

}  // namespace fsopt::workloads
