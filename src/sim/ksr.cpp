#include "sim/ksr.h"

namespace fsopt {

void KsrStats::merge(const KsrStats& other) {
  refs += other.refs;
  hits += other.hits;
  misses += other.misses;
  upgrades += other.upgrades;
  remote_misses += other.remote_misses;
  stall_cycles += other.stall_cycles;
  queue_cycles += other.queue_cycles;
  classified.merge(other.classified);
}

i64 BandwidthCalendar::acquire(i64 now, i64 occupancy) {
  if (occupancy <= 0) return 0;
  i64 b = now / window_;
  while (used_[b] + occupancy > window_) ++b;
  used_[b] += occupancy;
  booked_ += occupancy;
  i64 start = b * window_;
  return start > now ? start - now : 0;
}

KsrMemorySystem::KsrMemorySystem(const KsrParams& p)
    : params_(p),
      cache_({p.nprocs, p.cache_bytes, p.block_size, p.total_bytes}),
      rings_(static_cast<size_t>((p.nprocs + p.ring_size - 1) /
                                 p.ring_size)) {}

i64 KsrMemorySystem::access(int proc, i64 addr, i64 size, bool is_write,
                            i64 now) {
  AccessOutcome o = cache_.access(proc, addr, size, is_write);
  ++stats_.refs;
  stats_.classified.add(o);

  if (o.kind == MissKind::kHit && !o.upgrade) {
    ++stats_.hits;
    return params_.hit_cycles;
  }

  int my_ring = ring_of(proc);
  i64 latency = 0;

  if (o.kind == MissKind::kHit && o.upgrade) {
    // Write to a Shared line: the invalidation traverses the ring.
    ++stats_.upgrades;
    i64 queue = rings_[static_cast<size_t>(my_ring)].acquire(
        now, params_.ring_occupancy);
    latency = params_.upgrade_cycles + queue;
    stats_.queue_cycles += queue;
  } else {
    ++stats_.misses;
    // The servicing cache: the previous owner when one exists, else the
    // block's ALLCACHE home (deterministically spread over processors).
    int source = o.source_proc >= 0
                     ? o.source_proc
                     : static_cast<int>((addr / params_.block_size) %
                                        params_.nprocs);
    int src_ring = ring_of(source);
    bool cross = src_ring != my_ring;
    i64 base =
        cross ? params_.remote_miss_cycles : params_.local_miss_cycles;
    i64 queue = rings_[static_cast<size_t>(my_ring)].acquire(
        now, params_.ring_occupancy);
    if (cross) {
      ++stats_.remote_misses;
      queue += link_.acquire(now + queue, params_.ring_occupancy);
      queue += rings_[static_cast<size_t>(src_ring)].acquire(
          now + queue, params_.ring_occupancy);
    }
    latency = base + queue;
    stats_.queue_cycles += queue;
  }
  stats_.stall_cycles += latency - params_.hit_cycles;
  return latency;
}

}  // namespace fsopt
