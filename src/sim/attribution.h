// Attribution of cache events to program data structures.
//
// The paper validates its static analysis against per-data-structure
// false-sharing profiles from simulation (§3.3, §5).  An AddressMap maps
// simulated addresses back to the datum that owns them so the simulators
// can report per-structure miss breakdowns.
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace fsopt {

struct AddrRange {
  i64 lo = 0;
  i64 hi = 0;  // exclusive
  std::string name;
  i64 size() const { return hi - lo; }
};

class AddressMap {
 public:
  void add(i64 lo, i64 hi, std::string name);

  /// Index of the smallest range containing addr, or -1.  (Ranges may
  /// overlap, e.g. group&transpose members within the group region.)
  int index_of(i64 addr) const;
  const std::string& name_of(int index) const {
    return ranges_[static_cast<size_t>(index)].name;
  }
  const std::vector<AddrRange>& ranges() const { return ranges_; }

 private:
  std::vector<AddrRange> ranges_;
};

}  // namespace fsopt
