// Attribution of cache events to program data structures.
//
// The paper validates its static analysis against per-data-structure
// false-sharing profiles from simulation (§3.3, §5).  An AddressMap maps
// simulated addresses back to the datum that owns them so the simulators
// can report per-structure miss breakdowns.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "support/common.h"

namespace fsopt {

struct AddrRange {
  i64 lo = 0;
  i64 hi = 0;  // exclusive
  std::string name;
  i64 size() const { return hi - lo; }
};

/// Ranges may overlap (e.g. group&transpose members within the group
/// region); a lookup resolves to the *smallest* containing range, ties to
/// the earliest-added.  add() flattens the ranges into disjoint sorted
/// segments with precomputed owners, so index_of is one binary search —
/// it runs once per attributed cache event, which replay makes a hot
/// path (see the address-map section of bench_replay_throughput).  The
/// index is rebuilt eagerly on every add() precisely so that a finished
/// map is immutable and safely shared by concurrent replay shards.
class AddressMap {
 public:
  void add(i64 lo, i64 hi, std::string name);

  /// Index of the smallest range containing addr, or -1.
  int index_of(i64 addr) const {
    if (bounds_.empty() || addr < bounds_.front() || addr >= bounds_.back())
      return -1;
    size_t seg = static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), addr) -
        bounds_.begin());
    return owner_[seg - 1];
  }
  const std::string& name_of(int index) const {
    return ranges_[static_cast<size_t>(index)].name;
  }
  const std::vector<AddrRange>& ranges() const { return ranges_; }

 private:
  void rebuild_index();

  std::vector<AddrRange> ranges_;
  // Flattened segment table: segment k spans [bounds_[k], bounds_[k+1])
  // and is owned by range owner_[k] (-1 for gaps).  owner_ has
  // bounds_.size() - 1 entries.
  std::vector<i64> bounds_;
  std::vector<int> owner_;
};

/// One directed word-granularity false-sharing conflict: a remote
/// processor's write to `writer_word` invalidated the block and cost
/// `victim_proc` a miss on `victim_word`, `weight` times.  Word addresses
/// are absolute simulated byte addresses (4-byte aligned); keeping the
/// processor pair on the edge lets a planner partition words by
/// processor affinity rather than only by co-miss counts.
struct ConflictEdge {
  i64 writer_word = 0;
  i64 victim_word = 0;
  int writer_proc = 0;
  int victim_proc = 0;
  u64 weight = 0;

  bool operator==(const ConflictEdge&) const = default;
};

/// All conflict edges whose endpoints fall in one cache line.  By
/// construction both endpoints of every edge lie in the same block
/// (false sharing is an intra-block phenomenon), so bucketing by
/// `victim_word / block_size` partitions the whole graph into disjoint
/// per-line subgraphs.
struct LineConflicts {
  i64 line = 0;  // block index: word byte address >> log2(block size)
  std::vector<ConflictEdge> edges;

  u64 weight() const {
    u64 w = 0;
    for (const ConflictEdge& e : edges) w += e.weight;
    return w;
  }
};

/// Word-granularity false-sharing conflict graph for one block-size
/// plane: words are vertices, (writer-word, victim-word) pairs weighted
/// by miss count are edges, grouped into per-line subgraphs sorted by
/// line index.
struct ConflictGraph {
  i64 block_size = 0;
  std::vector<LineConflicts> lines;

  bool empty() const { return lines.empty(); }
  u64 total_weight() const {
    u64 w = 0;
    for (const LineConflicts& l : lines) w += l.weight();
    return w;
  }
};

/// Accumulates conflict edges during replay.  record() is called only
/// when a miss has already been classified as false sharing, so the
/// enabled cost is proportional to the false-sharing miss count (times
/// the words per block scanned by the caller), not the reference count.
/// Collectors are attached explicitly and default to absent everywhere,
/// which keeps the disabled replay paths untouched.
class ConflictCollector {
 public:
  void record(i64 writer_word, int writer_proc, i64 victim_word,
              int victim_proc, u64 weight = 1) {
    edges_[Key{writer_word, victim_word, writer_proc, victim_proc}] += weight;
  }

  bool empty() const { return edges_.empty(); }
  void clear() { edges_.clear(); }

  /// Snapshot the accumulated edges as a per-line-bucketed graph for
  /// `block_size` (power of two).  Deterministic: edges sort by the
  /// (writer_word, victim_word, writer_proc, victim_proc) key.
  ConflictGraph graph(i64 block_size) const;

 private:
  struct Key {
    i64 writer_word;
    i64 victim_word;
    int writer_proc;
    int victim_proc;
    bool operator<(const Key& o) const {
      if (writer_word != o.writer_word) return writer_word < o.writer_word;
      if (victim_word != o.victim_word) return victim_word < o.victim_word;
      if (writer_proc != o.writer_proc) return writer_proc < o.writer_proc;
      return victim_proc < o.victim_proc;
    }
  };
  std::map<Key, u64> edges_;
};

/// JSON dump of a conflict graph.  With a non-null AddressMap each word
/// endpoint also carries the owning datum's name and the offset within
/// it, which is what the transform layer keys on.
std::string conflict_graph_to_json(const ConflictGraph& graph,
                                   const AddressMap* map);

}  // namespace fsopt
