// Attribution of cache events to program data structures.
//
// The paper validates its static analysis against per-data-structure
// false-sharing profiles from simulation (§3.3, §5).  An AddressMap maps
// simulated addresses back to the datum that owns them so the simulators
// can report per-structure miss breakdowns.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "support/common.h"

namespace fsopt {

struct AddrRange {
  i64 lo = 0;
  i64 hi = 0;  // exclusive
  std::string name;
  i64 size() const { return hi - lo; }
};

/// Ranges may overlap (e.g. group&transpose members within the group
/// region); a lookup resolves to the *smallest* containing range, ties to
/// the earliest-added.  add() flattens the ranges into disjoint sorted
/// segments with precomputed owners, so index_of is one binary search —
/// it runs once per attributed cache event, which replay makes a hot
/// path (see the address-map section of bench_replay_throughput).  The
/// index is rebuilt eagerly on every add() precisely so that a finished
/// map is immutable and safely shared by concurrent replay shards.
class AddressMap {
 public:
  void add(i64 lo, i64 hi, std::string name);

  /// Index of the smallest range containing addr, or -1.
  int index_of(i64 addr) const {
    if (bounds_.empty() || addr < bounds_.front() || addr >= bounds_.back())
      return -1;
    size_t seg = static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), addr) -
        bounds_.begin());
    return owner_[seg - 1];
  }
  const std::string& name_of(int index) const {
    return ranges_[static_cast<size_t>(index)].name;
  }
  const std::vector<AddrRange>& ranges() const { return ranges_; }

 private:
  void rebuild_index();

  std::vector<AddrRange> ranges_;
  // Flattened segment table: segment k spans [bounds_[k], bounds_[k+1])
  // and is owned by range owner_[k] (-1 for gaps).  owner_ has
  // bounds_.size() - 1 entries.
  std::vector<i64> bounds_;
  std::vector<int> owner_;
};

}  // namespace fsopt
