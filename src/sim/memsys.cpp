#include "sim/memsys.h"

// Interface translation unit (anchors vtables).

namespace fsopt {}
