// Single-pass multi-configuration replay.
//
// A block-size sweep replays the same reference stream once per cache
// configuration.  MultiCacheSim walks the stream exactly once and
// simulates every requested configuration (*plane*) simultaneously —
// and, unlike N independent replays, it can *share* every piece of
// simulator state that does not depend on the block size:
//
//   * word write-versions and last-writer (the classifier's input) are
//     per 4-byte word, not per block — one shared array serves all
//     planes, written once per reference instead of once per plane;
//   * each processor's last-access time per *word* is likewise shared;
//     a plane's per-block snapshot (CoherentCache's `snapshot_`) is
//     recoverable as the max over the words of that plane's block, so
//     the per-plane snapshot arrays disappear entirely;
//   * what remains per plane is the directory itself — a sharer bitmask
//     and modified-owner byte per plane-block — plus a direct-mapped
//     victim table consulted only on misses.
//
// The payoff: the all-planes hit test (the overwhelmingly common case)
// is one directory-mask load per plane plus two shared-array stores
// total, and every coherence transition is O(1) — upgrades and write
// fills replace the mask, evictions clear one bit, downgrades clear the
// owner byte.  Planes where the reference does not plainly hit take a
// miss path that reproduces CoherentCache's transitions (upgrade,
// invalidation counts, downgrades, eviction, word-union miss
// classification) exactly.  Even the classification scans are mostly
// O(1): a 16-word *granule* layer keeps, per granule, each processor's
// last access plus the top write event and the second-writer's maximum
// version, which decides "written by another processor since q's last
// access" for whole granules at once — a word-granular scan remains
// only for the one ambiguous case (the top writer is q itself and the
// runner-up bound cannot rule a foreign write out).
//
// The sharer bitmask is templated on machine width (16-bit masks when
// the trace has at most 16 processors, 64-bit otherwise), and per-plane
// counters accumulate in dense per-batch tallies folded into MissStats
// at batch end, keeping the hot loop free of scattered read-modify-
// write traffic.
//
// Exactness: the shared arrays are a change of representation, not of
// model.  Versions and snapshots only ever enter strict order
// comparisons ("was this word written after processor q last touched
// this block"), and the shared per-reference counter preserves the
// trace order of every such pair of events, so each plane's outcome
// stream is identical to a dedicated CoherentCache replay — the
// differential suite (tests/test_multi_replay.cpp) enforces this across
// the full workload matrix, and bench_replay_throughput hard-fails on
// any counter drift.  Planes the bitmask engine cannot express
// (associativity > 1, the word-invalidate ablation, non-power-of-two
// geometry) fall back to a private CoherentCache per plane within the
// same walk, so replay_multi accepts any CacheParams mix.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.h"
#include "trace/encode.h"
#include "trace/shard.h"

namespace fsopt {

/// One configuration's results out of a multi-plane replay.
struct MultiReplayResult {
  /// Per-plane aggregate stats, in the order the params were given.
  std::vector<MissStats> stats;
  /// Per-plane per-datum attribution (empty unless an AddressMap was
  /// supplied to the replay).
  std::vector<std::map<std::string, MissStats>> by_datum;
};

/// TraceSink replaying one stream into any number of configuration
/// planes at once.  Feed it references (in trace order), then read the
/// per-plane stats.
class MultiCacheSim : public TraceSink {
 public:
  /// One plane per entry of `params`.  The params may differ in any
  /// field (the planes are fully independent simulations); a block-size
  /// sweep passes params identical up to block_size.
  explicit MultiCacheSim(const std::vector<CacheParams>& params,
                         const AddressMap* attribution = nullptr);
  ~MultiCacheSim() override;

  void on_ref(const MemRef& ref) override { on_batch(&ref, 1); }
  void on_batch(const MemRef* refs, size_t n) override;

  /// Process one reference through every plane and report each plane's
  /// outcome in `out` (planes() entries) WITHOUT counting it into
  /// stats()/datum_stats().  State advances exactly as for a counted
  /// reference.  The composed sharded replay uses this for
  /// region-spanning split pieces, whose per-plane outcomes must be
  /// merged across shards before the reference is counted once.
  void access_reported(const MemRef& ref, AccessOutcome* out);

  size_t planes() const { return stats_.size(); }
  const MissStats& stats(size_t plane) const { return stats_[plane]; }
  /// Dense per-datum counters of one plane (AddressMap order plus the
  /// trailing "<other>" slot); empty unless attribution was supplied.
  const std::vector<MissStats>& datum_stats(size_t plane) const {
    return datum_stats_[plane];
  }
  /// String-keyed per-datum map of one plane, materialized on call.
  std::map<std::string, MissStats> by_datum(size_t plane) const;

  /// Attach per-plane conflict collectors (planes() entries, nullptr to
  /// leave a plane uncollected): every false-sharing miss on a collected
  /// plane also records its word-granularity conflict edges.  Never
  /// changes outcomes or counters; no collectors (the default) leaves
  /// the replay paths untouched.
  void set_conflict_collectors(const std::vector<ConflictCollector*>& colls);

  /// Interface of the shared bitmask engine (implemented, and selected
  /// by machine width, in sim/multi.cpp).
  struct SharedPlanes;

 private:
  std::unique_ptr<SharedPlanes> shared_;
  /// Planes the shared engine cannot express, as (plane index, sim).
  std::vector<std::pair<size_t, CoherentCache>> fallback_;
  const AddressMap* attribution_;
  std::vector<MissStats> stats_;                     // [plane]
  std::vector<std::vector<MissStats>> datum_stats_;  // [plane][slot]
};

/// Walk `trace` once and simulate every configuration in `params`
/// simultaneously.  With `threads` > 1 the planes are divided among up
/// to min(threads, planes) workers, each walking the (cheap, encoded)
/// stream once for its plane subset — results are bit-identical for any
/// thread count because planes never interact.  0 = default_thread_count()
/// (the FSOPT_THREADS env var, else hardware concurrency).
///
/// With a non-null `conflicts`, each plane additionally accumulates its
/// word-granularity false-sharing conflict graph; on return *conflicts
/// holds one ConflictGraph per plane (in params order, bucketed at that
/// plane's block size).  Safe under plane-parallel threading: each plane
/// is simulated by exactly one worker, with its own collector.
MultiReplayResult replay_multi(const EncodedTrace& trace,
                               const std::vector<CacheParams>& params,
                               const AddressMap* attribution = nullptr,
                               int threads = 1,
                               std::vector<ConflictGraph>* conflicts = nullptr);

/// Same, from a raw recorded trace (no decode on the walk).
MultiReplayResult replay_multi(const TraceBuffer& trace,
                               const std::vector<CacheParams>& params,
                               const AddressMap* attribution = nullptr,
                               int threads = 1,
                               std::vector<ConflictGraph>* conflicts = nullptr);

// ---------------------------------------------------------------------------
// Composed sharded × multi-configuration replay.
//
// Block-partitioned sharding (trace/shard.h) and the single-pass
// multi-plane walk compose: partition the trace once at *region*
// granularity (a common multiple of every plane's block size), then
// each shard runs one MultiCacheSim over ALL planes on just its slice
// of the stream.  A K-shard sweep therefore decodes/partitions the
// trace once and walks it K ways in parallel — instead of once per
// configuration as the per-config sharded path does — while remaining
// bit-identical to the serial replay_multi result: regions nest every
// plane's blocks, so per-block directory and classifier state never
// straddles shards, and a shard count dividing every plane's
// cache_bytes / region keeps LRU sets shard-pure too.  Region-spanning
// references are replayed piecewise via access_reported and merged
// across shards with the same severity/OR/sum rules the unsharded
// simulator applies inline.
// ---------------------------------------------------------------------------

/// Shard geometry valid for a whole plane set at once.
struct MultiShardPlan {
  i64 region_bytes = 4;  // partition granularity: the largest plane block
  int shards = 1;        // largest exact K <= requested (1: don't shard)
};

/// The largest shard count <= `requested` for which the composed replay
/// is exact across every plane in `params`, together with the region
/// size.  Returns shards == 1 when the planes cannot be composed (a
/// block size that does not divide the region) or requested <= 1.
MultiShardPlan multi_shard_plan(const std::vector<CacheParams>& params,
                                int requested);

/// Replay a region-partitioned trace (partition_trace_multi) across its
/// shards, every shard simulating all of `params` at once.  The
/// partition must come from a plan valid for `params`
/// (multi_shard_plan); results are bit-identical to replay_multi on the
/// unpartitioned trace for every shard count and thread count.
/// `threads` = 0 uses default_thread_count().
MultiReplayResult replay_multi_partitioned(
    const MultiTracePartition& part, const std::vector<CacheParams>& params,
    const AddressMap* attribution = nullptr, int threads = 0);

}  // namespace fsopt
