#include "sim/attribution.h"

namespace fsopt {

void AddressMap::add(i64 lo, i64 hi, std::string name) {
  FSOPT_CHECK(hi >= lo, "bad address range");
  ranges_.push_back({lo, hi, std::move(name)});
}

int AddressMap::index_of(i64 addr) const {
  int best = -1;
  i64 best_size = 0;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    const AddrRange& r = ranges_[i];
    if (addr < r.lo || addr >= r.hi) continue;
    if (best < 0 || r.size() < best_size) {
      best = static_cast<int>(i);
      best_size = r.size();
    }
  }
  return best;
}

}  // namespace fsopt
