#include "sim/attribution.h"

namespace fsopt {

void AddressMap::add(i64 lo, i64 hi, std::string name) {
  FSOPT_CHECK(hi >= lo, "bad address range");
  ranges_.push_back({lo, hi, std::move(name)});
  rebuild_index();
}

void AddressMap::rebuild_index() {
  bounds_.clear();
  owner_.clear();
  for (const AddrRange& r : ranges_) {
    if (r.lo == r.hi) continue;  // empty ranges own no addresses
    bounds_.push_back(r.lo);
    bounds_.push_back(r.hi);
  }
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) return;

  // Overlapping ranges subdivide each other, so within one segment the
  // covering set — and therefore the smallest-covering winner — is
  // constant; probing the segment start resolves the whole segment.
  // Quadratic in the range count, which is tens of globals; the payoff is
  // the O(log n) probe on the per-event path.
  owner_.resize(bounds_.size() - 1);
  for (size_t k = 0; k + 1 < bounds_.size(); ++k) {
    i64 addr = bounds_[k];
    int best = -1;
    i64 best_size = 0;
    for (size_t i = 0; i < ranges_.size(); ++i) {
      const AddrRange& r = ranges_[i];
      if (addr < r.lo || addr >= r.hi) continue;
      if (best < 0 || r.size() < best_size) {
        best = static_cast<int>(i);
        best_size = r.size();
      }
    }
    owner_[k] = best;
  }
}

}  // namespace fsopt
