#include "sim/attribution.h"

#include "support/json.h"

namespace fsopt {

void AddressMap::add(i64 lo, i64 hi, std::string name) {
  FSOPT_CHECK(hi >= lo, "bad address range");
  ranges_.push_back({lo, hi, std::move(name)});
  rebuild_index();
}

void AddressMap::rebuild_index() {
  bounds_.clear();
  owner_.clear();
  for (const AddrRange& r : ranges_) {
    if (r.lo == r.hi) continue;  // empty ranges own no addresses
    bounds_.push_back(r.lo);
    bounds_.push_back(r.hi);
  }
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) return;

  // Overlapping ranges subdivide each other, so within one segment the
  // covering set — and therefore the smallest-covering winner — is
  // constant; probing the segment start resolves the whole segment.
  // Quadratic in the range count, which is tens of globals; the payoff is
  // the O(log n) probe on the per-event path.
  owner_.resize(bounds_.size() - 1);
  for (size_t k = 0; k + 1 < bounds_.size(); ++k) {
    i64 addr = bounds_[k];
    int best = -1;
    i64 best_size = 0;
    for (size_t i = 0; i < ranges_.size(); ++i) {
      const AddrRange& r = ranges_[i];
      if (addr < r.lo || addr >= r.hi) continue;
      if (best < 0 || r.size() < best_size) {
        best = static_cast<int>(i);
        best_size = r.size();
      }
    }
    owner_[k] = best;
  }
}

ConflictGraph ConflictCollector::graph(i64 block_size) const {
  FSOPT_CHECK(block_size > 0 && (block_size & (block_size - 1)) == 0,
              "conflict graph block size must be a power of two");
  ConflictGraph g;
  g.block_size = block_size;
  // edges_ iterates in key order (writer word major), so a map keyed by
  // line keeps both the line list and each line's edge list sorted.
  std::map<i64, std::vector<ConflictEdge>> lines;
  for (const auto& [k, w] : edges_) {
    // Both endpoints of a false-sharing conflict lie in the same block;
    // bucket by the victim word (the missing side).
    i64 line = k.victim_word / block_size;
    lines[line].push_back(
        {k.writer_word, k.victim_word, k.writer_proc, k.victim_proc, w});
  }
  g.lines.reserve(lines.size());
  for (auto& [line, edges] : lines) g.lines.push_back({line, std::move(edges)});
  return g;
}

namespace {

void write_endpoint(json::Writer& w, const char* prefix, i64 word, int proc,
                    const AddressMap* map) {
  w.key(std::string(prefix) + "_word").value(word);
  w.key(std::string(prefix) + "_proc").value(proc);
  if (map != nullptr) {
    int idx = map->index_of(word);
    if (idx >= 0) {
      const AddrRange& r = map->ranges()[static_cast<size_t>(idx)];
      w.key(std::string(prefix) + "_datum").value(r.name);
      w.key(std::string(prefix) + "_offset").value(word - r.lo);
    }
  }
}

}  // namespace

std::string conflict_graph_to_json(const ConflictGraph& graph,
                                   const AddressMap* map) {
  std::string out;
  json::Writer w(&out, 2);
  w.begin_object();
  w.key("block_size").value(graph.block_size);
  w.key("total_weight").value(graph.total_weight());
  w.key("lines").begin_array();
  for (const LineConflicts& l : graph.lines) {
    w.begin_object();
    w.key("line").value(l.line);
    w.key("base").value(l.line * graph.block_size);
    w.key("weight").value(l.weight());
    w.key("edges").begin_array();
    for (const ConflictEdge& e : l.edges) {
      w.begin_object();
      write_endpoint(w, "writer", e.writer_word, e.writer_proc, map);
      write_endpoint(w, "victim", e.victim_word, e.victim_proc, map);
      w.key("weight").value(e.weight);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

}  // namespace fsopt
