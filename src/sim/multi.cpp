#include "sim/multi.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <cstdint>
#include <type_traits>

#include "obs/obs.h"
#include "support/simd.h"
#include "support/thread_pool.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define FSOPT_MULTI_AVX2 1
#endif

namespace fsopt {

namespace {

constexpr int kWBits = 7;     // writer bits in a packed word version
constexpr u64 kWMask = 127;

bool is_pow2(i64 x) { return x > 0 && (x & (x - 1)) == 0; }

/// Can the shared bitmask engine express this configuration?  It models
/// exactly CoherentCache with one way per set (no LRU order to track),
/// block-granularity invalidation, and power-of-two geometry (so block
/// and set arithmetic are shifts and masks).
bool plane_shareable(const CacheParams& p) {
  if (p.word_invalidate || p.associativity != 1) return false;
  if (p.nprocs < 1 || p.nprocs > 64) return false;
  if (!is_pow2(p.block_size) || p.block_size < 4) return false;
  if (p.cache_bytes < p.block_size || p.cache_bytes % p.block_size != 0)
    return false;
  if (!is_pow2(p.cache_bytes / p.block_size)) return false;
  return p.total_bytes > 0;
}

}  // namespace

/// The shared-state engine.  One instance simulates every shareable
/// plane of a MultiCacheSim; see the header comment of sim/multi.h for
/// the representation argument.  Per-word state is shared by all planes
/// and written once per reference:
///
///   last_[q * W + w]   shared counter value of q's last access to w.
///                      max over a block's words == CoherentCache's
///                      per-(block, proc) snapshot; all-zero == cold.
///   vers_[w]           (counter << 7) | writer of the last write, the
///                      classifier's word version.
///
/// Two shared 16-word *granule* aggregates keep the per-miss scans from
/// growing with block size (the sweep's large-block planes would
/// otherwise pay a full-extent sweep per miss):
///
///   lastg_[q * G + g]  counter of q's last access anywhere in granule
///                      g — so a plane snapshot over an aligned span of
///                      granules is bw/16 loads instead of bw;
///   versgw_[g]         (counter << 7) | writer of the newest write
///                      anywhere in granule g;
///   versg2_[g]         max counter among the granule's writes whose
///                      writer differs from the current top writer.
///
/// The write aggregates make the remote-write test ("is any word of the
/// block written after the snapshot by another processor", the false-
/// sharing discriminator) O(granules) in the common cases, exactly:
///
///   * the newest write is the granule's latest event, so its word
///     state is never overwritten — top counter > snapshot with a
///     foreign top writer is a live remote witness (exact positive);
///   * versg2_ only ever over-approximates the surviving foreign word
///     states (a foreign write may itself be overwritten), so top and
///     second counter both <= snapshot proves no remote witness (exact
///     negative), subsuming MissClassifier's block_ver_ early-out;
///   * only the narrow remainder — own writes newest AND an older
///     foreign event past the snapshot — falls back to scanning the
///     granule's 16 word versions.
///
/// Per plane, residency collapses to the directory itself (plus the
/// victim table), so every coherence transition is O(1):
///
///   sharers_[off_[p] + b]  processor bitmask of plane-p block b
///   owner_[off_[p] + b]    processor holding it Modified, -1 if none
///   lines_[p]              [q * sets + set] -> cached block, -1 free
///
/// The per-plane results accumulate into dense event counters (one
/// MissKind-indexed row per plane) folded into the MissStats rows once
/// per batch; outcomes never materialize as AccessOutcome objects on
/// the aggregate path (MissStats does not consume source_proc, so the
/// engine does not compute it).
///
/// The concrete engine is templated on the sharer-bitmask word: a
/// machine of up to 16 processors packs its directory into u16 masks
/// (a quarter of the u64 footprint, keeping the per-ref residency
/// loads L1-resident); larger machines use u64.  The owning
/// MultiCacheSim sees only this interface.
///
/// SIMD enters in two places, both behind support/simd.h's runtime
/// dispatch (FSOPT_SIMD=0 forces the scalar kernels): the per-miss
/// extent scans (snapshot max, granule version resolve) call the
/// dispatched kernels, and on AVX2 hosts the u16-mask engine swaps its
/// whole batch loop for a vectorized one that tests one reference's
/// residency across 8 plane lanes per vector — reads gather the
/// per-plane directory words; writes and miss lanes fall back to
/// scalar helpers with bodies identical to the scalar loop.  Every
/// path produces bit-identical counters; the differential tests and
/// the bench's fingerprint section enforce it.
struct MultiCacheSim::SharedPlanes {
  virtual ~SharedPlanes() = default;
  /// Process one batch and fold the tallies into the stats rows.
  virtual void run_batch(const MemRef* refs, size_t n,
                         const AddressMap* amap) = 0;
  /// Attach per-plane conflict collectors, indexed by the owning
  /// MultiCacheSim's plane order (nullptr entries skip a plane).
  virtual void set_collectors(
      const std::vector<ConflictCollector*>& colls) = 0;
};

namespace {

template <typename MaskT>
struct Engine final : MultiCacheSim::SharedPlanes {
  struct Geom {
    size_t off = 0;       // this plane's slice of sharers_/owner_
    int bshift = 0;       // log2(block_size)
    i64 bw = 0;           // words per block
    i64 sets = 0;
    i64 smask = 0;        // sets - 1
    i32* lines = nullptr; // [q * sets + set] -> cached block, -1 free
    ConflictCollector* coll = nullptr;  // set only while collecting
  };

  /// Per-plane event tallies for one batch: outcome kinds indexed by
  /// MissKind (kHit .. kFalseSharing), plus upgrade and invalidation
  /// counts.  Dense and branch-free to update; folded into the
  /// MissStats rows by flush_counts().
  struct PlaneCnt {
    u64 kind[5] = {0, 0, 0, 0, 0};
    u64 upgrades = 0;
    u64 invalidations = 0;
  };

  int P = 0;          // engine planes
  i64 W = 0;          // words per processor row, padded to the largest
                      // engine block so extent scans never run past the
                      // address space
  i64 G = 0;          // 16-word granules per row (W / 16)
  i64 nprocs = 0;
  i64 total_span = 0;
  u64 n_ = 0;         // shared access counter (first access observes 1)
  std::vector<Geom> geom_;
  std::vector<std::vector<i32>> lines_;
  std::vector<MaskT> sharers_;
  std::vector<std::int8_t> owner_;
  // Counters are stored 32-bit: a trace shorter than 2^32 references
  // (checked per reference) keeps every comparison exact while halving
  // the cache footprint of the per-processor rows.
  std::vector<u32> last_;
  std::vector<u64> vers_;
  std::vector<u32> lastg_;
  std::vector<u64> versgw_;
  std::vector<u32> versg2_;
  std::vector<PlaneCnt> cnt_;
  // Result rows inside the owning MultiCacheSim, in engine-plane order.
  std::vector<MissStats*> stats_row_;
  std::vector<MissStats*> datum_row_;  // nullptr without attribution
  // Owning MultiCacheSim's plane index per engine plane, so collectors
  // handed over in owner order land on the right Geom.
  std::vector<size_t> plane_index_;

  void set_collectors(const std::vector<ConflictCollector*>& colls) override {
    for (int p = 0; p < P; ++p) {
      const size_t gi = plane_index_[static_cast<size_t>(p)];
      geom_[static_cast<size_t>(p)].coll =
          gi < colls.size() ? colls[gi] : nullptr;
    }
  }

  // Kernel set snapshotted at construction (simd.h runtime dispatch):
  // the per-miss extent scans call through it, and use_avx2_ selects
  // the vectorized batch loop for the u16-mask engine.  Snapshotting
  // means one engine never mixes levels mid-replay.
  simd::Kernels kern_{};
  bool use_avx2_ = false;
  int P8 = 0;  // P rounded up to a whole 8-lane group
  // Per-plane lane tables for the vector loop, padded to P8: block
  // shift, directory slab offset, an all-ones/zero lane validity mask,
  // and the batch hit tally the epilogue folds into cnt_.
  std::vector<i32> vshift_;
  std::vector<i32> voff_;
  std::vector<i32> vvalid_;
  std::vector<u32> vhit_;

  /// Pre-reference state of the referenced words, shared by every
  /// plane's classification of the current reference (the referenced
  /// words do not depend on the block size).  l[k]: the accessing
  /// processor's last-access counter of word w0 + k — the smallest
  /// plane's snapshot; r[k]: the counter of the word's last write when
  /// that write is foreign, else 0 — so a part's true-sharing test is
  /// "max r over its words > snapshot", register arithmetic instead of
  /// a per-plane rescan.  Filled lazily on the first plane miss of the
  /// reference; all-planes-hit references never touch the word arrays.
  struct RefCtx {
    i64 w0 = 0;
    u32 l[4] = {0, 0, 0, 0};
    u64 r[4] = {0, 0, 0, 0};
  };
  RefCtx rc_;
  bool rc_ready_ = false;
  i64 cur_w0_ = 0, cur_w1_ = 0;

  void fill_refctx(int proc) {
    rc_ready_ = true;
    rc_.w0 = cur_w0_;
    const u32* lrow = last_.data() + static_cast<size_t>(proc) * W;
    const u64 me = static_cast<u64>(proc);
    const int nw = static_cast<int>(cur_w1_ - cur_w0_) + 1;
    for (int k = 0; k < nw; ++k) {
      rc_.l[k] = lrow[cur_w0_ + k];
      const u64 v = vers_[static_cast<size_t>(cur_w0_ + k)];
      rc_.r[k] = (v & kWMask) != me ? (v >> kWBits) : 0;
    }
  }

  void run_batch(const MemRef* refs, size_t n,
                 const AddressMap* amap) override {
    if (amap != nullptr)
      process_batch<true>(refs, n, amap);
    else if (use_avx2_)
      run_batch_avx2(refs, n);
    else
      process_batch<false>(refs, n, nullptr);
    flush_counts();
  }

  template <bool kAttr>
  void process_batch(const MemRef* refs, size_t n, const AddressMap* amap);
  void run_batch_avx2(const MemRef* refs, size_t n);
  MissKind miss_part(const Geom& g, int proc, MaskT bit, i64 block, i64 addr,
                     i64 size, bool is_write, int* inv_out);

  // Single-plane pieces of the per-reference loop, called by the
  // vector batch loop for the lanes its fast path cannot retire (plane
  // misses, block-spanning references, every write).  Their bodies
  // mirror the corresponding branches of process_batch exactly — the
  // differential tests and the bench fingerprint hold the two paths
  // bit-identical.
  // begin_ref and note_ref_words run once per reference on the vector
  // path too — always_inline folds them into the batch loop (the
  // compiler may legally inline them there since they use no vector
  // features themselves, but left to its own cost model it emits
  // calls).
  __attribute__((always_inline)) inline void begin_ref(i64 addr, i64 size,
                                                       int proc, i64 w0,
                                                       i64 w1);
  void plane_read(int p, i64 b0, i64 b1, i64 addr, i64 size, int proc,
                  MaskT bit);
  void plane_write(int p, i64 b0, i64 b1, i64 addr, i64 size, int proc,
                   MaskT bit);
  __attribute__((always_inline)) inline void note_ref_words(int proc, i64 w0,
                                                            i64 w1,
                                                            bool is_write);

  /// Fold the dense batch tallies into the MissStats rows and reset.
  void flush_counts() {
    for (int p = 0; p < P; ++p) {
      MissStats* s = stats_row_[p];
      PlaneCnt& c = cnt_[static_cast<size_t>(p)];
      s->refs += c.kind[0] + c.kind[1] + c.kind[2] + c.kind[3] + c.kind[4];
      s->hits += c.kind[0];
      s->cold += c.kind[1];
      s->replacement += c.kind[2];
      s->true_sharing += c.kind[3];
      s->false_sharing += c.kind[4];
      s->upgrades += c.upgrades;
      s->invalidations += c.invalidations;
      c = PlaneCnt{};
    }
  }
};

template <typename MaskT>
template <bool kAttr>
void Engine<MaskT>::process_batch(const MemRef* refs, size_t n,
                                  const AddressMap* amap) {
  const Geom* geom = geom_.data();
  MaskT* sharers = sharers_.data();
  PlaneCnt* cnt = cnt_.data();
  for (size_t i = 0; i < n; ++i) {
    const MemRef& r = refs[i];
    const i64 addr = r.addr;
    const i64 size = r.size;
    const int proc = r.proc;
    FSOPT_CHECK(addr >= 0 && size > 0 && addr + size <= total_span,
                "reference outside the simulated address space — "
                "total_bytes does not cover the workload");
    FSOPT_CHECK(proc >= 0 && proc < nprocs,
                "reference processor outside the simulated machine");
    const bool is_write = r.type == RefType::kWrite;
    const MaskT bit = static_cast<MaskT>(MaskT{1} << proc);
    const i64 end = addr + size - 1;
    const i64 w0 = addr >> 2;
    const i64 w1 = end >> 2;
    ++n_;
    FSOPT_CHECK(n_ <= 0xffffffffULL, "trace too long for 32-bit counters");
    FSOPT_CHECK(w1 - w0 < 4, "reference spans too many words");
    cur_w0_ = w0;
    cur_w1_ = w1;
    rc_ready_ = false;
    size_t slot = 0;
    if constexpr (kAttr) {
      int d = amap->index_of(addr);
      slot = d >= 0 ? static_cast<size_t>(d) : amap->ranges().size();
    }
    // The shared rows for this reference's words are touched by every
    // plane that misses and by the end-of-reference stores below; start
    // their (L2-latency) fetches before the per-plane work.
    __builtin_prefetch(&last_[static_cast<size_t>(proc) * W +
                              static_cast<size_t>(w0)], 1);
    __builtin_prefetch(&vers_[static_cast<size_t>(w0)], 1);
    __builtin_prefetch(&lastg_[static_cast<size_t>(proc) * G +
                               static_cast<size_t>(w0 >> 4)], 1);

    if (!is_write) {
      // Read: resident (sharer bit set) is a hit with no state change;
      // anything else — including a block-spanning reference — goes
      // through the per-part slow path.
      for (int p = 0; p < P; ++p) {
        const Geom& g = geom[p];
        const i64 b0 = addr >> g.bshift;
        const i64 b1 = end >> g.bshift;
        if (b0 == b1) [[likely]] {
          if ((sharers[g.off + static_cast<size_t>(b0)] & bit) != 0) {
            ++cnt[p].kind[0];
            if constexpr (kAttr) {
              MissStats& dm = datum_row_[p][slot];
              ++dm.refs;
              ++dm.hits;
            }
          } else {
            int inv = 0;
            MissKind k = miss_part(g, proc, bit, b0, addr, size, false, &inv);
            ++cnt[p].kind[static_cast<size_t>(k)];
            if constexpr (kAttr) datum_row_[p][slot].add({k, false, -1, 0});
          }
        } else {
          FSOPT_CHECK(b1 - b0 < 4, "reference spans too many blocks");
          int sev = 0;
          MissKind kind = MissKind::kHit;
          for (i64 b = b0; b <= b1; ++b) {
            const i64 lo = std::max(addr, b << g.bshift);
            const i64 hi = std::min(addr + size, (b + 1) << g.bshift);
            MissKind k = MissKind::kHit;
            if ((sharers[g.off + static_cast<size_t>(b)] & bit) == 0) {
              int inv = 0;
              k = miss_part(g, proc, bit, b, lo, hi - lo, false, &inv);
            }
            const int s2 = split_kind_severity(k);
            if (s2 > sev) {
              sev = s2;
              kind = k;
            }
          }
          ++cnt[p].kind[static_cast<size_t>(kind)];
          if constexpr (kAttr) datum_row_[p][slot].add({kind, false, -1, 0});
        }
      }
    } else {
      // Write: a resident block needs no classification — it is a
      // silent hit when this processor owns it Modified and an upgrade
      // otherwise, and because Modified implies sole sharership the
      // same three stores and popcount cover both (the popcount is 0
      // for the silent hit).  Branch-free on the resident path.
      std::int8_t* owner = owner_.data();
      for (int p = 0; p < P; ++p) {
        const Geom& g = geom[p];
        const i64 b0 = addr >> g.bshift;
        const i64 b1 = end >> g.bshift;
        if (b0 == b1) [[likely]] {
          const size_t bi = g.off + static_cast<size_t>(b0);
          const MaskT sh = sharers[bi];
          if ((sh & bit) != 0) {
            const u64 up = owner[bi] != proc ? 1 : 0;
            const u64 inv = static_cast<u64>(
                std::popcount(static_cast<MaskT>(sh & ~bit)));
            sharers[bi] = bit;
            owner[bi] = static_cast<std::int8_t>(proc);
            ++cnt[p].kind[0];
            cnt[p].upgrades += up;
            cnt[p].invalidations += inv;
            if constexpr (kAttr)
              datum_row_[p][slot].add(
                  {MissKind::kHit, up != 0, -1, static_cast<int>(inv)});
          } else {
            int inv = 0;
            MissKind k = miss_part(g, proc, bit, b0, addr, size, true, &inv);
            ++cnt[p].kind[static_cast<size_t>(k)];
            cnt[p].invalidations += static_cast<u64>(inv);
            if constexpr (kAttr) datum_row_[p][slot].add({k, false, -1, inv});
          }
        } else {
          // Parts in block order, state updated between parts, exactly
          // as CoherentCache::access; kinds merge by severity, the
          // upgrade flags OR, the invalidation counts sum.
          FSOPT_CHECK(b1 - b0 < 4, "reference spans too many blocks");
          int sev = 0;
          MissKind kind = MissKind::kHit;
          u64 upg = 0;
          u64 invt = 0;
          for (i64 b = b0; b <= b1; ++b) {
            const i64 lo = std::max(addr, b << g.bshift);
            const i64 hi = std::min(addr + size, (b + 1) << g.bshift);
            const size_t bi = g.off + static_cast<size_t>(b);
            const MaskT sh = sharers[bi];
            MissKind k = MissKind::kHit;
            if ((sh & bit) != 0) {
              upg |= owner[bi] != proc ? 1 : 0;
              invt += static_cast<u64>(
                  std::popcount(static_cast<MaskT>(sh & ~bit)));
              sharers[bi] = bit;
              owner[bi] = static_cast<std::int8_t>(proc);
            } else {
              int inv = 0;
              k = miss_part(g, proc, bit, b, lo, hi - lo, true, &inv);
              invt += static_cast<u64>(inv);
            }
            const int s2 = split_kind_severity(k);
            if (s2 > sev) {
              sev = s2;
              kind = k;
            }
          }
          ++cnt[p].kind[static_cast<size_t>(kind)];
          cnt[p].upgrades += upg;
          cnt[p].invalidations += invt;
          if constexpr (kAttr)
            datum_row_[p][slot].add(
                {kind, upg != 0, -1, static_cast<int>(invt)});
        }
      }
    }
    // Shared updates are deferred until every plane has observed the
    // pre-reference state (the per-plane outcomes must not see this
    // reference's own stores).  The granule aggregates are maxes of
    // monotonically increasing counters, so a plain store maintains
    // them.
    u32* lrow = last_.data() + static_cast<size_t>(proc) * W;
    u32* lgrow = lastg_.data() + static_cast<size_t>(proc) * G;
    const u32 n32 = static_cast<u32>(n_);
    for (i64 w = w0; w <= w1; ++w) lrow[w] = n32;
    lgrow[w0 >> 4] = n32;
    lgrow[w1 >> 4] = n32;
    if (is_write) {
      const u64 v = (n_ << kWBits) | static_cast<u64>(proc);
      for (i64 w = w0; w <= w1; ++w) vers_[static_cast<size_t>(w)] = v;
      // This write becomes the granule's top event (the counter is
      // monotone); the displaced top feeds the second-writer max when
      // its writer differs from ours.
      const i64 g0 = w0 >> 4;
      const i64 g1 = w1 >> 4;
      for (i64 g = g0;; g = g1) {
        const u64 old = versgw_[static_cast<size_t>(g)];
        if ((old & kWMask) != static_cast<u64>(proc))
          versg2_[static_cast<size_t>(g)] = static_cast<u32>(old >> kWBits);
        versgw_[static_cast<size_t>(g)] = v;
        if (g == g1) break;
      }
    }
  }
}

template <typename MaskT>
void Engine<MaskT>::begin_ref(i64 addr, i64 size, int proc, i64 w0, i64 w1) {
  FSOPT_CHECK(addr >= 0 && size > 0 && addr + size <= total_span,
              "reference outside the simulated address space — "
              "total_bytes does not cover the workload");
  FSOPT_CHECK(proc >= 0 && proc < nprocs,
              "reference processor outside the simulated machine");
  ++n_;
  FSOPT_CHECK(n_ <= 0xffffffffULL, "trace too long for 32-bit counters");
  FSOPT_CHECK(w1 - w0 < 4, "reference spans too many words");
  cur_w0_ = w0;
  cur_w1_ = w1;
  rc_ready_ = false;
  __builtin_prefetch(&last_[static_cast<size_t>(proc) * W +
                            static_cast<size_t>(w0)], 1);
  __builtin_prefetch(&vers_[static_cast<size_t>(w0)], 1);
  __builtin_prefetch(&lastg_[static_cast<size_t>(proc) * G +
                             static_cast<size_t>(w0 >> 4)], 1);
}

template <typename MaskT>
void Engine<MaskT>::plane_read(int p, i64 b0, i64 b1, i64 addr, i64 size,
                               int proc, MaskT bit) {
  const Geom& g = geom_[static_cast<size_t>(p)];
  PlaneCnt& c = cnt_[static_cast<size_t>(p)];
  MaskT* sharers = sharers_.data();
  if (b0 == b1) {
    if ((sharers[g.off + static_cast<size_t>(b0)] & bit) != 0) {
      ++c.kind[0];
    } else {
      int inv = 0;
      MissKind k = miss_part(g, proc, bit, b0, addr, size, false, &inv);
      ++c.kind[static_cast<size_t>(k)];
    }
    return;
  }
  FSOPT_CHECK(b1 - b0 < 4, "reference spans too many blocks");
  int sev = 0;
  MissKind kind = MissKind::kHit;
  for (i64 b = b0; b <= b1; ++b) {
    const i64 lo = std::max(addr, b << g.bshift);
    const i64 hi = std::min(addr + size, (b + 1) << g.bshift);
    MissKind k = MissKind::kHit;
    if ((sharers[g.off + static_cast<size_t>(b)] & bit) == 0) {
      int inv = 0;
      k = miss_part(g, proc, bit, b, lo, hi - lo, false, &inv);
    }
    const int s2 = split_kind_severity(k);
    if (s2 > sev) {
      sev = s2;
      kind = k;
    }
  }
  ++c.kind[static_cast<size_t>(kind)];
}

template <typename MaskT>
void Engine<MaskT>::plane_write(int p, i64 b0, i64 b1, i64 addr, i64 size,
                                int proc, MaskT bit) {
  const Geom& g = geom_[static_cast<size_t>(p)];
  PlaneCnt& c = cnt_[static_cast<size_t>(p)];
  MaskT* sharers = sharers_.data();
  std::int8_t* owner = owner_.data();
  if (b0 == b1) {
    const size_t bi = g.off + static_cast<size_t>(b0);
    const MaskT sh = sharers[bi];
    if ((sh & bit) != 0) {
      const u64 up = owner[bi] != proc ? 1 : 0;
      const u64 inv =
          static_cast<u64>(std::popcount(static_cast<MaskT>(sh & ~bit)));
      sharers[bi] = bit;
      owner[bi] = static_cast<std::int8_t>(proc);
      ++c.kind[0];
      c.upgrades += up;
      c.invalidations += inv;
    } else {
      int inv = 0;
      MissKind k = miss_part(g, proc, bit, b0, addr, size, true, &inv);
      ++c.kind[static_cast<size_t>(k)];
      c.invalidations += static_cast<u64>(inv);
    }
    return;
  }
  FSOPT_CHECK(b1 - b0 < 4, "reference spans too many blocks");
  int sev = 0;
  MissKind kind = MissKind::kHit;
  u64 upg = 0;
  u64 invt = 0;
  for (i64 b = b0; b <= b1; ++b) {
    const i64 lo = std::max(addr, b << g.bshift);
    const i64 hi = std::min(addr + size, (b + 1) << g.bshift);
    const size_t bi = g.off + static_cast<size_t>(b);
    const MaskT sh = sharers[bi];
    MissKind k = MissKind::kHit;
    if ((sh & bit) != 0) {
      upg |= owner[bi] != proc ? 1 : 0;
      invt += static_cast<u64>(std::popcount(static_cast<MaskT>(sh & ~bit)));
      sharers[bi] = bit;
      owner[bi] = static_cast<std::int8_t>(proc);
    } else {
      int inv = 0;
      k = miss_part(g, proc, bit, b, lo, hi - lo, true, &inv);
      invt += static_cast<u64>(inv);
    }
    const int s2 = split_kind_severity(k);
    if (s2 > sev) {
      sev = s2;
      kind = k;
    }
  }
  ++c.kind[static_cast<size_t>(kind)];
  c.upgrades += upg;
  c.invalidations += invt;
}

template <typename MaskT>
void Engine<MaskT>::note_ref_words(int proc, i64 w0, i64 w1, bool is_write) {
  u32* lrow = last_.data() + static_cast<size_t>(proc) * W;
  u32* lgrow = lastg_.data() + static_cast<size_t>(proc) * G;
  const u32 n32 = static_cast<u32>(n_);
  for (i64 w = w0; w <= w1; ++w) lrow[w] = n32;
  lgrow[w0 >> 4] = n32;
  lgrow[w1 >> 4] = n32;
  if (is_write) {
    const u64 v = (n_ << kWBits) | static_cast<u64>(proc);
    for (i64 w = w0; w <= w1; ++w) vers_[static_cast<size_t>(w)] = v;
    const i64 g0 = w0 >> 4;
    const i64 g1 = w1 >> 4;
    for (i64 g = g0;; g = g1) {
      const u64 old = versgw_[static_cast<size_t>(g)];
      if ((old & kWMask) != static_cast<u64>(proc))
        versg2_[static_cast<size_t>(g)] = static_cast<u32>(old >> kWBits);
      versgw_[static_cast<size_t>(g)] = v;
      if (g == g1) break;
    }
  }
}

#if defined(FSOPT_MULTI_AVX2)

/// The AVX2 batch loop of the u16-mask engine: 8 plane lanes per
/// vector, kChunks such 8-lane groups covering P planes (use_avx2_
/// caps P at 32).  Per read it evaluates the block shifts, the
/// single-block test and the gathered directory hit test across all
/// lanes at once, tallies hit lanes into per-chunk register
/// accumulators, and drops only miss/split lanes into the scalar
/// per-plane helpers — whose bodies mirror the scalar loop, so both
/// paths classify every outcome identically.  Writes mutate per-plane
/// directory state (three scattered stores on the resident path) and
/// run the scalar helper for every plane.  The chunk count is a
/// template parameter so the lane tables (shift, directory offset,
/// valid mask) and the hit accumulators live in registers for the
/// whole batch in the common single-chunk case.  Padding lanes
/// (p >= P) are excluded by the valid mask and their gather indices
/// forced to 0 (in bounds: sharers_ carries two padding elements for
/// the 4-byte gather of the last u16).
template <int kChunks>
__attribute__((target("avx2")))
void engine_batch_avx2_impl(Engine<std::uint16_t>& e, const MemRef* refs,
                            size_t n) {
  using MaskT = std::uint16_t;
  const MaskT* sharers = e.sharers_.data();
  const int* sharers32 = reinterpret_cast<const int*>(sharers);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vlow16 = _mm256_set1_epi32(0xFFFF);
  __m256i vshift[kChunks], voff[kChunks], vvalid[kChunks], vhit[kChunks];
  for (int c = 0; c < kChunks; ++c) {
    vshift[c] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(e.vshift_.data() + 8 * c));
    voff[c] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(e.voff_.data() + 8 * c));
    vvalid[c] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(e.vvalid_.data() + 8 * c));
    vhit[c] = vzero;
  }
  for (size_t i = 0; i < n; ++i) {
    const MemRef& r = refs[i];
    const i64 addr = r.addr;
    const i64 size = r.size;
    const int proc = r.proc;
    const bool is_write = r.type == RefType::kWrite;
    const MaskT bit = static_cast<MaskT>(MaskT{1} << proc);
    const i64 end = addr + size - 1;
    e.begin_ref(addr, size, proc, addr >> 2, end >> 2);
    if (!is_write) {
      const __m256i vaddr = _mm256_set1_epi32(static_cast<int>(addr));
      const __m256i vend = _mm256_set1_epi32(static_cast<int>(end));
      const __m256i vbit = _mm256_set1_epi32(1 << proc);
      for (int c = 0; c < kChunks; ++c) {
        const __m256i vb0 = _mm256_srlv_epi32(vaddr, vshift[c]);
        const __m256i vb1 = _mm256_srlv_epi32(vend, vshift[c]);
        const __m256i vsingle = _mm256_cmpeq_epi32(vb0, vb1);
        const __m256i idx = _mm256_and_si256(
            _mm256_add_epi32(voff[c], vb0), vvalid[c]);
        const __m256i sh = _mm256_and_si256(
            _mm256_i32gather_epi32(sharers32, idx, 2), vlow16);
        const __m256i nobit =
            _mm256_cmpeq_epi32(_mm256_and_si256(sh, vbit), vzero);
        const __m256i vdirhit = _mm256_and_si256(
            _mm256_andnot_si256(nobit, vsingle), vvalid[c]);
        u32 slow = static_cast<u32>(_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_andnot_si256(vdirhit, vvalid[c]))));
        vhit[c] = _mm256_sub_epi32(vhit[c], vdirhit);
        while (slow != 0) {
          const int p = std::countr_zero(slow) + 8 * c;
          slow &= slow - 1;
          const auto& g = e.geom_[static_cast<size_t>(p)];
          e.plane_read(p, addr >> g.bshift, end >> g.bshift, addr, size,
                       proc, bit);
        }
      }
    } else {
      for (int p = 0; p < e.P; ++p) {
        const auto& g = e.geom_[static_cast<size_t>(p)];
        e.plane_write(p, addr >> g.bshift, end >> g.bshift, addr, size,
                      proc, bit);
      }
    }
    e.note_ref_words(proc, e.cur_w0_, e.cur_w1_, is_write);
  }
  // Fold the register hit tallies into the per-plane counters.
  for (int c = 0; c < kChunks; ++c)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(e.vhit_.data() + 8 * c),
                        vhit[c]);
  for (int p = 0; p < e.P; ++p) {
    e.cnt_[static_cast<size_t>(p)].kind[0] += e.vhit_[static_cast<size_t>(p)];
    e.vhit_[static_cast<size_t>(p)] = 0;
  }
}

void engine_batch_avx2(Engine<std::uint16_t>& e, const MemRef* refs,
                       size_t n) {
  switch (e.P8 / 8) {
    case 1: engine_batch_avx2_impl<1>(e, refs, n); return;
    case 2: engine_batch_avx2_impl<2>(e, refs, n); return;
    case 3: engine_batch_avx2_impl<3>(e, refs, n); return;
    case 4: engine_batch_avx2_impl<4>(e, refs, n); return;
    default: break;
  }
  FSOPT_CHECK(false, "AVX2 batch loop selected for too many planes");
}

#endif  // FSOPT_MULTI_AVX2

template <typename MaskT>
void Engine<MaskT>::run_batch_avx2(const MemRef* refs, size_t n) {
#if defined(FSOPT_MULTI_AVX2)
  if constexpr (std::is_same_v<MaskT, std::uint16_t>) {
    engine_batch_avx2(*this, refs, n);
    return;
  }
#endif
  (void)refs;
  (void)n;
  FSOPT_CHECK(false, "AVX2 batch loop selected without support");
}

template <typename MaskT>
MissKind Engine<MaskT>::miss_part(const Geom& g, int proc, MaskT bit,
                                  i64 block, i64 addr, i64 size, bool is_write,
                                  int* inv_out) {
  // Classify from the shared word state.  The per-(block, proc)
  // snapshot is the max of the processor's last-access counters over the
  // block's extent (zero: never touched — cold), read from the granule
  // aggregate when the block spans whole granules.
  const i64 wb0 = block << (g.bshift - 2);  // block extent [wb0, wb0+bw)
  if (!rc_ready_) fill_refctx(proc);
  u64 s = 0;
  if (g.bw >= 16) {
    const u32* lg = lastg_.data() + static_cast<size_t>(proc) * G +
                    static_cast<size_t>(wb0 >> 4);
    const i64 ng = g.bw >> 4;
    if (ng >= 8) {
      // Wide-block planes (>= 512B): one dispatched max over the
      // granule row instead of a scalar reduction.
      s = kern_.max_u32(lg, static_cast<size_t>(ng));
    } else {
      for (i64 i = 0; i < ng; ++i) s = std::max<u64>(s, lg[i]);
    }
  } else if (g.bw == 1) {
    s = rc_.l[wb0 - rc_.w0];  // single-word block: a referenced word
  } else {
    const u32* lrow = last_.data() + static_cast<size_t>(proc) * W +
                      static_cast<size_t>(wb0);
    for (i64 w = 0; w < g.bw; ++w) s = std::max<u64>(s, lrow[w]);
  }
  MissKind kind;
  if (s == 0) {
    kind = MissKind::kCold;
  } else if ([&] {
               // True sharing first, from the cached referenced-word
               // state: the part's words are rc_.w0-relative indices
               // [addr >> 2, (addr + size - 1) >> 2].
               u64 rrem = 0;
               for (i64 k = (addr >> 2) - rc_.w0;
                    k <= ((addr + size - 1) >> 2) - rc_.w0; ++k)
                 rrem = std::max(rrem, rc_.r[k]);
               return rrem > s;
             }()) {
    // A referenced word remotely written after the snapshot settles
    // true sharing without any block scan (word-union semantics).
    kind = MissKind::kTrueSharing;
  } else {
    const u64 newer = (s + 1) << kWBits;
    const u64 me = static_cast<u64>(proc);
    const u64* ws = vers_.data() + static_cast<size_t>(wb0);
    // No referenced word is a witness; false sharing vs replacement
    // hinges on the rest of the block, tested from the granule write
    // aggregates.
    bool any_remote = false;
    if (g.bw >= 16) {
      // Branchless accumulation over the extent's granules: a foreign
      // top event newer than the snapshot is a live remote witness
      // (exact positive); an own top with a filtered-through older
      // foreign event (rare) marks its granule for word resolution.
      const u64* vw = versgw_.data() + static_cast<size_t>(wb0 >> 4);
      const u32* v2 = versg2_.data() + static_cast<size_t>(wb0 >> 4);
      u64 witness = 0, resolve = 0;
      for (i64 i = 0; i < (g.bw >> 4); ++i) {
        const u64 top = vw[i];
        const u64 newer_top = (top >> kWBits) > s;
        const u64 foreign = (top & kWMask) != me;
        witness |= newer_top & foreign;
        resolve |= (newer_top & ~foreign & (v2[i] > s ? 1u : 0u)) << i;
      }
      any_remote = witness != 0;
      while (!any_remote && resolve != 0) {
        // Own writes are newest but an older foreign event passed the
        // filter; it may have been overwritten, so resolve from the
        // granule's live word states (dispatched 16-word scan).
        const int i = std::countr_zero(resolve);
        resolve &= resolve - 1;
        any_remote = kern_.any_version_newer(
            ws + (static_cast<i64>(i) << 4), 16, newer, me, kWMask);
      }
    } else {
      // The covering granule's aggregate is a sound negative filter for
      // the sub-granule block; a positive resolves from the block's
      // (one or two) word versions.
      const u64 top = versgw_[static_cast<size_t>(wb0 >> 4)];
      if ((top >> kWBits) > s &&
          ((top & kWMask) != me ||
           versg2_[static_cast<size_t>(wb0 >> 4)] > s)) {
        for (i64 w = 0; w < g.bw && !any_remote; ++w) {
          u64 v = ws[w];
          any_remote = v >= newer && (v & kWMask) != me;
        }
      }
    }
    kind = any_remote ? MissKind::kFalseSharing : MissKind::kReplacement;
    if (kind == MissKind::kFalseSharing && g.coll != nullptr) {
      // The granule aggregates may have settled any_remote without ever
      // scanning the word array, so the collector enumerates the foreign-
      // newer witnesses itself from the live word versions.  Runs only on
      // false-sharing misses of a collected plane.
      for (i64 w = 0; w < g.bw; ++w) {
        const i64 aw = wb0 + w;
        if (aw >= cur_w0_ && aw <= cur_w1_) continue;
        const u64 v = ws[w];
        if (v >= newer && (v & kWMask) != me)
          g.coll->record(aw * 4, static_cast<int>(v & kWMask), cur_w0_ * 4,
                         proc);
      }
    }
  }

  // Evict the direct-mapped way of this set.  line == block happens when
  // our copy was invalidated (the line table keeps the block number);
  // its sharer bit is already clear, so the refill below is all that is
  // needed.
  i32& line =
      g.lines[static_cast<size_t>(proc) * g.sets + (block & g.smask)];
  if (line >= 0 && line != block) {
    MaskT& old_sharers = sharers_[g.off + static_cast<size_t>(line)];
    std::int8_t& old_owner = owner_[g.off + static_cast<size_t>(line)];
    old_sharers = static_cast<MaskT>(old_sharers & ~bit);
    if (old_owner == proc) old_owner = -1;
  }
  line = static_cast<i32>(block);

  MaskT& sharers = sharers_[g.off + static_cast<size_t>(block)];
  std::int8_t& owner = owner_[g.off + static_cast<size_t>(block)];
  if (is_write) {
    *inv_out = std::popcount(static_cast<MaskT>(sharers & ~bit));
    sharers = bit;
    owner = static_cast<std::int8_t>(proc);
  } else {
    // Downgrade a remote Modified copy to Shared.
    *inv_out = 0;
    if (owner >= 0 && owner != proc) owner = -1;
    sharers = static_cast<MaskT>(sharers | bit);
  }
  return kind;
}

/// Build and populate an Engine for the given plane subset.
template <typename MaskT>
std::unique_ptr<MultiCacheSim::SharedPlanes> build_engine(
    const std::vector<CacheParams>& params, const std::vector<size_t>& planes,
    const CacheParams& first, std::vector<MissStats>& stats,
    std::vector<std::vector<MissStats>>& datum_stats, bool attributed) {
  auto eng = std::make_unique<Engine<MaskT>>();
  Engine<MaskT>& e = *eng;
  e.P = static_cast<int>(planes.size());
  e.total_span = first.total_bytes;
  e.nprocs = first.nprocs;
  // Pad each word row to the largest engine block (and a whole number
  // of granules) so the last block's extent scans stay in bounds when
  // total_bytes is not a block multiple; padded words keep counter 0,
  // which no comparison ever reads as newer.
  i64 max_bw = 4;  // at least one granule
  for (size_t i : planes)
    max_bw = std::max(max_bw, params[i].block_size / 4);
  const i64 words = (first.total_bytes + 3) / 4;
  e.W = (words + max_bw - 1) / max_bw * max_bw;
  e.G = e.W / 16 + ((e.W % 16) != 0 ? 1 : 0);
  e.last_.assign(static_cast<size_t>(e.nprocs) * e.W, 0);
  e.vers_.assign(static_cast<size_t>(e.W), 0);
  e.lastg_.assign(static_cast<size_t>(e.nprocs) * e.G, 0);
  e.versgw_.assign(static_cast<size_t>(e.G), 0);
  e.versg2_.assign(static_cast<size_t>(e.G), 0);
  e.cnt_.assign(planes.size(), typename Engine<MaskT>::PlaneCnt{});
  e.geom_.resize(planes.size());
  e.lines_.resize(planes.size());
  e.stats_row_.resize(planes.size());
  e.datum_row_.resize(planes.size());
  size_t blocks_total = 0;
  for (size_t p = 0; p < planes.size(); ++p) {
    const CacheParams& c = params[planes[p]];
    typename Engine<MaskT>::Geom& g = e.geom_[p];
    g.off = blocks_total;
    g.bshift = std::countr_zero(static_cast<u64>(c.block_size));
    g.bw = c.block_size / 4;
    g.sets = c.cache_bytes / c.block_size;
    g.smask = g.sets - 1;
    blocks_total +=
        static_cast<size_t>((c.total_bytes + c.block_size - 1) / c.block_size);
    e.lines_[p].assign(static_cast<size_t>(c.nprocs) * g.sets, -1);
    g.lines = e.lines_[p].data();
    e.stats_row_[p] = &stats[planes[p]];
    e.datum_row_[p] = attributed ? datum_stats[planes[p]].data() : nullptr;
  }
  e.plane_index_ = planes;
  // Two trailing padding elements keep the AVX2 path's 4-byte gather of
  // the last u16 directory word in bounds.
  e.sharers_.assign(blocks_total + 2, 0);
  e.owner_.assign(blocks_total, -1);

  e.kern_ = simd::active_kernels();
  e.P8 = (e.P + 7) / 8 * 8;
  e.vshift_.assign(static_cast<size_t>(e.P8), 0);
  e.voff_.assign(static_cast<size_t>(e.P8), 0);
  e.vvalid_.assign(static_cast<size_t>(e.P8), 0);
  e.vhit_.assign(static_cast<size_t>(e.P8), 0);
  for (int p = 0; p < e.P; ++p) {
    const auto& g = e.geom_[static_cast<size_t>(p)];
    e.vshift_[static_cast<size_t>(p)] = g.bshift;
    e.voff_[static_cast<size_t>(p)] = static_cast<i32>(g.off);
    e.vvalid_[static_cast<size_t>(p)] = -1;
  }
  e.use_avx2_ = false;
#if defined(FSOPT_MULTI_AVX2)
  // The vector loop needs the FSOPT_SIMD=2 opt-in (its gather loses to
  // the scalar probe loop on slow-gather cores), u16 sharer masks
  // (4-byte gather per lane), 32-bit-safe addresses and directory
  // indices, and at most four 8-lane groups.
  e.use_avx2_ = simd::batch_vector_enabled() &&
                std::is_same_v<MaskT, std::uint16_t> &&
                (e.kern_.level == simd::Level::kAVX2 ||
                 e.kern_.level == simd::Level::kAVX512) &&
                e.P8 <= 32 &&
                e.total_span <= std::numeric_limits<i32>::max() &&
                blocks_total <= static_cast<size_t>(
                                    std::numeric_limits<i32>::max());
#endif
  return eng;
}

}  // namespace

MultiCacheSim::MultiCacheSim(const std::vector<CacheParams>& params,
                             const AddressMap* attribution)
    : attribution_(attribution) {
  FSOPT_CHECK(!params.empty(), "multi-replay needs at least one plane");
  stats_.assign(params.size(), MissStats{});
  datum_stats_.resize(params.size());
  if (attribution_ != nullptr)
    for (auto& d : datum_stats_)
      d.assign(attribution_->ranges().size() + 1, MissStats{});

  // Planes join the shared engine when it can express them and they
  // agree on the shared dimensions (address space, machine size);
  // everything else gets a private CoherentCache.
  std::vector<size_t> engine;
  const CacheParams* first = nullptr;
  for (size_t i = 0; i < params.size(); ++i) {
    const CacheParams& p = params[i];
    if (plane_shareable(p) &&
        (first == nullptr || (p.total_bytes == first->total_bytes &&
                              p.nprocs == first->nprocs))) {
      if (first == nullptr) first = &params[i];
      engine.push_back(i);
    } else {
      fallback_.emplace_back(i, CoherentCache(p));
    }
  }
  if (engine.empty()) return;

  shared_ = first->nprocs <= 16
                ? build_engine<std::uint16_t>(params, engine, *first, stats_,
                                    datum_stats_, attribution_ != nullptr)
                : build_engine<u64>(params, engine, *first, stats_,
                                    datum_stats_, attribution_ != nullptr);
}

MultiCacheSim::~MultiCacheSim() = default;

void MultiCacheSim::on_batch(const MemRef* refs, size_t n) {
  if (shared_ != nullptr) shared_->run_batch(refs, n, attribution_);
  for (auto& [idx, cache] : fallback_) {
    for (size_t i = 0; i < n; ++i) {
      const MemRef& r = refs[i];
      AccessOutcome o =
          cache.access(r.proc, r.addr, r.size, r.type == RefType::kWrite);
      stats_[idx].add(o);
      if (attribution_ != nullptr) {
        int d = attribution_->index_of(r.addr);
        size_t slot = d >= 0 ? static_cast<size_t>(d)
                             : attribution_->ranges().size();
        datum_stats_[idx][slot].add(o);
      }
    }
  }
}

void MultiCacheSim::access_reported(const MemRef& ref, AccessOutcome* out) {
  // Engine planes: run the reference through the shared engine
  // unattributed — exactly the per-batch code, so it leaves the same
  // directory/word state behind as a counted reference — then read each
  // plane's outcome back off its stats delta (one reference moves
  // exactly one kind bucket plus the additive upgrade/invalidation
  // counts) and undo the tally.  This path only serves the rare
  // region-spanning pieces of the composed sharded replay, so the
  // snapshot copy is not a hot-loop cost.
  if (shared_ != nullptr) {
    const std::vector<MissStats> before = stats_;
    shared_->run_batch(&ref, 1, nullptr);
    for (size_t i = 0; i < stats_.size(); ++i) {
      const MissStats& a = before[i];
      MissStats& b = stats_[i];
      if (b.refs == a.refs) continue;  // fallback plane, handled below
      AccessOutcome o;
      if (b.hits > a.hits) o.kind = MissKind::kHit;
      else if (b.cold > a.cold) o.kind = MissKind::kCold;
      else if (b.replacement > a.replacement) o.kind = MissKind::kReplacement;
      else if (b.true_sharing > a.true_sharing) o.kind = MissKind::kTrueSharing;
      else o.kind = MissKind::kFalseSharing;
      o.upgrade = b.upgrades != a.upgrades;
      o.invalidated = static_cast<int>(b.invalidations - a.invalidations);
      out[i] = o;
      b = a;
    }
  }
  for (auto& [idx, cache] : fallback_)
    out[idx] = cache.access(ref.proc, ref.addr, ref.size,
                            ref.type == RefType::kWrite);
}

std::map<std::string, MissStats> MultiCacheSim::by_datum(
    size_t plane) const {
  if (attribution_ == nullptr) return {};
  return materialize_by_datum(*attribution_, datum_stats_[plane]);
}

void MultiCacheSim::set_conflict_collectors(
    const std::vector<ConflictCollector*>& colls) {
  FSOPT_CHECK(colls.size() == stats_.size(),
              "one collector slot per plane (nullptr to skip a plane)");
  if (shared_ != nullptr) shared_->set_collectors(colls);
  for (auto& [idx, cache] : fallback_)
    cache.set_conflict_collector(colls[idx]);
}

namespace {

/// Shared by both replay_multi overloads: fan the planes out over up to
/// min(threads, planes) workers, each replaying `source` (a callable
/// taking a TraceSink&) once into a MultiCacheSim over its contiguous
/// plane range.  Grouping never changes any plane's input sequence, so
/// results are bit-identical for every thread count.
template <typename ReplayFn>
MultiReplayResult replay_multi_impl(u64 trace_refs, ReplayFn&& replay,
                                    const std::vector<CacheParams>& params,
                                    const AddressMap* attribution,
                                    int threads,
                                    std::vector<ConflictGraph>* conflicts) {
  if (threads == 0) threads = default_thread_count();
  const size_t nplanes = params.size();
  FSOPT_CHECK(nplanes > 0, "multi-replay needs at least one plane");
  const size_t groups =
      std::min<size_t>(nplanes, threads < 1 ? 1 : static_cast<size_t>(threads));

  MultiReplayResult out;
  out.stats.resize(nplanes);
  out.by_datum.resize(nplanes);
  if (conflicts != nullptr) conflicts->assign(nplanes, ConflictGraph{});
  std::vector<std::pair<size_t, size_t>> range(groups);  // [first, last)
  for (size_t g = 0; g < groups; ++g) {
    range[g].first = g * nplanes / groups;
    range[g].second = (g + 1) * nplanes / groups;
  }
  parallel_for_each(static_cast<int>(groups), groups, [&](size_t g) {
    auto [first, last] = range[g];
    obs::Span span("replay", "multi");
    std::vector<CacheParams> sub(params.begin() +
                                     static_cast<std::ptrdiff_t>(first),
                                 params.begin() +
                                     static_cast<std::ptrdiff_t>(last));
    MultiCacheSim sim(sub, attribution);
    // Each plane belongs to exactly one group, so per-group collectors
    // are single-writer and the conflicts slots below are disjoint.
    std::vector<ConflictCollector> colls;
    if (conflicts != nullptr) {
      colls.resize(last - first);
      std::vector<ConflictCollector*> ptrs(last - first);
      for (size_t p = 0; p < ptrs.size(); ++p) ptrs[p] = &colls[p];
      sim.set_conflict_collectors(ptrs);
    }
    replay(sim);
    for (size_t p = first; p < last; ++p) {
      out.stats[p] = sim.stats(p - first);
      if (attribution != nullptr) out.by_datum[p] = sim.by_datum(p - first);
      if (conflicts != nullptr)
        (*conflicts)[p] = colls[p - first].graph(params[p].block_size);
    }
    if (span.active()) {
      span.arg("planes", static_cast<double>(last - first));
      span.arg("refs", static_cast<double>(trace_refs));
      span.arg("simd", simd::level_name(simd::active_level()));
      double sec = span.elapsed_seconds();
      if (sec > 0.0)
        span.arg("refs_per_sec", static_cast<double>(trace_refs) / sec);
    }
    // One span per plane carrying its block size and miss mix, so a
    // sweep's per-configuration behaviour reads straight off the trace
    // even though the planes were simulated in one walk.
    for (size_t p = first; p < last; ++p) {
      obs::Span plane("replay", "plane");
      if (!plane.active()) break;
      plane.arg("block", static_cast<double>(params[p].block_size));
      plane.arg("refs", static_cast<double>(out.stats[p].refs));
      plane.arg("cold", static_cast<double>(out.stats[p].cold));
      plane.arg("replacement", static_cast<double>(out.stats[p].replacement));
      plane.arg("true_sharing",
                static_cast<double>(out.stats[p].true_sharing));
      plane.arg("false_sharing",
                static_cast<double>(out.stats[p].false_sharing));
    }
  });
  return out;
}

}  // namespace

MultiReplayResult replay_multi(const EncodedTrace& trace,
                               const std::vector<CacheParams>& params,
                               const AddressMap* attribution, int threads,
                               std::vector<ConflictGraph>* conflicts) {
  // Encoded input goes through the pipelined replay: on a multi-core
  // host the varint decode of the next chunk overlaps the simulation
  // of the current one (and on a single core it degrades to the serial
  // replay, same stream either way).
  return replay_multi_impl(
      trace.size(), [&](TraceSink& sink) { trace.replay_pipelined(sink); },
      params, attribution, threads, conflicts);
}

MultiReplayResult replay_multi(const TraceBuffer& trace,
                               const std::vector<CacheParams>& params,
                               const AddressMap* attribution, int threads,
                               std::vector<ConflictGraph>* conflicts) {
  return replay_multi_impl(
      trace.size(), [&](TraceSink& sink) { trace.replay(sink); }, params,
      attribution, threads, conflicts);
}

MultiShardPlan multi_shard_plan(const std::vector<CacheParams>& params,
                                int requested) {
  MultiShardPlan plan;
  FSOPT_CHECK(!params.empty(), "multi-replay needs at least one plane");
  for (const CacheParams& p : params)
    plan.region_bytes = std::max(plan.region_bytes, p.block_size);
  // Exactness needs (a) every block to divide the region, so no plane's
  // block straddles two shards, and (b) K to divide every plane's
  // region count per cache, cache_bytes / region / assoc, so no plane's
  // LRU set receives blocks from two shards (set index = block mod a
  // power-of-two set count, and regions nest blocks).
  i64 bound = std::numeric_limits<i64>::max();
  for (const CacheParams& p : params) {
    const i64 assoc = std::max<i64>(p.associativity, 1);
    // Not composable (shards stays 1) unless the region nests this
    // plane's blocks AND its per-cache region count is whole, so the
    // set-purity divisibility below is exact arithmetic.
    if (p.block_size < 4 || plan.region_bytes % p.block_size != 0 ||
        (p.cache_bytes / assoc) % plan.region_bytes != 0)
      return plan;
    bound = std::min(bound, p.cache_bytes / plan.region_bytes / assoc);
  }
  if (bound < 1) return plan;
  i64 k = std::min<i64>(requested < 1 ? 1 : requested, bound);
  const auto divides_all = [&](i64 cand) {
    for (const CacheParams& p : params) {
      const i64 assoc = std::max<i64>(p.associativity, 1);
      if ((p.cache_bytes / plan.region_bytes / assoc) % cand != 0)
        return false;
    }
    return true;
  };
  while (k > 1 && !divides_all(k)) --k;
  plan.shards = static_cast<int>(k);
  return plan;
}

MultiReplayResult replay_multi_partitioned(
    const MultiTracePartition& mp, const std::vector<CacheParams>& params,
    const AddressMap* attribution, int threads) {
  const TracePartition& part = mp.part;
  const size_t nplanes = params.size();
  FSOPT_CHECK(nplanes > 0, "multi-replay needs at least one plane");
  FSOPT_CHECK(part.block_size == mp.region_bytes && part.shards >= 1,
              "malformed region partition");
  {
    // The partition must be at least as constrained as the plan for
    // this plane set: same region, and a shard count the plan's
    // divisibility rules admit.
    MultiShardPlan plan = multi_shard_plan(params, part.shards);
    FSOPT_CHECK(plan.region_bytes == mp.region_bytes,
                "partition region does not match the planes' block sizes");
    FSOPT_CHECK(plan.shards == part.shards,
                "partition shard count is not exact for these planes"
                " (use multi_shard_plan)");
  }
  if (threads == 0) threads = default_thread_count();

  // Per-shard job: one MultiCacheSim over ALL planes walks just the
  // shard's slice of the stream.  Normal references count directly
  // (their block, set, and word state is wholly shard-owned); split
  // pieces only record per-plane outcomes for reassembly.
  struct Job {
    std::vector<MissStats> stats;               // [plane]
    std::vector<std::vector<MissStats>> datum;  // [plane][slot]
    struct SplitOutcome {
      u32 ordinal = 0;
      u8 part = 0;
      std::vector<AccessOutcome> out;  // [plane]
    };
    std::vector<SplitOutcome> splits;
  };
  const size_t K = static_cast<size_t>(part.shards);
  std::vector<Job> jobs(K);
  const size_t batch = replay_batch_refs();
  parallel_for_each(threads, K, [&](size_t k) {
    obs::Span span("replay", "multi_shard");
    MultiCacheSim sim(params, attribution);
    const TraceShard& sh = part.shard[k];
    size_t si = 0;
    u64 pos = 0;
    while (true) {
      while (si < sh.splits.size() && sh.splits[si].pos == pos) {
        const TraceShard::SplitPart& sp = sh.splits[si++];
        Job::SplitOutcome so{sp.ordinal, sp.part,
                             std::vector<AccessOutcome>(nplanes)};
        sim.access_reported(sp.sub, so.out.data());
        jobs[k].splits.push_back(std::move(so));
      }
      if (pos == sh.refs.size()) break;
      // Contiguous run up to the next split position, fed in
      // replay()-sized sub-batches so a slice stays cache-resident
      // across the decode/simulate hand-off.
      const u64 next = si < sh.splits.size()
                           ? std::min<u64>(sh.splits[si].pos, sh.refs.size())
                           : sh.refs.size();
      for (u64 off = pos; off < next; off += batch)
        sim.on_batch(sh.refs.data() + off,
                     static_cast<size_t>(std::min<u64>(batch, next - off)));
      pos = next;
    }
    jobs[k].stats.resize(nplanes);
    jobs[k].datum.resize(nplanes);
    for (size_t p = 0; p < nplanes; ++p) {
      jobs[k].stats[p] = sim.stats(p);
      if (attribution != nullptr) jobs[k].datum[p] = sim.datum_stats(p);
    }
    if (span.active()) {
      const double refs =
          static_cast<double>(sh.refs.size() + sh.splits.size());
      span.arg("shard", static_cast<double>(k));
      span.arg("planes", static_cast<double>(nplanes));
      span.arg("refs", refs);
      const double sec = span.elapsed_seconds();
      if (sec > 0.0) span.arg("refs_per_sec", refs / sec);
    }
  });

  // Combine: the per-plane counters are additive across shards, and
  // split pieces reassemble per plane with the same severity/OR/sum
  // merge the unsharded simulator applies inline, counted once against
  // the origin reference's datum.
  MultiReplayResult out;
  out.stats.assign(nplanes, MissStats{});
  out.by_datum.resize(nplanes);
  const size_t slots =
      attribution != nullptr ? attribution->ranges().size() + 1 : 0;
  std::vector<std::vector<MissStats>> dense(
      nplanes, std::vector<MissStats>(slots));
  for (size_t k = 0; k < K; ++k) {
    for (size_t p = 0; p < nplanes; ++p) {
      out.stats[p].merge(jobs[k].stats[p]);
      for (size_t s = 0; s < slots; ++s)
        dense[p][s].merge(jobs[k].datum[p][s]);
    }
  }
  if (!part.split_origin.empty()) {
    // pieces[ordinal][plane][part], arriving in block order per shard.
    std::vector<std::vector<std::array<AccessOutcome, 4>>> pieces(
        part.split_origin.size(),
        std::vector<std::array<AccessOutcome, 4>>(nplanes));
    std::vector<u8> counts(part.split_origin.size(), 0);
    for (size_t k = 0; k < K; ++k) {
      for (const Job::SplitOutcome& so : jobs[k].splits) {
        FSOPT_CHECK(so.part < 4, "split reference with too many pieces");
        for (size_t p = 0; p < nplanes; ++p)
          pieces[so.ordinal][p][so.part] = so.out[p];
        ++counts[so.ordinal];
      }
    }
    for (size_t i = 0; i < pieces.size(); ++i) {
      int slot = -1;
      if (attribution != nullptr) {
        const int d = attribution->index_of(part.split_origin[i].addr);
        slot = d >= 0 ? d : static_cast<int>(slots) - 1;
      }
      for (size_t p = 0; p < nplanes; ++p) {
        const AccessOutcome o =
            combine_split_outcomes(pieces[i][p].data(), counts[i]);
        out.stats[p].add(o);
        if (slot >= 0) dense[p][static_cast<size_t>(slot)].add(o);
      }
    }
  }
  if (attribution != nullptr)
    for (size_t p = 0; p < nplanes; ++p)
      out.by_datum[p] = materialize_by_datum(*attribution, dense[p]);
  // One span per plane with its block size and combined miss mix, the
  // same per-configuration read the unsharded replay paths emit.
  for (size_t p = 0; p < nplanes; ++p) {
    obs::Span plane("replay", "plane");
    if (!plane.active()) break;
    plane.arg("block", static_cast<double>(params[p].block_size));
    plane.arg("refs", static_cast<double>(out.stats[p].refs));
    plane.arg("cold", static_cast<double>(out.stats[p].cold));
    plane.arg("replacement", static_cast<double>(out.stats[p].replacement));
    plane.arg("true_sharing", static_cast<double>(out.stats[p].true_sharing));
    plane.arg("false_sharing",
              static_cast<double>(out.stats[p].false_sharing));
  }
  return out;
}

}  // namespace fsopt
