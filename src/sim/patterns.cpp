#include "sim/patterns.h"

#include <algorithm>
#include <bit>

namespace fsopt {

const char* pattern_name(AccessPattern p) {
  switch (p) {
    case AccessPattern::kNone: return "none";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kPingPong: return "ping-pong";
    case AccessPattern::kMigratory: return "migratory";
    case AccessPattern::kProducerConsumer: return "producer-consumer";
    case AccessPattern::kReadShared: return "read-shared";
    case AccessPattern::kThrashingCapacity: return "thrashing(capacity)";
    case AccessPattern::kConflict: return "conflict";
  }
  return "?";
}

AccessPattern pattern_from_name(std::string_view name) {
  for (AccessPattern p :
       {AccessPattern::kNone, AccessPattern::kStrided, AccessPattern::kPingPong,
        AccessPattern::kMigratory, AccessPattern::kProducerConsumer,
        AccessPattern::kReadShared, AccessPattern::kThrashingCapacity,
        AccessPattern::kConflict}) {
    if (name == pattern_name(p)) return p;
  }
  throw InternalError("unknown access-pattern name '" + std::string(name) +
                      "'");
}

PatternCollector::PatternCollector(const AddressMap* map,
                                   const CacheParams& params)
    : map_(map), params_(params) {
  FSOPT_CHECK(params.nprocs >= 1 && params.nprocs <= 64,
              "PatternCollector: nprocs must be 1..64 (processor masks)");
  size_t nd = (map != nullptr ? map->ranges().size() : 0) + 1;
  datums_.resize(nd);
  procs_.resize(nd * static_cast<size_t>(params.nprocs));
}

/// The hot-path entry CacheSim calls through the forward declaration in
/// sim/cache.h — a free function so cache.h never needs this type
/// complete.
void pattern_collector_record(PatternCollector& p, const MemRef& ref,
                              const AccessOutcome& outcome) {
  p.record(ref, outcome);
}

void PatternCollector::record(const MemRef& ref,
                              const AccessOutcome& outcome) {
  ++tick_;
  int idx = map_ != nullptr ? map_->index_of(ref.addr) : -1;
  size_t d = idx >= 0 ? static_cast<size_t>(idx) : datums_.size() - 1;
  DatumState& ds = datums_[d];
  const bool is_write = ref.type == RefType::kWrite;
  const int proc = ref.proc;

  ds.stats.add(outcome);
  if (is_write) {
    ++ds.writes;
    ds.writers_mask |= u64{1} << proc;
  } else {
    ++ds.reads;
  }
  ds.readers_mask |= u64{1} << proc;

  if (ds.lo < 0 || ref.addr < ds.lo) ds.lo = ref.addr;
  i64 end = ref.addr + ref.size;
  if (end > ds.hi) ds.hi = end;

  // Reuse-distance sketch: log2 of the whole-trace gap since this datum
  // was last touched (a cheap proxy for stack distance — gaps larger
  // than the trace's working set imply eviction between touches).
  if (ds.seen) {
    u64 gap = tick_ - ds.last_tick;
    size_t b = gap <= 1 ? 0
                        : static_cast<size_t>(std::bit_width(gap - 1));
    if (b >= kReuseBuckets) b = kReuseBuckets - 1;
    ++ds.reuse[b];
  }
  ds.last_tick = tick_;
  ds.seen = true;

  // Writer-handoff chain: consecutive-write runs per owner and the
  // (from, to) transition matrix ping-pong detection reads.
  if (is_write) {
    if (ds.last_writer >= 0 && ds.last_writer != proc) {
      ++ds.handoffs;
      ++ds.transitions[{ds.last_writer, proc}];
      ds.run_sum += ds.run_len;
      ++ds.runs;
      ds.run_len = 0;
    }
    ds.last_writer = proc;
    ++ds.run_len;
  }

  // Per-processor stride histogram (bounded: top-8 distinct strides by
  // first appearance; the tail folds into `other` so a scan over an
  // irregular datum cannot grow memory without bound).
  ProcState& ps = procs_[d * static_cast<size_t>(params_.nprocs) +
                         static_cast<size_t>(proc)];
  if (ps.valid) {
    i64 stride = ref.addr - ps.last_addr;
    bool found = false;
    for (StrideEntry& e : ps.strides) {
      if (e.stride == stride) {
        ++e.count;
        found = true;
        break;
      }
    }
    if (!found) {
      if (ps.strides.size() < 8)
        ps.strides.push_back({stride, 1});
      else
        ++ps.stride_other;
    }
  }
  ps.last_addr = ref.addr;
  ps.valid = true;
}

std::vector<DatumPattern> PatternCollector::patterns(
    const PatternThresholds& t) const {
  std::vector<DatumPattern> out;
  for (size_t d = 0; d < datums_.size(); ++d) {
    const DatumState& ds = datums_[d];
    if (ds.stats.refs == 0) continue;

    DatumPattern p;
    p.name = d < datums_.size() - 1 && map_ != nullptr
                 ? map_->ranges()[d].name
                 : "<other>";
    p.reads = ds.reads;
    p.writes = ds.writes;
    p.readers = std::popcount(ds.readers_mask);
    p.writers = std::popcount(ds.writers_mask);
    p.handoffs = ds.handoffs;
    p.footprint = ds.lo >= 0 ? ds.hi - ds.lo : 0;
    p.reuse.assign(ds.reuse, ds.reuse + kReuseBuckets);
    p.stats = ds.stats;

    // Close the trailing ownership run so mean_run covers every write.
    u64 run_sum = ds.run_sum + ds.run_len;
    u64 runs = ds.runs + (ds.last_writer >= 0 ? 1 : 0);
    p.mean_run = runs > 0 ? static_cast<double>(run_sum) /
                                static_cast<double>(runs)
                          : 0.0;

    // Dominant writer pair: handoff weight between the heaviest unordered
    // pair over all handoffs.
    if (ds.handoffs > 0) {
      std::map<std::pair<int, int>, u64> undirected;
      for (const auto& [ft, n] : ds.transitions) {
        auto key = ft.first < ft.second
                       ? ft
                       : std::make_pair(ft.second, ft.first);
        undirected[key] += n;
      }
      u64 best = 0;
      for (const auto& [pair, n] : undirected) best = std::max(best, n);
      p.pingpong_share =
          static_cast<double>(best) / static_cast<double>(ds.handoffs);
    }

    // Dominant nonzero stride across processors.
    {
      std::map<i64, u64> merged;
      u64 total = 0;
      for (i64 q = 0; q < params_.nprocs; ++q) {
        const ProcState& ps =
            procs_[d * static_cast<size_t>(params_.nprocs) +
                   static_cast<size_t>(q)];
        for (const StrideEntry& e : ps.strides) {
          if (e.stride == 0) continue;  // re-touches are not a walk
          merged[e.stride] += e.count;
          total += e.count;
        }
        total += ps.stride_other;
      }
      u64 best = 0;
      for (const auto& [s, n] : merged) {
        if (n > best || (n == best && best > 0 &&
                         std::abs(s) < std::abs(p.dominant_stride))) {
          best = n;
          p.dominant_stride = s;
        }
      }
      p.stride_share = total > 0 ? static_cast<double>(best) /
                                       static_cast<double>(total)
                                 : 0.0;
    }

    // --- the decision ladder -------------------------------------------
    // Coherence shapes first (they explain sharing misses no other label
    // can), then the capacity/conflict pair, then streaming, then the
    // read-only fan-out, else nothing.
    const u64 misses = p.stats.misses();
    const u64 sharing = p.sharing_misses();
    const bool enough = p.stats.refs >= t.min_refs;
    const bool sharing_dominated =
        misses > 0 && static_cast<double>(sharing) >=
                          t.sharing_fraction * static_cast<double>(misses);
    const bool replacement_dominated =
        misses > 0 &&
        static_cast<double>(p.stats.replacement) >=
            t.replacement_fraction * static_cast<double>(misses);

    if (!enough) {
      p.label = AccessPattern::kNone;
    } else if (sharing_dominated && p.writers >= 2) {
      p.label = (p.pingpong_share >= t.pingpong_share &&
                 p.mean_run < t.run_cutoff)
                    ? AccessPattern::kPingPong
                    : AccessPattern::kMigratory;
    } else if (sharing_dominated && p.writers == 1 && p.readers >= 2) {
      p.label = AccessPattern::kProducerConsumer;
    } else if (replacement_dominated) {
      p.label = p.footprint > params_.cache_bytes
                    ? AccessPattern::kThrashingCapacity
                    : AccessPattern::kConflict;
    } else if (p.writes == 0 && p.readers >= 2) {
      // Read-only fan-out beats strided: read-shared data cannot falsely
      // share, which is the more useful headline even when the readers
      // walk it in a regular stride.
      p.label = AccessPattern::kReadShared;
    } else if (p.dominant_stride != 0 && p.stride_share >= t.strided_share) {
      p.label = AccessPattern::kStrided;
    } else {
      p.label = AccessPattern::kNone;
    }
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const DatumPattern& a, const DatumPattern& b) {
              if (a.stats.false_sharing != b.stats.false_sharing)
                return a.stats.false_sharing > b.stats.false_sharing;
              return a.name < b.name;
            });
  return out;
}

}  // namespace fsopt
