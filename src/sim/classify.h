// Word-granularity miss classification.
//
// We follow the Torrellas/Dubois-style at-miss-time test (§4): on a
// coherence miss by processor p, if the specific word(s) p references now
// were written by another processor since p last accessed the block, the
// miss is a *true sharing* miss (real communication); otherwise it is a
// *false sharing* miss (only the block, not the data, was shared).  A miss
// on a block p never touched is a cold miss; a re-miss with no intervening
// remote write is a replacement (capacity/conflict) miss.
//
// All classifier state is dense and per-block: word versions/writers and
// per-processor block snapshots live in flat arrays indexed by block
// number, sized once from `total_bytes` (no steady-state allocation, no
// hashing on the replay hot path).  Because every datum is per-block, the
// classifier can also be instantiated for one *shard* of the block space
// (ShardSpec): shard k of K owns exactly the blocks b with b % K == k, and
// a replay split that way is bit-identical to the unsharded replay (see
// DESIGN.md "Shard-parallel replay").
#pragma once

#include <vector>

#include "support/common.h"

namespace fsopt {

enum class MissKind : u8 {
  kHit,
  kCold,
  kReplacement,
  kTrueSharing,
  kFalseSharing,
};

const char* miss_kind_name(MissKind k);

/// One shard of a block-partitioned simulation: the shard owns every block
/// b with b % count == index.  The default ({0, 1}) is the whole machine.
struct ShardSpec {
  int index = 0;
  int count = 1;
};

class MissClassifier {
 public:
  /// `total_bytes` bounds the simulated address space; `block_size` is the
  /// coherence unit (a multiple of the 4-byte word); `nprocs` the number
  /// of processors.  With a non-trivial `shard`, only addresses whose
  /// block belongs to the shard may be passed in.
  MissClassifier(i64 nprocs, i64 block_size, i64 total_bytes,
                 ShardSpec shard = {});

  /// Classify a miss by `proc` on [addr, addr+size).  Must be called
  /// *before* note_access for the same reference.  The range must lie
  /// within one block (CoherentCache splits spanning references).
  MissKind classify_miss(int proc, i64 addr, i64 size) const;

  /// Record that `proc` accessed [addr, addr+size) (hit or miss); updates
  /// the per-word write versions when `is_write`.
  void note_access(int proc, i64 addr, i64 size, bool is_write);

  /// Per-word visibility tracking, used by the word-invalidate hardware
  /// ablation (valid bits per word rather than per block).
  void enable_word_tracking();
  /// True when every word of [addr, addr+size) is still valid for `proc`
  /// (not remotely written since `proc` last saw it).
  bool words_valid(int proc, i64 addr, i64 size) const;

  i64 block_of(i64 addr) const {
    return block_shift_ >= 0 ? addr >> block_shift_ : addr / block_size_;
  }

  // Pre-validated fast paths, used by CoherentCache on the replay hot
  // loop: the cache has already bounds- and ownership-checked the
  // reference and holds the shard-local block index plus the referenced
  // word-offset range [w0, w1] within the block, so re-deriving and
  // re-checking them here (divisions included) would double the work.
  // All other callers should use the validating addr-based methods above.

  MissKind classify_miss_at(int proc, i64 local_block, i64 w0,
                            i64 w1) const {
    u64 s = snapshot_[static_cast<size_t>(local_block * nprocs_ + proc)];
    if (s == 0) return MissKind::kCold;
    // block_ver_ holds the newest write version anywhere in the block, so
    // one load settles the common replacement-miss case (no intervening
    // write at all) without scanning the per-word array.
    if (block_ver_[static_cast<size_t>(local_block)] <= s)
      return MissKind::kReplacement;
    size_t wbase = static_cast<size_t>(local_block * words_per_block_);
    const u64* ws = word_state_.data() + wbase;
    // Packed word state: v >= (s+1) << kWriterBits ⟺ version(v) > s.
    u64 newer = (s + 1) << kWriterBits;
    u64 p = static_cast<u64>(proc);
    bool any_remote = false;
    if ((words_per_block_ & 7) == 0) {
      // Blocks of >= 8 words: scan branchlessly in groups of eight so the
      // compiler can vectorise the compares; only the per-group exit
      // branches.  The scan is the per-miss cost that grows with block
      // size, so this is what keeps large-block replay fast.
      for (i64 g = 0; g < words_per_block_ && !any_remote; g += 8) {
        u64 acc = 0;
        for (int j = 0; j < 8; ++j) {
          u64 v = ws[g + j];
          acc |= static_cast<u64>(v >= newer && (v & kWriterMask) != p);
        }
        any_remote = acc != 0;
      }
    } else {
      for (i64 w = 0; w < words_per_block_; ++w) {
        u64 v = ws[w];
        if (v >= newer && (v & kWriterMask) != p) {
          any_remote = true;
          break;
        }
      }
    }
    if (!any_remote) return MissKind::kReplacement;
    for (i64 w = w0; w <= w1; ++w) {
      u64 v = ws[w];
      if (v >= newer && (v & kWriterMask) != p)
        return MissKind::kTrueSharing;
    }
    return MissKind::kFalseSharing;
  }

  void note_access_at(int proc, i64 local_block, i64 w0, i64 w1,
                      bool is_write) {
    ++counter_;
    snapshot_[static_cast<size_t>(local_block * nprocs_ + proc)] =
        counter_;
    if (!is_write && !word_tracking_) return;
    if (is_write) block_ver_[static_cast<size_t>(local_block)] = counter_;
    size_t wbase = static_cast<size_t>(local_block * words_per_block_);
    u64 packed = (counter_ << kWriterBits) | static_cast<u64>(proc);
    for (i64 w = w0; w <= w1; ++w) {
      if (is_write) word_state_[wbase + static_cast<size_t>(w)] = packed;
      if (word_tracking_)
        word_seen_[static_cast<size_t>(proc) *
                       static_cast<size_t>(local_blocks_ *
                                           words_per_block_) +
                   wbase + static_cast<size_t>(w)] = counter_;
    }
  }

  /// Enumerate the foreign-newer words that made a miss false sharing:
  /// for a miss by `proc` on words [w0, w1] of `local_block` already
  /// classified kFalseSharing, calls fn(word_offset, writer_proc) for
  /// every word outside [w0, w1] written by another processor since
  /// `proc`'s snapshot.  Only called on false-sharing misses, so the scan
  /// cost is bounded by fs_misses * words_per_block.
  template <typename Fn>
  void collect_conflicts_at(int proc, i64 local_block, i64 w0, i64 w1,
                            Fn&& fn) const {
    u64 s = snapshot_[static_cast<size_t>(local_block * nprocs_ + proc)];
    const u64* ws =
        word_state_.data() + static_cast<size_t>(local_block * words_per_block_);
    u64 newer = (s + 1) << kWriterBits;
    u64 p = static_cast<u64>(proc);
    for (i64 w = 0; w < words_per_block_; ++w) {
      if (w >= w0 && w <= w1) continue;
      u64 v = ws[w];
      if (v >= newer && (v & kWriterMask) != p)
        fn(w, static_cast<int>(v & kWriterMask));
    }
  }

  bool words_valid_at(int proc, i64 local_block, i64 w0, i64 w1) const {
    size_t wbase = static_cast<size_t>(local_block * words_per_block_);
    const u64* seen = word_seen_.data() +
                      static_cast<size_t>(proc) *
                          static_cast<size_t>(local_blocks_ *
                                              words_per_block_);
    u64 p = static_cast<u64>(proc);
    for (i64 w = w0; w <= w1; ++w) {
      size_t idx = wbase + static_cast<size_t>(w);
      u64 v = word_state_[idx];
      if ((v >> kWriterBits) > seen[idx] && (v & kWriterMask) != p)
        return false;
    }
    return true;
  }

 private:
  /// Validates that [addr, addr+size) is in range, single-block, and owned
  /// by this shard; returns the block's index into the shard-local arrays.
  i64 local_block_of(i64 addr, i64 size) const;

  i64 nprocs_;
  i64 block_size_;
  int block_shift_;  // log2(block_size) when a power of two, else -1
  int shard_shift_;  // log2(shard.count) when a power of two, else -1
  ShardSpec shard_;
  i64 blocks_total_;   // blocks in the whole address space
  i64 local_blocks_;   // blocks owned by this shard
  i64 words_per_block_;
  u64 counter_ = 0;
  // One packed u64 per word, [local_block * words_per_block + offset]:
  // (write version << kWriterBits) | last writer.  A single load serves
  // both the version-newer-than-snapshot test and the writer identity, and
  // `v >= (s+1) << kWriterBits` is exactly `version(v) > s`.
  static constexpr int kWriterBits = 7;  // procs 0..63; 127 = never written
  static constexpr u64 kWriterMask = (u64{1} << kWriterBits) - 1;
  std::vector<u64> word_state_;
  // Newest write version per block (any writer) — classify_miss_at's
  // early-out for misses with no intervening write.
  std::vector<u64> block_ver_;
  // Flat per-processor block snapshots, block-major
  // [block * nprocs + proc]: counter value at the processor's last access;
  // 0 = never accessed.  Block-major keeps all processors' snapshots of
  // one block adjacent — the access pattern of actively shared blocks.
  std::vector<u64> snapshot_;
  // Per processor per word: version last observed (word tracking only),
  // [proc * local_words + word].
  bool word_tracking_ = false;
  std::vector<u64> word_seen_;
};

}  // namespace fsopt
