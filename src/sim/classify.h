// Word-granularity miss classification.
//
// We follow the Torrellas/Dubois-style at-miss-time test (§4): on a
// coherence miss by processor p, if the specific word(s) p references now
// were written by another processor since p last accessed the block, the
// miss is a *true sharing* miss (real communication); otherwise it is a
// *false sharing* miss (only the block, not the data, was shared).  A miss
// on a block p never touched is a cold miss; a re-miss with no intervening
// remote write is a replacement (capacity/conflict) miss.
#pragma once

#include <unordered_map>
#include <vector>

#include "support/common.h"

namespace fsopt {

enum class MissKind : u8 {
  kHit,
  kCold,
  kReplacement,
  kTrueSharing,
  kFalseSharing,
};

const char* miss_kind_name(MissKind k);

class MissClassifier {
 public:
  /// `total_bytes` bounds the simulated address space; `block_size` is the
  /// coherence unit; `nprocs` the number of processors.
  MissClassifier(i64 nprocs, i64 block_size, i64 total_bytes);

  /// Classify a miss by `proc` on [addr, addr+size).  Must be called
  /// *before* note_access for the same reference.
  MissKind classify_miss(int proc, i64 addr, i64 size) const;

  /// Record that `proc` accessed [addr, addr+size) (hit or miss); updates
  /// the per-word write versions when `is_write`.
  void note_access(int proc, i64 addr, i64 size, bool is_write);

  /// Per-word visibility tracking, used by the word-invalidate hardware
  /// ablation (valid bits per word rather than per block).
  void enable_word_tracking();
  /// True when every word of [addr, addr+size) is still valid for `proc`
  /// (not remotely written since `proc` last saw it).
  bool words_valid(int proc, i64 addr, i64 size) const;

 private:
  i64 block_of(i64 addr) const { return addr / block_size_; }

  i64 nprocs_;
  i64 block_size_;
  i64 words_;
  u64 counter_ = 0;
  std::vector<u64> word_version_;
  std::vector<u8> word_writer_;
  // Per processor: last global-counter value at which the processor
  // accessed each block (presence = ever accessed).
  std::vector<std::unordered_map<i64, u64>> snapshot_;
  // Per processor per word: version last observed (word tracking only).
  bool word_tracking_ = false;
  std::vector<std::vector<u64>> word_seen_;
};

}  // namespace fsopt
