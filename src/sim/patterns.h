// Access-pattern taxonomy: per-datum, per-processor online summarizers.
//
// The miss classes (sim/classify.h) say *that* a datum misses; this
// module says *why*, in the vocabulary of the cacheSight-style taxonomy
// the ROADMAP names: per-processor stride histograms, a reuse-distance
// sketch, and the writer-handoff chain are summarized online during
// replay and distilled into one label per datum —
//
//   strided            one stride dominates the per-processor address
//                      deltas (streaming/array walks);
//   ping-pong          ownership bounces between two (or a few) writers
//                      in short runs — the classic false-sharing shape;
//   migratory          ownership moves between writers in long runs
//                      (each processor works a while, then hands off);
//   producer-consumer  one writer, several readers, sharing misses on
//                      the read side;
//   read-shared        many readers, no writers: misses are cold only;
//   thrashing(capacity) replacement-dominated and the touched footprint
//                      exceeds the per-processor cache;
//   conflict           replacement-dominated but the footprint fits —
//                      set-associativity conflict, not capacity;
//   none               nothing diagnostic (or too few references).
//
// Collection follows the null-by-default-collector pattern of PR 8's
// ConflictCollector: a PatternCollector is attached to a CacheSim
// explicitly (CacheSim::set_pattern_collector) and defaults to absent
// everywhere, so the disabled replay path is untouched and MissStats
// stay bit-identical (tests/test_patterns.cpp enforces this).  The
// collector only ever *reads* the reference and its outcome — it never
// feeds anything back into the simulation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/cache.h"

namespace fsopt {

enum class AccessPattern : u8 {
  kNone,
  kStrided,
  kPingPong,
  kMigratory,
  kProducerConsumer,
  kReadShared,
  kThrashingCapacity,
  kConflict,
};

/// Taxonomy spelling ("strided", "ping-pong", ... "thrashing(capacity)").
const char* pattern_name(AccessPattern p);
/// Inverse of pattern_name; throws InternalError on unknown spellings.
AccessPattern pattern_from_name(std::string_view name);

/// Reuse-distance sketch resolution: log2 buckets of the gap (in
/// references to the whole trace) between consecutive touches of one
/// datum.  Bucket i counts gaps in (2^(i-1), 2^i]; bucket 0 counts
/// back-to-back touches.
inline constexpr size_t kReuseBuckets = 40;

/// One datum's summarized behavior plus the label distilled from it.
struct DatumPattern {
  std::string name;
  AccessPattern label = AccessPattern::kNone;

  // Evidence the label was derived from (serialized into the diagnosis
  // report so a reader can check the classifier's work).
  u64 reads = 0;
  u64 writes = 0;
  int readers = 0;              // distinct referencing processors
  int writers = 0;              // distinct writing processors
  i64 dominant_stride = 0;      // most common nonzero per-proc delta
  double stride_share = 0.0;    // its share of all nonzero deltas
  u64 handoffs = 0;             // writer-to-different-writer transitions
  double mean_run = 0.0;        // mean consecutive writes per owner
  double pingpong_share = 0.0;  // handoffs within the dominant writer pair
  i64 footprint = 0;            // touched span in bytes
  std::vector<u64> reuse;       // log2 reuse-gap sketch (kReuseBuckets)
  MissStats stats;              // outcomes attributed to this datum

  u64 sharing_misses() const {
    return stats.true_sharing + stats.false_sharing;
  }
};

/// Classification knobs.  Defaults are deliberately coarse — the point
/// of the taxonomy is a stable headline per datum, not a precise
/// percentage — and every threshold is exercised by test_patterns.cpp.
struct PatternThresholds {
  /// Sharing misses must be at least this share of all misses before a
  /// coherence label (ping-pong/migratory/producer-consumer) applies.
  double sharing_fraction = 0.25;
  /// Replacement misses must be at least this share of all misses before
  /// thrashing(capacity)/conflict applies.
  double replacement_fraction = 0.5;
  /// A nonzero stride must explain at least this share of the per-proc
  /// address deltas to call the datum strided.
  double strided_share = 0.6;
  /// The dominant writer pair must carry at least this share of all
  /// handoffs (and runs must be short) to call it ping-pong.
  double pingpong_share = 0.5;
  /// Ownership runs shorter than this mean are ping-pong, longer are
  /// migratory.
  double run_cutoff = 4.0;
  /// Data with fewer references than this stay unlabeled.
  u64 min_refs = 16;
};

/// Online summarizer fed one (reference, outcome) pair at a time from
/// CacheSim::process.  State is dense per (datum, processor) — sized once
/// from the AddressMap and the cache geometry, never grown on the hot
/// path except for the bounded stride tables and the handoff matrix.
class PatternCollector {
 public:
  /// `map` attributes addresses to datums (the same map the replay's
  /// attribution uses; the last slot is "<other>").  `params` supplies
  /// nprocs and cache_bytes for the capacity judgement.
  PatternCollector(const AddressMap* map, const CacheParams& params);

  /// Fold one simulated reference into the summaries.  Never mutates
  /// anything the simulation reads.
  void record(const MemRef& ref, const AccessOutcome& outcome);

  /// Distill every touched datum into its labeled summary, sorted by
  /// descending false-sharing misses (ties by name).
  std::vector<DatumPattern> patterns(const PatternThresholds& t = {}) const;

  u64 refs_seen() const { return tick_; }

 private:
  struct StrideEntry {
    i64 stride = 0;
    u64 count = 0;
  };
  /// Per (datum, processor): last address plus a bounded stride table
  /// (top-8 by first touch; the long tail folds into `other`).
  struct ProcState {
    i64 last_addr = 0;
    bool valid = false;
    std::vector<StrideEntry> strides;
    u64 stride_other = 0;
  };
  struct DatumState {
    u64 reads = 0;
    u64 writes = 0;
    u64 readers_mask = 0;
    u64 writers_mask = 0;
    int last_writer = -1;
    u64 handoffs = 0;
    u64 run_len = 0;   // current owner's consecutive-write run
    u64 run_sum = 0;   // closed runs, summed
    u64 runs = 0;      // closed runs, counted
    std::map<std::pair<int, int>, u64> transitions;  // (from, to) -> count
    i64 lo = -1, hi = -1;  // touched address span
    u64 last_tick = 0;
    bool seen = false;
    u64 reuse[kReuseBuckets] = {};
    MissStats stats;
  };

  const AddressMap* map_;
  CacheParams params_;
  u64 tick_ = 0;
  std::vector<DatumState> datums_;  // ranges + 1 ("<other>")
  std::vector<ProcState> procs_;    // (ranges + 1) * nprocs
};

}  // namespace fsopt
