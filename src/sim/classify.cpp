#include "sim/classify.h"

namespace fsopt {

const char* miss_kind_name(MissKind k) {
  switch (k) {
    case MissKind::kHit: return "hit";
    case MissKind::kCold: return "cold";
    case MissKind::kReplacement: return "replacement";
    case MissKind::kTrueSharing: return "true-sharing";
    case MissKind::kFalseSharing: return "false-sharing";
  }
  return "?";
}

MissClassifier::MissClassifier(i64 nprocs, i64 block_size, i64 total_bytes)
    : nprocs_(nprocs),
      block_size_(block_size),
      words_((total_bytes + 3) / 4),
      word_version_(static_cast<size_t>(words_), 0),
      word_writer_(static_cast<size_t>(words_), 255),
      snapshot_(static_cast<size_t>(nprocs)) {}

MissKind MissClassifier::classify_miss(int proc, i64 addr, i64 size) const {
  i64 block = block_of(addr);
  const auto& snap = snapshot_[static_cast<size_t>(proc)];
  auto it = snap.find(block);
  if (it == snap.end()) return MissKind::kCold;
  u64 s = it->second;

  i64 w0 = block * block_size_ / 4;
  i64 w1 = std::min(words_, w0 + block_size_ / 4);
  bool any_remote = false;
  for (i64 w = w0; w < w1; ++w) {
    if (word_version_[static_cast<size_t>(w)] > s &&
        word_writer_[static_cast<size_t>(w)] != proc) {
      any_remote = true;
      break;
    }
  }
  if (!any_remote) return MissKind::kReplacement;

  i64 r0 = addr / 4;
  i64 r1 = (addr + size - 1) / 4;
  for (i64 w = r0; w <= r1; ++w) {
    if (w < 0 || w >= words_) continue;
    if (word_version_[static_cast<size_t>(w)] > s &&
        word_writer_[static_cast<size_t>(w)] != proc)
      return MissKind::kTrueSharing;
  }
  return MissKind::kFalseSharing;
}

void MissClassifier::note_access(int proc, i64 addr, i64 size,
                                 bool is_write) {
  ++counter_;
  snapshot_[static_cast<size_t>(proc)][block_of(addr)] = counter_;
  i64 r0 = addr / 4;
  i64 r1 = (addr + size - 1) / 4;
  for (i64 w = r0; w <= r1; ++w) {
    if (w < 0 || w >= words_) continue;
    if (is_write) {
      word_version_[static_cast<size_t>(w)] = counter_;
      word_writer_[static_cast<size_t>(w)] = static_cast<u8>(proc);
    }
    if (word_tracking_)
      word_seen_[static_cast<size_t>(proc)][static_cast<size_t>(w)] =
          counter_;
  }
}

void MissClassifier::enable_word_tracking() {
  if (word_tracking_) return;
  word_tracking_ = true;
  word_seen_.assign(static_cast<size_t>(nprocs_),
                    std::vector<u64>(static_cast<size_t>(words_), 0));
}

bool MissClassifier::words_valid(int proc, i64 addr, i64 size) const {
  FSOPT_CHECK(word_tracking_, "word tracking not enabled");
  i64 r0 = addr / 4;
  i64 r1 = (addr + size - 1) / 4;
  for (i64 w = r0; w <= r1; ++w) {
    if (w < 0 || w >= words_) continue;
    if (word_version_[static_cast<size_t>(w)] >
            word_seen_[static_cast<size_t>(proc)][static_cast<size_t>(w)] &&
        word_writer_[static_cast<size_t>(w)] != proc)
      return false;
  }
  return true;
}

}  // namespace fsopt
