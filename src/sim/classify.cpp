#include "sim/classify.h"

namespace fsopt {

const char* miss_kind_name(MissKind k) {
  switch (k) {
    case MissKind::kHit: return "hit";
    case MissKind::kCold: return "cold";
    case MissKind::kReplacement: return "replacement";
    case MissKind::kTrueSharing: return "true-sharing";
    case MissKind::kFalseSharing: return "false-sharing";
  }
  return "?";
}

MissClassifier::MissClassifier(i64 nprocs, i64 block_size, i64 total_bytes,
                               ShardSpec shard)
    : nprocs_(nprocs),
      block_size_(block_size),
      block_shift_(pow2_shift(block_size)),
      shard_shift_(pow2_shift(shard.count)),
      shard_(shard),
      blocks_total_((std::max(total_bytes, block_size) + block_size - 1) /
                    block_size),
      local_blocks_(
          shard.index < blocks_total_
              ? (blocks_total_ - shard.index + shard.count - 1) / shard.count
              : 0),
      words_per_block_(block_size / 4) {
  FSOPT_CHECK(block_size_ >= 4 && block_size_ % 4 == 0,
              "block size must be a multiple of the 4-byte word");
  FSOPT_CHECK(shard_.count >= 1 && shard_.index >= 0 &&
                  shard_.index < shard_.count,
              "bad shard spec");
  FSOPT_CHECK(nprocs_ >= 1 && nprocs_ <= 64, "1..64 processors");
  // All state is sized up front: replay does zero steady-state allocation.
  size_t words = static_cast<size_t>(local_blocks_ * words_per_block_);
  word_state_.assign(words, kWriterMask);  // version 0, no writer yet
  block_ver_.assign(static_cast<size_t>(local_blocks_), 0);
  snapshot_.assign(static_cast<size_t>(nprocs_ * local_blocks_), 0);
}

i64 MissClassifier::local_block_of(i64 addr, i64 size) const {
  i64 block = block_of(addr);
  FSOPT_CHECK(addr >= 0 && size > 0 && block < blocks_total_ &&
                  block_of(addr + size - 1) == block,
              "classifier reference outside the simulated address space or"
              " spanning blocks (is total_bytes too small?)");
  FSOPT_CHECK(shard_.count == 1 ||
                  block % shard_.count == shard_.index,
              "reference routed to the wrong shard");
  return shard_shift_ >= 0 ? block >> shard_shift_ : block / shard_.count;
}

MissKind MissClassifier::classify_miss(int proc, i64 addr, i64 size) const {
  i64 lb = local_block_of(addr, size);
  i64 base = block_of(addr) * block_size_;
  return classify_miss_at(proc, lb, (addr - base) / 4,
                          (addr + size - 1 - base) / 4);
}

void MissClassifier::note_access(int proc, i64 addr, i64 size,
                                 bool is_write) {
  i64 lb = local_block_of(addr, size);
  i64 base = block_of(addr) * block_size_;
  note_access_at(proc, lb, (addr - base) / 4, (addr + size - 1 - base) / 4,
                 is_write);
}

void MissClassifier::enable_word_tracking() {
  if (word_tracking_) return;
  word_tracking_ = true;
  word_seen_.assign(static_cast<size_t>(nprocs_) *
                        static_cast<size_t>(local_blocks_ * words_per_block_),
                    0);
}

bool MissClassifier::words_valid(int proc, i64 addr, i64 size) const {
  FSOPT_CHECK(word_tracking_, "word tracking not enabled");
  i64 lb = local_block_of(addr, size);
  i64 base = block_of(addr) * block_size_;
  return words_valid_at(proc, lb, (addr - base) / 4,
                        (addr + size - 1 - base) / 4);
}

}  // namespace fsopt
