// Multiprocessor cache simulation (§4): one first-level cache per
// processor, write-invalidate (MSI) coherence, infinite second level.
// Misses are classified at word granularity by MissClassifier.
//
// All coherence state (directory entries, cache lines, classifier
// snapshots) is held in dense arrays indexed by block number — sized once
// from total_bytes, never rehashed or grown during replay — and every
// piece of it is strictly per-block (the directory, the classifier) or
// per-set (LRU stamps).  That makes the simulation block-partitionable: a
// CoherentCache built with ShardSpec{k, K} owns exactly the blocks b with
// b % K == k and replays them independently of the other shards (see
// trace/shard.h and DESIGN.md "Shard-parallel replay").
#pragma once

#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "sim/attribution.h"
#include "sim/classify.h"
#include "trace/trace.h"

namespace fsopt {

struct CacheParams {
  i64 nprocs = 8;
  i64 cache_bytes = 32 * 1024;  // per-processor L1 (the simulation study)
  i64 block_size = 128;
  i64 total_bytes = 0;  // simulated address-space size (bounds all refs)
  i64 associativity = 1;  // ways per set (LRU replacement)
  /// Dubois-style hardware ablation (§6 related work): invalidate at word
  /// rather than block granularity.  A remote write only invalidates the
  /// written words, so pure false-sharing misses disappear entirely — at
  /// the cost of per-word valid bits in hardware.
  bool word_invalidate = false;
};

struct AccessOutcome {
  MissKind kind = MissKind::kHit;
  bool upgrade = false;    // write hit on a Shared line (invalidation sent)
  int source_proc = -1;    // cache that services the miss (-1: memory/L2)
  int invalidated = 0;     // remote copies invalidated by this access
};

/// Merge the per-block outcomes of one split reference (in block order)
/// into the outcome reported for the whole reference: invalidations sum,
/// upgrades OR, the most severe kind wins, the last servicing cache is
/// reported.  CoherentCache::access applies this internally; the sharded
/// and multi-plane replays apply it when a split reference's blocks land
/// in different shards.
///
/// Severity follows the classifier's word-union semantics, not the raw
/// enum order: a reference misses with *true* sharing when ANY word it
/// touches was remotely written, so a (true-sharing, false-sharing) part
/// pair merges to true sharing — real communication happened, even
/// though one block's words were untouched.  (The enum orders false
/// sharing last; merging by enum value misclassified exactly this mixed
/// case.)
inline int split_kind_severity(MissKind k) {
  // kHit < kCold < kReplacement < kFalseSharing < kTrueSharing
  static constexpr int kRank[5] = {0, 1, 2, 4, 3};
  return kRank[static_cast<size_t>(k)];
}

inline AccessOutcome combine_split_outcomes(const AccessOutcome* parts,
                                            size_t n) {
  AccessOutcome worst;
  for (size_t i = 0; i < n; ++i) {
    const AccessOutcome& o = parts[i];
    worst.invalidated += o.invalidated;
    worst.upgrade = worst.upgrade || o.upgrade;
    if (split_kind_severity(o.kind) > split_kind_severity(worst.kind))
      worst.kind = o.kind;
    if (o.source_proc >= 0) worst.source_proc = o.source_proc;
  }
  return worst;
}

/// Per-processor caches + directory + classifier.  Used by the
/// trace-driven study (CacheSim), the sharded replay and the KSR timing
/// model.
class CoherentCache {
 public:
  /// With the default shard the cache simulates the whole machine.  With
  /// ShardSpec{k, K} it simulates only the blocks owned by shard k; K must
  /// divide the set count (see effective_shard_count) and references must
  /// be pre-split so each lies within one owned block.
  explicit CoherentCache(const CacheParams& p, ShardSpec shard = {});

  /// Simulate one reference; returns the outcome.  References spanning
  /// multiple blocks (8-byte data with 4-byte blocks) are split internally
  /// and the most severe outcome is reported.  References must lie inside
  /// the simulated address space (params.total_bytes).
  AccessOutcome access(int proc, i64 addr, i64 size, bool is_write);

  const CacheParams& params() const { return params_; }

  /// Attach (or detach with nullptr) a word-granularity conflict
  /// collector: every miss classified as false sharing additionally
  /// records its (writer-word, victim-word) edges.  Collection never
  /// changes any outcome or counter — with no collector the access path
  /// is untouched.
  void set_conflict_collector(ConflictCollector* c) { collector_ = c; }

  /// Cache sets per processor under `p` — the LRU conflict domains, and
  /// therefore the upper bound on (and divisor constraint for) shards.
  static i64 set_count(const CacheParams& p);

 private:
  enum class LineState : u8 { kInvalid, kShared, kModified };
  // Packed to 16 bytes so an associative set scan touches fewer cache
  // lines; block numbers fit i32 (checked against blocks_total_ in the
  // constructor).
  struct Line {
    u64 lru = 0;  // last-use stamp within the set
    i32 block = -1;
    LineState state = LineState::kInvalid;
  };
  struct DirEntry {
    u64 sharers = 0;  // bit per processor
    int owner = -1;   // processor holding the line Modified, or -1
  };

  AccessOutcome access_block(int proc, i64 addr, i64 size, bool is_write);
  i64 block_of(i64 addr) const {
    return block_shift_ >= 0 ? addr >> block_shift_ : addr / params_.block_size;
  }
  /// Shard-local index of an owned block (dense arrays are local-indexed).
  i64 local_block(i64 block) const {
    return shard_shift_ >= 0 ? block >> shard_shift_ : block / shard_.count;
  }
  i64 set_of(i64 local_block) const {
    return set_mask_ >= 0 ? (local_block & set_mask_) : local_block % sets_;
  }
  // Set-major layout: all processors' ways for one set sit adjacent, so
  // the coherence paths (invalidate_remote, Modified downgrade) that walk
  // the same set across processors stay within a couple of cache lines.
  i64 set_base(int proc, i64 set) const {
    return (set * params_.nprocs + proc) * params_.associativity;
  }
  /// The way holding `block` in `proc`'s set, or nullptr.
  Line* find_line(int proc, i64 block, i64 local_block);
  /// The way to (re)fill in `proc`'s set: a free way if present, else the
  /// least-recently-used way.
  Line& victim_line(int proc, i64 local_block);
  void drop_from_dir(i64 block, int proc);
  /// Invalidate remote copies on a write by `proc`; returns the count.
  /// Under word_invalidate, remote copies whose words were not written
  /// stay valid (the Dubois et al. hardware scheme).
  int invalidate_remote(int proc, i64 block, i64 local_block);

  CacheParams params_;
  ShardSpec shard_;
  i64 sets_;  // sets owned by this shard (global sets / shard count)
  int block_shift_;   // log2(block_size) when a power of two, else -1
  int shard_shift_;   // log2(shard.count) when a power of two, else -1
  i64 set_mask_;      // sets_ - 1 when a power of two, else -1
  i64 blocks_total_;  // blocks in the whole address space
  i64 total_span_;    // blocks_total_ * block_size (bounds check)
  /// Record the conflict edges behind a false-sharing classification:
  /// one edge per foreign-newer word, from that word (and its writer) to
  /// the first word the victim referenced.
  void note_conflicts(int proc, i64 lb, i64 base, i64 w0, i64 w1) {
    classifier_.collect_conflicts_at(proc, lb, w0, w1,
                                     [&](i64 w, int writer) {
                                       collector_->record(base + w * 4, writer,
                                                          base + w0 * 4, proc);
                                     });
  }

  std::vector<Line> lines_;    // [(set * nprocs + proc) * assoc + way]
  std::vector<DirEntry> dir_;  // [local_block]
  MissClassifier classifier_;
  ConflictCollector* collector_ = nullptr;
  u64 tick_ = 0;
};

// The per-reference path is defined inline here (not in cache.cpp) so the
// replay loop — CacheSim::process and the sharded replays — inlines the
// whole chain down to the flat-array loads within one translation unit.

inline CoherentCache::Line* CoherentCache::find_line(int proc, i64 block,
                                                     i64 local_block) {
  Line* way = lines_.data() +
              static_cast<size_t>(set_base(proc, set_of(local_block)));
  for (i64 w = 0; w < params_.associativity; ++w) {
    if (way[w].block == block && way[w].state != LineState::kInvalid)
      return &way[w];
  }
  return nullptr;
}

inline CoherentCache::Line& CoherentCache::victim_line(int proc,
                                                       i64 local_block) {
  Line* way = lines_.data() +
              static_cast<size_t>(set_base(proc, set_of(local_block)));
  Line* victim = nullptr;
  for (i64 w = 0; w < params_.associativity; ++w) {
    if (way[w].state == LineState::kInvalid) return way[w];  // free way
    if (victim == nullptr || way[w].lru < victim->lru) victim = &way[w];
  }
  return *victim;
}

inline void CoherentCache::drop_from_dir(i64 block, int proc) {
  DirEntry& d = dir_[static_cast<size_t>(local_block(block))];
  d.sharers &= ~(1ULL << proc);
  if (d.owner == proc) d.owner = -1;
  if (d.sharers == 0) d.owner = -1;
}

inline int CoherentCache::invalidate_remote(int proc, i64 block,
                                            i64 local_block) {
  if (params_.word_invalidate) return 0;  // sub-block hardware: no block
                                          // invalidations (§6, Dubois)
  int invalidated = 0;
  DirEntry& d = dir_[static_cast<size_t>(local_block)];
  u64 m = d.sharers & ~(1ULL << proc);
  while (m != 0) {  // visit only the actual sharers
    int q = std::countr_zero(m);
    m &= m - 1;
    Line* rl = find_line(q, block, local_block);
    if (rl != nullptr) {
      rl->state = LineState::kInvalid;
      ++invalidated;
    }
  }
  d.sharers = 1ULL << proc;
  d.owner = proc;
  return invalidated;
}

inline AccessOutcome CoherentCache::access_block(int proc, i64 addr,
                                                 i64 size, bool is_write) {
  // Derive the block geometry once and hand the shard-local index and
  // word-offset range to the classifier's pre-validated entry points —
  // access() has already bounds-checked the reference.
  i64 block = block_of(addr);
  FSOPT_CHECK(shard_.count == 1 || block % shard_.count == shard_.index,
              "reference routed to the wrong shard — the trace partitioner"
              " must route by block % shard count");
  i64 lb = local_block(block);
  i64 base = block_shift_ >= 0 ? block << block_shift_
                               : block * params_.block_size;
  i64 w0 = (addr - base) >> 2;
  i64 w1 = (addr + size - 1 - base) >> 2;
  Line* resident = find_line(proc, block, lb);
  ++tick_;

  // Every return site builds the outcome as one aggregate so the compiler
  // materialises it in the return registers instead of staging the fields
  // through the stack (byte stores followed by a wide reload stall).

  if (params_.word_invalidate) {
    // Sub-block invalidation ablation: a resident block still misses when
    // the specific words referenced were remotely written (their valid
    // bits are off); nothing else in the block is disturbed.
    if (resident != nullptr) {
      resident->lru = tick_;
      MissKind kind = classifier_.words_valid_at(proc, lb, w0, w1)
                          ? MissKind::kHit
                          : MissKind::kTrueSharing;  // word refetch
      classifier_.note_access_at(proc, lb, w0, w1, is_write);
      return {kind, false, -1, 0};
    }
    MissKind kind = classifier_.classify_miss_at(proc, lb, w0, w1);
    if (kind == MissKind::kFalseSharing && collector_ != nullptr)
      note_conflicts(proc, lb, base, w0, w1);
    Line& line = victim_line(proc, lb);
    if (line.block >= 0 && line.state != LineState::kInvalid)
      drop_from_dir(line.block, proc);
    DirEntry& d = dir_[static_cast<size_t>(lb)];
    d.sharers |= 1ULL << proc;
    line.block = static_cast<i32>(block);
    line.state = LineState::kShared;
    line.lru = tick_;
    classifier_.note_access_at(proc, lb, w0, w1, is_write);
    return {kind, false, -1, 0};
  }

  if (resident != nullptr &&
      (!is_write || resident->state == LineState::kModified)) {
    // Plain hit.
    resident->lru = tick_;
    classifier_.note_access_at(proc, lb, w0, w1, is_write);
    return {MissKind::kHit, false, -1, 0};
  }

  if (resident != nullptr && is_write &&
      resident->state == LineState::kShared) {
    // Upgrade: invalidate all other copies; no data transfer.
    int inv = invalidate_remote(proc, block, lb);
    resident->state = LineState::kModified;
    resident->lru = tick_;
    classifier_.note_access_at(proc, lb, w0, w1, is_write);
    return {MissKind::kHit, true, -1, inv};
  }

  // Miss.
  MissKind kind = classifier_.classify_miss_at(proc, lb, w0, w1);
  if (kind == MissKind::kFalseSharing && collector_ != nullptr)
    note_conflicts(proc, lb, base, w0, w1);

  Line& line = victim_line(proc, lb);
  if (line.block >= 0 && line.state != LineState::kInvalid)
    drop_from_dir(line.block, proc);

  DirEntry& d = dir_[static_cast<size_t>(lb)];
  int src = d.owner >= 0 && d.owner != proc ? d.owner : -1;
  int inv = 0;

  if (is_write) {
    inv = invalidate_remote(proc, block, lb);
    DirEntry& d2 = dir_[static_cast<size_t>(lb)];
    d2.sharers = 1ULL << proc;
    d2.owner = proc;
    line.block = static_cast<i32>(block);
    line.state = LineState::kModified;
  } else {
    if (d.owner >= 0 && d.owner != proc) {
      // Downgrade the remote Modified copy to Shared.
      Line* rl = find_line(d.owner, block, lb);
      if (rl != nullptr && rl->state == LineState::kModified)
        rl->state = LineState::kShared;
      d.owner = -1;
    }
    d.sharers |= 1ULL << proc;
    line.block = static_cast<i32>(block);
    line.state = LineState::kShared;
  }
  line.lru = tick_;
  classifier_.note_access_at(proc, lb, w0, w1, is_write);
  return {kind, false, src, inv};
}

inline AccessOutcome CoherentCache::access(int proc, i64 addr, i64 size,
                                           bool is_write) {
  FSOPT_CHECK(addr >= 0 && size > 0 && addr + size <= total_span_,
              "reference outside the simulated address space — "
              "total_bytes does not cover the workload");
  i64 first_block = block_of(addr);
  i64 last_block = block_of(addr + size - 1);
  if (first_block == last_block)
    return access_block(proc, addr, size, is_write);
  // Split across blocks (only possible for 8-byte data with tiny blocks).
  // A sharded cache owns only every shard_.count-th block, so spanning
  // references must be pre-split by the trace partitioner.
  FSOPT_CHECK(shard_.count == 1,
              "spanning reference reached a sharded cache — the trace"
              " partitioner must split it");
  AccessOutcome parts[4];
  size_t n = 0;
  for (i64 b = first_block; b <= last_block; ++b) {
    i64 lo = std::max(addr, b * params_.block_size);
    i64 hi = std::min(addr + size, (b + 1) * params_.block_size);
    FSOPT_CHECK(n < 4, "reference spans too many blocks");
    parts[n++] = access_block(proc, lo, hi - lo, is_write);
  }
  return combine_split_outcomes(parts, n);
}

/// Largest shard count <= `requested` that divides the set count of `p`
/// (so every LRU conflict domain stays within one shard).  At least 1.
int effective_shard_count(int requested, const CacheParams& p);

/// Aggregate statistics for one simulated cache configuration.
struct MissStats {
  u64 refs = 0;
  u64 hits = 0;
  u64 cold = 0;
  u64 replacement = 0;
  u64 true_sharing = 0;
  u64 false_sharing = 0;
  u64 upgrades = 0;
  u64 invalidations = 0;

  u64 misses() const { return cold + replacement + true_sharing + false_sharing; }
  u64 other_misses() const { return cold + replacement + true_sharing; }
  double miss_rate() const {
    return refs > 0 ? static_cast<double>(misses()) / static_cast<double>(refs)
                    : 0.0;
  }
  double false_sharing_rate() const {
    return refs > 0 ? static_cast<double>(false_sharing) /
                          static_cast<double>(refs)
                    : 0.0;
  }
  void add(const AccessOutcome& o) {
    ++refs;
    invalidations += static_cast<u64>(o.invalidated);
    if (o.upgrade) ++upgrades;
    switch (o.kind) {
      case MissKind::kHit: ++hits; break;
      case MissKind::kCold: ++cold; break;
      case MissKind::kReplacement: ++replacement; break;
      case MissKind::kTrueSharing: ++true_sharing; break;
      case MissKind::kFalseSharing: ++false_sharing; break;
    }
  }
  /// Accumulate another configuration's counters (all fields are additive),
  /// so stats from independent replays / trace shards can be combined.
  void merge(const MissStats& other);
  bool operator==(const MissStats& other) const = default;
};

/// Merge per-datum attribution maps from independent replays.
void merge_by_datum(std::map<std::string, MissStats>& into,
                    const std::map<std::string, MissStats>& from);

/// Convert dense per-datum stats (AddressMap range order plus a trailing
/// slot for addresses outside every range) into the string-keyed map the
/// reports consume.  Zero-ref slots are skipped; duplicate names merge.
std::map<std::string, MissStats> materialize_by_datum(
    const AddressMap& map, const std::vector<MissStats>& dense);

/// Access-pattern summarizer (sim/patterns.h).  Forward-declared with a
/// free-function record hook so the per-reference path below can feed an
/// attached collector without this header depending on patterns.h
/// (patterns.h includes cache.h for AccessOutcome/MissStats).
class PatternCollector;
void pattern_collector_record(PatternCollector& p, const MemRef& ref,
                              const AccessOutcome& outcome);

/// TraceSink wrapper: feed references, read statistics — optionally
/// attributed per data structure through an AddressMap.  Attribution
/// accumulates into a dense per-range vector on the hot path; the
/// string-keyed map is materialized only when asked for.
class CacheSim : public TraceSink {
 public:
  explicit CacheSim(const CacheParams& p,
                    const AddressMap* attribution = nullptr)
      : cache_(p), attribution_(attribution) {
    if (attribution_ != nullptr)
      datum_stats_.assign(attribution_->ranges().size() + 1, MissStats{});
  }
  void on_ref(const MemRef& ref) override { process(ref); }
#if defined(__GNUC__)
  // Inline the whole access chain into the replay loop regardless of the
  // enclosing translation unit's size heuristics — the per-reference path
  // is the entire cost of a replay.
  __attribute__((flatten))
#endif
  void
  on_batch(const MemRef* refs, size_t n) override {
    if (attribution_ != nullptr || pattern_ != nullptr) {
      for (size_t i = 0; i < n; ++i) process(refs[i]);
      return;
    }
    // Unattributed replay classifies each outcome into a small local
    // histogram and folds it into the stats once per batch — the per-kind
    // counter update becomes an indexed increment instead of a branchy
    // switch in the per-reference loop.
    u64 kinds[5] = {};
    u64 invalidations = 0, upgrades = 0;
    for (size_t i = 0; i < n; ++i) {
      const MemRef& r = refs[i];
      AccessOutcome o =
          cache_.access(r.proc, r.addr, r.size, r.type == RefType::kWrite);
      ++kinds[static_cast<size_t>(o.kind)];
      invalidations += static_cast<u64>(o.invalidated);
      upgrades += o.upgrade ? 1 : 0;
    }
    stats_.refs += n;
    stats_.hits += kinds[static_cast<size_t>(MissKind::kHit)];
    stats_.cold += kinds[static_cast<size_t>(MissKind::kCold)];
    stats_.replacement += kinds[static_cast<size_t>(MissKind::kReplacement)];
    stats_.true_sharing +=
        kinds[static_cast<size_t>(MissKind::kTrueSharing)];
    stats_.false_sharing +=
        kinds[static_cast<size_t>(MissKind::kFalseSharing)];
    stats_.invalidations += invalidations;
    stats_.upgrades += upgrades;
  }
  const MissStats& stats() const { return stats_; }
  const CacheParams& params() const { return cache_.params(); }
  /// Forward a conflict collector to the underlying cache (see
  /// CoherentCache::set_conflict_collector).
  void set_conflict_collector(ConflictCollector* c) {
    cache_.set_conflict_collector(c);
  }
  /// Attach an access-pattern summarizer (sim/patterns.h).  Null by
  /// default — the detached replay path is bit-identical with or without
  /// this feature compiled in; attaching routes batches through the
  /// per-reference path so every outcome is observed.
  void set_pattern_collector(PatternCollector* p) { pattern_ = p; }
  /// Per-datum stats, string-keyed (empty unless an AddressMap was
  /// supplied).  Built from the dense counters on each call.
  std::map<std::string, MissStats> by_datum() const;
  /// The dense per-datum counters (AddressMap order; last slot is
  /// "<other>").  Empty unless an AddressMap was supplied.
  const std::vector<MissStats>& datum_stats() const { return datum_stats_; }

 private:
  void process(const MemRef& ref) {
    AccessOutcome o = cache_.access(ref.proc, ref.addr, ref.size,
                                    ref.type == RefType::kWrite);
    stats_.add(o);
    if (attribution_ != nullptr) {
      int i = attribution_->index_of(ref.addr);
      datum_stats_[i >= 0 ? static_cast<size_t>(i)
                          : datum_stats_.size() - 1]
          .add(o);
    }
    if (pattern_ != nullptr) pattern_collector_record(*pattern_, ref, o);
  }

  CoherentCache cache_;
  const AddressMap* attribution_;
  PatternCollector* pattern_ = nullptr;
  MissStats stats_;
  std::vector<MissStats> datum_stats_;
};

}  // namespace fsopt
