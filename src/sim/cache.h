// Multiprocessor cache simulation (§4): one first-level cache per
// processor, write-invalidate (MSI) coherence, infinite second level.
// Misses are classified at word granularity by MissClassifier.
#pragma once

#include <array>
#include <map>
#include <unordered_map>

#include "sim/attribution.h"
#include "sim/classify.h"
#include "trace/trace.h"

namespace fsopt {

struct CacheParams {
  i64 nprocs = 8;
  i64 cache_bytes = 32 * 1024;  // per-processor L1 (the simulation study)
  i64 block_size = 128;
  i64 total_bytes = 0;  // simulated address-space size (for the classifier)
  i64 associativity = 1;  // ways per set (LRU replacement)
  /// Dubois-style hardware ablation (§6 related work): invalidate at word
  /// rather than block granularity.  A remote write only invalidates the
  /// written words, so pure false-sharing misses disappear entirely — at
  /// the cost of per-word valid bits in hardware.
  bool word_invalidate = false;
};

struct AccessOutcome {
  MissKind kind = MissKind::kHit;
  bool upgrade = false;    // write hit on a Shared line (invalidation sent)
  int source_proc = -1;    // cache that services the miss (-1: memory/L2)
  int invalidated = 0;     // remote copies invalidated by this access
};

/// Per-processor caches + directory + classifier.  Used by both the
/// trace-driven study (CacheSim) and the KSR timing model.
class CoherentCache {
 public:
  explicit CoherentCache(const CacheParams& p);

  /// Simulate one reference; returns the outcome.  References spanning
  /// multiple blocks (8-byte data with 4-byte blocks) are split internally
  /// and the most severe outcome is reported.
  AccessOutcome access(int proc, i64 addr, i64 size, bool is_write);

  const CacheParams& params() const { return params_; }

 private:
  enum class LineState : u8 { kInvalid, kShared, kModified };
  struct Line {
    i64 block = -1;
    LineState state = LineState::kInvalid;
    u64 lru = 0;  // last-use stamp within the set
  };
  struct DirEntry {
    u64 sharers = 0;  // bit per processor
    int owner = -1;   // processor holding the line Modified, or -1
  };

  AccessOutcome access_block(int proc, i64 addr, i64 size, bool is_write);
  /// The way holding `block` in `proc`'s set, or nullptr.
  Line* find_line(int proc, i64 block);
  /// The way to (re)fill for `block`: the resident way if present, else
  /// the least-recently-used way of the set.
  Line& victim_line(int proc, i64 block);
  void drop_from_dir(i64 block, int proc);
  /// Invalidate remote copies on a write by `proc`; returns the count.
  /// Under word_invalidate, remote copies whose words were not written
  /// stay valid (the Dubois et al. hardware scheme).
  int invalidate_remote(int proc, i64 block);

  CacheParams params_;
  i64 sets_;
  std::vector<std::vector<Line>> caches_;  // [proc][set * assoc + way]
  std::unordered_map<i64, DirEntry> dir_;
  MissClassifier classifier_;
  u64 tick_ = 0;
};

/// Aggregate statistics for one simulated cache configuration.
struct MissStats {
  u64 refs = 0;
  u64 hits = 0;
  u64 cold = 0;
  u64 replacement = 0;
  u64 true_sharing = 0;
  u64 false_sharing = 0;
  u64 upgrades = 0;
  u64 invalidations = 0;

  u64 misses() const { return cold + replacement + true_sharing + false_sharing; }
  u64 other_misses() const { return cold + replacement + true_sharing; }
  double miss_rate() const {
    return refs > 0 ? static_cast<double>(misses()) / static_cast<double>(refs)
                    : 0.0;
  }
  double false_sharing_rate() const {
    return refs > 0 ? static_cast<double>(false_sharing) /
                          static_cast<double>(refs)
                    : 0.0;
  }
  void add(const AccessOutcome& o);
  /// Accumulate another configuration's counters (all fields are additive),
  /// so stats from independent replays / trace shards can be combined.
  void merge(const MissStats& other);
  bool operator==(const MissStats& other) const = default;
};

/// Merge per-datum attribution maps from independent replays.
void merge_by_datum(std::map<std::string, MissStats>& into,
                    const std::map<std::string, MissStats>& from);

/// TraceSink wrapper: feed references, read statistics — optionally
/// attributed per data structure through an AddressMap.
class CacheSim : public TraceSink {
 public:
  explicit CacheSim(const CacheParams& p, const AddressMap* attribution =
                                              nullptr)
      : cache_(p), attribution_(attribution) {}
  void on_ref(const MemRef& ref) override { process(ref); }
  void on_batch(const MemRef* refs, size_t n) override {
    for (size_t i = 0; i < n; ++i) process(refs[i]);
  }
  const MissStats& stats() const { return stats_; }
  const CacheParams& params() const { return cache_.params(); }
  /// Per-datum stats (empty unless an AddressMap was supplied).
  const std::map<std::string, MissStats>& by_datum() const {
    return by_datum_;
  }

 private:
  void process(const MemRef& ref) {
    AccessOutcome o = cache_.access(ref.proc, ref.addr, ref.size,
                                    ref.type == RefType::kWrite);
    stats_.add(o);
    if (attribution_ != nullptr) {
      int i = attribution_->index_of(ref.addr);
      by_datum_[i >= 0 ? attribution_->name_of(i) : "<other>"].add(o);
    }
  }

  CoherentCache cache_;
  const AddressMap* attribution_;
  MissStats stats_;
  std::map<std::string, MissStats> by_datum_;
};

}  // namespace fsopt
