// Memory-system timing interface for the execution-driven interpreter.
//
// In trace mode a UniformMemory gives every reference the same cost and
// timing does not matter; in KSR mode (sim/ksr.h) each reference goes
// through a coherent cache and pays hit/miss/ring-contention latencies.
#pragma once

#include "support/common.h"

namespace fsopt {

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  /// Perform one reference by `proc` at local time `now`; returns its
  /// latency in cycles.
  virtual i64 access(int proc, i64 addr, i64 size, bool is_write,
                     i64 now) = 0;
};

/// Every reference costs the same (trace-generation mode).
class UniformMemory : public MemorySystem {
 public:
  explicit UniformMemory(i64 cycles = 2) : cycles_(cycles) {}
  i64 access(int, i64, i64, bool, i64) override { return cycles_; }

 private:
  i64 cycles_;
};

}  // namespace fsopt
