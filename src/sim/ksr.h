// Execution-driven timing model of a KSR2-like machine (§4).
//
// Each processor has a 256 KB first-level data cache with 128-byte
// coherence units.  A miss is serviced by another processor's cache:
// 175 cycles when the servicing processor is on the same 32-processor
// ring, 600 cycles across rings.  The ring is a pipelined resource with
// finite bandwidth: each coherence transaction consumes `ring_occupancy`
// cycles of ring capacity, modeled with a bucketed calendar so that
// requests arriving out of (simulated-time) order are handled sanely.
// Memory contention therefore grows with the aggregate miss rate — the
// mechanism that makes falsely-shared programs stop scaling (§5).
#pragma once

#include <unordered_map>

#include "sim/cache.h"
#include "sim/memsys.h"

namespace fsopt {

/// Finite-bandwidth resource: time is divided into fixed windows; each
/// window can host `window` cycles worth of transactions.  acquire()
/// books `occupancy` cycles in the first window at or after `now` with
/// room, returning the queueing delay.  Requests in the past of already
/// booked windows use those earlier windows — no future-penalty, which
/// keeps the event-driven simulation stable when processor clocks skew.
class BandwidthCalendar {
 public:
  explicit BandwidthCalendar(i64 window = 256) : window_(window) {}

  i64 acquire(i64 now, i64 occupancy);
  i64 booked_cycles() const { return booked_; }

 private:
  i64 window_;
  i64 booked_ = 0;
  std::unordered_map<i64, i64> used_;  // bucket -> cycles consumed
};

struct KsrParams {
  i64 nprocs = 8;
  i64 cache_bytes = 256 * 1024;  // data half of the 512 KB L1
  i64 block_size = 128;
  i64 total_bytes = 0;
  i64 hit_cycles = 2;
  i64 local_miss_cycles = 175;
  i64 remote_miss_cycles = 600;
  i64 upgrade_cycles = 90;  // invalidation round trip for write-to-shared
  i64 ring_occupancy = 24;  // ring slot cycles consumed per transaction
  i64 ring_size = 32;       // processors per ring
};

struct KsrStats {
  u64 refs = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 upgrades = 0;
  u64 remote_misses = 0;  // cross-ring
  i64 stall_cycles = 0;   // total latency beyond hit time
  i64 queue_cycles = 0;   // portion of stalls spent waiting for the ring
  MissStats classified;   // word-level classification of the misses

  /// Accumulate another run's counters (for combining independent
  /// timing jobs — e.g. per-workload aggregates in the harness).
  void merge(const KsrStats& other);
};

class KsrMemorySystem : public MemorySystem {
 public:
  explicit KsrMemorySystem(const KsrParams& p);

  i64 access(int proc, i64 addr, i64 size, bool is_write, i64 now) override;

  const KsrStats& stats() const { return stats_; }
  const KsrParams& params() const { return params_; }

 private:
  int ring_of(int proc) const {
    return static_cast<int>(proc / params_.ring_size);
  }

  KsrParams params_;
  CoherentCache cache_;
  std::vector<BandwidthCalendar> rings_;
  BandwidthCalendar link_;  // inter-ring link
  KsrStats stats_;
};

}  // namespace fsopt
