#include "sim/cache.h"

namespace fsopt {

void MissStats::merge(const MissStats& other) {
  refs += other.refs;
  hits += other.hits;
  cold += other.cold;
  replacement += other.replacement;
  true_sharing += other.true_sharing;
  false_sharing += other.false_sharing;
  upgrades += other.upgrades;
  invalidations += other.invalidations;
}

void merge_by_datum(std::map<std::string, MissStats>& into,
                    const std::map<std::string, MissStats>& from) {
  for (const auto& [name, stats] : from) into[name].merge(stats);
}

void MissStats::add(const AccessOutcome& o) {
  ++refs;
  invalidations += static_cast<u64>(o.invalidated);
  if (o.upgrade) ++upgrades;
  switch (o.kind) {
    case MissKind::kHit: ++hits; break;
    case MissKind::kCold: ++cold; break;
    case MissKind::kReplacement: ++replacement; break;
    case MissKind::kTrueSharing: ++true_sharing; break;
    case MissKind::kFalseSharing: ++false_sharing; break;
  }
}

CoherentCache::CoherentCache(const CacheParams& p)
    : params_(p),
      sets_(p.cache_bytes / p.block_size / std::max<i64>(p.associativity, 1)),
      classifier_(p.nprocs, p.block_size,
                  std::max<i64>(p.total_bytes, p.block_size)) {
  FSOPT_CHECK(params_.associativity >= 1, "associativity must be >= 1");
  FSOPT_CHECK(sets_ > 0, "cache must hold at least one set");
  FSOPT_CHECK(p.nprocs >= 1 && p.nprocs <= 64, "1..64 processors");
  caches_.assign(
      static_cast<size_t>(p.nprocs),
      std::vector<Line>(static_cast<size_t>(sets_ * p.associativity)));
  if (p.word_invalidate) classifier_.enable_word_tracking();
}

CoherentCache::Line* CoherentCache::find_line(int proc, i64 block) {
  i64 set = block % sets_;
  auto& ways = caches_[static_cast<size_t>(proc)];
  for (i64 w = 0; w < params_.associativity; ++w) {
    Line& l = ways[static_cast<size_t>(set * params_.associativity + w)];
    if (l.block == block && l.state != LineState::kInvalid) return &l;
  }
  return nullptr;
}

CoherentCache::Line& CoherentCache::victim_line(int proc, i64 block) {
  i64 set = block % sets_;
  auto& ways = caches_[static_cast<size_t>(proc)];
  Line* victim = nullptr;
  for (i64 w = 0; w < params_.associativity; ++w) {
    Line& l = ways[static_cast<size_t>(set * params_.associativity + w)];
    if (l.state == LineState::kInvalid) return l;  // free way
    if (victim == nullptr || l.lru < victim->lru) victim = &l;
  }
  return *victim;
}

void CoherentCache::drop_from_dir(i64 block, int proc) {
  auto it = dir_.find(block);
  if (it == dir_.end()) return;
  it->second.sharers &= ~(1ULL << proc);
  if (it->second.owner == proc) it->second.owner = -1;
  if (it->second.sharers == 0) dir_.erase(it);
}

int CoherentCache::invalidate_remote(int proc, i64 block) {
  if (params_.word_invalidate) return 0;  // sub-block hardware: no block
                                          // invalidations (§6, Dubois)
  int invalidated = 0;
  DirEntry& d = dir_[block];
  for (i64 q = 0; q < params_.nprocs; ++q) {
    if (q == proc || (d.sharers >> q & 1) == 0) continue;
    Line* rl = find_line(static_cast<int>(q), block);
    if (rl != nullptr) {
      rl->state = LineState::kInvalid;
      ++invalidated;
    }
  }
  d.sharers = 1ULL << proc;
  d.owner = proc;
  return invalidated;
}

AccessOutcome CoherentCache::access(int proc, i64 addr, i64 size,
                                    bool is_write) {
  i64 first_block = addr / params_.block_size;
  i64 last_block = (addr + size - 1) / params_.block_size;
  if (first_block == last_block)
    return access_block(proc, addr, size, is_write);
  // Split across blocks (only possible for 8-byte data with tiny blocks).
  AccessOutcome worst;
  for (i64 b = first_block; b <= last_block; ++b) {
    i64 lo = std::max(addr, b * params_.block_size);
    i64 hi = std::min(addr + size, (b + 1) * params_.block_size);
    AccessOutcome o = access_block(proc, lo, hi - lo, is_write);
    worst.invalidated += o.invalidated;
    worst.upgrade = worst.upgrade || o.upgrade;
    if (static_cast<int>(o.kind) > static_cast<int>(worst.kind))
      worst.kind = o.kind;
    if (o.source_proc >= 0) worst.source_proc = o.source_proc;
  }
  return worst;
}

AccessOutcome CoherentCache::access_block(int proc, i64 addr, i64 size,
                                          bool is_write) {
  i64 block = addr / params_.block_size;
  Line* resident = find_line(proc, block);
  ++tick_;

  AccessOutcome out;

  if (params_.word_invalidate) {
    // Sub-block invalidation ablation: a resident block still misses when
    // the specific words referenced were remotely written (their valid
    // bits are off); nothing else in the block is disturbed.
    if (resident != nullptr) {
      resident->lru = tick_;
      out.kind = classifier_.words_valid(proc, addr, size)
                     ? MissKind::kHit
                     : MissKind::kTrueSharing;  // word refetch
      classifier_.note_access(proc, addr, size, is_write);
      return out;
    }
    out.kind = classifier_.classify_miss(proc, addr, size);
    Line& line = victim_line(proc, block);
    if (line.block >= 0 && line.state != LineState::kInvalid)
      drop_from_dir(line.block, proc);
    DirEntry& d = dir_[block];
    d.sharers |= 1ULL << proc;
    line.block = block;
    line.state = LineState::kShared;
    line.lru = tick_;
    classifier_.note_access(proc, addr, size, is_write);
    return out;
  }

  if (resident != nullptr &&
      (!is_write || resident->state == LineState::kModified)) {
    // Plain hit.
    resident->lru = tick_;
    out.kind = MissKind::kHit;
    classifier_.note_access(proc, addr, size, is_write);
    return out;
  }

  if (resident != nullptr && is_write &&
      resident->state == LineState::kShared) {
    // Upgrade: invalidate all other copies; no data transfer.
    out.kind = MissKind::kHit;
    out.upgrade = true;
    out.invalidated = invalidate_remote(proc, block);
    resident->state = LineState::kModified;
    resident->lru = tick_;
    classifier_.note_access(proc, addr, size, is_write);
    return out;
  }

  // Miss.
  out.kind = classifier_.classify_miss(proc, addr, size);

  Line& line = victim_line(proc, block);
  if (line.block >= 0 && line.state != LineState::kInvalid)
    drop_from_dir(line.block, proc);

  DirEntry& d = dir_[block];
  if (d.owner >= 0 && d.owner != proc) out.source_proc = d.owner;

  if (is_write) {
    out.invalidated = invalidate_remote(proc, block);
    DirEntry& d2 = dir_[block];
    d2.sharers = 1ULL << proc;
    d2.owner = proc;
    line.block = block;
    line.state = LineState::kModified;
  } else {
    if (d.owner >= 0 && d.owner != proc) {
      // Downgrade the remote Modified copy to Shared.
      Line* rl = find_line(d.owner, block);
      if (rl != nullptr && rl->state == LineState::kModified)
        rl->state = LineState::kShared;
      d.owner = -1;
    }
    d.sharers |= 1ULL << proc;
    line.block = block;
    line.state = LineState::kShared;
  }
  line.lru = tick_;
  classifier_.note_access(proc, addr, size, is_write);
  return out;
}

}  // namespace fsopt
