#include "sim/cache.h"

#include <bit>

namespace fsopt {

void MissStats::merge(const MissStats& other) {
  refs += other.refs;
  hits += other.hits;
  cold += other.cold;
  replacement += other.replacement;
  true_sharing += other.true_sharing;
  false_sharing += other.false_sharing;
  upgrades += other.upgrades;
  invalidations += other.invalidations;
}

void merge_by_datum(std::map<std::string, MissStats>& into,
                    const std::map<std::string, MissStats>& from) {
  for (const auto& [name, stats] : from) into[name].merge(stats);
}

std::map<std::string, MissStats> materialize_by_datum(
    const AddressMap& map, const std::vector<MissStats>& dense) {
  static const std::string kOther = "<other>";
  std::map<std::string, MissStats> out;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i].refs == 0) continue;
    const std::string& name =
        i < map.ranges().size() ? map.name_of(static_cast<int>(i)) : kOther;
    out[name].merge(dense[i]);
  }
  return out;
}

i64 CoherentCache::set_count(const CacheParams& p) {
  return p.cache_bytes / p.block_size / std::max<i64>(p.associativity, 1);
}

int effective_shard_count(int requested, const CacheParams& p) {
  i64 sets = CoherentCache::set_count(p);
  if (requested < 1) requested = 1;
  if (requested > sets) requested = static_cast<int>(sets);
  while (requested > 1 && sets % requested != 0) --requested;
  return requested;
}

CoherentCache::CoherentCache(const CacheParams& p, ShardSpec shard)
    : params_(p),
      shard_(shard),
      sets_(set_count(p) / std::max(shard.count, 1)),
      block_shift_(pow2_shift(p.block_size)),
      shard_shift_(pow2_shift(shard.count)),
      set_mask_(is_pow2(sets_) ? sets_ - 1 : -1),
      blocks_total_(
          (std::max(p.total_bytes, p.block_size) + p.block_size - 1) /
          p.block_size),
      total_span_(blocks_total_ * p.block_size),
      classifier_(p.nprocs, p.block_size, p.total_bytes, shard) {
  FSOPT_CHECK(params_.associativity >= 1, "associativity must be >= 1");
  FSOPT_CHECK(shard_.count >= 1 && shard_.index >= 0 &&
                  shard_.index < shard_.count,
              "bad shard spec");
  FSOPT_CHECK(set_count(p) % shard_.count == 0,
              "shard count must divide the set count"
              " (use effective_shard_count)");
  FSOPT_CHECK(sets_ > 0, "cache must hold at least one set per shard");
  FSOPT_CHECK(p.nprocs >= 1 && p.nprocs <= 64, "1..64 processors");
  FSOPT_CHECK(blocks_total_ < (i64{1} << 31),
              "address space too large: block numbers must fit 32 bits"
              " (Line::block is packed)");
  lines_.assign(static_cast<size_t>(p.nprocs * sets_ * p.associativity),
                Line{});
  i64 local_blocks =
      shard_.index < blocks_total_
          ? (blocks_total_ - shard_.index + shard_.count - 1) / shard_.count
          : 0;
  dir_.assign(static_cast<size_t>(local_blocks), DirEntry{});
  if (p.word_invalidate) classifier_.enable_word_tracking();
}

std::map<std::string, MissStats> CacheSim::by_datum() const {
  if (attribution_ == nullptr) return {};
  return materialize_by_datum(*attribution_, datum_stats_);
}

}  // namespace fsopt
