#include "lang/printer.h"

#include <map>
#include <sstream>

namespace fsopt {

namespace {

const char* bin_op_str(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

int precedence(BinOp op) {
  switch (op) {
    case BinOp::kOr: return 1;
    case BinOp::kAnd: return 2;
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: return 3;
    case BinOp::kAdd:
    case BinOp::kSub: return 4;
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kRem: return 5;
  }
  return 0;
}

void print_expr_prec(const Expr& e, int parent_prec, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      os << e.int_value;
      return;
    case ExprKind::kRealLit: {
      std::ostringstream tmp;
      tmp << e.real_value;
      std::string s = tmp.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos)
        s += ".0";
      os << s;
      return;
    }
    case ExprKind::kVar:
      os << e.name;
      return;
    case ExprKind::kIndex:
      print_expr_prec(*e.children[0], 100, os);
      os << "[";
      print_expr_prec(*e.children[1], 0, os);
      os << "]";
      return;
    case ExprKind::kField:
      print_expr_prec(*e.children[0], 100, os);
      os << "." << e.name;
      return;
    case ExprKind::kUnary:
      os << (e.un_op == UnOp::kNeg ? "-" : "!");
      os << "(";
      print_expr_prec(*e.children[0], 0, os);
      os << ")";
      return;
    case ExprKind::kBinary: {
      int p = precedence(e.bin_op);
      if (p < parent_prec) os << "(";
      print_expr_prec(*e.children[0], p, os);
      os << " " << bin_op_str(e.bin_op) << " ";
      print_expr_prec(*e.children[1], p + 1, os);
      if (p < parent_prec) os << ")";
      return;
    }
    case ExprKind::kCall: {
      os << e.name << "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) os << ", ";
        print_expr_prec(*e.children[i], 0, os);
      }
      os << ")";
      return;
    }
  }
}

void print_stmt_impl(const Stmt& s, int indent, std::ostream& os);

void print_indent(int indent, std::ostream& os) {
  for (int i = 0; i < indent; ++i) os << "  ";
}

void print_block_or_stmt(const Stmt& s, int indent, std::ostream& os) {
  if (s.kind == StmtKind::kBlock) {
    os << " {\n";
    for (const auto& c : s.stmts) print_stmt_impl(*c, indent + 1, os);
    print_indent(indent, os);
    os << "}";
  } else {
    os << "\n";
    print_stmt_impl(s, indent + 1, os);
    print_indent(indent, os);
  }
}

void print_stmt_impl(const Stmt& s, int indent, std::ostream& os) {
  print_indent(indent, os);
  switch (s.kind) {
    case StmtKind::kBlock:
      os << "{\n";
      for (const auto& c : s.stmts) print_stmt_impl(*c, indent + 1, os);
      print_indent(indent, os);
      os << "}\n";
      return;
    case StmtKind::kLocalDecl:
      os << scalar_name(s.decl_kind) << " " << s.name;
      if (s.init) {
        os << " = ";
        print_expr_prec(*s.init, 0, os);
      }
      os << ";\n";
      return;
    case StmtKind::kAssign:
      print_expr_prec(*s.target, 0, os);
      os << " = ";
      print_expr_prec(*s.value, 0, os);
      os << ";\n";
      return;
    case StmtKind::kIf:
      os << "if (";
      print_expr_prec(*s.cond, 0, os);
      os << ")";
      print_block_or_stmt(*s.then_block, indent, os);
      if (s.else_block) {
        os << " else";
        print_block_or_stmt(*s.else_block, indent, os);
      }
      os << "\n";
      return;
    case StmtKind::kWhile:
      os << "while (";
      print_expr_prec(*s.cond, 0, os);
      os << ")";
      print_block_or_stmt(*s.body, indent, os);
      os << "\n";
      return;
    case StmtKind::kFor: {
      os << "for (";
      print_expr_prec(*s.init_stmt->target, 0, os);
      os << " = ";
      print_expr_prec(*s.init_stmt->value, 0, os);
      os << "; ";
      print_expr_prec(*s.cond, 0, os);
      os << "; ";
      print_expr_prec(*s.step_stmt->target, 0, os);
      os << " = ";
      print_expr_prec(*s.step_stmt->value, 0, os);
      os << ")";
      print_block_or_stmt(*s.body, indent, os);
      os << "\n";
      return;
    }
    case StmtKind::kExpr:
      print_expr_prec(*s.value, 0, os);
      os << ";\n";
      return;
    case StmtKind::kReturn:
      os << "return";
      if (s.value) {
        os << " ";
        print_expr_prec(*s.value, 0, os);
      }
      os << ";\n";
      return;
    case StmtKind::kBarrier:
      os << "barrier();\n";
      return;
    case StmtKind::kLock:
      os << "lock(";
      print_expr_prec(*s.target, 0, os);
      os << ");\n";
      return;
    case StmtKind::kUnlock:
      os << "unlock(";
      print_expr_prec(*s.target, 0, os);
      os << ");\n";
      return;
  }
}

}  // namespace

std::string print_expr(const Expr& e) {
  std::ostringstream os;
  print_expr_prec(e, 0, os);
  return os.str();
}

std::string print_stmt(const Stmt& s, int indent) {
  std::ostringstream os;
  print_stmt_impl(s, indent, os);
  return os.str();
}

std::string print_program(const Program& prog) {
  std::ostringstream os;
  // Sorted for deterministic output (params live in an unordered map).
  std::map<std::string, i64> params(prog.params.begin(), prog.params.end());
  for (const auto& [name, value] : params)
    os << "param " << name << " = " << value << ";\n";
  os << "\n";
  for (const auto& st : prog.structs) {
    os << "struct " << st->name << " {\n";
    for (const auto& f : st->fields) {
      os << "  " << scalar_name(f.kind) << " " << f.name;
      if (f.array_len > 0) os << "[" << f.array_len << "]";
      os << ";\n";
    }
    os << "};\n\n";
  }
  for (const auto& g : prog.globals) {
    os << g->elem.str() << " " << g->name;
    for (i64 d : g->dims) os << "[" << d << "]";
    os << ";\n";
  }
  os << "\n";
  for (const auto& fn : prog.funcs) {
    os << value_type_name(fn->ret) << " " << fn->name << "(";
    for (size_t i = 0; i < fn->params.size(); ++i) {
      if (i > 0) os << ", ";
      os << scalar_name(fn->params[i]->kind) << " " << fn->params[i]->name;
    }
    os << ")";
    if (fn->body) {
      os << " " << print_stmt(*fn->body, 0);
    } else {
      os << ";\n";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fsopt
