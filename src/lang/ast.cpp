#include "lang/ast.h"

namespace fsopt {

ExprPtr Expr::make_int(i64 v, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::kIntLit, loc);
  e->int_value = v;
  e->type = ValueType::kInt;
  return e;
}

ExprPtr Expr::make_real(double v, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::kRealLit, loc);
  e->real_value = v;
  e->type = ValueType::kReal;
  return e;
}

const StructType* Program::find_struct(const std::string& n) const {
  for (const auto& s : structs)
    if (s->name == n) return s.get();
  return nullptr;
}

const GlobalSym* Program::find_global(const std::string& n) const {
  for (const auto& g : globals)
    if (g->name == n) return g.get();
  return nullptr;
}

FuncDecl* Program::find_func(const std::string& n) const {
  for (const auto& f : funcs)
    if (f->name == n) return f.get();
  return nullptr;
}

std::optional<GlobalAccess> resolve_global_access(const Expr& e) {
  // Walk down to the root kVar, collecting components outer-to-inner as we
  // unwind.
  std::vector<const Expr*> chain;
  const Expr* cur = &e;
  while (cur->kind == ExprKind::kIndex || cur->kind == ExprKind::kField) {
    chain.push_back(cur);
    cur = cur->children[0].get();
  }
  FSOPT_CHECK(cur->kind == ExprKind::kVar, "lvalue chain must root at a var");
  if (cur->global == nullptr) return std::nullopt;  // local variable access

  GlobalAccess acc;
  acc.sym = cur->global;
  // chain is inner-to-outer; reverse to apply outer-to-inner.
  GlobalAccess out;
  out.sym = acc.sym;
  const StructField* fld = nullptr;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const Expr* c = *it;
    if (c->kind == ExprKind::kIndex) {
      DimAccess d;
      d.index = c->children[1].get();
      if (fld == nullptr) {
        size_t which = out.dims.size();
        FSOPT_CHECK(which < out.sym->dims.size(), "too many array indices");
        d.extent = out.sym->dims[which];
        out.dims.push_back(d);
        out.array_dims = static_cast<int>(out.dims.size());
      } else {
        FSOPT_CHECK(fld->array_len > 0, "indexing a scalar field");
        d.extent = fld->array_len;
        out.dims.push_back(d);
      }
    } else {  // kField
      FSOPT_CHECK(out.sym->elem.is_struct, "field access on non-struct");
      out.field = c->field_index;
      fld = &out.sym->elem.strct->fields[static_cast<size_t>(out.field)];
    }
  }
  if (fld != nullptr) {
    out.scalar = fld->kind;
  } else if (!out.sym->elem.is_struct) {
    out.scalar = out.sym->elem.scalar;
  } else {
    FSOPT_CHECK(false, "whole-struct access is not a scalar lvalue");
  }
  return out;
}

}  // namespace fsopt
