// Pretty-printer: renders an AST back to PPL source.  Used by the
// source-to-source rewriter (transform/rewrite) and by examples/tests to
// show what the restructurer did.
#pragma once

#include <string>

#include "lang/ast.h"

namespace fsopt {

/// Render one expression.
std::string print_expr(const Expr& e);

/// Render one statement at the given indent level.
std::string print_stmt(const Stmt& s, int indent = 0);

/// Render a whole program (params as resolved values, structs, globals,
/// functions).
std::string print_program(const Program& prog);

}  // namespace fsopt
