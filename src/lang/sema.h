// Semantic analysis for PPL: name resolution, type checking, struct layout,
// and the structural restrictions the paper's analysis relies on (§2):
// no recursion, barriers only at the top level of main, function parameters
// are immutable (so PDV-ness propagates interprocedurally), locks are only
// touched via lock()/unlock().
#pragma once

#include "lang/ast.h"

namespace fsopt {

class Sema {
 public:
  explicit Sema(DiagnosticEngine& diags) : diags_(diags) {}

  /// Resolve and check the whole program in place.  Throws CompileError if
  /// any error is found.
  void run(Program& prog);

 private:
  void layout_structs(Program& prog);
  void check_function(FuncDecl& fn);
  void check_stmt(Stmt& s, int loop_depth);
  ValueType check_expr(Expr& e);
  ValueType check_lvalue(Expr& e, bool lock_context);
  void check_no_recursion();

  DiagnosticEngine& diags_;
  Program* prog_ = nullptr;
  FuncDecl* cur_fn_ = nullptr;
  bool in_main_ = false;
  // Scope stack: names visible in the current function, innermost last.
  std::vector<std::vector<LocalSym*>> scopes_;

  LocalSym* lookup_local(const std::string& name);
  LocalSym* declare_local(const std::string& name, ScalarKind kind,
                          SourceLoc loc);
};

/// Convenience: parse + sema in one call.
std::unique_ptr<Program> parse_and_check(std::string_view source,
                                         DiagnosticEngine& diags,
                                         const ParamOverrides& overrides = {});

}  // namespace fsopt
