// Type system for PPL.
//
// PPL deliberately mirrors the restricted-C model of §2 of the paper:
// statically allocated shared globals (scalars, 1/2-D arrays, arrays of
// structs whose fields are scalars or fixed-length scalar arrays), private
// function locals, no source-level pointers (the compiler introduces
// indirection itself), whole-program compilation.
#pragma once

#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace fsopt {

/// Scalar kinds storable in simulated memory.
enum class ScalarKind : u8 {
  kInt,   // 4 bytes, two's complement
  kReal,  // 8 bytes, IEEE double
  kLock,  // 4 bytes, test-and-test-and-set word
};

/// Size in bytes of one scalar of kind `k`.
i64 scalar_size(ScalarKind k);

/// Printable name ("int", "real", "lock_t").
const char* scalar_name(ScalarKind k);

/// One field of a struct type: a scalar or a fixed-length scalar array.
struct StructField {
  std::string name;
  ScalarKind kind = ScalarKind::kInt;
  i64 array_len = 0;  // 0 => scalar field; >0 => field is kind[array_len]
  i64 offset = 0;     // byte offset within the struct (natural alignment)
  SourceLoc loc;

  i64 byte_size() const {
    return scalar_size(kind) * (array_len > 0 ? array_len : 1);
  }
};

/// A user-declared struct type.  Layout (offsets, size) is computed by sema
/// with natural alignment, the same layout a C compiler would produce for
/// the paper's programs.
struct StructType {
  std::string name;
  std::vector<StructField> fields;
  i64 size = 0;   // padded to alignment
  i64 align = 0;  // max field scalar alignment
  SourceLoc loc;

  /// Index of field `name`, or -1.
  int field_index(const std::string& fname) const;
};

/// Element type of a global: a scalar kind or a struct.
struct ElemType {
  bool is_struct = false;
  ScalarKind scalar = ScalarKind::kInt;
  const StructType* strct = nullptr;

  i64 byte_size() const;
  i64 alignment() const;
  std::string str() const;
};

/// Expression value types used by the type checker.
enum class ValueType : u8 { kInt, kReal, kVoid };

const char* value_type_name(ValueType t);

}  // namespace fsopt
