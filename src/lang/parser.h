// Recursive-descent parser for PPL.
//
// `param` constants are evaluated during parsing (with caller-supplied
// overrides), so struct layouts and array extents are concrete integers by
// the time semantic analysis and the static analyses run.  This mirrors the
// paper's whole-program assumption: the number of processes (NPROCS) is a
// compile-time constant (§2).
#pragma once

#include <string_view>

#include "lang/ast.h"
#include "lang/token.h"

namespace fsopt {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags,
         const ParamOverrides& overrides);

  /// Parse a whole program.  Throws CompileError on unrecoverable syntax
  /// errors; minor errors are collected in the diagnostic engine.
  std::unique_ptr<Program> parse_program();

  /// Convenience: lex + parse in one step.
  static std::unique_ptr<Program> parse(std::string_view source,
                                        DiagnosticEngine& diags,
                                        const ParamOverrides& overrides = {});

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok k) const { return peek().kind == k; }
  bool accept(Tok k);
  const Token& expect(Tok k, const char* context);
  [[noreturn]] void fail(const std::string& msg);

  // Declarations.
  void parse_param_decl();
  void parse_struct_decl();
  void parse_global_decl();
  void parse_func_decl();

  // Constant expressions (evaluated eagerly against params_).
  i64 parse_const_expr();
  i64 parse_const_mul();
  i64 parse_const_primary();

  // Statements.
  StmtPtr parse_block();
  StmtPtr parse_stmt();
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_for();

  // Expressions (precedence climbing).
  ExprPtr parse_expr();
  ExprPtr parse_or();
  ExprPtr parse_and();
  ExprPtr parse_cmp();
  ExprPtr parse_add();
  ExprPtr parse_mul();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  ExprPtr parse_lvalue();

  bool looks_like_type() const;

  std::vector<Token> toks_;
  size_t pos_ = 0;
  DiagnosticEngine& diags_;
  ParamOverrides overrides_;
  std::unique_ptr<Program> prog_;
};

}  // namespace fsopt
