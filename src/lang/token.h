// Token definitions for PPL, the small explicitly-parallel C-like language
// that stands in for the restricted-C programs the paper analyzes (§2).
#pragma once

#include <string>

#include "support/diagnostics.h"

namespace fsopt {

enum class Tok {
  kEof,
  // Literals and identifiers.
  kIntLit,
  kRealLit,
  kIdent,
  // Keywords.
  kKwStruct,
  kKwParam,
  kKwInt,
  kKwReal,
  kKwLockT,
  kKwVoid,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwBarrier,
  kKwLock,
  kKwUnlock,
  kKwNprocs,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kDot,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,
};

/// Printable token-kind name (for diagnostics and tests).
const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  SourceLoc loc;
  std::string text;  // identifier spelling, or literal spelling
  i64 int_value = 0;
  double real_value = 0.0;
};

}  // namespace fsopt
