// Abstract syntax tree for PPL.
//
// The tree is owned by a Program.  Nodes carry a kind tag for fast
// switch-based dispatch in the analyses, the bytecode compiler and the
// pretty-printer.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/types.h"

namespace fsopt {

class FuncDecl;
struct GlobalSym;
struct LocalSym;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : u8 {
  kIntLit,
  kRealLit,
  kVar,     // local variable or function parameter
  kIndex,   // base[index]
  kField,   // base.field
  kBinary,
  kUnary,
  kCall,    // user function or intrinsic
};

enum class BinOp : u8 {
  kAdd, kSub, kMul, kDiv, kRem,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp : u8 { kNeg, kNot };

/// Intrinsic functions available to PPL programs.
enum class Intrinsic : u8 {
  kNone,
  kLcg,   // lcg(int) -> int : one step of a linear congruential generator
  kAbs,   // abs(x) -> typeof(x)
  kMin,   // min(a, b)
  kMax,   // max(a, b)
  kItor,  // itor(int) -> real
  kRtoi,  // rtoi(real) -> int (truncates)
  kSqrt,  // sqrt(real) -> real
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  ExprKind kind;
  SourceLoc loc;
  ValueType type = ValueType::kVoid;  // filled by sema

  // kIntLit / kRealLit
  i64 int_value = 0;
  double real_value = 0.0;

  // kVar
  std::string name;
  const LocalSym* local = nullptr;  // resolved by sema

  // kIndex: children[0] = base, children[1] = index
  // kField: children[0] = base; `name` is the field; field_index resolved
  int field_index = -1;

  // kBinary: children[0], children[1]; kUnary: children[0]
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;

  // kCall: `name` is callee; children = args
  const FuncDecl* callee = nullptr;
  Intrinsic intrinsic = Intrinsic::kNone;

  // kVar/kIndex/kField chains rooted at a global: resolved by sema.
  const GlobalSym* global = nullptr;  // set on the *root* kVar node

  std::vector<ExprPtr> children;

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}

  static ExprPtr make_int(i64 v, SourceLoc loc);
  static ExprPtr make_real(double v, SourceLoc loc);

  /// True if this expression denotes a memory location (lvalue chain).
  bool is_lvalue_shape() const {
    return kind == ExprKind::kVar || kind == ExprKind::kIndex ||
           kind == ExprKind::kField;
  }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : u8 {
  kBlock,
  kLocalDecl,
  kAssign,
  kIf,
  kWhile,
  kFor,
  kExpr,
  kReturn,
  kBarrier,
  kLock,
  kUnlock,
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

class Stmt {
 public:
  StmtKind kind;
  SourceLoc loc;

  // kBlock
  std::vector<StmtPtr> stmts;

  // kLocalDecl
  std::string name;
  ScalarKind decl_kind = ScalarKind::kInt;
  const LocalSym* local = nullptr;  // resolved by sema
  ExprPtr init;                     // optional

  // kAssign: target (lvalue), value
  ExprPtr target;
  ExprPtr value;

  // kIf: cond, then_block, else_block (optional)
  // kWhile: cond, body
  ExprPtr cond;
  StmtPtr then_block;
  StmtPtr else_block;
  StmtPtr body;

  // kFor: `init_stmt` (assign), cond, `step_stmt` (assign), body
  StmtPtr init_stmt;
  StmtPtr step_stmt;

  // kExpr / kReturn: value above; kLock/kUnlock: target is the lock lvalue

  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---------------------------------------------------------------------------
// Declarations / symbols
// ---------------------------------------------------------------------------

/// A function-local variable or parameter (private to each process).
struct LocalSym {
  std::string name;
  ScalarKind kind = ScalarKind::kInt;
  int slot = -1;         // frame slot index assigned by sema
  bool is_param = false;
  SourceLoc loc;
};

/// A shared global datum: scalar, 1/2-D array of scalars, or 1/2-D array
/// of structs.  All globals are shared among all processes (§2).
struct GlobalSym {
  int id = -1;
  std::string name;
  ElemType elem;
  std::vector<i64> dims;  // outer-to-inner array extents; may be empty
  SourceLoc loc;

  i64 elem_count() const {
    i64 n = 1;
    for (i64 d : dims) n *= d;
    return n;
  }
  i64 byte_size() const { return elem_count() * elem.byte_size(); }
  bool is_lock() const {
    return !elem.is_struct && elem.scalar == ScalarKind::kLock;
  }
};

/// A user function.  `main(int pid)` is the SPMD entry executed by every
/// process; its `pid` parameter is the canonical process differentiating
/// variable (PDV).
class FuncDecl {
 public:
  std::string name;
  ValueType ret = ValueType::kVoid;
  std::vector<LocalSym*> params;  // subset of locals, in order
  std::vector<std::unique_ptr<LocalSym>> locals;
  StmtPtr body;
  SourceLoc loc;
  int id = -1;

  LocalSym* find_local(const std::string& n) const {
    for (const auto& l : locals)
      if (l->name == n) return l.get();
    return nullptr;
  }
};

/// Overrides for `param` declarations, applied when a program is parsed.
/// The driver uses this to set NPROCS and problem sizes per experiment.
using ParamOverrides = std::unordered_map<std::string, i64>;

/// A parsed (and, after sema, resolved) PPL program.
class Program {
 public:
  // Compile-time parameters (`param N = 64;`), after overrides.
  std::unordered_map<std::string, i64> params;
  // Declaration order matters for the *unoptimized* memory layout: globals
  // are laid out in the order they appear, which is how the false sharing
  // between adjacent busy scalars arises in the first place.
  std::vector<std::unique_ptr<StructType>> structs;
  std::vector<std::unique_ptr<GlobalSym>> globals;
  std::vector<std::unique_ptr<FuncDecl>> funcs;
  FuncDecl* main = nullptr;  // resolved by sema
  i64 nprocs = 0;            // value of NPROCS at compile time

  const StructType* find_struct(const std::string& n) const;
  const GlobalSym* find_global(const std::string& n) const;
  FuncDecl* find_func(const std::string& n) const;
};

// ---------------------------------------------------------------------------
// Resolved access paths
// ---------------------------------------------------------------------------

/// One array dimension of a resolved global access.  `index` points into
/// the expression tree (not owned).
struct DimAccess {
  i64 extent = 0;
  const Expr* index = nullptr;
};

/// A global lvalue flattened into (symbol, field, per-dim indices).
///
/// Examples:
///   x            -> {sym=x, field=-1, dims=[]}
///   a[i]         -> {sym=a, field=-1, dims=[i]}
///   g[i][j]      -> {sym=g, field=-1, dims=[i,j]}
///   nodes[i].w   -> {sym=nodes, field=w, dims=[i]}
///   nodes[i].v[p]-> {sym=nodes, field=v, dims=[i,p]}  (field-array dim last)
struct GlobalAccess {
  const GlobalSym* sym = nullptr;
  int field = -1;  // index into sym->elem.strct->fields, or -1
  std::vector<DimAccess> dims;
  ScalarKind scalar = ScalarKind::kInt;

  /// Number of leading dims that are array dims of the symbol itself (the
  /// rest — at most one — is a field-array dim).
  int array_dims = 0;
};

/// Resolve an lvalue expression chain into a GlobalAccess.  Returns
/// std::nullopt if the chain is rooted at a local variable.  Must only be
/// called on sema-checked trees.
std::optional<GlobalAccess> resolve_global_access(const Expr& e);

}  // namespace fsopt
