#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace fsopt {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIntLit: return "integer literal";
    case Tok::kRealLit: return "real literal";
    case Tok::kIdent: return "identifier";
    case Tok::kKwStruct: return "'struct'";
    case Tok::kKwParam: return "'param'";
    case Tok::kKwInt: return "'int'";
    case Tok::kKwReal: return "'real'";
    case Tok::kKwLockT: return "'lock_t'";
    case Tok::kKwVoid: return "'void'";
    case Tok::kKwIf: return "'if'";
    case Tok::kKwElse: return "'else'";
    case Tok::kKwWhile: return "'while'";
    case Tok::kKwFor: return "'for'";
    case Tok::kKwReturn: return "'return'";
    case Tok::kKwBarrier: return "'barrier'";
    case Tok::kKwLock: return "'lock'";
    case Tok::kKwUnlock: return "'unlock'";
    case Tok::kKwNprocs: return "'nprocs'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kDot: return "'.'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kNot: return "'!'";
  }
  return "<bad-token>";
}

namespace {
const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"struct", Tok::kKwStruct},   {"param", Tok::kKwParam},
      {"int", Tok::kKwInt},         {"real", Tok::kKwReal},
      {"lock_t", Tok::kKwLockT},    {"void", Tok::kKwVoid},
      {"if", Tok::kKwIf},           {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile},     {"for", Tok::kKwFor},
      {"return", Tok::kKwReturn},   {"barrier", Tok::kKwBarrier},
      {"lock", Tok::kKwLock},       {"unlock", Tok::kKwUnlock},
      {"nprocs", Tok::kKwNprocs},
  };
  return kMap;
}
}  // namespace

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : src_(source), diags_(diags) {}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    bool eof = t.kind == Tok::kEof;
    out.push_back(std::move(t));
    if (eof) break;
  }
  return out;
}

char Lexer::peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  return p < src_.size() ? src_[p] : '\0';
}

char Lexer::advance() {
  char c = peek();
  if (c == '\0') return c;
  ++pos_;
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char c) {
  if (peek() != c) return false;
  advance();
  return true;
}

void Lexer::skip_ws_and_comments() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLoc open = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(open, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(Tok kind) {
  Token t;
  t.kind = kind;
  t.loc = tok_start_;
  t.text = std::string(src_.substr(tok_start_pos_, pos_ - tok_start_pos_));
  return t;
}

Token Lexer::lex_number() {
  while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  bool is_real = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_real = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    int off = 1;
    if (peek(1) == '+' || peek(1) == '-') off = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(off)))) {
      is_real = true;
      for (int i = 0; i < off; ++i) advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
  }
  Token t = make(is_real ? Tok::kRealLit : Tok::kIntLit);
  if (is_real) {
    t.real_value = std::strtod(t.text.c_str(), nullptr);
  } else {
    t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
  }
  return t;
}

Token Lexer::lex_ident() {
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  Token t = make(Tok::kIdent);
  auto it = keywords().find(t.text);
  if (it != keywords().end()) t.kind = it->second;
  return t;
}

Token Lexer::next() {
  skip_ws_and_comments();
  tok_start_ = here();
  tok_start_pos_ = pos_;
  char c = peek();
  if (c == '\0') return make(Tok::kEof);
  if (std::isdigit(static_cast<unsigned char>(c))) {
    advance();
    // rewind one: lex_number expects first digit consumed state handled here
    // by simply continuing the scan; `advance()` above consumed it.
    return lex_number();
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    advance();
    return lex_ident();
  }
  advance();
  switch (c) {
    case '(': return make(Tok::kLParen);
    case ')': return make(Tok::kRParen);
    case '{': return make(Tok::kLBrace);
    case '}': return make(Tok::kRBrace);
    case '[': return make(Tok::kLBracket);
    case ']': return make(Tok::kRBracket);
    case ',': return make(Tok::kComma);
    case ';': return make(Tok::kSemi);
    case '.': return make(Tok::kDot);
    case '+': return make(Tok::kPlus);
    case '-': return make(Tok::kMinus);
    case '*': return make(Tok::kStar);
    case '/': return make(Tok::kSlash);
    case '%': return make(Tok::kPercent);
    case '=': return make(match('=') ? Tok::kEq : Tok::kAssign);
    case '!': return make(match('=') ? Tok::kNe : Tok::kNot);
    case '<': return make(match('=') ? Tok::kLe : Tok::kLt);
    case '>': return make(match('=') ? Tok::kGe : Tok::kGt);
    case '&':
      if (match('&')) return make(Tok::kAndAnd);
      break;
    case '|':
      if (match('|')) return make(Tok::kOrOr);
      break;
    default:
      break;
  }
  diags_.error(tok_start_, std::string("unexpected character '") + c + "'");
  return next();
}

}  // namespace fsopt
