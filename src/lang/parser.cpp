#include "lang/parser.h"

#include "lang/lexer.h"

namespace fsopt {

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags,
               const ParamOverrides& overrides)
    : toks_(std::move(tokens)), diags_(diags), overrides_(overrides) {
  FSOPT_CHECK(!toks_.empty() && toks_.back().kind == Tok::kEof,
              "token stream must end with EOF");
}

std::unique_ptr<Program> Parser::parse(std::string_view source,
                                       DiagnosticEngine& diags,
                                       const ParamOverrides& overrides) {
  Lexer lexer(source, diags);
  Parser parser(lexer.lex_all(), diags, overrides);
  auto prog = parser.parse_program();
  diags.throw_if_errors();
  return prog;
}

const Token& Parser::peek(int ahead) const {
  size_t p = std::min(pos_ + static_cast<size_t>(ahead), toks_.size() - 1);
  return toks_[p];
}

const Token& Parser::advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::accept(Tok k) {
  if (!check(k)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok k, const char* context) {
  if (!check(k)) {
    fail(std::string("expected ") + tok_name(k) + " " + context + ", found " +
         tok_name(peek().kind) +
         (peek().text.empty() ? "" : " '" + peek().text + "'"));
  }
  return advance();
}

void Parser::fail(const std::string& msg) {
  diags_.error(peek().loc, msg);
  throw CompileError(diags_.render(), diags_.diagnostics());
}

std::unique_ptr<Program> Parser::parse_program() {
  prog_ = std::make_unique<Program>();
  while (!check(Tok::kEof)) {
    switch (peek().kind) {
      case Tok::kKwParam:
        parse_param_decl();
        break;
      case Tok::kKwStruct:
        // `struct Name { ... };` is a type decl; `struct Name ident ...` is
        // a global of struct type.
        if (peek(2).kind == Tok::kLBrace) {
          parse_struct_decl();
        } else {
          parse_global_decl();
        }
        break;
      case Tok::kKwVoid:
        parse_func_decl();
        break;
      case Tok::kKwInt:
      case Tok::kKwReal:
      case Tok::kKwLockT:
        // `type ident (` is a function; otherwise a global declaration.
        if (peek(1).kind == Tok::kIdent && peek(2).kind == Tok::kLParen) {
          parse_func_decl();
        } else {
          parse_global_decl();
        }
        break;
      default:
        fail("expected a declaration");
    }
  }
  return std::move(prog_);
}

void Parser::parse_param_decl() {
  expect(Tok::kKwParam, "to begin parameter");
  const Token& name = expect(Tok::kIdent, "after 'param'");
  expect(Tok::kAssign, "in parameter declaration");
  i64 value = parse_const_expr();
  expect(Tok::kSemi, "after parameter declaration");
  if (prog_->params.count(name.text) != 0) {
    diags_.error(name.loc, "duplicate param '" + name.text + "'");
    return;
  }
  auto ov = overrides_.find(name.text);
  prog_->params[name.text] = ov != overrides_.end() ? ov->second : value;
}

i64 Parser::parse_const_expr() {
  i64 v = parse_const_mul();
  for (;;) {
    if (accept(Tok::kPlus)) {
      v += parse_const_mul();
    } else if (accept(Tok::kMinus)) {
      v -= parse_const_mul();
    } else {
      return v;
    }
  }
}

i64 Parser::parse_const_mul() {
  i64 v = parse_const_primary();
  for (;;) {
    if (accept(Tok::kStar)) {
      v *= parse_const_primary();
    } else if (accept(Tok::kSlash)) {
      i64 d = parse_const_primary();
      if (d == 0) fail("division by zero in constant expression");
      v /= d;
    } else if (accept(Tok::kPercent)) {
      i64 d = parse_const_primary();
      if (d == 0) fail("modulo by zero in constant expression");
      v %= d;
    } else {
      return v;
    }
  }
}

i64 Parser::parse_const_primary() {
  if (check(Tok::kIntLit)) return advance().int_value;
  if (accept(Tok::kMinus)) return -parse_const_primary();
  if (accept(Tok::kLParen)) {
    i64 v = parse_const_expr();
    expect(Tok::kRParen, "in constant expression");
    return v;
  }
  if (check(Tok::kKwNprocs)) {
    const Token& t = advance();
    auto it = prog_->params.find("NPROCS");
    if (it == prog_->params.end())
      diags_.error(t.loc, "'nprocs' used before 'param NPROCS' was declared");
    return it == prog_->params.end() ? 1 : it->second;
  }
  if (check(Tok::kIdent)) {
    const Token& t = advance();
    auto it = prog_->params.find(t.text);
    if (it == prog_->params.end()) {
      diags_.error(t.loc, "unknown param '" + t.text +
                              "' in constant expression");
      return 1;
    }
    return it->second;
  }
  fail("expected constant expression");
}

void Parser::parse_struct_decl() {
  expect(Tok::kKwStruct, "to begin struct");
  const Token& name = expect(Tok::kIdent, "after 'struct'");
  expect(Tok::kLBrace, "to begin struct body");
  auto st = std::make_unique<StructType>();
  st->name = name.text;
  st->loc = name.loc;
  while (!accept(Tok::kRBrace)) {
    StructField f;
    if (accept(Tok::kKwInt)) {
      f.kind = ScalarKind::kInt;
    } else if (accept(Tok::kKwReal)) {
      f.kind = ScalarKind::kReal;
    } else if (accept(Tok::kKwLockT)) {
      f.kind = ScalarKind::kLock;
    } else {
      fail("expected field type in struct body");
    }
    const Token& fname = expect(Tok::kIdent, "as field name");
    f.name = fname.text;
    f.loc = fname.loc;
    if (accept(Tok::kLBracket)) {
      f.array_len = parse_const_expr();
      if (f.array_len <= 0)
        diags_.error(fname.loc, "field array length must be positive");
      expect(Tok::kRBracket, "after field array length");
    }
    expect(Tok::kSemi, "after field");
    st->fields.push_back(std::move(f));
  }
  expect(Tok::kSemi, "after struct declaration");
  if (prog_->find_struct(st->name) != nullptr) {
    diags_.error(st->loc, "duplicate struct '" + st->name + "'");
    return;
  }
  prog_->structs.push_back(std::move(st));
}

void Parser::parse_global_decl() {
  ElemType elem;
  if (accept(Tok::kKwStruct)) {
    const Token& sname = expect(Tok::kIdent, "after 'struct'");
    const StructType* st = prog_->find_struct(sname.text);
    if (st == nullptr)
      fail("unknown struct type '" + sname.text + "'");
    elem.is_struct = true;
    elem.strct = st;
  } else if (accept(Tok::kKwInt)) {
    elem.scalar = ScalarKind::kInt;
  } else if (accept(Tok::kKwReal)) {
    elem.scalar = ScalarKind::kReal;
  } else if (accept(Tok::kKwLockT)) {
    elem.scalar = ScalarKind::kLock;
  } else {
    fail("expected global type");
  }
  const Token& name = expect(Tok::kIdent, "as global name");
  auto g = std::make_unique<GlobalSym>();
  g->name = name.text;
  g->elem = elem;
  g->loc = name.loc;
  while (accept(Tok::kLBracket)) {
    if (g->dims.size() == 2) fail("at most 2 array dimensions are supported");
    i64 ext = parse_const_expr();
    if (ext <= 0) diags_.error(name.loc, "array extent must be positive");
    g->dims.push_back(ext);
    expect(Tok::kRBracket, "after array extent");
  }
  expect(Tok::kSemi, "after global declaration");
  if (prog_->find_global(g->name) != nullptr) {
    diags_.error(g->loc, "duplicate global '" + g->name + "'");
    return;
  }
  g->id = static_cast<int>(prog_->globals.size());
  prog_->globals.push_back(std::move(g));
}

void Parser::parse_func_decl() {
  auto fn = std::make_unique<FuncDecl>();
  if (accept(Tok::kKwVoid)) {
    fn->ret = ValueType::kVoid;
  } else if (accept(Tok::kKwInt)) {
    fn->ret = ValueType::kInt;
  } else if (accept(Tok::kKwReal)) {
    fn->ret = ValueType::kReal;
  } else {
    fail("expected function return type");
  }
  const Token& name = expect(Tok::kIdent, "as function name");
  fn->name = name.text;
  fn->loc = name.loc;
  expect(Tok::kLParen, "to begin parameter list");
  if (!check(Tok::kRParen)) {
    do {
      ScalarKind pk;
      if (accept(Tok::kKwInt)) {
        pk = ScalarKind::kInt;
      } else if (accept(Tok::kKwReal)) {
        pk = ScalarKind::kReal;
      } else {
        fail("function parameters must be 'int' or 'real'");
      }
      const Token& pname = expect(Tok::kIdent, "as parameter name");
      auto sym = std::make_unique<LocalSym>();
      sym->name = pname.text;
      sym->kind = pk;
      sym->is_param = true;
      sym->loc = pname.loc;
      fn->params.push_back(sym.get());
      fn->locals.push_back(std::move(sym));
    } while (accept(Tok::kComma));
  }
  expect(Tok::kRParen, "after parameter list");
  fn->body = parse_block();
  if (prog_->find_func(fn->name) != nullptr) {
    diags_.error(fn->loc, "duplicate function '" + fn->name + "'");
    return;
  }
  fn->id = static_cast<int>(prog_->funcs.size());
  prog_->funcs.push_back(std::move(fn));
}

StmtPtr Parser::parse_block() {
  const Token& open = expect(Tok::kLBrace, "to begin block");
  auto blk = std::make_unique<Stmt>(StmtKind::kBlock, open.loc);
  while (!accept(Tok::kRBrace)) {
    if (check(Tok::kEof)) fail("unexpected end of file inside block");
    blk->stmts.push_back(parse_stmt());
  }
  return blk;
}

bool Parser::looks_like_type() const {
  Tok k = peek().kind;
  return k == Tok::kKwInt || k == Tok::kKwReal;
}

StmtPtr Parser::parse_stmt() {
  SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case Tok::kLBrace:
      return parse_block();
    case Tok::kKwIf:
      return parse_if();
    case Tok::kKwWhile:
      return parse_while();
    case Tok::kKwFor:
      return parse_for();
    case Tok::kKwReturn: {
      advance();
      auto s = std::make_unique<Stmt>(StmtKind::kReturn, loc);
      if (!check(Tok::kSemi)) s->value = parse_expr();
      expect(Tok::kSemi, "after return");
      return s;
    }
    case Tok::kKwBarrier: {
      advance();
      expect(Tok::kLParen, "after 'barrier'");
      expect(Tok::kRParen, "after 'barrier('");
      expect(Tok::kSemi, "after barrier()");
      return std::make_unique<Stmt>(StmtKind::kBarrier, loc);
    }
    case Tok::kKwLock:
    case Tok::kKwUnlock: {
      bool is_lock = peek().kind == Tok::kKwLock;
      advance();
      expect(Tok::kLParen, "after lock/unlock");
      auto s = std::make_unique<Stmt>(
          is_lock ? StmtKind::kLock : StmtKind::kUnlock, loc);
      s->target = parse_lvalue();
      expect(Tok::kRParen, "after lock/unlock operand");
      expect(Tok::kSemi, "after lock/unlock statement");
      return s;
    }
    default:
      break;
  }

  if (looks_like_type()) {
    auto s = std::make_unique<Stmt>(StmtKind::kLocalDecl, loc);
    s->decl_kind =
        accept(Tok::kKwInt) ? ScalarKind::kInt
                            : (expect(Tok::kKwReal, "as local type"),
                               ScalarKind::kReal);
    const Token& name = expect(Tok::kIdent, "as local name");
    s->name = name.text;
    if (accept(Tok::kAssign)) s->init = parse_expr();
    expect(Tok::kSemi, "after local declaration");
    return s;
  }

  // Assignment or call statement.
  ExprPtr lhs = parse_postfix();
  if (accept(Tok::kAssign)) {
    auto s = std::make_unique<Stmt>(StmtKind::kAssign, loc);
    s->target = std::move(lhs);
    s->value = parse_expr();
    expect(Tok::kSemi, "after assignment");
    return s;
  }
  auto s = std::make_unique<Stmt>(StmtKind::kExpr, loc);
  s->value = std::move(lhs);
  expect(Tok::kSemi, "after expression statement");
  return s;
}

StmtPtr Parser::parse_if() {
  SourceLoc loc = expect(Tok::kKwIf, "").loc;
  expect(Tok::kLParen, "after 'if'");
  auto s = std::make_unique<Stmt>(StmtKind::kIf, loc);
  s->cond = parse_expr();
  expect(Tok::kRParen, "after if condition");
  s->then_block = parse_stmt();
  if (accept(Tok::kKwElse)) s->else_block = parse_stmt();
  return s;
}

StmtPtr Parser::parse_while() {
  SourceLoc loc = expect(Tok::kKwWhile, "").loc;
  expect(Tok::kLParen, "after 'while'");
  auto s = std::make_unique<Stmt>(StmtKind::kWhile, loc);
  s->cond = parse_expr();
  expect(Tok::kRParen, "after while condition");
  s->body = parse_stmt();
  return s;
}

StmtPtr Parser::parse_for() {
  SourceLoc loc = expect(Tok::kKwFor, "").loc;
  expect(Tok::kLParen, "after 'for'");
  auto s = std::make_unique<Stmt>(StmtKind::kFor, loc);

  // init: `var = expr`
  {
    SourceLoc iloc = peek().loc;
    ExprPtr lhs = parse_postfix();
    expect(Tok::kAssign, "in for-init");
    auto init = std::make_unique<Stmt>(StmtKind::kAssign, iloc);
    init->target = std::move(lhs);
    init->value = parse_expr();
    s->init_stmt = std::move(init);
  }
  expect(Tok::kSemi, "after for-init");
  s->cond = parse_expr();
  expect(Tok::kSemi, "after for-condition");
  {
    SourceLoc sloc = peek().loc;
    ExprPtr lhs = parse_postfix();
    expect(Tok::kAssign, "in for-step");
    auto step = std::make_unique<Stmt>(StmtKind::kAssign, sloc);
    step->target = std::move(lhs);
    step->value = parse_expr();
    s->step_stmt = std::move(step);
  }
  expect(Tok::kRParen, "after for-step");
  s->body = parse_stmt();
  return s;
}

ExprPtr Parser::parse_expr() { return parse_or(); }

ExprPtr Parser::parse_or() {
  ExprPtr e = parse_and();
  while (check(Tok::kOrOr)) {
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::kBinary, loc);
    b->bin_op = BinOp::kOr;
    b->children.push_back(std::move(e));
    b->children.push_back(parse_and());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parse_and() {
  ExprPtr e = parse_cmp();
  while (check(Tok::kAndAnd)) {
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::kBinary, loc);
    b->bin_op = BinOp::kAnd;
    b->children.push_back(std::move(e));
    b->children.push_back(parse_cmp());
    e = std::move(b);
  }
  return e;
}

ExprPtr Parser::parse_cmp() {
  ExprPtr e = parse_add();
  for (;;) {
    BinOp op;
    switch (peek().kind) {
      case Tok::kEq: op = BinOp::kEq; break;
      case Tok::kNe: op = BinOp::kNe; break;
      case Tok::kLt: op = BinOp::kLt; break;
      case Tok::kLe: op = BinOp::kLe; break;
      case Tok::kGt: op = BinOp::kGt; break;
      case Tok::kGe: op = BinOp::kGe; break;
      default: return e;
    }
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::kBinary, loc);
    b->bin_op = op;
    b->children.push_back(std::move(e));
    b->children.push_back(parse_add());
    e = std::move(b);
  }
}

ExprPtr Parser::parse_add() {
  ExprPtr e = parse_mul();
  for (;;) {
    BinOp op;
    if (check(Tok::kPlus)) {
      op = BinOp::kAdd;
    } else if (check(Tok::kMinus)) {
      op = BinOp::kSub;
    } else {
      return e;
    }
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::kBinary, loc);
    b->bin_op = op;
    b->children.push_back(std::move(e));
    b->children.push_back(parse_mul());
    e = std::move(b);
  }
}

ExprPtr Parser::parse_mul() {
  ExprPtr e = parse_unary();
  for (;;) {
    BinOp op;
    if (check(Tok::kStar)) {
      op = BinOp::kMul;
    } else if (check(Tok::kSlash)) {
      op = BinOp::kDiv;
    } else if (check(Tok::kPercent)) {
      op = BinOp::kRem;
    } else {
      return e;
    }
    SourceLoc loc = advance().loc;
    auto b = std::make_unique<Expr>(ExprKind::kBinary, loc);
    b->bin_op = op;
    b->children.push_back(std::move(e));
    b->children.push_back(parse_unary());
    e = std::move(b);
  }
}

ExprPtr Parser::parse_unary() {
  if (check(Tok::kMinus)) {
    SourceLoc loc = advance().loc;
    auto u = std::make_unique<Expr>(ExprKind::kUnary, loc);
    u->un_op = UnOp::kNeg;
    u->children.push_back(parse_unary());
    return u;
  }
  if (check(Tok::kNot)) {
    SourceLoc loc = advance().loc;
    auto u = std::make_unique<Expr>(ExprKind::kUnary, loc);
    u->un_op = UnOp::kNot;
    u->children.push_back(parse_unary());
    return u;
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    if (check(Tok::kLBracket)) {
      SourceLoc loc = advance().loc;
      auto ix = std::make_unique<Expr>(ExprKind::kIndex, loc);
      ix->children.push_back(std::move(e));
      ix->children.push_back(parse_expr());
      expect(Tok::kRBracket, "after array index");
      e = std::move(ix);
    } else if (check(Tok::kDot)) {
      SourceLoc loc = advance().loc;
      const Token& fname = expect(Tok::kIdent, "as field name");
      auto fe = std::make_unique<Expr>(ExprKind::kField, loc);
      fe->name = fname.text;
      fe->children.push_back(std::move(e));
      e = std::move(fe);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::kIntLit:
      advance();
      return Expr::make_int(t.int_value, t.loc);
    case Tok::kRealLit:
      advance();
      return Expr::make_real(t.real_value, t.loc);
    case Tok::kKwNprocs: {
      advance();
      auto it = prog_->params.find("NPROCS");
      i64 p = it != prog_->params.end() ? it->second : 1;
      if (it == prog_->params.end())
        diags_.error(t.loc, "'nprocs' requires 'param NPROCS'");
      return Expr::make_int(p, t.loc);
    }
    case Tok::kIdent: {
      advance();
      // Params fold to integer literals here (compile-time constants).
      auto it = prog_->params.find(t.text);
      if (it != prog_->params.end()) return Expr::make_int(it->second, t.loc);
      if (check(Tok::kLParen)) {
        advance();
        auto call = std::make_unique<Expr>(ExprKind::kCall, t.loc);
        call->name = t.text;
        if (!check(Tok::kRParen)) {
          do {
            call->children.push_back(parse_expr());
          } while (accept(Tok::kComma));
        }
        expect(Tok::kRParen, "after call arguments");
        return call;
      }
      auto v = std::make_unique<Expr>(ExprKind::kVar, t.loc);
      v->name = t.text;
      return v;
    }
    case Tok::kLParen: {
      advance();
      ExprPtr e = parse_expr();
      expect(Tok::kRParen, "after parenthesized expression");
      return e;
    }
    default:
      fail(std::string("expected expression, found ") + tok_name(t.kind));
  }
}

ExprPtr Parser::parse_lvalue() {
  ExprPtr e = parse_postfix();
  if (!e->is_lvalue_shape()) fail("expected an lvalue");
  return e;
}

}  // namespace fsopt
