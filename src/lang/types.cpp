#include "lang/types.h"

namespace fsopt {

i64 scalar_size(ScalarKind k) {
  switch (k) {
    case ScalarKind::kInt: return 4;
    case ScalarKind::kReal: return 8;
    case ScalarKind::kLock: return 4;
  }
  return 4;
}

const char* scalar_name(ScalarKind k) {
  switch (k) {
    case ScalarKind::kInt: return "int";
    case ScalarKind::kReal: return "real";
    case ScalarKind::kLock: return "lock_t";
  }
  return "?";
}

int StructType::field_index(const std::string& fname) const {
  for (size_t i = 0; i < fields.size(); ++i)
    if (fields[i].name == fname) return static_cast<int>(i);
  return -1;
}

i64 ElemType::byte_size() const {
  return is_struct ? strct->size : scalar_size(scalar);
}

i64 ElemType::alignment() const {
  return is_struct ? strct->align : scalar_size(scalar);
}

std::string ElemType::str() const {
  return is_struct ? ("struct " + strct->name) : scalar_name(scalar);
}

const char* value_type_name(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "int";
    case ValueType::kReal: return "real";
    case ValueType::kVoid: return "void";
  }
  return "?";
}

}  // namespace fsopt
