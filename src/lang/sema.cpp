#include "lang/sema.h"

#include <algorithm>
#include <set>

#include "lang/parser.h"

namespace fsopt {

namespace {

ValueType scalar_value_type(ScalarKind k) {
  switch (k) {
    case ScalarKind::kInt: return ValueType::kInt;
    case ScalarKind::kReal: return ValueType::kReal;
    case ScalarKind::kLock: return ValueType::kInt;  // lock word reads as int
  }
  return ValueType::kInt;
}

}  // namespace

std::unique_ptr<Program> parse_and_check(std::string_view source,
                                         DiagnosticEngine& diags,
                                         const ParamOverrides& overrides) {
  auto prog = Parser::parse(source, diags, overrides);
  Sema sema(diags);
  sema.run(*prog);
  return prog;
}

void Sema::run(Program& prog) {
  prog_ = &prog;
  layout_structs(prog);

  auto it = prog.params.find("NPROCS");
  if (it == prog.params.end()) {
    diags_.warning({}, "no 'param NPROCS' declared; assuming 1 process");
    prog.nprocs = 1;
  } else {
    prog.nprocs = it->second;
    if (prog.nprocs < 1)
      diags_.error({}, "NPROCS must be at least 1");
  }

  prog.main = prog.find_func("main");
  if (prog.main == nullptr) {
    diags_.error({}, "program has no 'main' function");
  } else if (prog.main->ret != ValueType::kVoid ||
             prog.main->params.size() != 1 ||
             prog.main->params[0]->kind != ScalarKind::kInt) {
    diags_.error(prog.main->loc,
                 "main must be declared as 'void main(int pid)'");
  }

  for (auto& fn : prog.funcs) check_function(*fn);
  check_no_recursion();
  diags_.throw_if_errors();
}

void Sema::layout_structs(Program& prog) {
  for (auto& st : prog.structs) {
    i64 off = 0;
    i64 align = 1;
    std::set<std::string> seen;
    for (auto& f : st->fields) {
      if (!seen.insert(f.name).second)
        diags_.error(f.loc, "duplicate field '" + f.name + "' in struct " +
                                st->name);
      i64 a = scalar_size(f.kind);
      align = std::max(align, a);
      off = round_up(off, a);
      f.offset = off;
      off += f.byte_size();
    }
    st->align = align;
    st->size = round_up(std::max<i64>(off, 1), align);
  }
}

LocalSym* Sema::lookup_local(const std::string& name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
    for (LocalSym* s : *it)
      if (s->name == name) return s;
  return nullptr;
}

LocalSym* Sema::declare_local(const std::string& name, ScalarKind kind,
                              SourceLoc loc) {
  if (lookup_local(name) != nullptr)
    diags_.error(loc, "redeclaration of '" + name + "'");
  if (prog_->find_global(name) != nullptr)
    diags_.error(loc, "local '" + name + "' shadows a shared global");
  auto sym = std::make_unique<LocalSym>();
  sym->name = name;
  sym->kind = kind;
  sym->loc = loc;
  sym->slot = static_cast<int>(cur_fn_->locals.size());
  LocalSym* raw = sym.get();
  cur_fn_->locals.push_back(std::move(sym));
  scopes_.back().push_back(raw);
  return raw;
}

void Sema::check_function(FuncDecl& fn) {
  cur_fn_ = &fn;
  in_main_ = fn.name == "main";
  scopes_.clear();
  scopes_.emplace_back();
  // Parameters were created by the parser; assign slots and make visible.
  int slot = 0;
  for (auto& l : fn.locals) l->slot = slot++;
  for (LocalSym* p : fn.params) scopes_.back().push_back(p);
  if (fn.body) check_stmt(*fn.body, /*loop_depth=*/0);
  cur_fn_ = nullptr;
}

void Sema::check_stmt(Stmt& s, int loop_depth) {
  switch (s.kind) {
    case StmtKind::kBlock: {
      scopes_.emplace_back();
      for (auto& c : s.stmts) check_stmt(*c, loop_depth);
      scopes_.pop_back();
      return;
    }
    case StmtKind::kLocalDecl: {
      if (s.init) {
        ValueType t = check_expr(*s.init);
        if (t != scalar_value_type(s.decl_kind))
          diags_.error(s.loc, "initializer type mismatch for '" + s.name +
                                  "': expected " +
                                  value_type_name(
                                      scalar_value_type(s.decl_kind)) +
                                  ", got " + value_type_name(t));
      }
      s.local = declare_local(s.name, s.decl_kind, s.loc);
      return;
    }
    case StmtKind::kAssign: {
      ValueType lt = check_lvalue(*s.target, /*lock_context=*/false);
      // Assigning to a function parameter would break the PDV invariance
      // guarantee (§2: PDVs are invariant over the process lifetime).
      if (s.target->kind == ExprKind::kVar && s.target->local != nullptr &&
          s.target->local->is_param)
        diags_.error(s.loc, "cannot assign to parameter '" +
                                s.target->name + "'");
      ValueType rt = check_expr(*s.value);
      if (lt != rt)
        diags_.error(s.loc, std::string("assignment type mismatch: ") +
                                value_type_name(lt) + " = " +
                                value_type_name(rt));
      return;
    }
    case StmtKind::kIf: {
      if (check_expr(*s.cond) != ValueType::kInt)
        diags_.error(s.loc, "if condition must be int");
      check_stmt(*s.then_block, loop_depth);
      if (s.else_block) check_stmt(*s.else_block, loop_depth);
      return;
    }
    case StmtKind::kWhile: {
      if (check_expr(*s.cond) != ValueType::kInt)
        diags_.error(s.loc, "while condition must be int");
      check_stmt(*s.body, loop_depth + 1);
      return;
    }
    case StmtKind::kFor: {
      check_stmt(*s.init_stmt, loop_depth);
      if (check_expr(*s.cond) != ValueType::kInt)
        diags_.error(s.loc, "for condition must be int");
      check_stmt(*s.step_stmt, loop_depth);
      check_stmt(*s.body, loop_depth + 1);
      return;
    }
    case StmtKind::kExpr: {
      if (s.value->kind != ExprKind::kCall)
        diags_.error(s.loc, "expression statement must be a call");
      check_expr(*s.value);
      return;
    }
    case StmtKind::kReturn: {
      ValueType t = ValueType::kVoid;
      if (s.value) t = check_expr(*s.value);
      if (t != cur_fn_->ret)
        diags_.error(s.loc, std::string("return type mismatch: function "
                                        "returns ") +
                                value_type_name(cur_fn_->ret));
      return;
    }
    case StmtKind::kBarrier: {
      if (!in_main_)
        diags_.error(s.loc,
                     "barrier() is only allowed in main (the "
                     "non-concurrency analysis delimits phases there)");
      return;
    }
    case StmtKind::kLock:
    case StmtKind::kUnlock: {
      check_lvalue(*s.target, /*lock_context=*/true);
      return;
    }
  }
}

ValueType Sema::check_lvalue(Expr& e, bool lock_context) {
  // Resolve the root variable of the chain.
  Expr* root = &e;
  while (root->kind == ExprKind::kIndex || root->kind == ExprKind::kField)
    root = root->children[0].get();
  if (root->kind != ExprKind::kVar) {
    diags_.error(e.loc, "expected an lvalue");
    return ValueType::kInt;
  }

  LocalSym* local = lookup_local(root->name);
  if (local != nullptr) {
    root->local = local;
    root->type = scalar_value_type(local->kind);
    if (&e != root) {
      diags_.error(e.loc, "local '" + root->name + "' is a scalar");
      return ValueType::kInt;
    }
    if (lock_context)
      diags_.error(e.loc, "lock/unlock requires a shared lock_t");
    if (local->kind == ScalarKind::kLock)
      diags_.error(e.loc, "locals cannot have lock type");
    e.type = root->type;
    return e.type;
  }

  const GlobalSym* g = prog_->find_global(root->name);
  if (g == nullptr) {
    diags_.error(root->loc, "unknown variable '" + root->name + "'");
    return ValueType::kInt;
  }
  root->global = g;

  // Re-walk the chain top-down, tracking how much of the shape is consumed.
  // Collect chain inner-to-outer then reverse.
  std::vector<Expr*> chain;
  for (Expr* cur = &e; cur != root; cur = cur->children[0].get())
    chain.push_back(cur);
  std::reverse(chain.begin(), chain.end());

  size_t array_dims_used = 0;
  const StructField* field = nullptr;
  bool field_indexed = false;
  for (Expr* c : chain) {
    if (c->kind == ExprKind::kIndex) {
      if (check_expr(*c->children[1]) != ValueType::kInt)
        diags_.error(c->loc, "array index must be int");
      if (field == nullptr) {
        if (array_dims_used >= g->dims.size()) {
          diags_.error(c->loc, "too many indices for '" + g->name + "'");
          return ValueType::kInt;
        }
        ++array_dims_used;
      } else {
        if (field->array_len == 0 || field_indexed) {
          diags_.error(c->loc, "cannot index field '" + field->name + "'");
          return ValueType::kInt;
        }
        field_indexed = true;
      }
      c->type = ValueType::kInt;  // refined below at the end
    } else {  // kField
      if (field != nullptr) {
        diags_.error(c->loc, "nested field access is not supported");
        return ValueType::kInt;
      }
      if (!g->elem.is_struct) {
        diags_.error(c->loc, "'" + g->name + "' is not a struct array");
        return ValueType::kInt;
      }
      if (array_dims_used != g->dims.size()) {
        diags_.error(c->loc, "must index all array dimensions of '" +
                                 g->name + "' before field access");
        return ValueType::kInt;
      }
      int fi = g->elem.strct->field_index(c->name);
      if (fi < 0) {
        diags_.error(c->loc, "struct " + g->elem.strct->name +
                                 " has no field '" + c->name + "'");
        return ValueType::kInt;
      }
      c->field_index = fi;
      field = &g->elem.strct->fields[static_cast<size_t>(fi)];
    }
  }

  // The chain must denote a scalar location.
  ScalarKind end_kind;
  if (field != nullptr) {
    if (field->array_len > 0 && !field_indexed) {
      diags_.error(e.loc, "field '" + field->name + "' is an array; index it");
      return ValueType::kInt;
    }
    end_kind = field->kind;
  } else {
    if (g->elem.is_struct) {
      diags_.error(e.loc, "cannot use a whole struct as a value");
      return ValueType::kInt;
    }
    if (array_dims_used != g->dims.size()) {
      diags_.error(e.loc, "missing array indices for '" + g->name + "'");
      return ValueType::kInt;
    }
    end_kind = g->elem.scalar;
  }

  if (lock_context) {
    if (end_kind != ScalarKind::kLock)
      diags_.error(e.loc, "lock/unlock requires a lock_t location");
  } else if (end_kind == ScalarKind::kLock) {
    diags_.error(e.loc,
                 "lock_t data may only be accessed via lock()/unlock()");
  }
  e.type = scalar_value_type(end_kind);
  return e.type;
}

ValueType Sema::check_expr(Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      e.type = ValueType::kInt;
      return e.type;
    case ExprKind::kRealLit:
      e.type = ValueType::kReal;
      return e.type;
    case ExprKind::kVar:
    case ExprKind::kIndex:
    case ExprKind::kField:
      return check_lvalue(e, /*lock_context=*/false);
    case ExprKind::kUnary: {
      ValueType t = check_expr(*e.children[0]);
      if (e.un_op == UnOp::kNot && t != ValueType::kInt)
        diags_.error(e.loc, "'!' requires an int operand");
      e.type = t;
      return t;
    }
    case ExprKind::kBinary: {
      ValueType lt = check_expr(*e.children[0]);
      ValueType rt = check_expr(*e.children[1]);
      if (lt != rt) {
        diags_.error(e.loc, std::string("operand type mismatch: ") +
                                value_type_name(lt) + " vs " +
                                value_type_name(rt));
        e.type = lt;
        return e.type;
      }
      switch (e.bin_op) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
          e.type = lt;
          break;
        case BinOp::kRem:
        case BinOp::kAnd:
        case BinOp::kOr:
          if (lt != ValueType::kInt)
            diags_.error(e.loc, "operator requires int operands");
          e.type = ValueType::kInt;
          break;
        default:  // comparisons
          e.type = ValueType::kInt;
          break;
      }
      return e.type;
    }
    case ExprKind::kCall: {
      std::vector<ValueType> at;
      for (auto& a : e.children) at.push_back(check_expr(*a));
      // Intrinsics first.
      auto need = [&](size_t n) {
        if (at.size() != n)
          diags_.error(e.loc, "wrong number of arguments to '" + e.name + "'");
        while (at.size() < n) at.push_back(ValueType::kInt);
      };
      if (e.name == "lcg") {
        e.intrinsic = Intrinsic::kLcg;
        need(1);
        if (at[0] != ValueType::kInt)
          diags_.error(e.loc, "lcg takes an int");
        e.type = ValueType::kInt;
        return e.type;
      }
      if (e.name == "abs") {
        e.intrinsic = Intrinsic::kAbs;
        need(1);
        e.type = at[0];
        return e.type;
      }
      if (e.name == "min" || e.name == "max") {
        e.intrinsic = e.name == "min" ? Intrinsic::kMin : Intrinsic::kMax;
        need(2);
        if (at[0] != at[1])
          diags_.error(e.loc, "min/max operand types must match");
        e.type = at[0];
        return e.type;
      }
      if (e.name == "itor") {
        e.intrinsic = Intrinsic::kItor;
        need(1);
        if (at[0] != ValueType::kInt) diags_.error(e.loc, "itor takes an int");
        e.type = ValueType::kReal;
        return e.type;
      }
      if (e.name == "rtoi") {
        e.intrinsic = Intrinsic::kRtoi;
        need(1);
        if (at[0] != ValueType::kReal)
          diags_.error(e.loc, "rtoi takes a real");
        e.type = ValueType::kInt;
        return e.type;
      }
      if (e.name == "sqrt") {
        e.intrinsic = Intrinsic::kSqrt;
        need(1);
        if (at[0] != ValueType::kReal)
          diags_.error(e.loc, "sqrt takes a real");
        e.type = ValueType::kReal;
        return e.type;
      }
      FuncDecl* callee = prog_->find_func(e.name);
      if (callee == nullptr) {
        diags_.error(e.loc, "unknown function '" + e.name + "'");
        e.type = ValueType::kInt;
        return e.type;
      }
      if (callee->name == "main")
        diags_.error(e.loc, "main may not be called");
      e.callee = callee;
      if (at.size() != callee->params.size()) {
        diags_.error(e.loc, "wrong number of arguments to '" + e.name + "'");
      } else {
        for (size_t i = 0; i < at.size(); ++i) {
          if (at[i] != scalar_value_type(callee->params[i]->kind))
            diags_.error(e.children[i]->loc,
                         "argument type mismatch in call to '" + e.name + "'");
        }
      }
      e.type = callee->ret;
      return e.type;
    }
  }
  return ValueType::kVoid;
}

void Sema::check_no_recursion() {
  // DFS over the call graph looking for cycles.  The paper's interprocedural
  // analyses (and our bottom-up summary translation) require acyclic calls.
  enum class Mark : u8 { kWhite, kGray, kBlack };
  std::vector<Mark> mark(prog_->funcs.size(), Mark::kWhite);

  std::vector<std::vector<int>> edges(prog_->funcs.size());
  for (auto& fn : prog_->funcs) {
    std::vector<int>& out = edges[static_cast<size_t>(fn->id)];
    // Walk statements/expressions iteratively.
    std::vector<const Stmt*> sstack;
    std::vector<const Expr*> estack;
    if (fn->body) sstack.push_back(fn->body.get());
    auto push_expr = [&](const Expr* e) {
      if (e != nullptr) estack.push_back(e);
    };
    while (!sstack.empty() || !estack.empty()) {
      if (!estack.empty()) {
        const Expr* e = estack.back();
        estack.pop_back();
        if (e->kind == ExprKind::kCall && e->callee != nullptr)
          out.push_back(e->callee->id);
        for (const auto& c : e->children) push_expr(c.get());
        continue;
      }
      const Stmt* s = sstack.back();
      sstack.pop_back();
      for (const auto& c : s->stmts) sstack.push_back(c.get());
      push_expr(s->init.get());
      push_expr(s->target.get());
      push_expr(s->value.get());
      push_expr(s->cond.get());
      for (const Stmt* c : {s->then_block.get(), s->else_block.get(),
                            s->body.get(), s->init_stmt.get(),
                            s->step_stmt.get()})
        if (c != nullptr) sstack.push_back(c);
    }
  }

  // Iterative DFS with explicit gray marking.
  for (size_t root = 0; root < prog_->funcs.size(); ++root) {
    if (mark[root] != Mark::kWhite) continue;
    std::vector<std::pair<int, size_t>> dfs;  // (node, next-edge)
    dfs.push_back({static_cast<int>(root), 0});
    mark[root] = Mark::kGray;
    while (!dfs.empty()) {
      auto& [node, next] = dfs.back();
      auto& outs = edges[static_cast<size_t>(node)];
      if (next < outs.size()) {
        int succ = outs[next++];
        if (mark[static_cast<size_t>(succ)] == Mark::kGray) {
          diags_.error(prog_->funcs[static_cast<size_t>(succ)]->loc,
                       "recursive call cycle involving '" +
                           prog_->funcs[static_cast<size_t>(succ)]->name +
                           "' (recursion is not supported)");
          return;
        }
        if (mark[static_cast<size_t>(succ)] == Mark::kWhite) {
          mark[static_cast<size_t>(succ)] = Mark::kGray;
          dfs.push_back({succ, 0});
        }
      } else {
        mark[static_cast<size_t>(node)] = Mark::kBlack;
        dfs.pop_back();
      }
    }
  }
}

}  // namespace fsopt
