// Hand-written lexer for PPL.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.h"

namespace fsopt {

/// Tokenizes an entire PPL source buffer.  Comments are `//` to end of line
/// and `/* ... */`.  Reports malformed tokens through `diags` and resumes.
class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Lex the whole buffer; the final token is always kEof.
  std::vector<Token> lex_all();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool match(char c);
  void skip_ws_and_comments();
  Token make(Tok kind);
  Token lex_number();
  Token lex_ident();
  SourceLoc here() const { return {line_, col_}; }

  std::string_view src_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  SourceLoc tok_start_;
  size_t tok_start_pos_ = 0;
};

}  // namespace fsopt
