// Source locations and diagnostics for the PPL front end.
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace fsopt {

/// A position in a PPL source buffer (1-based line/column).
struct SourceLoc {
  int line = 0;
  int col = 0;
  bool valid() const { return line > 0; }
  std::string str() const;
};

enum class DiagSeverity { kError, kWarning, kNote };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  SourceLoc loc;
  std::string message;
  std::string str() const;
};

/// Thrown when compilation cannot proceed (after diagnostics were recorded).
/// Carries the structured diagnostics alongside the rendered what() text,
/// so drivers (tools/fsoptc.cpp) can report each message with its source
/// location and severity instead of one opaque blob.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
  CompileError(const std::string& what, std::vector<Diagnostic> diags)
      : std::runtime_error(what), diagnostics(std::move(diags)) {}

  std::vector<Diagnostic> diagnostics;  // may be empty (internal throws)
};

/// Collects diagnostics for one compilation.  Errors are recorded rather
/// than thrown so that sema can report several problems at once; callers
/// invoke `throw_if_errors()` at phase boundaries.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void note(SourceLoc loc, std::string msg);

  bool has_errors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Render all diagnostics, one per line.
  std::string render() const;

  /// Throws CompileError (with all rendered diagnostics) if any error was
  /// recorded.
  void throw_if_errors() const;

 private:
  std::vector<Diagnostic> diags_;
  int error_count_ = 0;
};

}  // namespace fsopt
