// Minimal JSON reading and writing shared by every emitter in the tree.
//
// Three hand-rolled JSON serializers had grown independently — the bench
// harness's JsonReport, PipelineMetrics::to_json, and (new) the runtime
// trace writer.  Each re-derived escaping and comma placement; this header
// is the one copy.  Writer is a streaming builder over a std::string:
// begin/end object/array, key, value — no allocation beyond the output
// string.  `validate` is a strict syntax checker used by the tests to
// assert emitted documents are well-formed.  `parse` is a small DOM
// parser for the inputs the tree must *read back* — transform-plan files
// (`fsoptc --plan-in`, transform/plan_ir.h); object members preserve
// document order so a parse → re-serialize round trip is byte-stable.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/common.h"

namespace fsopt::json {

/// JSON string-escape `s` (quotes, backslashes, control characters; bytes
/// >= 0x20 pass through, so UTF-8 input stays UTF-8).  Returns the body
/// only — no surrounding quotes.
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming JSON builder.  With `indent > 0` the output is pretty-printed
/// (that many spaces per nesting level); with 0 it is compact.  Usage:
///
///   std::string out;
///   json::Writer w(&out, 2);
///   w.begin_object().key("xs").begin_array().value(1.5).end_array()
///    .end_object();
///
/// The writer only sequences tokens (commas, newlines, indentation); it is
/// the caller's job to call key() exactly once before each object member
/// value.
class Writer {
 public:
  explicit Writer(std::string* out, int indent = 0)
      : out_(out), indent_(indent) {}

  Writer& begin_object() {
    before_value();
    *out_ += '{';
    stack_.push_back({false, 0});
    return *this;
  }
  Writer& end_object() { return close('}'); }

  Writer& begin_array() {
    before_value();
    *out_ += '[';
    stack_.push_back({true, 0});
    return *this;
  }
  Writer& end_array() { return close(']'); }

  Writer& key(std::string_view k) {
    separate();
    *out_ += '"';
    *out_ += escape(k);
    *out_ += indent_ > 0 ? "\": " : "\":";
    have_key_ = true;
    return *this;
  }

  /// Number with an explicit printf format (e.g. "%.9f" for pass times).
  Writer& value(double v, const char* fmt) {
    before_value();
    if (!std::isfinite(v)) {
      *out_ += "null";  // JSON has no inf/nan
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    *out_ += buf;
    return *this;
  }

  /// Strings, bools, integers and floating-point values, dispatched on the
  /// argument type.  Doubles default to %.17g (round-trip exact).
  template <typename T>
  Writer& value(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      before_value();
      *out_ += v ? "true" : "false";
    } else if constexpr (std::is_floating_point_v<T>) {
      return value(static_cast<double>(v), "%.17g");
    } else if constexpr (std::is_integral_v<T>) {
      before_value();
      char buf[32];
      if constexpr (std::is_signed_v<T>)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
      else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
      *out_ += buf;
    } else {  // string-ish
      before_value();
      *out_ += '"';
      *out_ += escape(std::string_view(v));
      *out_ += '"';
    }
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }

  Writer& null() {
    before_value();
    *out_ += "null";
    return *this;
  }

  /// True once every begin_* has been matched by its end_*.
  bool done() const { return stack_.empty() && wrote_root_; }

 private:
  struct Level {
    bool array;
    size_t count;
  };

  void newline(size_t depth) {
    if (indent_ == 0) return;
    *out_ += '\n';
    out_->append(depth * static_cast<size_t>(indent_), ' ');
  }

  // Comma/newline before a key (in objects) or a value (in arrays).
  void separate() {
    if (stack_.empty()) return;
    if (stack_.back().count++ > 0) *out_ += ',';
    newline(stack_.size());
  }

  void before_value() {
    if (have_key_) {
      have_key_ = false;  // key() already separated
      return;
    }
    separate();
    if (stack_.empty()) wrote_root_ = true;
  }

  Writer& close(char c) {
    bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty) newline(stack_.size());
    *out_ += c;
    if (stack_.empty()) {
      wrote_root_ = true;
      if (indent_ > 0) *out_ += '\n';
    }
    return *this;
  }

  std::string* out_;
  int indent_;
  std::vector<Level> stack_;
  bool have_key_ = false;
  bool wrote_root_ = false;
};

// ---------------------------------------------------------------------------
// Validation (tests only — not a parser; values are never materialized).
// ---------------------------------------------------------------------------

namespace detail {

struct Cursor {
  std::string_view s;
  size_t i = 0;
  int depth = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                      s[i] == '\r'))
      ++i;
  }
  bool lit(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }
};

inline bool check_value(Cursor& c);

inline bool check_string(Cursor& c) {
  if (c.eof() || c.peek() != '"') return false;
  ++c.i;
  while (!c.eof()) {
    char ch = c.s[c.i];
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '"') {
      ++c.i;
      return true;
    }
    if (ch == '\\') {
      ++c.i;
      if (c.eof()) return false;
      char e = c.s[c.i];
      if (e == 'u') {
        for (int k = 1; k <= 4; ++k)
          if (c.i + static_cast<size_t>(k) >= c.s.size() ||
              !std::isxdigit(static_cast<unsigned char>(
                  c.s[c.i + static_cast<size_t>(k)])))
            return false;
        c.i += 4;
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                 e != 'f' && e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    }
    ++c.i;
  }
  return false;  // unterminated
}

inline bool check_number(Cursor& c) {
  size_t start = c.i;
  if (!c.eof() && c.peek() == '-') ++c.i;
  size_t digits = c.i;
  while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
    ++c.i;
  if (c.i == digits) return false;
  if (c.s[digits] == '0' && c.i - digits > 1) return false;  // no leading 0
  if (!c.eof() && c.peek() == '.') {
    ++c.i;
    size_t frac = c.i;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
      ++c.i;
    if (c.i == frac) return false;
  }
  if (!c.eof() && (c.peek() == 'e' || c.peek() == 'E')) {
    ++c.i;
    if (!c.eof() && (c.peek() == '+' || c.peek() == '-')) ++c.i;
    size_t exp = c.i;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
      ++c.i;
    if (c.i == exp) return false;
  }
  return c.i > start;
}

inline bool check_object(Cursor& c) {
  ++c.i;  // '{'
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.i;
    return true;
  }
  for (;;) {
    c.skip_ws();
    if (!check_string(c)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') return false;
    ++c.i;
    if (!check_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool check_array(Cursor& c) {
  ++c.i;  // '['
  c.skip_ws();
  if (!c.eof() && c.peek() == ']') {
    ++c.i;
    return true;
  }
  for (;;) {
    if (!check_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == ']') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool check_value(Cursor& c) {
  c.skip_ws();
  if (c.eof()) return false;
  if (++c.depth > 512) return false;  // nesting bomb guard
  bool ok;
  switch (c.peek()) {
    case '{': ok = check_object(c); break;
    case '[': ok = check_array(c); break;
    case '"': ok = check_string(c); break;
    case 't': ok = c.lit("true"); break;
    case 'f': ok = c.lit("false"); break;
    case 'n': ok = c.lit("null"); break;
    default: ok = check_number(c); break;
  }
  --c.depth;
  return ok;
}

}  // namespace detail

/// True iff `doc` is exactly one well-formed JSON value (strict: no
/// trailing garbage, no unterminated strings, no bare NaN/Infinity).
inline bool validate(std::string_view doc) {
  detail::Cursor c{doc};
  if (!detail::check_value(c)) return false;
  c.skip_ws();
  return c.eof();
}

// ---------------------------------------------------------------------------
// Parsing (DOM).  Small by design: fsopt only reads back documents it (or a
// user editing one of its plan files) wrote.  Numbers are held as doubles —
// every integer fsopt serializes (block sizes, dims, miss counts) fits —
// and object members keep document order, so serializers that iterate the
// DOM reproduce their input byte for byte.
// ---------------------------------------------------------------------------

class Value {
 public:
  enum class Kind : unsigned char {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return flag_; }
  double as_number() const { return num_; }
  i64 as_i64() const { return static_cast<i64>(num_); }
  const std::string& as_string() const { return str_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member by key, or nullptr (first match; fsopt never emits
  /// duplicate keys).
  const Value* get(std::string_view key) const {
    for (const auto& [k, v] : members_)
      if (k == key) return &v;
    return nullptr;
  }

  static Value make_null() { return Value(Kind::kNull); }
  static Value make_bool(bool b) {
    Value v(Kind::kBool);
    v.flag_ = b;
    return v;
  }
  static Value make_number(double d) {
    Value v(Kind::kNumber);
    v.num_ = d;
    return v;
  }
  static Value make_string(std::string s) {
    Value v(Kind::kString);
    v.str_ = std::move(s);
    return v;
  }
  static Value make_array() { return Value(Kind::kArray); }
  static Value make_object() { return Value(Kind::kObject); }

  std::vector<Value>& items() { return items_; }
  std::vector<std::pair<std::string, Value>>& members() { return members_; }

 private:
  explicit Value(Kind k) : kind_(k) {}

  Kind kind_ = Kind::kNull;
  bool flag_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

namespace detail {

inline bool parse_string_body(Cursor& c, std::string& out) {
  size_t start = c.i;
  if (!check_string(c)) return false;
  std::string_view raw = c.s.substr(start + 1, c.i - start - 2);
  out.clear();
  out.reserve(raw.size());
  for (size_t k = 0; k < raw.size(); ++k) {
    char ch = raw[k];
    if (ch != '\\') {
      out += ch;
      continue;
    }
    char e = raw[++k];  // check_string guarantees a valid escape follows
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        unsigned code = 0;
        for (int d = 0; d < 4; ++d) {
          char h = raw[++k];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else
            code |= static_cast<unsigned>(h - 'A' + 10);
        }
        // Escaped code points are encoded back to UTF-8 (fsopt only emits
        // \u00xx control escapes, but accept the full BMP).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
    }
  }
  return true;
}

inline bool parse_value(Cursor& c, Value& out);

inline bool parse_object(Cursor& c, Value& out) {
  out = Value::make_object();
  ++c.i;  // '{'
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.i;
    return true;
  }
  for (;;) {
    c.skip_ws();
    std::string key;
    if (!parse_string_body(c, key)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') return false;
    ++c.i;
    Value v = Value::make_null();
    if (!parse_value(c, v)) return false;
    out.members().emplace_back(std::move(key), std::move(v));
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool parse_array(Cursor& c, Value& out) {
  out = Value::make_array();
  ++c.i;  // '['
  c.skip_ws();
  if (!c.eof() && c.peek() == ']') {
    ++c.i;
    return true;
  }
  for (;;) {
    Value v = Value::make_null();
    if (!parse_value(c, v)) return false;
    out.items().push_back(std::move(v));
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == ']') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool parse_value(Cursor& c, Value& out) {
  c.skip_ws();
  if (c.eof()) return false;
  if (++c.depth > 512) return false;  // nesting bomb guard
  bool ok;
  switch (c.peek()) {
    case '{': ok = parse_object(c, out); break;
    case '[': ok = parse_array(c, out); break;
    case '"': {
      std::string s;
      ok = parse_string_body(c, s);
      if (ok) out = Value::make_string(std::move(s));
      break;
    }
    case 't':
      ok = c.lit("true");
      if (ok) out = Value::make_bool(true);
      break;
    case 'f':
      ok = c.lit("false");
      if (ok) out = Value::make_bool(false);
      break;
    case 'n':
      ok = c.lit("null");
      if (ok) out = Value::make_null();
      break;
    default: {
      size_t start = c.i;
      ok = check_number(c);
      if (ok) {
        std::string num(c.s.substr(start, c.i - start));
        out = Value::make_number(std::strtod(num.c_str(), nullptr));
      }
      break;
    }
  }
  --c.depth;
  return ok;
}

}  // namespace detail

/// Parse exactly one JSON value (same strictness as validate); nullopt on
/// any syntax error.
inline std::optional<Value> parse(std::string_view doc) {
  detail::Cursor c{doc};
  Value v = Value::make_null();
  if (!detail::parse_value(c, v)) return std::nullopt;
  c.skip_ws();
  if (!c.eof()) return std::nullopt;
  return v;
}

}  // namespace fsopt::json
