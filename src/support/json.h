// Minimal JSON writing shared by every emitter in the tree.
//
// Three hand-rolled JSON serializers had grown independently — the bench
// harness's JsonReport, PipelineMetrics::to_json, and (new) the runtime
// trace writer.  Each re-derived escaping and comma placement; this header
// is the one copy.  Writer is a streaming builder over a std::string:
// begin/end object/array, key, value — no DOM, no allocation beyond the
// output string.  `validate` is a strict syntax checker used by the tests
// to assert emitted documents are well-formed without pulling in a parser
// dependency.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "support/common.h"

namespace fsopt::json {

/// JSON string-escape `s` (quotes, backslashes, control characters; bytes
/// >= 0x20 pass through, so UTF-8 input stays UTF-8).  Returns the body
/// only — no surrounding quotes.
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming JSON builder.  With `indent > 0` the output is pretty-printed
/// (that many spaces per nesting level); with 0 it is compact.  Usage:
///
///   std::string out;
///   json::Writer w(&out, 2);
///   w.begin_object().key("xs").begin_array().value(1.5).end_array()
///    .end_object();
///
/// The writer only sequences tokens (commas, newlines, indentation); it is
/// the caller's job to call key() exactly once before each object member
/// value.
class Writer {
 public:
  explicit Writer(std::string* out, int indent = 0)
      : out_(out), indent_(indent) {}

  Writer& begin_object() {
    before_value();
    *out_ += '{';
    stack_.push_back({false, 0});
    return *this;
  }
  Writer& end_object() { return close('}'); }

  Writer& begin_array() {
    before_value();
    *out_ += '[';
    stack_.push_back({true, 0});
    return *this;
  }
  Writer& end_array() { return close(']'); }

  Writer& key(std::string_view k) {
    separate();
    *out_ += '"';
    *out_ += escape(k);
    *out_ += indent_ > 0 ? "\": " : "\":";
    have_key_ = true;
    return *this;
  }

  /// Number with an explicit printf format (e.g. "%.9f" for pass times).
  Writer& value(double v, const char* fmt) {
    before_value();
    if (!std::isfinite(v)) {
      *out_ += "null";  // JSON has no inf/nan
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    *out_ += buf;
    return *this;
  }

  /// Strings, bools, integers and floating-point values, dispatched on the
  /// argument type.  Doubles default to %.17g (round-trip exact).
  template <typename T>
  Writer& value(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      before_value();
      *out_ += v ? "true" : "false";
    } else if constexpr (std::is_floating_point_v<T>) {
      return value(static_cast<double>(v), "%.17g");
    } else if constexpr (std::is_integral_v<T>) {
      before_value();
      char buf[32];
      if constexpr (std::is_signed_v<T>)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
      else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
      *out_ += buf;
    } else {  // string-ish
      before_value();
      *out_ += '"';
      *out_ += escape(std::string_view(v));
      *out_ += '"';
    }
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }

  Writer& null() {
    before_value();
    *out_ += "null";
    return *this;
  }

  /// True once every begin_* has been matched by its end_*.
  bool done() const { return stack_.empty() && wrote_root_; }

 private:
  struct Level {
    bool array;
    size_t count;
  };

  void newline(size_t depth) {
    if (indent_ == 0) return;
    *out_ += '\n';
    out_->append(depth * static_cast<size_t>(indent_), ' ');
  }

  // Comma/newline before a key (in objects) or a value (in arrays).
  void separate() {
    if (stack_.empty()) return;
    if (stack_.back().count++ > 0) *out_ += ',';
    newline(stack_.size());
  }

  void before_value() {
    if (have_key_) {
      have_key_ = false;  // key() already separated
      return;
    }
    separate();
    if (stack_.empty()) wrote_root_ = true;
  }

  Writer& close(char c) {
    bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty) newline(stack_.size());
    *out_ += c;
    if (stack_.empty()) {
      wrote_root_ = true;
      if (indent_ > 0) *out_ += '\n';
    }
    return *this;
  }

  std::string* out_;
  int indent_;
  std::vector<Level> stack_;
  bool have_key_ = false;
  bool wrote_root_ = false;
};

// ---------------------------------------------------------------------------
// Validation (tests only — not a parser; values are never materialized).
// ---------------------------------------------------------------------------

namespace detail {

struct Cursor {
  std::string_view s;
  size_t i = 0;
  int depth = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                      s[i] == '\r'))
      ++i;
  }
  bool lit(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }
};

inline bool check_value(Cursor& c);

inline bool check_string(Cursor& c) {
  if (c.eof() || c.peek() != '"') return false;
  ++c.i;
  while (!c.eof()) {
    char ch = c.s[c.i];
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '"') {
      ++c.i;
      return true;
    }
    if (ch == '\\') {
      ++c.i;
      if (c.eof()) return false;
      char e = c.s[c.i];
      if (e == 'u') {
        for (int k = 1; k <= 4; ++k)
          if (c.i + static_cast<size_t>(k) >= c.s.size() ||
              !std::isxdigit(static_cast<unsigned char>(
                  c.s[c.i + static_cast<size_t>(k)])))
            return false;
        c.i += 4;
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                 e != 'f' && e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    }
    ++c.i;
  }
  return false;  // unterminated
}

inline bool check_number(Cursor& c) {
  size_t start = c.i;
  if (!c.eof() && c.peek() == '-') ++c.i;
  size_t digits = c.i;
  while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
    ++c.i;
  if (c.i == digits) return false;
  if (c.s[digits] == '0' && c.i - digits > 1) return false;  // no leading 0
  if (!c.eof() && c.peek() == '.') {
    ++c.i;
    size_t frac = c.i;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
      ++c.i;
    if (c.i == frac) return false;
  }
  if (!c.eof() && (c.peek() == 'e' || c.peek() == 'E')) {
    ++c.i;
    if (!c.eof() && (c.peek() == '+' || c.peek() == '-')) ++c.i;
    size_t exp = c.i;
    while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
      ++c.i;
    if (c.i == exp) return false;
  }
  return c.i > start;
}

inline bool check_object(Cursor& c) {
  ++c.i;  // '{'
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.i;
    return true;
  }
  for (;;) {
    c.skip_ws();
    if (!check_string(c)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') return false;
    ++c.i;
    if (!check_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool check_array(Cursor& c) {
  ++c.i;  // '['
  c.skip_ws();
  if (!c.eof() && c.peek() == ']') {
    ++c.i;
    return true;
  }
  for (;;) {
    if (!check_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == ']') {
      ++c.i;
      return true;
    }
    return false;
  }
}

inline bool check_value(Cursor& c) {
  c.skip_ws();
  if (c.eof()) return false;
  if (++c.depth > 512) return false;  // nesting bomb guard
  bool ok;
  switch (c.peek()) {
    case '{': ok = check_object(c); break;
    case '[': ok = check_array(c); break;
    case '"': ok = check_string(c); break;
    case 't': ok = c.lit("true"); break;
    case 'f': ok = c.lit("false"); break;
    case 'n': ok = c.lit("null"); break;
    default: ok = check_number(c); break;
  }
  --c.depth;
  return ok;
}

}  // namespace detail

/// True iff `doc` is exactly one well-formed JSON value (strict: no
/// trailing garbage, no unterminated strings, no bare NaN/Infinity).
inline bool validate(std::string_view doc) {
  detail::Cursor c{doc};
  if (!detail::check_value(c)) return false;
  c.skip_ws();
  return c.eof();
}

}  // namespace fsopt::json
