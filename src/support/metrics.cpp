#include "support/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <new>
#include <sstream>

#include "support/json.h"

namespace fsopt {

namespace {
// Constant-initialized (no dynamic init) so the very first allocation of a
// thread — possibly before any fsopt code ran — finds a valid tally.
thread_local AllocCounters tl_alloc;
}  // namespace

AllocCounters thread_alloc_counters() { return tl_alloc; }

void PassMetrics::set_counter(const std::string& key, i64 value) {
  for (auto& [k, v] : counters) {
    if (k == key) {
      v = value;
      return;
    }
  }
  counters.emplace_back(key, value);
}

i64 PassMetrics::counter(const std::string& key) const {
  for (const auto& [k, v] : counters)
    if (k == key) return v;
  return -1;
}

double PipelineMetrics::total_seconds() const {
  double s = 0.0;
  for (const auto& p : passes) s += p.seconds;
  return s;
}

u64 PipelineMetrics::total_alloc_bytes() const {
  u64 n = 0;
  for (const auto& p : passes) n += p.alloc_bytes;
  return n;
}

std::vector<std::string> PipelineMetrics::pass_names() const {
  std::vector<std::string> out;
  out.reserve(passes.size());
  for (const auto& p : passes) out.push_back(p.name);
  return out;
}

const PassMetrics* PipelineMetrics::find(const std::string& name) const {
  for (const auto& p : passes)
    if (p.name == name) return &p;
  return nullptr;
}

void PipelineMetrics::append(const PipelineMetrics& other) {
  passes.insert(passes.end(), other.passes.begin(), other.passes.end());
}

std::string PipelineMetrics::render() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-12s %10s %9s %12s  %s\n", "pass",
                "time", "allocs", "bytes", "counters");
  os << buf;
  for (const auto& p : passes) {
    std::snprintf(buf, sizeof(buf), "%-12s %8.1fus %9llu %12llu  ",
                  p.name.c_str(), p.seconds * 1e6,
                  static_cast<unsigned long long>(p.alloc_count),
                  static_cast<unsigned long long>(p.alloc_bytes));
    os << buf;
    for (size_t i = 0; i < p.counters.size(); ++i) {
      if (i > 0) os << ", ";
      os << p.counters[i].first << "=" << p.counters[i].second;
    }
    os << "\n";
  }
  std::snprintf(buf, sizeof(buf), "%-12s %8.1fus %9s %12llu\n", "total",
                total_seconds() * 1e6, "",
                static_cast<unsigned long long>(total_alloc_bytes()));
  os << buf;
  return os.str();
}

std::string PipelineMetrics::to_json() const {
  std::string out;
  json::Writer w(&out, 2);
  w.begin_object();
  w.key("total_seconds").value(total_seconds(), "%.9f");
  w.key("passes").begin_array();
  for (const PassMetrics& p : passes) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("seconds").value(p.seconds, "%.9f");
    w.key("alloc_count").value(p.alloc_count);
    w.key("alloc_bytes").value(p.alloc_bytes);
    w.key("counters").begin_object();
    for (const auto& [k, v] : p.counters) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_array().end_object();
  return out;
}

}  // namespace fsopt

// ---------------------------------------------------------------------------
// Global allocation hooks.
//
// Replacing the global operator new/delete is how the per-pass allocation
// counters are fed without touching every allocation site.  All forms
// forward to malloc/free (the default behaviour) plus one thread-local
// increment; matching deletes never touch the tally, so the counters are
// cumulative-allocation meters, not live-heap meters.
// ---------------------------------------------------------------------------
#ifndef FSOPT_NO_ALLOC_METRICS

// gcc's -Wmismatched-new-delete cannot see that these definitions *are*
// the allocator: after inlining it pairs a caller's operator new with the
// free() below and flags a mismatch that cannot happen.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

inline void fsopt_count_alloc(std::size_t n) noexcept {
  fsopt::tl_alloc.count += 1;
  fsopt::tl_alloc.bytes += n;
}

inline void* fsopt_alloc_or_throw(std::size_t n) {
  if (n == 0) n = 1;
  for (;;) {
    void* p = std::malloc(n);
    if (p != nullptr) return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc();
    h();
  }
}

inline void* fsopt_aligned_alloc_or_throw(std::size_t n, std::size_t align) {
  if (n == 0) n = 1;
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       n) == 0)
      return p;
    std::new_handler h = std::get_new_handler();
    if (h == nullptr) throw std::bad_alloc();
    h();
  }
}

}  // namespace

void* operator new(std::size_t n) {
  fsopt_count_alloc(n);
  return fsopt_alloc_or_throw(n);
}
void* operator new[](std::size_t n) {
  fsopt_count_alloc(n);
  return fsopt_alloc_or_throw(n);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  fsopt_count_alloc(n);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  fsopt_count_alloc(n);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  fsopt_count_alloc(n);
  return fsopt_aligned_alloc_or_throw(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  fsopt_count_alloc(n);
  return fsopt_aligned_alloc_or_throw(n, static_cast<std::size_t>(a));
}
// Aligned nothrow forms: without these, an aligned nothrow allocation
// falls back to the default library operator (uncounted) while its
// delete reaches the replaced aligned free above — count and allocate
// them the same way as every other replaced form.
void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  fsopt_count_alloc(n);
  void* p = nullptr;
  std::size_t align = static_cast<std::size_t>(a);
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? 1 : n) != 0)
    return nullptr;
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t& tag) noexcept {
  return operator new(n, a, tag);
}

// Sized/aligned/nothrow forms forward to the basic ones, so the compiler
// sees every delete of a new-ed pointer reach the replaced operator
// delete (gcc's -Wmismatched-new-delete flags a direct free() here).
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t a) noexcept {
  operator delete(p, a);
}
void operator delete(void* p, std::size_t, std::align_val_t a) noexcept {
  operator delete(p, a);
}
void operator delete[](void* p, std::size_t, std::align_val_t a) noexcept {
  operator delete(p, a);
}
void operator delete(void* p, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  operator delete(p, a);
}
void operator delete[](void* p, std::align_val_t a,
                       const std::nothrow_t&) noexcept {
  operator delete(p, a);
}

#endif  // FSOPT_NO_ALLOC_METRICS
