#include "support/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace fsopt {

namespace {

// Registered once; the obs::counter timeline samples stay alongside so
// traces still show the depth curve, while the metrics surface exposes
// the same number (plus a jobs-executed counter) to scrapes.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::metric_gauge("pool.queue_depth");
  return g;
}

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("FSOPT_THREADS")) {
    long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<int>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_thread_count();
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      if (obs::enabled())
        obs::set_thread_name("pool-worker-" + std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    FSOPT_CHECK(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(job));
    obs::counter("pool.queue_depth", static_cast<double>(queue_.size()));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      obs::counter("pool.queue_depth", static_cast<double>(queue_.size()));
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
      ++running_;
    }
    static obs::Counter& jobs = obs::metric_counter("pool.jobs");
    jobs.inc();
    std::exception_ptr error;
    try {
      obs::Span span("pool", "job");
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for_each(ThreadPool& pool, size_t n,
                       const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // One queue entry per worker, each draining a shared atomic counter:
  // cheaper than n queue entries when n is large, and jobs finish the
  // moment indices run out.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  int jobs = std::min<int>(pool.size(), static_cast<int>(n));
  for (int j = 0; j < jobs; ++j) {
    pool.submit([next, n, &body] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1))
        body(i);
    });
  }
  pool.wait();
}

void parallel_for_each(int threads, size_t n,
                       const std::function<void(size_t)>& body) {
  if (threads <= 0) threads = default_thread_count();
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min<int>(threads, static_cast<int>(n)));
  parallel_for_each(pool, n, body);
}

}  // namespace fsopt
