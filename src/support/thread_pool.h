// Minimal fixed-size thread pool for the experiment harness.
//
// The replay/sweep layers (driver/experiment.h) fan independent jobs —
// cache replays of a recorded trace, compile+run timing jobs — across a
// small pool of workers.  Jobs are plain std::function<void()>; the pool
// makes no ordering guarantees, so callers that need deterministic output
// must write each job's result to its own pre-allocated slot and combine
// the slots in a fixed order after wait() (see parallel_for_each).
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.h"

namespace fsopt {

/// Worker threads to use when a caller passes 0: the FSOPT_THREADS
/// environment variable if set (>= 1), else the hardware concurrency.
int default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_thread_count()).
  explicit ThreadPool(int threads = 0);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue one job.  Jobs may submit further jobs.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.  If any job threw, the
  /// first exception (in completion order) is rethrown here; the rest are
  /// discarded.  The pool stays usable after wait().
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable idle_cv_;   // wait(): queue empty and none running
  size_t running_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Run body(0..n-1), each index exactly once, across the pool's workers.
/// Blocks until all indices are done; rethrows the first failure.  The
/// body must not assume any index ordering — write results into per-index
/// slots for deterministic aggregation.
void parallel_for_each(ThreadPool& pool, size_t n,
                       const std::function<void(size_t)>& body);

/// Convenience overload: `threads <= 1` (or n <= 1) runs inline serially —
/// bit-identical to the pooled path for well-formed bodies and free of
/// thread startup cost; otherwise a transient pool of
/// min(threads, n) workers is used.  threads == 0 means
/// default_thread_count().
void parallel_for_each(int threads, size_t n,
                       const std::function<void(size_t)>& body);

}  // namespace fsopt
