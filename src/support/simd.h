// Portable SIMD dispatch for the replay engines.
//
// The multi-plane replay's per-miss scans (word write-version checks,
// granule-aggregate maxima) and its per-reference plane loop are data
// parallel; this header gives them one portable seam:
//
//   * an always-available scalar implementation of every kernel — the
//     bit-exactness reference, and the only path on hardware without
//     AVX2/AVX-512/NEON;
//   * runtime dispatch: `detected_level()` probes the host once
//     (AVX-512F then AVX2 via __builtin_cpu_supports on x86-64, NEON
//     unconditionally on AArch64) and `active_kernels()` hands back a
//     function-pointer table for the best usable level;
//   * a force-scalar override for benchmarking and differential tests:
//     the environment variable `FSOPT_SIMD=0` (or
//     `set_force_scalar(1)` in-process, which wins over the
//     environment) pins every consumer to the scalar table; and a
//     level cap, `FSOPT_SIMD=avx2`, that pins x86 dispatch to the AVX2
//     kernels on AVX-512 hosts (tier-vs-tier measurement and
//     differential testing);
//   * an opt-in for the engine's gather-based vector batch loop:
//     `FSOPT_SIMD=2` (or `set_batch_vector(1)`).  The dispatched miss
//     kernels are profitable wherever AVX2 exists, but the batch
//     loop's per-plane directory gather only beats the scalar probe
//     loop on cores with fast gathers — measured slower on the
//     Skylake-class reference host (see DESIGN.md §12), so it is not
//     the default.
//
// Consumers snapshot the active level when they build their engine
// state (MultiCacheSim reads it in its constructor), so toggling the
// override between replays is race-free and each simulator's choice is
// fixed for its lifetime.  Every SIMD kernel computes bit-identical
// results to its scalar twin — the vector width changes the schedule,
// never the outcome — and tests/test_simd.cpp enforces that end to end.
//
// x86-64 kernels are compiled with the `target("avx2")` function
// attribute instead of a global -mavx2 flag, so one binary carries both
// paths and non-AVX2 hosts never execute a vector instruction.
#pragma once

#include <cstddef>
#include <string>

#include "support/common.h"

namespace fsopt::simd {

enum class Level {
  kScalar = 0,
  kAVX2 = 1,
  kNEON = 2,
  kAVX512 = 3,
};

const char* level_name(Level level);

/// Best instruction level this host supports (probed once, cached).
Level detected_level();

/// -1: defer to the FSOPT_SIMD environment variable (the default).
/// 1: force the scalar table regardless of the environment.
/// 0: clear a previous in-process force (the environment still applies).
void set_force_scalar(int force);

/// True when kernels are pinned to scalar — by set_force_scalar(1), or
/// by FSOPT_SIMD=0 in the environment when no in-process override is set.
bool force_scalar();

/// detected_level(), demoted to kScalar when force_scalar() is on.
Level active_level();

/// -1: defer to the environment (`FSOPT_SIMD=2` enables; the default).
/// 1: enable the vector batch loop in-process.  0: disable.
void set_batch_vector(int enable);

/// True when the engine should use its vector batch loop: active_level()
/// is a vector level AND the opt-in (set_batch_vector(1) or
/// FSOPT_SIMD=2) is present.  Read at engine construction, not per
/// batch.
bool batch_vector_enabled();

/// Short human-readable description of the host's vector features, for
/// bench metadata ("avx2+sse4.2", "neon", "scalar").
std::string cpu_features();

/// The dispatchable kernels.  All implementations of one slot return
/// bit-identical results for identical inputs.
struct Kernels {
  Level level;

  /// Maximum of n unsigned 32-bit values (0 when n == 0).
  u32 (*max_u32)(const u32* p, size_t n);

  /// True iff any packed word version v in [p, p+n) satisfies
  /// v >= bound && (v & wmask) != self — the classifier's "remotely
  /// written after the snapshot" test over a block or granule extent.
  bool (*any_version_newer)(const u64* p, size_t n, u64 bound, u64 self,
                            u64 wmask);
};

/// The kernel table for `level` (falls back to scalar slots where the
/// build lacks that level's compiler support).
const Kernels& kernels(Level level);

/// kernels(active_level()) — what consumers should snapshot.
inline const Kernels& active_kernels() { return kernels(active_level()); }

// Scalar reference implementations, always available and inlineable for
// short extents where a dispatch call would dominate the scan itself.
inline u32 max_u32_scalar(const u32* p, size_t n) {
  u32 m = 0;
  for (size_t i = 0; i < n; ++i) m = p[i] > m ? p[i] : m;
  return m;
}

inline bool any_version_newer_scalar(const u64* p, size_t n, u64 bound,
                                     u64 self, u64 wmask) {
  u64 acc = 0;
  for (size_t i = 0; i < n; ++i) {
    const u64 v = p[i];
    acc |= static_cast<u64>(v >= bound && (v & wmask) != self);
  }
  return acc != 0;
}

}  // namespace fsopt::simd
