// Common small utilities shared across the fsopt library.
//
// fsopt reproduces the compile-time false-sharing-reduction system of
// Jeremiassen & Eggers (PPoPP'95).  See DESIGN.md for the system map.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fsopt {

using i64 = std::int64_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using u32 = std::uint32_t;
using u8 = std::uint8_t;

/// Internal-error exception: thrown on violated invariants inside the
/// compiler/simulator (never for user-program diagnostics, which flow
/// through DiagnosticEngine).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

#define FSOPT_CHECK(cond, msg)                                   \
  do {                                                           \
    if (!(cond)) throw ::fsopt::InternalError(std::string(msg)); \
  } while (0)

/// Round `v` up to the next multiple of `align` (align must be > 0).
constexpr i64 round_up(i64 v, i64 align) {
  return (v + align - 1) / align * align;
}

/// True iff `v` is a power of two (v > 0).
constexpr bool is_pow2(i64 v) { return v > 0 && (v & (v - 1)) == 0; }

/// log2(v) when v is a power of two, else -1.  Lets hot paths replace
/// division/modulo by a runtime value with shift/mask when possible.
constexpr int pow2_shift(i64 v) {
  if (!is_pow2(v)) return -1;
  int s = 0;
  while ((i64{1} << s) < v) ++s;
  return s;
}

}  // namespace fsopt
