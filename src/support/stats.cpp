#include "support/stats.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace fsopt {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) {
    FSOPT_CHECK(x > 0, "geomean requires positive inputs");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

std::string pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return os.str();
}

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  FSOPT_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<size_t> w(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
  for (const auto& r : rows_)
    for (size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(w[i]) + 2) << cells[i];
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (size_t i = 0; i < headers_.size(); ++i)
    rule += std::string(w[i], '-') + "  ";
  os << rule << "\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace fsopt
