// Per-pass instrumentation for the compile pipeline (driver/pipeline.h).
//
// Every pass records its wall time (support/timing.h stopwatch), the
// allocation traffic it caused on the compiling thread, and a small set of
// named domain counters (functions parsed, CFG nodes built, RSD records
// merged, decisions made, ...).  The collected PipelineMetrics serializes
// to JSON for `fsoptc --timings=json` and the compile-throughput bench.
//
// Allocation counters come from thread-local tallies updated by the
// replaced global operator new (metrics.cpp).  They count cumulative
// allocations/bytes — a faithful proxy for arena pressure in a compiler
// whose passes allocate AST/CFG/RSD nodes and rarely free mid-pass.  The
// tallies are per-thread, so parallel matrix compilation attributes
// traffic to the pass that caused it, not to whoever runs concurrently.
// Define FSOPT_NO_ALLOC_METRICS to keep the stock allocator (counters
// then read zero).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "support/common.h"

namespace fsopt {

/// Cumulative allocation tally of the calling thread.
struct AllocCounters {
  u64 count = 0;  // operator-new calls
  u64 bytes = 0;  // bytes requested
};

/// Snapshot of the calling thread's allocation tally; subtract two
/// snapshots to meter a region.
AllocCounters thread_alloc_counters();

/// What one pass did: wall time, allocation traffic, domain counters.
struct PassMetrics {
  std::string name;
  double seconds = 0.0;
  u64 alloc_count = 0;
  u64 alloc_bytes = 0;
  /// Named domain counters in insertion order (deterministic).
  std::vector<std::pair<std::string, i64>> counters;

  void set_counter(const std::string& key, i64 value);
  /// Value of a counter, or -1 when the pass did not record it.
  i64 counter(const std::string& key) const;
};

/// Metrics of one front-to-back pipeline run, in pass execution order.
struct PipelineMetrics {
  std::vector<PassMetrics> passes;

  double total_seconds() const;
  u64 total_alloc_bytes() const;
  /// Pass names in execution order — the pipeline's structural signature;
  /// identical for every thread count by construction.
  std::vector<std::string> pass_names() const;
  const PassMetrics* find(const std::string& name) const;

  /// Append another run's passes (used to join front + back halves).
  void append(const PipelineMetrics& other);

  /// Human-readable table (for `fsoptc --timings`).
  std::string render() const;
  /// Machine-readable form (for `fsoptc --timings=json` and benches):
  ///   {"total_seconds": ..., "passes": [{"name": ..., "seconds": ...,
  ///    "alloc_count": ..., "alloc_bytes": ..., "counters": {...}}, ...]}
  std::string to_json() const;
};

}  // namespace fsopt
